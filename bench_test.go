package gopim

// One benchmark per paper table/figure: `go test -bench=.` regenerates
// the whole evaluation (in Fast mode, so a full sweep stays tractable;
// run `go run ./cmd/gopim all` for the full-scale numbers recorded in
// EXPERIMENTS.md). Additional benchmarks cover the end-to-end
// accelerator simulation path for each model.

import (
	"fmt"
	"math/rand"
	"testing"

	"gopim/internal/parallel"
	"gopim/internal/predictor"
	"gopim/internal/sparsemat"
	"gopim/internal/tensor"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, ExperimentOptions{Seed: 1, Fast: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Motivation study (paper §III).
func BenchmarkFig04IdleTime(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig05AllocationExample(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig06MappingSkew(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig07OSUExample(b *testing.B)        { benchExperiment(b, "fig7") }

// Predictor study (paper §V-A and §VII-G).
func BenchmarkFig09PredictorBakeoff(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkGeneralization(b *testing.B)        { benchExperiment(b, "gen") }

// Headline evaluation (paper §VII-B/C/D).
func BenchmarkFig13Overall(b *testing.B)        { benchExperiment(b, "fig13") }
func BenchmarkFig14Ablation(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15IdleReduction(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkTab05AccuracyImpact(b *testing.B) { benchExperiment(b, "tab5") }
func BenchmarkTab06ReplicaDetails(b *testing.B) { benchExperiment(b, "tab6") }
func BenchmarkTab07MLvsProfiling(b *testing.B)  { benchExperiment(b, "tab7") }

// Sensitivity and scalability (paper §VII-E/F).
func BenchmarkFig16Sensitivity(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17Scalability(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkCoraSparse(b *testing.B)       { benchExperiment(b, "cora") }
func BenchmarkModelAblations(b *testing.B)   { benchExperiment(b, "abl") }

// End-to-end accelerator simulation, one benchmark per model on the
// paper's headline workload.
func BenchmarkSimulate(b *testing.B) {
	d, err := DatasetByName("ddi")
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []Model{Serial, SlimGNNLike, ReGraphX, ReFlip, GoPIMVanilla, GoPIM} {
		kind := kind
		b.Run(fmt.Sprint(kind), func(b *testing.B) {
			w := Workload{Dataset: d, Seed: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := Simulate(kind, w)
				if r.MakespanNS <= 0 {
					b.Fatal("degenerate simulation")
				}
			}
		})
	}
}

// Serial-vs-pool benchmarks for the parallel kernels. "workers=1" is
// the serial fallback; "workers=max" uses the default pool (GOMAXPROCS
// or GOPIM_WORKERS). Output of every kernel is byte-identical across
// the two, so these measure pure scheduling gain.

func withWorkerCounts(b *testing.B, run func(b *testing.B)) {
	b.Helper()
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=max", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			parallel.SetWorkers(bc.workers)
			defer parallel.SetWorkers(0)
			run(b)
		})
	}
}

func BenchmarkGEMM256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewRandom(rng, 256, 256, 1)
	y := tensor.NewRandom(rng, 256, 256, 1)
	dst := tensor.New(256, 256)
	withWorkerCounts(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(dst, x, y)
		}
	})
}

func BenchmarkSpMM(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n, nnz, feats = 20_000, 200_000, 64
	entries := make([]sparsemat.Entry, 0, nnz)
	for i := 0; i < nnz; i++ {
		entries = append(entries, sparsemat.Entry{
			Row: rng.Intn(n), Col: rng.Intn(n), Val: rng.NormFloat64(),
		})
	}
	adj := sparsemat.NewFromEntries(n, n, entries)
	h := tensor.NewRandom(rng, n, feats, 1)
	withWorkerCounts(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := adj.MulDense(h); out.Rows != n {
				b.Fatal("degenerate SpMM")
			}
		}
	})
}

func BenchmarkProfileGeneration(b *testing.B) {
	spec := predictor.ProfileSpec{Seed: 1, MaxVertices: 30_000}
	withWorkerCounts(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(predictor.Generate(spec)) == 0 {
				b.Fatal("no samples")
			}
		}
	})
}

// BenchmarkAllExperimentsFast is `gopim all -fast`: the full evaluation
// sweep fanned out across the pool (each iteration retrains the shared
// predictor only on its first use, as the CLI does).
func BenchmarkAllExperimentsFast(b *testing.B) {
	ids := Experiments()
	withWorkerCounts(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			results, err := RunExperiments(ids, ExperimentOptions{Seed: 1, Fast: true})
			if err != nil {
				b.Fatal(err)
			}
			if len(results) != len(ids) {
				b.Fatalf("got %d results", len(results))
			}
		}
	})
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationZeroSkip sweeps the zero-skip miss rate, the knob
// calibrating the AG/CO time ratio (DESIGN.md §2). arxiv's adjacency
// rows are mostly empty blocks, so the miss rate is the dominant AG
// cost there.
func BenchmarkAblationZeroSkip(b *testing.B) {
	d, err := DatasetByName("arxiv")
	if err != nil {
		b.Fatal(err)
	}
	for _, miss := range []float64{0, 0.2, 1} {
		miss := miss
		b.Run(fmt.Sprintf("miss=%.1f", miss), func(b *testing.B) {
			chip := DefaultChip()
			chip.ZeroSkipMiss = miss
			w := Workload{Dataset: d, Seed: 1, Chip: chip}
			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				last = Simulate(Serial, w).MakespanNS
			}
			b.ReportMetric(last/1e6, "makespan-ms")
		})
	}
}

// BenchmarkAblationWriteLanes sweeps the chip's concurrent write-lane
// budget, which sets the vertex-update share of aggregation time.
func BenchmarkAblationWriteLanes(b *testing.B) {
	d, err := DatasetByName("ddi")
	if err != nil {
		b.Fatal(err)
	}
	for _, lanes := range []int{1, 2, 8} {
		lanes := lanes
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			chip := DefaultChip()
			chip.WriteLanes = lanes
			w := Workload{Dataset: d, Seed: 1, Chip: chip}
			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				last = Simulate(Serial, w).MakespanNS
			}
			b.ReportMetric(last/1e6, "makespan-ms")
		})
	}
}
