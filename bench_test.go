package gopim

// One benchmark per paper table/figure: `go test -bench=.` regenerates
// the whole evaluation (in Fast mode, so a full sweep stays tractable;
// run `go run ./cmd/gopim all` for the full-scale numbers recorded in
// EXPERIMENTS.md). Additional benchmarks cover the end-to-end
// accelerator simulation path for each model.

import (
	"fmt"
	"testing"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, ExperimentOptions{Seed: 1, Fast: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Motivation study (paper §III).
func BenchmarkFig04IdleTime(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig05AllocationExample(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig06MappingSkew(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig07OSUExample(b *testing.B)        { benchExperiment(b, "fig7") }

// Predictor study (paper §V-A and §VII-G).
func BenchmarkFig09PredictorBakeoff(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkGeneralization(b *testing.B)        { benchExperiment(b, "gen") }

// Headline evaluation (paper §VII-B/C/D).
func BenchmarkFig13Overall(b *testing.B)        { benchExperiment(b, "fig13") }
func BenchmarkFig14Ablation(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15IdleReduction(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkTab05AccuracyImpact(b *testing.B) { benchExperiment(b, "tab5") }
func BenchmarkTab06ReplicaDetails(b *testing.B) { benchExperiment(b, "tab6") }
func BenchmarkTab07MLvsProfiling(b *testing.B)  { benchExperiment(b, "tab7") }

// Sensitivity and scalability (paper §VII-E/F).
func BenchmarkFig16Sensitivity(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17Scalability(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkCoraSparse(b *testing.B)       { benchExperiment(b, "cora") }
func BenchmarkModelAblations(b *testing.B)   { benchExperiment(b, "abl") }

// End-to-end accelerator simulation, one benchmark per model on the
// paper's headline workload.
func BenchmarkSimulate(b *testing.B) {
	d, err := DatasetByName("ddi")
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []Model{Serial, SlimGNNLike, ReGraphX, ReFlip, GoPIMVanilla, GoPIM} {
		kind := kind
		b.Run(fmt.Sprint(kind), func(b *testing.B) {
			w := Workload{Dataset: d, Seed: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := Simulate(kind, w)
				if r.MakespanNS <= 0 {
					b.Fatal("degenerate simulation")
				}
			}
		})
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationZeroSkip sweeps the zero-skip miss rate, the knob
// calibrating the AG/CO time ratio (DESIGN.md §2). arxiv's adjacency
// rows are mostly empty blocks, so the miss rate is the dominant AG
// cost there.
func BenchmarkAblationZeroSkip(b *testing.B) {
	d, err := DatasetByName("arxiv")
	if err != nil {
		b.Fatal(err)
	}
	for _, miss := range []float64{0, 0.2, 1} {
		miss := miss
		b.Run(fmt.Sprintf("miss=%.1f", miss), func(b *testing.B) {
			chip := DefaultChip()
			chip.ZeroSkipMiss = miss
			w := Workload{Dataset: d, Seed: 1, Chip: chip}
			var last float64
			for i := 0; i < b.N; i++ {
				last = Simulate(Serial, w).MakespanNS
			}
			b.ReportMetric(last/1e6, "makespan-ms")
		})
	}
}

// BenchmarkAblationWriteLanes sweeps the chip's concurrent write-lane
// budget, which sets the vertex-update share of aggregation time.
func BenchmarkAblationWriteLanes(b *testing.B) {
	d, err := DatasetByName("ddi")
	if err != nil {
		b.Fatal(err)
	}
	for _, lanes := range []int{1, 2, 8} {
		lanes := lanes
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			chip := DefaultChip()
			chip.WriteLanes = lanes
			w := Workload{Dataset: d, Seed: 1, Chip: chip}
			var last float64
			for i := 0; i < b.N; i++ {
				last = Simulate(Serial, w).MakespanNS
			}
			b.ReportMetric(last/1e6, "makespan-ms")
		})
	}
}
