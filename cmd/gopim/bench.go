package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"gopim"
	"gopim/internal/bench"
	"gopim/internal/experiments"
)

// benchCmd runs the regression bench suite (`gopim bench`): it
// executes the workload matrix, writes BENCH_<label>.json, and prints
// a per-configuration summary. With a positional BENCH file argument
// it skips the run and reports on the existing file instead.
func benchCmd(args []string, seed int64, fast bool, format experiments.Format) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	label := fs.String("label", "local", "bench label; output goes to BENCH_<label>.json")
	suite := fs.String("suite", "", "workload suite: default, or kernels (SpMM strategy micro-benchmarks)")
	warmup := fs.Int("warmup", 1, "unrecorded warmup runs per configuration")
	repeats := fs.Int("repeats", 3, "measured runs per configuration")
	workersList := fs.String("bench-workers", "1,2", "comma-separated worker counts the suite runs at")
	expList := fs.String("experiments", "", "comma-separated experiment ids (default: the fig4-fig7 smoke set)")
	dsList := fs.String("datasets", "", "comma-separated sim-matrix datasets (default: ddi,Cora)")
	full := fs.Bool("full", false, "full suite: every experiment id and every catalog dataset")
	dir := fs.String("dir", ".", "directory for the BENCH file")
	attrib := fs.Bool("attrib", false, "also print the stage-level attribution report")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gopim [flags] bench [-label L] [-repeats N] [-attrib] [BENCH_x.json]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("bench: at most one positional BENCH file, got %d", fs.NArg())
	}
	if fs.NArg() == 1 {
		// Report-only mode: attribute an existing file, no run.
		f, err := bench.Load(fs.Arg(0))
		if err != nil {
			return err
		}
		return renderAttribution(f, format)
	}

	cfg := bench.Config{
		Label:  *label,
		Suite:  *suite,
		Seed:   seed,
		Fast:   fast || !*full, // the smoke suite is always fast-scale
		Warmup: *warmup, Repeats: *repeats,
		Args: os.Args[1:],
	}
	var err error
	if cfg.Workers, err = parseWorkersList(*workersList); err != nil {
		return err
	}
	if *expList != "" {
		cfg.Experiments = splitCSV(*expList)
	} else if *full {
		cfg.Experiments = experiments.IDs()
	}
	if *dsList != "" {
		cfg.Datasets = splitCSV(*dsList)
	} else if *full {
		cfg.Datasets = datasetNames()
	}

	f, err := bench.Run(cfg)
	if err != nil {
		return err
	}
	path := filepath.Join(*dir, bench.FileName(*label))
	if err := f.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("bench %s: seed=%d fast=%v warmup=%d repeats=%d -> %s\n",
		f.Label, f.Suite.Seed, f.Suite.Fast, f.Suite.Warmup, f.Suite.Repeats, path)
	for _, c := range f.Configs {
		stable := ""
		if !c.SimStable {
			stable = "   UNSTABLE sim snapshot"
		}
		fmt.Printf("  %-16s wall min/med/max %8.1f/%8.1f/%8.1f ms   %d sim metric values%s\n",
			c.Name, c.WallMS.MinMS, c.WallMS.MedianMS, c.WallMS.MaxMS,
			len(c.SimMetrics), stable)
	}
	if *attrib {
		return renderAttribution(f, format)
	}
	return nil
}

// renderAttribution prints the stage-level attribution table for the
// richest configuration of a BENCH file.
func renderAttribution(f *bench.File, format experiments.Format) error {
	cfg, err := bench.AttributionConfig(f)
	if err != nil {
		return err
	}
	res, err := bench.Attribution(cfg.SimMetrics)
	if err != nil {
		return err
	}
	res.Title += fmt.Sprintf(" (%s, config %s)", f.Label, cfg.Name)
	return res.RenderAs(os.Stdout, format)
}

// diffCmd compares two BENCH files or raw -metrics snapshots
// (`gopim diff old new`) and returns the strict regression count the
// caller turns into the exit status.
func diffCmd(args []string, format experiments.Format) (regressions int, err error) {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	rel := fs.Float64("rel", 0, "relative threshold for sim-clock metrics (strict)")
	relWall := fs.Float64("rel-wall", 0.25, "relative threshold for wall-clock stats (report-only)")
	showAll := fs.Bool("all", false, "include unchanged metrics in the report")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gopim [flags] diff [-rel R] [-all] <old.json> <new.json>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("diff: want exactly two files (BENCH_*.json or -metrics *.json), got %d", fs.NArg())
	}
	oldF, err := bench.Load(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	newF, err := bench.Load(fs.Arg(1))
	if err != nil {
		return 0, err
	}
	rep := bench.Diff(oldF, newF, bench.Thresholds{Sim: *rel, Wall: *relWall})
	if err := rep.Result(*showAll).RenderAs(os.Stdout, format); err != nil {
		return 0, err
	}
	fmt.Println(rep.Summary())
	return rep.Regressions(), nil
}

// parseWorkersList parses "1,2,8" into worker counts.
func parseWorkersList(s string) ([]int, error) {
	var out []int
	for _, part := range splitCSV(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bench: -bench-workers wants positive integers, got %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: -bench-workers is empty")
	}
	return out, nil
}

// splitCSV splits a comma-separated list, trimming blanks.
func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// datasetNames lists the full catalog for -full runs.
func datasetNames() []string {
	var out []string
	for _, d := range gopim.Datasets() {
		out = append(out, d.Name)
	}
	return out
}
