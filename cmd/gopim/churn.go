package main

import (
	"flag"
	"fmt"
	"os"

	"gopim"
	"gopim/internal/accel"
	"gopim/internal/churn"
)

// churnCmd implements `gopim churn`: stream a seeded graph-mutation
// sequence through the GoPIM model and report, epoch by epoch, what the
// robustness loop did about it — stripes the incremental re-mapper
// moved, ISU plan refreshes, wear-driven crossbar retirements and the
// degraded-allocation makespan. The churn knobs themselves are global
// flags (-churn-rate/-churn-seed/-refresh-policy) so the same stream
// definition also drives experiment sweeps; this subcommand only adds
// the run length and the wear coupling.
func churnCmd(args []string, seed int64, fast bool, cc churn.Config) error {
	fs := flag.NewFlagSet("churn", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	defEpochs := 8
	if fast {
		defEpochs = 4
	}
	epochs := fs.Int("epochs", defEpochs, "number of churn epochs to stream")
	wearDays := fs.Float64("wear-days", 0,
		"days of production write traffic absorbed per epoch (0 = wear off)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gopim [-churn-rate p] [-churn-seed N] [-refresh-policy P] churn [-epochs N] [-wear-days D] <dataset>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: gopim churn [-epochs N] [-wear-days D] <dataset>")
	}
	d, err := gopim.DatasetByName(fs.Arg(0))
	if err != nil {
		return err
	}
	cc.DaysPerEpoch = *wearDays

	res, err := accel.RunChurn(gopim.Workload{Dataset: d, Seed: seed}, cc, *epochs)
	if err != nil {
		return err
	}
	fmt.Printf("streaming churn on %s — rate %.2g%%, seed %d, policy %s, %d epochs",
		d.Name, cc.Rate*100, cc.Seed, cc.Policy, *epochs)
	if *wearDays > 0 {
		fmt.Printf(", %.3g wear-days/epoch", *wearDays)
	}
	fmt.Println(":")
	if !cc.Enabled() {
		fmt.Println("  (churn disabled — pass -churn-rate to mutate the graph; rows below are the static baseline)")
	}
	fmt.Printf("  %-5s  %6s  %6s  %8s  %6s  %-6s  %-7s  %4s  %7s  %s\n",
		"epoch", "+edges", "-edges", "vertices", "moved", "remap", "refresh", "θ", "retired", "makespan")
	for _, ep := range res.Epochs {
		remap := "delta"
		if ep.FullRemap {
			remap = "FULL"
		}
		refresh := "-"
		if ep.Refreshed {
			refresh = "replan"
		}
		degraded := ""
		if ep.Degraded {
			degraded = "  (degraded)"
		}
		fmt.Printf("  %-5d  %6d  %6d  %8d  %6d  %-6s  %-7s  %3.0f%%  %7d  %.3g ms%s\n",
			ep.Epoch, ep.EdgesAdded, ep.EdgesRemoved, ep.Vertices, ep.StripesMoved,
			remap, refresh, ep.Theta*100, ep.Retired, ep.MakespanNS/1e6, degraded)
	}
	fmt.Printf("totals: +%d/-%d edges, %d stripes moved, %d full-remap fallbacks, %d plan refreshes, %d retirement events (%d crossbars retired), %d/%d epochs degraded\n",
		res.EdgesAdded, res.EdgesRemoved, res.StripesMoved, res.FullRemaps,
		res.Refreshes, res.Retirements, res.FinalRetired, res.DegradedEpochs, len(res.Epochs))
	return nil
}
