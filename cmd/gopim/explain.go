package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gopim"
	"gopim/internal/accel"
	"gopim/internal/experiments"
	"gopim/internal/explain"
	"gopim/internal/trace"
)

// explainCmd runs `gopim explain <dataset> [model]`: it simulates the
// model on the dataset, extracts the critical path of the resulting
// schedule, attributes every idle nanosecond to a bubble class, and
// reports the gap to the eq.(6) closed form plus a ±1-replica
// sensitivity table. Output is a pure function of the Sim clock —
// byte-identical at any -workers count.
func explainCmd(sess *obsSession, args []string, seed int64, format experiments.Format) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	mb := fs.Int("mb", 64, "micro-batch window to analyze (0 = the full epoch)")
	jsonOut := fs.Bool("json", false, "emit the full analysis as JSON instead of tables")
	noSens := fs.Bool("no-sensitivity", false, "skip the ±1-replica re-simulations")
	gantt := fs.Bool("gantt", false, "also draw the marked schedule (first 16 micro-batches)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gopim [flags] explain [-mb N] [-json] [-no-sensitivity] [-gantt] <dataset> [model]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 || fs.NArg() > 2 {
		return fmt.Errorf("usage: gopim explain <dataset> [model]")
	}
	d, err := gopim.DatasetByName(fs.Arg(0))
	if err != nil {
		return err
	}
	model := gopim.GoPIM
	if fs.NArg() == 2 {
		if model, err = modelByName(fs.Arg(1)); err != nil {
			return err
		}
	}
	if *mb < 0 {
		return fmt.Errorf("explain: -mb %d is negative", *mb)
	}

	r := gopim.Simulate(model, gopim.Workload{Dataset: d, Seed: seed})
	in := accel.TraceInput(r)
	if *mb > 0 && *mb < in.MicroBatches {
		in.MicroBatches = *mb
	}
	ex := explain.Analyze(in, r.StageNames, explain.Options{Sensitivity: !*noSens})
	sess.addSimEvents(ex.ChromeTraceEvents(r.StageNames))
	sess.setExplainInfo(ex)
	return renderExplain(os.Stdout, ex, r, in, format, *jsonOut, *gantt)
}

// renderExplain writes the analysis: JSON verbatim with -json, else
// the stage table in the experiments render conventions, optionally
// followed by the critical-path-marked gantt chart.
func renderExplain(w io.Writer, ex *explain.Result, r gopim.Report, in trace.Input,
	format experiments.Format, jsonOut, gantt bool) error {
	if jsonOut {
		return ex.WriteJSON(w)
	}
	header, rows, notes := ex.StageTable()
	res := &experiments.Result{
		ID:     "explain",
		Title:  fmt.Sprintf("critical path of %s on %s (%d micro-batches)", r.Kind, r.Dataset, in.MicroBatches),
		Paper:  "eq.(6) gives the pipelined lower bound; fig-9/fig-15 discuss the residual idle time",
		Header: header,
		Rows:   rows,
		Notes:  notes,
	}
	if err := res.RenderAs(w, format); err != nil {
		return err
	}
	if !gantt {
		return nil
	}
	mb := in.MicroBatches
	if mb > 16 {
		mb = 16
	}
	ganttIn := in
	ganttIn.MicroBatches = mb
	sched := trace.SimulateUnrecorded(ganttIn)
	gx := explain.Analyze(ganttIn, r.StageNames, explain.Options{})
	fmt.Fprintf(w, "first %d micro-batches (* = critical path):\n", mb)
	return sched.RenderGanttMarked(w, 100, r.StageNames, gx.OnPath)
}
