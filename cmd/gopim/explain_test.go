package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gopim"
	"gopim/internal/accel"
	"gopim/internal/experiments"
	"gopim/internal/explain"
	"gopim/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// explainOutput renders the full `gopim explain` report (table, notes,
// marked gantt) for ddi/GoPIM the way explainCmd would.
func explainOutput(t *testing.T, jsonOut bool) []byte {
	t.Helper()
	d, err := gopim.DatasetByName("ddi")
	if err != nil {
		t.Fatal(err)
	}
	r := gopim.Simulate(gopim.GoPIM, gopim.Workload{Dataset: d, Seed: 1})
	in := accel.TraceInput(r)
	if in.MicroBatches > 64 {
		in.MicroBatches = 64
	}
	ex := explain.Analyze(in, r.StageNames, explain.Options{Sensitivity: true})
	var buf bytes.Buffer
	if err := renderExplain(&buf, ex, r, in, experiments.FormatText, jsonOut, true); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The rendered explain report is a pure function of the Sim clock:
// byte-identical at any worker count, and pinned by a golden file so
// accidental drift in the analyzer or the renderers is caught.
func TestExplainOutputDeterministicAndGolden(t *testing.T) {
	defer gopim.SetWorkers(0)
	var want []byte
	for _, w := range []int{1, 2, 8} {
		gopim.SetWorkers(w)
		out := explainOutput(t, false)
		if want == nil {
			want = out
			continue
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("workers=%d: explain output differs from workers=1:\n%s\nvs\n%s", w, out, want)
		}
	}
	path := filepath.Join("testdata", "explain_ddi.golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (rerun with -update to create)", err)
	}
	if !bytes.Equal(want, golden) {
		t.Errorf("explain output drifted from %s:\n%s", path, want)
	}
}

// The -json renderer must emit the analyzer's structure verbatim —
// parseable, finite, with the critical-path invariant intact.
func TestExplainJSONOutput(t *testing.T) {
	defer gopim.SetWorkers(0)
	gopim.SetWorkers(2)
	out := explainOutput(t, true)
	if bytes.Contains(out, []byte("NaN")) || bytes.Contains(out, []byte("Inf")) {
		t.Fatalf("non-finite value in explain JSON:\n%s", out)
	}
	var r struct {
		MakespanNS float64 `json:"makespan_ns"`
		Bottleneck string  `json:"bottleneck"`
		Path       []struct {
			StartNS float64 `json:"start_ns"`
			EndNS   float64 `json:"end_ns"`
		} `json:"path"`
	}
	// The gantt chart is appended after the JSON document; decode just
	// the document.
	dec := json.NewDecoder(bytes.NewReader(out))
	if err := dec.Decode(&r); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if r.Bottleneck == "" || len(r.Path) == 0 {
		t.Fatalf("incomplete analysis: %+v", r)
	}
	var sum float64
	for _, p := range r.Path {
		sum += p.EndNS - p.StartNS
	}
	if sum != r.MakespanNS {
		t.Fatalf("path durations sum to %v, makespan %v", sum, r.MakespanNS)
	}
}

// setExplainInfo records the headline figures in the manifest — and
// only when an analysis ran, so other commands' manifests keep their
// shape (the setFaultInfo contract).
func TestManifestExplainFields(t *testing.T) {
	resetObs(t)
	dir := t.TempDir()
	newSession := func() *obsSession {
		s, err := startObsSession(obsFlags{
			metricsPath: filepath.Join(dir, "m.txt"),
		}, []string{"explain", "ddi"})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := newSession()
	s.setRunInfo(1, 0, "text", true)
	ex := explain.Analyze(accel.TraceInput(gopim.Simulate(gopim.GoPIM,
		gopim.Workload{Dataset: mustDataset(t, "ddi"), Seed: 1})), nil, explain.Options{})
	s.setExplainInfo(ex)
	if err := s.finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "m.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.ExplainBottleneck == "" || m.ExplainCritShare <= 0 {
		t.Fatalf("manifest explain fields = %q/%v/%v",
			m.ExplainBottleneck, m.ExplainCritShare, m.ExplainEq6GapFrac)
	}

	// No analysis: the keys must not appear at all.
	s = newSession()
	s.setRunInfo(1, 0, "text", true)
	if err := s.finish(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, "m.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("explain_")) {
		t.Fatalf("explain keys leaked into a plain manifest:\n%s", data)
	}
}

func mustDataset(t *testing.T, name string) gopim.Dataset {
	t.Helper()
	d, err := gopim.DatasetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Flag plumbing: bad arguments fail fast with usage errors, before any
// simulation runs.
func TestExplainFlagValidation(t *testing.T) {
	s := &obsSession{}
	for _, args := range [][]string{
		{},                        // no dataset
		{"ddi", "GoPIM", "extra"}, // too many positionals
		{"no-such-dataset"},       // unknown dataset
		{"ddi", "no-such-model"},  // unknown model
		{"-mb", "-3", "ddi"},      // negative window
	} {
		if err := explainCmd(s, args, 1, experiments.FormatText); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

// The marked gantt renders '*' cells exactly where the critical path
// runs; the summary output must carry the ruler and utilization gutter.
func TestExplainGanttMarks(t *testing.T) {
	out := string(explainOutput(t, false))
	if !strings.Contains(out, "critical path") {
		t.Fatalf("missing title: %s", out)
	}
	if !strings.Contains(out, "* = critical path") || !strings.Contains(out, "*") {
		t.Fatalf("no critical-path marks in gantt:\n%s", out)
	}
	if !strings.Contains(out, "t(ns)") || !strings.Contains(out, "util") {
		t.Fatalf("gantt missing ruler/util gutter:\n%s", out)
	}
}
