package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gopim/internal/fault"
	"gopim/internal/obs"
)

// The -fault-* flags follow the GOPIM_WORKERS convention: invalid
// values warn and fall back instead of dying, and the sanitised result
// is what reaches the process-wide default and the manifest.
func TestFaultFlagFallbacks(t *testing.T) {
	var warnings bytes.Buffer
	obs.SetWarnOutput(&warnings)
	defer obs.SetWarnOutput(nil)

	// A negative rate is a typo, not a fatal error: faults stay off.
	if m := fault.FromFlags(-0.5, 1, 8); m.Enabled() {
		t.Fatal("negative -fault-rate must disable faults")
	}
	// Rate above 1 likewise.
	if m := fault.FromFlags(1.5, 1, 8); m.Enabled() {
		t.Fatal("-fault-rate > 1 must disable faults")
	}
	// A zero verify budget falls back to the default, keeping the rate.
	m := fault.FromFlags(0.001, 7, 0)
	if !m.Enabled() {
		t.Fatal("valid rate with bad verify budget must keep faults on")
	}
	if cfg := m.Config(); cfg.VerifyMax != fault.DefaultVerifyMax || cfg.Seed != 7 {
		t.Fatalf("sanitised config = %+v", cfg)
	}
	if !strings.Contains(warnings.String(), "fault") {
		t.Fatalf("invalid flags must hit the warn path, got: %q", warnings.String())
	}
}

// setFaultInfo records the active knobs in the manifest — and only
// when faults are on, so default-run manifests keep their shape.
func TestManifestFaultFields(t *testing.T) {
	resetObs(t)
	dir := t.TempDir()
	newSession := func() *obsSession {
		s, err := startObsSession(obsFlags{
			metricsPath: filepath.Join(dir, "m.txt"),
		}, []string{"all"})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := newSession()
	s.setRunInfo(1, 0, "text", true)
	s.setFaultInfo(0.001, 5, 8)
	if err := s.finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "m.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.FaultRate != 0.001 || m.FaultSeed != 5 || m.FaultVerifyMax != 8 {
		t.Fatalf("manifest fault fields = %v/%v/%v", m.FaultRate, m.FaultSeed, m.FaultVerifyMax)
	}

	// Faults off: the keys must not even appear in the JSON.
	s = newSession()
	s.setRunInfo(1, 0, "text", true)
	s.setFaultInfo(0, 5, 8) // rate 0 = off
	if err := s.finish(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, "m.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("fault_")) {
		t.Fatalf("fault keys leaked into a fault-free manifest:\n%s", data)
	}
}
