package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gopim/internal/obs"
	"gopim/internal/simmemo"
	"gopim/internal/spmm"
)

// The -spmm and -sim-memo knobs follow the GOPIM_WORKERS convention:
// invalid values warn and fall back (auto / on) instead of dying, and
// the sanitised result is what reaches the process-wide state.
func TestKernelFlagFallbacks(t *testing.T) {
	var warnings bytes.Buffer
	restore := obs.SetWarnOutput(&warnings)
	defer restore()
	defer spmm.SetForced(spmm.Auto)
	defer simmemo.SetEnabled(true)
	t.Setenv(spmm.EnvVar, "")
	t.Setenv(simmemo.EnvVar, "")

	spmm.Configure("bukceted") // typo'd strategy: stays auto
	if spmm.Forced() != spmm.Auto {
		t.Fatalf("typo'd -spmm must keep auto, got %v", spmm.Forced())
	}
	simmemo.Configure("offf") // typo'd switch: stays on
	if !simmemo.Enabled() {
		t.Fatal("typo'd -sim-memo must keep the memo on")
	}
	if warnings.Len() == 0 {
		t.Fatal("invalid kernel knobs must hit the warn path")
	}

	spmm.Configure("edge")
	simmemo.Configure("off")
	if spmm.Forced() != spmm.Edge || simmemo.Enabled() {
		t.Fatalf("valid knobs must apply: spmm=%v memo=%v", spmm.Forced(), simmemo.Enabled())
	}
}

// setKernelInfo records the autotuner provenance in the run manifest —
// forced strategy and memo state only when off the defaults, per-graph
// choices whenever any were resolved — so default-run manifests keep
// their shape.
func TestManifestKernelFields(t *testing.T) {
	resetObs(t)
	defer spmm.SetForced(spmm.Auto)
	defer simmemo.SetEnabled(true)
	defer spmm.ResetChoices()
	dir := t.TempDir()
	runSession := func() *obs.Manifest {
		s, err := startObsSession(obsFlags{
			metricsPath: filepath.Join(dir, "m.txt"),
		}, []string{"all"})
		if err != nil {
			t.Fatal(err)
		}
		s.setRunInfo(1, 0, "text", true)
		if err := s.finish(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "m.manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		m := new(obs.Manifest)
		if err := json.Unmarshal(data, m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Defaults: none of the kernel keys appear.
	spmm.SetForced(spmm.Auto)
	simmemo.SetEnabled(true)
	spmm.ResetChoices()
	m := runSession()
	if m.SpMMStrategy != "" || m.SpMMChoices != nil || m.SimMemo != "" {
		t.Fatalf("default manifest must omit kernel fields, got strategy=%q choices=%v memo=%q",
			m.SpMMStrategy, m.SpMMChoices, m.SimMemo)
	}

	// Forced strategy + memo off + a resolved choice all surface.
	spmm.SetForced(spmm.Bucketed)
	simmemo.SetEnabled(false)
	spmm.Record("ddi/v300", spmm.Bucketed)
	m = runSession()
	if m.SpMMStrategy != "bucketed" {
		t.Fatalf("manifest strategy = %q, want bucketed", m.SpMMStrategy)
	}
	if m.SimMemo != "off" {
		t.Fatalf("manifest sim_memo = %q, want off", m.SimMemo)
	}
	if m.SpMMChoices["ddi/v300"] != "bucketed" {
		t.Fatalf("manifest choices = %v", m.SpMMChoices)
	}
}
