// Command gopim regenerates the paper's evaluation tables and figures
// and runs ad-hoc accelerator comparisons.
//
// Usage:
//
//	gopim list                     list the regenerable experiments
//	gopim all                      regenerate every table and figure
//	gopim fig13 tab5 ...           regenerate specific artifacts
//	gopim compare <dataset>        run the six baselines on one dataset
//	gopim gantt <dataset> <model>  render the pipeline schedule
//	gopim theta <dataset>          re-derive the adaptive θ (§VI-C)
//	gopim endurance <dataset>      ISU's array-lifetime effect
//	gopim churn <dataset>          stream seeded graph mutations through
//	                               the robustness loop: incremental
//	                               re-mapping, ISU plan refreshes, wear
//	                               retirement and degraded allocation
//	                               (see -churn-rate below)
//	gopim explain <dataset> [model]  critical-path bottleneck analysis:
//	                               which stage bounds the makespan, why,
//	                               and what ±1 replica would change
//	gopim bench -label L           run the regression bench suite and
//	                               write BENCH_L.json; -attrib adds the
//	                               stage-level attribution report
//	gopim diff <old> <new>         compare two BENCH files (or raw
//	                               -metrics JSON snapshots); nonzero
//	                               exit on sim-clock regression
//	gopim serve -addr A            run the allocation-planning daemon
//	                               (POST /v1/plan; see DESIGN.md §13)
//
// Flags:
//
//	-seed N      random seed for synthetic graph generation (default 1)
//	-fast        shrink workloads for a quick smoke run
//	-format f    text, csv or markdown for experiment output
//	-workers N   worker-pool size for parallel kernels and the
//	             experiment fan-out (default: GOPIM_WORKERS env, else
//	             GOMAXPROCS); output is identical at any worker count
//	-spmm s      SpMM strategy: auto (per-graph selector), row, blocked,
//	             bucketed or edge (default: GOPIM_SPMM env, else auto);
//	             every strategy is bitwise-equal, so this is purely a
//	             performance knob
//	-sim-memo v  on/off for the sweep-memoization layer (default:
//	             GOPIM_SIM_MEMO env, else on); off recomputes every
//	             sweep cell, matching pre-memo behaviour exactly
//
// Fault-injection flags (see DESIGN.md §Fault model; all off by
// default — a run without them is byte-identical to one before the
// fault layer existed):
//
//	-fault-rate p        stuck-at cell probability in [0,1]; 0 disables
//	-fault-seed N        seed for the per-crossbar fault streams
//	                     (default 1); output is a pure function of it
//	-fault-verify-max N  write-verify retry budget per row write
//	                     (default 8)
//
// Streaming-churn flags (see DESIGN.md §Streaming churn; all off by
// default, same byte-stability contract as the fault flags):
//
//	-churn-rate p        fraction of edges mutated per churn epoch in
//	                     [0,1]; 0 disables churn
//	-churn-seed N        seed for the per-epoch churn streams
//	                     (default 1); output is a pure function of it
//	-refresh-policy P    when the ISU plan is recomputed under drift:
//	                     eager, threshold or adaptive (default
//	                     threshold)
//
// Observability flags (see DESIGN.md §Observability):
//
//	-metrics f   write a metrics snapshot on exit (.csv/.json by
//	             extension, else text with wall metrics behind '#')
//	-trace-out f write wall-clock spans (and, for gantt, the simulated
//	             schedule) as Chrome trace-event JSON — load in Perfetto
//	-manifest f  write the run manifest (default: derived from
//	             -metrics/-trace-out)
//	-progress    per-experiment start/done lines on stderr
//	-pprof addr  serve net/http/pprof, expvar and /debug/metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"gopim"
	"gopim/internal/churn"
	"gopim/internal/endurance"
	"gopim/internal/experiments"
	"gopim/internal/fault"
	"gopim/internal/gcn"
	"gopim/internal/mapping"
	"gopim/internal/simmemo"
	"gopim/internal/spmm"
	"gopim/internal/trace"
	"gopim/internal/tuner"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for synthetic graph generation")
	fast := flag.Bool("fast", false, "shrink workloads for a quick smoke run")
	format := flag.String("format", "text", "output format: text, csv, markdown")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOPIM_WORKERS env, else GOMAXPROCS)")
	spmmFlag := flag.String("spmm", "", "SpMM strategy: auto|row|blocked|bucketed|edge (default: GOPIM_SPMM env, else auto)")
	simMemo := flag.String("sim-memo", "", "sweep-memoization layer: on|off (default: GOPIM_SIM_MEMO env, else on)")
	faultRate := flag.Float64("fault-rate", 0, "stuck-at cell fault probability in [0,1] (0 = faults off)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault streams")
	faultVerifyMax := flag.Int("fault-verify-max", fault.DefaultVerifyMax, "write-verify retry budget per row write")
	churnRate := flag.Float64("churn-rate", 0, "streaming-graph churn rate: fraction of edges mutated per epoch in [0,1] (0 = churn off)")
	churnSeed := flag.Int64("churn-seed", 1, "seed for the deterministic churn streams")
	refreshPolicy := flag.String("refresh-policy", "", "ISU plan refresh policy under churn: eager|threshold|adaptive (default threshold)")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot to this file on exit (.csv/.json by extension, else text)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (load in Perfetto)")
	manifestPath := flag.String("manifest", "", "write the run manifest to this file (default: derived from -metrics/-trace-out)")
	progress := flag.Bool("progress", false, "report per-experiment progress on stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof, expvar and /debug/metrics on this address (e.g. localhost:6060)")
	flag.Usage = usage
	flag.Parse()

	// Validate -format up front: under `gopim all` a typo must fail
	// before the first experiment runs, not after it.
	outFormat, err := experiments.ParseFormat(*format)
	if err != nil {
		fatal(err.Error())
	}
	gopim.SetWorkers(*workers)
	// The kernel knobs share the GOPIM_WORKERS convention (see below):
	// invalid values warn and fall back rather than abort, and neither
	// knob can change output bytes — -spmm picks among bitwise-equal
	// kernels, -sim-memo only skips recomputation.
	spmm.Configure(*spmmFlag)
	simmemo.Configure(*simMemo)

	// Fault flags follow the GOPIM_WORKERS convention rather than the
	// -format one: invalid values warn (via the obs warn path and the
	// fault.flags_invalid counter) and fall back to safe defaults, so a
	// long sweep never dies on a typo'd knob after hours of simulation.
	faultModel := fault.FromFlags(*faultRate, *faultSeed, *faultVerifyMax)
	fault.SetDefault(faultModel)

	// Churn flags share that convention: a bad rate or policy warns,
	// bumps churn.flags_invalid and falls back (rate → 0, policy →
	// threshold) instead of aborting.
	churnCfg := churn.FromFlags(*churnRate, *churnSeed, *refreshPolicy)

	// Same principle for the observability outputs: open files and bind
	// the debug listener before any experiment runs.
	sess, err := startObsSession(obsFlags{
		metricsPath:  *metricsPath,
		tracePath:    *traceOut,
		manifestPath: *manifestPath,
		progress:     *progress,
		pprofAddr:    *pprofAddr,
	}, os.Args[1:])
	if err != nil {
		fatal(err.Error())
	}
	sess.setRunInfo(*seed, *workers, *format, *fast)
	if faultModel.Enabled() {
		cfg := faultModel.Config()
		sess.setFaultInfo(cfg.Rate, cfg.Seed, cfg.VerifyMax)
	}
	sess.setChurnInfo(churnCfg.Rate, churnCfg.Seed, string(churnCfg.Policy))

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	opt := gopim.ExperimentOptions{Seed: *seed, Fast: *fast}

	// exitCode defers a nonzero exit (diff regressions) until after the
	// observability session has flushed its artifacts.
	exitCode := 0
	switch args[0] {
	case "list":
		for _, id := range gopim.Experiments() {
			fmt.Println(id)
		}
	case "all":
		runExperiments(sess, gopim.Experiments(), opt, outFormat)
	case "compare":
		if len(args) != 2 {
			fatal("usage: gopim compare <dataset>")
		}
		c, err := gopim.Compare(args[1], *seed)
		if err != nil {
			fatal(err.Error())
		}
		if err := c.Render(os.Stdout); err != nil {
			fatal(err.Error())
		}
	case "gantt":
		if len(args) != 3 {
			fatal("usage: gopim gantt <dataset> <Serial|GoPIM|...>")
		}
		if err := renderGantt(sess, args[1], args[2], *seed); err != nil {
			fatal(err.Error())
		}
	case "theta":
		if len(args) != 2 {
			fatal("usage: gopim theta <dataset>")
		}
		if err := searchTheta(args[1], *seed, *fast); err != nil {
			fatal(err.Error())
		}
	case "endurance":
		if len(args) != 2 {
			fatal("usage: gopim endurance <dataset>")
		}
		if err := showEndurance(args[1], *seed); err != nil {
			fatal(err.Error())
		}
	case "churn":
		if err := churnCmd(args[1:], *seed, *fast, churnCfg); err != nil {
			fatal(err.Error())
		}
	case "bench":
		if err := benchCmd(args[1:], *seed, *fast, outFormat); err != nil {
			fatal(err.Error())
		}
	case "explain":
		if err := explainCmd(sess, args[1:], *seed, outFormat); err != nil {
			fatal(err.Error())
		}
	case "serve":
		if err := serveCmd(sess, args[1:]); err != nil {
			fatal(err.Error())
		}
	case "diff":
		regressions, err := diffCmd(args[1:], outFormat)
		if err != nil {
			fatal(err.Error())
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "gopim: %d sim-clock metric(s) regressed\n", regressions)
			exitCode = 1
		}
	default:
		runExperiments(sess, args, opt, outFormat)
	}
	if err := sess.finish(); err != nil {
		fatal(err.Error())
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// runExperiments fans the experiments out across the worker pool and
// renders the results in the order the ids were given, so output is
// byte-identical at any worker count.
func runExperiments(sess *obsSession, ids []string, opt gopim.ExperimentOptions, format experiments.Format) {
	onStart, onDone := sess.hooks()
	results, err := gopim.RunExperimentsWithHooks(ids, opt,
		gopim.ExperimentHooks{OnStart: onStart, OnDone: onDone})
	if err != nil {
		fatal(err.Error())
	}
	for _, res := range results {
		if err := res.RenderAs(os.Stdout, format); err != nil {
			fatal(err.Error())
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `gopim — GoPIM (HPCA 2025) reproduction driver

usage:
  gopim [flags] list
  gopim [flags] all
  gopim [flags] <experiment-id>...
  gopim [flags] compare <dataset>
  gopim [flags] bench [-label L] [-repeats N] [-attrib]
  gopim [flags] explain [-mb N] [-json] [-no-sensitivity] [-gantt] <dataset> [model]
  gopim [flags] churn [-epochs N] [-wear-days D] <dataset>
  gopim [flags] diff [-rel R] <old.json> <new.json>
  gopim [flags] serve [-addr A] [-serve-workers N] [-queue N] [-cache N]

flags:
`)
	flag.PrintDefaults()
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "gopim:", msg)
	os.Exit(1)
}

// modelByName resolves an accelerator model from its display name.
func modelByName(name string) (gopim.Model, error) {
	for _, k := range []gopim.Model{
		gopim.Serial, gopim.SlimGNNLike, gopim.ReGraphX, gopim.ReFlip,
		gopim.GoPIMVanilla, gopim.GoPIM, gopim.PlusPP, gopim.PlusISU,
	} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown model %q (try Serial, GoPIM, ReGraphX, ReFlip, SlimGNN-like, GoPIM-Vanilla)", name)
}

// renderGantt simulates the model on the dataset and draws the
// replica-level schedule of the first 16 micro-batches. With
// -trace-out set, the same schedule also lands in the Chrome trace on
// the simulated-time process track.
func renderGantt(sess *obsSession, dataset, model string, seed int64) error {
	d, err := gopim.DatasetByName(dataset)
	if err != nil {
		return err
	}
	kind, err := modelByName(model)
	if err != nil {
		return err
	}
	r := gopim.Simulate(kind, gopim.Workload{Dataset: d, Seed: seed})
	mb := r.MicroBatches
	if mb > 16 {
		mb = 16
	}
	sched := trace.Simulate(trace.Input{
		TimesNS:      r.StageTimesNS,
		Replicas:     r.Replicas,
		MicroBatches: mb,
	})
	sess.addSimEvents(sched.ChromeTraceEvents(r.StageNames))
	fmt.Printf("%s on %s — first %d micro-batches (replica-level trace):\n",
		model, dataset, mb)
	return sched.RenderGantt(os.Stdout, 100, r.StageNames)
}

// searchTheta re-derives the adaptive update threshold for a dataset.
func searchTheta(dataset string, seed int64, fast bool) error {
	d, err := gopim.DatasetByName(dataset)
	if err != nil {
		return err
	}
	maxV, epochs := 900, 40
	if fast {
		maxV, epochs = 300, 15
	}
	inst := d.Synthesize(seed, maxV)
	res := tuner.SearchTheta(inst, tuner.Config{
		Thetas:      []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		MaxLoss:     0.01,
		Train:       gcn.Config{Epochs: epochs, Seed: seed, LR: 0.005, Dropout: 0},
		StalePeriod: epochs / 5,
		// Same content-key convention as the experiments' instance
		// cache: the sweep's θ=1 baseline and any matching experiment
		// run share one memoized training.
		InstanceKey: fmt.Sprintf("%+v|%d|%d", d, seed, maxV),
	})
	fmt.Printf("θ search on %s (baseline accuracy %.2f%%):\n", dataset, res.Baseline*100)
	for _, p := range res.Points {
		fmt.Printf("  θ=%.0f%%  accuracy %6.2f%%  rows rewritten/epoch %5.1f%%\n",
			p.Theta*100, p.Accuracy*100, p.UpdatedRowFraction*100)
	}
	fmt.Printf("chosen θ: %.0f%% (paper's density rule would pick %.0f%%)\n",
		res.Chosen*100, d.AdaptiveTheta()*100)
	return nil
}

// showEndurance reports ISU's array-lifetime effect for a dataset.
func showEndurance(dataset string, seed int64) error {
	d, err := gopim.DatasetByName(dataset)
	if err != nil {
		return err
	}
	w := gopim.Workload{Dataset: d, Seed: seed}
	r := gopim.Simulate(gopim.GoPIM, w)
	deg := d.SynthDegreeModel(seed)
	plan := mapping.NewUpdatePlan(deg.DegreesByIndex, d.AdaptiveTheta(), 20)
	// Back-to-back training runs at the simulated epoch makespan — the
	// worst-case wear scenario.
	const epochsPerRun = 200
	runsPerDay := 86400e9 / (r.MakespanNS * epochsPerRun)
	prof := endurance.Profile{
		WritesPerVertexPerEpoch: 1,
		EpochsPerRun:            epochsPerRun,
		RunsPerDay:              runsPerDay,
	}
	rep := endurance.Compare(prof, plan)
	fmt.Printf("endurance on %s (θ=%.0f%%, stale period 20, %.0f back-to-back runs/day):\n",
		dataset, d.AdaptiveTheta()*100, runsPerDay)
	fmt.Printf("  full updating:        hottest rows last %10.0f training runs (%.1f days)\n",
		endurance.ReRAMWriteLimit/epochsPerRun, rep.FullDays)
	fmt.Printf("  ISU important rows:   %10.0f training runs (%.1f days)\n",
		endurance.ReRAMWriteLimit/epochsPerRun, rep.ImportantDays)
	fmt.Printf("  ISU unimportant rows: %10.0f training runs (%.1f days, %.0fx longer)\n",
		endurance.ReRAMWriteLimit/epochsPerRun*float64(plan.StalePeriod),
		rep.UnimportantDays, rep.UnimportantDays/rep.FullDays)
	fmt.Printf("  mean wear vs full:    %.1f%%\n", rep.WearRatio*100)
	fmt.Printf("  (SRAM weight manager outlasts ReRAM by %.0e at equal traffic — §IV-A)\n",
		endurance.SRAMAdvantage())
	return nil
}
