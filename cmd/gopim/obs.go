package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gopim/internal/explain"
	"gopim/internal/obs"
	"gopim/internal/simmemo"
	"gopim/internal/spmm"
)

// obsFlags carries the CLI's observability switches.
type obsFlags struct {
	metricsPath  string // -metrics: snapshot file ("" = off)
	tracePath    string // -trace-out: Chrome trace JSON ("" = off)
	manifestPath string // -manifest: run manifest ("" = derive or skip)
	progress     bool   // -progress: per-experiment stderr lines
	pprofAddr    string // -pprof: debug HTTP listen address ("" = off)
}

// obsSession holds everything startObsSession opened. finish() flushes
// and closes it; both are cheap no-ops when every flag is off.
type obsSession struct {
	flags       obsFlags
	metricsFile *os.File
	traceFile   *os.File
	tracer      *obs.Tracer
	manifest    *obs.Manifest
	debugSrv    *obs.DebugServer
	// simEvents are simulated-time trace events (the gantt schedule)
	// merged into the trace file alongside the wall-clock spans.
	simEvents []obs.TraceEvent
}

// addSimEvents queues simulated-time events for the trace file; a
// no-op unless -trace-out is set.
func (s *obsSession) addSimEvents(ev []obs.TraceEvent) {
	if s.traceFile != nil {
		s.simEvents = append(s.simEvents, ev...)
	}
}

// setRunInfo records the output-shaping knobs in the run manifest.
func (s *obsSession) setRunInfo(seed int64, workers int, format string, fast bool) {
	if s.manifest == nil {
		return
	}
	s.manifest.Seed = seed
	s.manifest.Workers = workers
	s.manifest.Format = format
	s.manifest.Fast = fast
}

// setFaultInfo records the active fault model's sanitised knobs in the
// run manifest. No-op when faults are off, so default-run manifests
// keep their pre-fault shape.
func (s *obsSession) setFaultInfo(rate float64, seed int64, verifyMax int) {
	if s.manifest == nil || rate <= 0 {
		return
	}
	s.manifest.FaultRate = rate
	s.manifest.FaultSeed = seed
	s.manifest.FaultVerifyMax = verifyMax
}

// setChurnInfo records the sanitised streaming-churn knobs in the run
// manifest. No-op when churn is off, so default-run manifests keep
// their pre-churn shape.
func (s *obsSession) setChurnInfo(rate float64, seed int64, policy string) {
	if s.manifest == nil || rate <= 0 {
		return
	}
	s.manifest.ChurnRate = rate
	s.manifest.ChurnSeed = seed
	s.manifest.RefreshPolicy = policy
}

// setExplainInfo records the headline critical-path figures in the
// run manifest. No-op without a manifest, so other subcommands'
// manifests keep their shape.
func (s *obsSession) setExplainInfo(ex *explain.Result) {
	if s.manifest == nil || ex == nil {
		return
	}
	s.manifest.ExplainBottleneck = ex.Bottleneck
	if len(ex.Stages) > ex.BottleneckStage {
		s.manifest.ExplainCritShare = ex.Stages[ex.BottleneckStage].CritShare
	}
	s.manifest.ExplainEq6GapFrac = ex.Eq6GapFrac
}

// setKernelInfo drains the SpMM autotuner's provenance into the run
// manifest at exit: the forced -spmm strategy (when not auto), the
// per-graph choices the run resolved, and the -sim-memo knob when the
// memo layer was off. All omitempty, so default-run manifests keep
// their pre-autotuner shape.
func (s *obsSession) setKernelInfo() {
	if s.manifest == nil {
		return
	}
	if f := spmm.Forced(); f != spmm.Auto {
		s.manifest.SpMMStrategy = f.String()
	}
	s.manifest.SpMMChoices = spmm.Choices()
	if !simmemo.Enabled() {
		s.manifest.SimMemo = "off"
	}
}

// startObsSession validates the observability flags and opens their
// outputs BEFORE any experiment runs: a typo'd path or an unbindable
// -pprof address must fail a long `gopim all` run up front, not after
// hours of simulation. With every flag off it enables nothing, so the
// hot paths keep their zero-allocation contract.
func startObsSession(f obsFlags, args []string) (*obsSession, error) {
	if err := checkDistinctPaths(f); err != nil {
		return nil, err
	}
	s := &obsSession{flags: f}
	if f.metricsPath != "" || f.tracePath != "" {
		obs.SetEnabled(true)
	}
	var err error
	if f.metricsPath != "" {
		if s.metricsFile, err = os.Create(f.metricsPath); err != nil {
			return nil, fmt.Errorf("-metrics: %w", err)
		}
	}
	if f.tracePath != "" {
		if s.traceFile, err = os.Create(f.tracePath); err != nil {
			s.close()
			return nil, fmt.Errorf("-trace-out: %w", err)
		}
		s.tracer = obs.NewTracer()
		obs.SetTracer(s.tracer)
	}
	if f.pprofAddr != "" {
		if s.debugSrv, err = obs.ServeDebug(f.pprofAddr, obs.Default()); err != nil {
			s.close()
			return nil, fmt.Errorf("-pprof: %w", err)
		}
		fmt.Fprintf(os.Stderr, "gopim: debug server on http://%s/debug/pprof/\n",
			s.debugSrv.Addr())
	}
	if path := s.manifestPath(); path != "" {
		// Probe writability now; the real manifest overwrites this at exit.
		probe, err := os.Create(path)
		if err != nil {
			s.close()
			return nil, fmt.Errorf("-manifest: %w", err)
		}
		probe.Close()
		s.manifest = obs.NewManifest(args)
	}
	return s, nil
}

// checkDistinctPaths rejects observability flags that point two
// outputs at the same file: each writer opens with os.Create, so the
// later one would silently truncate the earlier one's artifact. Paths
// are compared after Clean so "./m.txt" and "m.txt" collide.
func checkDistinctPaths(f obsFlags) error {
	type out struct{ flag, path string }
	outs := []out{
		{"-metrics", f.metricsPath},
		{"-trace-out", f.tracePath},
		{"-manifest", f.manifestPath},
	}
	seen := map[string]string{}
	for _, o := range outs {
		if o.path == "" {
			continue
		}
		clean := filepath.Clean(o.path)
		if prev, dup := seen[clean]; dup {
			return fmt.Errorf("%s and %s both point at %q; give each output its own file",
				prev, o.flag, o.path)
		}
		seen[clean] = o.flag
	}
	return nil
}

// manifestPath resolves where the run manifest goes: the explicit
// -manifest flag, else derived from -metrics or -trace-out by swapping
// the extension for .manifest.json. Paths under /dev (e.g. -metrics
// /dev/stdout in CI) never derive a manifest.
func (s *obsSession) manifestPath() string {
	if s.flags.manifestPath != "" {
		return s.flags.manifestPath
	}
	for _, p := range []string{s.flags.metricsPath, s.flags.tracePath} {
		if p == "" || strings.HasPrefix(p, "/dev/") {
			continue
		}
		ext := filepath.Ext(p)
		return p[:len(p)-len(ext)] + ".manifest.json"
	}
	return ""
}

// hooks returns the per-experiment callbacks feeding -progress lines
// and the manifest's duration records.
func (s *obsSession) hooks() (onStart func(string), onDone func(string, time.Duration, error)) {
	if s.flags.progress {
		onStart = func(id string) {
			fmt.Fprintf(os.Stderr, "gopim: [%s] running %s\n",
				time.Now().Format("15:04:05"), id)
		}
	}
	if s.flags.progress || s.manifest != nil {
		onDone = func(id string, wall time.Duration, err error) {
			if s.manifest != nil {
				s.manifest.Record(id, wall, err)
			}
			if s.flags.progress {
				status := "done"
				if err != nil {
					status = "FAILED: " + err.Error()
				}
				fmt.Fprintf(os.Stderr, "gopim: [%s] %-8s %s (%.1fs)\n",
					time.Now().Format("15:04:05"), id, status, wall.Seconds())
			}
		}
	}
	return onStart, onDone
}

// finish writes every requested artifact. Called once on the way out.
func (s *obsSession) finish() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.metricsFile != nil {
		keep(writeMetricsSnapshot(s.metricsFile, s.flags.metricsPath))
	}
	if s.traceFile != nil {
		obs.SetTracer(nil)
		events := append(s.tracer.Events(), s.simEvents...)
		keep(obs.WriteTraceJSON(s.traceFile, events))
		keep(s.tracer.WriteSummary(os.Stderr))
	}
	if s.manifest != nil {
		s.setKernelInfo()
		s.manifest.Finish()
		keep(s.manifest.WriteFile(s.manifestPath()))
	}
	s.close()
	return firstErr
}

func (s *obsSession) close() {
	if s.metricsFile != nil {
		s.metricsFile.Close()
	}
	if s.traceFile != nil {
		s.traceFile.Close()
	}
	if s.debugSrv != nil {
		// Graceful drain with a short bound: a hung profile stream must
		// not wedge process exit.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = s.debugSrv.Shutdown(ctx)
		cancel()
	}
}

// writeMetricsSnapshot renders the registry in the format the path's
// extension picks: .csv and .json carry the Sim clock only (the
// machine-readable formats are for cross-run comparison, which only
// the deterministic clock supports); the default text format prints
// Sim metrics plainly and appends the Wall section behind '#' so
// `grep -v '^#'` recovers the comparable part.
func writeMetricsSnapshot(w io.Writer, path string) error {
	reg := obs.Default()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return reg.WriteCSV(w, obs.Sim)
	case ".json":
		return reg.WriteJSON(w, obs.Sim)
	}
	bw := bufio.NewWriter(w)
	if err := reg.WriteText(bw, obs.Sim); err != nil {
		return err
	}
	var wall strings.Builder
	if err := reg.WriteText(&wall, obs.Wall); err != nil {
		return err
	}
	fmt.Fprintln(bw, "# wall-clock metrics (scheduling-dependent, not comparable across runs):")
	for _, line := range strings.Split(strings.TrimRight(wall.String(), "\n"), "\n") {
		if line != "" {
			fmt.Fprintf(bw, "# %s\n", line)
		}
	}
	return bw.Flush()
}
