package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gopim/internal/obs"
)

// resetObs restores global observability state a session mutated.
func resetObs(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		obs.SetEnabled(false)
		obs.SetTracer(nil)
	})
}

// The observability flags must validate when the session starts — i.e.
// before any experiment runs — failing fast on unusable paths and
// addresses and succeeding on good ones.
func TestObsFlagPlumbing(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name  string
		flags func() obsFlags
		ok    bool
		check func(t *testing.T, s *obsSession)
	}{
		{
			name:  "all off",
			flags: func() obsFlags { return obsFlags{} },
			ok:    true,
			check: func(t *testing.T, s *obsSession) {
				if obs.Enabled() {
					t.Error("observability enabled with every flag off")
				}
				if s.manifest != nil {
					t.Error("manifest created with every flag off")
				}
			},
		},
		{
			name: "metrics file",
			flags: func() obsFlags {
				return obsFlags{metricsPath: filepath.Join(dir, "m.txt")}
			},
			ok: true,
			check: func(t *testing.T, s *obsSession) {
				if !obs.Enabled() {
					t.Error("-metrics must enable observability")
				}
				if s.metricsFile == nil {
					t.Error("metrics file not opened up front")
				}
				if got := s.manifestPath(); got != filepath.Join(dir, "m.manifest.json") {
					t.Errorf("derived manifest path = %q", got)
				}
			},
		},
		{
			name: "trace file installs tracer",
			flags: func() obsFlags {
				return obsFlags{tracePath: filepath.Join(dir, "t.json")}
			},
			ok: true,
			check: func(t *testing.T, s *obsSession) {
				if obs.CurrentTracer() == nil {
					t.Error("-trace-out must install the tracer")
				}
			},
		},
		{
			name:  "progress only",
			flags: func() obsFlags { return obsFlags{progress: true} },
			ok:    true,
			check: func(t *testing.T, s *obsSession) {
				onStart, onDone := s.hooks()
				if onStart == nil || onDone == nil {
					t.Error("-progress must produce both hooks")
				}
			},
		},
		{
			name: "metrics path in missing directory fails",
			flags: func() obsFlags {
				return obsFlags{metricsPath: filepath.Join(dir, "no/such/dir/m.txt")}
			},
			ok: false,
		},
		{
			name: "trace path in missing directory fails",
			flags: func() obsFlags {
				return obsFlags{tracePath: filepath.Join(dir, "no/such/dir/t.json")}
			},
			ok: false,
		},
		{
			name:  "unbindable pprof address fails",
			flags: func() obsFlags { return obsFlags{pprofAddr: "256.0.0.1:bad"} },
			ok:    false,
		},
		{
			name: "valid pprof address binds",
			flags: func() obsFlags {
				return obsFlags{pprofAddr: "127.0.0.1:0"}
			},
			ok: true,
			check: func(t *testing.T, s *obsSession) {
				if s.debugSrv == nil {
					t.Error("debug server not bound")
				}
			},
		},
		{
			name: "dev path derives no manifest",
			flags: func() obsFlags {
				return obsFlags{metricsPath: "/dev/null"}
			},
			ok: true,
			check: func(t *testing.T, s *obsSession) {
				if got := s.manifestPath(); got != "" {
					t.Errorf("manifest path for /dev metrics = %q, want none", got)
				}
			},
		},
		{
			name: "metrics and trace sharing a file fails",
			flags: func() obsFlags {
				p := filepath.Join(dir, "shared.json")
				return obsFlags{metricsPath: p, tracePath: p}
			},
			ok: false,
		},
		{
			name: "manifest colliding with metrics fails",
			flags: func() obsFlags {
				p := filepath.Join(dir, "collide.txt")
				return obsFlags{metricsPath: p, manifestPath: p}
			},
			ok: false,
		},
		{
			name: "unclean spelling of the same path fails",
			flags: func() obsFlags {
				return obsFlags{
					metricsPath: filepath.Join(dir, "m3.txt"),
					tracePath:   filepath.Join(dir, ".", "m3.txt") + string(filepath.Separator) + ".." + string(filepath.Separator) + "m3.txt",
				}
			},
			ok: false,
		},
		{
			name: "distinct paths pass",
			flags: func() obsFlags {
				return obsFlags{
					metricsPath:  filepath.Join(dir, "d1.txt"),
					tracePath:    filepath.Join(dir, "d2.json"),
					manifestPath: filepath.Join(dir, "d3.json"),
				}
			},
			ok: true,
		},
		{
			name: "explicit manifest flag wins",
			flags: func() obsFlags {
				return obsFlags{
					metricsPath:  filepath.Join(dir, "m2.txt"),
					manifestPath: filepath.Join(dir, "run.json"),
				}
			},
			ok: true,
			check: func(t *testing.T, s *obsSession) {
				if got := s.manifestPath(); got != filepath.Join(dir, "run.json") {
					t.Errorf("manifest path = %q", got)
				}
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resetObs(t)
			s, err := startObsSession(tc.flags(), []string{"-fast", "all"})
			if (err == nil) != tc.ok {
				t.Fatalf("startObsSession err = %v, want ok=%v", err, tc.ok)
			}
			if err != nil {
				return
			}
			defer s.close()
			if tc.check != nil {
				tc.check(t, s)
			}
		})
	}
}

// A full session round-trip: finish() must leave a non-empty snapshot,
// a parseable trace and a manifest on disk.
func TestObsSessionFinishWritesArtifacts(t *testing.T) {
	resetObs(t)
	dir := t.TempDir()
	mPath := filepath.Join(dir, "m.txt")
	tPath := filepath.Join(dir, "t.json")
	s, err := startObsSession(obsFlags{metricsPath: mPath, tracePath: tPath},
		[]string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	obs.NewCounter("cmdtest.finish_counter", obs.Sim, "test").Inc()
	sp := obs.StartSpan("cmdtest.span")
	sp.End()
	if s.manifest == nil {
		t.Fatal("no manifest for file-backed session")
	}
	s.manifest.Record("fig0", 0, nil)
	if err := s.finish(); err != nil {
		t.Fatal(err)
	}
	metrics, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "cmdtest.finish_counter counter count=1") {
		t.Errorf("snapshot missing test counter:\n%s", metrics)
	}
	traceJSON, err := os.ReadFile(tPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(traceJSON), `"cmdtest.span"`) {
		t.Errorf("trace missing span:\n%s", traceJSON)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "m.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), `"fig0"`) {
		t.Errorf("manifest missing experiment record:\n%s", manifest)
	}
}

// The text snapshot keeps wall-clock metrics behind '#' so that
// stripping comments yields the deterministic Sim-only view.
func TestWriteMetricsSnapshotTextSeparatesClocks(t *testing.T) {
	resetObs(t)
	obs.NewCounter("cmdtest.sim_line", obs.Sim, "test").Inc()
	obs.NewCounter("cmdtest.wall_line", obs.Wall, "test").Inc()
	var b strings.Builder
	if err := writeMetricsSnapshot(&b, "m.txt"); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.Contains(line, "cmdtest.sim_line") && strings.HasPrefix(line, "#") {
			t.Errorf("sim metric behind comment: %q", line)
		}
		if strings.Contains(line, "cmdtest.wall_line") && !strings.HasPrefix(line, "#") {
			t.Errorf("wall metric not behind comment: %q", line)
		}
	}
}
