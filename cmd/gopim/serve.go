package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gopim/internal/obs"
	"gopim/internal/serve"
)

// serveFlags carries the parsed `gopim serve` configuration.
type serveFlags struct {
	cfg serve.Config
	// accessLog is the structured-log destination: "" = off, "-" =
	// stderr, else a file path. Opened by serveCmd, not here, so flag
	// parsing stays side-effect-free and testable.
	accessLog string
}

// parseServeFlags parses the serve subcommand's own flag set. Split
// from serveCmd so the plumbing is testable without binding sockets.
func parseServeFlags(args []string) (serveFlags, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	workers := fs.Int("serve-workers", 0, "concurrent planning computations (0 = worker-pool size)")
	queue := fs.Int("queue", serve.DefaultQueueDepth, "waiting requests admitted beyond the workers; overflow gets 429")
	cacheSize := fs.Int("cache", serve.DefaultCacheSize, "cached plans before LRU eviction")
	reqTimeout := fs.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request deadline (queue wait + computation)")
	accessLog := fs.String("access-log", "", "structured JSON access log destination (\"-\" = stderr)")
	traceSample := fs.Float64("trace-sample", 1.0, "fraction of requests recording per-stage spans (0..1)")
	ring := fs.Int("requests-ring", serve.DefaultRequestRing, "completed requests retained by /debug/requests (0 = none)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gopim [flags] serve [-addr A] [-serve-workers N] [-queue N] [-cache N] [-request-timeout D] [-access-log PATH] [-trace-sample F] [-requests-ring N]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return serveFlags{}, err
	}
	if fs.NArg() != 0 {
		return serveFlags{}, fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	if *queue < 0 {
		return serveFlags{}, fmt.Errorf("serve: -queue %d must be ≥ 0", *queue)
	}
	if *cacheSize < 1 {
		return serveFlags{}, fmt.Errorf("serve: -cache %d must be ≥ 1", *cacheSize)
	}
	if *reqTimeout <= 0 {
		return serveFlags{}, fmt.Errorf("serve: -request-timeout %v must be positive", *reqTimeout)
	}
	if *traceSample < 0 || *traceSample > 1 || *traceSample != *traceSample {
		return serveFlags{}, fmt.Errorf("serve: -trace-sample %v must be in [0,1]", *traceSample)
	}
	if *ring < 0 {
		return serveFlags{}, fmt.Errorf("serve: -requests-ring %d must be ≥ 0", *ring)
	}
	f := serveFlags{
		cfg: serve.Config{
			Addr:           *addr,
			Workers:        *workers,
			CacheSize:      *cacheSize,
			RequestTimeout: *reqTimeout,
			TraceSample:    *traceSample,
		},
		accessLog: *accessLog,
	}
	// Config uses 0 = default, -1 = none; the flags use plain counts.
	if *queue == 0 {
		f.cfg.QueueDepth = -1
	} else {
		f.cfg.QueueDepth = *queue
	}
	if *ring == 0 {
		f.cfg.RequestRing = -1
	} else {
		f.cfg.RequestRing = *ring
	}
	return f, nil
}

// serveCmd runs the planning daemon until SIGINT/SIGTERM, then drains
// gracefully so the observability session can still flush its
// artifacts (metrics snapshot, run manifest).
func serveCmd(sess *obsSession, args []string) error {
	f, err := parseServeFlags(args)
	if err != nil {
		return err
	}
	// Per-request manifest records and -progress lines ride the same
	// hooks experiments use.
	_, onDone := sess.hooks()
	if onDone != nil {
		f.cfg.OnRequest = onDone
	}

	// Access log: structured JSON lines to stderr or a file, with the
	// process warn path routed through the same sink so every line of
	// the daemon's output is one greppable stream.
	if f.accessLog != "" {
		var w io.Writer = os.Stderr
		if f.accessLog != "-" {
			af, err := os.Create(f.accessLog)
			if err != nil {
				return fmt.Errorf("-access-log: %w", err)
			}
			defer af.Close()
			w = af
		}
		al := obs.NewAccessLogger(w)
		f.cfg.AccessLog = al
		restore := obs.SetLogger(al.Logger())
		defer restore()
	}

	srv := serve.New(f.cfg)
	if err := srv.Start(); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintf(os.Stderr, "gopim: planning daemon on http://%s (POST /v1/plan; %d workers)\n",
		srv.Addr(), srv.Workers())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintln(os.Stderr, "gopim: shutting down, draining in-flight requests")
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shCtx)
}
