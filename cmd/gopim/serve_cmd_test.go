package main

import (
	"testing"
	"time"

	"gopim/internal/serve"
)

func TestParseServeFlagsDefaults(t *testing.T) {
	f, err := parseServeFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := serve.Config{
		Addr:           "localhost:8080",
		Workers:        0,
		QueueDepth:     serve.DefaultQueueDepth,
		CacheSize:      serve.DefaultCacheSize,
		RequestTimeout: serve.DefaultRequestTimeout,
	}
	if f.cfg.Addr != want.Addr || f.cfg.Workers != want.Workers ||
		f.cfg.QueueDepth != want.QueueDepth || f.cfg.CacheSize != want.CacheSize ||
		f.cfg.RequestTimeout != want.RequestTimeout {
		t.Fatalf("defaults = %+v, want %+v", f.cfg, want)
	}
}

func TestParseServeFlagsOverridesAndQueueOff(t *testing.T) {
	f, err := parseServeFlags([]string{
		"-addr", ":9999", "-serve-workers", "3", "-queue", "0",
		"-cache", "16", "-request-timeout", "250ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.cfg.Addr != ":9999" || f.cfg.Workers != 3 || f.cfg.CacheSize != 16 ||
		f.cfg.RequestTimeout != 250*time.Millisecond {
		t.Fatalf("overrides = %+v", f.cfg)
	}
	// -queue 0 means "no queue beyond the workers", which the Config
	// spells as a negative depth (0 would mean the default).
	if f.cfg.QueueDepth != -1 {
		t.Fatalf("QueueDepth = %d, want -1 for -queue 0", f.cfg.QueueDepth)
	}
}

func TestParseServeFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-queue", "-1"},
		{"-cache", "0"},
		{"-request-timeout", "-1s"},
		{"stray-positional"},
	} {
		if _, err := parseServeFlags(args); err == nil {
			t.Errorf("parseServeFlags(%v) accepted invalid input", args)
		}
	}
}
