package main

import (
	"testing"
	"time"

	"gopim/internal/serve"
)

func TestParseServeFlagsDefaults(t *testing.T) {
	f, err := parseServeFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := serve.Config{
		Addr:           "localhost:8080",
		Workers:        0,
		QueueDepth:     serve.DefaultQueueDepth,
		CacheSize:      serve.DefaultCacheSize,
		RequestTimeout: serve.DefaultRequestTimeout,
		TraceSample:    1.0,
		RequestRing:    serve.DefaultRequestRing,
	}
	if f.cfg.Addr != want.Addr || f.cfg.Workers != want.Workers ||
		f.cfg.QueueDepth != want.QueueDepth || f.cfg.CacheSize != want.CacheSize ||
		f.cfg.RequestTimeout != want.RequestTimeout ||
		f.cfg.TraceSample != want.TraceSample || f.cfg.RequestRing != want.RequestRing {
		t.Fatalf("defaults = %+v, want %+v", f.cfg, want)
	}
	if f.accessLog != "" {
		t.Fatalf("access log default = %q, want off", f.accessLog)
	}
}

func TestParseServeFlagsTelemetry(t *testing.T) {
	f, err := parseServeFlags([]string{
		"-access-log", "-", "-trace-sample", "0.25", "-requests-ring", "64",
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.accessLog != "-" {
		t.Fatalf("accessLog = %q, want -", f.accessLog)
	}
	if f.cfg.TraceSample != 0.25 {
		t.Fatalf("TraceSample = %v, want 0.25", f.cfg.TraceSample)
	}
	if f.cfg.RequestRing != 64 {
		t.Fatalf("RequestRing = %d, want 64", f.cfg.RequestRing)
	}

	// -requests-ring 0 disables retention, which the Config spells as a
	// negative capacity (0 would mean the default).
	f, err = parseServeFlags([]string{"-requests-ring", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if f.cfg.RequestRing != -1 {
		t.Fatalf("RequestRing = %d, want -1 for -requests-ring 0", f.cfg.RequestRing)
	}
}

func TestParseServeFlagsOverridesAndQueueOff(t *testing.T) {
	f, err := parseServeFlags([]string{
		"-addr", ":9999", "-serve-workers", "3", "-queue", "0",
		"-cache", "16", "-request-timeout", "250ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.cfg.Addr != ":9999" || f.cfg.Workers != 3 || f.cfg.CacheSize != 16 ||
		f.cfg.RequestTimeout != 250*time.Millisecond {
		t.Fatalf("overrides = %+v", f.cfg)
	}
	// -queue 0 means "no queue beyond the workers", which the Config
	// spells as a negative depth (0 would mean the default).
	if f.cfg.QueueDepth != -1 {
		t.Fatalf("QueueDepth = %d, want -1 for -queue 0", f.cfg.QueueDepth)
	}
}

func TestParseServeFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-queue", "-1"},
		{"-cache", "0"},
		{"-request-timeout", "-1s"},
		{"-trace-sample", "1.5"},
		{"-trace-sample", "-0.1"},
		{"-trace-sample", "NaN"},
		{"-requests-ring", "-2"},
		{"stray-positional"},
	} {
		if _, err := parseServeFlags(args); err == nil {
			t.Errorf("parseServeFlags(%v) accepted invalid input", args)
		}
	}
}
