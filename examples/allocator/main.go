// Allocator: tune a custom GCN pipeline with the paper's Algorithm 1
// and compare it against the baseline allocation policies.
//
// This example drives the internal building blocks directly — the
// stage timing model, the allocators, and the pipeline scheduler — to
// show how an unbalanced pipeline (aggregation hundreds of times
// slower than combination) responds to different replica policies.
//
// Run with:
//
//	go run ./examples/allocator
package main

import (
	"fmt"
	"log"

	"gopim/internal/alloc"
	"gopim/internal/graphgen"
	"gopim/internal/pipeline"
	"gopim/internal/reram"
	"gopim/internal/stage"
)

func main() {
	log.SetFlags(0)

	// A custom 2-layer GCN on a mid-sized power-law graph.
	d, err := graphgen.ByName("ddi")
	if err != nil {
		log.Fatal(err)
	}
	d.HiddenCh = 512 // customise the architecture
	cfg := stage.Config{
		Chip:       reram.DefaultChip(),
		Dataset:    d,
		Deg:        d.SynthDegreeModel(7),
		MicroBatch: 64,
	}
	stages := stage.Build(cfg)
	numMB := (cfg.Deg.N + cfg.MicroBatch - 1) / cfg.MicroBatch

	fmt.Println("pipeline stages (per-micro-batch, single replica):")
	for _, s := range stages {
		fmt.Printf("  %-4s %10.1f µs  %7d crossbars/replica\n",
			s.Name, s.TimeNS/1e3, s.Crossbars)
	}

	// Give every policy the same unused-crossbar budget.
	budget := cfg.Chip.TotalCrossbars() - stage.TotalCrossbars(stages)
	req := alloc.FromStages(stages, budget, numMB)
	caps := make([]int, len(stages))
	for i := range caps {
		caps[i] = numMB * cfg.MicroBatch
	}
	req.MaxReplicas = caps

	policies := []struct {
		name string
		run  func(alloc.Request) alloc.Result
	}{
		{"no replicas", func(r alloc.Request) alloc.Result {
			ones := make([]int, len(stages))
			for i := range ones {
				ones[i] = 1
			}
			return alloc.Result{Replicas: ones}
		}},
		{"equal split (Pipelayer)", alloc.EqualSplit},
		{"fixed 1:2 (ReGraphX)", func(r alloc.Request) alloc.Result { return alloc.FixedRatio(r, 1, 2) }},
		{"combination-only (ReFlip)", alloc.CombinationOnly},
		{"greedy (GoPIM Algorithm 1)", alloc.Greedy},
	}

	fmt.Printf("\nallocation policies (budget %d crossbars, B=%d micro-batches):\n", budget, numMB)
	var base float64
	for _, p := range policies {
		res := p.run(req)
		sched := pipeline.Simulate(pipeline.Input{
			TimesNS:      req.TimesNS,
			Replicas:     res.Replicas,
			MicroBatches: numMB,
			Mode:         pipeline.IntraInterBatch,
		})
		if base == 0 {
			base = sched.MakespanNS
		}
		fmt.Printf("  %-28s makespan %10.3f ms  speedup %8.1fx  crossbars used %d\n",
			p.name, sched.MakespanNS/1e6, base/sched.MakespanNS, res.Used)
	}

	fmt.Println("\nthe greedy pours replicas into the aggregation bottleneck, which is")
	fmt.Println("exactly the paper's Fig. 5 argument at real-workload scale.")
}
