// Analog: run a trained GCN layer through the functional crossbar
// simulator — bit-serial DAC streaming, per-tile ADC digitisation,
// shift-and-add recombination — and measure how much numerical error
// the analog pipeline injects compared with exact float arithmetic,
// across ADC resolutions.
//
// Run with:
//
//	go run ./examples/analog
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gopim/internal/crossbar"
	"gopim/internal/graphgen"
	"gopim/internal/quant"
	"gopim/internal/reram"
	"gopim/internal/tensor"
)

func main() {
	log.SetFlags(0)
	chip := reram.DefaultChip()
	rng := rand.New(rand.NewSource(13))

	// A combination-stage weight matrix and a batch of vertex features,
	// shaped like the ddi workload's first layer.
	d, err := graphgen.ByName("ddi")
	if err != nil {
		log.Fatal(err)
	}
	in, hidden := d.InputCh, 64 // trimmed width for a quick run
	w := tensor.NewGlorot(rng, in, hidden)
	features := tensor.NewRandom(rng, 64, in, 1)

	array := crossbar.Program(chip, w)
	fmt.Printf("programmed %dx%d weights at %d-bit precision over %d-bit cells\n",
		in, hidden, chip.WeightBits, chip.BitsPerCell)
	fmt.Printf("(each value spans %d differential cell pairs; inputs stream %d bits/cycle)\n\n",
		quant.CellsPerValue(chip.WeightBits, chip.BitsPerCell), chip.DACBits)

	exact := tensor.MatMul(features, w)
	fmt.Println("analog MVM error vs float64, by ADC resolution:")
	for _, adc := range []int{4, 6, 8, 10, 12, 16} {
		got := array.MVMBatch(features, crossbar.MVMOptions{ADCBits: adc})
		err := crossbar.RelativeError(got.Data, exact.Data)
		bar := ""
		for i := 0; float64(i) < err*200; i++ {
			bar += "#"
		}
		fmt.Printf("  %2d-bit ADC: %.5f  %s\n", adc, err, bar)
	}
	fmt.Println("\nthe Table II chip's 8-bit ADC sits at the knee of this curve: a few")
	fmt.Println("percent of per-layer noise, which production designs squeeze further")
	fmt.Println("with input/weight splitting. Below ~6 bits the pipeline falls off a")
	fmt.Println("cliff — the resolution trade-off NeuroSim-class simulators map out.")
}
