// Cosim: co-simulate GCN training with the accelerator model — every
// training epoch is priced with the simulated per-epoch makespan and
// energy of the accelerator executing it, yielding time-to-accuracy
// curves for exact training on GoPIM-Vanilla versus ISU training on
// full GoPIM.
//
// Run with:
//
//	go run ./examples/cosim
package main

import (
	"fmt"
	"log"

	"gopim/internal/accel"
	"gopim/internal/gcn"
	"gopim/internal/graphgen"
	"gopim/internal/mapping"
)

func main() {
	log.SetFlags(0)

	d, err := graphgen.ByName("arxiv")
	if err != nil {
		log.Fatal(err)
	}
	// Train on a scaled instance; price epochs with the full-scale
	// accelerator model (timing depends only on graph statistics).
	inst := d.Synthesize(21, 900)
	degs := make([]float64, inst.Graph.N)
	for v := range degs {
		degs[v] = float64(inst.Graph.Degree(v))
	}

	const epochs = 40
	vanillaHW := accel.Run(accel.GoPIMVanilla, accel.Workload{Dataset: d, Seed: 21})
	gopimHW := accel.Run(accel.GoPIM, accel.Workload{Dataset: d, Seed: 21})

	vanilla := gcn.Train(inst, gcn.Config{Epochs: epochs, Seed: 1, LR: 0.005, Dropout: 0})
	isu := gcn.Train(inst, gcn.Config{
		Epochs: epochs, Seed: 1, LR: 0.005, Dropout: 0,
		Plan: mapping.NewUpdatePlan(degs, d.AdaptiveTheta(), 8),
	})

	fmt.Printf("co-simulation on %s (%d training epochs):\n\n", d.Name, epochs)
	show := func(name string, hw accel.Report, tr gcn.Result) {
		epochMS := hw.MakespanNS / 1e6
		totalMS := epochMS * epochs
		energyJ := hw.Energy.TotalPJ() * 1e-12 * float64(epochs) / 1e3
		fmt.Printf("%-22s accuracy %6.2f%%  epoch %8.3f ms  total %9.1f ms  energy %7.3f J\n",
			name, tr.Accuracy*100, epochMS, totalMS, energyJ)
	}
	show("GoPIM-Vanilla (exact)", vanillaHW, vanilla)
	show("GoPIM (ISU)", gopimHW, isu)

	ratio := vanillaHW.MakespanNS / gopimHW.MakespanNS
	fmt.Printf("\nISU trains %.2fx faster per epoch at %+.2f accuracy points,\n",
		ratio, (isu.Accuracy-vanilla.Accuracy)*100)
	fmt.Printf("rewriting %.0f%% of vertex rows per epoch instead of 100%%.\n",
		isu.UpdatedRowFraction*100)
}
