// Predictor: train GoPIM's execution-time predictor (the 10-256-1 MLP
// of paper §V-A) on simulator-generated profiles, evaluate it against
// the baseline regressor families of Fig. 9, and use its predictions
// to drive replica allocation.
//
// Run with:
//
//	go run ./examples/predictor
package main

import (
	"fmt"
	"log"

	"gopim/internal/graphgen"
	"gopim/internal/predictor"
	"gopim/internal/reram"
	"gopim/internal/stage"
)

func main() {
	log.SetFlags(0)

	// Generate a profile dataset by sweeping workloads through the
	// timing model (the paper collects the same samples by profiling
	// its simulator for 7 days; ours takes seconds).
	spec := predictor.ProfileSpec{
		Seed:         1,
		Scales:       []float64{0.2, 1.0},
		HiddenWidths: []int{128, 256},
		MicroBatches: []int{32, 64, 128},
		MaxVertices:  50_000,
	}
	samples := predictor.Generate(spec)
	train, test := predictor.SplitTrainTest(samples, 0.2)
	fmt.Printf("profile dataset: %d samples (%d train / %d test)\n\n",
		len(samples), len(train), len(test))

	// Fig. 9(a): model family bake-off.
	fmt.Println("model family RMSE (normalised log-time):")
	for _, m := range predictor.Fig9Models() {
		rmse := predictor.ModelRMSE(m.New, train, test)
		fmt.Printf("  %-4s %.4f\n", m.Name, rmse)
	}

	// Train the production predictor and inspect its predictions.
	p := predictor.NewTimePredictor()
	p.Train(train)
	fmt.Printf("\nMLP predictor: test RMSE %.4f, mean relative error %.1f%%\n\n",
		p.RMSE(test), p.MeanRelativeError(test)*100)

	d, err := graphgen.ByName("ddi")
	if err != nil {
		log.Fatal(err)
	}
	cfg := stage.Config{
		Chip:       reram.DefaultChip(),
		Dataset:    d,
		Deg:        d.SynthDegreeModel(1),
		MicroBatch: 64,
	}
	predicted := p.PredictTimes(cfg)
	fmt.Println("predicted vs simulated stage times on ddi (µs/micro-batch):")
	for i, s := range stage.Build(cfg) {
		fmt.Printf("  %-4s predicted %9.1f   simulated %9.1f\n",
			s.Name, predicted[i]/1e3, s.TimeNS/1e3)
	}
	fmt.Println("\nthese predictions feed Algorithm 1, replacing 1688-second")
	fmt.Println("profiling runs with a millisecond forward pass (paper §V-A).")
}
