// Quickstart: simulate GCN training on the GoPIM accelerator and its
// baselines for one dataset, and print the paper-style comparison.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"gopim"
)

func main() {
	log.SetFlags(0)

	// The catalog carries the paper's seven datasets (Tables III/IV).
	fmt.Println("datasets:")
	for _, d := range gopim.Datasets() {
		fmt.Printf("  %-9s %7d vertices  avg degree %6.1f  task %v\n",
			d.Name, d.PaperVertices, d.PaperAvgDeg, d.Task)
	}
	fmt.Println()

	// Run the full baseline set on ddi — the paper's headline workload.
	cmp, err := gopim.Compare("ddi", 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := cmp.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Inspect one run in detail: where did GoPIM put its replicas?
	d, err := gopim.DatasetByName("ddi")
	if err != nil {
		log.Fatal(err)
	}
	r := gopim.Simulate(gopim.GoPIM, gopim.Workload{Dataset: d, Seed: 1})
	fmt.Printf("GoPIM on ddi: makespan %.3f ms, %d micro-batches, %.0f%% of rows rewritten per epoch\n",
		r.MakespanNS/1e6, r.MicroBatches, r.UpdateFraction*100)
	fmt.Println("replica allocation (aggregation stages dominate, as in paper Table VI):")
	for i, name := range r.StageNames {
		fmt.Printf("  %-4s replicas %5d  (%7d crossbars, idle %5.1f%%)\n",
			name, r.Replicas[i], r.Replicas[i]*r.CrossbarsPerStage[i], r.IdleFrac[i]*100)
	}
}
