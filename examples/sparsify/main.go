// Sparsify: walk through GoPIM's interleaved mapping with adaptive
// selective updating (ISU) — crossbar balance, write-traffic
// reduction, and the accuracy trade-off on a real (synthetic) GCN
// training run.
//
// Run with:
//
//	go run ./examples/sparsify
package main

import (
	"fmt"
	"log"

	"gopim/internal/gcn"
	"gopim/internal/graphgen"
	"gopim/internal/mapping"
)

func main() {
	log.SetFlags(0)

	// A dense power-law graph in the spirit of ogbl-ddi.
	d, err := graphgen.ByName("ddi")
	if err != nil {
		log.Fatal(err)
	}
	inst := d.Synthesize(11, 800)
	g := inst.Graph
	degs := make([]float64, g.N)
	for v := range degs {
		degs[v] = float64(g.Degree(v))
	}
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f, max degree %d\n\n",
		g.N, g.Edges(), g.AvgDegree(), g.MaxDegree())

	// 1. Mapping balance: index order vs interleaved (paper Fig. 6 vs 11).
	idx := mapping.IndexLayout(g.N, 64)
	il := mapping.InterleavedLayout(degs, 64)
	ilo, ihi := mapping.MinMax(idx.GroupAvgDegrees(degs))
	slo, shi := mapping.MinMax(il.GroupAvgDegrees(degs))
	fmt.Println("per-crossbar average degree:")
	fmt.Printf("  index mapping:       %8.1f – %8.1f\n", ilo, ihi)
	fmt.Printf("  interleaved mapping: %8.1f – %8.1f\n\n", slo, shi)

	// 2. Write traffic under selective updating (paper Figs. 7/12).
	theta := mapping.AdaptiveTheta(g.AvgDegree())
	plan := mapping.NewUpdatePlan(degs, theta, 20)
	fmt.Printf("adaptive θ for this graph: %.0f%% (dense > 8 → 50%%, else 80%%)\n", theta*100)
	fmt.Printf("slowest-crossbar rows per selective epoch:\n")
	fmt.Printf("  OSU (index):       %d rows\n", idx.MaxUpdatedRows(plan, 1))
	fmt.Printf("  ISU (interleaved): %d rows\n", il.MaxUpdatedRows(plan, 1))
	fmt.Printf("steady-state update fraction: %.1f%% of all rows per epoch\n\n",
		plan.AvgUpdateFraction()*100)

	// 3. Accuracy: exact training vs ISU staleness.
	vanilla := gcn.Train(inst, gcn.Config{Epochs: 40, Seed: 3, LR: 0.005, Dropout: 0})
	isu := gcn.Train(inst, gcn.Config{Epochs: 40, Seed: 3, LR: 0.005, Dropout: 0,
		Plan: mapping.NewUpdatePlan(degs, theta, 8)})
	fmt.Println("GCN training (40 epochs):")
	fmt.Printf("  exact (GoPIM-Vanilla): accuracy %.2f%%, 100%% rows rewritten/epoch\n",
		vanilla.Accuracy*100)
	fmt.Printf("  ISU:                   accuracy %.2f%%, %.1f%% rows rewritten/epoch\n",
		isu.Accuracy*100, isu.UpdatedRowFraction*100)
	fmt.Printf("  accuracy impact: %+.2f points\n", (isu.Accuracy-vanilla.Accuracy)*100)
}
