module gopim

go 1.22
