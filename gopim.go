// Package gopim is the public API of the GoPIM reproduction: a
// simulator for GCN training on ReRAM processing-in-memory
// accelerators with ML-based crossbar replica allocation and
// interleaved selective vertex updating, after "GoPIM: GCN-Oriented
// Pipeline Optimization for PIM Accelerators" (HPCA 2025).
//
// Three entry points cover most uses:
//
//   - Simulate runs one accelerator model (Serial, SlimGNN-like,
//     ReGraphX, ReFlip, GoPIM-Vanilla, GoPIM, …) on one workload and
//     reports makespan, energy, replica allocation and idle statistics.
//   - Compare runs the full baseline set on one dataset.
//   - RunExperiment regenerates one of the paper's tables or figures
//     by id ("fig13", "tab5", …); Experiments lists the ids.
//
// Lower-level building blocks (the crossbar model, the pipeline
// scheduler, the time predictor, the GCN training engine) live in the
// internal packages and are documented there.
package gopim

import (
	"fmt"
	"io"

	"gopim/internal/accel"
	"gopim/internal/experiments"
	"gopim/internal/graphgen"
	"gopim/internal/parallel"
	"gopim/internal/reram"
)

// Model is an accelerator model selector.
type Model = accel.Kind

// Accelerator models, in the paper's Fig. 13 order plus the Fig. 14
// ablation variants.
const (
	Serial       = accel.Serial
	SlimGNNLike  = accel.SlimGNNLike
	ReGraphX     = accel.ReGraphX
	ReFlip       = accel.ReFlip
	GoPIMVanilla = accel.GoPIMVanilla
	GoPIM        = accel.GoPIM
	PlusPP       = accel.PlusPP
	PlusISU      = accel.PlusISU
	Pipelayer    = accel.Pipelayer
)

// Workload configures one simulation; the zero value of every optional
// field selects the paper's defaults (Table II chip, micro-batch 64).
type Workload = accel.Workload

// Report is a simulation outcome.
type Report = accel.Report

// Dataset describes one catalog workload (paper Tables III and IV).
type Dataset = graphgen.Dataset

// Chip is the hardware configuration (paper Table II).
type Chip = reram.Chip

// DefaultChip returns the paper's Table II configuration.
func DefaultChip() Chip { return reram.DefaultChip() }

// Datasets returns the seven paper datasets.
func Datasets() []Dataset { return graphgen.Catalog() }

// DatasetByName looks up a catalog dataset ("ddi", "collab", "ppa",
// "proteins", "arxiv", "products", "Cora").
func DatasetByName(name string) (Dataset, error) { return graphgen.ByName(name) }

// Simulate runs one accelerator model on a workload.
func Simulate(m Model, w Workload) Report { return accel.Run(m, w) }

// Speedup returns base's makespan divided by other's.
func Speedup(base, other Report) float64 { return accel.Speedup(base, other) }

// EnergySaving returns base's energy divided by other's.
func EnergySaving(base, other Report) float64 { return accel.EnergySaving(base, other) }

// Comparison is the result of running every baseline on one dataset.
type Comparison struct {
	Dataset string
	Reports []Report
}

// Compare runs the paper's six baseline models on one catalog dataset.
func Compare(datasetName string, seed int64) (*Comparison, error) {
	d, err := graphgen.ByName(datasetName)
	if err != nil {
		return nil, err
	}
	c := &Comparison{Dataset: d.Name}
	for _, k := range accel.AllBaselines() {
		c.Reports = append(c.Reports, accel.Run(k, Workload{Dataset: d, Seed: seed}))
	}
	return c, nil
}

// Render writes the comparison as a text table normalised to the first
// (Serial) report.
func (c *Comparison) Render(w io.Writer) error {
	if len(c.Reports) == 0 {
		return fmt.Errorf("gopim: empty comparison")
	}
	serial := c.Reports[0]
	if _, err := fmt.Fprintf(w, "%s (vs %s):\n", c.Dataset, serial.Kind); err != nil {
		return err
	}
	for _, r := range c.Reports {
		_, err := fmt.Fprintf(w, "  %-14s speedup %8.1fx   energy saving %6.2fx   crossbars %d\n",
			r.Kind, Speedup(serial, r), EnergySaving(serial, r), r.CrossbarsUsed)
		if err != nil {
			return err
		}
	}
	return nil
}

// ExperimentOptions tunes experiment regeneration.
type ExperimentOptions = experiments.Options

// ExperimentResult is one regenerated table or figure.
type ExperimentResult = experiments.Result

// Experiments lists the regenerable paper artifacts.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table or figure by id.
func RunExperiment(id string, opt ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, opt)
}

// RunExperiments regenerates several artifacts concurrently on the
// worker pool and returns the results in the order the ids were given,
// so rendered output is identical at any worker count. Unknown ids
// fail before anything runs.
func RunExperiments(ids []string, opt ExperimentOptions) ([]*ExperimentResult, error) {
	return experiments.RunAll(ids, opt)
}

// ExperimentHooks carries per-experiment lifecycle callbacks for
// RunExperimentsWithHooks (progress reporting, manifest timings).
type ExperimentHooks = experiments.RunHooks

// RunExperimentsWithHooks is RunExperiments with lifecycle callbacks
// fired as each experiment starts and finishes. Hooks may be invoked
// concurrently from worker goroutines.
func RunExperimentsWithHooks(ids []string, opt ExperimentOptions, hooks ExperimentHooks) ([]*ExperimentResult, error) {
	return experiments.RunAllWithHooks(ids, opt, hooks)
}

// SetWorkers overrides the worker-pool size every parallel kernel and
// experiment fan-out runs at (the CLI's -workers flag). n < 1 restores
// the default: GOPIM_WORKERS if set, else GOMAXPROCS. Output is
// deterministic for a fixed seed regardless of this setting.
func SetWorkers(n int) { parallel.SetWorkers(n) }
