package gopim

import (
	"bytes"
	"strings"
	"testing"
)

func TestDatasets(t *testing.T) {
	if len(Datasets()) != 7 {
		t.Fatalf("want the paper's 7 datasets, got %d", len(Datasets()))
	}
	d, err := DatasetByName("ddi")
	if err != nil {
		t.Fatal(err)
	}
	if d.PaperVertices != 4267 {
		t.Fatalf("ddi vertices = %d", d.PaperVertices)
	}
	if _, err := DatasetByName("none"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSimulateAndSpeedup(t *testing.T) {
	d, _ := DatasetByName("ddi")
	w := Workload{Dataset: d, Seed: 1}
	serial := Simulate(Serial, w)
	gopim := Simulate(GoPIM, w)
	if sp := Speedup(serial, gopim); sp < 10 {
		t.Fatalf("GoPIM speedup = %v, want substantial", sp)
	}
	if es := EnergySaving(serial, gopim); es <= 1 {
		t.Fatalf("GoPIM energy saving = %v, want > 1", es)
	}
}

func TestDefaultChipMatchesPaper(t *testing.T) {
	c := DefaultChip()
	if c.Tiles != 65536 || c.CrossbarRows != 64 {
		t.Fatalf("chip config wrong: %+v", c)
	}
}

func TestCompareRender(t *testing.T) {
	c, err := Compare("Cora", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Reports) != 6 {
		t.Fatalf("want 6 baselines, got %d", len(c.Reports))
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Cora", "Serial", "GoPIM", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if _, err := Compare("bogus", 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	empty := &Comparison{}
	if err := empty.Render(&buf); err == nil {
		t.Fatal("expected error for empty comparison")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) != 18 {
		t.Fatalf("want 18 experiments, got %d: %v", len(ids), ids)
	}
	res, err := RunExperiment("fig7", ExperimentOptions{Seed: 1, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig7" || len(res.Rows) == 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if _, err := RunExperiment("zzz", ExperimentOptions{}); err == nil {
		t.Fatal("expected error")
	}
}
