// Package accel assembles the substrates — stage timing, mapping,
// replica allocation, pipeline scheduling and energy accounting — into
// the six accelerator models the paper evaluates (§VII-A):
//
//	Serial        sequential execution, no pipeline, no sparsification
//	SlimGNN-like  intra-batch pipeline, space-proportional replicas,
//	              input subgraph pruning, index mapping
//	ReGraphX      intra-batch pipeline, fixed CO:AG = 1:2 replicas
//	ReFlip        intra+inter pipeline, combination-only replicas,
//	              hybrid-execution reload penalty
//	GoPIM-Vanilla intra+inter pipeline, ML-allocated replicas, no ISU
//	GoPIM         everything above plus ISU
//
// plus the ablation variants of Fig. 14 (+PP, +ISU).
// All models receive identical crossbar budgets.
package accel

import (
	"fmt"
	"math"
	"strings"

	"gopim/internal/alloc"
	"gopim/internal/energy"
	"gopim/internal/explain"
	"gopim/internal/fault"
	"gopim/internal/graphgen"
	"gopim/internal/mapping"
	"gopim/internal/obs"
	"gopim/internal/pipeline"
	"gopim/internal/reram"
	"gopim/internal/simmemo"
	"gopim/internal/stage"
	"gopim/internal/trace"
)

// Model-level metrics. Everything recorded here is a pure function of
// the workload, so it all lives on the deterministic Sim clock. The
// unlabelled aggregates are pre-registered (no allocation when
// observability is off); the per-(dataset, model) and per-stage series
// need dynamically built names, so they are gated on obs.Enabled().
var (
	mRuns = obs.NewCounter("accel.simulations", obs.Sim,
		"accelerator model runs")
	mMakespan = obs.NewDistribution("accel.makespan_ns", obs.Sim,
		"simulated makespan per run")
	mEnergy = obs.NewDistribution("accel.energy_pj", obs.Sim,
		"total energy per run")
	mCrossbars = obs.NewDistribution("accel.crossbars_used", obs.Sim,
		"crossbars used incl. replicas per run")

	// Fault-injection counters. All four stay at zero when fault
	// injection is off (the snapshot writer drops zero-count metrics,
	// so default-run snapshots are byte-identical to the pre-fault
	// ones), and they are pure functions of (workload, fault seed), so
	// they live on the Sim clock.
	mFaultyCells = obs.NewCounter("accel.faulty_cells", obs.Sim,
		"expected stuck cells across the crossbars each run occupies")
	mWriteRetries = obs.NewCounter("accel.write_retries", obs.Sim,
		"extra program-verify iterations charged to write-verify retries per run")
	mRetired = obs.NewCounter("accel.crossbars_retired", obs.Sim,
		"crossbars excluded from the replica pool by fault retirement")
	mAllocDegraded = obs.NewCounter("accel.alloc_degraded", obs.Sim,
		"allocations that ran against a fault-shrunk replica pool")
)

// recordReport publishes the per-model metrics for one Run.
func recordReport(r Report) {
	mRuns.Inc()
	mMakespan.Observe(r.MakespanNS)
	mEnergy.Observe(r.EnergyPJ())
	mCrossbars.Observe(float64(r.CrossbarsUsed))
	if !obs.Enabled() {
		return
	}
	kv := obs.LabelSuffix("dataset", r.Dataset, "model", r.Kind.String())
	obs.NewDistribution("accel.makespan_ns"+kv, obs.Sim,
		"simulated makespan for this dataset and model").Observe(r.MakespanNS)
	obs.NewDistribution("accel.energy_pj"+kv, obs.Sim,
		"total energy for this dataset and model").Observe(r.EnergyPJ())
	obs.NewDistribution("accel.crossbars_used"+kv, obs.Sim,
		"crossbars used for this dataset and model").Observe(float64(r.CrossbarsUsed))
	obs.NewDistribution("accel.update_frac"+kv, obs.Sim,
		"steady-state fraction of vertex rows rewritten per epoch (1 = no ISU)").
		Observe(r.UpdateFraction)
	for i, name := range r.StageNames {
		skv := obs.LabelSuffix("dataset", r.Dataset, "model", r.Kind.String(),
			"stage", name)
		obs.NewDistribution("accel.stage_idle_frac"+skv, obs.Sim,
			"per-stage idle fraction (busy/idle split of Figs. 4/15)").
			Observe(r.IdleFrac[i])
	}
	// Critical-path attribution: re-simulate the schedule at event
	// level (unrecorded, so trace.* series stay put) and publish which
	// stages bind the makespan and where the idle time sits. Both are
	// pure functions of the workload, and the analyzer guards every
	// division, so the series are Sim-safe by construction.
	ex := explain.Analyze(TraceInput(r), r.StageNames, explain.Options{})
	for i, name := range r.StageNames {
		skv := obs.LabelSuffix("dataset", r.Dataset, "model", r.Kind.String(),
			"stage", name)
		obs.NewDistribution("accel.crit_share"+skv, obs.Sim,
			"fraction of the makespan this stage spends on the critical path").
			Observe(ex.Stages[i].CritShare)
	}
	for _, class := range explain.BubbleClasses {
		var ns float64
		for _, s := range ex.Stages {
			ns += s.BubbleNS(class)
		}
		ckv := obs.LabelSuffix("dataset", r.Dataset, "model", r.Kind.String(),
			"class", class)
		obs.NewDistribution("accel.bubble_ns"+ckv, obs.Sim,
			"replica-lane idle time in this bubble class, summed over stages").
			Observe(ns)
	}
}

// TraceInput builds the event-level simulation input that reproduces a
// report's schedule at replica granularity: true stage times, the
// allocated replicas, the epoch's micro-batches, and the barrier
// placement implied by the model's pipeline mode (Serial = barrier
// after every micro-batch; IntraBatch models = barrier per batch
// window; intra+inter models = no barrier).
func TraceInput(r Report) trace.Input {
	in := trace.Input{
		TimesNS:      r.StageTimesNS,
		Replicas:     r.Replicas,
		MicroBatches: r.MicroBatches,
	}
	switch r.Kind {
	case Serial:
		in.MicroBatchesPerBatch = 1
	case SlimGNNLike, ReGraphX, Pipelayer:
		in.MicroBatchesPerBatch = r.MicroBatchesPerBatch
	}
	return in
}

// Kind names an accelerator model.
type Kind int

const (
	Serial Kind = iota
	SlimGNNLike
	ReGraphX
	ReFlip
	GoPIMVanilla
	GoPIM
	// PlusPP is the Fig. 14 "+PP" ablation: intra+inter pipelining with
	// no replicas and no ISU. It is also the "Naive" pipelined baseline
	// of Fig. 15.
	PlusPP
	// PlusISU is the Fig. 14 "+ISU" ablation: +PP plus interleaved
	// selective updating, still without replicas.
	PlusISU
	// Pipelayer is the equal-replica strawman the paper cites
	// (Pipelayer "uses the same number of replicas for all stages",
	// §I): intra-batch pipelining with a uniform replica count.
	Pipelayer
)

func (k Kind) String() string {
	switch k {
	case Serial:
		return "Serial"
	case SlimGNNLike:
		return "SlimGNN-like"
	case ReGraphX:
		return "ReGraphX"
	case ReFlip:
		return "ReFlip"
	case GoPIMVanilla:
		return "GoPIM-Vanilla"
	case GoPIM:
		return "GoPIM"
	case PlusPP:
		return "+PP"
	case PlusISU:
		return "+ISU"
	case Pipelayer:
		return "Pipelayer"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllBaselines lists the models of the headline comparison (Fig. 13).
func AllBaselines() []Kind {
	return []Kind{Serial, SlimGNNLike, ReGraphX, ReFlip, GoPIMVanilla, GoPIM}
}

// SlimGNNPruneFraction is the input-subgraph pruning rate of the
// SlimGNN-like baseline.
const SlimGNNPruneFraction = 0.3

// ReFlipAGSpeedup is the aggregation-MVM speedup of ReFlip's
// row/column hybrid execution (operand reuse across vertices), paid
// for with the reload write penalty.
const ReFlipAGSpeedup = 8.0

// IntraSplit is how many ways one micro-batch's work can usefully be
// split across replicas of the same stage before input distribution
// and result gathering serialise the copies.
const IntraSplit = 32

// Workload is one dataset × model × hardware configuration to run.
type Workload struct {
	Chip    reram.Chip
	Dataset graphgen.Dataset
	// Deg is the graph degree model; nil synthesises it from the
	// dataset's paper statistics with Seed.
	Deg  *graphgen.DegreeModel
	Seed int64
	// MicroBatch defaults to 64 (paper §VII-A).
	MicroBatch int
	// MicroBatchesPerBatch bounds intra-batch pipelines (default 8).
	MicroBatchesPerBatch int
	// PredictedTimes, when set, replaces profiled stage times as the
	// allocator's input (GoPIM's ML path). Evaluation always uses the
	// true times.
	PredictedTimes []float64
	// ThetaOverride forces the selective-updating threshold for
	// GoPIM-family models (0 = the paper's adaptive θ).
	ThetaOverride float64
	// Fault injects ReRAM faults (internal/fault): write-verify retries
	// stretch row programming, retired crossbars shrink the replica
	// pool, and ISU striping skips dead crossbars. Nil consults the
	// process-wide fault.Default(); a disabled model leaves every code
	// path bit-identical to the fault-free simulator.
	Fault *fault.Model
}

// degCache memoizes synthesized degree models by (dataset, seed):
// every model kind simulated on the same dataset re-derives the same
// power-law weights, and the downstream consumers (stage.Build,
// mapping, alloc) only ever read the model.
var degCache = simmemo.NewCache("degmodel", 128)

func (w *Workload) defaults() {
	if w.MicroBatch == 0 {
		w.MicroBatch = 64
	}
	if w.MicroBatchesPerBatch == 0 {
		w.MicroBatchesPerBatch = 8
	}
	if w.Chip.Tiles == 0 {
		w.Chip = reram.DefaultChip()
	}
	if w.Deg == nil {
		w.Deg = DegModelFor(w.Dataset, w.Seed)
	}
}

// DegModelFor returns the (memoized) synthesized degree model for a
// dataset and seed. The returned model is shared: treat it as
// read-only.
func DegModelFor(d graphgen.Dataset, seed int64) *graphgen.DegreeModel {
	if !simmemo.Enabled() {
		return d.SynthDegreeModel(seed)
	}
	key := fmt.Sprintf("%+v|%d", d, seed)
	return simmemo.Do(degCache, key, func() *graphgen.DegreeModel {
		return d.SynthDegreeModel(seed)
	})
}

// Report is the outcome of simulating one accelerator on one workload.
type Report struct {
	Kind       Kind
	Dataset    string
	MakespanNS float64
	Energy     energy.Breakdown
	// Replicas per stage (1 = original mapping only).
	Replicas []int
	// StageNames aligns with Replicas and IdleFrac.
	StageNames []string
	// StageTimesNS are the true per-micro-batch single-replica stage
	// times the schedule used.
	StageTimesNS []float64
	// CrossbarsPerStage is the single-replica footprint per stage.
	CrossbarsPerStage []int
	// CrossbarsUsed counts all crossbars incl. replicas.
	CrossbarsUsed int
	// IdleFrac per stage (paper Figs. 4/15).
	IdleFrac []float64
	// MicroBatches is B for this run (one epoch sweep).
	MicroBatches int
	// MicroBatchesPerBatch is the intra-batch window the workload ran
	// with (relevant to barrier placement in IntraBatch-mode models).
	MicroBatchesPerBatch int
	// UpdateFraction is the steady-state fraction of vertex rows
	// rewritten per epoch (1 without ISU).
	UpdateFraction float64
	// WriteRetryFactor is the expected program-verify iteration count
	// per row write relative to the fault-free pass (1 without faults).
	WriteRetryFactor float64
	// CrossbarsRetired is how many crossbars fault retirement removed
	// from the replica pool (0 without faults).
	CrossbarsRetired int
	// AllocDegraded reports that the replica allocation ran against a
	// fault-shrunk pool.
	AllocDegraded bool
}

// EnergyPJ is shorthand for the total energy.
func (r Report) EnergyPJ() float64 { return r.Energy.TotalPJ() }

// runCache memoizes whole accelerator runs keyed on (kind, workload).
// The experiments grids re-run the same {dataset, model} cells across
// figures (fig13/14, tab6/7, fig16's micro-batch sweep, the cora
// baselines); each distinct cell simulates once per process and
// replays after. 512 entries dwarfs `gopim all`'s distinct-cell count.
var runCache = simmemo.NewCache("accelrun", 512)

// runMemo is the cached outcome of one run: the report plus the one
// input recordFault cannot recompute from it (the stages' per-micro-
// batch write-row sum).
type runMemo struct {
	rep       Report
	writeRows float64
}

// Run simulates one accelerator model on a workload: build stages
// under the model's mapping policy, allocate replicas under its
// policy, schedule the pipeline, and account energy.
//
// Runs whose degree model is synthesized (Deg nil — every experiments
// caller) are memoized on the full input tuple; callers passing a
// custom Deg (serve's custom graph stats) always simulate fresh, since
// the model's content is not part of any key. Hit or miss, the metric
// effect is identical: pipeline metrics replay via RecordSim and the
// fault/report records are recomputed from the report itself, so Sim
// snapshots are byte-identical with the memo on or off. Reports from
// cache share slices — treat Report fields as read-only.
func Run(kind Kind, w Workload) Report {
	memoizable := w.Deg == nil && simmemo.Enabled()
	w.defaults()
	fm := w.Fault
	if fm == nil {
		fm = fault.Default()
	}
	var out *runMemo
	if memoizable {
		out = simmemo.Do(runCache, runKey(kind, w, fm), func() *runMemo {
			rep, writeRows := runCore(kind, w, fm)
			return &runMemo{rep: rep, writeRows: writeRows}
		})
	} else {
		rep, writeRows := runCore(kind, w, fm)
		out = &runMemo{rep: rep, writeRows: writeRows}
	}
	rep := out.rep
	pipeline.RecordSim(len(rep.StageTimesNS), rep.MicroBatches, rep.MakespanNS)
	if fm.Enabled() {
		recordFault(fm, rep, out.writeRows, w.Chip)
	}
	recordReport(rep)
	return rep
}

// runKey fingerprints every Run input that can influence the report.
// Only called with a synthesized degree model, whose content is fully
// determined by (Dataset, Seed); fault behaviour is fully determined
// by the model's Config.
func runKey(kind Kind, w Workload, fm *fault.Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%+v|%+v|%d|%d|%d|%x", kind, w.Chip, w.Dataset,
		w.Seed, w.MicroBatch, w.MicroBatchesPerBatch, math.Float64bits(w.ThetaOverride))
	for _, t := range w.PredictedTimes {
		fmt.Fprintf(&b, ",%x", math.Float64bits(t))
	}
	if fm.Enabled() {
		fmt.Fprintf(&b, "|f%+v", fm.Config())
	}
	return b.String()
}

// runCore is the simulation proper. It records nothing: Run replays
// the metric effect identically for fresh and cached outcomes.
func runCore(kind Kind, w Workload, fm *fault.Model) (Report, float64) {
	retryFactor := 1.0
	retired := 0
	if fm.Enabled() {
		// Every row program becomes a program-verify loop; stretching
		// ProgramRowNS propagates the retries into both the vertex-update
		// wall time (stage) and the per-row write energy (energy).
		retryFactor = fm.RetryFactor(w.Chip.CrossbarCols)
		w.Chip.WriteRetryFactor = retryFactor
		retired = fm.Retired(w.Chip.TotalCrossbars(), w.Chip.CellsPerCrossbar())
	}
	n := w.Deg.N
	numMB := (n + w.MicroBatch - 1) / w.MicroBatch
	if numMB < 1 {
		numMB = 1
	}

	cfg := stage.Config{
		Chip:       w.Chip,
		Dataset:    w.Dataset,
		Deg:        w.Deg,
		MicroBatch: w.MicroBatch,
	}
	updateFraction := 1.0
	switch kind {
	case SlimGNNLike:
		cfg.PruneEdgeFraction = SlimGNNPruneFraction
	case ReFlip:
		cfg.ReloadPenalty = true
		cfg.AGMVMSpeedup = ReFlipAGSpeedup
	case GoPIM, PlusISU:
		theta := w.ThetaOverride
		if theta == 0 {
			theta = w.Dataset.AdaptiveTheta()
		}
		degs := w.Deg.DegreesByIndex
		if fm.Enabled() {
			// Stripe around retired crossbars: the logical degree mix is
			// identical, so the timing model is untouched, but ISU
			// updates land on healthy cells.
			needed := (len(degs) + w.Chip.CrossbarRows - 1) / w.Chip.CrossbarRows
			cfg.Layout = mapping.InterleavedLayoutHealthy(degs, w.Chip.CrossbarRows,
				fm.DeadGroups(needed, w.Chip.CellsPerCrossbar()))
		} else {
			cfg.Layout = mapping.InterleavedLayout(degs, w.Chip.CrossbarRows)
		}
		cfg.Plan = mapping.NewUpdatePlan(degs, theta, 20)
		updateFraction = cfg.Plan.AvgUpdateFraction()
	}
	stages := stage.Build(cfg)

	// Shared crossbar budget: whatever the chip has beyond the original
	// mappings. Fault-retired crossbars come out of this free pool (the
	// original mappings are re-placed on healthy crossbars), via the
	// Request's RetiredCrossbars so the policies clamp gracefully.
	originals := stage.TotalCrossbars(stages)
	budget := w.Chip.TotalCrossbars() - originals
	if budget < 0 {
		budget = 0
	}

	mode := pipeline.IntraInterBatch
	switch kind {
	case Serial:
		mode = pipeline.Serial
	case SlimGNNLike, ReGraphX, Pipelayer:
		mode = pipeline.IntraBatch
	}

	// Replica usefulness cap: in-flight micro-batches (the pipelining
	// window) times the intra-micro-batch split factor. Splitting one
	// micro-batch across copies stops paying off quickly (input
	// distribution and result gathering serialise), so the split factor
	// is IntraSplit (8), which also reproduces the scale of the paper's
	// Table VI replica counts (hundreds, ≈ 9× the micro-batch count).
	window := numMB
	switch kind {
	case Serial:
		window = 1
	case SlimGNNLike, ReGraphX, Pipelayer:
		window = w.MicroBatchesPerBatch
	}
	caps := make([]int, len(stages))
	for i := range caps {
		caps[i] = window * IntraSplit
	}

	req := alloc.FromStages(stages, budget, numMB)
	req.MaxReplicas = caps
	req.RetiredCrossbars = retired
	allocTimes := req.TimesNS
	if w.PredictedTimes != nil {
		if len(w.PredictedTimes) != len(stages) {
			panic(fmt.Sprintf("accel: %d predicted times for %d stages", len(w.PredictedTimes), len(stages)))
		}
		allocTimes = w.PredictedTimes
	}

	var res alloc.Result
	switch kind {
	case Serial, PlusPP, PlusISU:
		res = alloc.Result{Replicas: onesFor(stages), Degraded: retired > 0 && budget > 0}
	case SlimGNNLike:
		res = alloc.SpaceProportional(req)
	case Pipelayer:
		res = alloc.EqualSplit(req)
	case ReGraphX:
		res = alloc.FixedRatio(req, 1, 2)
	case ReFlip:
		// ReFlip replicates combination stages only; like any real
		// design it stops when further copies stop helping, so restrict
		// the benefit-aware greedy to CO stages rather than flooding
		// the chip with idle weight copies.
		coReq := req
		coReq.Replicable = append([]bool(nil), req.Replicable...)
		for i, k := range req.Kinds {
			if k != stage.Combination {
				coReq.Replicable[i] = false
			}
		}
		res = alloc.Greedy(coReq)
	case GoPIMVanilla, GoPIM:
		mlReq := req
		mlReq.TimesNS = allocTimes
		res = alloc.Greedy(mlReq)
	default:
		panic(fmt.Sprintf("accel: unknown kind %v", kind))
	}

	sched := pipeline.SimulateUnrecorded(pipeline.Input{
		TimesNS:              req.TimesNS, // true times, always
		Replicas:             res.Replicas,
		MicroBatches:         numMB,
		MicroBatchesPerBatch: w.MicroBatchesPerBatch,
		Mode:                 mode,
	})

	crossbarsUsed := originals + res.Used
	replicaXB := make([]int, len(stages))
	for i, s := range stages {
		replicaXB[i] = (res.Replicas[i] - 1) * s.Crossbars
	}
	eng := energy.ComputeSchedule(w.Chip, stages, numMB, sched.MakespanNS,
		originals, replicaXB, sched.BusyNS)

	names := make([]string, len(stages))
	xbs := make([]int, len(stages))
	for i, s := range stages {
		names[i] = s.Name
		xbs[i] = s.Crossbars
	}
	rep := Report{
		Kind:                 kind,
		Dataset:              w.Dataset.Name,
		StageTimesNS:         req.TimesNS,
		MakespanNS:           sched.MakespanNS,
		Energy:               eng,
		Replicas:             res.Replicas,
		StageNames:           names,
		CrossbarsPerStage:    xbs,
		CrossbarsUsed:        crossbarsUsed,
		IdleFrac:             sched.IdleFrac,
		MicroBatches:         numMB,
		MicroBatchesPerBatch: w.MicroBatchesPerBatch,
		UpdateFraction:       updateFraction,
		WriteRetryFactor:     retryFactor,
		CrossbarsRetired:     retired,
		AllocDegraded:        res.Degraded,
	}
	var writeRows float64
	for _, s := range stages {
		writeRows += s.WriteRows
	}
	return rep, writeRows
}

// recordFault publishes the fault-injection counters for one run.
// Only called with injection active, so all four metrics stay at zero
// — and out of snapshots — on fault-free runs. writeRows is the
// stages' per-micro-batch write-row sum (carried through the run memo
// so replays charge the same retries).
func recordFault(fm *fault.Model, rep Report, writeRows float64, chip reram.Chip) {
	mFaultyCells.Add(fm.ExpectedStuckCells(rep.CrossbarsUsed, chip.CellsPerCrossbar()))
	// Extra program-verify iterations: each of the epoch's row writes
	// runs (factor−1)·WriteVerifyCycles additional pulses.
	writeRows *= float64(rep.MicroBatches)
	mWriteRetries.Add(int64(math.Round(writeRows *
		(rep.WriteRetryFactor - 1) * float64(chip.WriteVerifyCycles))))
	mRetired.Add(int64(rep.CrossbarsRetired))
	if rep.AllocDegraded {
		mAllocDegraded.Inc()
	}
}

func onesFor(stages []stage.Stage) []int {
	r := make([]int, len(stages))
	for i := range r {
		r[i] = 1
	}
	return r
}

// Speedup returns base's makespan divided by other's.
func Speedup(base, other Report) float64 {
	return base.MakespanNS / other.MakespanNS
}

// EnergySaving returns base's energy divided by other's.
func EnergySaving(base, other Report) float64 {
	return base.EnergyPJ() / other.EnergyPJ()
}
