package accel

import (
	"testing"

	"gopim/internal/graphgen"
	"gopim/internal/reram"
)

// ddiWorkload returns the paper's headline workload (ddi, mb=64).
func ddiWorkload(t *testing.T) Workload {
	t.Helper()
	d, err := graphgen.ByName("ddi")
	if err != nil {
		t.Fatal(err)
	}
	return Workload{Dataset: d, Seed: 1}
}

func runAll(t *testing.T, w Workload) map[Kind]Report {
	t.Helper()
	out := map[Kind]Report{}
	for _, k := range []Kind{Serial, SlimGNNLike, ReGraphX, ReFlip, GoPIMVanilla, GoPIM, PlusPP, PlusISU} {
		out[k] = Run(k, w)
	}
	return out
}

// The paper's headline ordering (Fig. 13a): GoPIM is fastest, every
// pipelined design beats Serial.
func TestSpeedupOrdering(t *testing.T) {
	reports := runAll(t, ddiWorkload(t))
	serial := reports[Serial]
	for k, r := range reports {
		if k == Serial {
			continue
		}
		if r.MakespanNS >= serial.MakespanNS {
			t.Fatalf("%v (%v) must beat Serial (%v)", k, r.MakespanNS, serial.MakespanNS)
		}
	}
	gopim := reports[GoPIM]
	for _, k := range []Kind{SlimGNNLike, ReGraphX, ReFlip, GoPIMVanilla, PlusPP, PlusISU} {
		if gopim.MakespanNS > reports[k].MakespanNS {
			t.Fatalf("GoPIM (%v) must not lose to %v (%v)", gopim.MakespanNS, k, reports[k].MakespanNS)
		}
	}
}

// Fig. 13a magnitudes: GoPIM achieves 10²–10³× over Serial, and single
// to low-double-digit factors over the pipelined baselines.
func TestSpeedupMagnitudes(t *testing.T) {
	reports := runAll(t, ddiWorkload(t))
	serial, gopim := reports[Serial], reports[GoPIM]
	sp := Speedup(serial, gopim)
	if sp < 100 || sp > 5000 {
		t.Fatalf("GoPIM vs Serial = %vx, want the paper's 10²–10³ regime", sp)
	}
	if s := Speedup(reports[SlimGNNLike], gopim); s < 1.05 || s > 10 {
		t.Fatalf("GoPIM vs SlimGNN-like = %vx, want the paper's ~1.4–2.9 regime", s)
	}
	if s := Speedup(reports[ReFlip], gopim); s < 2 || s > 500 {
		t.Fatalf("GoPIM vs ReFlip = %vx, want the paper's 1.1–191 regime", s)
	}
}

// Fig. 13b: GoPIM is the most energy-efficient; ReFlip consumes more
// energy than Serial on the dense ddi dataset (paper §VII-B).
func TestEnergyOrdering(t *testing.T) {
	reports := runAll(t, ddiWorkload(t))
	gopim := reports[GoPIM]
	for _, k := range []Kind{Serial, SlimGNNLike, ReGraphX, ReFlip, GoPIMVanilla} {
		if gopim.EnergyPJ() > reports[k].EnergyPJ() {
			t.Fatalf("GoPIM energy (%v) must not exceed %v's (%v)",
				gopim.EnergyPJ(), k, reports[k].EnergyPJ())
		}
	}
	if reports[ReFlip].EnergyPJ() < 0.9*reports[Serial].EnergyPJ() {
		t.Fatalf("ReFlip (%v) should consume about as much or more energy than Serial (%v) on ddi",
			reports[ReFlip].EnergyPJ(), reports[Serial].EnergyPJ())
	}
}

// Fig. 14 ablation: Serial < +PP < +ISU < GoPIM in speed.
func TestAblationOrdering(t *testing.T) {
	reports := runAll(t, ddiWorkload(t))
	if !(reports[PlusPP].MakespanNS < reports[Serial].MakespanNS) {
		t.Fatal("+PP must beat Serial")
	}
	if !(reports[PlusISU].MakespanNS < reports[PlusPP].MakespanNS) {
		t.Fatal("+ISU must beat +PP")
	}
	if !(reports[GoPIM].MakespanNS < reports[PlusISU].MakespanNS) {
		t.Fatal("full GoPIM must beat +ISU")
	}
}

// GoPIM reduces average crossbar idle time versus the naive pipelined
// accelerator (Fig. 15).
func TestGoPIMReducesIdle(t *testing.T) {
	w := ddiWorkload(t)
	naive := Run(PlusPP, w)
	gopim := Run(GoPIM, w)
	avg := func(r Report) float64 {
		var s float64
		for _, f := range r.IdleFrac {
			s += f
		}
		return s / float64(len(r.IdleFrac))
	}
	if avg(gopim) >= avg(naive) {
		t.Fatalf("GoPIM idle %v must be below naive %v", avg(gopim), avg(naive))
	}
	// The naive pipeline's short stages idle ≳90% of the time (Fig. 4).
	maxIdle := 0.0
	for _, f := range naive.IdleFrac {
		if f > maxIdle {
			maxIdle = f
		}
	}
	if maxIdle < 0.9 {
		t.Fatalf("naive max idle = %v, want the paper's ≥90%% regime", maxIdle)
	}
}

func TestReportShape(t *testing.T) {
	r := Run(GoPIM, ddiWorkload(t))
	if r.Dataset != "ddi" || r.Kind != GoPIM {
		t.Fatalf("provenance wrong: %+v", r)
	}
	if len(r.Replicas) != 8 || len(r.StageNames) != 8 || len(r.IdleFrac) != 8 {
		t.Fatalf("ddi is a 2-layer model: want 8 stages, got %d", len(r.Replicas))
	}
	if r.StageNames[0] != "CO1" || r.StageNames[3] != "AG2" {
		t.Fatalf("stage names wrong: %v", r.StageNames)
	}
	if r.MicroBatches != (4267+63)/64 {
		t.Fatalf("micro-batches = %d", r.MicroBatches)
	}
	// GoPIM replicates aggregation far more than combination (the
	// Table VI pattern).
	if r.Replicas[1] <= r.Replicas[0] {
		t.Fatalf("AG1 replicas (%d) should exceed CO1's (%d)", r.Replicas[1], r.Replicas[0])
	}
	if r.UpdateFraction >= 1 || r.UpdateFraction <= 0 {
		t.Fatalf("GoPIM update fraction = %v, want (0,1)", r.UpdateFraction)
	}
	if Run(Serial, ddiWorkload(t)).UpdateFraction != 1 {
		t.Fatal("Serial must update everything")
	}
}

func TestCrossbarAccounting(t *testing.T) {
	w := ddiWorkload(t)
	r := Run(GoPIM, w)
	sum := 0
	for i, rep := range r.Replicas {
		sum += rep * r.CrossbarsPerStage[i]
	}
	if sum != r.CrossbarsUsed {
		t.Fatalf("crossbars used %d != Σ replicas×footprint %d", r.CrossbarsUsed, sum)
	}
	chipTotal := 16777216
	if r.CrossbarsUsed > chipTotal {
		t.Fatalf("used %d crossbars, chip has %d", r.CrossbarsUsed, chipTotal)
	}
}

func TestSerialHasNoReplicas(t *testing.T) {
	r := Run(Serial, ddiWorkload(t))
	for i, rep := range r.Replicas {
		if rep != 1 {
			t.Fatalf("Serial stage %d has %d replicas", i, rep)
		}
	}
}

func TestReFlipReplicatesCombinationOnly(t *testing.T) {
	r := Run(ReFlip, ddiWorkload(t))
	for i, name := range r.StageNames {
		isCO := name[0] == 'C'
		if !isCO && r.Replicas[i] != 1 {
			t.Fatalf("ReFlip must not replicate %s (got %d)", name, r.Replicas[i])
		}
	}
}

func TestPredictedTimesDriveAllocation(t *testing.T) {
	w := ddiWorkload(t)
	truth := Run(GoPIM, w)

	// Mildly noisy predictions must yield a similar makespan (the
	// Table VII "ML ≈ profiling" result).
	w2 := w
	w2.PredictedTimes = perturbedTimes(t, w, 1.15)
	approx := Run(GoPIM, w2)

	ratio := approx.MakespanNS / truth.MakespanNS
	if ratio > 1.25 || ratio < 0.8 {
		t.Fatalf("ML-allocated makespan off by %vx from profiled", ratio)
	}

	// Wrong-length predictions must panic.
	w3 := w
	w3.PredictedTimes = []float64{1, 2}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched prediction length")
		}
	}()
	Run(GoPIM, w3)
}

// perturbedTimes returns the workload's true stage times scaled by
// alternating ±(factor−1) noise.
func perturbedTimes(t *testing.T, w Workload, factor float64) []float64 {
	t.Helper()
	r := Run(PlusPP, w)
	times := make([]float64, len(r.StageTimesNS))
	for i, v := range r.StageTimesNS {
		if i%2 == 0 {
			times[i] = v * factor
		} else {
			times[i] = v / factor
		}
	}
	return times
}

func TestModeStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Serial: "Serial", SlimGNNLike: "SlimGNN-like", ReGraphX: "ReGraphX",
		ReFlip: "ReFlip", GoPIMVanilla: "GoPIM-Vanilla", GoPIM: "GoPIM",
		PlusPP: "+PP", PlusISU: "+ISU",
	} {
		if k.String() != want {
			t.Fatalf("String(%d) = %s, want %s", int(k), k.String(), want)
		}
	}
	if len(AllBaselines()) != 6 {
		t.Fatal("Fig. 13 compares six models")
	}
}

func TestMicroBatchSizeSweep(t *testing.T) {
	// Fig. 16(c) sweeps the micro-batch size. In this model the
	// speedup is only weakly sensitive to it (larger micro-batches
	// trade intra-batch parallelism against a shorter pipelining
	// window), so assert the sweep stays in one regime rather than a
	// strict monotone rise.
	w := ddiWorkload(t)
	var min, max float64
	for _, mb := range []int{16, 64, 256} {
		w.MicroBatch = mb
		sp := Speedup(Run(Serial, w), Run(GoPIM, w))
		if min == 0 || sp < min {
			min = sp
		}
		if sp > max {
			max = sp
		}
	}
	if max/min > 2 {
		t.Fatalf("micro-batch sweep spans %v–%v: unexpectedly unstable", min, max)
	}
	if min < 100 {
		t.Fatalf("speedup collapsed to %v in the sweep", min)
	}
}

// A chip too small to offer spare crossbars must still run: zero
// replica budget leaves every model at one replica, and GoPIM
// degrades to the pipelined-only (+PP) makespan.
func TestTinyChipGracefulDegradation(t *testing.T) {
	w := ddiWorkload(t)
	chip := reram.DefaultChip()
	chip.Tiles = 1 // 256 crossbars — less than ddi's 1196 footprint
	w.Chip = chip

	g := Run(GoPIM, w)
	for i, rep := range g.Replicas {
		if rep != 1 {
			t.Fatalf("stage %d got %d replicas with no budget", i, rep)
		}
	}
	// With no replica budget, GoPIM degenerates to its pipelined + ISU
	// core.
	isu := Run(PlusISU, w)
	if g.MakespanNS != isu.MakespanNS {
		t.Fatalf("budget-less GoPIM (%v) must equal +ISU (%v)", g.MakespanNS, isu.MakespanNS)
	}
}

// A degenerate one-vertex graph must still produce a valid schedule.
func TestSingleVertexGraph(t *testing.T) {
	d, err := graphgen.ByName("ddi")
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{
		Dataset: d,
		Deg:     graphgen.NewDegreeModel([]float64{0}),
		Seed:    1,
	}
	for _, k := range []Kind{Serial, GoPIM} {
		r := Run(k, w)
		if r.MakespanNS <= 0 || r.MicroBatches != 1 {
			t.Fatalf("%v: degenerate schedule %+v", k, r)
		}
	}
}

// The Pipelayer strawman (equal replicas everywhere) must land between
// Serial and GoPIM, and must not beat the kind-aware baselines by any
// large margin.
func TestPipelayerOrdering(t *testing.T) {
	w := ddiWorkload(t)
	serial := Run(Serial, w)
	pl := Run(Pipelayer, w)
	gopim := Run(GoPIM, w)
	if !(pl.MakespanNS < serial.MakespanNS) {
		t.Fatal("Pipelayer must beat Serial")
	}
	if !(gopim.MakespanNS < pl.MakespanNS) {
		t.Fatal("GoPIM must beat Pipelayer")
	}
	if pl.Kind != Pipelayer || Pipelayer.String() != "Pipelayer" {
		t.Fatal("kind/name wrong")
	}
}
