package accel

import (
	"fmt"

	"gopim/internal/alloc"
	"gopim/internal/churn"
	"gopim/internal/endurance"
	"gopim/internal/fault"
	"gopim/internal/graphgen"
	"gopim/internal/mapping"
	"gopim/internal/obs"
	"gopim/internal/pipeline"
	"gopim/internal/stage"
)

// Churn counters. Pure functions of (workload, churn config), so they
// live on the Sim clock; all stay at zero when no churn run executes,
// keeping default-run snapshots byte-identical to the pre-churn ones.
var (
	mChurnEdgesAdded = obs.NewCounter("churn.edges_added", obs.Sim,
		"edges inserted by streaming-graph churn")
	mChurnEdgesRemoved = obs.NewCounter("churn.edges_removed", obs.Sim,
		"edges deleted by streaming-graph churn")
	mChurnStripesMoved = obs.NewCounter("churn.stripes_moved", obs.Sim,
		"vertex stripes relocated by incremental re-mapping")
	mChurnFullRemaps = obs.NewCounter("churn.remap_full_fallbacks", obs.Sim,
		"churn epochs where incremental re-mapping fell back to a full remap")
	mChurnRetirements = obs.NewCounter("churn.retirements_triggered", obs.Sim,
		"churn epochs where accumulated wear retired additional crossbars")
)

// churnRetireThreshold is the stuck-cell density that retires a
// crossbar when churn wear runs without a base fault model (whose New
// default of 2×Rate would be zero and retire everything).
const churnRetireThreshold = 0.02

// churnStalePeriod matches runCore's ISU refresh period.
const churnStalePeriod = 20

// ChurnProfile is the production write-traffic profile one churn epoch
// scales by Config.DaysPerEpoch: each epoch the array absorbs
// DaysPerEpoch days of this traffic on its hottest (important,
// every-epoch) rows, and fault.WearStuckFraction turns the cumulative
// writes into stuck cells. The figures model a continuously retrained
// deployment: 200-epoch runs, two an hour.
var ChurnProfile = endurance.Profile{
	WritesPerVertexPerEpoch: 1,
	EpochsPerRun:            200,
	RunsPerDay:              48,
}

// ChurnEpoch is one epoch's row in a churn run report.
type ChurnEpoch struct {
	Epoch        int
	EdgesAdded   int
	EdgesRemoved int
	Vertices     int // vertex count after this epoch's arrivals
	StripesMoved int
	FullRemap    bool
	Refreshed    bool
	Theta        float64
	Retired      int
	Degraded     bool
	MakespanNS   float64
}

// ChurnResult is the outcome of one streaming-churn run.
type ChurnResult struct {
	Dataset string
	Policy  churn.Policy
	Epochs  []ChurnEpoch

	EdgesAdded     int
	EdgesRemoved   int
	StripesMoved   int
	FullRemaps     int
	Refreshes      int
	Retirements    int // epochs where the retired-crossbar count grew
	FinalRetired   int
	DegradedEpochs int
}

// RunChurn drives the GoPIM model through a streaming-graph mutation
// sequence: each epoch the churn stream mutates the degree sequence,
// incremental re-mapping (mapping.ApplyDelta) relocates only the
// stripes whose rank changed, the refresh policy decides whether the
// ISU plan is recomputed, accumulated churn writes feed the endurance
// model so wear retires crossbars mid-run, and replica allocation
// degrades around the shrinking pool instead of erroring.
//
// The loop is strictly sequential and every random draw is keyed by
// (seed, epoch), so results — and the churn.* Sim counters — are
// byte-identical at any worker count.
func RunChurn(w Workload, cc churn.Config, epochs int) (ChurnResult, error) {
	if epochs < 1 {
		return ChurnResult{}, fmt.Errorf("accel: churn epochs %d must be ≥ 1", epochs)
	}
	stream, err := churn.NewStream(cc)
	if err != nil {
		return ChurnResult{}, err
	}
	cc = stream.Config()
	w.defaults()
	// DegModelFor memoizes: mutate a copy, never the shared model.
	degs := append([]float64(nil), w.Deg.DegreesByIndex...)
	fm := w.Fault
	if fm == nil {
		fm = fault.Default()
	}
	baseCfg := fm.Config() // zero Config when fm is nil
	if baseCfg.RetireThreshold == 0 {
		baseCfg.RetireThreshold = churnRetireThreshold
	}

	theta := w.ThetaOverride
	if theta == 0 {
		theta = w.Dataset.AdaptiveTheta()
	}
	rows := w.Chip.CrossbarRows
	cells := w.Chip.CellsPerCrossbar()
	layout := mapping.InterleavedLayout(degs, rows)
	if fm.Enabled() {
		needed := (len(degs) + rows - 1) / rows
		layout = mapping.InterleavedLayoutHealthy(degs, rows, fm.DeadGroups(needed, cells))
	}
	plan := mapping.NewUpdatePlan(degs, theta, churnStalePeriod)

	res := ChurnResult{Dataset: w.Dataset.Name, Policy: cc.Policy}
	prevRetired := 0
	if fm.Enabled() {
		prevRetired = fm.Retired(w.Chip.TotalCrossbars(), cells)
	}
	drift := 0.0
	for e := 0; e < epochs; e++ {
		var delta churn.Delta
		degs, delta = stream.Mutate(degs, e)
		mChurnEdgesAdded.Add(int64(delta.EdgesAdded))
		mChurnEdgesRemoved.Add(int64(delta.EdgesRemoved))
		res.EdgesAdded += delta.EdgesAdded
		res.EdgesRemoved += delta.EdgesRemoved

		// Endurance coupling: the hottest rows (important set, rewritten
		// every epoch) have absorbed (e+1)·DaysPerEpoch days of the
		// production profile by now; wear composes with any base fault
		// rate inside EffectiveRate.
		epochCfg := baseCfg
		if cc.DaysPerEpoch > 0 {
			days := float64(e+1) * cc.DaysPerEpoch
			epochCfg.WearWritesPerCell = baseCfg.WearWritesPerCell +
				endurance.TotalCellWrites(ChurnProfile, 1, days)
		}
		epochFM := fault.MustNew(epochCfg)

		var dead []bool
		retired := 0
		if epochFM.Enabled() {
			needed := (len(degs) + rows - 1) / rows
			dead = epochFM.DeadGroups(needed, cells)
			retired = epochFM.Retired(w.Chip.TotalCrossbars(), cells)
		}
		if retired > prevRetired {
			mChurnRetirements.Inc()
			res.Retirements++
		}
		prevRetired = retired

		var dstats mapping.DeltaStats
		layout, dstats = layout.ApplyDelta(degs, delta.Changed, dead)
		mChurnStripesMoved.Add(int64(dstats.StripesMoved))
		res.StripesMoved += dstats.StripesMoved
		if dstats.Full {
			mChurnFullRemaps.Inc()
			res.FullRemaps++
		}

		// Refresh policy: vertex arrivals force a replan (the plan's
		// importance arrays are sized to n); otherwise accumulated drift
		// since the last refresh decides.
		drift += float64(len(delta.Changed)) / float64(len(degs))
		refreshed := delta.VerticesAdded > 0 || cc.ShouldRefresh(drift)
		if refreshed {
			if cc.Policy == churn.Adaptive {
				theta = mapping.AdaptiveTheta(avgDegree(degs))
			}
			plan = mapping.NewUpdatePlan(degs, theta, churnStalePeriod)
			drift = 0
			res.Refreshes++
		}

		ep := simulateChurnEpoch(w, epochFM, degs, layout, plan, retired)
		ep.Epoch = e
		ep.EdgesAdded = delta.EdgesAdded
		ep.EdgesRemoved = delta.EdgesRemoved
		ep.Vertices = len(degs)
		ep.StripesMoved = dstats.StripesMoved
		ep.FullRemap = dstats.Full
		ep.Refreshed = refreshed
		ep.Theta = theta
		ep.Retired = retired
		res.Epochs = append(res.Epochs, ep)
		if ep.Degraded {
			res.DegradedEpochs++
		}
	}
	res.FinalRetired = prevRetired
	return res, nil
}

// simulateChurnEpoch prices one post-mutation epoch the way runCore
// prices the GoPIM model — stages under the delta-maintained layout and
// plan, benefit-aware greedy allocation against the wear-shrunk pool,
// intra+inter pipeline — but unrecorded: churn runs publish only the
// churn.* counters, not per-epoch accel.* series.
func simulateChurnEpoch(w Workload, fm *fault.Model, degs []float64,
	layout *mapping.Layout, plan *mapping.UpdatePlan, retired int) ChurnEpoch {
	chip := w.Chip
	if fm.Enabled() {
		chip.WriteRetryFactor = fm.RetryFactor(chip.CrossbarCols)
	}
	n := len(degs)
	numMB := (n + w.MicroBatch - 1) / w.MicroBatch
	if numMB < 1 {
		numMB = 1
	}
	stages := stage.Build(stage.Config{
		Chip:       chip,
		Dataset:    w.Dataset,
		Deg:        graphgen.NewDegreeModel(degs),
		MicroBatch: w.MicroBatch,
		Layout:     layout,
		Plan:       plan,
	})
	originals := stage.TotalCrossbars(stages)
	budget := chip.TotalCrossbars() - originals
	if budget < 0 {
		budget = 0
	}
	req := alloc.FromStages(stages, budget, numMB)
	caps := make([]int, len(stages))
	for i := range caps {
		caps[i] = numMB * IntraSplit
	}
	req.MaxReplicas = caps
	req.RetiredCrossbars = retired
	ares := alloc.Greedy(req)
	sched := pipeline.SimulateUnrecorded(pipeline.Input{
		TimesNS:              req.TimesNS,
		Replicas:             ares.Replicas,
		MicroBatches:         numMB,
		MicroBatchesPerBatch: w.MicroBatchesPerBatch,
		Mode:                 pipeline.IntraInterBatch,
	})
	return ChurnEpoch{Degraded: ares.Degraded, MakespanNS: sched.MakespanNS}
}

func avgDegree(degs []float64) float64 {
	if len(degs) == 0 {
		return 0
	}
	var sum float64
	for _, d := range degs {
		sum += d
	}
	return sum / float64(len(degs))
}

// ChurnDaysForRetirement returns a DaysPerEpoch that makes wear-driven
// retirement land mid-run: by the final epoch the hottest rows sit at
// `margin` times the ReRAM write limit, so the lognormal wear CDF puts
// a macroscopic fraction of cells past endurance. Test and demo
// scaffolding — production configs set DaysPerEpoch from real traffic.
func ChurnDaysForRetirement(epochs int, margin float64) float64 {
	perDay := endurance.CellWritesPerEpoch(ChurnProfile, 1) *
		float64(ChurnProfile.EpochsPerRun) * ChurnProfile.RunsPerDay
	return margin * endurance.ReRAMWriteLimit / (perDay * float64(epochs))
}
