package accel

import (
	"bytes"
	"strings"
	"testing"

	"gopim/internal/churn"
	"gopim/internal/fault"
	"gopim/internal/obs"
	"gopim/internal/parallel"
)

// churnConfig is the standard test scenario: 2% edge churn with wear
// calibrated so the hottest rows cross the ReRAM write limit inside
// the run, forcing mid-run retirement.
func churnConfig(epochs int) churn.Config {
	return churn.Config{
		Rate:         0.02,
		Seed:         7,
		Policy:       churn.Threshold,
		DaysPerEpoch: ChurnDaysForRetirement(epochs, 1.2),
	}
}

// TestRunChurnRetirementMidRun is the acceptance scenario: sustained
// churn accumulates wear, wear retires crossbars mid-run (not at
// setup), and allocation degrades instead of erroring.
func TestRunChurnRetirementMidRun(t *testing.T) {
	const epochs = 8
	res, err := RunChurn(ddiWorkload(t), churnConfig(epochs), epochs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != epochs {
		t.Fatalf("got %d epoch rows, want %d", len(res.Epochs), epochs)
	}
	if res.EdgesAdded == 0 || res.EdgesRemoved == 0 {
		t.Fatalf("2%% churn mutated nothing: %+v", res)
	}
	if res.StripesMoved == 0 {
		t.Fatal("churn moved no stripes")
	}
	if res.Retirements == 0 {
		t.Fatal("wear never triggered a retirement event")
	}
	if res.Epochs[0].Retired >= res.FinalRetired {
		t.Fatalf("retirement did not grow mid-run: epoch0 %d, final %d",
			res.Epochs[0].Retired, res.FinalRetired)
	}
	if res.DegradedEpochs == 0 {
		t.Fatal("no epoch reported a degraded allocation despite retirements")
	}
	for _, ep := range res.Epochs {
		if ep.MakespanNS <= 0 {
			t.Fatalf("epoch %d has non-positive makespan %v", ep.Epoch, ep.MakespanNS)
		}
		if ep.Retired > 0 && !ep.Degraded {
			t.Fatalf("epoch %d: %d crossbars retired but allocation not degraded", ep.Epoch, ep.Retired)
		}
	}
}

// TestRunChurnDeterministic: two identical runs — and runs at 1, 2 and
// 8 workers — must produce identical results and byte-identical Sim
// snapshots. Churn draws only from (seed, epoch)-keyed streams, so the
// worker count must be invisible.
func TestRunChurnDeterministic(t *testing.T) {
	const epochs = 6
	w := ddiWorkload(t)
	cc := churnConfig(epochs)

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	defer parallel.SetWorkers(0)
	defer obs.Default().Reset()

	var wantRes ChurnResult
	var wantSnap []byte
	for _, workers := range []int{1, 2, 8} {
		parallel.SetWorkers(workers)
		obs.Default().Reset()
		res, err := RunChurn(w, cc, epochs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := obs.Default().WriteText(&buf, obs.Sim); err != nil {
			t.Fatal(err)
		}
		for _, m := range []string{"churn.edges_added", "churn.stripes_moved", "churn.retirements_triggered"} {
			if !strings.Contains(buf.String(), m) {
				t.Fatalf("workers=%d: snapshot missing %s:\n%s", workers, m, buf.String())
			}
		}
		if wantSnap == nil {
			wantRes, wantSnap = res, buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), wantSnap) {
			t.Errorf("workers=%d: churn Sim snapshot differs from workers=1:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				workers, wantSnap, workers, buf.Bytes())
		}
		for i, ep := range res.Epochs {
			if ep != wantRes.Epochs[i] {
				t.Fatalf("workers=%d epoch %d diverged: %+v vs %+v", workers, i, ep, wantRes.Epochs[i])
			}
		}
	}
}

// TestRunChurnZeroRateStaticPath is the churn-rate-0 pin: with churn
// disabled the loop must be a structural no-op — no mutations, no
// stripe moves, no retirements, and every epoch's makespan exactly the
// static GoPIM run's.
func TestRunChurnZeroRateStaticPath(t *testing.T) {
	w := ddiWorkload(t)
	res, err := RunChurn(w, churn.Config{Seed: 7, DaysPerEpoch: 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesAdded+res.EdgesRemoved+res.StripesMoved+res.FullRemaps+res.Retirements != 0 {
		t.Fatalf("zero-rate churn did structural work: %+v", res)
	}
	static := Run(GoPIM, w)
	for _, ep := range res.Epochs {
		if ep.MakespanNS != static.MakespanNS {
			t.Fatalf("epoch %d makespan %v != static GoPIM %v", ep.Epoch, ep.MakespanNS, static.MakespanNS)
		}
		if ep.Degraded {
			t.Fatalf("epoch %d degraded without faults", ep.Epoch)
		}
	}
}

// TestRunChurnComposesWithBaseFaultModel: a base manufacturing fault
// rate must compose with churn wear rather than being replaced by it.
func TestRunChurnComposesWithBaseFaultModel(t *testing.T) {
	const epochs = 4
	w := ddiWorkload(t)
	w.Fault = fault.MustNew(fault.Config{Rate: 1e-3, Seed: 3})
	cc := churnConfig(epochs)
	res, err := RunChurn(w, cc, epochs)
	if err != nil {
		t.Fatal(err)
	}
	// The base rate alone retires some crossbars from epoch 0; wear can
	// only add to that.
	if res.Epochs[0].Retired == 0 {
		t.Fatal("base fault rate retired nothing at epoch 0")
	}
	if res.FinalRetired < res.Epochs[0].Retired {
		t.Fatalf("retired count shrank: %d → %d", res.Epochs[0].Retired, res.FinalRetired)
	}
}

// TestRunChurnVertexArrivalsForceFullRemap: growing the vertex set
// resizes the degree sequence, which the delta path cannot patch — it
// must fall back to a full remap and still keep the loop consistent.
func TestRunChurnVertexArrivalsForceFullRemap(t *testing.T) {
	w := ddiWorkload(t)
	res, err := RunChurn(w, churn.Config{VertexRate: 0.01, Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullRemaps != 3 {
		t.Fatalf("every arrival epoch must full-remap: got %d of 3", res.FullRemaps)
	}
	last := res.Epochs[len(res.Epochs)-1]
	if first := res.Epochs[0]; last.Vertices <= first.Vertices {
		t.Fatalf("vertex count did not grow: %d → %d", first.Vertices, last.Vertices)
	}
	if res.Refreshes != 3 {
		t.Fatalf("arrival epochs must force plan refreshes: got %d of 3", res.Refreshes)
	}
}

// TestRunChurnRejectsBadInput: invalid configs and epoch counts error
// cleanly.
func TestRunChurnRejectsBadInput(t *testing.T) {
	w := ddiWorkload(t)
	if _, err := RunChurn(w, churn.Config{}, 0); err == nil {
		t.Fatal("epochs=0 must error")
	}
	if _, err := RunChurn(w, churn.Config{Rate: 2}, 1); err == nil {
		t.Fatal("rate 2 must error")
	}
}
