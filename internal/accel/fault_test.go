package accel

import (
	"math"
	"testing"

	"gopim/internal/fault"
	"gopim/internal/reram"
)

// The ISSUE acceptance scenario: a fault model aggressive enough to
// retire ~20% of crossbars must still yield a valid GoPIM schedule —
// fewer replicas, longer makespan, never a panic — and surface the
// damage in the report.
func TestTwentyPercentRetiredStillSchedules(t *testing.T) {
	w := ddiWorkload(t)
	clean := Run(GoPIM, w)

	// Rate 1e-3 over 64×64-cell crossbars is Poisson(4.1) stuck cells;
	// a retire threshold at ~5.7 cells puts roughly a fifth of the
	// population over it.
	fm := fault.MustNew(fault.Config{Rate: 1e-3, Seed: 3, RetireThreshold: 0.0014})
	cells := reram.DefaultChip().CellsPerCrossbar()
	if f := fm.RetiredFraction(cells); f < 0.10 || f > 0.35 {
		t.Fatalf("retired fraction %v, want the ~20%% acceptance regime", f)
	}

	w.Fault = fm
	faulty := Run(GoPIM, w)

	if faulty.CrossbarsRetired <= 0 {
		t.Fatal("report must count retired crossbars")
	}
	if !faulty.AllocDegraded {
		t.Fatal("report must flag the degraded allocation")
	}
	if faulty.WriteRetryFactor <= 1 {
		t.Fatalf("write-retry factor %v, want > 1 under faults", faulty.WriteRetryFactor)
	}
	if faulty.MakespanNS <= clean.MakespanNS {
		t.Fatalf("faulty makespan %v must exceed clean %v (retries + fewer replicas)",
			faulty.MakespanNS, clean.MakespanNS)
	}
	if faulty.MakespanNS <= 0 || math.IsNaN(faulty.MakespanNS) || math.IsInf(faulty.MakespanNS, 0) {
		t.Fatalf("invalid faulty makespan %v", faulty.MakespanNS)
	}
	if faulty.CrossbarsUsed <= 0 {
		t.Fatal("schedule must still place crossbars")
	}
}

// Every mode must survive the degraded pool without panicking.
func TestAllModesSurviveFaults(t *testing.T) {
	w := ddiWorkload(t)
	w.Fault = fault.MustNew(fault.Config{Rate: 1e-3, Seed: 3, RetireThreshold: 0.0014})
	for _, k := range []Kind{Serial, SlimGNNLike, ReGraphX, ReFlip, GoPIMVanilla, GoPIM, PlusPP, PlusISU} {
		r := Run(k, w)
		if r.MakespanNS <= 0 || math.IsNaN(r.MakespanNS) {
			t.Fatalf("%v: invalid makespan %v under faults", k, r.MakespanNS)
		}
	}
}

// A disabled fault model must be invisible: bit-identical report to a
// run with no model at all.
func TestZeroRateReportUnchanged(t *testing.T) {
	w := ddiWorkload(t)
	base := Run(GoPIM, w)
	w.Fault = fault.MustNew(fault.Config{Rate: 0, Seed: 99})
	got := Run(GoPIM, w)
	if math.Float64bits(got.MakespanNS) != math.Float64bits(base.MakespanNS) {
		t.Fatalf("rate-0 makespan %v differs from fault-free %v", got.MakespanNS, base.MakespanNS)
	}
	if math.Float64bits(got.EnergyPJ()) != math.Float64bits(base.EnergyPJ()) {
		t.Fatalf("rate-0 energy differs")
	}
	if got.CrossbarsUsed != base.CrossbarsUsed {
		t.Fatalf("rate-0 crossbar count differs")
	}
	if got.CrossbarsRetired != 0 || got.AllocDegraded {
		t.Fatal("rate-0 run must not report fault damage")
	}
	if got.WriteRetryFactor > 1 {
		t.Fatalf("rate-0 retry factor %v", got.WriteRetryFactor)
	}
}
