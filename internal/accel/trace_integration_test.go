package accel

import (
	"testing"

	"gopim/internal/trace"
)

// The closed-form pipeline model (paper equation (6), used by every
// accelerator run) must agree with the replica-level discrete-event
// simulator on a real workload's stage times and replica allocation —
// within one pipeline fill, which is the inherent gap between the
// data-parallel (t/r) and round-robin replica semantics.
func TestClosedFormAgreesWithEventTrace(t *testing.T) {
	for _, kind := range []Kind{GoPIM, ReGraphX, ReFlip} {
		r := Run(kind, ddiWorkload(t))

		tr := trace.Simulate(trace.Input{
			TimesNS:      r.StageTimesNS,
			Replicas:     r.Replicas,
			MicroBatches: r.MicroBatches,
		})
		var fill float64
		for _, ts := range r.StageTimesNS {
			fill += ts
		}
		// The accelerator report's makespan uses the t/r closed form
		// (for the intra+inter modes); the trace must be within the
		// fill/drain envelope above it.
		if kind == GoPIM || kind == ReFlip {
			if tr.MakespanNS < r.MakespanNS-1e-6 {
				t.Fatalf("%v: trace %v beat the closed form %v — impossible", kind, tr.MakespanNS, r.MakespanNS)
			}
			if tr.MakespanNS > r.MakespanNS+2*fill {
				t.Fatalf("%v: trace %v too far above closed form %v (fill %v)",
					kind, tr.MakespanNS, r.MakespanNS, fill)
			}
		}
		// The trace's bottleneck stage must also be the report's least
		// idle stage.
		util := tr.StageUtilization()
		best, bestU := 0, 0.0
		for i, u := range util {
			if u > bestU {
				best, bestU = i, u
			}
		}
		leastIdle, idleV := 0, 2.0
		for i, f := range r.IdleFrac {
			if f < idleV {
				leastIdle, idleV = i, f
			}
		}
		if best != leastIdle {
			t.Logf("%v: trace bottleneck %s vs report %s (acceptable when near-tied)",
				kind, r.StageNames[best], r.StageNames[leastIdle])
		}
	}
}
