// Package alloc implements crossbar replica allocation for the GCN
// training pipeline: the paper's max-heap greedy algorithm
// (Algorithm 1) plus the baseline policies it is compared against
// (Pipelayer-style equal split, ReGraphX's fixed CO:AG ratio,
// SlimGNN-like space-proportional allocation, ReFlip's
// combination-only replicas), and an exact brute-force optimum used to
// bound the greedy's gap in tests.
//
// Allocators reason about the closed-form pipeline total of paper
// equation (6): T_A = Σ tᵢ/rᵢ + (B−1)·max tᵢ/rᵢ. The times handed in
// may be ML predictions (GoPIM) or profiled ground truth (the
// Table VII comparison); the allocator is agnostic.
package alloc

import (
	"container/heap"
	"fmt"

	"gopim/internal/stage"
)

// Request describes one allocation problem.
type Request struct {
	// TimesNS are per-stage, per-micro-batch latencies at one replica.
	TimesNS []float64
	// Crossbars is the footprint of one replica per stage.
	Crossbars []int
	// Replicable marks stages that replicas can shorten.
	Replicable []bool
	// Kinds drive kind-aware policies (fixed ratio, combination-only).
	Kinds []stage.Kind
	// Budget is the number of unused crossbars available for replicas
	// (beyond the original mapping, which is already placed).
	Budget int
	// RetiredCrossbars is how many of the budget crossbars fault
	// retirement has removed from the free pool (internal/fault). The
	// policies allocate from Budget − RetiredCrossbars, clamped at 0 —
	// a shrinking pool yields fewer replicas, never an error.
	RetiredCrossbars int
	// MicroBatches is B in equation (6).
	MicroBatches int
	// MinRelBenefit stops the greedy when the best single-replica gain
	// falls below this fraction of the current total (default 1e-6).
	MinRelBenefit float64
	// MaxReplicas caps each stage's replica count (0 = unlimited).
	// Physically, a stage cannot use more copies than it has work items
	// in flight: the pipelining window times the micro-batch's
	// vertex-level parallelism.
	MaxReplicas []int
}

// capOf returns stage i's replica cap (MaxInt if unlimited).
func (r Request) capOf(i int) int {
	if r.MaxReplicas == nil || r.MaxReplicas[i] <= 0 {
		return int(^uint(0) >> 1)
	}
	return r.MaxReplicas[i]
}

func (r Request) validate() error {
	n := len(r.TimesNS)
	if n == 0 {
		return fmt.Errorf("alloc: no stages")
	}
	if len(r.Crossbars) != n || len(r.Replicable) != n || len(r.Kinds) != n {
		return fmt.Errorf("alloc: inconsistent slice lengths")
	}
	if r.Budget < 0 {
		return fmt.Errorf("alloc: negative budget %d", r.Budget)
	}
	if r.RetiredCrossbars < 0 {
		return fmt.Errorf("alloc: negative retired crossbars %d", r.RetiredCrossbars)
	}
	if r.MicroBatches < 1 {
		return fmt.Errorf("alloc: micro-batches %d must be ≥ 1", r.MicroBatches)
	}
	if r.MaxReplicas != nil && len(r.MaxReplicas) != n {
		return fmt.Errorf("alloc: %d replica caps for %d stages", len(r.MaxReplicas), n)
	}
	for i, t := range r.TimesNS {
		if t < 0 {
			return fmt.Errorf("alloc: stage %d time %v negative", i, t)
		}
		if r.Replicable[i] && r.Crossbars[i] <= 0 {
			return fmt.Errorf("alloc: replicable stage %d has footprint %d", i, r.Crossbars[i])
		}
	}
	return nil
}

// effectiveBudget is the free pool the policies may actually spend:
// the nominal budget minus fault-retired crossbars, never negative.
func (r Request) effectiveBudget() int {
	b := r.Budget - r.RetiredCrossbars
	if b < 0 {
		b = 0
	}
	return b
}

// Result is an allocation: replica counts (≥ 1, counting the original
// mapping) and the number of budget crossbars consumed.
type Result struct {
	Replicas []int
	Used     int
	// Degraded reports that fault retirement shrank the pool this
	// allocation drew from (the accel.alloc_degraded signal).
	Degraded bool
}

// degraded reports whether retirement actually removed capacity.
func (r Request) degraded() bool {
	return r.RetiredCrossbars > 0 && r.Budget > 0
}

// FromStages builds a Request from stage models.
func FromStages(stages []stage.Stage, budget, microBatches int) Request {
	req := Request{
		TimesNS:      make([]float64, len(stages)),
		Crossbars:    make([]int, len(stages)),
		Replicable:   make([]bool, len(stages)),
		Kinds:        make([]stage.Kind, len(stages)),
		Budget:       budget,
		MicroBatches: microBatches,
	}
	for i, s := range stages {
		req.TimesNS[i] = s.TimeNS
		req.Crossbars[i] = s.Crossbars
		req.Replicable[i] = s.Replicable
		req.Kinds[i] = s.Kind
	}
	return req
}

// TotalTimeNS evaluates equation (6) for a replica assignment.
func TotalTimeNS(times []float64, replicas []int, microBatches int) float64 {
	var sum, max float64
	for i, t := range times {
		eff := t / float64(replicas[i])
		sum += eff
		if eff > max {
			max = eff
		}
	}
	return sum + float64(microBatches-1)*max
}

func onesLike(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = 1
	}
	return r
}

// benefit returns the reduction in T_A from granting stage i one more
// replica.
func benefit(req Request, replicas []int, i int) float64 {
	before := TotalTimeNS(req.TimesNS, replicas, req.MicroBatches)
	replicas[i]++
	after := TotalTimeNS(req.TimesNS, replicas, req.MicroBatches)
	replicas[i]--
	return before - after
}

// node is a heap entry: key is the heap's ordering value, value is the
// stage index (Algorithm 1's key/value pairs).
type node struct {
	key   float64
	value int
}

// maxHeap is a max-heap of nodes keyed by key.
type maxHeap []node

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].key > h[j].key }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(node)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Greedy implements paper Algorithm 1: two max-heaps, H_v keyed by each
// stage's replica adjustment value (the T_A reduction of one more
// replica) and H_p keyed by each stage's current effective duration.
// While unused crossbars remain, the stage at the top of H_v gains a
// replica; both heaps are then re-keyed. Allocation stops when the
// budget cannot afford the most valuable stage or the best gain is
// negligible.
func Greedy(req Request) Result {
	if err := req.validate(); err != nil {
		panic(err)
	}
	minRel := req.MinRelBenefit
	if minRel <= 0 {
		minRel = 1e-6
	}
	n := len(req.TimesNS)
	replicas := onesLike(n)
	used := 0
	budget := req.effectiveBudget()

	hv := &maxHeap{} // adjustment values
	hp := &maxHeap{} // effective durations
	for i := range req.TimesNS {
		if !req.Replicable[i] || req.Crossbars[i] > budget {
			continue
		}
		heap.Push(hv, node{key: benefit(req, replicas, i), value: i})
		heap.Push(hp, node{key: req.TimesNS[i], value: i})
	}

	// Every grant invalidates all adjustment values (the pipeline
	// bottleneck may move), so heap keys are refreshed lazily: before
	// trusting the top, recompute its key until it is current — the
	// classic lazy max-heap, which is what Algorithm 1's top-down
	// shiftHeap achieves.
	version := 0
	keyVersion := make([]int, n)
	for hv.Len() > 0 {
		for keyVersion[(*hv)[0].value] != version {
			i := (*hv)[0].value
			(*hv)[0].key = benefit(req, replicas, i)
			keyVersion[i] = version
			heap.Fix(hv, 0)
		}
		total := TotalTimeNS(req.TimesNS, replicas, req.MicroBatches)
		v := (*hv)[0]
		if v.key <= minRel*total {
			break
		}
		i := v.value
		cost := req.Crossbars[i]
		if cost > budget-used || replicas[i] >= req.capOf(i) {
			// Cannot afford the most valuable stage (or it is at its
			// usefulness cap); drop it and try the next.
			heap.Pop(hv)
			continue
		}
		replicas[i]++
		used += cost
		version++

		// Track the granted stage's new effective duration in H_p
		// (Algorithm 1 lines 9–17).
		for j := range *hp {
			if (*hp)[j].value == i {
				(*hp)[j].key = req.TimesNS[i] / float64(replicas[i])
				heap.Fix(hp, j)
				break
			}
		}
	}
	return Result{Replicas: replicas, Used: used, Degraded: req.degraded()}
}

// EqualSplit gives every replicable stage the same replica count, the
// largest k that fits the budget (Pipelayer's policy).
func EqualSplit(req Request) Result {
	if err := req.validate(); err != nil {
		panic(err)
	}
	perSet := 0
	for i := range req.TimesNS {
		if req.Replicable[i] {
			perSet += req.Crossbars[i]
		}
	}
	replicas := onesLike(len(req.TimesNS))
	if perSet == 0 {
		return Result{Replicas: replicas, Degraded: req.degraded()}
	}
	extra := req.effectiveBudget() / perSet
	used := 0
	for i := range req.TimesNS {
		if req.Replicable[i] {
			add := extra
			if max := req.capOf(i) - 1; add > max {
				add = max
			}
			replicas[i] += add
			used += add * req.Crossbars[i]
		}
	}
	return Result{Replicas: replicas, Used: used, Degraded: req.degraded()}
}

// FixedRatio allocates replicas to Combination-family stages (CO, LC)
// and Aggregation stages in the given ratio, ReGraphX-style (the paper
// cites CO:AG = 1:2). The scale factor is the largest that fits.
func FixedRatio(req Request, coWeight, agWeight int) Result {
	if err := req.validate(); err != nil {
		panic(err)
	}
	if coWeight < 0 || agWeight < 0 || coWeight+agWeight == 0 {
		panic(fmt.Sprintf("alloc: bad ratio %d:%d", coWeight, agWeight))
	}
	weight := func(k stage.Kind) int {
		switch k {
		case stage.Aggregation:
			return agWeight
		case stage.Combination, stage.LossCalc:
			return coWeight
		default:
			return 0
		}
	}
	// Cost of one "ratio round": weight(kind) replicas per stage.
	perRound := 0
	for i := range req.TimesNS {
		if req.Replicable[i] {
			perRound += weight(req.Kinds[i]) * req.Crossbars[i]
		}
	}
	replicas := onesLike(len(req.TimesNS))
	if perRound == 0 {
		return Result{Replicas: replicas, Degraded: req.degraded()}
	}
	rounds := req.effectiveBudget() / perRound
	used := 0
	for i := range req.TimesNS {
		if req.Replicable[i] {
			add := rounds * weight(req.Kinds[i])
			if max := req.capOf(i) - 1; add > max {
				add = max
			}
			replicas[i] += add
			used += add * req.Crossbars[i]
		}
	}
	return Result{Replicas: replicas, Used: used, Degraded: req.degraded()}
}

// SpaceProportional allocates replicas proportionally to each stage's
// crossbar footprint (SlimGNN-like: replica counts follow the space
// requirements of each stage). Every replicable stage gets the same
// number of additional copies — proportionality in crossbars follows
// from the footprint-proportional cost — which is exactly EqualSplit's
// arithmetic; it exists as its own named policy for reporting.
func SpaceProportional(req Request) Result {
	return EqualSplit(req)
}

// CombinationOnly pours the whole budget into Combination stages
// (ReFlip's policy: replicas only in combination phases), splitting
// evenly among them.
func CombinationOnly(req Request) Result {
	if err := req.validate(); err != nil {
		panic(err)
	}
	perSet := 0
	for i := range req.TimesNS {
		if req.Replicable[i] && req.Kinds[i] == stage.Combination {
			perSet += req.Crossbars[i]
		}
	}
	replicas := onesLike(len(req.TimesNS))
	if perSet == 0 {
		return Result{Replicas: replicas, Degraded: req.degraded()}
	}
	extra := req.effectiveBudget() / perSet
	used := 0
	for i := range req.TimesNS {
		if req.Replicable[i] && req.Kinds[i] == stage.Combination {
			add := extra
			if max := req.capOf(i) - 1; add > max {
				add = max
			}
			replicas[i] += add
			used += add * req.Crossbars[i]
		}
	}
	return Result{Replicas: replicas, Used: used, Degraded: req.degraded()}
}

// Optimal exhaustively searches replica assignments up to maxReplicas
// per stage and returns the assignment minimising T_A within budget.
// Exponential; only for small test instances (the dynamic-programming
// decision procedure the paper says takes days on products — included
// to validate the greedy's near-optimality).
func Optimal(req Request, maxReplicas int) Result {
	if err := req.validate(); err != nil {
		panic(err)
	}
	n := len(req.TimesNS)
	budget := req.effectiveBudget()
	best := onesLike(n)
	bestT := TotalTimeNS(req.TimesNS, best, req.MicroBatches)
	bestUsed := 0
	cur := onesLike(n)

	var rec func(i, used int)
	rec = func(i, used int) {
		if i == n {
			t := TotalTimeNS(req.TimesNS, cur, req.MicroBatches)
			if t < bestT {
				bestT = t
				copy(best, cur)
				bestUsed = used
			}
			return
		}
		maxR := maxReplicas
		if !req.Replicable[i] {
			maxR = 1
		}
		for r := 1; r <= maxR; r++ {
			extra := (r - 1) * req.Crossbars[i]
			if used+extra > budget {
				break
			}
			cur[i] = r
			rec(i+1, used+extra)
		}
		cur[i] = 1
	}
	rec(0, 0)
	out := make([]int, n)
	copy(out, best)
	return Result{Replicas: out, Used: bestUsed, Degraded: req.degraded()}
}
