package alloc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gopim/internal/stage"
)

// twoStage builds the paper Fig. 5 scenario: stage times 1:6, budget
// for three replica copies (each stage's replica costs one crossbar).
func twoStage(budget int) Request {
	return Request{
		TimesNS:      []float64{1, 6},
		Crossbars:    []int{1, 1},
		Replicable:   []bool{true, true},
		Kinds:        []stage.Kind{stage.Combination, stage.Aggregation},
		Budget:       budget,
		MicroBatches: 8,
	}
}

func TestTotalTimeNS(t *testing.T) {
	// T_A = Σt + (B−1)·max = 7 + 7·6 = 49.
	got := TotalTimeNS([]float64{1, 6}, []int{1, 1}, 8)
	if math.Abs(got-49) > 1e-9 {
		t.Fatalf("TotalTimeNS = %v, want 49", got)
	}
	// With 4 copies of stage 2: 1 + 1.5 + 7·1.5 = 13.
	got = TotalTimeNS([]float64{1, 6}, []int{1, 4}, 8)
	if math.Abs(got-13) > 1e-9 {
		t.Fatalf("TotalTimeNS = %v, want 13", got)
	}
}

// Paper Fig. 5 / Challenge 1: with three spare crossbars, giving all
// three to the long stage beats ReGraphX's 1:2 split.
func TestGreedyBeatsFixedRatioOnFig5(t *testing.T) {
	req := twoStage(3)
	greedy := Greedy(req)
	ratio := FixedRatio(req, 1, 2)

	gT := TotalTimeNS(req.TimesNS, greedy.Replicas, req.MicroBatches)
	rT := TotalTimeNS(req.TimesNS, ratio.Replicas, req.MicroBatches)
	if gT > rT {
		t.Fatalf("greedy %v must not lose to fixed ratio %v", gT, rT)
	}
	// The greedy should discover the paper's answer: all budget to the
	// long stage.
	if greedy.Replicas[1] != 4 || greedy.Replicas[0] != 1 {
		t.Fatalf("greedy replicas = %v, want [1 4] (all three to stage 2)", greedy.Replicas)
	}
	if greedy.Used != 3 {
		t.Fatalf("greedy used %d crossbars, want 3", greedy.Used)
	}
}

func TestGreedyMatchesOptimalSmall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		req := Request{
			TimesNS:      make([]float64, n),
			Crossbars:    make([]int, n),
			Replicable:   make([]bool, n),
			Kinds:        make([]stage.Kind, n),
			Budget:       rng.Intn(12),
			MicroBatches: 1 + rng.Intn(20),
		}
		for i := 0; i < n; i++ {
			req.TimesNS[i] = 1 + rng.Float64()*20
			req.Crossbars[i] = 1 + rng.Intn(3)
			req.Replicable[i] = true
			req.Kinds[i] = stage.Aggregation
		}
		g := Greedy(req)
		o := Optimal(req, req.Budget+1)
		gT := TotalTimeNS(req.TimesNS, g.Replicas, req.MicroBatches)
		oT := TotalTimeNS(req.TimesNS, o.Replicas, req.MicroBatches)
		// Algorithm 1 selects by raw adjustment value, not value per
		// crossbar, so an exact knapsack can beat it on adversarial
		// scarce-budget instances; a 3000-seed sweep bounds the gap at
		// 1.68×. It must never beat the optimum.
		return oT <= gT+1e-9 && gT <= oT*1.7+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy never exceeds its budget and never returns replica
// counts below one.
func TestGreedyRespectsBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		req := Request{
			TimesNS:      make([]float64, n),
			Crossbars:    make([]int, n),
			Replicable:   make([]bool, n),
			Kinds:        make([]stage.Kind, n),
			Budget:       rng.Intn(10000),
			MicroBatches: 1 + rng.Intn(100),
		}
		for i := 0; i < n; i++ {
			req.TimesNS[i] = rng.Float64() * 1000
			req.Crossbars[i] = 1 + rng.Intn(500)
			req.Replicable[i] = rng.Intn(4) != 0
			req.Kinds[i] = stage.Kind(rng.Intn(4))
			if !req.Replicable[i] {
				req.Crossbars[i] = 0
			}
		}
		res := Greedy(req)
		used := 0
		for i, r := range res.Replicas {
			if r < 1 {
				return false
			}
			if !req.Replicable[i] && r != 1 {
				return false
			}
			used += (r - 1) * req.Crossbars[i]
		}
		return used == res.Used && used <= req.Budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy's T_A is never worse than leaving the budget unused.
func TestGreedyNeverHurts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		req := Request{
			TimesNS:      make([]float64, n),
			Crossbars:    make([]int, n),
			Replicable:   make([]bool, n),
			Kinds:        make([]stage.Kind, n),
			Budget:       rng.Intn(100),
			MicroBatches: 1 + rng.Intn(50),
		}
		for i := 0; i < n; i++ {
			req.TimesNS[i] = rng.Float64() * 100
			req.Crossbars[i] = 1 + rng.Intn(10)
			req.Replicable[i] = true
			req.Kinds[i] = stage.Aggregation
		}
		res := Greedy(req)
		base := TotalTimeNS(req.TimesNS, onesLike(n), req.MicroBatches)
		got := TotalTimeNS(req.TimesNS, res.Replicas, req.MicroBatches)
		return got <= base+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualSplit(t *testing.T) {
	req := twoStage(7) // per-round cost 2 → 3 extra copies each
	res := EqualSplit(req)
	if res.Replicas[0] != 4 || res.Replicas[1] != 4 {
		t.Fatalf("EqualSplit replicas = %v, want [4 4]", res.Replicas)
	}
	if res.Used != 6 {
		t.Fatalf("used = %d, want 6", res.Used)
	}
}

func TestFixedRatio(t *testing.T) {
	req := twoStage(9) // round cost = 1·1 + 2·1 = 3 → 3 rounds
	res := FixedRatio(req, 1, 2)
	if res.Replicas[0] != 4 || res.Replicas[1] != 7 {
		t.Fatalf("FixedRatio replicas = %v, want [4 7]", res.Replicas)
	}
	mustPanicAlloc(t, func() { FixedRatio(req, 0, 0) })
	mustPanicAlloc(t, func() { FixedRatio(req, -1, 2) })
}

func TestCombinationOnly(t *testing.T) {
	req := twoStage(5)
	res := CombinationOnly(req)
	if res.Replicas[0] != 6 || res.Replicas[1] != 1 {
		t.Fatalf("CombinationOnly replicas = %v, want [6 1]", res.Replicas)
	}
}

func TestNonReplicableStagesUntouched(t *testing.T) {
	req := Request{
		TimesNS:      []float64{5, 10},
		Crossbars:    []int{0, 2},
		Replicable:   []bool{false, true},
		Kinds:        []stage.Kind{stage.GradCompute, stage.Aggregation},
		Budget:       10,
		MicroBatches: 4,
	}
	for name, res := range map[string]Result{
		"greedy": Greedy(req),
		"equal":  EqualSplit(req),
		"ratio":  FixedRatio(req, 1, 2),
		"coonly": CombinationOnly(req),
	} {
		if res.Replicas[0] != 1 {
			t.Fatalf("%s: non-replicable stage got %d replicas", name, res.Replicas[0])
		}
	}
}

func TestZeroBudget(t *testing.T) {
	req := twoStage(0)
	for name, res := range map[string]Result{
		"greedy": Greedy(req),
		"equal":  EqualSplit(req),
		"ratio":  FixedRatio(req, 1, 2),
	} {
		if res.Used != 0 || res.Replicas[0] != 1 || res.Replicas[1] != 1 {
			t.Fatalf("%s: zero budget must leave everything at 1: %+v", name, res)
		}
	}
}

func TestFromStages(t *testing.T) {
	stages := []stage.Stage{
		{Kind: stage.Combination, TimeNS: 10, Crossbars: 4, Replicable: true},
		{Kind: stage.GradCompute, TimeNS: 3, Crossbars: 0, Replicable: false},
	}
	req := FromStages(stages, 100, 16)
	if req.TimesNS[0] != 10 || req.Crossbars[0] != 4 || !req.Replicable[0] {
		t.Fatalf("FromStages wrong: %+v", req)
	}
	if req.Kinds[1] != stage.GradCompute || req.Replicable[1] {
		t.Fatalf("FromStages wrong for GC: %+v", req)
	}
	if req.Budget != 100 || req.MicroBatches != 16 {
		t.Fatalf("FromStages budget/B wrong: %+v", req)
	}
}

func TestValidation(t *testing.T) {
	good := twoStage(3)
	bad1 := good
	bad1.TimesNS = nil
	mustPanicAlloc(t, func() { Greedy(bad1) })

	bad2 := good
	bad2.Budget = -1
	mustPanicAlloc(t, func() { Greedy(bad2) })

	bad3 := good
	bad3.MicroBatches = 0
	mustPanicAlloc(t, func() { EqualSplit(bad3) })

	bad4 := good
	bad4.TimesNS = []float64{-1, 6}
	mustPanicAlloc(t, func() { Greedy(bad4) })

	bad5 := good
	bad5.Crossbars = []int{1}
	mustPanicAlloc(t, func() { Greedy(bad5) })
}

func mustPanicAlloc(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestOptimalFindsExact(t *testing.T) {
	// Stage times 10 and 10, B=10, budget 2, each replica costs 1:
	// optimum splits one replica to each: T = 5+5+9·5 = 55.
	req := Request{
		TimesNS:      []float64{10, 10},
		Crossbars:    []int{1, 1},
		Replicable:   []bool{true, true},
		Kinds:        []stage.Kind{stage.Aggregation, stage.Aggregation},
		Budget:       2,
		MicroBatches: 10,
	}
	res := Optimal(req, 3)
	if res.Replicas[0] != 2 || res.Replicas[1] != 2 {
		t.Fatalf("Optimal replicas = %v, want [2 2]", res.Replicas)
	}
	if got := TotalTimeNS(req.TimesNS, res.Replicas, 10); math.Abs(got-55) > 1e-9 {
		t.Fatalf("optimal T = %v, want 55", got)
	}
}

func TestGreedyStopsOnDiminishingReturns(t *testing.T) {
	// Enormous budget with cheap replicas: the MinRelBenefit floor must
	// terminate the loop long before the budget is gone.
	req := Request{
		TimesNS:       []float64{1, 6},
		Crossbars:     []int{1, 1},
		Replicable:    []bool{true, true},
		Kinds:         []stage.Kind{stage.Combination, stage.Aggregation},
		Budget:        100_000_000,
		MicroBatches:  64,
		MinRelBenefit: 1e-6,
	}
	res := Greedy(req)
	if res.Used >= req.Budget {
		t.Fatal("greedy should stop on diminishing returns")
	}
	if res.Used > 1_000_000 {
		t.Fatalf("greedy used %d crossbars, far past the benefit floor", res.Used)
	}
}

// Fault retirement shrinks the pool every policy draws from; the
// policies degrade to fewer replicas and flag the degradation, never
// panic or go negative.
func TestRetiredCrossbarsShrinkBudget(t *testing.T) {
	req := twoStage(6)
	req.RetiredCrossbars = 3 // effective budget 3
	for name, res := range map[string]Result{
		"greedy":  Greedy(req),
		"equal":   EqualSplit(req),
		"ratio":   FixedRatio(req, 1, 2),
		"coonly":  CombinationOnly(req),
		"optimal": Optimal(req, 8),
	} {
		if res.Used > 3 {
			t.Fatalf("%s: spent %d crossbars from an effective budget of 3", name, res.Used)
		}
		if !res.Degraded {
			t.Fatalf("%s: retirement shrank the pool but Degraded is false", name)
		}
		for i, rep := range res.Replicas {
			if rep < 1 {
				t.Fatalf("%s: stage %d replica count %d < 1", name, i, rep)
			}
		}
	}
	// Without retirement the same request is not degraded.
	if res := Greedy(twoStage(6)); res.Degraded {
		t.Fatal("fault-free allocation reported Degraded")
	}
}

// Retirement can exceed the nominal budget: the pool clamps to empty
// and every policy returns the valid no-replica plan.
func TestRetirementEmptiesPool(t *testing.T) {
	req := twoStage(5)
	req.RetiredCrossbars = 1000
	for name, res := range map[string]Result{
		"greedy":  Greedy(req),
		"equal":   EqualSplit(req),
		"ratio":   FixedRatio(req, 1, 2),
		"coonly":  CombinationOnly(req),
		"optimal": Optimal(req, 4),
	} {
		if res.Used != 0 {
			t.Fatalf("%s: used %d crossbars from an empty pool", name, res.Used)
		}
		for i, rep := range res.Replicas {
			if rep != 1 {
				t.Fatalf("%s: stage %d got %d replicas with no healthy capacity", name, i, rep)
			}
		}
		if !res.Degraded {
			t.Fatalf("%s: an emptied pool must report Degraded", name)
		}
	}
}

// A near-empty pool that affords some stages but not others still
// yields a consistent plan.
func TestNearEmptyPoolPartialAfford(t *testing.T) {
	req := Request{
		TimesNS:          []float64{5, 9},
		Crossbars:        []int{1, 100},
		Replicable:       []bool{true, true},
		Kinds:            []stage.Kind{stage.Combination, stage.Aggregation},
		Budget:           8,
		RetiredCrossbars: 6, // effective budget 2: only stage 0 fits
		MicroBatches:     4,
	}
	res := Greedy(req)
	if res.Replicas[1] != 1 {
		t.Fatalf("unaffordable stage got %d replicas", res.Replicas[1])
	}
	if res.Used > 2 {
		t.Fatalf("greedy overspent the effective budget: %d", res.Used)
	}
}

func TestNegativeRetiredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative RetiredCrossbars must be rejected")
		}
	}()
	req := twoStage(4)
	req.RetiredCrossbars = -1
	Greedy(req)
}
