package alloc

import (
	"fmt"
	"math/rand"
	"testing"

	"gopim/internal/stage"
)

// randomRequest builds an n-stage allocation instance.
func randomRequest(rng *rand.Rand, n, budget, b int) Request {
	req := Request{
		TimesNS:      make([]float64, n),
		Crossbars:    make([]int, n),
		Replicable:   make([]bool, n),
		Kinds:        make([]stage.Kind, n),
		Budget:       budget,
		MicroBatches: b,
	}
	for i := 0; i < n; i++ {
		req.TimesNS[i] = 1 + rng.Float64()*1000
		req.Crossbars[i] = 1 + rng.Intn(50)
		req.Replicable[i] = true
		req.Kinds[i] = stage.Kind(i % 4)
	}
	return req
}

// The paper's §V-B decision-time claim: dynamic programming takes days
// on large instances while the max-heap greedy finishes immediately.
// This bench pair exposes the asymptotic gap — the exact search
// explodes with budget, the greedy grows linearly.
func BenchmarkDecisionTimeGreedy(b *testing.B) {
	for _, n := range []int{8, 12} {
		n := n
		b.Run(fmt.Sprintf("stages=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			req := randomRequest(rng, n, 100_000, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Greedy(req)
			}
		})
	}
}

func BenchmarkDecisionTimeOptimal(b *testing.B) {
	for _, budget := range []int{8, 16} {
		budget := budget
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			req := randomRequest(rng, 4, budget, 64)
			// Unit crossbar costs make the exact search as hard as the
			// budget allows.
			for i := range req.Crossbars {
				req.Crossbars[i] = 1
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Optimal(req, budget+1)
			}
		})
	}
}

func BenchmarkFixedRatio(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	req := randomRequest(rng, 12, 100_000, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FixedRatio(req, 1, 2)
	}
}
