package alloc

import (
	"reflect"
	"testing"

	"gopim/internal/stage"
)

// policies enumerates every allocation policy under its display name.
func policies() map[string]func(Request) Result {
	return map[string]func(Request) Result{
		"greedy": Greedy,
		"equal":  EqualSplit,
		"ratio":  func(r Request) Result { return FixedRatio(r, 1, 2) },
		"coonly": CombinationOnly,
		"space":  SpaceProportional,
		"optimal": func(r Request) Result {
			return Optimal(r, 8)
		},
	}
}

// TestPoolCollapseMidSequence is the churn robustness table: a
// retirement wave sweeps the free pool through →1 and →0 transitions
// across successive allocations of one run, and every policy must
// degrade deterministically at each step — monotonically fewer
// crossbars spent, Degraded flagged exactly when retirement bites,
// never a panic, never a replica count below the original mapping.
func TestPoolCollapseMidSequence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		budget  int
		wave    []int // RetiredCrossbars per allocation step
		effWant []int // expected effective budget per step
	}{
		{
			name:    "pool-to-zero",
			budget:  6,
			wave:    []int{0, 3, 5, 6, 9},
			effWant: []int{6, 3, 1, 0, 0},
		},
		{
			name:    "pool-to-one-and-back-to-zero",
			budget:  4,
			wave:    []int{1, 3, 4},
			effWant: []int{3, 1, 0},
		},
		{
			name:    "zero-nominal-budget",
			budget:  0,
			wave:    []int{0, 2},
			effWant: []int{0, 0},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for name, policy := range policies() {
				prevEff := -1
				prevUsed := -1
				for step, retired := range tc.wave {
					req := twoStage(tc.budget)
					req.RetiredCrossbars = retired
					if eff := req.effectiveBudget(); eff != tc.effWant[step] {
						t.Fatalf("%s step %d: effective budget %d, want %d", name, step, eff, tc.effWant[step])
					}
					res := policy(req)
					if res.Used > req.effectiveBudget() {
						t.Fatalf("%s step %d: spent %d from a pool of %d", name, step, res.Used, req.effectiveBudget())
					}
					for i, rep := range res.Replicas {
						if rep < 1 {
							t.Fatalf("%s step %d: stage %d replica count %d < 1", name, step, i, rep)
						}
					}
					wantDegraded := retired > 0 && tc.budget > 0
					if res.Degraded != wantDegraded {
						t.Fatalf("%s step %d: Degraded = %v, want %v (retired %d, budget %d)",
							name, step, res.Degraded, wantDegraded, retired, tc.budget)
					}
					// Same request again → identical result: the degradation
					// path must be deterministic, not best-effort.
					if again := policy(req); !reflect.DeepEqual(again, res) {
						t.Fatalf("%s step %d: repeated allocation diverged: %+v vs %+v", name, step, again, res)
					}
					// A shrinking pool never spends more than the previous,
					// larger pool did.
					if prevEff >= 0 && req.effectiveBudget() <= prevEff && res.Used > prevUsed {
						t.Fatalf("%s step %d: pool shrank %d→%d but spend grew %d→%d",
							name, step, prevEff, req.effectiveBudget(), prevUsed, res.Used)
					}
					prevEff, prevUsed = req.effectiveBudget(), res.Used
				}
			}
		})
	}
}

// TestPoolCollapseSingleSlot: an effective budget of exactly 1 must
// afford at most one single-crossbar replica — the boundary where
// greedy's heap still has work but almost nothing fits.
func TestPoolCollapseSingleSlot(t *testing.T) {
	req := Request{
		TimesNS:          []float64{5, 9, 2},
		Crossbars:        []int{1, 2, 1},
		Replicable:       []bool{true, true, true},
		Kinds:            []stage.Kind{stage.Combination, stage.Aggregation, stage.LossCalc},
		Budget:           8,
		RetiredCrossbars: 7,
		MicroBatches:     4,
	}
	res := Greedy(req)
	if res.Used > 1 {
		t.Fatalf("spent %d crossbars from a single-slot pool", res.Used)
	}
	if res.Replicas[1] != 1 {
		t.Fatalf("two-crossbar stage cannot fit in one slot, got %d replicas", res.Replicas[1])
	}
	if !res.Degraded {
		t.Fatal("single-slot pool must report Degraded")
	}
}
