package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gopim/internal/accel"
	"gopim/internal/experiments"
)

// parseLabels splits a labelled metric name ("accel.makespan_ns
// {dataset=ddi,model=GoPIM}") into its base name and label map; plain
// names return a nil map.
func parseLabels(name string) (base string, labels map[string]string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	base = name[:i]
	labels = map[string]string{}
	for _, kv := range strings.Split(name[i+1:len(name)-1], ",") {
		if k, v, ok := strings.Cut(kv, "="); ok {
			labels[k] = v
		}
	}
	return base, labels
}

// stageOrder ranks stage kinds in dataflow order; stage names are
// kind + layer number ("CO1", "AG2"), so columns sort by layer first
// and kind within the layer. Unknown kinds sort after, alphabetically.
var stageOrder = map[string]int{"CO": 0, "AG": 1, "LC": 2, "GC": 3}

// stageSortKey splits a stage name into (layer, kind rank, name) for
// dataflow-ordered columns.
func stageSortKey(name string) (layer, kind int, known bool) {
	base := strings.TrimRight(name, "0123456789")
	layer, _ = strconv.Atoi(name[len(base):])
	kind, known = stageOrder[base]
	return layer, kind, known
}

// modelOrder ranks models in the paper's Fig. 13/14 order.
var modelOrder = func() map[string]int {
	order := map[string]int{}
	for i, k := range []accel.Kind{
		accel.Serial, accel.SlimGNNLike, accel.ReGraphX, accel.ReFlip,
		accel.GoPIMVanilla, accel.GoPIM, accel.PlusPP, accel.PlusISU,
		accel.Pipelayer,
	} {
		order[k.String()] = i
	}
	return order
}()

// attribRow accumulates one {dataset, model} cell of the pivot.
type attribRow struct {
	dataset, model string
	makespanNS     float64
	energyPJ       float64
	crossbars      float64
	updateFrac     float64
	hasUpdateFrac  bool
	idle           map[string]float64 // stage -> idle fraction
	crit           map[string]float64 // stage -> critical-path share
	bubble         map[string]float64 // bubble class -> idle ns
}

// Attribution pivots the per-{dataset, model} accelerator series of a
// Sim snapshot into a "where did the time and energy go" table: one
// row per simulated {dataset, model} with its makespan, energy,
// crossbar footprint, per-stage idle fractions (the busy/idle split of
// the paper's Figs. 4/15) and the ISU row-update fraction. The global
// gcn.rows_rewritten/rows_total counters, when present, land in the
// notes as the training-side write-traffic figure.
func Attribution(metrics []MetricValue) (*experiments.Result, error) {
	rows := map[string]*attribRow{}
	stages := map[string]bool{}
	var rowsRewritten, rowsTotal float64
	var faultyCells, writeRetries, retired, degraded float64
	hasExplain := false
	// spmmByDataset maps a dataset name to the SpMM strategies its
	// training aggregations resolved to (usually one; fast/full variants
	// of a graph may differ).
	spmmByDataset := map[string]map[string]bool{}
	get := func(labels map[string]string) *attribRow {
		key := labels["dataset"] + "\x00" + labels["model"]
		r := rows[key]
		if r == nil {
			r = &attribRow{
				dataset: labels["dataset"], model: labels["model"],
				idle: map[string]float64{},
				crit: map[string]float64{}, bubble: map[string]float64{},
			}
			rows[key] = r
		}
		return r
	}
	for _, m := range metrics {
		base, labels := parseLabels(m.Name)
		if labels == nil {
			switch {
			case m.Name == "gcn.rows_rewritten" && m.Field == "count":
				rowsRewritten, _ = strconv.ParseFloat(m.Value, 64)
			case m.Name == "gcn.rows_total" && m.Field == "count":
				rowsTotal, _ = strconv.ParseFloat(m.Value, 64)
			case m.Name == "accel.faulty_cells" && m.Field == "count":
				faultyCells, _ = strconv.ParseFloat(m.Value, 64)
			case m.Name == "accel.write_retries" && m.Field == "count":
				writeRetries, _ = strconv.ParseFloat(m.Value, 64)
			case m.Name == "accel.crossbars_retired" && m.Field == "count":
				retired, _ = strconv.ParseFloat(m.Value, 64)
			case m.Name == "accel.alloc_degraded" && m.Field == "count":
				degraded, _ = strconv.ParseFloat(m.Value, 64)
			}
			continue
		}
		// The autotuner's per-graph choice series ("spmm.selected
		// {graph=ddi/v1200,strategy=bucketed}") keys on graph, not
		// {dataset, model}; fold it into a per-dataset strategy column.
		if base == "spmm.selected" && m.Field == "count" {
			ds := labels["graph"]
			if i := strings.IndexByte(ds, '/'); i >= 0 {
				ds = ds[:i]
			}
			if spmmByDataset[ds] == nil {
				spmmByDataset[ds] = map[string]bool{}
			}
			spmmByDataset[ds][labels["strategy"]] = true
			continue
		}
		// Distributions render min and max; for a repeated deterministic
		// observation both are the value itself — read max.
		if m.Field != "max" {
			continue
		}
		v, err := strconv.ParseFloat(m.Value, 64)
		if err != nil {
			continue
		}
		switch base {
		case "accel.makespan_ns":
			get(labels).makespanNS = v
		case "accel.energy_pj":
			get(labels).energyPJ = v
		case "accel.crossbars_used":
			get(labels).crossbars = v
		case "accel.update_frac":
			r := get(labels)
			r.updateFrac, r.hasUpdateFrac = v, true
		case "accel.stage_idle_frac":
			stage := labels["stage"]
			stages[stage] = true
			get(labels).idle[stage] = v
		case "accel.crit_share":
			hasExplain = true
			get(labels).crit[labels["stage"]] = v
		case "accel.bubble_ns":
			hasExplain = true
			get(labels).bubble[labels["class"]] = v
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("bench: no per-{dataset,model} accel series in snapshot (was the run recorded with observability enabled?)")
	}

	stageCols := make([]string, 0, len(stages))
	for s := range stages {
		stageCols = append(stageCols, s)
	}
	sort.Slice(stageCols, func(i, j int) bool {
		li, ki, iOK := stageSortKey(stageCols[i])
		lj, kj, jOK := stageSortKey(stageCols[j])
		switch {
		case iOK && jOK:
			if li != lj {
				return li < lj
			}
			return ki < kj
		case iOK != jOK:
			return iOK
		}
		return stageCols[i] < stageCols[j]
	})

	ordered := make([]*attribRow, 0, len(rows))
	for _, r := range rows {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.dataset != b.dataset {
			return a.dataset < b.dataset
		}
		oa, aOK := modelOrder[a.model]
		ob, bOK := modelOrder[b.model]
		switch {
		case aOK && bOK:
			return oa < ob
		case aOK != bOK:
			return aOK
		}
		return a.model < b.model
	})

	res := &experiments.Result{
		ID:     "attrib",
		Title:  "stage-level time/energy attribution",
		Header: []string{"dataset", "model", "makespan (ms)", "energy (uJ)", "crossbars", "upd rows"},
	}
	for _, s := range stageCols {
		res.Header = append(res.Header, "idle "+s)
	}
	// Bottleneck columns appear only when the snapshot carries the
	// explain series, so pre-explain BENCH files render unchanged; same
	// contract for the autotuner's strategy column.
	if hasExplain {
		res.Header = append(res.Header, "bottleneck", "crit %", "top bubble")
	}
	if len(spmmByDataset) > 0 {
		res.Header = append(res.Header, "spmm")
	}
	for _, r := range ordered {
		upd := ""
		if r.hasUpdateFrac {
			upd = fmt.Sprintf("%.0f%%", r.updateFrac*100)
		}
		row := []string{
			r.dataset, r.model,
			fmt.Sprintf("%.4g", r.makespanNS/1e6),
			fmt.Sprintf("%.4g", r.energyPJ/1e6),
			fmt.Sprintf("%.0f", r.crossbars),
			upd,
		}
		for _, s := range stageCols {
			if frac, ok := r.idle[s]; ok {
				row = append(row, fmt.Sprintf("%.1f%%", frac*100))
			} else {
				row = append(row, "")
			}
		}
		if hasExplain {
			row = append(row, bottleneckCells(r)...)
		}
		if len(spmmByDataset) > 0 {
			row = append(row, spmmCell(spmmByDataset[r.dataset]))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"idle columns are per-stage idle fractions (paper Figs. 4/15); 'upd rows' is the steady-state fraction of vertex rows rewritten per epoch (ISU)")
	if hasExplain {
		res.Notes = append(res.Notes,
			"bottleneck/crit % come from the critical-path analyzer (gopim explain); 'top bubble' is the largest idle class summed over stages")
	}
	if len(spmmByDataset) > 0 {
		res.Notes = append(res.Notes,
			"'spmm' is the aggregation kernel the autotuner resolved for the dataset's graph(s) — see gopim -spmm and DESIGN.md §17")
	}
	if rowsTotal > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"ISU write traffic during GCN training: %.0f of %.0f rows rewritten (%.1f%%)",
			rowsRewritten, rowsTotal, 100*rowsRewritten/rowsTotal))
	}
	// Fault-injection footprint, when the run had faults on: how much of
	// the makespan/crossbar story above is fault-driven.
	if faultyCells > 0 || writeRetries > 0 || retired > 0 || degraded > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"fault injection: %.0f stuck cells expected on placed crossbars, %.0f extra write-verify cycles, %.0f crossbars retired, %.0f degraded allocations",
			faultyCells, writeRetries, retired, degraded))
	}
	return res, nil
}

// spmmCell renders a dataset's resolved SpMM strategies, sorted and
// '+'-joined when fast/full graph variants picked differently.
func spmmCell(strats map[string]bool) string {
	if len(strats) == 0 {
		return ""
	}
	names := make([]string, 0, len(strats))
	for s := range strats {
		names = append(names, s)
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}

// bottleneckCells renders a row's explain-derived columns: the stage
// owning the largest critical-path share, that share, and the bubble
// class holding the most idle time. Rows without the series (an older
// snapshot mixed into a newer one) render blank cells.
func bottleneckCells(r *attribRow) []string {
	stage, share := maxEntry(r.crit)
	class, _ := maxEntry(r.bubble)
	if stage == "" && class == "" {
		return []string{"", "", ""}
	}
	cells := []string{stage, "", class}
	if stage != "" {
		cells[1] = fmt.Sprintf("%.1f%%", share*100)
	}
	return cells
}

// maxEntry returns the key with the largest value, ties broken by key
// order so output never depends on map iteration.
func maxEntry(m map[string]float64) (string, float64) {
	var bestK string
	var bestV float64
	for k, v := range m {
		if bestK == "" || v > bestV || (v == bestV && k < bestK) {
			bestK, bestV = k, v
		}
	}
	return bestK, bestV
}

// AttributionConfig picks the configuration to attribute from a BENCH
// file: the one whose snapshot carries the most accel series (the
// sim-matrix at the lowest worker count, in practice).
func AttributionConfig(f *File) (ConfigResult, error) {
	best := -1
	bestN := 0
	for i, c := range f.Configs {
		n := 0
		for _, m := range c.SimMetrics {
			if strings.HasPrefix(m.Name, "accel.") && strings.Contains(m.Name, "{") {
				n++
			}
		}
		if n > bestN {
			best, bestN = i, n
		}
	}
	if best < 0 {
		return ConfigResult{}, fmt.Errorf("bench: %s has no labelled accel series to attribute", f.Label)
	}
	return f.Configs[best], nil
}
