package bench

import (
	"bytes"
	"strings"
	"testing"
)

func labelled(base, dataset, model, field, value string) MetricValue {
	return sim(base+"{dataset="+dataset+",model="+model+"}", field, value)
}

func stageIdle(dataset, model, stage, value string) MetricValue {
	return sim("accel.stage_idle_frac{dataset="+dataset+",model="+model+",stage="+stage+"}",
		"max", value)
}

func attribMetrics() []MetricValue {
	return []MetricValue{
		labelled("accel.makespan_ns", "ddi", "Serial", "max", "2e8"),
		labelled("accel.makespan_ns", "ddi", "Serial", "count", "1"),
		labelled("accel.energy_pj", "ddi", "Serial", "max", "5e7"),
		labelled("accel.crossbars_used", "ddi", "Serial", "max", "1196"),
		labelled("accel.update_frac", "ddi", "Serial", "max", "1"),
		stageIdle("ddi", "Serial", "CO1", "0.99"),
		stageIdle("ddi", "Serial", "AG1", "0.5"),
		labelled("accel.makespan_ns", "ddi", "GoPIM", "max", "3e5"),
		labelled("accel.energy_pj", "ddi", "GoPIM", "max", "3e7"),
		labelled("accel.crossbars_used", "ddi", "GoPIM", "max", "2043676"),
		labelled("accel.update_frac", "ddi", "GoPIM", "max", "0.52"),
		stageIdle("ddi", "GoPIM", "CO1", "0.975"),
		stageIdle("ddi", "GoPIM", "AG1", "0.87"),
		sim("gcn.rows_rewritten", "count", "5200"),
		sim("gcn.rows_total", "count", "10000"),
		// Unlabelled aggregates must not create rows.
		sim("accel.makespan_ns", "max", "2e8"),
	}
}

func TestAttributionPivot(t *testing.T) {
	res, err := Attribution(attribMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (one per {dataset,model}):\n%+v", len(res.Rows), res.Rows)
	}
	// Paper model order: Serial before GoPIM.
	if res.Rows[0][1] != "Serial" || res.Rows[1][1] != "GoPIM" {
		t.Errorf("model order = %q, %q", res.Rows[0][1], res.Rows[1][1])
	}
	// Stage columns in dataflow order: CO1 before AG1.
	co := -1
	ag := -1
	for i, h := range res.Header {
		switch h {
		case "idle CO1":
			co = i
		case "idle AG1":
			ag = i
		}
	}
	if co < 0 || ag < 0 || co > ag {
		t.Errorf("stage columns out of dataflow order: %v", res.Header)
	}
	var b bytes.Buffer
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"52%", "99.0%", "5200 of 10000"} {
		if !strings.Contains(out, want) {
			t.Errorf("attribution missing %q:\n%s", want, out)
		}
	}
}

// Fault counters in the snapshot surface as a note; their absence (the
// default, fault-free case) leaves the report without one.
func TestAttributionFaultNote(t *testing.T) {
	res, err := Attribution(attribMetrics())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "fault injection") {
			t.Fatalf("fault note in a fault-free snapshot: %q", n)
		}
	}

	withFaults := append(attribMetrics(),
		sim("accel.faulty_cells", "count", "8400"),
		sim("accel.write_retries", "count", "120000"),
		sim("accel.crossbars_retired", "count", "37"),
		sim("accel.alloc_degraded", "count", "2"),
	)
	res, err = Attribution(withFaults)
	if err != nil {
		t.Fatal(err)
	}
	var note string
	for _, n := range res.Notes {
		if strings.Contains(n, "fault injection") {
			note = n
		}
	}
	if note == "" {
		t.Fatalf("no fault note despite fault counters; notes: %v", res.Notes)
	}
	for _, want := range []string{"8400", "120000", "37 crossbars retired", "2 degraded"} {
		if !strings.Contains(note, want) {
			t.Errorf("fault note missing %q: %q", want, note)
		}
	}
}

func TestAttributionRejectsUnlabelledSnapshot(t *testing.T) {
	if _, err := Attribution([]MetricValue{sim("pipeline.simulations", "count", "3")}); err == nil {
		t.Error("snapshot without labelled accel series accepted")
	}
}

func TestAttributionConfigPicksRichest(t *testing.T) {
	f := &File{
		Schema: Schema, Label: "x",
		Configs: []ConfigResult{
			{Name: "experiments/w1", SimMetrics: []MetricValue{sim("pipeline.simulations", "count", "1")}},
			{Name: "sim-matrix/w1", SimMetrics: attribMetrics()},
		},
	}
	c, err := AttributionConfig(f)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "sim-matrix/w1" {
		t.Errorf("picked %q, want sim-matrix/w1", c.Name)
	}
	if _, err := AttributionConfig(&File{Label: "empty"}); err == nil {
		t.Error("empty file accepted")
	}
}

func TestParseLabels(t *testing.T) {
	base, labels := parseLabels("accel.makespan_ns{dataset=ddi,model=GoPIM}")
	if base != "accel.makespan_ns" || labels["dataset"] != "ddi" || labels["model"] != "GoPIM" {
		t.Errorf("parseLabels = %q %v", base, labels)
	}
	if base, labels := parseLabels("plain.metric"); base != "plain.metric" || labels != nil {
		t.Errorf("plain name = %q %v", base, labels)
	}
}

// The explain series add bottleneck columns — and only when present,
// so pre-explain snapshots keep their exact shape.
func TestAttributionBottleneckColumns(t *testing.T) {
	// Without the series: no bottleneck header.
	res, err := Attribution(attribMetrics())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Header {
		if h == "bottleneck" {
			t.Fatalf("bottleneck column without explain series: %v", res.Header)
		}
	}

	metrics := append(attribMetrics(),
		sim("accel.crit_share{dataset=ddi,model=GoPIM,stage=CO1}", "max", "0.1"),
		sim("accel.crit_share{dataset=ddi,model=GoPIM,stage=AG1}", "max", "0.9"),
		sim("accel.bubble_ns{dataset=ddi,model=GoPIM,class=fill}", "max", "100"),
		sim("accel.bubble_ns{dataset=ddi,model=GoPIM,class=starve}", "max", "900"),
	)
	res, err = Attribution(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"bottleneck", "crit %", "top bubble", "AG1", "90.0%", "starve"} {
		if !strings.Contains(out, want) {
			t.Errorf("bottleneck report missing %q:\n%s", want, out)
		}
	}
	// The Serial row carried no explain series: blank cells, no panic.
	last := res.Rows[0]
	if got := last[len(last)-3:]; got[0] != "" || got[1] != "" || got[2] != "" {
		t.Errorf("row without explain series must render blank: %v", got)
	}
}
