// Package bench is GoPIM's performance-regression harness. It runs a
// standard workload suite — a {dataset, model} simulation matrix plus a
// set of experiment harnesses, each at several worker counts — with
// warmup and repeat controls, and captures two kinds of signal per
// configuration:
//
//   - wall-clock timing statistics (min/median/max across repeats),
//     which describe this machine on this day and are compared
//     report-only; and
//   - the full Sim-clock metric snapshot from the obs registry, which
//     is a pure function of the suite and seed (byte-identical at any
//     worker count) and therefore diffs strictly across runs, machines
//     and commits.
//
// Run writes a versioned BENCH_<label>.json; Diff (diff.go) compares
// two such files (or raw -metrics JSON snapshots) metric-by-metric and
// classifies every value as improved, regressed, unchanged, added or
// removed; Attribution (attrib.go) pivots the per-{dataset, model}
// accelerator series into a "where did the time and energy go" table.
// The gopim CLI surfaces all three as `gopim bench` and `gopim diff`.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"gopim/internal/accel"
	"gopim/internal/experiments"
	"gopim/internal/graphgen"
	"gopim/internal/obs"
	"gopim/internal/parallel"
)

// Schema is the BENCH file format version; bump it on any breaking
// change to File so diffs fail loudly instead of misreading old files.
// Version 2 added per-repeat heap-allocation stats (AllocObjs/AllocMB).
const Schema = 2

// Config tunes one bench-suite run. The zero value of every field
// selects the smoke-scale default, so Config{} is the CI suite.
type Config struct {
	// Label names the output file (BENCH_<label>.json).
	Label string
	// Suite selects the workload family: "" (or "default") is the
	// standard sim-matrix + experiments pair; KernelsSuite runs the SpMM
	// strategy micro-benchmarks instead.
	Suite string
	// Seed drives all synthetic graph generation.
	Seed int64
	// Fast shrinks the experiment workloads (experiments.Options.Fast).
	Fast bool
	// Warmup runs per configuration are executed but not recorded; the
	// default 1 warms caches (the shared predictor cache in
	// particular) so every measured repeat sees the same state.
	Warmup int
	// Repeats is the number of measured runs per configuration
	// (default 3). Wall stats aggregate over them; the Sim snapshot is
	// captured from the last repeat and checked for stability across
	// all of them.
	Repeats int
	// Workers lists the worker counts the suite runs at (default
	// {1, 2} — machine-independent, so config names match across
	// hosts).
	Workers []int
	// Experiments lists experiment harness ids (default: the fig4–fig7
	// smoke set the determinism tests pin).
	Experiments []string
	// Datasets and Models define the direct simulation matrix (default:
	// ddi and Cora × the six Fig. 13 baselines).
	Datasets []string
	Models   []accel.Kind
	// Args is recorded in the run manifest for provenance.
	Args []string
}

// SmokeExperiments is the default experiment set: the cheap motivation
// harnesses that exercise accel, pipeline and mapping end to end.
func SmokeExperiments() []string { return []string{"fig4", "fig5", "fig6", "fig7"} }

// SmokeDatasets is the default simulation-matrix dataset set.
func SmokeDatasets() []string { return []string{"ddi", "Cora"} }

func (c *Config) defaults() {
	if c.Label == "" {
		c.Label = "local"
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Repeats < 1 {
		c.Repeats = 3
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2}
	}
	if len(c.Experiments) == 0 {
		c.Experiments = SmokeExperiments()
	}
	if len(c.Datasets) == 0 {
		c.Datasets = SmokeDatasets()
	}
	if len(c.Models) == 0 {
		c.Models = accel.AllBaselines()
	}
}

// Suite records the workload definition inside the BENCH file, so a
// diff can tell when two files measured different things.
type Suite struct {
	Name        string   `json:"suite,omitempty"`
	Seed        int64    `json:"seed"`
	Fast        bool     `json:"fast"`
	Warmup      int      `json:"warmup"`
	Repeats     int      `json:"repeats"`
	Workers     []int    `json:"workers"`
	Experiments []string `json:"experiments"`
	Datasets    []string `json:"datasets"`
	Models      []string `json:"models"`
}

// MetricValue is one flattened metric field from a registry snapshot.
// Values keep the registry's deterministic string rendering; the diff
// engine parses them back to floats when both sides are numeric.
type MetricValue struct {
	Name  string `json:"name"`
	Clock string `json:"clock"`
	Kind  string `json:"kind"`
	Field string `json:"field"`
	Value string `json:"value"`
}

// Stats are wall-clock milliseconds aggregated across repeats.
type Stats struct {
	MinMS    float64 `json:"min_ms"`
	MedianMS float64 `json:"median_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// statsOf aggregates sorted samples (destructively sorts its input).
func statsOf(ms []float64) Stats {
	sort.Float64s(ms)
	return Stats{
		MinMS:    ms[0],
		MedianMS: ms[len(ms)/2],
		MaxMS:    ms[len(ms)-1],
	}
}

// ConfigResult is one configuration's outcome.
type ConfigResult struct {
	// Name identifies the configuration ("sim-matrix/w2"); diffs match
	// configurations by this name.
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	// WallMS aggregates the measured repeats (report-only in diffs).
	WallMS Stats `json:"wall_ms"`
	// AllocObjs and AllocMB are the median heap-allocation count and
	// megabytes per measured repeat (runtime.MemStats deltas). Like
	// wall time they describe this process, not the model, so diffs
	// compare them report-only — but a jump flags an allocation
	// regression in the hot paths the suite exercises.
	AllocObjs float64 `json:"alloc_objs"`
	AllocMB   float64 `json:"alloc_mb"`
	// SimStable is false when the Sim snapshot drifted between repeats
	// of this very run — a determinism bug worth investigating.
	SimStable bool `json:"sim_stable"`
	// SimMetrics is the flattened Sim-clock snapshot of the last
	// repeat (strictly diffable).
	SimMetrics []MetricValue `json:"sim_metrics"`
}

// File is the versioned on-disk BENCH format.
type File struct {
	Schema   int            `json:"schema"`
	Label    string         `json:"label"`
	Suite    Suite          `json:"suite"`
	Manifest *obs.Manifest  `json:"manifest,omitempty"`
	Configs  []ConfigResult `json:"configs"`
}

// FileName returns the canonical file name for a label, sanitised to
// [A-Za-z0-9._-] so labels can't escape the output directory.
func FileName(label string) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '-'
	}, label)
	if s == "" {
		s = "local"
	}
	return "BENCH_" + s + ".json"
}

// flattenSim renders the registry's Sim-clock snapshot as flat
// metric/field/value triples, preserving the registry's deterministic
// name and field ordering. Metrics with zero observations are dropped:
// registration is process-global and permanent, so without the filter
// a configuration's snapshot would include every series earlier
// configurations happened to register, and the same configuration
// would render differently depending on what ran before it.
func flattenSim(reg *obs.Registry) []MetricValue {
	var out []MetricValue
	for _, s := range reg.Snapshot(obs.Sim) {
		if len(s.Fields) > 0 && s.Fields[0].Key == "count" && s.Fields[0].Value == "0" {
			continue
		}
		for _, f := range s.Fields {
			out = append(out, MetricValue{
				Name: s.Name, Clock: s.Clock.String(), Kind: s.Kind,
				Field: f.Key, Value: f.Value,
			})
		}
	}
	return out
}

func sameMetrics(a, b []MetricValue) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Run executes the suite and returns the BENCH file content.
//
// Run owns process-global state for its duration: it enables obs
// recording, resets the default registry between repeats (so each
// snapshot covers exactly one pass), and drives parallel.SetWorkers
// through the configured counts, restoring the default (0) and the
// previous obs enablement on return. Don't run it concurrently with
// other instrumented work.
func Run(cfg Config) (*File, error) {
	cfg.defaults()

	// Validate the whole matrix before the first (possibly long) run.
	for _, id := range cfg.Experiments {
		found := false
		for _, have := range experiments.IDs() {
			if id == have {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("bench: unknown experiment %q (have %s)",
				id, strings.Join(experiments.IDs(), ", "))
		}
	}
	datasets := make([]graphgen.Dataset, len(cfg.Datasets))
	for i, name := range cfg.Datasets {
		d, err := graphgen.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		datasets[i] = d
	}

	wasEnabled := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(wasEnabled)
	defer parallel.SetWorkers(0)

	models := make([]string, len(cfg.Models))
	for i, m := range cfg.Models {
		models[i] = m.String()
	}
	f := &File{
		Schema: Schema,
		Label:  cfg.Label,
		Suite: Suite{
			Name: cfg.Suite,
			Seed: cfg.Seed, Fast: cfg.Fast,
			Warmup: cfg.Warmup, Repeats: cfg.Repeats,
			Workers: cfg.Workers, Experiments: cfg.Experiments,
			Datasets: cfg.Datasets, Models: models,
		},
		Manifest: obs.NewManifest(cfg.Args),
	}
	f.Manifest.Seed = cfg.Seed
	f.Manifest.Fast = cfg.Fast
	f.Manifest.Format = "bench"

	simMatrix := func() error {
		type pair struct {
			d graphgen.Dataset
			m accel.Kind
		}
		pairs := make([]pair, 0, len(datasets)*len(cfg.Models))
		for _, d := range datasets {
			for _, m := range cfg.Models {
				pairs = append(pairs, pair{d, m})
			}
		}
		parallel.Map(len(pairs), func(i int) struct{} {
			accel.Run(pairs[i].m, accel.Workload{Dataset: pairs[i].d, Seed: cfg.Seed})
			return struct{}{}
		})
		return nil
	}
	expSuite := func() error {
		_, err := experiments.RunAll(cfg.Experiments,
			experiments.Options{Seed: cfg.Seed, Fast: cfg.Fast})
		return err
	}

	var groups []benchGroup
	switch cfg.Suite {
	case "", "default":
		groups = []benchGroup{{"sim-matrix", simMatrix}, {"experiments", expSuite}}
	case KernelsSuite:
		groups = kernelGroups(datasets, cfg.Seed, cfg.Fast)
	default:
		return nil, fmt.Errorf("bench: unknown suite %q (want default or %s)", cfg.Suite, KernelsSuite)
	}

	for _, w := range cfg.Workers {
		for _, group := range groups {
			res, err := runConfig(fmt.Sprintf("%s/w%d", group.name, w),
				w, cfg.Warmup, cfg.Repeats, group.body)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/w%d: %w", group.name, w, err)
			}
			f.Manifest.Record(res.Name, time.Duration(res.WallMS.MedianMS*1e6), nil)
			f.Configs = append(f.Configs, res)
		}
	}
	f.Manifest.Finish()
	return f, nil
}

// benchGroup is one named workload body the suite loop measures per
// worker count.
type benchGroup struct {
	name string
	body func() error
}

// runConfig measures one configuration: warmup passes, then repeats
// with the registry reset before each so every Sim snapshot covers
// exactly one pass.
func runConfig(name string, workers, warmup, repeats int, body func() error) (ConfigResult, error) {
	parallel.SetWorkers(workers)
	for i := 0; i < warmup; i++ {
		if err := body(); err != nil {
			return ConfigResult{}, err
		}
	}
	wallMS := make([]float64, repeats)
	allocObjs := make([]float64, repeats)
	allocMB := make([]float64, repeats)
	var snap []MetricValue
	stable := true
	var msBefore, msAfter runtime.MemStats
	for r := 0; r < repeats; r++ {
		// Resetting the registry also clears the simmemo caches (its
		// OnReset hook), so each repeat's Sim snapshot — hit/miss
		// counters included — covers exactly one cold pass.
		obs.Default().Reset()
		runtime.ReadMemStats(&msBefore)
		t0 := time.Now()
		if err := body(); err != nil {
			return ConfigResult{}, err
		}
		wallMS[r] = float64(time.Since(t0)) / 1e6
		runtime.ReadMemStats(&msAfter)
		allocObjs[r] = float64(msAfter.Mallocs - msBefore.Mallocs)
		allocMB[r] = float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / (1 << 20)
		cur := flattenSim(obs.Default())
		if snap != nil && !sameMetrics(snap, cur) {
			stable = false
		}
		snap = cur
	}
	if !stable {
		obs.Warnf("bench", "%s: Sim snapshot drifted between repeats (non-deterministic metric?)", name)
	}
	return ConfigResult{
		Name:       name,
		Workers:    workers,
		WallMS:     statsOf(wallMS),
		AllocObjs:  medianOf(allocObjs),
		AllocMB:    medianOf(allocMB),
		SimStable:  stable,
		SimMetrics: snap,
	}, nil
}

// medianOf returns the median (destructively sorts its input).
func medianOf(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// WriteFile writes the BENCH file as indented JSON.
func (f *File) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a comparable file: either a BENCH_*.json written by
// WriteFile, or a raw -metrics JSON snapshot (the array the registry's
// WriteJSON emits), which loads as a single pseudo-configuration named
// "snapshot" so bench runs and ad-hoc metric dumps diff uniformly.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, "[") {
		return loadRawSnapshot(path, data)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("bench: %s: schema %d, this build reads %d (regenerate with `gopim bench`)",
			path, f.Schema, Schema)
	}
	return &f, nil
}

// loadRawSnapshot converts a registry WriteJSON array into File form.
func loadRawSnapshot(path string, data []byte) (*File, error) {
	var raw []struct {
		Name   string            `json:"name"`
		Clock  string            `json:"clock"`
		Kind   string            `json:"kind"`
		Values map[string]string `json:"values"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	var metrics []MetricValue
	for _, m := range raw {
		fields := make([]string, 0, len(m.Values))
		for k := range m.Values {
			fields = append(fields, k)
		}
		sort.Strings(fields)
		for _, k := range fields {
			metrics = append(metrics, MetricValue{
				Name: m.Name, Clock: m.Clock, Kind: m.Kind,
				Field: k, Value: m.Values[k],
			})
		}
	}
	return &File{
		Schema: Schema,
		Label:  path,
		Configs: []ConfigResult{{
			Name: "snapshot", SimStable: true, SimMetrics: metrics,
		}},
	}, nil
}
