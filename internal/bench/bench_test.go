package bench

import (
	"path/filepath"
	"testing"

	"gopim/internal/accel"
	"gopim/internal/obs"
)

// tinyConfig is the cheapest meaningful suite: one experiment, one
// dataset, two models, two worker counts.
func tinyConfig(label string) Config {
	return Config{
		Label: label, Seed: 7, Fast: true,
		Warmup: 1, Repeats: 2,
		Workers:     []int{1, 2},
		Experiments: []string{"fig5"},
		Datasets:    []string{"ddi"},
		Models:      []accel.Kind{accel.Serial, accel.GoPIM},
	}
}

// resetObs restores the global state Run mutates.
func resetObs(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		obs.SetEnabled(false)
		obs.Default().Reset()
	})
}

// The harness's core promise: two runs of the same suite produce
// config-by-config identical Sim metrics, and within one run the same
// workload group is identical at every worker count.
func TestRunSimMetricsDeterministic(t *testing.T) {
	resetObs(t)
	a, err := Run(tinyConfig("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyConfig("b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Configs) != 4 {
		t.Fatalf("got %d configs, want 4: %+v", len(a.Configs), a.Configs)
	}
	for i := range a.Configs {
		ca, cb := a.Configs[i], b.Configs[i]
		if ca.Name != cb.Name {
			t.Fatalf("config order differs: %q vs %q", ca.Name, cb.Name)
		}
		if !ca.SimStable || !cb.SimStable {
			t.Errorf("%s: Sim snapshot unstable across repeats", ca.Name)
		}
		if len(ca.SimMetrics) == 0 {
			t.Errorf("%s: empty Sim snapshot", ca.Name)
		}
		if !sameMetrics(ca.SimMetrics, cb.SimMetrics) {
			t.Errorf("%s: Sim metrics differ between identical runs", ca.Name)
		}
	}
	// Same group at different worker counts: identical values (the
	// registry-wide determinism contract, seen through the bench lens).
	byName := map[string]ConfigResult{}
	for _, c := range a.Configs {
		byName[c.Name] = c
	}
	if !sameMetrics(byName["sim-matrix/w1"].SimMetrics, byName["sim-matrix/w2"].SimMetrics) {
		t.Error("sim-matrix Sim metrics differ between 1 and 2 workers")
	}
	if !sameMetrics(byName["experiments/w1"].SimMetrics, byName["experiments/w2"].SimMetrics) {
		t.Error("experiments Sim metrics differ between 1 and 2 workers")
	}
}

func TestRunRejectsUnknownWorkloads(t *testing.T) {
	resetObs(t)
	cfg := tinyConfig("x")
	cfg.Experiments = []string{"no-such-experiment"}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown experiment id accepted")
	}
	cfg = tinyConfig("x")
	cfg.Datasets = []string{"no-such-dataset"}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	resetObs(t)
	f, err := Run(tinyConfig("roundtrip"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), FileName(f.Label))
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Label != "roundtrip" {
		t.Fatalf("loaded schema/label = %d/%q", got.Schema, got.Label)
	}
	if got.Manifest == nil || got.Manifest.Format != "bench" {
		t.Fatal("manifest not round-tripped")
	}
	if len(got.Configs) != len(f.Configs) {
		t.Fatalf("configs %d != %d", len(got.Configs), len(f.Configs))
	}
	for i := range f.Configs {
		if !sameMetrics(got.Configs[i].SimMetrics, f.Configs[i].SimMetrics) {
			t.Errorf("%s: metrics changed over the round trip", f.Configs[i].Name)
		}
	}
}

func TestLoadRejectsFutureSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_future.json")
	if err := (&File{Schema: Schema + 1, Label: "future"}).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// WriteFile doesn't validate (it writes what Run built); Load must.
	if _, err := Load(path); err == nil {
		t.Error("future schema accepted")
	}
}

func TestFileName(t *testing.T) {
	for in, want := range map[string]string{
		"a":       "BENCH_a.json",
		"v1.2_rc": "BENCH_v1.2_rc.json",
		"../evil": "BENCH_..-evil.json",
		"sp ace":  "BENCH_sp-ace.json",
		"":        "BENCH_local.json",
	} {
		if got := FileName(in); got != want {
			t.Errorf("FileName(%q) = %q, want %q", in, got, want)
		}
	}
}
