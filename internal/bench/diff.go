package bench

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"gopim/internal/experiments"
)

// Class is a metric-level diff verdict.
type Class string

// Diff classifications.
const (
	Improved  Class = "improved"
	Regressed Class = "regressed"
	Unchanged Class = "unchanged"
	Added     Class = "added"
	Removed   Class = "removed"
)

// Direction says which way a metric should move to count as progress.
type Direction int

// Metric directions. Neutral metrics describe work shape (run counts,
// bucket populations): on the deterministic Sim clock they must not
// move at all for a fixed suite and seed, so any drift classifies as
// regressed and the baseline must be refreshed deliberately.
const (
	Neutral Direction = iota
	LowerIsBetter
	HigherIsBetter
)

// lowerBetter and higherBetter are name fragments the direction
// heuristic recognises; everything else is Neutral.
var (
	lowerBetter = []string{"makespan", "energy", "idle", "latency", "busy",
		"_ns", "_pj", "rows_rewritten", "update_frac", "wall_ms", "wear", "denied",
		"alloc", "gc_count"}
	higherBetter = []string{"hits", "speedup", "throughput"}
)

// directionOf classifies one metric field. Count and bucket fields are
// always Neutral: "how many makespans were observed" growing is a
// workload change, not a faster simulator.
func directionOf(name, field string) Direction {
	if field == "count" || strings.HasPrefix(field, "lt_2e") {
		return Neutral
	}
	for _, frag := range lowerBetter {
		if strings.Contains(name, frag) {
			return LowerIsBetter
		}
	}
	for _, frag := range higherBetter {
		if strings.Contains(name, frag) {
			return HigherIsBetter
		}
	}
	return Neutral
}

// Thresholds are relative-change tolerances per clock. Sim metrics are
// deterministic, so the strict default is 0 (any drift classifies);
// wall stats are noisy and report-only regardless.
type Thresholds struct {
	Sim  float64
	Wall float64
}

// MetricDiff is one compared value.
type MetricDiff struct {
	Config string
	Key    string // "metric.name field"
	Old    string
	New    string
	// RelDelta is (new-old)/|old|; NaN when either side is non-numeric,
	// ±Inf when old is zero and new is not.
	RelDelta float64
	Class    Class
	// Strict diffs gate the exit status; wall-clock stats are not
	// strict.
	Strict bool
}

// Report is a full two-file comparison.
type Report struct {
	OldLabel string
	NewLabel string
	// Notes records apples-to-oranges warnings (suite mismatches,
	// unstable snapshots).
	Notes []string
	Diffs []MetricDiff
}

// classify compares two rendered values under a direction and relative
// threshold.
func classify(oldV, newV string, dir Direction, rel float64) (Class, float64) {
	if oldV == newV {
		return Unchanged, 0
	}
	of, errO := strconv.ParseFloat(oldV, 64)
	nf, errN := strconv.ParseFloat(newV, 64)
	if errO != nil || errN != nil {
		// Non-numeric and unequal: there is no magnitude to tolerate.
		return Regressed, math.NaN()
	}
	var delta float64
	switch {
	case of == nf:
		return Unchanged, 0
	case of == 0:
		delta = math.Inf(1)
		if nf < 0 {
			delta = math.Inf(-1)
		}
	default:
		delta = (nf - of) / math.Abs(of)
	}
	if math.Abs(delta) <= rel {
		return Unchanged, delta
	}
	switch dir {
	case LowerIsBetter:
		if nf < of {
			return Improved, delta
		}
	case HigherIsBetter:
		if nf > of {
			return Improved, delta
		}
	}
	return Regressed, delta
}

// metricKey joins a metric name and field into the diff key.
func metricKey(name, field string) string { return name + " " + field }

// diffConfig compares one matched configuration pair.
func diffConfig(name string, old, new ConfigResult, th Thresholds) []MetricDiff {
	var out []MetricDiff
	// Wall stats and allocation counts: report-only, always diffed so
	// perf trends stay visible even though they never fail a build.
	for _, w := range []struct {
		field    string
		old, new float64
	}{
		{"min_ms", old.WallMS.MinMS, new.WallMS.MinMS},
		{"median_ms", old.WallMS.MedianMS, new.WallMS.MedianMS},
		{"max_ms", old.WallMS.MaxMS, new.WallMS.MaxMS},
		{"alloc_objs", old.AllocObjs, new.AllocObjs},
		{"alloc_mb", old.AllocMB, new.AllocMB},
	} {
		if old.Name == "snapshot" || new.Name == "snapshot" {
			break // raw snapshots carry no wall stats
		}
		cls, delta := classify(
			strconv.FormatFloat(w.old, 'g', -1, 64),
			strconv.FormatFloat(w.new, 'g', -1, 64),
			LowerIsBetter, th.Wall)
		out = append(out, MetricDiff{
			Config: name, Key: metricKey("wall", w.field),
			Old: fmt.Sprintf("%.2f", w.old), New: fmt.Sprintf("%.2f", w.new),
			RelDelta: delta, Class: cls, Strict: false,
		})
	}

	oldByKey := map[string]MetricValue{}
	for _, m := range old.SimMetrics {
		oldByKey[metricKey(m.Name, m.Field)] = m
	}
	newByKey := map[string]MetricValue{}
	for _, m := range new.SimMetrics {
		newByKey[metricKey(m.Name, m.Field)] = m
	}
	keys := make([]string, 0, len(oldByKey)+len(newByKey))
	for k := range oldByKey {
		keys = append(keys, k)
	}
	for k := range newByKey {
		if _, dup := oldByKey[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		o, haveOld := oldByKey[k]
		n, haveNew := newByKey[k]
		strict := (haveOld && o.Clock == "sim") || (haveNew && n.Clock == "sim")
		rel := th.Sim
		if !strict {
			rel = th.Wall
		}
		d := MetricDiff{Config: name, Key: k, Strict: strict}
		switch {
		case !haveOld:
			d.Class, d.Old, d.New, d.RelDelta = Added, "", n.Value, math.NaN()
		case !haveNew:
			d.Class, d.Old, d.New, d.RelDelta = Removed, o.Value, "", math.NaN()
		default:
			d.Old, d.New = o.Value, n.Value
			d.Class, d.RelDelta = classify(o.Value, n.Value,
				directionOf(o.Name, o.Field), rel)
		}
		out = append(out, d)
	}
	return out
}

// Diff compares two loaded files configuration by configuration.
func Diff(old, new *File, th Thresholds) *Report {
	r := &Report{OldLabel: old.Label, NewLabel: new.Label}
	if !sameSuite(old.Suite, new.Suite) {
		r.Notes = append(r.Notes,
			"suites differ (seed/workloads) — value diffs compare different work")
	}
	oldCfg := map[string]ConfigResult{}
	for _, c := range old.Configs {
		oldCfg[c.Name] = c
	}
	newCfg := map[string]ConfigResult{}
	for _, c := range new.Configs {
		newCfg[c.Name] = c
	}
	names := make([]string, 0, len(oldCfg)+len(newCfg))
	for n := range oldCfg {
		names = append(names, n)
	}
	for n := range newCfg {
		if _, dup := oldCfg[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, haveOld := oldCfg[name]
		n, haveNew := newCfg[name]
		switch {
		case !haveOld:
			r.Notes = append(r.Notes, fmt.Sprintf("config %q only in %s", name, new.Label))
			for _, m := range n.SimMetrics {
				r.Diffs = append(r.Diffs, MetricDiff{
					Config: name, Key: metricKey(m.Name, m.Field),
					New: m.Value, RelDelta: math.NaN(),
					Class: Added, Strict: m.Clock == "sim",
				})
			}
		case !haveNew:
			r.Notes = append(r.Notes, fmt.Sprintf("config %q only in %s", name, old.Label))
			for _, m := range o.SimMetrics {
				r.Diffs = append(r.Diffs, MetricDiff{
					Config: name, Key: metricKey(m.Name, m.Field),
					Old: m.Value, RelDelta: math.NaN(),
					Class: Removed, Strict: m.Clock == "sim",
				})
			}
		default:
			if !o.SimStable || !n.SimStable {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"config %q: Sim snapshot was unstable across repeats", name))
			}
			r.Diffs = append(r.Diffs, diffConfig(name, o, n, th)...)
		}
	}
	return r
}

func sameSuite(a, b Suite) bool {
	eq := func(x, y []string) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return a.Seed == b.Seed && a.Fast == b.Fast &&
		eq(a.Experiments, b.Experiments) && eq(a.Datasets, b.Datasets) &&
		eq(a.Models, b.Models)
}

// Count returns how many diffs carry the class (strictOnly limits the
// count to strict metrics).
func (r *Report) Count(c Class, strictOnly bool) int {
	n := 0
	for _, d := range r.Diffs {
		if d.Class == c && (!strictOnly || d.Strict) {
			n++
		}
	}
	return n
}

// Regressions counts strict (sim-clock) regressions — the number the
// CLI turns into a nonzero exit.
func (r *Report) Regressions() int { return r.Count(Regressed, true) }

// Summary is the one-line verdict printed under the table.
func (r *Report) Summary() string {
	return fmt.Sprintf(
		"diff %s -> %s: %d compared; %d unchanged, %d improved, %d regressed (%d strict), %d added, %d removed",
		r.OldLabel, r.NewLabel, len(r.Diffs),
		r.Count(Unchanged, false), r.Count(Improved, false),
		r.Count(Regressed, false), r.Regressions(),
		r.Count(Added, false), r.Count(Removed, false))
}

// fmtDelta renders a relative change for the report table.
func fmtDelta(d float64) string {
	switch {
	case math.IsNaN(d):
		return ""
	case math.IsInf(d, 1):
		return "+inf"
	case math.IsInf(d, -1):
		return "-inf"
	case d == 0:
		return "0%"
	}
	return fmt.Sprintf("%+.2f%%", d*100)
}

// Result renders the report as a table (reusing the experiment
// renderers, so -format text/csv/markdown all work). Unchanged rows
// are elided unless showUnchanged is set — a healthy diff of a full
// suite would otherwise print hundreds of identical lines.
func (r *Report) Result(showUnchanged bool) *experiments.Result {
	res := &experiments.Result{
		ID:     "diff",
		Title:  fmt.Sprintf("%s -> %s", r.OldLabel, r.NewLabel),
		Header: []string{"config", "metric", "old", "new", "delta", "class", "gates"},
		Notes:  append([]string(nil), r.Notes...),
	}
	elided := 0
	for _, d := range r.Diffs {
		if d.Class == Unchanged && !showUnchanged {
			elided++
			continue
		}
		gates := "report-only"
		if d.Strict {
			gates = "strict"
		}
		res.Rows = append(res.Rows, []string{
			d.Config, d.Key, d.Old, d.New, fmtDelta(d.RelDelta), string(d.Class), gates,
		})
	}
	if elided > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("%d unchanged metrics elided", elided))
	}
	return res
}
