package bench

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gopim/internal/obs"
)

// twoFiles builds a matched old/new pair with one config each.
func twoFiles(oldMetrics, newMetrics []MetricValue) (*File, *File) {
	mk := func(label string, ms []MetricValue) *File {
		return &File{
			Schema: Schema, Label: label,
			Configs: []ConfigResult{{
				Name: "sim-matrix/w1", Workers: 1, SimStable: true,
				WallMS:     Stats{MinMS: 10, MedianMS: 11, MaxMS: 12},
				SimMetrics: ms,
			}},
		}
	}
	return mk("old", oldMetrics), mk("new", newMetrics)
}

func sim(name, field, value string) MetricValue {
	return MetricValue{Name: name, Clock: "sim", Kind: "distribution", Field: field, Value: value}
}

func findDiff(t *testing.T, r *Report, key string) MetricDiff {
	t.Helper()
	for _, d := range r.Diffs {
		if d.Key == key {
			return d
		}
	}
	t.Fatalf("no diff for key %q in %+v", key, r.Diffs)
	return MetricDiff{}
}

func TestDiffClassification(t *testing.T) {
	old, new := twoFiles(
		[]MetricValue{
			sim("accel.makespan_ns{dataset=ddi,model=GoPIM}", "max", "1000"),
			sim("accel.makespan_ns{dataset=ddi,model=GoPIM}", "count", "2"),
			sim("accel.energy_pj", "max", "500"),
			sim("experiments.predictor_cache_hits", "count", "4"),
			sim("gone.metric", "count", "1"),
		},
		[]MetricValue{
			sim("accel.makespan_ns{dataset=ddi,model=GoPIM}", "max", "1500"), // slower
			sim("accel.makespan_ns{dataset=ddi,model=GoPIM}", "count", "3"),  // drifted count
			sim("accel.energy_pj", "max", "400"),                             // less energy
			sim("experiments.predictor_cache_hits", "count", "8"),            // more hits
			sim("fresh.metric", "count", "1"),
		},
	)
	r := Diff(old, new, Thresholds{})
	for key, want := range map[string]Class{
		"accel.makespan_ns{dataset=ddi,model=GoPIM} max":   Regressed, // lower-is-better went up
		"accel.makespan_ns{dataset=ddi,model=GoPIM} count": Regressed, // neutral drifted
		"accel.energy_pj max":                              Improved,  // lower-is-better went down
		"experiments.predictor_cache_hits count":           Regressed, // count fields are neutral even for "hits"
		"gone.metric count":                                Removed,
		"fresh.metric count":                               Added,
	} {
		if got := findDiff(t, r, key).Class; got != want {
			t.Errorf("%s: class %s, want %s", key, got, want)
		}
	}
	if !findDiff(t, r, "accel.makespan_ns{dataset=ddi,model=GoPIM} max").Strict {
		t.Error("sim metric not strict")
	}
	if r.Regressions() == 0 {
		t.Error("no strict regressions counted")
	}
	// The 50% slowdown must carry its magnitude.
	if d := findDiff(t, r, "accel.makespan_ns{dataset=ddi,model=GoPIM} max").RelDelta; math.Abs(d-0.5) > 1e-12 {
		t.Errorf("slowdown RelDelta = %v, want 0.5", d)
	}
}

func TestDiffIdenticalFilesUnchanged(t *testing.T) {
	ms := []MetricValue{
		sim("accel.makespan_ns", "max", "279918.9689221488"),
		sim("pipeline.simulations", "count", "12"),
	}
	old, new := twoFiles(ms, append([]MetricValue(nil), ms...))
	r := Diff(old, new, Thresholds{})
	if got := r.Regressions(); got != 0 {
		t.Fatalf("identical files: %d regressions", got)
	}
	for _, d := range r.Diffs {
		if d.Strict && d.Class != Unchanged {
			t.Errorf("%s: %s, want unchanged", d.Key, d.Class)
		}
	}
}

func TestDiffThresholdMasksSmallChanges(t *testing.T) {
	old, new := twoFiles(
		[]MetricValue{sim("accel.makespan_ns", "max", "1000")},
		[]MetricValue{sim("accel.makespan_ns", "max", "1040")},
	)
	if r := Diff(old, new, Thresholds{Sim: 0.05}); r.Regressions() != 0 {
		t.Error("4% change not masked by 5% threshold")
	}
	if r := Diff(old, new, Thresholds{Sim: 0.01}); r.Regressions() != 1 {
		t.Error("4% change not caught by 1% threshold")
	}
}

// Wall stats diff but never gate: a machine twice as slow must still
// exit zero.
func TestDiffWallStatsReportOnly(t *testing.T) {
	old, new := twoFiles(nil, nil)
	new.Configs[0].WallMS = Stats{MinMS: 100, MedianMS: 110, MaxMS: 120}
	r := Diff(old, new, Thresholds{Wall: 0.25})
	if r.Regressions() != 0 {
		t.Fatal("wall slowdown counted as strict regression")
	}
	if d := findDiff(t, r, "wall median_ms"); d.Class != Regressed || d.Strict {
		t.Errorf("wall median diff = %+v, want report-only regressed", d)
	}
}

func TestDiffConfigMismatchReported(t *testing.T) {
	old, new := twoFiles(
		[]MetricValue{sim("m", "count", "1")},
		[]MetricValue{sim("m", "count", "1")},
	)
	new.Configs = append(new.Configs, ConfigResult{
		Name: "experiments/w8", SimStable: true,
		SimMetrics: []MetricValue{sim("m2", "count", "5")},
	})
	r := Diff(old, new, Thresholds{})
	if got := findDiff(t, r, "m2 count").Class; got != Added {
		t.Errorf("new-config metric class = %s, want added", got)
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "experiments/w8") {
			found = true
		}
	}
	if !found {
		t.Errorf("config mismatch not noted: %v", r.Notes)
	}
}

// A raw -metrics JSON snapshot (the registry WriteJSON array) must load
// and diff against another snapshot.
func TestDiffRawSnapshots(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, observe float64) string {
		r := obs.NewRegistry()
		r.NewCounter("raw.counter", obs.Sim, "").Add(3)
		r.NewDistribution("raw.makespan_ns", obs.Sim, "").Observe(observe)
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf, obs.Sim); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("m1.json", 100)
	newPath := write("m2.json", 150)
	oldF, err := Load(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newF, err := Load(newPath)
	if err != nil {
		t.Fatal(err)
	}
	r := Diff(oldF, newF, Thresholds{})
	if got := findDiff(t, r, "raw.makespan_ns max").Class; got != Regressed {
		t.Errorf("raw snapshot slowdown = %s, want regressed", got)
	}
	if got := findDiff(t, r, "raw.counter count").Class; got != Unchanged {
		t.Errorf("raw counter = %s, want unchanged", got)
	}
	if r.Regressions() == 0 {
		t.Error("raw sim regression not strict")
	}
}

func TestReportResultRendersAllFormats(t *testing.T) {
	old, new := twoFiles(
		[]MetricValue{sim("accel.makespan_ns", "max", "1000")},
		[]MetricValue{sim("accel.makespan_ns", "max", "2000")},
	)
	r := Diff(old, new, Thresholds{})
	res := r.Result(false)
	for _, render := range []func() error{
		func() error { var b bytes.Buffer; return res.Render(&b) },
		func() error { var b bytes.Buffer; return res.RenderCSV(&b) },
		func() error { var b bytes.Buffer; return res.RenderMarkdown(&b) },
	} {
		if err := render(); err != nil {
			t.Fatal(err)
		}
	}
	var b bytes.Buffer
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "regressed") {
		t.Errorf("rendered diff missing regression row:\n%s", b.String())
	}
	if !strings.Contains(r.Summary(), "1 regressed (1 strict)") {
		t.Errorf("summary = %q", r.Summary())
	}
}
