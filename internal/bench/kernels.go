package bench

import (
	"fmt"

	"gopim/internal/graphgen"
	"gopim/internal/sparsemat"
	"gopim/internal/spmm"
	"gopim/internal/tensor"
)

// KernelsSuite is the Config.Suite value selecting the SpMM strategy
// micro-suite: every strategy of the autotuner's zoo against every
// configured dataset's normalised adjacency, one group per strategy, so
// `gopim bench -suite kernels` answers "which kernel wins on which
// graph at which worker count" with the same warmup/repeat/Sim-snapshot
// machinery as the regression suite. The selector thresholds in
// internal/spmm are calibrated against this suite's wall columns.
const KernelsSuite = "kernels"

// kernelDenseCols is the dense operand width of the micro-suite — the
// hidden width the accuracy experiments aggregate at.
const kernelDenseCols = 64

// kernelStrategies is the suite's group list: the forced strategies
// plus auto (whatever Select picks per graph).
var kernelStrategies = []spmm.Strategy{
	spmm.Row, spmm.Blocked, spmm.Bucketed, spmm.Edge, spmm.Auto,
}

// kernelCase is one dataset's prepared SpMM operands, shared across
// the suite's strategy groups (the product is recomputed, never the
// setup).
type kernelCase struct {
	graph string // choice key, same shape as gcn's ("ddi/v1200")
	adj   *sparsemat.CSR
	in    *tensor.Matrix
	out   *tensor.Matrix
}

// kernelGroups builds the micro-suite: synthesize each dataset once,
// then one benchGroup per strategy multiplying every graph. Each body
// routes its resolved choice through spmm.Record, so the suite's Sim
// snapshots carry the per-strategy choice counters and the per-graph
// labelled series `bench -attrib` reads.
func kernelGroups(datasets []graphgen.Dataset, seed int64, fast bool) []benchGroup {
	maxV := 4000
	if fast {
		maxV = 1200
	}
	cases := make([]kernelCase, len(datasets))
	for i, d := range datasets {
		inst := d.Synthesize(seed+int64(len(d.Name)), maxV)
		adj := inst.Graph.NormAdj()
		in := tensor.New(adj.Cols, kernelDenseCols)
		for j := range in.Data {
			in.Data[j] = float64(j%97) / 97
		}
		cases[i] = kernelCase{
			graph: fmt.Sprintf("%s/v%d", d.Name, adj.Rows),
			adj:   adj,
			in:    in,
			out:   tensor.New(adj.Rows, kernelDenseCols),
		}
	}
	groups := make([]benchGroup, 0, len(kernelStrategies))
	for _, s := range kernelStrategies {
		s := s
		groups = append(groups, benchGroup{
			name: "kernels-" + s.String(),
			body: func() error {
				for _, c := range cases {
					st := s
					if st == spmm.Auto {
						st = spmm.For(c.adj)
					}
					spmm.MulInto(st, c.adj, c.out, c.in)
					spmm.Record(c.graph, st)
				}
				return nil
			},
		})
	}
	return groups
}
