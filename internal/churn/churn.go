// Package churn is a deterministic, seed-driven streaming-graph
// mutation engine: power-law-preserving edge insert/delete streams
// (and optional vertex arrivals), batched into epochs, that the accel
// layer threads through mapping, ISU refresh, endurance wear-out and
// replica allocation as a robustness loop (ROADMAP item 3).
//
// Determinism contract: every random quantity derives from a
// splitmix64 stream keyed by (Seed, epoch) — the internal/fault
// pattern — never by worker count or call order, so a churn-enabled
// run is byte-identical at any worker count. Epoch e's mutations
// depend on the degree state epoch e−1 left behind, so streams are
// consumed in epoch order by a single driver loop.
//
// Power-law preservation: insert endpoints are sampled proportional
// to degree+1 (preferential attachment — the generative process behind
// the catalog's Chung-Lu tails, +1 so isolated vertices can rejoin)
// and delete endpoints proportional to degree (a uniformly random
// edge's endpoint is degree-biased), so sustained churn redistributes
// mass without flattening the tail.
package churn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gopim/internal/graphgen"
	"gopim/internal/obs"
)

// Policy selects how the ISU update plan reacts to degree drift.
type Policy string

const (
	// Eager recomputes the plan every epoch — maximum fidelity,
	// maximum planning work.
	Eager Policy = "eager"
	// Threshold recomputes only once the drifted-vertex fraction since
	// the last refresh reaches DriftThreshold.
	Threshold Policy = "threshold"
	// Adaptive is Threshold plus a θ re-derived from the current
	// average degree at each refresh (mapping.AdaptiveTheta), so the
	// important-set size tracks densification and sparsification.
	Adaptive Policy = "adaptive"
)

// DefaultPolicy is the refresh policy when none is configured.
const DefaultPolicy = Threshold

// DefaultDriftThreshold is the drifted-vertex fraction that triggers a
// plan refresh under the threshold/adaptive policies.
const DefaultDriftThreshold = 0.1

// ParsePolicy maps a flag string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case Eager, Threshold, Adaptive:
		return Policy(s), nil
	case "":
		return DefaultPolicy, nil
	}
	return "", fmt.Errorf("churn: unknown refresh policy %q (want eager, threshold or adaptive)", s)
}

// Config describes one churn scenario.
type Config struct {
	// Rate is the per-epoch edge mutation intensity: round(Rate × E)
	// insert/delete operations are drawn each epoch, where E is the
	// epoch-start edge count. 0 disables edge churn.
	Rate float64
	// VertexRate, when positive, grows the graph: round(VertexRate × N)
	// new vertices arrive each epoch, each wired to ~avg-degree
	// neighbours. Vertex arrivals resize the degree sequence, forcing
	// the mapping layer's full-remap path.
	VertexRate float64
	// Seed drives every mutation stream.
	Seed int64
	// Policy is the ISU refresh policy (default Threshold).
	Policy Policy
	// DriftThreshold overrides DefaultDriftThreshold for the
	// threshold/adaptive policies.
	DriftThreshold float64
	// DaysPerEpoch scales the endurance coupling: each churn epoch
	// represents this many days of the array's production write
	// traffic when accumulating wear (default 1).
	DaysPerEpoch float64
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case math.IsNaN(c.Rate) || c.Rate < 0 || c.Rate > 1:
		return fmt.Errorf("churn: rate %v must be in [0,1]", c.Rate)
	case math.IsNaN(c.VertexRate) || c.VertexRate < 0 || c.VertexRate > 1:
		return fmt.Errorf("churn: vertex rate %v must be in [0,1]", c.VertexRate)
	case math.IsNaN(c.DriftThreshold) || c.DriftThreshold < 0 || c.DriftThreshold > 1:
		return fmt.Errorf("churn: drift threshold %v must be in [0,1]", c.DriftThreshold)
	case math.IsNaN(c.DaysPerEpoch) || math.IsInf(c.DaysPerEpoch, 0) || c.DaysPerEpoch < 0:
		return fmt.Errorf("churn: days/epoch %v must be finite and non-negative", c.DaysPerEpoch)
	}
	if c.Policy != "" {
		if _, err := ParsePolicy(string(c.Policy)); err != nil {
			return err
		}
	}
	return nil
}

// WithDefaults fills the zero-value knobs.
func (c Config) WithDefaults() Config {
	if c.Policy == "" {
		c.Policy = DefaultPolicy
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = DefaultDriftThreshold
	}
	if c.DaysPerEpoch == 0 {
		c.DaysPerEpoch = 1
	}
	return c
}

// Enabled reports whether the configuration mutates anything.
func (c Config) Enabled() bool { return c.Rate > 0 || c.VertexRate > 0 }

// ShouldRefresh decides whether the ISU plan is recomputed given the
// drifted-vertex fraction accumulated since the last refresh.
func (c Config) ShouldRefresh(drift float64) bool {
	switch c.Policy {
	case Eager:
		return true
	default: // Threshold, Adaptive and the zero value
		th := c.DriftThreshold
		if th == 0 {
			th = DefaultDriftThreshold
		}
		return drift >= th
	}
}

// Delta summarises one epoch's mutations.
type Delta struct {
	EdgesAdded    int
	EdgesRemoved  int
	VerticesAdded int
	// Changed lists the vertex ids whose degree differs from the epoch
	// start, ascending and unique (newly arrived vertices included).
	Changed []int
}

// Stream draws per-epoch mutation deltas over a degree sequence — the
// model-level view accel's timing loop runs on, where a vertex's
// degree is the quantity of interest and edges are implicit.
type Stream struct {
	cfg Config
}

// NewStream validates the configuration and builds a stream.
func NewStream(cfg Config) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Stream{cfg: cfg.WithDefaults()}, nil
}

// MustNewStream is NewStream for configurations known valid.
func MustNewStream(cfg Config) *Stream {
	s, err := NewStream(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the defaulted configuration.
func (s *Stream) Config() Config { return s.cfg }

// Mutate applies epoch e's mutation batch to the degree sequence and
// returns the (possibly grown) sequence plus the delta. The input
// slice is mutated in place up to its original length; endpoint
// weights are fixed at epoch start, so one epoch's draws are
// order-free within the batch.
func (s *Stream) Mutate(degs []float64, epoch int) ([]float64, Delta) {
	var d Delta
	if !s.cfg.Enabled() || len(degs) == 0 {
		return degs, d
	}
	rng := rand.New(rand.NewSource(streamSeed(s.cfg.Seed, tagEpoch, int64(epoch))))
	n0 := len(degs)
	orig := append([]float64(nil), degs...)
	insert := newPicker(degs, 1) // degree+1 weighted
	remove := newPicker(degs, 0) // degree weighted

	var totalDeg float64
	for _, g := range degs {
		totalDeg += g
	}
	ops := int(math.Round(s.cfg.Rate * totalDeg / 2))
	for op := 0; op < ops; op++ {
		if rng.Float64() < 0.5 {
			u, v := insert.pick(rng), insert.pick(rng)
			if u == v {
				continue
			}
			degs[u]++
			degs[v]++
			d.EdgesAdded++
		} else {
			u, v := remove.pick(rng), remove.pick(rng)
			if u < 0 || v < 0 || u == v || degs[u] < 1 || degs[v] < 1 {
				continue
			}
			degs[u]--
			degs[v]--
			d.EdgesRemoved++
		}
	}

	// Vertex arrivals: each newcomer attaches ~avg-degree edges to
	// degree-weighted targets among the epoch-start population.
	if newV := int(math.Round(s.cfg.VertexRate * float64(n0))); newV > 0 {
		attach := int(math.Round(totalDeg / float64(n0)))
		if attach < 1 {
			attach = 1
		}
		for i := 0; i < newV; i++ {
			degs = append(degs, 0)
			vid := len(degs) - 1
			for j := 0; j < attach; j++ {
				u := insert.pick(rng)
				degs[u]++
				degs[vid]++
				d.EdgesAdded++
			}
			d.VerticesAdded++
		}
	}

	for v := 0; v < n0; v++ {
		if degs[v] != orig[v] {
			d.Changed = append(d.Changed, v)
		}
	}
	for v := n0; v < len(degs); v++ {
		d.Changed = append(d.Changed, v)
	}
	return degs, d
}

// GraphState threads churn through an explicit edge set — the view the
// accuracy experiments need, where mutated adjacency feeds real GCN
// training. Mutations follow the same per-epoch streams as Stream but
// operate on concrete edges (tagGraph, so the two views never share a
// stream).
type GraphState struct {
	n       int
	edges   [][2]int // canonical u < v, insertion order
	present map[[2]int]bool
	degs    []int
}

// NewGraphState snapshots a graph's edge set. Edge order is the
// deterministic (u, v)-ascending adjacency walk.
func NewGraphState(g *graphgen.Graph) *GraphState {
	gs := &GraphState{n: g.N, present: map[[2]int]bool{}, degs: append([]int(nil), g.Degrees()...)}
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				gs.edges = append(gs.edges, [2]int{u, v})
				gs.present[[2]int{u, v}] = true
			}
		}
	}
	return gs
}

// Edges returns the current undirected edge count.
func (gs *GraphState) Edges() int { return len(gs.edges) }

// Degrees returns the current degree sequence as float64 (the mapping
// layer's currency). Freshly allocated each call.
func (gs *GraphState) Degrees() []float64 {
	out := make([]float64, len(gs.degs))
	for i, d := range gs.degs {
		out[i] = float64(d)
	}
	return out
}

// Graph materialises the current edge set as a graphgen.Graph.
func (gs *GraphState) Graph() *graphgen.Graph {
	return graphgen.FromEdges(gs.n, gs.edges)
}

// insertRetries bounds the rejection sampling for an insert endpoint
// pair that is neither a self-loop nor an existing edge.
const insertRetries = 8

// Mutate applies epoch e's mutation batch to the edge set (vertex
// count is fixed: accuracy runs carry per-vertex features and labels,
// so arrivals make no sense there).
func (gs *GraphState) Mutate(cfg Config, epoch int) Delta {
	var d Delta
	cfg = cfg.WithDefaults()
	if cfg.Rate <= 0 || gs.n < 2 {
		return d
	}
	rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, tagGraph, int64(epoch))))
	degF := gs.Degrees()
	insert := newPicker(degF, 1)
	orig := append([]int(nil), gs.degs...)
	ops := int(math.Round(cfg.Rate * float64(len(gs.edges))))
	for op := 0; op < ops; op++ {
		if rng.Float64() < 0.5 {
			for try := 0; try < insertRetries; try++ {
				u, v := insert.pick(rng), insert.pick(rng)
				if u == v {
					continue
				}
				if u > v {
					u, v = v, u
				}
				key := [2]int{u, v}
				if gs.present[key] {
					continue
				}
				gs.present[key] = true
				gs.edges = append(gs.edges, key)
				gs.degs[u]++
				gs.degs[v]++
				d.EdgesAdded++
				break
			}
		} else if len(gs.edges) > 0 {
			i := rng.Intn(len(gs.edges))
			e := gs.edges[i]
			gs.edges[i] = gs.edges[len(gs.edges)-1]
			gs.edges = gs.edges[:len(gs.edges)-1]
			delete(gs.present, e)
			gs.degs[e[0]]--
			gs.degs[e[1]]--
			d.EdgesRemoved++
		}
	}
	for v := 0; v < gs.n; v++ {
		if gs.degs[v] != orig[v] {
			d.Changed = append(d.Changed, v)
		}
	}
	sort.Ints(d.Changed)
	return d
}

// picker samples vertex ids proportional to degree+bias via a prefix
// sum frozen at construction (epoch-start weights).
type picker struct {
	prefix []float64 // cumulative weights
	total  float64
}

func newPicker(degs []float64, bias float64) *picker {
	p := &picker{prefix: make([]float64, len(degs))}
	sum := 0.0
	for i, g := range degs {
		w := g + bias
		if w < 0 {
			w = 0
		}
		sum += w
		p.prefix[i] = sum
	}
	p.total = sum
	return p
}

// pick returns a weighted vertex id, or -1 when all weights are zero.
func (p *picker) pick(rng *rand.Rand) int {
	if p.total <= 0 {
		return -1
	}
	x := rng.Float64() * p.total
	return sort.SearchFloat64s(p.prefix, x)
}

// Stream tags keep the degree-model and explicit-graph views on
// independent splitmix64 streams.
const (
	tagEpoch = 0x43484e45 // "CHNE"
	tagGraph = 0x43484e47 // "CHNG"
)

// streamSeed derives the seed of stream (base, key, i) with a
// splitmix64-style mix — the fault.streamSeed pattern. The stream
// depends only on its stable identity, never on worker count or
// query order.
func streamSeed(base, key, i int64) int64 {
	z := uint64(base) ^ uint64(key)*0x9e3779b97f4a7c15
	z += 0x9e3779b97f4a7c15 * uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Flag-fallback metric, Wall-side like fault.flags_invalid: whether a
// flag was mis-typed is a property of the invocation, not the
// simulated workload.
var mFlagsInvalid = obs.NewCounter("churn.flags_invalid", obs.Wall,
	"invalid -churn-*/-refresh-policy flag values replaced by safe defaults")

// FromFlags validates the CLI's churn flags before any experiment
// runs, routing invalid values through the obs warn path + counter and
// falling back to safe defaults — the GOPIM_WORKERS pattern: a typo
// degrades the run, it never kills it.
func FromFlags(rate float64, seed int64, policy string) Config {
	if math.IsNaN(rate) || rate < 0 || rate > 1 {
		mFlagsInvalid.Inc()
		obs.Warnf("churn", "ignoring invalid -churn-rate %v (want a fraction in [0,1]); churn disabled", rate)
		rate = 0
	}
	pol, err := ParsePolicy(policy)
	if err != nil {
		mFlagsInvalid.Inc()
		obs.Warnf("churn", "ignoring invalid -refresh-policy %q (want eager, threshold or adaptive); using %q", policy, DefaultPolicy)
		pol = DefaultPolicy
	}
	return Config{Rate: rate, Seed: seed, Policy: pol}.WithDefaults()
}
