package churn

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"gopim/internal/graphgen"
)

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"typical", Config{Rate: 0.05, Seed: 7, Policy: Adaptive}, true},
		{"rate-high", Config{Rate: 1.5}, false},
		{"rate-nan", Config{Rate: math.NaN()}, false},
		{"vertex-negative", Config{VertexRate: -0.1}, false},
		{"drift-high", Config{DriftThreshold: 2}, false},
		{"days-inf", Config{DaysPerEpoch: math.Inf(1)}, false},
		{"bad-policy", Config{Policy: "lazy"}, false},
	} {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy(""); err != nil || p != DefaultPolicy {
		t.Fatalf("empty policy: got %q, %v", p, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy must error")
	}
}

func TestShouldRefresh(t *testing.T) {
	if !(Config{Policy: Eager}).ShouldRefresh(0) {
		t.Fatal("eager must refresh at zero drift")
	}
	th := Config{Policy: Threshold, DriftThreshold: 0.2}
	if th.ShouldRefresh(0.1) || !th.ShouldRefresh(0.2) {
		t.Fatal("threshold policy must trip exactly at the threshold")
	}
	// Zero-value config gets the default threshold.
	if (Config{}).ShouldRefresh(DefaultDriftThreshold / 2) {
		t.Fatal("zero-value config must use the default threshold")
	}
}

func degSeq(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	degs := make([]float64, n)
	for i := range degs {
		degs[i] = float64(rng.Intn(20) + 1)
	}
	return degs
}

// TestStreamDeterministic: identical (config, epoch, input) must yield
// identical mutations — the worker-count-independence foundation.
func TestStreamDeterministic(t *testing.T) {
	cfg := Config{Rate: 0.05, VertexRate: 0.01, Seed: 42}
	a, b := degSeq(200, 1), degSeq(200, 1)
	sa, sb := MustNewStream(cfg), MustNewStream(cfg)
	for e := 0; e < 5; e++ {
		var da, db Delta
		a, da = sa.Mutate(a, e)
		b, db = sb.Mutate(b, e)
		if !reflect.DeepEqual(da, db) || !reflect.DeepEqual(a, b) {
			t.Fatalf("epoch %d diverged: %+v vs %+v", e, da, db)
		}
	}
	// A different seed must draw a different batch.
	c := degSeq(200, 1)
	c, dc := MustNewStream(Config{Rate: 0.05, VertexRate: 0.01, Seed: 43}).Mutate(c, 0)
	if reflect.DeepEqual(a[:200], c[:200]) && reflect.DeepEqual(dc, Delta{}) {
		t.Fatal("different seed produced no divergence")
	}
}

// TestStreamDeltaAccounting: the delta's edge counts must match the
// degree-mass movement and Changed must list exactly the moved ids.
func TestStreamDeltaAccounting(t *testing.T) {
	degs := degSeq(300, 2)
	before := append([]float64(nil), degs...)
	var massBefore float64
	for _, d := range degs {
		massBefore += d
	}
	s := MustNewStream(Config{Rate: 0.1, Seed: 9})
	degs, d := s.Mutate(degs, 0)
	if d.EdgesAdded == 0 && d.EdgesRemoved == 0 {
		t.Fatal("10% churn on 300 vertices mutated nothing")
	}
	var massAfter float64
	for _, g := range degs {
		massAfter += g
		if g < 0 {
			t.Fatal("negative degree after churn")
		}
	}
	if want := massBefore + 2*float64(d.EdgesAdded-d.EdgesRemoved); massAfter != want {
		t.Fatalf("degree mass %v, want %v (added %d removed %d)",
			massAfter, want, d.EdgesAdded, d.EdgesRemoved)
	}
	changed := map[int]bool{}
	last := -1
	for _, v := range d.Changed {
		if v <= last {
			t.Fatalf("Changed not ascending/unique: %v", d.Changed)
		}
		last = v
		changed[v] = true
	}
	for v := range before {
		if (degs[v] != before[v]) != changed[v] {
			t.Fatalf("vertex %d: moved=%v but changed=%v", v, degs[v] != before[v], changed[v])
		}
	}
}

// TestStreamVertexArrivals: VertexRate must grow the sequence and list
// newcomers as changed.
func TestStreamVertexArrivals(t *testing.T) {
	degs := degSeq(100, 3)
	s := MustNewStream(Config{VertexRate: 0.05, Seed: 4})
	degs, d := s.Mutate(degs, 0)
	if d.VerticesAdded != 5 || len(degs) != 105 {
		t.Fatalf("VerticesAdded = %d, len = %d, want 5 and 105", d.VerticesAdded, len(degs))
	}
	for v := 100; v < 105; v++ {
		if degs[v] < 1 {
			t.Fatalf("newcomer %d arrived isolated", v)
		}
	}
}

// TestStreamDisabled: a zero config must be a structural no-op.
func TestStreamDisabled(t *testing.T) {
	degs := degSeq(50, 5)
	before := append([]float64(nil), degs...)
	degs, d := MustNewStream(Config{}).Mutate(degs, 0)
	if !reflect.DeepEqual(degs, before) || !reflect.DeepEqual(d, Delta{}) {
		t.Fatalf("disabled stream mutated: %+v", d)
	}
}

// TestStreamPreservesSkew: sustained preferential churn must keep the
// degree distribution heavy-tailed (max well above mean), not flatten
// it toward uniform.
func TestStreamPreservesSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 500
	degs := make([]float64, n)
	for i := range degs {
		// Rough power-law start: a few hubs, many leaves.
		degs[i] = math.Floor(1 + 50/float64(1+rng.Intn(25)))
	}
	s := MustNewStream(Config{Rate: 0.05, Seed: 6})
	for e := 0; e < 40; e++ {
		degs, _ = s.Mutate(degs, e)
	}
	var sum, max float64
	for _, g := range degs {
		sum += g
		if g > max {
			max = g
		}
	}
	if mean := sum / float64(n); max < 4*mean {
		t.Fatalf("tail flattened: max %v < 4×mean %v", max, mean)
	}
}

func testGraph(t *testing.T) *graphgen.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	return graphgen.PowerLaw(rng, 200, 6, 2.1)
}

// TestGraphStateRoundTrip: snapshotting a graph and materialising it
// back unmutated must preserve edges and degrees.
func TestGraphStateRoundTrip(t *testing.T) {
	g := testGraph(t)
	gs := NewGraphState(g)
	if gs.Edges() != g.Edges() {
		t.Fatalf("edge count %d, want %d", gs.Edges(), g.Edges())
	}
	back := gs.Graph()
	if back.Edges() != g.Edges() || !reflect.DeepEqual(back.Degrees(), g.Degrees()) {
		t.Fatal("round trip changed the graph")
	}
}

// TestGraphStateMutateDeterministic: explicit-graph churn must be
// reproducible and keep the degree bookkeeping consistent with the
// materialised graph.
func TestGraphStateMutateDeterministic(t *testing.T) {
	cfg := Config{Rate: 0.1, Seed: 12}
	a, b := NewGraphState(testGraph(t)), NewGraphState(testGraph(t))
	for e := 0; e < 4; e++ {
		da, db := a.Mutate(cfg, e), b.Mutate(cfg, e)
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("epoch %d diverged: %+v vs %+v", e, da, db)
		}
		if da.EdgesAdded == 0 && da.EdgesRemoved == 0 {
			t.Fatalf("epoch %d mutated nothing", e)
		}
	}
	ga, gb := a.Graph(), b.Graph()
	if !reflect.DeepEqual(ga.Degrees(), gb.Degrees()) {
		t.Fatal("materialised graphs diverged")
	}
	if !reflect.DeepEqual(ga.Degrees(), degreesInt(a)) {
		t.Fatal("GraphState degree bookkeeping diverged from the edge set")
	}
}

func degreesInt(gs *GraphState) []int {
	return append([]int(nil), gs.degs...)
}

// TestFromFlagsFallbacks: invalid flag values must degrade to safe
// defaults, never abort.
func TestFromFlagsFallbacks(t *testing.T) {
	if cfg := FromFlags(7, 1, "eager"); cfg.Rate != 0 || cfg.Policy != Eager {
		t.Fatalf("out-of-range rate not disabled: %+v", cfg)
	}
	if cfg := FromFlags(math.NaN(), 1, ""); cfg.Rate != 0 || cfg.Policy != DefaultPolicy {
		t.Fatalf("NaN rate not disabled: %+v", cfg)
	}
	if cfg := FromFlags(0.05, 1, "bogus"); cfg.Rate != 0.05 || cfg.Policy != DefaultPolicy {
		t.Fatalf("bad policy not defaulted: %+v", cfg)
	}
	if cfg := FromFlags(0.05, 9, "adaptive"); cfg.Rate != 0.05 || cfg.Seed != 9 ||
		cfg.Policy != Adaptive || cfg.DriftThreshold != DefaultDriftThreshold || cfg.DaysPerEpoch != 1 {
		t.Fatalf("valid flags mangled: %+v", cfg)
	}
}
