// Package crossbar is a functional simulator of in-situ ReRAM
// matrix-vector multiplication: it computes MVMs the way the analog
// array does, rather than with float arithmetic.
//
// A weight matrix is programmed as integer cell slices (quant package):
// each 16-bit value becomes 8 two-bit conductances on a differential
// column pair. An input vector streams bit-serially through the DACs
// (2 bits per cycle for the Table II chip); each cycle, every bitline
// accumulates Σ inputSlice·cellSlice as an analog current, the ADC
// digitises the column sum at its resolution (8 bits — saturating!),
// and the shift-and-add units recombine cycles and cell slices into
// the final dot products.
//
// The package answers a question the analytic timing model cannot:
// how much numerical error the analog pipeline (especially ADC
// saturation) injects, which is the NeuroSim fidelity axis the paper's
// simulator inherits. Tests verify the digital path is exact when the
// ADC is wide enough and characterise the saturation regime.
package crossbar

import (
	"fmt"
	"math"

	"gopim/internal/quant"
	"gopim/internal/reram"
	"gopim/internal/tensor"
)

// Array is a weight matrix programmed onto crossbar cells.
type Array struct {
	chip reram.Chip
	rows int
	cols int
	// cells[s] holds slice s of every weight: cells[s][r*cols+c] is the
	// s-th bitsPerCell-wide slice of |w[r][c]|; sign[r*cols+c] records
	// the differential polarity.
	cells  [][]uint8
	sign   []bool
	scheme quant.Scheme
}

// Program quantises w to the chip's weight precision and stores it as
// cell slices.
func Program(chip reram.Chip, w *tensor.Matrix) *Array {
	if err := chip.Validate(); err != nil {
		panic(err)
	}
	scheme := quant.Fit(chip.WeightBits, w.MaxAbs())
	slices := quant.CellsPerValue(chip.WeightBits, chip.BitsPerCell)
	a := &Array{
		chip:   chip,
		rows:   w.Rows,
		cols:   w.Cols,
		cells:  make([][]uint8, slices),
		sign:   make([]bool, w.Rows*w.Cols),
		scheme: scheme,
	}
	for s := range a.cells {
		a.cells[s] = make([]uint8, w.Rows*w.Cols)
	}
	for i, v := range w.Data {
		q := scheme.QuantizeInt(v)
		a.sign[i] = q < 0
		for s, sl := range quant.Slices(q, chip.BitsPerCell, slices) {
			a.cells[s][i] = sl
		}
	}
	return a
}

// Rows and Cols report the programmed matrix shape.
func (a *Array) Rows() int { return a.rows }

// Cols reports the number of output columns.
func (a *Array) Cols() int { return a.cols }

// Scheme returns the weight quantisation scheme in use.
func (a *Array) Scheme() quant.Scheme { return a.scheme }

// MVMOptions tunes one analog multiply.
type MVMOptions struct {
	// ADCBits overrides the chip's ADC resolution (0 = chip default).
	ADCBits int
	// InputBits is the streamed input precision (0 = chip WeightBits).
	InputBits int
}

// MVM computes xᵀ·W through the analog pipeline. len(x) must equal
// Rows(). Returns the recombined dot products (length Cols()).
func (a *Array) MVM(x []float64, opt MVMOptions) []float64 {
	if len(x) != a.rows {
		panic(fmt.Sprintf("crossbar: input length %d, want %d rows", len(x), a.rows))
	}
	adcBits := opt.ADCBits
	if adcBits == 0 {
		adcBits = a.chip.ADCBits
	}
	inputBits := opt.InputBits
	if inputBits == 0 {
		inputBits = a.chip.WeightBits
	}
	if adcBits < 1 || inputBits < 2 {
		panic(fmt.Sprintf("crossbar: bad precision adc=%d input=%d", adcBits, inputBits))
	}

	// Quantise the input and slice it for bit-serial streaming.
	inScheme := quant.Fit(inputBits, maxAbs(x))
	dacBits := a.chip.DACBits
	inSlices := quant.CellsPerValue(inputBits, dacBits)
	xs := make([][]uint8, inSlices)
	xneg := make([]bool, a.rows)
	for s := range xs {
		xs[s] = make([]uint8, a.rows)
	}
	for r, v := range x {
		q := inScheme.QuantizeInt(v)
		xneg[r] = q < 0
		for s, sl := range quant.Slices(q, dacBits, inSlices) {
			xs[s][r] = sl
		}
	}

	// The array is tiled into crossbars of CrossbarRows wordlines; each
	// tile's bitline sum is digitised by the ADC — quantised against
	// the tile's analog full scale — and tiles recombine digitally.
	adcMax := float64(int64(1)<<adcBits - 1)
	maxCell := float64(int64(1)<<a.chip.BitsPerCell - 1)
	maxDac := float64(int64(1)<<a.chip.DACBits - 1)
	tileRows := a.chip.CrossbarRows
	fullScale := float64(tileRows) * maxCell * maxDac

	adc := func(sum int64) float64 {
		// Quantise the analog current to the ADC's code grid (and
		// saturate past full scale).
		v := float64(sum)
		if v > fullScale {
			v = fullScale
		}
		code := math.Round(v / fullScale * adcMax)
		return code / adcMax * fullScale
	}

	out := make([]float64, a.cols)
	// For every (input cycle, cell slice, row tile) triple, accumulate
	// the bitline sums, digitise, and shift-and-add into the running
	// total. The differential pair contributes ± according to weight
	// sign; input sign folds in digitally.
	for ic := 0; ic < inSlices; ic++ {
		for ws := range a.cells {
			shift := uint(ic*a.chip.DACBits + ws*a.chip.BitsPerCell)
			scale := float64(int64(1) << shift)
			for t0 := 0; t0 < a.rows; t0 += tileRows {
				t1 := t0 + tileRows
				if t1 > a.rows {
					t1 = a.rows
				}
				for c := 0; c < a.cols; c++ {
					var pos, neg int64
					for r := t0; r < t1; r++ {
						idx := r*a.cols + c
						contrib := int64(xs[ic][r]) * int64(a.cells[ws][idx])
						if a.sign[idx] != xneg[r] { // xor: one negative
							neg += contrib
						} else {
							pos += contrib
						}
					}
					out[c] += (adc(pos) - adc(neg)) * scale
				}
			}
		}
	}

	// Undo both quantisation scales.
	wStep := a.scheme.StepSize()
	xStep := inScheme.StepSize()
	for c := range out {
		out[c] *= wStep * xStep
	}
	return out
}

// MVMBatch runs MVM for every row of xs (a batch×rows matrix) and
// returns a batch×cols matrix.
func (a *Array) MVMBatch(xs *tensor.Matrix, opt MVMOptions) *tensor.Matrix {
	out := tensor.New(xs.Rows, a.cols)
	for r := 0; r < xs.Rows; r++ {
		out.SetRow(r, a.MVM(xs.Row(r), opt))
	}
	return out
}

// ReferenceMVM is the float64 ground truth xᵀ·W for error comparisons.
func ReferenceMVM(w *tensor.Matrix, x []float64) []float64 {
	if len(x) != w.Rows {
		panic(fmt.Sprintf("crossbar: input length %d, want %d rows", len(x), w.Rows))
	}
	out := make([]float64, w.Cols)
	for r, v := range x {
		row := w.Row(r)
		for c, wv := range row {
			out[c] += v * wv
		}
	}
	return out
}

// RelativeError returns ‖got − want‖₂ / ‖want‖₂ (0 when both are 0).
func RelativeError(got, want []float64) float64 {
	if len(got) != len(want) {
		panic(fmt.Sprintf("crossbar: length mismatch %d vs %d", len(got), len(want)))
	}
	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}

func maxAbs(xs []float64) float64 {
	var m float64
	for _, v := range xs {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
