package crossbar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gopim/internal/reram"
	"gopim/internal/tensor"
)

// wideADC returns the Table II chip with an ADC wide enough to
// digitise any 64-row tile sum exactly, isolating quantisation of the
// operands from ADC effects.
func wideADC() reram.Chip {
	c := reram.DefaultChip()
	c.ADCBits = 20
	return c
}

func TestSmallIntegerWeights(t *testing.T) {
	// Small integer weights and inputs land within one 16-bit
	// quantisation step of the exact products.
	chip := wideADC()
	w := tensor.NewFromRows([][]float64{
		{1, -2, 3},
		{0, 4, -1},
	})
	a := Program(chip, w)
	if a.Rows() != 2 || a.Cols() != 3 {
		t.Fatalf("array shape %dx%d", a.Rows(), a.Cols())
	}
	got := a.MVM([]float64{2, -1}, MVMOptions{})
	want := ReferenceMVM(w, []float64{2, -1}) // {2, -8, 7}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-3*(1+math.Abs(want[i])) {
			t.Fatalf("MVM = %v, want %v", got, want)
		}
	}
}

// Property: with a wide ADC, the analog MVM matches the float
// reference within the two operands' propagated quantisation error.
// The bound is absolute — a dot product near zero has an unbounded
// *relative* error from the same tiny absolute wobble.
func TestMatchesReferenceWithinQuantError(t *testing.T) {
	chip := wideADC()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(96), 1+rng.Intn(8)
		w := tensor.NewRandom(rng, rows, cols, 1)
		x := make([]float64, rows)
		var xnorm float64
		for i := range x {
			x[i] = rng.Float64()*2 - 1
			xnorm += math.Abs(x[i])
		}
		a := Program(chip, w)
		got := a.MVM(x, MVMOptions{})
		want := ReferenceMVM(w, x)
		// Per-output error bound: each of the `rows` products carries
		// at most wStep·|x| + xStep·|w| ≤ wStep + xStep of rounding.
		step := a.Scheme().StepSize() + 1.0/32767
		bound := (xnorm + float64(rows)) * step
		for c := range got {
			if math.Abs(got[c]-want[c]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The chip's 8-bit ADC introduces measurable but bounded error; a
// 4-bit ADC is much worse. This is the precision cliff NeuroSim-class
// simulators characterise.
func TestADCResolutionCliff(t *testing.T) {
	chip := reram.DefaultChip()
	rng := rand.New(rand.NewSource(7))
	w := tensor.NewRandom(rng, 128, 16, 1)
	x := make([]float64, 128)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	a := Program(chip, w)
	want := ReferenceMVM(w, x)

	err8 := RelativeError(a.MVM(x, MVMOptions{ADCBits: 8}), want)
	err4 := RelativeError(a.MVM(x, MVMOptions{ADCBits: 4}), want)
	err16 := RelativeError(a.MVM(x, MVMOptions{ADCBits: 16}), want)

	if err16 > 2e-3 {
		t.Fatalf("16-bit ADC error = %v, want near-exact", err16)
	}
	if err8 > 0.2 {
		t.Fatalf("8-bit ADC error = %v, want usable (<20%%)", err8)
	}
	if err4 <= err8 {
		t.Fatalf("4-bit ADC (%v) must be worse than 8-bit (%v)", err4, err8)
	}
}

func TestMVMBatch(t *testing.T) {
	chip := wideADC()
	rng := rand.New(rand.NewSource(3))
	w := tensor.NewRandom(rng, 10, 4, 1)
	xs := tensor.NewRandom(rng, 5, 10, 1)
	a := Program(chip, w)
	got := a.MVMBatch(xs, MVMOptions{})
	want := tensor.MatMul(xs, w)
	if RelativeError(got.Data, want.Data) > 2e-3 {
		t.Fatalf("batch MVM error too large")
	}
}

func TestNegativeInputsAndWeights(t *testing.T) {
	chip := wideADC()
	w := tensor.NewFromRows([][]float64{{-3}, {-5}})
	a := Program(chip, w)
	got := a.MVM([]float64{-2, 4}, MVMOptions{})
	// (-2)(-3) + (4)(-5) = 6 - 20 = -14, within quantisation error.
	if math.Abs(got[0]+14) > 0.01 {
		t.Fatalf("MVM = %v, want ≈ -14", got[0])
	}
}

func TestZeroMatrix(t *testing.T) {
	chip := wideADC()
	a := Program(chip, tensor.New(4, 4))
	got := a.MVM([]float64{1, 2, 3, 4}, MVMOptions{})
	for _, v := range got {
		if v != 0 {
			t.Fatalf("zero matrix must produce zero output: %v", got)
		}
	}
}

func TestValidation(t *testing.T) {
	chip := wideADC()
	a := Program(chip, tensor.New(2, 2))
	for _, f := range []func(){
		func() { a.MVM([]float64{1}, MVMOptions{}) },
		func() { a.MVM([]float64{1, 2}, MVMOptions{ADCBits: -1}) },
		func() { a.MVM([]float64{1, 2}, MVMOptions{InputBits: 1}) },
		func() { ReferenceMVM(tensor.New(2, 2), []float64{1}) },
		func() { RelativeError([]float64{1}, []float64{1, 2}) },
		func() {
			bad := chip
			bad.Tiles = 0
			Program(bad, tensor.New(1, 1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError([]float64{0}, []float64{0}) != 0 {
		t.Fatal("0/0 error should be 0")
	}
	if !math.IsInf(RelativeError([]float64{1}, []float64{0}), 1) {
		t.Fatal("nonzero vs zero should be +Inf")
	}
	if got := RelativeError([]float64{3, 4}, []float64{0, 5}); math.Abs(got-math.Sqrt(10)/5) > 1e-12 {
		t.Fatalf("RelativeError = %v", got)
	}
}

func BenchmarkMVM128(b *testing.B) {
	chip := reram.DefaultChip()
	rng := rand.New(rand.NewSource(1))
	w := tensor.NewRandom(rng, 128, 64, 1)
	x := make([]float64, 128)
	for i := range x {
		x[i] = rng.Float64()
	}
	a := Program(chip, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MVM(x, MVMOptions{})
	}
}
