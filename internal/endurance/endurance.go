// Package endurance models ReRAM cell wear-out. Paper §IV-A motivates
// the SRAM weight manager with endurance: ReRAM cells survive ~10⁸
// writes against SRAM's 10¹⁶, so frequently rewritten state must not
// live in the array. The same argument applies to aggregation-stage
// vertex rows — the rows GoPIM's selective updating rewrites every
// epoch — so ISU not only saves time and energy but also extends the
// array's usable lifetime. This package quantifies that.
package endurance

import (
	"fmt"
	"math"

	"gopim/internal/mapping"
)

// ReRAMWriteLimit is the per-cell write endurance of ReRAM (paper
// §IV-A: 10⁸).
const ReRAMWriteLimit = 1e8

// SRAMWriteLimit is the corresponding SRAM figure (10¹⁶).
const SRAMWriteLimit = 1e16

// Profile describes the write load of one training configuration.
type Profile struct {
	// WritesPerVertexPerEpoch is how many times an important vertex's
	// row is rewritten each epoch (1 in the epoch-granular model).
	WritesPerVertexPerEpoch float64
	// EpochsPerRun is the length of one training run.
	EpochsPerRun int
	// RunsPerDay is the training throughput the array sustains.
	RunsPerDay float64
}

// Validate reports a descriptive error for nonsensical profiles.
// NaN compares false against everything, so the positivity checks
// alone would wave NaN through — it and ±Inf are rejected explicitly.
func (p Profile) Validate() error {
	switch {
	case math.IsNaN(p.WritesPerVertexPerEpoch) || math.IsInf(p.WritesPerVertexPerEpoch, 0):
		return fmt.Errorf("endurance: writes/vertex/epoch %v must be finite", p.WritesPerVertexPerEpoch)
	case p.WritesPerVertexPerEpoch <= 0:
		return fmt.Errorf("endurance: writes/vertex/epoch %v must be positive", p.WritesPerVertexPerEpoch)
	case p.EpochsPerRun < 1:
		return fmt.Errorf("endurance: epochs %d must be ≥ 1", p.EpochsPerRun)
	case math.IsNaN(p.RunsPerDay) || math.IsInf(p.RunsPerDay, 0):
		return fmt.Errorf("endurance: runs/day %v must be finite", p.RunsPerDay)
	case p.RunsPerDay <= 0:
		return fmt.Errorf("endurance: runs/day %v must be positive", p.RunsPerDay)
	}
	return nil
}

// TotalCellWrites is the writes one always-updated cell absorbs over
// `days` of the profile's traffic — the quantity fault.
// WearStuckFraction turns into a stuck-cell fraction, coupling the
// endurance model to the fault layer.
func TotalCellWrites(p Profile, updateFraction, days float64) float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if days < 0 || math.IsNaN(days) || math.IsInf(days, 0) {
		panic(fmt.Sprintf("endurance: days %v must be finite and non-negative", days))
	}
	return CellWritesPerEpoch(p, updateFraction) * float64(p.EpochsPerRun) * p.RunsPerDay * days
}

// CellWritesPerEpoch returns, for a vertex updated with the given
// per-epoch frequency, the writes one of its cells absorbs per epoch.
func CellWritesPerEpoch(p Profile, updateFraction float64) float64 {
	if updateFraction < 0 || updateFraction > 1 {
		panic(fmt.Sprintf("endurance: update fraction %v out of [0,1]", updateFraction))
	}
	return p.WritesPerVertexPerEpoch * updateFraction
}

// LifetimeDays returns how many days the most-written cell class lasts
// under the profile: limit / (writes per epoch × epochs × runs).
func LifetimeDays(p Profile, updateFraction, writeLimit float64) float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if writeLimit <= 0 {
		panic(fmt.Sprintf("endurance: write limit %v must be positive", writeLimit))
	}
	perEpoch := CellWritesPerEpoch(p, updateFraction)
	perDay := perEpoch * float64(p.EpochsPerRun) * p.RunsPerDay
	if perDay == 0 {
		return math.Inf(1)
	}
	return writeLimit / perDay
}

// Report compares array lifetime under full updating vs a selective
// plan.
type Report struct {
	// FullDays is the lifetime with every row rewritten every epoch.
	FullDays float64
	// ImportantDays is the lifetime of the hottest (important, every
	// epoch) rows under the plan — identical to FullDays since those
	// rows still rewrite every epoch.
	ImportantDays float64
	// UnimportantDays is the lifetime of the cold rows, refreshed every
	// StalePeriod epochs.
	UnimportantDays float64
	// WearRatio is mean write traffic under the plan relative to full
	// updating — the array-average wear reduction ISU buys.
	WearRatio float64
}

// Compare evaluates a selective-updating plan's endurance effect.
func Compare(p Profile, plan *mapping.UpdatePlan) Report {
	full := LifetimeDays(p, 1, ReRAMWriteLimit)
	return Report{
		FullDays:        full,
		ImportantDays:   LifetimeDays(p, 1, ReRAMWriteLimit),
		UnimportantDays: LifetimeDays(p, 1/float64(plan.StalePeriod), ReRAMWriteLimit),
		WearRatio:       plan.AvgUpdateFraction(),
	}
}

// SRAMAdvantage returns how many times longer SRAM outlasts ReRAM at
// identical write traffic — the paper's 10¹⁶/10⁸ = 10⁸ argument for
// the weight manager.
func SRAMAdvantage() float64 { return SRAMWriteLimit / ReRAMWriteLimit }
