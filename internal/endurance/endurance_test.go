package endurance

import (
	"math"
	"testing"

	"gopim/internal/mapping"
)

func profile() Profile {
	return Profile{WritesPerVertexPerEpoch: 1, EpochsPerRun: 200, RunsPerDay: 100}
}

func TestValidate(t *testing.T) {
	if err := profile().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Profile{
		{WritesPerVertexPerEpoch: 0, EpochsPerRun: 1, RunsPerDay: 1},
		{WritesPerVertexPerEpoch: 1, EpochsPerRun: 0, RunsPerDay: 1},
		{WritesPerVertexPerEpoch: 1, EpochsPerRun: 1, RunsPerDay: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestLifetimeArithmetic(t *testing.T) {
	p := profile()
	// 1 write/epoch × 200 epochs × 100 runs = 20 000 writes/day;
	// 10⁸ / 2·10⁴ = 5 000 days.
	got := LifetimeDays(p, 1, ReRAMWriteLimit)
	if math.Abs(got-5000) > 1e-9 {
		t.Fatalf("LifetimeDays = %v, want 5000", got)
	}
	// Cold rows at 1/20 update frequency last 20× longer.
	cold := LifetimeDays(p, 1.0/20, ReRAMWriteLimit)
	if math.Abs(cold-100_000) > 1e-6 {
		t.Fatalf("cold lifetime = %v, want 100000", cold)
	}
	// Zero update fraction → unwritten cells live forever.
	if !math.IsInf(LifetimeDays(p, 0, ReRAMWriteLimit), 1) {
		t.Fatal("unwritten cells must never wear out")
	}
}

func TestLifetimePanics(t *testing.T) {
	p := profile()
	for _, f := range []func(){
		func() { LifetimeDays(p, -0.1, ReRAMWriteLimit) },
		func() { LifetimeDays(p, 1.1, ReRAMWriteLimit) },
		func() { LifetimeDays(p, 0.5, 0) },
		func() { LifetimeDays(Profile{}, 0.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCompareISUPlan(t *testing.T) {
	degs := []float64{100, 90, 80, 70, 4, 3, 2, 1}
	plan := mapping.NewUpdatePlan(degs, 0.5, 20)
	rep := Compare(profile(), plan)

	if rep.ImportantDays != rep.FullDays {
		t.Fatal("important rows wear like full updating")
	}
	if rep.UnimportantDays <= rep.FullDays {
		t.Fatal("cold rows must outlast hot rows")
	}
	if math.Abs(rep.UnimportantDays/rep.FullDays-20) > 1e-9 {
		t.Fatalf("cold rows should last StalePeriod× longer: %v vs %v",
			rep.UnimportantDays, rep.FullDays)
	}
	// θ=0.5, period 20 → mean wear 0.525 of full updating.
	if math.Abs(rep.WearRatio-0.525) > 1e-12 {
		t.Fatalf("wear ratio = %v, want 0.525", rep.WearRatio)
	}
}

func TestSRAMAdvantage(t *testing.T) {
	if got := SRAMAdvantage(); got != 1e8 {
		t.Fatalf("SRAM advantage = %v, want 1e8 (paper §IV-A)", got)
	}
}

func TestValidateRejectsNaNInf(t *testing.T) {
	good := Profile{WritesPerVertexPerEpoch: 1, EpochsPerRun: 200, RunsPerDay: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	for _, p := range []Profile{
		{WritesPerVertexPerEpoch: math.NaN(), EpochsPerRun: 200, RunsPerDay: 10},
		{WritesPerVertexPerEpoch: math.Inf(1), EpochsPerRun: 200, RunsPerDay: 10},
		{WritesPerVertexPerEpoch: 1, EpochsPerRun: 200, RunsPerDay: math.NaN()},
		{WritesPerVertexPerEpoch: 1, EpochsPerRun: 200, RunsPerDay: math.Inf(1)},
		{WritesPerVertexPerEpoch: 1, EpochsPerRun: 200, RunsPerDay: math.Inf(-1)},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted non-finite profile %+v", p)
		}
	}
}

func TestTotalCellWrites(t *testing.T) {
	p := Profile{WritesPerVertexPerEpoch: 1, EpochsPerRun: 200, RunsPerDay: 10}
	// 1 write/epoch × 200 epochs × 10 runs/day × 50 days = 1e5 writes.
	if got := TotalCellWrites(p, 1, 50); got != 1e5 {
		t.Fatalf("TotalCellWrites = %v, want 1e5", got)
	}
	// A stale-period-20 cold row absorbs 1/20th of that.
	if got := TotalCellWrites(p, 1.0/20, 50); got != 5e3 {
		t.Fatalf("cold-row TotalCellWrites = %v, want 5e3", got)
	}
}
