// Package energy converts a simulated schedule (per-stage operation
// counts plus makespan) into component-level energy, using the power
// figures of paper Table II. All energies are picojoules
// (1 mW × 1 ns = 1 pJ).
package energy

import (
	"fmt"

	"gopim/internal/reram"
	"gopim/internal/stage"
)

// WriteEnergyFactor scales a crossbar's read power to its write power.
// ReRAM SET/RESET pulses draw several times the read current; 4× is
// the conventional modelling choice for the Table II cell.
const WriteEnergyFactor = 4.0

// Breakdown is an energy account in picojoules.
type Breakdown struct {
	ReadPJ   float64 // crossbar MVM activations incl. ADC/DAC periphery
	WritePJ  float64 // ReRAM row programming
	SRAMPJ   float64 // weight-manager MACs
	StaticPJ float64 // controller, buffers, activation module × makespan
}

// TotalPJ sums all components.
func (b Breakdown) TotalPJ() float64 {
	return b.ReadPJ + b.WritePJ + b.SRAMPJ + b.StaticPJ
}

// TotalMJ returns the total in millijoules.
func (b Breakdown) TotalMJ() float64 { return b.TotalPJ() * 1e-15 * 1e3 }

// ReadOpPJ is the energy of one crossbar read activation: the crossbar
// itself plus its per-crossbar share of the PE periphery (ADC, S&H,
// shift-and-add, registers) for one read cycle.
func ReadOpPJ(c reram.Chip) float64 {
	per := c.Power.ADCmW + c.Power.SHmW + c.Power.ShiftAddmW + c.Power.InRegmW + c.Power.OutRegmW
	mw := c.Power.CrossbarmW + per/float64(c.CrossbarsPerPE)
	return mw * c.ReadLatencyNS
}

// WriteRowPJ is the energy of programming one crossbar row, including
// the write-verify iterations.
func WriteRowPJ(c reram.Chip) float64 {
	return WriteEnergyFactor * c.Power.CrossbarmW * c.ProgramRowNS()
}

// SRAMMACPJ is the energy of one weight-manager multiply-accumulate.
func SRAMMACPJ(c reram.Chip) float64 {
	return c.Power.WeightMgrmW / stage.GCUnit
}

// StaticMW is the always-on power draw for a run that occupies
// crossbarsUsed crossbars: chip-level controller and activation module
// plus the buffers/NFU/PFU of every active tile.
func StaticMW(c reram.Chip, crossbarsUsed int) float64 {
	perTile := c.Power.TileInBufmW + c.Power.TileXbBufmW + c.Power.TileOutBufmW +
		c.Power.TileNFUmW + c.Power.TilePFUmW
	xbPerTile := c.PEsPerTile * c.CrossbarsPerPE
	tiles := (crossbarsUsed + xbPerTile - 1) / xbPerTile
	if tiles > c.Tiles {
		tiles = c.Tiles
	}
	return c.Power.ControllermW + c.Power.ActivationmW + float64(tiles)*perTile
}

// Compute accounts a full run: per-stage op counts × micro-batches for
// the dynamic part, static power × makespan for the rest.
// crossbarsUsed includes replicas.
func Compute(c reram.Chip, stages []stage.Stage, microBatches int, makespanNS float64, crossbarsUsed int) Breakdown {
	if microBatches < 1 {
		panic(fmt.Sprintf("energy: micro-batches %d must be ≥ 1", microBatches))
	}
	if makespanNS < 0 {
		panic(fmt.Sprintf("energy: negative makespan %v", makespanNS))
	}
	var b Breakdown
	mb := float64(microBatches)
	for _, s := range stages {
		b.ReadPJ += s.ReadOps * mb * ReadOpPJ(c)
		b.WritePJ += s.WriteRows * mb * WriteRowPJ(c)
		b.SRAMPJ += s.SRAMMACs * mb * SRAMMACPJ(c)
	}
	b.StaticPJ = StaticMW(c, crossbarsUsed) * makespanNS
	return b
}

// TileMW returns the static power of the tiles spanned by xb crossbars.
func TileMW(c reram.Chip, xb int) float64 {
	if xb <= 0 {
		return 0
	}
	perTile := c.Power.TileInBufmW + c.Power.TileXbBufmW + c.Power.TileOutBufmW +
		c.Power.TileNFUmW + c.Power.TilePFUmW
	xbPerTile := c.PEsPerTile * c.CrossbarsPerPE
	tiles := (xb + xbPerTile - 1) / xbPerTile
	if tiles > c.Tiles {
		tiles = c.Tiles
	}
	return float64(tiles) * perTile
}

// ComputeSchedule accounts a full run with replica power gating: the
// original mapping's tiles (plus chip-level components) are powered
// for the whole makespan, while each stage's replica tiles are powered
// only during that stage's busy time — replicas are gated between
// micro-batches. Dynamic energy is identical to Compute.
func ComputeSchedule(c reram.Chip, stages []stage.Stage, microBatches int,
	makespanNS float64, originalCrossbars int, replicaCrossbars []int, busyNS []float64) Breakdown {

	if len(replicaCrossbars) != len(stages) || len(busyNS) != len(stages) {
		panic(fmt.Sprintf("energy: %d stages, %d replica footprints, %d busy times",
			len(stages), len(replicaCrossbars), len(busyNS)))
	}
	b := Compute(c, stages, microBatches, makespanNS, originalCrossbars)
	for i := range stages {
		b.StaticPJ += TileMW(c, replicaCrossbars[i]) * busyNS[i]
	}
	return b
}
