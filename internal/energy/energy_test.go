package energy

import (
	"math"
	"testing"

	"gopim/internal/graphgen"
	"gopim/internal/reram"
	"gopim/internal/stage"
)

func TestPerOpEnergies(t *testing.T) {
	c := reram.DefaultChip()
	// Read op: crossbar 6.2 mW + periphery share, × 29.31 ns.
	per := c.Power.ADCmW + c.Power.SHmW + c.Power.ShiftAddmW + c.Power.InRegmW + c.Power.OutRegmW
	want := (c.Power.CrossbarmW + per/32) * 29.31
	if got := ReadOpPJ(c); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ReadOpPJ = %v, want %v", got, want)
	}
	// Write row: 4 × 6.2 mW × 16 ops × 8 verify cycles × 50.88 ns.
	wantW := 4.0 * 6.2 * 16 * 8 * 50.88
	if got := WriteRowPJ(c); math.Abs(got-wantW) > 1e-6 {
		t.Fatalf("WriteRowPJ = %v, want %v", got, wantW)
	}
	if got := SRAMMACPJ(c); math.Abs(got-99.6/stage.GCUnit) > 1e-12 {
		t.Fatalf("SRAMMACPJ = %v", got)
	}
}

func TestStaticPowerScalesWithTiles(t *testing.T) {
	c := reram.DefaultChip()
	base := StaticMW(c, 0)
	if base < c.Power.ControllermW {
		t.Fatalf("static power %v below controller power", base)
	}
	oneTile := StaticMW(c, 1)
	twoTiles := StaticMW(c, 257) // 256 crossbars per tile → spills into 2
	if oneTile <= base || twoTiles <= oneTile {
		t.Fatalf("static power must grow with tiles: %v %v %v", base, oneTile, twoTiles)
	}
	perTile := c.Power.TileInBufmW + c.Power.TileXbBufmW + c.Power.TileOutBufmW + c.Power.TileNFUmW + c.Power.TilePFUmW
	if math.Abs((twoTiles-oneTile)-perTile) > 1e-9 {
		t.Fatalf("tile increment = %v, want %v", twoTiles-oneTile, perTile)
	}
	// Capped at the chip's tile count.
	if StaticMW(c, 1<<40) != StaticMW(c, c.TotalCrossbars()) {
		t.Fatal("tile count must cap at the chip size")
	}
}

func TestComputeAccounting(t *testing.T) {
	c := reram.DefaultChip()
	stages := []stage.Stage{
		{ReadOps: 10, WriteRows: 2, SRAMMACs: 100},
		{ReadOps: 5},
	}
	b := Compute(c, stages, 4, 1000, 256)
	wantRead := (10 + 5) * 4 * ReadOpPJ(c)
	wantWrite := 2 * 4 * WriteRowPJ(c)
	wantSRAM := 100 * 4 * SRAMMACPJ(c)
	wantStatic := StaticMW(c, 256) * 1000
	if math.Abs(b.ReadPJ-wantRead) > 1e-6 ||
		math.Abs(b.WritePJ-wantWrite) > 1e-6 ||
		math.Abs(b.SRAMPJ-wantSRAM) > 1e-6 ||
		math.Abs(b.StaticPJ-wantStatic) > 1e-6 {
		t.Fatalf("breakdown wrong: %+v", b)
	}
	if math.Abs(b.TotalPJ()-(wantRead+wantWrite+wantSRAM+wantStatic)) > 1e-6 {
		t.Fatal("TotalPJ must sum components")
	}
	if b.TotalMJ() <= 0 {
		t.Fatal("TotalMJ must be positive")
	}
}

func TestComputeValidation(t *testing.T) {
	c := reram.DefaultChip()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compute(c, nil, 0, 0, 0)
}

func TestComputeNegativeMakespanPanics(t *testing.T) {
	c := reram.DefaultChip()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compute(c, nil, 1, -5, 0)
}

// End-to-end sanity: on a real workload, a longer (serial) schedule
// must cost more static energy than a pipelined one, with identical
// dynamic energy.
func TestSerialCostsMoreStaticEnergy(t *testing.T) {
	d, _ := graphgen.ByName("ddi")
	cfg := stage.Config{
		Chip:       reram.DefaultChip(),
		Dataset:    d,
		Deg:        d.SynthDegreeModel(1),
		MicroBatch: 64,
	}
	stages := stage.Build(cfg)
	xb := stage.TotalCrossbars(stages)

	serial := Compute(cfg.Chip, stages, 67, 1e9, xb)    // long makespan
	pipelined := Compute(cfg.Chip, stages, 67, 2e8, xb) // 5× shorter
	if serial.ReadPJ != pipelined.ReadPJ || serial.WritePJ != pipelined.WritePJ {
		t.Fatal("dynamic energy must not depend on the schedule")
	}
	if serial.StaticPJ <= pipelined.StaticPJ {
		t.Fatal("longer schedules must burn more static energy")
	}
	if serial.TotalPJ() <= pipelined.TotalPJ() {
		t.Fatal("serial total must exceed pipelined total")
	}
}
