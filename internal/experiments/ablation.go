package experiments

import (
	"fmt"

	"gopim/internal/accel"
	"gopim/internal/graphgen"
	"gopim/internal/noc"
	"gopim/internal/reram"
	"gopim/internal/stage"
)

func init() {
	register("abl", ablation)
}

// ablation is not a paper artifact: it sweeps the calibration knobs of
// DESIGN.md §2 and reports how sensitive the headline result (GoPIM
// speedup over Serial on ddi) is to each choice, plus the optional NoC
// refinement's effect on stage times.
func ablation(opt Options) (*Result, error) {
	d, err := graphgen.ByName("ddi")
	if err != nil {
		return nil, err
	}
	if opt.Fast {
		d.PaperVertices = 2000
	}
	res := &Result{
		ID:     "abl",
		Title:  "Model-knob ablations (extra analysis, not a paper artifact)",
		Paper:  "DESIGN.md §2 calibration: ZeroSkipMiss 0.20, WriteLanes 2, IntraSplit 32, NoC subsumed",
		Header: []string{"knob", "setting", "GoPIM speedup vs Serial", "serial epoch (ms)"},
	}

	run := func(knob, setting string, chip reram.Chip) {
		w := accel.Workload{Dataset: d, Seed: opt.Seed, Chip: chip}
		serial := accel.Run(accel.Serial, w)
		g := accel.Run(accel.GoPIM, w)
		res.Rows = append(res.Rows, []string{
			knob, setting,
			fmtX(accel.Speedup(serial, g)),
			fmt.Sprintf("%.2f", serial.MakespanNS/1e6),
		})
	}

	for _, miss := range []float64{0, 0.2, 0.5, 1} {
		chip := reram.DefaultChip()
		chip.ZeroSkipMiss = miss
		run("zero-skip miss", fmtF(miss), chip)
	}
	for _, lanes := range []int{1, 2, 8} {
		chip := reram.DefaultChip()
		chip.WriteLanes = lanes
		run("write lanes", fmt.Sprintf("%d", lanes), chip)
	}
	for _, verify := range []int{1, 8, 16} {
		chip := reram.DefaultChip()
		chip.WriteVerifyCycles = verify
		run("write-verify cycles", fmt.Sprintf("%d", verify), chip)
	}

	// NoC refinement: per-stage AG time delta.
	deg := d.SynthDegreeModel(opt.Seed)
	base := stage.Build(stage.Config{
		Chip: reram.DefaultChip(), Dataset: d, Deg: deg, MicroBatch: 64,
	})
	params := noc.Default()
	refined := stage.Build(stage.Config{
		Chip: reram.DefaultChip(), Dataset: d, Deg: deg, MicroBatch: 64, NoC: &params,
	})
	for i := range base {
		if base[i].Kind != stage.Aggregation {
			continue
		}
		delta := refined[i].TimeNS - base[i].TimeNS
		res.Rows = append(res.Rows, []string{
			"NoC refinement", base[i].Name,
			fmtPct(delta / base[i].TimeNS), "",
		})
	}
	res.Notes = append(res.Notes,
		"The headline calibration is robust: the speedup ordering survives every knob setting; magnitudes shift as DESIGN.md §2 predicts.",
		"NoC column shows the inter-tile adder/bus overhead as a fraction of AG stage time (second-order, hence subsumed by default).")
	return res, nil
}
