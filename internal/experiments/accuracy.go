package experiments

import (
	"fmt"

	"gopim/internal/accel"
	"gopim/internal/gcn"
	"gopim/internal/graphgen"
	"gopim/internal/mapping"
)

func init() {
	register("tab5", tab5)
	register("fig16", fig16)
	register("fig17", fig17)
	register("cora", cora)
}

// trainSize bounds the explicit-graph instances for GCN training runs.
func trainSize(opt Options) (vertices, epochs int) {
	if opt.Fast {
		return 300, 15
	}
	return 900, 40
}

// trainPair runs vanilla and ISU training on one dataset and returns
// both results. The stale period scales with the (shortened) training
// runs so that non-important rows refresh a handful of times per run,
// as the paper's 20-epoch period does over full-length training.
func trainPair(opt Options, d graphgen.Dataset, theta float64) (vanilla, isu gcn.Result) {
	maxV, epochs := trainSize(opt)
	inst, instKey := instanceFor(d, opt.Seed+int64(len(d.Name)), maxV)
	degs := make([]float64, inst.Graph.N)
	for v := range degs {
		degs[v] = float64(inst.Graph.Degree(v))
	}
	stale := epochs / 5
	if stale < 3 {
		stale = 3
	}
	// The memoized trains make trainPair cheap to call from several
	// experiments with the same (dataset, θ): fig16's θ sweep re-runs
	// tab5's vanilla baseline for free, and cora's accuracy row reuses
	// the fig16 Cora θ=0.8 cell.
	cfg := gcn.Config{Epochs: epochs, Seed: opt.Seed, LR: 0.005, Dropout: 0}
	vanilla = gcn.TrainMemo(instKey, inst, cfg)
	cfg.Plan = mapping.NewUpdatePlan(degs, theta, stale)
	isu = gcn.TrainMemo(instKey, inst, cfg)
	return vanilla, isu
}

// tab5 reproduces the accuracy impact of ISU per dataset.
func tab5(opt Options) (*Result, error) {
	res := &Result{
		ID:     "tab5",
		Title:  "Accuracy impact of GoPIM's ISU vs GoPIM-Vanilla",
		Paper:  "ddi +4.01, collab −0.65, ppa +1.07, proteins +1.62, arxiv −0.2 points; losses below 1% are acceptable",
		Header: []string{"dataset", "GoPIM-Vanilla", "GoPIM (ISU)", "impact", "rows updated/epoch"},
	}
	for _, d := range evalDatasets(opt) {
		vanilla, isu := trainPair(opt, d, d.AdaptiveTheta())
		res.Rows = append(res.Rows, []string{
			d.Name,
			fmtPct(vanilla.Accuracy),
			fmtPct(isu.Accuracy),
			fmt.Sprintf("%+.2f pts", (isu.Accuracy-vanilla.Accuracy)*100),
			fmtPct(isu.UpdatedRowFraction),
		})
	}
	res.Notes = append(res.Notes,
		"Synthetic community-labelled graphs: the claim under test is that degree-ranked selective updating stays within a few points of exact training while skipping ~half the row updates.")
	return res, nil
}

// fig16 reproduces the sensitivity study: accuracy vs θ on dense ddi
// (a) and sparse Cora (b), and speedup vs micro-batch size (c).
func fig16(opt Options) (*Result, error) {
	res := &Result{
		ID:     "fig16",
		Title:  "Sensitivity: accuracy vs θ (dense ddi / sparse Cora) and speedup vs micro-batch size",
		Paper:  "θ=50% suffices for dense ddi, sparse Cora needs θ=80%; speedup grows with micro-batch size",
		Header: []string{"variant", "setting", "value"},
	}
	thetas := []float64{0.2, 0.4, 0.5, 0.8, 1.0}
	if opt.Fast {
		thetas = []float64{0.2, 0.5, 0.8}
	}
	for _, name := range []string{"ddi", "Cora"} {
		d, err := graphgen.ByName(name)
		if err != nil {
			return nil, err
		}
		label := "(a) ddi acc"
		if name == "Cora" {
			label = "(b) Cora acc"
		}
		for _, theta := range thetas {
			_, isu := trainPair(opt, d, theta)
			res.Rows = append(res.Rows, []string{
				label, fmt.Sprintf("θ=%.0f%%", theta*100), fmtPct(isu.Accuracy),
			})
		}
	}

	d, err := graphgen.ByName("ddi")
	if err != nil {
		return nil, err
	}
	mbs := []int{16, 32, 64, 128, 256}
	if opt.Fast {
		mbs = []int{32, 64, 128}
	}
	for _, mb := range mbs {
		w := accel.Workload{Dataset: d, Seed: opt.Seed, MicroBatch: mb}
		sp := accel.Speedup(accel.Run(accel.Serial, w), accel.Run(accel.GoPIM, w))
		res.Rows = append(res.Rows, []string{
			"(c) speedup", fmt.Sprintf("mb=%d", mb), fmtX(sp),
		})
	}
	return res, nil
}

// fig17 reproduces the scalability study: (a) speedup vs vertex
// feature dimension, (b) the products dataset.
func fig17(opt Options) (*Result, error) {
	res := &Result{
		ID:     "fig17",
		Title:  "Scalability: speedup vs feature dimension (a) and the products dataset (b)",
		Paper:  "speedups persist but taper as dimensions grow 256→2048; products: 5.9x speedup, 1.8x energy saving vs Serial",
		Header: []string{"variant", "setting", "speedup", "energy saving"},
	}
	ddi, err := graphgen.ByName("ddi")
	if err != nil {
		return nil, err
	}
	dims := []int{256, 512, 1024, 2048}
	if opt.Fast {
		dims = []int{256, 1024}
	}
	for _, dim := range dims {
		d := ddi
		d.FeatureDim = dim
		d.InputCh = dim
		d.HiddenCh = dim
		d.OutputCh = dim
		w := accel.Workload{Dataset: d, Seed: opt.Seed}
		serial := accel.Run(accel.Serial, w)
		g := accel.Run(accel.GoPIM, w)
		res.Rows = append(res.Rows, []string{
			"(a) feature dim", fmt.Sprintf("%d", dim),
			fmtX(accel.Speedup(serial, g)),
			fmtX(accel.EnergySaving(serial, g)),
		})
	}

	products, err := graphgen.ByName("products")
	if err != nil {
		return nil, err
	}
	if opt.Fast {
		products.PaperVertices = 100_000
	}
	w := accel.Workload{Dataset: products, Seed: opt.Seed}
	serial := accel.Run(accel.Serial, w)
	g := accel.Run(accel.GoPIM, w)
	res.Rows = append(res.Rows, []string{
		"(b) products", fmt.Sprintf("%d vertices", products.PaperVertices),
		fmtX(accel.Speedup(serial, g)),
		fmtX(accel.EnergySaving(serial, g)),
	})
	res.Notes = append(res.Notes,
		"Larger feature dimensions need more crossbars per replica, shrinking the allocation head-room — the paper's tapering argument.")
	return res, nil
}

// cora reproduces the sparse-dataset study of §VII-F.
func cora(opt Options) (*Result, error) {
	d, err := graphgen.ByName("Cora")
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "cora",
		Title:  "Sparse dataset (Cora, θ=80%): speedups, energy, accuracy",
		Paper:  "3460.5x/1.30x/1.26x/1.27x speedups vs Serial/SlimGNN-like/ReGraphX/ReFlip; energy savings 8%/3.8%/3.8%/19.5%; accuracy loss 0.28%",
		Header: []string{"baseline", "GoPIM speedup", "GoPIM energy saving"},
	}
	w := accel.Workload{Dataset: d, Seed: opt.Seed}
	g := accel.Run(accel.GoPIM, w)
	for _, k := range []accel.Kind{accel.Serial, accel.SlimGNNLike, accel.ReGraphX, accel.ReFlip} {
		r := accel.Run(k, w)
		res.Rows = append(res.Rows, []string{
			k.String(),
			fmtX(accel.Speedup(r, g)),
			fmtPct(1 - g.EnergyPJ()/r.EnergyPJ()),
		})
	}
	vanilla, isu := trainPair(opt, d, 0.8)
	res.Rows = append(res.Rows, []string{
		"accuracy impact",
		fmt.Sprintf("%+.2f pts", (isu.Accuracy-vanilla.Accuracy)*100),
		"",
	})
	res.Notes = append(res.Notes,
		"Sparse graphs leave fewer vertices to drop (θ=0.8), so GoPIM's margin shrinks but the ordering holds.")
	return res, nil
}
