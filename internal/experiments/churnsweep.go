package experiments

import (
	"fmt"

	"gopim/internal/accel"
	"gopim/internal/churn"
	"gopim/internal/gcn"
	"gopim/internal/graphgen"
	"gopim/internal/mapping"
)

func init() {
	register("churnsweep", churnsweep)
}

// churnEpochCount is how many mutation epochs each sweep cell streams.
func churnEpochCount(opt Options) int {
	if opt.Fast {
		return 3
	}
	return 5
}

// churnsweep measures what streaming-graph churn costs along both axes
// the robustness loop cares about: GCN accuracy when the ISU plan goes
// stale against the drifted graph (explicit-edge churn, real
// training), and pipeline makespan plus re-mapping traffic when
// incremental re-mapping chases the drift (degree-model churn through
// accel.RunChurn). A churn rate × θ grid on arxiv — a citation graph,
// the canonical streaming workload, and sparse enough that the delta
// path stays below the majority-changed full-remap fallback; rate 0
// pins the static baseline in every column.
func churnsweep(opt Options) (*Result, error) {
	d, err := graphgen.ByName("arxiv")
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "churnsweep",
		Title:  "Streaming-graph churn: accuracy of stale vs refreshed ISU plans, and re-mapping cost (× θ)",
		Paper:  "robustness extension (not in the paper): ROADMAP item 3, dynamic graphs over the §IV ISU machinery",
		Header: []string{"θ", "churn rate", "acc stale plan", "acc refreshed", "Δ", "mean makespan", "stripes moved", "remap fallbacks"},
	}
	rates := []float64{0, 0.005, 0.02, 0.1}
	if opt.Fast {
		rates = []float64{0, 0.02, 0.1}
	}
	thetas := []float64{1.0, 0.5}
	epochs := churnEpochCount(opt)

	maxV, trainEpochs := trainSize(opt)
	inst, instKey := instanceFor(d, opt.Seed+int64(len(d.Name)), maxV)
	stale := trainEpochs / 5
	if stale < 3 {
		stale = 3
	}
	preDegs := make([]float64, inst.Graph.N)
	for v := range preDegs {
		preDegs[v] = float64(inst.Graph.Degree(v))
	}

	for _, theta := range thetas {
		for _, rate := range rates {
			cc := churn.Config{Rate: rate, Seed: opt.Seed, Policy: churn.Threshold}

			// Accuracy axis: churn the explicit edge set, then train on
			// the mutated graph under the pre-churn (stale) plan and a
			// refreshed one. The instance's features, labels and splits
			// are untouched — only adjacency drifts.
			minst, mutKey := inst, instKey
			if rate > 0 {
				gs := churn.NewGraphState(inst.Graph)
				for e := 0; e < epochs; e++ {
					gs.Mutate(cc, e)
				}
				mutated := *inst
				mutated.Graph = gs.Graph()
				minst = &mutated
				mutKey = fmt.Sprintf("%s|churn:%x:%d:%d", instKey, cc.Seed, epochs, int(rate*1e6))
			}
			cfg := gcn.Config{Epochs: trainEpochs, Seed: opt.Seed, LR: 0.005,
				Dropout: 0, QuantBits: 16}
			staleCfg, freshCfg := cfg, cfg
			if theta < 1 {
				staleCfg.Plan = mapping.NewUpdatePlan(preDegs, theta, stale)
				postDegs := make([]float64, minst.Graph.N)
				for v := range postDegs {
					postDegs[v] = float64(minst.Graph.Degree(v))
				}
				freshCfg.Plan = mapping.NewUpdatePlan(postDegs, theta, stale)
			}
			accStale := gcn.TrainMemo(mutKey, minst, staleCfg).Accuracy
			accFresh := accStale
			if theta < 1 && rate > 0 {
				accFresh = gcn.TrainMemo(mutKey, minst, freshCfg).Accuracy
			}

			// Makespan axis: the same churn stream through the full
			// robustness loop at paper scale (degree model), counting what
			// incremental re-mapping moved. No wear here — the sweep
			// isolates mapping/refresh costs; retirement has its own tests.
			w := accel.Workload{Dataset: d, Seed: opt.Seed, ThetaOverride: theta}
			cres, err := accel.RunChurn(w, cc, epochs)
			if err != nil {
				return nil, err
			}
			var meanMakespan float64
			for _, ep := range cres.Epochs {
				meanMakespan += ep.MakespanNS
			}
			meanMakespan /= float64(len(cres.Epochs))

			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%.0f%%", theta*100),
				fmt.Sprintf("%.4g%%", rate*100),
				fmtPct(accStale),
				fmtPct(accFresh),
				fmt.Sprintf("%+.2f pts", (accFresh-accStale)*100),
				fmt.Sprintf("%.3g ms", meanMakespan/1e6),
				fmt.Sprintf("%d", cres.StripesMoved),
				fmt.Sprintf("%d", cres.FullRemaps),
			})
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("Each cell streams %d churn epochs (seeded, deterministic); the accuracy columns train on the drifted graph with the pre-churn plan (stale) vs one recomputed from drifted degrees (refreshed).", epochs),
		"θ=100% rows train without ISU, so both accuracy columns coincide — they isolate pure churn damage to the graph signal.",
		"Makespan and re-mapping traffic come from the degree-model loop (accel.RunChurn) at the dataset's synthetic scale, wear disabled.")
	return res, nil
}
