package experiments

import (
	"strings"
	"testing"
)

// The sweep's rate-0 rows pin the static baseline: no stripes moved,
// no fallbacks, and both accuracy columns equal. Nonzero rates must
// show re-mapping traffic, and the table must be reproducible row for
// row (the churn streams are seed-keyed, not order-keyed).
func TestChurnsweepBaselinesAndTraffic(t *testing.T) {
	res, err := Run("churnsweep", fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 2 θ × 3 fast rates
		t.Fatalf("rows = %d, want 6:\n%v", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		if row[1] == "0%" {
			if row[6] != "0" || row[7] != "0" {
				t.Fatalf("rate-0 row shows re-mapping traffic: %v", row)
			}
			if row[2] != row[3] || row[4] != "+0.00 pts" {
				t.Fatalf("rate-0 row's stale and refreshed plans must coincide: %v", row)
			}
		} else if row[6] == "0" {
			t.Fatalf("churning row moved no stripes: %v", row)
		}
	}

	again, err := Run("churnsweep", fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if strings.Join(again.Rows[i], "|") != strings.Join(res.Rows[i], "|") {
			t.Fatalf("row %d not reproducible:\n%v\nvs\n%v", i, res.Rows[i], again.Rows[i])
		}
	}
}
