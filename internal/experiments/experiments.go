// Package experiments regenerates every table and figure of the
// paper's evaluation (§VII). Each experiment is a registered harness
// that runs the relevant workloads through the simulator (or the GCN
// training engine) and renders the same rows/series the paper reports,
// annotated with the paper's own numbers for side-by-side comparison.
//
// Absolute values differ from the paper (our substrate is an analytic
// reimplementation, not the authors' NeuroSim testbed); the shapes —
// who wins, by roughly what factor, where crossovers fall — are the
// reproduction target. See EXPERIMENTS.md for the recorded outcomes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"gopim/internal/obs"
	"gopim/internal/parallel"
)

// Harness metrics: the run count is fixed by the id list (Sim); the
// per-run timer measures real scheduling (Wall).
var (
	mExpRuns = obs.NewCounter("experiments.runs", obs.Sim,
		"experiment harness executions")
	mExpWall = obs.NewTimer("experiments.wall_ns",
		"wall time per experiment harness run")
)

// Options tunes an experiment run.
type Options struct {
	// Seed drives all synthetic graph generation.
	Seed int64
	// Fast shrinks workloads for smoke tests and benchmarks: smaller
	// graphs, fewer epochs, fewer sweep points. Headline shapes are
	// preserved.
	Fast bool
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string
	Title string
	// Paper summarises what the paper reports for this artifact.
	Paper  string
	Header []string
	Rows   [][]string
	// Notes records deviations and modelling caveats.
	Notes []string
}

// columns returns the table's column count: the header width, widened
// to the longest row. Every renderer lays out exactly this many cells
// per row, padding missing ones with empty strings, so ragged results
// render consistently (and without panics) in all three formats.
func (r *Result) columns() int {
	n := len(r.Header)
	for _, row := range r.Rows {
		if len(row) > n {
			n = len(row)
		}
	}
	return n
}

// padCells returns cells extended with empty strings to length n.
func padCells(cells []string, n int) []string {
	if len(cells) >= n {
		return cells
	}
	out := make([]string, n)
	copy(out, cells)
	return out
}

// Render writes the result as an aligned text table.
func (r *Result) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	ncols := r.columns()
	widths := make([]int, ncols)
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range padCells(cells, ncols) {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Runner regenerates one paper artifact.
type Runner func(Options) (*Result, error)

var registry = map[string]Runner{}

// register adds a harness; experiment files call it from init.
func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", id))
	}
	registry[id] = r
}

// IDs lists registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, opt Options) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	mExpRuns.Inc()
	t0 := obs.NowIfEnabled()
	sp := obs.StartSpan("experiment:" + id)
	res, err := r(opt)
	sp.End()
	mExpWall.ObserveSince(t0)
	return res, err
}

// RunAll executes the given experiments concurrently — each harness
// takes only its Options and derives every RNG from opt.Seed, so the
// fan-out is embarrassingly parallel — and returns results in the
// order the ids were given. Unknown ids fail before anything runs.
// Because results are collected by index and every harness is
// deterministic for a fixed seed, RunAll's output is identical at any
// worker count.
//
// On harness error the first error in id order is returned along with
// the results that did succeed (failed slots are nil).
func RunAll(ids []string, opt Options) ([]*Result, error) {
	return RunAllWithHooks(ids, opt, RunHooks{})
}

// RunHooks observes the experiment fan-out. Hooks ride alongside
// Options rather than inside it because Options is a cache key (the
// shared-predictor map) and must stay comparable. Both hooks may be
// called concurrently from worker goroutines; nil hooks are skipped.
type RunHooks struct {
	// OnStart fires as a harness begins executing.
	OnStart func(id string)
	// OnDone fires when it finishes, with its wall time and error.
	OnDone func(id string, wall time.Duration, err error)
}

// runPriority orders the all-run schedule so that harnesses whose
// training grids are supersets execute before harnesses that revisit a
// subset of the same cells: tab5 trains every dataset's vanilla +
// adaptive-θ ISU pair, which fig16's θ sweeps then extend with only
// their off-adaptive cells, and cora's single θ=0.8 row is covered
// entirely by fig16's Cora sweep. Scheduling is invisible in the
// output — results are collected by caller index and every harness
// derives its RNGs from Options alone — but with the sim memo warm the
// narrow sweeps collapse to their unshared cells instead of paying for
// the shared ones first. Unlisted ids keep their caller order (0).
var runPriority = map[string]int{
	"tab5":  -3, // broadest gcn grid: every eval dataset × (vanilla, adaptive-θ ISU)
	"cora":  -2, // pays the Cora vanilla + θ=0.8 cells (tab5's grid has no Cora)
	"fig16": -1, // θ grids then add only their off-adaptive cells
}

// RunAllWithHooks is RunAll with per-experiment lifecycle callbacks —
// the CLI's -progress reporting and run-manifest timings hang off it.
func RunAllWithHooks(ids []string, opt Options, hooks RunHooks) ([]*Result, error) {
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
				id, strings.Join(IDs(), ", "))
		}
	}
	// schedule[k] is the caller index of the k-th harness to start;
	// see runPriority for why the start order differs from ids order.
	schedule := make([]int, len(ids))
	for i := range schedule {
		schedule[i] = i
	}
	sort.SliceStable(schedule, func(a, b int) bool {
		return runPriority[ids[schedule[a]]] < runPriority[ids[schedule[b]]]
	})
	type outcome struct {
		res *Result
		err error
	}
	outs := parallel.Map(len(ids), func(k int) outcome {
		id := ids[schedule[k]]
		if hooks.OnStart != nil {
			hooks.OnStart(id)
		}
		var t0 time.Time
		if hooks.OnDone != nil {
			t0 = time.Now()
		}
		res, err := Run(id, opt)
		if hooks.OnDone != nil {
			hooks.OnDone(id, time.Since(t0), err)
		}
		return outcome{res: res, err: err}
	})
	results := make([]*Result, len(ids))
	errs := make([]error, len(ids))
	for k, o := range outs {
		results[schedule[k]] = o.res
		errs[schedule[k]] = o.err
	}
	var firstErr error
	for i, err := range errs {
		if err != nil {
			firstErr = fmt.Errorf("experiments: %s: %w", ids[i], err)
			break
		}
	}
	return results, firstErr
}

// fmtX formats a speedup/ratio like the paper ("12.3x").
func fmtX(v float64) string { return fmt.Sprintf("%.1fx", v) }

// fmtPct formats a fraction as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// fmtF formats a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }
