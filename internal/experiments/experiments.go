// Package experiments regenerates every table and figure of the
// paper's evaluation (§VII). Each experiment is a registered harness
// that runs the relevant workloads through the simulator (or the GCN
// training engine) and renders the same rows/series the paper reports,
// annotated with the paper's own numbers for side-by-side comparison.
//
// Absolute values differ from the paper (our substrate is an analytic
// reimplementation, not the authors' NeuroSim testbed); the shapes —
// who wins, by roughly what factor, where crossovers fall — are the
// reproduction target. See EXPERIMENTS.md for the recorded outcomes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options tunes an experiment run.
type Options struct {
	// Seed drives all synthetic graph generation.
	Seed int64
	// Fast shrinks workloads for smoke tests and benchmarks: smaller
	// graphs, fewer epochs, fewer sweep points. Headline shapes are
	// preserved.
	Fast bool
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string
	Title string
	// Paper summarises what the paper reports for this artifact.
	Paper  string
	Header []string
	Rows   [][]string
	// Notes records deviations and modelling caveats.
	Notes []string
}

// Render writes the result as an aligned text table.
func (r *Result) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Runner regenerates one paper artifact.
type Runner func(Options) (*Result, error)

var registry = map[string]Runner{}

// register adds a harness; experiment files call it from init.
func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", id))
	}
	registry[id] = r
}

// IDs lists registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, opt Options) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return r(opt)
}

// fmtX formats a speedup/ratio like the paper ("12.3x").
func fmtX(v float64) string { return fmt.Sprintf("%.1fx", v) }

// fmtPct formats a fraction as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// fmtF formats a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }
