package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

var fastOpt = Options{Seed: 1, Fast: true}

func TestIDsComplete(t *testing.T) {
	want := []string{"abl", "churnsweep", "cora", "faultsweep", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig4", "fig5", "fig6", "fig7",
		"fig9", "gen", "tab5", "tab6", "tab7"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", fastOpt); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRenderShape(t *testing.T) {
	res, err := Run("fig7", fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig7", "OSU", "ISU", "paper:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}

// fig7 is fully deterministic: the paper's toy example must reproduce
// exactly.
func TestFig7ExactCycles(t *testing.T) {
	res, err := Run("fig7", fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"full update":               "4",
		"OSU (index + θ=0.5)":       "4",
		"ISU (interleaved + θ=0.5)": "2",
	}
	for _, row := range res.Rows {
		if w, ok := want[row[0]]; ok && row[1] != w {
			t.Fatalf("%s = %s cycles, want %s (paper Figs. 7/12)", row[0], row[1], w)
		}
	}
}

// fig5's worked example must show case (c) beating case (b).
func TestFig5Ordering(t *testing.T) {
	res, err := Run("fig5", fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 cases, got %d", len(res.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, " units"), 64)
		if err != nil {
			t.Fatalf("bad time cell %q", s)
		}
		return v
	}
	a := parse(res.Rows[0][1])
	b := parse(res.Rows[1][1])
	c := parse(res.Rows[2][1])
	if !(c < b && b < a) {
		t.Fatalf("want (c) < (b) < (a), got %v %v %v", a, b, c)
	}
}

// fig4 must show combination-stage crossbars idling ≳90%.
func TestFig4IdleRegime(t *testing.T) {
	res, err := Run("fig4", fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[0] == "average" {
			for _, cell := range row[1:] {
				if cell == "" {
					continue
				}
				v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
				if err != nil {
					t.Fatalf("bad cell %q", cell)
				}
				if v < 90 {
					t.Fatalf("average CO idle %v%%, want ≥90%% (paper ≈98%%)", v)
				}
			}
		}
	}
}

// fig13 must have GoPIM as the largest speedup in every dataset row.
func TestFig13GoPIMWins(t *testing.T) {
	res, err := Run("fig13", fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	parseX := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	seen := 0
	for _, row := range res.Rows {
		if row[1] != "speedup" {
			continue
		}
		seen++
		gopim := parseX(row[len(row)-1])
		for _, cell := range row[2 : len(row)-1] {
			if parseX(cell) > gopim {
				t.Fatalf("row %v: GoPIM (%v) must lead", row, gopim)
			}
		}
	}
	if seen < 6 { // five datasets + average
		t.Fatalf("only %d speedup rows", seen)
	}
}

// raceSkip lists experiments whose fast mode still spends minutes in
// MLP/GCN training; under the race detector's ~10× slowdown they blow
// the per-package test timeout on small machines. Their parallel
// kernels stay race-checked through the remaining sweep (gen, tab7,
// fig13, …) and through the kernel packages' own -race tests.
var raceSkip = map[string]string{
	"fig9":  "trains 11 predictor variants",
	"fig16": "sensitivity sweep re-simulates every point",
	"tab5":  "trains GCNs to convergence",
	"cora":  "trains GCNs to convergence",
}

// All remaining experiments must at least run and produce non-empty
// tables in fast mode.
func TestAllExperimentsRunFast(t *testing.T) {
	if testing.Short() {
		t.Skip("fast-mode sweep still trains predictors and GCNs")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if raceDetectorEnabled {
				if why, ok := raceSkip[id]; ok {
					t.Skipf("skipped under -race: %s", why)
				}
			}
			res, err := Run(id, fastOpt)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id || res.Title == "" || len(res.Header) == 0 || len(res.Rows) == 0 {
				t.Fatalf("degenerate result: %+v", res)
			}
			for _, row := range res.Rows {
				if len(row) > len(res.Header) {
					t.Fatalf("row wider than header: %v", row)
				}
			}
			var buf bytes.Buffer
			if err := res.Render(&buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRenderFormats(t *testing.T) {
	res, err := Run("fig7", fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, mdBuf bytes.Buffer
	if err := res.RenderAs(&csvBuf, FormatCSV); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "scheme,update cycles") {
		t.Fatalf("csv output wrong:\n%s", csvBuf.String())
	}
	if err := res.RenderAs(&mdBuf, FormatMarkdown); err != nil {
		t.Fatal(err)
	}
	md := mdBuf.String()
	if !strings.Contains(md, "| scheme |") || !strings.Contains(md, "| --- |") {
		t.Fatalf("markdown output wrong:\n%s", md)
	}
	if err := res.RenderAs(&mdBuf, Format("xml")); err == nil {
		t.Fatal("expected error for unknown format")
	}
	if err := res.RenderAs(&mdBuf, "md"); err != nil {
		t.Fatal("md alias should work")
	}
	if err := res.RenderAs(&mdBuf, ""); err != nil {
		t.Fatal("empty format should default to text")
	}
}
