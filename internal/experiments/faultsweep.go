package experiments

import (
	"fmt"

	"gopim/internal/fault"
	"gopim/internal/gcn"
	"gopim/internal/graphgen"
	"gopim/internal/mapping"
	"gopim/internal/reram"
)

func init() {
	register("faultsweep", faultsweep)
}

// faultsweep measures GCN accuracy degradation under the ReRAM fault
// model of internal/fault: a stuck-at cell rate × θ grid on ddi, with
// the hardware-side costs (write-retry factor, retired-crossbar
// fraction) alongside. The sweep builds its own models from opt.Seed,
// independent of any process-wide -fault-rate default, so its rows are
// a pure function of (seed, fast) like every other experiment.
func faultsweep(opt Options) (*Result, error) {
	d, err := graphgen.ByName("ddi")
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "faultsweep",
		Title:  "GCN accuracy vs stuck-at cell fault rate (× θ), with write-retry and retirement costs",
		Paper:  "robustness extension (not in the paper): ReRAM stuck-at faults per §IV-A endurance limits",
		Header: []string{"θ", "fault rate", "accuracy", "Δ vs fault-free", "write retry", "crossbars retired"},
	}
	rates := []float64{0, 1e-3, 5e-3, 1e-2}
	if opt.Fast {
		rates = []float64{0, 1e-3, 1e-2}
	}
	thetas := []float64{1.0, 0.5}

	maxV, epochs := trainSize(opt)
	inst, instKey := instanceFor(d, opt.Seed+int64(len(d.Name)), maxV)
	degs := make([]float64, inst.Graph.N)
	for v := range degs {
		degs[v] = float64(inst.Graph.Degree(v))
	}
	stale := epochs / 5
	if stale < 3 {
		stale = 3
	}
	chip := reram.DefaultChip()

	for _, theta := range thetas {
		var baseline float64
		for _, rate := range rates {
			// Rate 0 still passes an explicit (disabled) model so the
			// sweep never falls through to the process-wide default.
			fm := fault.MustNew(fault.Config{Rate: rate, Seed: opt.Seed})
			retry, retired := 1.0, 0.0
			if fm.Enabled() {
				retry = fm.RetryFactor(chip.CrossbarCols)
				retired = fm.RetiredFraction(chip.CellsPerCrossbar())
			}
			cfg := gcn.Config{Epochs: epochs, Seed: opt.Seed, LR: 0.005,
				Dropout: 0, QuantBits: 16, Fault: fm}
			if theta < 1 {
				cfg.Plan = mapping.NewUpdatePlan(degs, theta, stale)
			}
			r := gcn.TrainMemo(instKey, inst, cfg)
			if rate == 0 {
				baseline = r.Accuracy
			}
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%.0f%%", theta*100),
				fmt.Sprintf("%.0e", rate),
				fmtPct(r.Accuracy),
				fmt.Sprintf("%+.2f pts", (r.Accuracy-baseline)*100),
				fmtX(retry),
				fmtPct(retired),
			})
		}
	}
	res.Notes = append(res.Notes,
		"All rows train at the Table II 16-bit width so the Δ column isolates the stuck-cell damage; rate 0 is the per-θ baseline.",
		"Retry factor is the expected write-verify attempts per row (§IV-A endurance motivates verify-on-write); retired crossbars shrink the replication pool before allocation.")
	return res, nil
}
