package experiments

import (
	"strings"
	"testing"

	"gopim/internal/fault"
)

// The sweep's rate-0 rows are its own per-θ baselines (Δ = +0.00) and
// the whole table must be independent of the process-wide fault
// default — the CLI flags must not leak into experiment results.
func TestFaultsweepBaselinesAndIsolation(t *testing.T) {
	res, err := Run("faultsweep", fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 2 θ × 3 fast rates
		t.Fatalf("rows = %d, want 6:\n%v", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		if row[1] == "0e+00" && row[3] != "+0.00 pts" {
			t.Fatalf("rate-0 row is its own baseline, got Δ %q", row[3])
		}
	}

	fault.SetDefault(fault.MustNew(fault.Config{Rate: 0.05, Seed: 777}))
	defer fault.SetDefault(nil)
	again, err := Run("faultsweep", fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if strings.Join(again.Rows[i], "|") != strings.Join(res.Rows[i], "|") {
			t.Fatalf("row %d changed under a process-wide fault default:\n%v\nvs\n%v",
				i, res.Rows[i], again.Rows[i])
		}
	}
}

// Faults must actually cost accuracy at the sweep's top rate — the
// point of the experiment is a visible degradation curve.
func TestFaultsweepDegrades(t *testing.T) {
	res, err := Run("faultsweep", fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	sawDegradation := false
	for _, row := range res.Rows {
		if strings.HasPrefix(row[3], "-") {
			sawDegradation = true
		}
		if row[1] != "0e+00" && row[4] == "1.0x" && row[5] == "0.00%" {
			t.Fatalf("faulty row shows no hardware cost: %v", row)
		}
	}
	if !sawDegradation {
		t.Log("no negative Δ at fast scale — acceptable, but flagging for full runs")
	}
}
