package experiments

import (
	"fmt"

	"gopim/internal/graphgen"
	"gopim/internal/predictor"
)

func init() {
	register("gen", generalization)
}

// generalization reproduces the paper's §VII-G model-generalisability
// study: train the time predictor on all datasets but one, predict the
// held-out dataset's stage times, and report the prediction accuracy
// (1 − mean relative error). The paper reports 93.4% on average.
func generalization(opt Options) (*Result, error) {
	res := &Result{
		ID:     "gen",
		Title:  "Predictor generalisation to unseen datasets (leave-one-out)",
		Paper:  "average prediction accuracy 93.4% on unseen datasets",
		Header: []string{"held-out dataset", "prediction accuracy", "test samples"},
	}
	catalog := graphgen.Catalog()
	folds := catalog
	// Scales down to 1% give the profiles small-N/high-degree (dense)
	// coverage, without which a held-out ddi — the only low-sparsity
	// dataset — sits outside the training distribution.
	spec := predictor.ProfileSpec{
		Seed:         opt.Seed,
		Scales:       []float64{0.01, 0.05, 0.3, 1.0},
		HiddenWidths: []int{256},
		MicroBatches: []int{32, 64},
		MaxVertices:  80_000,
	}
	if opt.Fast {
		folds = catalog[:3]
		spec.Scales = []float64{0.05, 1.0}
		spec.HiddenWidths = []int{256}
		spec.MicroBatches = []int{32, 64}
		spec.MaxVertices = 20_000
	}

	var accSum float64
	var accN int
	for _, fold := range predictor.LeaveOneOut(spec, catalog, folds) {
		accSum += fold.Accuracy
		accN++
		res.Rows = append(res.Rows, []string{
			fold.Dataset, fmtPct(fold.Accuracy), fmt.Sprintf("%d", fold.TestSamples),
		})
	}
	if accN > 0 {
		res.Rows = append(res.Rows, []string{"average", fmtPct(accSum / float64(accN)), ""})
	}
	res.Notes = append(res.Notes,
		"Prediction accuracy is 1 − mean(|predicted − simulated| / simulated) over every stage sample of the held-out dataset.")
	return res, nil
}
