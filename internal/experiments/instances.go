package experiments

import (
	"fmt"

	"gopim/internal/graphgen"
	"gopim/internal/simmemo"
)

// instanceCache memoizes synthesized training instances: the accuracy
// sweeps (tab5, fig16, faultsweep, cora) and the θ tuner all
// re-synthesize the same (dataset, seed, maxVertices) instance per
// sweep cell. Synthesis is deterministic in that tuple and bumps no
// Sim counters, so sharing is snapshot-neutral; instances are treated
// as read-only everywhere (training never mutates one, and the lazy
// NormAdj caches on Graph are sync.Once-guarded).
var instanceCache = simmemo.NewCache("instance", 128)

// instanceFor returns the instance for (d, seed, maxV) plus the memo
// key that uniquely identifies its content — the same key gcn.TrainMemo
// needs to reuse training runs on it.
func instanceFor(d graphgen.Dataset, seed int64, maxV int) (*graphgen.Instance, string) {
	key := fmt.Sprintf("%+v|%d|%d", d, seed, maxV)
	inst := simmemo.Do(instanceCache, key, func() *graphgen.Instance {
		return d.Synthesize(seed, maxV)
	})
	return inst, key
}
