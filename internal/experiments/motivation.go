package experiments

import (
	"fmt"

	"gopim/internal/accel"
	"gopim/internal/alloc"
	"gopim/internal/graphgen"
	"gopim/internal/mapping"
	"gopim/internal/pipeline"
	"gopim/internal/stage"
)

func init() {
	register("fig4", fig4)
	register("fig5", fig5)
	register("fig6", fig6)
	register("fig7", fig7)
}

// motivationDatasets returns the six OGB datasets of the motivation
// study, shrunk in Fast mode.
func motivationDatasets(opt Options) []graphgen.Dataset {
	ds := graphgen.MotivationSix()
	if opt.Fast {
		for i := range ds {
			if ds[i].PaperVertices > 50_000 {
				ds[i].PaperVertices = 50_000
			}
		}
	}
	return ds
}

// fig4 reproduces the idle-time percentages of the crossbars per
// forward-pass stage under the SlimGNN-like pipeline.
func fig4(opt Options) (*Result, error) {
	res := &Result{
		ID:     "fig4",
		Title:  "Idle time percentage of crossbars per stage (SlimGNN-like pipeline)",
		Paper:  "XBS1/XBS3/XBS5 (Combination-stage crossbars) idle 98.47%/97.50%/99.03% on average across six datasets",
		Header: []string{"dataset", "XBS1(CO1)", "XBS2(AG1)", "XBS3(CO2)", "XBS4(AG2)", "XBS5(CO3)", "XBS6(AG3)"},
	}
	var coSum [3]float64
	var coCount [3]int
	for _, d := range motivationDatasets(opt) {
		// The motivation study profiles the forward pipeline without
		// replica optimisation, so use the naive pipelined accelerator.
		r := accel.Run(accel.PlusPP, accel.Workload{Dataset: d, Seed: opt.Seed})
		row := []string{d.Name}
		forward := 0
		for i, name := range r.StageNames {
			if name[0] != 'C' && name[0] != 'A' {
				continue
			}
			row = append(row, fmtPct(r.IdleFrac[i]))
			if name[0] == 'C' && forward/2 < 3 {
				coSum[forward/2] += r.IdleFrac[i]
				coCount[forward/2]++
			}
			forward++
		}
		for len(row) < len(res.Header) {
			row = append(row, "-") // 2-layer models have no stage 5/6
		}
		res.Rows = append(res.Rows, row)
	}
	avgRow := []string{"average"}
	for i := 0; i < 3; i++ {
		if coCount[i] > 0 {
			avgRow = append(avgRow, fmtPct(coSum[i]/float64(coCount[i])), "")
		}
	}
	res.Rows = append(res.Rows, avgRow)
	res.Notes = append(res.Notes,
		"Combination-stage crossbars idle the vast majority of the time because aggregation dominates the pipeline interval.")
	return res, nil
}

// fig5 reproduces the worked allocation example: two stages with times
// 1:6, two micro-batches per batch over four batches, three spare
// crossbars.
func fig5(opt Options) (*Result, error) {
	times := []float64{1, 6}
	const b = 8
	cases := []struct {
		name     string
		replicas []int
	}{
		{"(a) no replicas", []int{1, 1}},
		{"(b) ReGraphX 1:2", []int{2, 3}},
		{"(c) GoPIM: all to stage 2", []int{1, 4}},
	}
	res := &Result{
		ID:     "fig5",
		Title:  "Unused-crossbar allocation worked example (stage times 1:6)",
		Paper:  "52 time units (a) → −34 units at 1:2 (b) → −36 units with all replicas on stage 2 (c); improvement 65.4% → 69.2%",
		Header: []string{"case", "pipeline time", "improvement"},
	}
	base := 0.0
	for _, c := range cases {
		r := pipeline.Simulate(pipeline.Input{
			TimesNS: times, Replicas: c.replicas, MicroBatches: b,
			Mode: pipeline.IntraInterBatch,
		})
		if base == 0 {
			base = r.MakespanNS
		}
		res.Rows = append(res.Rows, []string{
			c.name,
			fmt.Sprintf("%.1f units", r.MakespanNS),
			fmtPct(1 - r.MakespanNS/base),
		})
	}
	res.Notes = append(res.Notes,
		"The figure's absolute 52 units include its drawing's batch arrival pattern; the ordering and the (c) > (b) improvement gap are the claim under test.")
	return res, nil
}

// fig6 reproduces the per-crossbar average-degree skew of index-based
// mapping.
func fig6(opt Options) (*Result, error) {
	res := &Result{
		ID:     "fig6",
		Title:  "Average degree of vertices mapped per crossbar (index-based mapping)",
		Paper:  "ddi 151.8–827.4, proteins 1.6–2266.8, ppa 1–1716.9",
		Header: []string{"dataset", "min avg deg", "max avg deg", "max/min", "interleaved min", "interleaved max"},
	}
	for _, d := range motivationDatasets(opt) {
		deg := d.SynthDegreeModel(opt.Seed)
		idx := mapping.IndexLayout(deg.N, 64)
		lo, hi := mapping.MinMax(idx.GroupAvgDegrees(deg.DegreesByIndex))
		il := mapping.InterleavedLayout(deg.DegreesByIndex, 64)
		ilo, ihi := mapping.MinMax(il.GroupAvgDegrees(deg.DegreesByIndex))
		ratio := hi / lo
		if lo == 0 {
			ratio = hi
		}
		res.Rows = append(res.Rows, []string{
			d.Name, fmtF(lo), fmtF(hi), fmtF(ratio), fmtF(ilo), fmtF(ihi),
		})
	}
	res.Notes = append(res.Notes,
		"Interleaved mapping (paper Fig. 11) collapses the spread; index order leaves orders-of-magnitude skew on power-law graphs.")
	return res, nil
}

// fig7 reproduces the OSU/ISU worked example: eight vertices with
// degrees 300, 500, 250, 450, 2, 15, 10, 1 on two 4-row crossbars,
// θ = 0.5.
func fig7(Options) (*Result, error) {
	degs := []float64{300, 500, 250, 450, 2, 15, 10, 1}
	plan := mapping.NewUpdatePlan(degs, 0.5, 20)
	osu := mapping.IndexLayout(len(degs), 4)
	isu := mapping.InterleavedLayout(degs, 4)
	full := mapping.FullUpdatePlan(len(degs))

	res := &Result{
		ID:     "fig7",
		Title:  "Selective updating worked example (Figs. 7 and 12)",
		Paper:  "no sparsification: 4 cycles; OSU (index mapping): still 4 cycles; ISU (interleaved): 2 cycles",
		Header: []string{"scheme", "update cycles (slowest crossbar)"},
		Rows: [][]string{
			{"full update", fmt.Sprintf("%d", osu.MaxUpdatedRows(full, 1))},
			{"OSU (index + θ=0.5)", fmt.Sprintf("%d", osu.MaxUpdatedRows(plan, 1))},
			{"ISU (interleaved + θ=0.5)", fmt.Sprintf("%d", isu.MaxUpdatedRows(plan, 1))},
		},
	}
	return res, nil
}

// fig5Alloc demonstrates Algorithm 1 solving the Fig. 5 instance; kept
// exported for the allocator example.
func fig5Alloc() alloc.Result {
	return alloc.Greedy(alloc.Request{
		TimesNS:      []float64{1, 6},
		Crossbars:    []int{1, 1},
		Replicable:   []bool{true, true},
		Kinds:        []stage.Kind{stage.Combination, stage.Aggregation},
		Budget:       3,
		MicroBatches: 8,
	})
}
