package experiments

import (
	"fmt"

	"gopim/internal/accel"
	"gopim/internal/graphgen"
)

func init() {
	register("fig13", fig13)
	register("fig14", fig14)
	register("fig15", fig15)
	register("tab6", tab6)
	register("tab7", tab7)
}

// evalDatasets returns the five headline datasets, shrunk in Fast mode.
func evalDatasets(opt Options) []graphgen.Dataset {
	ds := graphgen.EvalFive()
	if opt.Fast {
		for i := range ds {
			if ds[i].PaperVertices > 50_000 {
				ds[i].PaperVertices = 50_000
			}
		}
	}
	return ds
}

// fig13 reproduces the headline comparison: end-to-end speedup (a) and
// energy saving (b) of each accelerator, normalised to Serial.
func fig13(opt Options) (*Result, error) {
	res := &Result{
		ID:    "fig13",
		Title: "Overall speedup (a) and energy saving (b) vs Serial",
		Paper: "GoPIM avg speedups: 727.6x vs Serial, 2.1x vs SlimGNN-like, 2.4x vs ReGraphX, 45.1x vs ReFlip, 1.5x vs Vanilla; avg energy saving 4.0x vs Serial",
		Header: []string{"dataset", "metric", "SlimGNN-like", "ReGraphX", "ReFlip",
			"GoPIM-Vanilla", "GoPIM"},
	}
	kinds := []accel.Kind{accel.SlimGNNLike, accel.ReGraphX, accel.ReFlip, accel.GoPIMVanilla, accel.GoPIM}
	type agg struct{ sp, en float64 }
	sums := make([]agg, len(kinds))
	n := 0
	for _, d := range evalDatasets(opt) {
		w := accel.Workload{Dataset: d, Seed: opt.Seed}
		serial := accel.Run(accel.Serial, w)
		spRow := []string{d.Name, "speedup"}
		enRow := []string{"", "energy saving"}
		for i, k := range kinds {
			r := accel.Run(k, w)
			sp := accel.Speedup(serial, r)
			en := accel.EnergySaving(serial, r)
			spRow = append(spRow, fmtX(sp))
			enRow = append(enRow, fmtX(en))
			sums[i].sp += sp
			sums[i].en += en
		}
		n++
		res.Rows = append(res.Rows, spRow, enRow)
	}
	avgSp := []string{"average", "speedup"}
	avgEn := []string{"", "energy saving"}
	for i := range kinds {
		avgSp = append(avgSp, fmtX(sums[i].sp/float64(n)))
		avgEn = append(avgEn, fmtX(sums[i].en/float64(n)))
	}
	res.Rows = append(res.Rows, avgSp, avgEn)
	res.Notes = append(res.Notes,
		"All entries are normalised to the Serial baseline on the same synthetic dataset.",
		"ReFlip's energy is write-reload-bound on dense graphs (worse than Serial on ddi) but cheap on sparse ones — a larger saving than the paper reports there.")
	return res, nil
}

// fig14 reproduces the ablation: Serial → +PP → +ISU → full GoPIM.
func fig14(opt Options) (*Result, error) {
	res := &Result{
		ID:     "fig14",
		Title:  "Impact of individual techniques (+PP, +ISU, ML-based allocation)",
		Paper:  "+PP 2.6x on ddi; full GoPIM 3472x on ddi; energy reductions up to 62%/75%/79% for +PP/+ISU/GoPIM",
		Header: []string{"dataset", "metric", "+PP", "+ISU", "GoPIM"},
	}
	kinds := []accel.Kind{accel.PlusPP, accel.PlusISU, accel.GoPIM}
	for _, d := range evalDatasets(opt) {
		w := accel.Workload{Dataset: d, Seed: opt.Seed}
		serial := accel.Run(accel.Serial, w)
		spRow := []string{d.Name, "speedup"}
		enRow := []string{"", "energy reduction"}
		for _, k := range kinds {
			r := accel.Run(k, w)
			spRow = append(spRow, fmtX(accel.Speedup(serial, r)))
			enRow = append(enRow, fmtPct(1-r.EnergyPJ()/serial.EnergyPJ()))
		}
		res.Rows = append(res.Rows, spRow, enRow)
	}
	return res, nil
}

// fig15 reproduces the idle-percentage comparison between the naive
// pipelined accelerator and GoPIM across micro-batch sizes on ddi.
func fig15(opt Options) (*Result, error) {
	d, err := graphgen.ByName("ddi")
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig15",
		Title:  "Crossbar idle percentage: Naive vs GoPIM across micro-batch sizes (ddi)",
		Paper:  "average idle reduction 46.75%/49.75%/51.75% for micro-batches 32/64/128",
		Header: []string{"micro-batch", "naive avg idle", "GoPIM avg idle", "reduction"},
	}
	for _, mb := range []int{32, 64, 128} {
		w := accel.Workload{Dataset: d, Seed: opt.Seed, MicroBatch: mb}
		naive := accel.Run(accel.PlusPP, w)
		gopim := accel.Run(accel.GoPIM, w)
		avg := func(r accel.Report) float64 {
			var s float64
			for _, f := range r.IdleFrac {
				s += f
			}
			return s / float64(len(r.IdleFrac))
		}
		ni, gi := avg(naive), avg(gopim)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", mb), fmtPct(ni), fmtPct(gi), fmtPct(ni - gi),
		})
	}
	return res, nil
}

// tab6 reproduces the crossbar allocation details on ddi.
func tab6(opt Options) (*Result, error) {
	d, err := graphgen.ByName("ddi")
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "tab6",
		Title:  "Crossbar allocation details on ddi (replica and crossbar counts per stage)",
		Paper:  "Serial: replicas all 1, crossbars [32,534,32,534,32,534,32,534], total 2264; GoPIM: replicas [59,364,60,616,61,487,61,484], total 1,046,852",
		Header: []string{"method", "stage", "replicas", "crossbars"},
	}
	for _, k := range []accel.Kind{accel.Serial, accel.GoPIM} {
		r := accel.Run(k, accel.Workload{Dataset: d, Seed: opt.Seed})
		total := 0
		for i, name := range r.StageNames {
			xb := r.Replicas[i] * r.CrossbarsPerStage[i]
			total += xb
			res.Rows = append(res.Rows, []string{
				k.String(), name,
				fmt.Sprintf("%d", r.Replicas[i]),
				fmt.Sprintf("%d", xb),
			})
		}
		res.Rows = append(res.Rows, []string{k.String(), "total", "", fmt.Sprintf("%d", total)})
	}
	res.Notes = append(res.Notes,
		"GC stages run on the SRAM weight manager here, so their crossbar count is 0 (the paper maps them like CO stages).",
		"Aggregation stages receive far more replicas than combination stages, matching the paper's allocation pattern.")
	return res, nil
}

// tab7 compares ML-predicted allocation against profiled (oracle)
// allocation.
func tab7(opt Options) (*Result, error) {
	res := &Result{
		ID:     "tab7",
		Title:  "Speedups (vs Serial) of ML-based vs profiling-based allocation",
		Paper:  "ML within 4.3% of profiling on every dataset (e.g. ddi 3454.31 vs 3469.17)",
		Header: []string{"dataset", "ML", "profiling", "gap"},
	}
	pred := trainSharedPredictor(opt)
	for _, d := range evalDatasets(opt) {
		w := accel.Workload{Dataset: d, Seed: opt.Seed}
		serial := accel.Run(accel.Serial, w)
		profiled := accel.Run(accel.GoPIM, w)

		wML := w
		wML.PredictedTimes = predictTimesFor(pred, w)
		ml := accel.Run(accel.GoPIM, wML)

		spML := accel.Speedup(serial, ml)
		spProf := accel.Speedup(serial, profiled)
		res.Rows = append(res.Rows, []string{
			d.Name, fmtX(spML), fmtX(spProf),
			fmtPct(1 - spML/spProf),
		})
	}
	res.Notes = append(res.Notes,
		"The ML column allocates replicas from MLP-predicted stage times; the profiling column uses the simulator's true times. Both schedules are evaluated with true times.")
	return res, nil
}
