package experiments

import (
	"sync"
	"testing"

	"gopim/internal/parallel"
)

// TestSharedPredictorCacheDeterministicCounts pins the predictor
// cache's determinism contract after the single-flight conversion:
// whatever the worker count and however the callers interleave,
// exactly one miss is counted per distinct Options key and every other
// lookup is a hit — so experiments.predictor_cache_hits/misses stay
// byte-identical across 1/2/8-worker runs. It also checks that every
// caller for a key gets the same trained model (no duplicated
// training).
func TestSharedPredictorCacheDeterministicCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("trains MLP predictors")
	}
	defer parallel.SetWorkers(0)

	// Distinct seeds far from other tests' keys so this test's misses
	// are its own even if another test already warmed the cache.
	keys := []Options{
		{Seed: 90101, Fast: true},
		{Seed: 90102, Fast: true},
	}
	const callersPerKey = 8

	for _, workers := range []int{1, 2, 8} {
		parallel.SetWorkers(workers)
		// Fresh keys per worker count: shift seeds so every round
		// trains anew rather than hitting the previous round's cache.
		round := make([]Options, len(keys))
		for i, k := range keys {
			round[i] = Options{Seed: k.Seed + int64(workers)*1000, Fast: true}
		}

		hits0, misses0 := mPredCacheHits.Value(), mPredCacheMisses.Value()
		var wg sync.WaitGroup
		models := make([]any, len(round)*callersPerKey)
		for i := range models {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				models[i] = trainSharedPredictor(round[i%len(round)])
			}()
		}
		wg.Wait()

		misses := mPredCacheMisses.Value() - misses0
		hits := mPredCacheHits.Value() - hits0
		wantMisses := int64(len(round))
		wantHits := int64(len(round)*callersPerKey) - wantMisses
		if misses != wantMisses || hits != wantHits {
			t.Fatalf("workers=%d: misses=%d hits=%d, want misses=%d hits=%d (scheduling leaked into the totals)",
				workers, misses, hits, wantMisses, wantHits)
		}
		for i := range models {
			if models[i] != models[i%len(round)] {
				t.Fatalf("workers=%d: caller %d got a different model than the first caller of its key", workers, i)
			}
		}
	}
}
