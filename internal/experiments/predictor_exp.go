package experiments

import (
	"fmt"

	"gopim/internal/accel"
	"gopim/internal/graphgen"
	"gopim/internal/obs"
	"gopim/internal/predictor"
	"gopim/internal/reram"
	"gopim/internal/singleflight"
	"gopim/internal/stage"
)

// Cache metrics for the shared time predictor. Both counts are
// deterministic despite the concurrent fan-out: the single-flight
// cache runs exactly one training per Options key — every concurrent
// caller for that key coalesces onto it and counts as a hit — so the
// totals depend only on which experiments run, never on scheduling or
// worker count.
var (
	mPredCacheHits = obs.NewCounter("experiments.predictor_cache_hits", obs.Sim,
		"shared-predictor lookups answered from the cache")
	mPredCacheMisses = obs.NewCounter("experiments.predictor_cache_misses", obs.Sim,
		"shared-predictor lookups that trained a new model")
)

func init() {
	register("fig9", fig9)
}

// profileSpec builds the predictor's profile-generation sweep. The
// full-mode sweep is sized to the paper's ~2 200-sample profile corpus
// (§V-A); Fast mode shrinks it further for smoke runs.
func profileSpec(opt Options) predictor.ProfileSpec {
	spec := predictor.ProfileSpec{
		Seed:         opt.Seed,
		Scales:       []float64{0.2, 1.0},
		HiddenWidths: []int{64, 128, 256},
		MicroBatches: []int{16, 32, 64, 128},
		MaxVertices:  150_000,
	}
	if opt.Fast {
		spec.Datasets = fastDatasets("ddi", "collab", "Cora")
		spec.Scales = []float64{0.2, 1}
		spec.HiddenWidths = []int{64, 256}
		spec.MicroBatches = []int{32, 64}
		spec.MaxVertices = 20_000
	}
	return spec
}

func fastDatasets(names ...string) []graphgen.Dataset {
	out := make([]graphgen.Dataset, 0, len(names))
	for _, n := range names {
		d, err := graphgen.ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, d)
	}
	return out
}

// fig9 reproduces the predictor bake-off: (a) RMSE across model
// families, (b) RMSE vs MLP depth, (c) RMSE vs hidden width.
func fig9(opt Options) (*Result, error) {
	spec := profileSpec(opt)
	samples := predictor.Generate(spec)
	train, test := predictor.SplitTrainTest(samples, 0.2)
	// The RMSE memo key must determine (model, train, test): the spec
	// fingerprint pins the profile corpus (and with it the 8:2 split),
	// the suffix pins the model variant. VariantKey canonicalises the
	// suffix, so the three sweep axes that all name the default MLP
	// (family "MLP", 3 layers, 256 neurons) train once and share.
	specKey := fmt.Sprintf("%+v", spec)

	res := &Result{
		ID:     "fig9",
		Title:  "Execution-time predictor comparison (RMSE, normalised log-time)",
		Paper:  "MLP beats XGB/SVR/DT/LR/BR; 3 layers best; 256 hidden neurons best; RMSE ≈ 0.0022",
		Header: []string{"variant", "model", "RMSE"},
	}

	// (a) model families.
	for _, m := range predictor.Fig9Models() {
		rmse := predictor.ModelRMSECached(specKey+"|"+predictor.VariantKey("family:"+m.Name, m.New), m.New, train, test)
		res.Rows = append(res.Rows, []string{"(a) family", m.Name, fmtF(rmse)})
	}

	// (b) MLP depth sweep 2–6 total layers.
	depths := []int{2, 3, 4, 5, 6}
	if opt.Fast {
		depths = []int{2, 3, 4}
	}
	for _, depth := range depths {
		d := depth
		mk := func() predictor.Regressor { return predictor.MLPWithDepth(d) }
		rmse := predictor.ModelRMSECached(specKey+"|"+predictor.VariantKey(fmt.Sprintf("depth:%d", d), mk), mk, train, test)
		res.Rows = append(res.Rows, []string{"(b) depth", fmt.Sprintf("%d layers", d), fmtF(rmse)})
	}

	// (c) hidden width sweep for the 3-layer MLP.
	widths := []int{32, 64, 128, 256, 512, 1024}
	if opt.Fast {
		widths = []int{32, 256}
	}
	for _, width := range widths {
		w := width
		mk := func() predictor.Regressor { return predictor.MLPWithWidth(w) }
		rmse := predictor.ModelRMSECached(specKey+"|"+predictor.VariantKey(fmt.Sprintf("width:%d", w), mk), mk, train, test)
		res.Rows = append(res.Rows, []string{"(c) width", fmt.Sprintf("%d neurons", w), fmtF(rmse)})
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("profile dataset: %d samples (train %d / test %d), 8:2 split as in the paper", len(samples), len(train), len(test)),
		"RMSE is measured on min-max-normalised log stage times; stage latencies span four orders of magnitude.")
	return res, nil
}

// sharedPredictors caches one trained time predictor per (mode, seed)
// so that tab7, the CLI's "all" run and the serve daemon don't retrain
// repeatedly. Misses coalesce per key: concurrent callers for the same
// Options share one training run, while different keys train in
// parallel — the old design held a single mutex across training, so
// independent keys serialized behind whichever training ran first.
var sharedPredictors = singleflight.New[Options, *predictor.TimePredictor](0)

// trainSharedPredictor trains (or reuses) the MLP time predictor on
// the profile sweep. The trained predictor is read-only and safe for
// concurrent Predict calls.
func trainSharedPredictor(opt Options) *predictor.TimePredictor {
	p, hit := sharedPredictors.Do(opt, func() *predictor.TimePredictor {
		mPredCacheMisses.Inc()
		sp := obs.StartSpan("predictor.train")
		defer sp.End()
		p := predictor.NewTimePredictor()
		p.Train(predictor.Generate(profileSpec(opt)))
		return p
	})
	if hit {
		mPredCacheHits.Inc()
	}
	return p
}

// SharedPredictor exposes the per-Options predictor cache to other
// packages (the serve daemon plans requests against the same shared
// immutable model the experiments use).
func SharedPredictor(opt Options) *predictor.TimePredictor {
	return trainSharedPredictor(opt)
}

// predictTimesFor produces the predictor's stage-time estimates for an
// accelerator workload (full-update stage structure, as profiled).
func predictTimesFor(p *predictor.TimePredictor, w accel.Workload) []float64 {
	mb := w.MicroBatch
	if mb == 0 {
		mb = 64
	}
	deg := w.Deg
	if deg == nil {
		deg = accel.DegModelFor(w.Dataset, w.Seed)
	}
	return p.PredictTimes(stage.Config{
		Chip:       reram.DefaultChip(),
		Dataset:    w.Dataset,
		Deg:        deg,
		MicroBatch: mb,
	})
}
