//go:build !race

package experiments

// raceDetectorEnabled: see race_on.go.
const raceDetectorEnabled = false
