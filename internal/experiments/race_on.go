//go:build race

package experiments

// raceDetectorEnabled reports whether this binary was built with the
// race detector. The test sweep uses it to skip harnesses whose
// minutes of MLP/GCN training would blow the per-package test timeout
// under the ~10× detector slowdown; the underlying parallel kernels
// are still race-exercised by the cheaper tests and by the kernels'
// own packages.
const raceDetectorEnabled = true
