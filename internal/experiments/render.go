package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// RenderCSV writes the result as CSV: a comment line with the title
// and paper claim, then header and rows.
func (r *Result) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", r.ID, r.Title); err != nil {
		return err
	}
	if r.Paper != "" {
		if _, err := fmt.Fprintf(w, "# paper: %s\n", r.Paper); err != nil {
			return err
		}
	}
	ncols := r.columns()
	cw := csv.NewWriter(w)
	if err := cw.Write(padCells(r.Header, ncols)); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(padCells(row, ncols)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderMarkdown writes the result as a GitHub-flavoured markdown
// table with the paper claim and notes as surrounding prose.
func (r *Result) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "*Paper:* %s\n\n", r.Paper)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	ncols := r.columns()
	writeRow(padCells(r.Header, ncols))
	sep := make([]string, ncols)
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(padCells(row, ncols))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Format names an output format for RenderAs.
type Format string

// Supported output formats.
const (
	FormatText     Format = "text"
	FormatCSV      Format = "csv"
	FormatMarkdown Format = "markdown"
)

// ParseFormat resolves a format name ("" and "md" are aliases for
// text and markdown). The CLI calls it before running anything so an
// invalid -format fails fast instead of after the first experiment.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatText, "":
		return FormatText, nil
	case FormatCSV:
		return FormatCSV, nil
	case FormatMarkdown, "md":
		return FormatMarkdown, nil
	}
	return "", fmt.Errorf("experiments: unknown format %q (text, csv, markdown)", s)
}

// RenderAs dispatches on the format name.
func (r *Result) RenderAs(w io.Writer, f Format) error {
	ff, err := ParseFormat(string(f))
	if err != nil {
		return err
	}
	switch ff {
	case FormatCSV:
		return r.RenderCSV(w)
	case FormatMarkdown:
		return r.RenderMarkdown(w)
	default:
		return r.Render(w)
	}
}
