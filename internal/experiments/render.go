package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// RenderCSV writes the result as CSV: a comment line with the title
// and paper claim, then header and rows.
func (r *Result) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", r.ID, r.Title); err != nil {
		return err
	}
	if r.Paper != "" {
		if _, err := fmt.Fprintf(w, "# paper: %s\n", r.Paper); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderMarkdown writes the result as a GitHub-flavoured markdown
// table with the paper claim and notes as surrounding prose.
func (r *Result) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "*Paper:* %s\n\n", r.Paper)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range r.Rows {
		padded := make([]string, len(r.Header))
		copy(padded, row)
		writeRow(padded)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Format names an output format for RenderAs.
type Format string

// Supported output formats.
const (
	FormatText     Format = "text"
	FormatCSV      Format = "csv"
	FormatMarkdown Format = "markdown"
)

// RenderAs dispatches on the format name.
func (r *Result) RenderAs(w io.Writer, f Format) error {
	switch f {
	case FormatText, "":
		return r.Render(w)
	case FormatCSV:
		return r.RenderCSV(w)
	case FormatMarkdown, "md":
		return r.RenderMarkdown(w)
	default:
		return fmt.Errorf("experiments: unknown format %q (text, csv, markdown)", f)
	}
}
