package experiments

import (
	"bytes"
	"strings"
	"testing"

	"gopim/internal/parallel"
)

// raggedResult has one row wider than the header and one narrower —
// the shapes that used to panic Render (unguarded widths[i]) and be
// silently truncated by RenderMarkdown.
func raggedResult() *Result {
	return &Result{
		ID:     "ragged",
		Title:  "ragged fixture",
		Header: []string{"a", "b"},
		Rows: [][]string{
			{"r1c1", "r1c2"},
			{"r2c1", "r2c2", "r2c3-extra"},
			{"r3c1"},
		},
		Notes: []string{"ragged rows must render in every format"},
	}
}

// TestRenderRaggedRowNoPanic is the regression test for the Render
// line() closure indexing widths[i] out of range on rows with more
// cells than the header.
func TestRenderRaggedRowNoPanic(t *testing.T) {
	var buf bytes.Buffer
	if err := raggedResult().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "r2c3-extra") {
		t.Fatalf("text renderer dropped the extra cell:\n%s", buf.String())
	}
}

// TestRenderersAgreeOnRaggedRows checks all three renderers keep every
// cell of a ragged row and lay out the same column count.
func TestRenderersAgreeOnRaggedRows(t *testing.T) {
	res := raggedResult()
	if res.columns() != 3 {
		t.Fatalf("columns() = %d, want 3", res.columns())
	}

	var text, csvb, md bytes.Buffer
	if err := res.Render(&text); err != nil {
		t.Fatal(err)
	}
	if err := res.RenderCSV(&csvb); err != nil {
		t.Fatal(err)
	}
	if err := res.RenderMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"text": text.String(), "csv": csvb.String(), "markdown": md.String(),
	} {
		if !strings.Contains(out, "r2c3-extra") {
			t.Fatalf("%s renderer dropped the extra cell:\n%s", name, out)
		}
	}
	// CSV: every record padded to the widened column count.
	for _, line := range strings.Split(strings.TrimSpace(csvb.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if got := strings.Count(line, ","); got != 2 {
			t.Fatalf("csv record %q has %d commas, want 2", line, got)
		}
	}
	// Markdown: header, separator and every row share the cell count.
	for _, line := range strings.Split(strings.TrimSpace(md.String()), "\n") {
		if !strings.HasPrefix(line, "|") {
			continue
		}
		if got := strings.Count(line, "|"); got != 4 {
			t.Fatalf("markdown row %q has %d pipes, want 4", line, got)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{
		"": FormatText, "text": FormatText, "csv": FormatCSV,
		"markdown": FormatMarkdown, "md": FormatMarkdown,
	} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil ||
		!strings.Contains(err.Error(), "text, csv, markdown") {
		t.Fatalf("ParseFormat(xml) = %v, want error naming supported formats", err)
	}
}

func TestRunAllOrderAndErrors(t *testing.T) {
	ids := []string{"fig7", "fig5"}
	results, err := RunAll(ids, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].ID != "fig7" || results[1].ID != "fig5" {
		t.Fatalf("results out of order: %v", results)
	}
	if _, err := RunAll([]string{"fig7", "nope"}, fastOpt); err == nil {
		t.Fatal("unknown id must fail before anything runs")
	}
}

// TestFig13BytesIdenticalAcrossWorkers pins the headline determinism
// guarantee: the rendered fig13 table is byte-identical whether the
// whole stack (GEMM, SpMM, profiles, fan-out) runs on 1, 2 or 8
// workers.
func TestFig13BytesIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fast-mode fig13 three times")
	}
	render := func(w int) string {
		parallel.SetWorkers(w)
		defer parallel.SetWorkers(0)
		res, err := Run("fig13", fastOpt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	base := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); got != base {
			t.Fatalf("fig13 output differs at workers=%d:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				w, base, w, got)
		}
	}
}
