package experiments

import (
	"errors"
	"sync"
	"testing"
)

// TestRunAllScheduleReordersStartsNotResults pins the memo-aware
// scheduling contract: runPriority may permute which harness STARTS
// first, but results (and error attribution) always come back in the
// caller's id order.
func TestRunAllScheduleReordersStartsNotResults(t *testing.T) {
	register("zz_sched_a", func(Options) (*Result, error) {
		return &Result{ID: "zz_sched_a", Header: []string{"x"}}, nil
	})
	register("zz_sched_b", func(Options) (*Result, error) {
		return &Result{ID: "zz_sched_b", Header: []string{"x"}}, nil
	})
	register("zz_sched_err", func(Options) (*Result, error) {
		return nil, errors.New("boom")
	})
	defer func() {
		delete(registry, "zz_sched_a")
		delete(registry, "zz_sched_b")
		delete(registry, "zz_sched_err")
		delete(runPriority, "zz_sched_b")
	}()
	runPriority["zz_sched_b"] = -100 // must start before everything else

	var mu sync.Mutex
	var starts []string
	res, err := RunAllWithHooks(
		[]string{"zz_sched_a", "zz_sched_err", "zz_sched_b"}, fastOpt,
		RunHooks{OnStart: func(id string) {
			mu.Lock()
			starts = append(starts, id)
			mu.Unlock()
		}})

	if len(starts) != 3 || starts[0] != "zz_sched_b" {
		t.Fatalf("start order = %v, want zz_sched_b first", starts)
	}
	if len(res) != 3 || res[0] == nil || res[2] == nil ||
		res[0].ID != "zz_sched_a" || res[2].ID != "zz_sched_b" {
		t.Fatalf("results must stay in caller order, got %v", res)
	}
	if res[1] != nil {
		t.Fatal("failed harness slot must be nil")
	}
	if err == nil || err.Error() != "experiments: zz_sched_err: boom" {
		t.Fatalf("error must name the failing id in caller order, got %v", err)
	}
}

// TestRunPriorityIDsExist guards the priority table against drift: a
// renamed experiment would silently lose its schedule slot.
func TestRunPriorityIDsExist(t *testing.T) {
	for id := range runPriority {
		if _, ok := registry[id]; !ok {
			t.Errorf("runPriority names unknown experiment %q", id)
		}
	}
}
