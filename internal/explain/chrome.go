package explain

import (
	"sort"

	"gopim/internal/obs"
	"gopim/internal/trace"
)

// ChromeTraceEvents renders the analyzed schedule for the trace
// viewer: the schedule's replica lanes (as trace.Schedule emits them),
// flow arrows linking the critical path's events, and one counter
// track charting how many lanes sit in each bubble class over
// simulated time.
func (r *Result) ChromeTraceEvents(names []string) []obs.TraceEvent {
	events := r.Schedule.ChromeTraceEvents(names)
	chain := make([]trace.Event, len(r.Path))
	for i, p := range r.Path {
		chain[i] = trace.Event{
			Stage: p.Stage, MicroBatch: p.MicroBatch, Replica: p.Replica,
			StartNS: p.StartNS, EndNS: p.EndNS,
		}
	}
	events = append(events, r.Schedule.FlowEvents(chain, "critical path")...)
	events = append(events, trace.CounterEvents("bubbles", bubbleSamples(r.Bubbles))...)
	return events
}

// bubbleSamples folds the bubble intervals into a step function: at
// every interval boundary, the number of lanes currently idle in each
// class. Every sample carries all four classes, so the counter track's
// series set — and the JSON bytes — never depend on which classes
// happen to be present.
func bubbleSamples(bubbles []Bubble) []trace.CounterSample {
	type edge struct {
		ts    float64
		class string
		delta int
	}
	var edges []edge
	for _, b := range bubbles {
		lanes := b.Lanes
		if lanes == 0 {
			lanes = 1
		}
		edges = append(edges,
			edge{b.StartNS, b.Class, lanes},
			edge{b.EndNS, b.Class, -lanes})
	}
	if len(edges) == 0 {
		return nil
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].ts != edges[j].ts {
			return edges[i].ts < edges[j].ts
		}
		return edges[i].class < edges[j].class
	})
	open := map[string]int{}
	var out []trace.CounterSample
	for i, e := range edges {
		open[e.class] += e.delta
		// Emit one sample per distinct timestamp, after folding all of
		// its edges.
		if i+1 < len(edges) && edges[i+1].ts == e.ts {
			continue
		}
		vals := make(map[string]float64, len(BubbleClasses))
		for _, c := range BubbleClasses {
			vals[c] = float64(open[c])
		}
		out = append(out, trace.CounterSample{TsNS: e.ts, Values: vals})
	}
	return out
}
