// Package explain turns a simulated schedule into an explanation of
// its makespan. Where package trace answers "how long", this package
// answers "why": which chain of events forms the critical path (and
// which dependency made each link wait), where the idle bubbles sit
// and what caused them, how far the schedule is from the paper's
// equation (6) closed form, and what one more (or one fewer) replica
// of each stage would buy.
//
// Everything here is a pure function of the input schedule, so all of
// it — including the Sim metrics it records — is deterministic at any
// worker count. Re-simulations (the analysis itself and the ±1-replica
// what-ifs) run through trace.SimulateUnrecorded, so the pre-existing
// trace.* series never drift.
package explain

import (
	"fmt"
	"math"

	"gopim/internal/obs"
	"gopim/internal/pipeline"
	"gopim/internal/trace"
)

// Analyzer metrics (Sim clock: pure functions of the analyzed input).
var (
	mAnalyses = obs.NewCounter("explain.analyses", obs.Sim,
		"critical-path analyses run")
	mPathEvents = obs.NewDistribution("explain.path_events", obs.Sim,
		"events on the extracted critical path")
	mGapFrac = obs.NewDistribution("explain.eq6_gap_frac", obs.Sim,
		"schedule overhead relative to the equation (6) closed form")
	mResims = obs.NewCounter("explain.resimulations", obs.Sim,
		"±1-replica what-if schedules re-simulated")
)

// Reason classifies why a critical-path event started when it did —
// which dependency was the binding constraint.
type Reason string

const (
	// ReasonSource marks the path's first event: it started at time 0,
	// bound by nothing (the pipeline-fill origin).
	ReasonSource Reason = "source"
	// ReasonDataDep: the event waited for the previous stage's result
	// for the same micro-batch (equation (3)).
	ReasonDataDep Reason = "data-dep"
	// ReasonOccupancy: every replica of the stage was busy; the event
	// waited for one to free up.
	ReasonOccupancy Reason = "occupancy"
	// ReasonBarrier: the event waited for in-order commit of the
	// previous micro-batch or for an intra-batch barrier (equation (4)
	// and the batch boundary of IntraBatch mode).
	ReasonBarrier Reason = "barrier"
)

// Bubble classes: where a replica-lane's idle time went.
const (
	// BubbleFill is lane idle before its first event — pipeline ramp-in.
	BubbleFill = "fill"
	// BubbleDrain is lane idle after its last event — pipeline ramp-out.
	BubbleDrain = "drain"
	// BubbleStarve is an interior gap: the lane waited for upstream
	// data between two executions.
	BubbleStarve = "starve"
	// BubbleOccupancy is idle occupancy without work: never-used lanes
	// (over-provisioned replicas holding crossbars the whole run) and
	// the in-order commit stretch, where a replica holds a finished
	// result past its service time.
	BubbleOccupancy = "occupancy"
)

// BubbleClasses lists the classes in canonical (reporting) order.
var BubbleClasses = []string{BubbleFill, BubbleDrain, BubbleStarve, BubbleOccupancy}

// PathEvent is one link of the critical path.
type PathEvent struct {
	Stage      int     `json:"stage"`
	MicroBatch int     `json:"micro_batch"`
	Replica    int     `json:"replica"`
	StartNS    float64 `json:"start_ns"`
	EndNS      float64 `json:"end_ns"`
	// Reason says which dependency bound this event's start: the chain
	// predecessor ends exactly at StartNS.
	Reason Reason `json:"reason"`
}

// ReasonCounts tallies the path's links by binding constraint.
type ReasonCounts struct {
	Source    int `json:"source"`
	DataDep   int `json:"data_dep"`
	Occupancy int `json:"occupancy"`
	Barrier   int `json:"barrier"`
}

// Bubble is one contiguous idle interval on one replica lane.
type Bubble struct {
	Stage   int    `json:"stage"`
	Replica int    `json:"replica"`
	Class   string `json:"class"`
	// Lanes > 1 aggregates the never-used lanes of a stage (all
	// identical whole-makespan starve intervals) into one record.
	Lanes   int     `json:"lanes,omitempty"`
	StartNS float64 `json:"start_ns"`
	EndNS   float64 `json:"end_ns"`
}

// StageReport is the per-stage view of the analysis.
type StageReport struct {
	Name     string  `json:"name"`
	Replicas int     `json:"replicas"`
	TimeNS   float64 `json:"time_ns"`
	BusyNS   float64 `json:"busy_ns"`
	// Utilization is busy/(makespan·replicas), as StageUtilization.
	Utilization float64 `json:"utilization"`
	// CritNS is the critical-path time spent in this stage; CritShare
	// is its fraction of the makespan.
	CritNS    float64 `json:"crit_ns"`
	CritShare float64 `json:"crit_share"`
	// SlackNS = makespan − CritNS: how much of the run this stage is
	// NOT the binding constraint. SlackRank orders stages by ascending
	// slack (rank 1 = the bottleneck).
	SlackNS   float64 `json:"slack_ns"`
	SlackRank int     `json:"slack_rank"`
	// Idle-time attribution by bubble class, summed over the stage's
	// lanes. Fill+Drain+Starve+Occupancy = makespan·replicas − busy.
	FillNS      float64 `json:"fill_ns"`
	DrainNS     float64 `json:"drain_ns"`
	StarveNS    float64 `json:"starve_ns"`
	OccupancyNS float64 `json:"occupancy_ns"`
	// DeltaPlusNS / DeltaMinusNS are the makespan change from +1 / −1
	// replica of this stage (re-simulated; only set with sensitivity
	// enabled; DeltaMinusNS is 0 at one replica).
	DeltaPlusNS  float64 `json:"delta_plus_ns"`
	DeltaMinusNS float64 `json:"delta_minus_ns"`
}

// BubbleNS returns the stage's idle time in one class.
func (s StageReport) BubbleNS(class string) float64 {
	switch class {
	case BubbleFill:
		return s.FillNS
	case BubbleDrain:
		return s.DrainNS
	case BubbleStarve:
		return s.StarveNS
	case BubbleOccupancy:
		return s.OccupancyNS
	}
	return 0
}

// Options configures an analysis.
type Options struct {
	// Sensitivity adds the ±1-replica what-if table: two extra
	// re-simulations per stage.
	Sensitivity bool
}

// Result is a complete makespan explanation.
type Result struct {
	MakespanNS   float64 `json:"makespan_ns"`
	MicroBatches int     `json:"micro_batches"`
	// Eq6NS is the equation (6) closed form Σtᵢ/rᵢ + (B−1)·max tᵢ/rᵢ —
	// the fully pipelined ideal for this allocation. GapNS/GapFrac
	// measure the schedule's overhead above it (fill/drain skew,
	// barriers, integer replica effects).
	Eq6NS      float64 `json:"eq6_ns"`
	Eq6GapNS   float64 `json:"eq6_gap_ns"`
	Eq6GapFrac float64 `json:"eq6_gap_frac"`
	// Bottleneck names the stage with the largest critical-path share.
	Bottleneck      string        `json:"bottleneck"`
	BottleneckStage int           `json:"bottleneck_stage"`
	Path            []PathEvent   `json:"path"`
	PathReasons     ReasonCounts  `json:"path_reasons"`
	Stages          []StageReport `json:"stages"`
	Bubbles         []Bubble      `json:"bubbles"`
	Sensitivity     bool          `json:"sensitivity"`
	// Schedule is the analyzed event schedule (for Gantt/trace export);
	// not part of the JSON form.
	Schedule *trace.Schedule `json:"-"`
}

// OnPath reports whether an event lies on the critical path.
func (r *Result) OnPath(e trace.Event) bool {
	for _, p := range r.Path {
		if p.Stage == e.Stage && p.MicroBatch == e.MicroBatch {
			return true
		}
	}
	return false
}

// Analyze simulates the input at event level and explains the result.
func Analyze(in trace.Input, names []string, opt Options) *Result {
	sched := trace.SimulateUnrecorded(in)
	n := len(in.TimesNS)
	res := &Result{
		MakespanNS:   sched.MakespanNS,
		MicroBatches: in.MicroBatches,
		Schedule:     sched,
	}

	a := newAnalysis(sched, n)
	res.Path = a.criticalPath(in)
	for _, p := range res.Path {
		switch p.Reason {
		case ReasonSource:
			res.PathReasons.Source++
		case ReasonDataDep:
			res.PathReasons.DataDep++
		case ReasonOccupancy:
			res.PathReasons.Occupancy++
		case ReasonBarrier:
			res.PathReasons.Barrier++
		}
	}

	res.Bubbles = a.bubbles(in)
	res.Stages = a.stageReports(in, names, res)
	rankBySlack(res.Stages)

	eff := pipeline.EffectiveTimes(in.TimesNS, sched.Replicas)
	res.Eq6NS = pipeline.ClosedFormTotal(eff, in.MicroBatches)
	res.Eq6GapNS = res.MakespanNS - res.Eq6NS
	res.Eq6GapFrac = frac(res.Eq6GapNS, res.Eq6NS)

	res.BottleneckStage = 0
	for i := range res.Stages {
		if res.Stages[i].CritShare > res.Stages[res.BottleneckStage].CritShare {
			res.BottleneckStage = i
		}
	}
	if len(res.Stages) > 0 {
		res.Bottleneck = res.Stages[res.BottleneckStage].Name
	}

	if opt.Sensitivity {
		res.Sensitivity = true
		a.sensitivity(in, res)
	}

	mAnalyses.Inc()
	mPathEvents.Observe(float64(len(res.Path)))
	mGapFrac.Observe(res.Eq6GapFrac)
	return res
}

// analysis holds the per-event indexes the extraction passes share.
type analysis struct {
	sched *trace.Schedule
	n     int
	// lanePrev[k] is the previous event on event k's (stage, replica)
	// lane, or −1.
	lanePrev []int
	// laneEvs maps a lane to its event indices in time order.
	laneEvs map[[2]int][]int
	// byEnd maps an end time to the indices of events ending then, in
	// index order.
	byEnd map[float64][]int
}

func newAnalysis(sched *trace.Schedule, n int) *analysis {
	a := &analysis{
		sched:    sched,
		n:        n,
		lanePrev: make([]int, len(sched.Events)),
		laneEvs:  map[[2]int][]int{},
		byEnd:    map[float64][]int{},
	}
	last := map[[2]int]int{}
	for k, e := range sched.Events {
		// The schedule contract: event (stage i, micro-batch j) sits at
		// index j·n+i. Everything below indexes by it.
		if k != e.MicroBatch*n+e.Stage {
			panic(fmt.Sprintf("explain: event %d violates the schedule order contract: %+v", k, e))
		}
		lane := [2]int{e.Stage, e.Replica}
		if p, ok := last[lane]; ok {
			a.lanePrev[k] = p
		} else {
			a.lanePrev[k] = -1
		}
		last[lane] = k
		a.laneEvs[lane] = append(a.laneEvs[lane], k)
		a.byEnd[e.EndNS] = append(a.byEnd[e.EndNS], k)
	}
	return a
}

// criticalPath walks backward from the schedule's final event. Every
// event's start is, by construction in the simulator, either 0 or a
// bitwise copy of some predecessor's end (the max of the candidate
// bounds), so each step finds a predecessor by exact float equality —
// no tolerances — and the returned chain tiles [0, makespan] without
// gaps: link k+1 starts exactly where link k ends.
func (a *analysis) criticalPath(in trace.Input) []PathEvent {
	if len(a.sched.Events) == 0 {
		return nil
	}
	// The last micro-batch's last stage always finishes last: per-stage
	// ends are non-decreasing in micro-batch (in-order commit) and the
	// final stage's end bounds the makespan.
	cur := (in.MicroBatches-1)*a.n + (a.n - 1)
	var rev []PathEvent
	for {
		e := a.sched.Events[cur]
		pe := PathEvent{
			Stage: e.Stage, MicroBatch: e.MicroBatch, Replica: e.Replica,
			StartNS: e.StartNS, EndNS: e.EndNS,
		}
		if e.StartNS == 0 {
			pe.Reason = ReasonSource
			rev = append(rev, pe)
			break
		}
		reason, pred := a.predecessor(cur)
		pe.Reason = reason
		rev = append(rev, pe)
		cur = pred
	}
	// Reverse into schedule order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// predecessor finds the event whose end exactly equals cur's start,
// preferring the most specific dependency: the equation (3) data
// dependency, then same-lane occupancy, then the equation (4) commit
// order, then any earlier event (the intra-batch barrier binds the
// whole pipeline to the slowest stage of the previous batch). Every
// candidate index is strictly below cur, so the walk terminates.
func (a *analysis) predecessor(cur int) (Reason, int) {
	e := a.sched.Events[cur]
	if e.Stage > 0 {
		p := e.MicroBatch*a.n + e.Stage - 1
		if a.sched.Events[p].EndNS == e.StartNS {
			return ReasonDataDep, p
		}
	}
	if p := a.lanePrev[cur]; p >= 0 && a.sched.Events[p].EndNS == e.StartNS {
		return ReasonOccupancy, p
	}
	if e.MicroBatch > 0 {
		p := (e.MicroBatch-1)*a.n + e.Stage
		if a.sched.Events[p].EndNS == e.StartNS {
			return ReasonBarrier, p
		}
	}
	ending := a.byEnd[e.StartNS]
	for k := len(ending) - 1; k >= 0; k-- {
		if ending[k] < cur {
			return ReasonBarrier, ending[k]
		}
	}
	panic(fmt.Sprintf("explain: no predecessor ends at %v for event %+v", e.StartNS, e))
}

// bubbles attributes every lane's idle time to a class. Intervals are
// emitted lane-major (stage, then replica, then time), which is
// already globally deterministic.
func (a *analysis) bubbles(in trace.Input) []Bubble {
	makespan := a.sched.MakespanNS
	var out []Bubble
	add := func(b Bubble) {
		if b.EndNS > b.StartNS {
			out = append(out, b)
		}
	}
	for i := 0; i < a.n; i++ {
		unused := 0
		firstUnused := -1
		for k := 0; k < a.sched.Replicas[i]; k++ {
			evs := a.laneEvs[[2]int{i, k}]
			if len(evs) == 0 {
				// Never-used lanes aggregate below: the earliest-free
				// dispatch fills lanes in index order, so they are all
				// identical whole-makespan occupancy intervals.
				if firstUnused < 0 {
					firstUnused = k
				}
				unused++
				continue
			}
			prevEnd := 0.0
			for _, idx := range evs {
				e := a.sched.Events[idx]
				class := BubbleStarve
				if prevEnd == 0 {
					class = BubbleFill
				}
				add(Bubble{Stage: i, Replica: k, Class: class, StartNS: prevEnd, EndNS: e.StartNS})
				// Service ends at start + tᵢ; anything beyond is the
				// in-order commit stretch holding the result.
				if service := e.StartNS + in.TimesNS[i]; e.EndNS > service {
					add(Bubble{Stage: i, Replica: k, Class: BubbleOccupancy, StartNS: service, EndNS: e.EndNS})
				}
				prevEnd = e.EndNS
			}
			add(Bubble{Stage: i, Replica: k, Class: BubbleDrain, StartNS: prevEnd, EndNS: makespan})
		}
		if unused > 0 && makespan > 0 {
			add(Bubble{Stage: i, Replica: firstUnused, Class: BubbleOccupancy,
				Lanes: unused, StartNS: 0, EndNS: makespan})
		}
	}
	return out
}

// stageReports folds the path and bubbles into per-stage rows.
func (a *analysis) stageReports(in trace.Input, names []string, res *Result) []StageReport {
	makespan := a.sched.MakespanNS
	util := a.sched.StageUtilization()
	stages := make([]StageReport, a.n)
	for i := range stages {
		name := fmt.Sprintf("stage %d", i)
		if names != nil && i < len(names) {
			name = names[i]
		}
		stages[i] = StageReport{
			Name:        name,
			Replicas:    a.sched.Replicas[i],
			TimeNS:      in.TimesNS[i],
			BusyNS:      a.sched.StageBusyNS[i],
			Utilization: util[i],
		}
	}
	for _, p := range res.Path {
		stages[p.Stage].CritNS += p.EndNS - p.StartNS
	}
	for i := range stages {
		stages[i].CritShare = frac(stages[i].CritNS, makespan)
		stages[i].SlackNS = makespan - stages[i].CritNS
	}
	for _, b := range res.Bubbles {
		lanes := b.Lanes
		if lanes == 0 {
			lanes = 1
		}
		ns := (b.EndNS - b.StartNS) * float64(lanes)
		switch b.Class {
		case BubbleFill:
			stages[b.Stage].FillNS += ns
		case BubbleDrain:
			stages[b.Stage].DrainNS += ns
		case BubbleStarve:
			stages[b.Stage].StarveNS += ns
		case BubbleOccupancy:
			stages[b.Stage].OccupancyNS += ns
		}
	}
	return stages
}

// rankBySlack fills SlackRank: 1 = least slack (the stage most often
// the binding constraint), ties broken by stage order.
func rankBySlack(stages []StageReport) {
	for i := range stages {
		rank := 1
		for j := range stages {
			if stages[j].SlackNS < stages[i].SlackNS ||
				(stages[j].SlackNS == stages[i].SlackNS && j < i) {
				rank++
			}
		}
		stages[i].SlackRank = rank
	}
}

// sensitivity re-simulates the schedule with ±1 replica per stage and
// records the makespan deltas.
func (a *analysis) sensitivity(in trace.Input, res *Result) {
	replicas := a.sched.Replicas
	for i := range res.Stages {
		res.Stages[i].DeltaPlusNS = a.perturbed(in, replicas, i, +1) - res.MakespanNS
		if replicas[i] > 1 {
			res.Stages[i].DeltaMinusNS = a.perturbed(in, replicas, i, -1) - res.MakespanNS
		}
	}
}

func (a *analysis) perturbed(in trace.Input, replicas []int, stage, delta int) float64 {
	r := append([]int(nil), replicas...)
	r[stage] += delta
	in.Replicas = r
	mResims.Inc()
	return trace.SimulateUnrecorded(in).MakespanNS
}

// frac is num/den with a zero-denominator (and non-finite) guard: no
// NaN/Inf ever leaves the analyzer or reaches a Sim metric.
func frac(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	f := num / den
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}
