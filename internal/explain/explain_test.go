package explain

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"gopim/internal/trace"
)

func analyzeT(t *testing.T, in trace.Input, opt Options) *Result {
	t.Helper()
	return Analyze(in, nil, opt)
}

// The textbook two-stage example: CO=1, AG=6, B=3, one replica each.
// The path is CO(mb0) then AG's three back-to-back executions.
func TestCriticalPathTwoStages(t *testing.T) {
	r := analyzeT(t, trace.Input{TimesNS: []float64{1, 6}, MicroBatches: 3}, Options{})
	if r.MakespanNS != 19 {
		t.Fatalf("makespan = %v, want 19", r.MakespanNS)
	}
	want := []struct {
		stage, mb int
		reason    Reason
	}{
		{0, 0, ReasonSource},
		{1, 0, ReasonDataDep},
		{1, 1, ReasonOccupancy},
		{1, 2, ReasonOccupancy},
	}
	if len(r.Path) != len(want) {
		t.Fatalf("path = %+v", r.Path)
	}
	for k, w := range want {
		p := r.Path[k]
		if p.Stage != w.stage || p.MicroBatch != w.mb || p.Reason != w.reason {
			t.Fatalf("path[%d] = %+v, want %+v", k, p, w)
		}
	}
	if r.Bottleneck != "stage 1" || r.BottleneckStage != 1 {
		t.Fatalf("bottleneck = %q (%d)", r.Bottleneck, r.BottleneckStage)
	}
	if r.Stages[1].SlackRank != 1 || r.Stages[0].SlackRank != 2 {
		t.Fatalf("slack ranks = %d, %d", r.Stages[0].SlackRank, r.Stages[1].SlackRank)
	}
	// Fully pipelined two-stage schedule hits eq.(6) exactly.
	if r.Eq6NS != 19 || r.Eq6GapNS != 0 || r.Eq6GapFrac != 0 {
		t.Fatalf("eq6 = %v gap = %v (%v)", r.Eq6NS, r.Eq6GapNS, r.Eq6GapFrac)
	}
}

// A per-micro-batch barrier (serial execution) must classify the
// cross-stage wait as a barrier dependency.
func TestCriticalPathBarrier(t *testing.T) {
	r := analyzeT(t, trace.Input{
		TimesNS: []float64{2, 3}, MicroBatches: 3, MicroBatchesPerBatch: 1,
	}, Options{})
	if r.MakespanNS != 15 {
		t.Fatalf("makespan = %v, want serial 15", r.MakespanNS)
	}
	if len(r.Path) != 6 {
		t.Fatalf("serial path must include every event: %+v", r.Path)
	}
	if r.PathReasons.Barrier == 0 {
		t.Fatalf("no barrier links on a barriered schedule: %+v", r.PathReasons)
	}
	// Path links tile [0, makespan]: each starts where the previous ended.
	for k := 1; k < len(r.Path); k++ {
		if r.Path[k].StartNS != r.Path[k-1].EndNS {
			t.Fatalf("gap between links %d and %d: %+v", k-1, k, r.Path)
		}
	}
}

// Idle time must be fully attributed: per stage,
// fill+drain+starve+occupancy == makespan·replicas − busy.
func TestBubbleAccountingIdentity(t *testing.T) {
	cases := []trace.Input{
		{TimesNS: []float64{1, 6}, MicroBatches: 3},
		{TimesNS: []float64{1, 6}, Replicas: []int{1, 4}, MicroBatches: 8},
		{TimesNS: []float64{3, 5, 2}, Replicas: []int{2, 1, 3}, MicroBatches: 8, MicroBatchesPerBatch: 4},
		// Over-provisioned: stage 1 can never use 8 lanes for 2 mbs.
		{TimesNS: []float64{1, 4}, Replicas: []int{1, 8}, MicroBatches: 2},
	}
	for ci, in := range cases {
		r := analyzeT(t, in, Options{})
		for i, s := range r.Stages {
			idle := r.MakespanNS*float64(s.Replicas) - s.BusyNS
			sum := s.FillNS + s.DrainNS + s.StarveNS + s.OccupancyNS
			if math.Abs(sum-idle) > 1e-9*(1+idle) {
				t.Fatalf("case %d stage %d: bubbles %v != idle %v (%+v)", ci, i, sum, idle, s)
			}
		}
	}
	// The over-provisioned case must show occupancy on the unused lanes,
	// aggregated into one record.
	r := analyzeT(t, cases[3], Options{})
	if r.Stages[1].OccupancyNS < 6*r.MakespanNS {
		t.Fatalf("unused lanes unattributed: %+v", r.Stages[1])
	}
	found := false
	for _, b := range r.Bubbles {
		if b.Class == BubbleOccupancy && b.Lanes == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no aggregated occupancy bubble: %+v", r.Bubbles)
	}
}

// Zero-duration schedules must yield all-zero, all-finite reports — no
// NaN/Inf can reach a Sim metric.
func TestZeroMakespanGuards(t *testing.T) {
	r := analyzeT(t, trace.Input{TimesNS: []float64{0, 0}, MicroBatches: 2}, Options{Sensitivity: true})
	if r.MakespanNS != 0 {
		t.Fatalf("makespan = %v", r.MakespanNS)
	}
	if len(r.Path) != 1 || r.Path[0].Reason != ReasonSource {
		t.Fatalf("path = %+v", r.Path)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("NaN")) || bytes.Contains(data, []byte("Inf")) {
		t.Fatalf("non-finite value in result: %s", data)
	}
	for _, s := range r.Stages {
		for _, v := range []float64{s.Utilization, s.CritShare, s.SlackNS,
			s.FillNS, s.DrainNS, s.StarveNS, s.OccupancyNS, s.DeltaPlusNS, s.DeltaMinusNS} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite stage value: %+v", s)
			}
		}
	}
	if math.IsNaN(r.Eq6GapFrac) || math.IsInf(r.Eq6GapFrac, 0) {
		t.Fatalf("gap frac = %v", r.Eq6GapFrac)
	}
}

// Sensitivity deltas must be monotone: one more replica never hurts,
// one fewer never helps; and a single-replica stage has no minus delta.
func TestSensitivityMonotone(t *testing.T) {
	r := analyzeT(t, trace.Input{
		TimesNS: []float64{1, 6}, Replicas: []int{1, 3}, MicroBatches: 16,
	}, Options{Sensitivity: true})
	if !r.Sensitivity {
		t.Fatal("sensitivity not marked")
	}
	for i, s := range r.Stages {
		if s.DeltaPlusNS > 1e-9 {
			t.Fatalf("stage %d: +1 replica worsened makespan by %v", i, s.DeltaPlusNS)
		}
		if s.DeltaMinusNS < -1e-9 {
			t.Fatalf("stage %d: -1 replica improved makespan by %v", i, s.DeltaMinusNS)
		}
	}
	if r.Stages[0].DeltaMinusNS != 0 {
		t.Fatalf("single-replica stage must have no minus delta: %+v", r.Stages[0])
	}
	// The bottleneck's -1 delta must actually bite.
	if r.Stages[1].DeltaMinusNS <= 0 {
		t.Fatalf("removing a bottleneck replica must cost time: %+v", r.Stages[1])
	}
	// Without the option, no deltas are computed.
	r2 := analyzeT(t, trace.Input{TimesNS: []float64{1, 6}, MicroBatches: 4}, Options{})
	if r2.Sensitivity || r2.Stages[1].DeltaPlusNS != 0 {
		t.Fatalf("sensitivity leaked: %+v", r2.Stages)
	}
}

func TestStageTableAndSummary(t *testing.T) {
	r := Analyze(trace.Input{TimesNS: []float64{1, 6}, MicroBatches: 3},
		[]string{"CO1", "AG1"}, Options{Sensitivity: true})
	header, rows, notes := r.StageTable()
	if len(rows) != 2 || rows[0][0] != "CO1" || rows[1][0] != "AG1" {
		t.Fatalf("rows = %+v", rows)
	}
	if len(header) != 12 {
		t.Fatalf("header = %v", header)
	}
	for _, row := range rows {
		if len(row) != len(header) {
			t.Fatalf("ragged row %v vs header %v", row, header)
		}
	}
	if rows[0][11] != "n/a" {
		t.Fatalf("single-replica minus delta must be n/a: %v", rows[0])
	}
	joined := strings.Join(notes, "\n")
	if !strings.Contains(joined, "bottleneck: AG1") {
		t.Fatalf("summary missing bottleneck: %v", notes)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if parsed["bottleneck"] != "AG1" {
		t.Fatalf("bottleneck key = %v", parsed["bottleneck"])
	}
}

func TestChromeTraceEventsComposition(t *testing.T) {
	r := analyzeT(t, trace.Input{TimesNS: []float64{1, 6}, Replicas: []int{1, 2}, MicroBatches: 4}, Options{})
	evs := r.ChromeTraceEvents([]string{"CO", "AG"})
	var flows, counters int
	prevTs := math.Inf(-1)
	for _, e := range evs {
		switch e.Ph {
		case "s", "f":
			flows++
		case "C":
			counters++
			if e.Ts < prevTs {
				t.Fatalf("counter samples out of order: %+v", evs)
			}
			prevTs = e.Ts
			for _, c := range BubbleClasses {
				if _, ok := e.Args[c]; !ok {
					t.Fatalf("counter sample missing class %q: %+v", c, e.Args)
				}
			}
		}
	}
	if flows != 2*(len(r.Path)-1) {
		t.Fatalf("flows = %d for %d path events", flows, len(r.Path))
	}
	if counters == 0 {
		t.Fatal("no bubble counter samples")
	}
}

func TestOnPath(t *testing.T) {
	r := analyzeT(t, trace.Input{TimesNS: []float64{1, 6}, MicroBatches: 3}, Options{})
	if !r.OnPath(trace.Event{Stage: 1, MicroBatch: 2}) {
		t.Fatal("final event must be on path")
	}
	if r.OnPath(trace.Event{Stage: 0, MicroBatch: 2}) {
		t.Fatal("late first-stage event is not on the path")
	}
}

// Analyze must not touch the recorded trace.* metrics, only its own.
func TestAnalyzeUsesUnrecordedSimulation(t *testing.T) {
	before := mAnalyses.Value()
	in := trace.Input{TimesNS: []float64{2, 3}, MicroBatches: 4}
	tr := trace.Simulate(in) // records trace.simulations
	r := analyzeT(t, in, Options{Sensitivity: true})
	if r.MakespanNS != tr.MakespanNS {
		t.Fatalf("analyzer schedule diverges: %v vs %v", r.MakespanNS, tr.MakespanNS)
	}
	if mAnalyses.Value() != before+1 {
		t.Fatalf("explain.analyses = %d, want %d", mAnalyses.Value(), before+1)
	}
}
