package explain_test

import (
	"math"
	"testing"

	"gopim/internal/accel"
	"gopim/internal/explain"
	"gopim/internal/graphgen"
	"gopim/internal/trace"
)

// harnessInputs reproduces the schedule shapes of the fig4–7
// experiment harnesses: the fig4 motivation accelerator runs (shrunk
// datasets) across pipeline modes, and the fig5 worked replica
// allocation cases.
func harnessInputs(t *testing.T) map[string]trace.Input {
	t.Helper()
	inputs := map[string]trace.Input{
		"fig5-a": {TimesNS: []float64{1, 6}, Replicas: []int{1, 1}, MicroBatches: 8},
		"fig5-b": {TimesNS: []float64{1, 6}, Replicas: []int{2, 3}, MicroBatches: 8},
		"fig5-c": {TimesNS: []float64{1, 6}, Replicas: []int{1, 4}, MicroBatches: 8},
	}
	datasets := graphgen.MotivationSix()
	for i := range datasets {
		if datasets[i].PaperVertices > 20_000 {
			datasets[i].PaperVertices = 20_000
		}
	}
	kinds := []accel.Kind{accel.Serial, accel.PlusPP, accel.SlimGNNLike,
		accel.ReGraphX, accel.Pipelayer, accel.GoPIM}
	for _, d := range datasets[:2] {
		for _, k := range kinds {
			r := accel.Run(k, accel.Workload{Dataset: d, Seed: 1})
			inputs[d.Name+"/"+k.String()] = accel.TraceInput(r)
		}
	}
	return inputs
}

// The tentpole invariant: the extracted path's event durations sum
// exactly to the schedule's makespan. The chain's junctions are exact
// by construction (each start is a bitwise copy of its predecessor's
// end), the first event starts at 0 and the last ends at the makespan,
// so the duration sum telescopes.
func TestCriticalPathSumsToMakespan(t *testing.T) {
	for name, in := range harnessInputs(t) {
		res := explain.Analyze(in, nil, explain.Options{})
		if len(res.Path) == 0 {
			t.Fatalf("%s: empty path", name)
		}
		if res.Path[0].StartNS != 0 {
			t.Fatalf("%s: path starts at %v, not 0", name, res.Path[0].StartNS)
		}
		last := res.Path[len(res.Path)-1]
		if last.EndNS != res.MakespanNS {
			t.Fatalf("%s: path ends at %v, makespan %v", name, last.EndNS, res.MakespanNS)
		}
		var sum float64
		for k, p := range res.Path {
			if k > 0 && p.StartNS != res.Path[k-1].EndNS {
				t.Fatalf("%s: junction %d not exact: %v vs %v",
					name, k, p.StartNS, res.Path[k-1].EndNS)
			}
			sum += p.EndNS - p.StartNS
		}
		if sum != res.MakespanNS {
			t.Fatalf("%s: path durations sum to %v, makespan %v (diff %g)",
				name, sum, res.MakespanNS, sum-res.MakespanNS)
		}
	}
}

// Every analysis over the harness inputs must keep its derived
// quantities finite, in range, and self-consistent.
func TestAnalysisInvariants(t *testing.T) {
	for name, in := range harnessInputs(t) {
		res := explain.Analyze(in, nil, explain.Options{})
		var critSum float64
		for i, s := range res.Stages {
			for field, v := range map[string]float64{
				"util": s.Utilization, "crit_share": s.CritShare,
			} {
				if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
					t.Fatalf("%s stage %d: %s = %v out of range", name, i, field, v)
				}
			}
			idle := res.MakespanNS*float64(s.Replicas) - s.BusyNS
			bubbles := s.FillNS + s.DrainNS + s.StarveNS + s.OccupancyNS
			if math.Abs(bubbles-idle) > 1e-6*(1+math.Abs(idle)) {
				t.Fatalf("%s stage %d: bubbles %v != idle %v", name, i, bubbles, idle)
			}
			critSum += s.CritNS
		}
		// The path partitions [0, makespan] across stages.
		if math.Abs(critSum-res.MakespanNS) > 1e-9*(1+res.MakespanNS) {
			t.Fatalf("%s: per-stage crit sums to %v, makespan %v", name, critSum, res.MakespanNS)
		}
		if res.Eq6NS <= 0 || res.MakespanNS < res.Eq6NS-1e-6*res.Eq6NS {
			t.Fatalf("%s: makespan %v below eq.(6) bound %v", name, res.MakespanNS, res.Eq6NS)
		}
		if res.Bottleneck == "" {
			t.Fatalf("%s: no bottleneck named", name)
		}
	}
}
