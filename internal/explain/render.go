package explain

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON writes the full analysis as indented JSON. encoding/json
// over tagged structs and ordered slices: bytes are a deterministic
// function of the result.
func (r *Result) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Summary returns the headline lines of the analysis, one fact each.
func (r *Result) Summary() []string {
	lines := []string{
		fmt.Sprintf("makespan: %.4g ns over %d micro-batches", r.MakespanNS, r.MicroBatches),
		fmt.Sprintf("eq.(6) closed form: %.4g ns (gap %.4g ns, %.2f%%)",
			r.Eq6NS, r.Eq6GapNS, r.Eq6GapFrac*100),
		fmt.Sprintf("bottleneck: %s (%.1f%% of the critical path's time)",
			r.Bottleneck, r.bottleneckShare()*100),
		fmt.Sprintf("critical path: %d events (%d data-dep, %d occupancy, %d barrier)",
			len(r.Path), r.PathReasons.DataDep, r.PathReasons.Occupancy, r.PathReasons.Barrier),
	}
	return lines
}

func (r *Result) bottleneckShare() float64 {
	if len(r.Stages) == 0 {
		return 0
	}
	return r.Stages[r.BottleneckStage].CritShare
}

// StageTable returns the per-stage analysis in the experiments render
// conventions (header + string rows + notes). The CLI wraps it in an
// experiments.Result; this package returns plain data instead because
// importing experiments from here would cycle through accel.
func (r *Result) StageTable() (header []string, rows [][]string, notes []string) {
	header = []string{"stage", "replicas", "t (ns)", "util %", "crit %",
		"slack rank", "fill (ns)", "drain (ns)", "starve (ns)", "occupancy (ns)"}
	if r.Sensitivity {
		header = append(header, "Δ +1 rep (ns)", "Δ −1 rep (ns)")
	}
	for _, s := range r.Stages {
		row := []string{
			s.Name,
			fmt.Sprintf("%d", s.Replicas),
			fmt.Sprintf("%.4g", s.TimeNS),
			fmt.Sprintf("%.1f", s.Utilization*100),
			fmt.Sprintf("%.1f", s.CritShare*100),
			fmt.Sprintf("%d", s.SlackRank),
			fmt.Sprintf("%.4g", s.FillNS),
			fmt.Sprintf("%.4g", s.DrainNS),
			fmt.Sprintf("%.4g", s.StarveNS),
			fmt.Sprintf("%.4g", s.OccupancyNS),
		}
		if r.Sensitivity {
			minus := "n/a"
			if s.Replicas > 1 {
				minus = fmt.Sprintf("%+.4g", s.DeltaMinusNS)
			}
			row = append(row, fmt.Sprintf("%+.4g", s.DeltaPlusNS), minus)
		}
		rows = append(rows, row)
	}
	notes = append(r.Summary(),
		"crit % = share of the makespan this stage spends on the critical path; slack rank 1 = bottleneck",
		"bubble columns sum (with busy time) to makespan x replicas per stage")
	return header, rows, notes
}
