package fault

import (
	"math"
	"testing"

	"gopim/internal/endurance"
	"gopim/internal/mapping"
)

// The endurance–fault coupling: a training profile whose cell write
// traffic crosses ReRAMWriteLimit must produce the wear-out stuck
// cells the fault layer predicts — at least half the cells of an
// always-rewritten row stuck, retry factors saturating at the verify
// budget — while the same profile kept under the limit by ISU's stale
// refreshes stays essentially fault-free.
func TestEnduranceProfileCrossingLimitWearsCells(t *testing.T) {
	prof := endurance.Profile{
		WritesPerVertexPerEpoch: 1,
		EpochsPerRun:            200,
		RunsPerDay:              50, // 1e4 cell writes/day for hot rows
	}

	// Run the array until the hot rows' lifetime is exhausted (the day
	// LifetimeDays predicts), then ask the fault layer what is stuck.
	hotDays := endurance.LifetimeDays(prof, 1, endurance.ReRAMWriteLimit)
	hotWrites := endurance.TotalCellWrites(prof, 1, hotDays)
	if math.Abs(hotWrites-endurance.ReRAMWriteLimit) > 1 {
		t.Fatalf("lifetime accounting mismatch: %v writes at end of life, want %v",
			hotWrites, endurance.ReRAMWriteLimit)
	}
	if f := WearStuckFraction(hotWrites); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("at end of life the fault layer predicts %v stuck, want 0.5", f)
	}

	worn := MustNew(Config{Seed: 1, WearWritesPerCell: hotWrites})
	if !worn.Enabled() {
		t.Fatal("a profile at the write limit must enable the fault model")
	}
	if got := worn.EffectiveRate(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("effective rate %v, want the wear fraction 0.5", got)
	}
	// Half the cells stuck drives every row write to its retry budget.
	if f := worn.RetryFactor(64); f != float64(DefaultVerifyMax) {
		t.Fatalf("worn-out retry factor %v, want saturation at %d", f, DefaultVerifyMax)
	}

	// ISU's cold rows (stale period 20) see 1/20th of the traffic at
	// the same calendar day, and the fault layer agrees they are fine:
	// the 20× write reduction is the array-life extension of §IV-A.
	plan := &mapping.UpdatePlan{Theta: 0.5, StalePeriod: 20}
	coldWrites := endurance.TotalCellWrites(prof, 1/float64(plan.StalePeriod), hotDays)
	cold := MustNew(Config{Seed: 1, WearWritesPerCell: coldWrites})
	if f := cold.EffectiveRate(); f > 1e-6 {
		t.Fatalf("cold rows at 1/20th traffic already %v stuck", f)
	}
	if f := cold.RetryFactor(64); f > 1.001 {
		t.Fatalf("cold-row retry factor %v, want ≈ 1", f)
	}
}
