// Package fault is a deterministic, seed-driven ReRAM fault model:
// stuck-at-0/1 cell maps per crossbar, write-variation retry costs,
// and endurance-driven wear-out where cells that exhaust the §IV-A
// 10⁸ write budget become stuck. The rest of the stack consumes it
// through four views:
//
//   - reram: a write-verify retry factor that stretches row programming
//     (RetryFactor), adding latency and — through the energy model,
//     which prices writes by ProgramRowNS — energy per retry.
//   - alloc: crossbars whose stuck-cell density exceeds the retirement
//     threshold leave the replica free pool (Retired); the greedy
//     allocator degrades to fewer replicas, never a panic.
//   - mapping: the same per-crossbar verdict marks dead groups so
//     interleaved striping places vertex stripes on healthy crossbars
//     (DeadGroups).
//   - quant/gcn: StuckMask pins individual cell slices of written
//     values to 0 or full-scale, so training sees the precision damage
//     a worn array inflicts.
//
// Everything is off by default (a nil or zero-rate model changes no
// code path) and byte-deterministic when on: every random quantity
// derives from a splitmix64 stream keyed by (Seed, stable index) — the
// same per-unit-stream pattern as predictor's profile generation —
// never by worker count or execution order.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"gopim/internal/endurance"
	"gopim/internal/obs"
)

// DefaultVerifyMax is the write-verify retry budget when none is
// configured: after this many program-verify iterations the write is
// declared done (matching the Table II chip's 8 verify cycles).
const DefaultVerifyMax = 8

// Config describes one fault-injection scenario.
type Config struct {
	// Rate is the per-cell stuck-at fault probability in [0, 1].
	// 0 disables the model entirely.
	Rate float64
	// Seed drives every fault map; fault-enabled runs are
	// byte-identical for a fixed seed at any worker count.
	Seed int64
	// VerifyMax bounds the program-verify loop per row write
	// (default DefaultVerifyMax).
	VerifyMax int
	// RetireThreshold is the stuck-cell density above which a crossbar
	// is retired from the replica free pool. 0 means 2×Rate: a crossbar
	// twice as faulty as the array average is not worth repairing
	// around.
	RetireThreshold float64
	// WearWritesPerCell, when positive, adds endurance wear-out on top
	// of Rate: the stuck fraction grows with the lognormal lifetime
	// model around endurance.ReRAMWriteLimit (WearStuckFraction).
	WearWritesPerCell float64
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case math.IsNaN(c.Rate) || c.Rate < 0 || c.Rate > 1:
		return fmt.Errorf("fault: rate %v must be in [0,1]", c.Rate)
	case c.VerifyMax < 0:
		return fmt.Errorf("fault: verify budget %d must be positive", c.VerifyMax)
	case math.IsNaN(c.RetireThreshold) || c.RetireThreshold < 0 || c.RetireThreshold > 1:
		return fmt.Errorf("fault: retire threshold %v must be in [0,1]", c.RetireThreshold)
	case math.IsNaN(c.WearWritesPerCell) || math.IsInf(c.WearWritesPerCell, 0) || c.WearWritesPerCell < 0:
		return fmt.Errorf("fault: wear writes/cell %v must be finite and non-negative", c.WearWritesPerCell)
	}
	return nil
}

// Model is a ready-to-query fault map. The zero value and nil both
// behave as "no faults". Models are safe for concurrent use: the
// experiment fan-out shares one model across workers.
type Model struct {
	cfg Config

	mu      sync.Mutex
	retired map[int]float64 // cells-per-crossbar → sampled retired fraction
}

// New builds a model, validating the configuration. VerifyMax 0 takes
// the default.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.VerifyMax == 0 {
		cfg.VerifyMax = DefaultVerifyMax
	}
	if cfg.RetireThreshold == 0 {
		cfg.RetireThreshold = 2 * cfg.Rate
	}
	return &Model{cfg: cfg, retired: map[int]float64{}}, nil
}

// MustNew is New for configurations known valid at the call site.
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Enabled reports whether the model injects anything. A nil model is
// disabled, so call sites thread *Model without nil checks.
func (m *Model) Enabled() bool {
	return m != nil && m.EffectiveRate() > 0
}

// Config returns the (defaulted) configuration.
func (m *Model) Config() Config {
	if m == nil {
		return Config{}
	}
	return m.cfg
}

// EffectiveRate is the per-cell stuck probability including wear-out:
// a cell is stuck if manufacturing variation or exhausted endurance
// claims it, 1 − (1−Rate)·(1−wear).
func (m *Model) EffectiveRate() float64 {
	if m == nil {
		return 0
	}
	r := m.cfg.Rate
	if m.cfg.WearWritesPerCell > 0 {
		r = 1 - (1-r)*(1-WearStuckFraction(m.cfg.WearWritesPerCell))
	}
	return r
}

// RetryFactor is the expected number of program-verify iterations for
// one row of cellsPerRow cells, relative to the fault-free single
// pass: a row re-enters the loop while any of its cells still misses
// its target conductance, so the per-iteration failure probability is
// q = 1 − (1−rate)^cells and the truncated-geometric expectation is
// (1 − q^VerifyMax)/(1 − q), clamped by the verify budget. 1.0 when
// disabled — reram gates on > 1, so the fault-free timing path is
// untouched bit for bit.
func (m *Model) RetryFactor(cellsPerRow int) float64 {
	rate := m.EffectiveRate()
	if rate == 0 || cellsPerRow <= 0 {
		return 1
	}
	q := 1 - math.Pow(1-rate, float64(cellsPerRow))
	if q >= 1 {
		return float64(m.cfg.VerifyMax)
	}
	e := (1 - math.Pow(q, float64(m.cfg.VerifyMax))) / (1 - q)
	if e < 1 {
		e = 1
	}
	return e
}

// retireSample is how many crossbars the retired-fraction estimate
// draws. The chip has 16.7M crossbars — far too many to enumerate per
// run — but the fraction of a fixed deterministic sample converges
// fast and depends only on (Seed, cells), never on the caller.
const retireSample = 4096

// StuckCells returns crossbar id's deterministic stuck-cell count: the
// inverse CDF of Poisson(cells×rate) — normal beyond λ=256 — evaluated
// on the crossbar's own splitmix uniform, so the verdict for a given
// id never depends on which ids were queried before it.
func (m *Model) StuckCells(id int64, cells int) int {
	rate := m.EffectiveRate()
	if rate == 0 || cells <= 0 {
		return 0
	}
	u := uniform(m.cfg.Seed, id)
	lambda := float64(cells) * rate
	n := poissonInv(u, lambda)
	if n > cells {
		n = cells
	}
	return n
}

// CrossbarRetired reports whether crossbar id's stuck-cell density
// exceeds the retirement threshold.
func (m *Model) CrossbarRetired(id int64, cells int) bool {
	if !m.Enabled() || cells <= 0 {
		return false
	}
	return float64(m.StuckCells(id, cells)) > m.cfg.RetireThreshold*float64(cells)
}

// RetiredFraction estimates the fraction of crossbars the retirement
// threshold excludes, from a fixed sample of retireSample crossbar
// streams. Cached per cell count.
func (m *Model) RetiredFraction(cells int) float64 {
	if !m.Enabled() || cells <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.retired[cells]; ok {
		return f
	}
	hit := 0
	for i := 0; i < retireSample; i++ {
		if float64(m.StuckCells(int64(i), cells)) > m.cfg.RetireThreshold*float64(cells) {
			hit++
		}
	}
	f := float64(hit) / retireSample
	m.retired[cells] = f
	return f
}

// Retired scales the sampled retirement fraction to a chip: how many
// of total crossbars of the given cell count leave the free pool.
func (m *Model) Retired(total, cells int) int {
	if !m.Enabled() || total <= 0 {
		return 0
	}
	return int(math.Round(m.RetiredFraction(cells) * float64(total)))
}

// DeadGroups returns per-crossbar-group dead flags for a mapping that
// needs `needed` healthy groups: flag g is crossbar g's retirement
// verdict. The slice is extended until it contains `needed` healthy
// entries (capped at 4×needed + retireSample so a pathological
// threshold still terminates; callers treat indices beyond the slice
// as healthy).
func (m *Model) DeadGroups(needed, cells int) []bool {
	if !m.Enabled() || needed <= 0 {
		return nil
	}
	limit := 4*needed + retireSample
	dead := make([]bool, 0, needed)
	healthy := 0
	for id := 0; healthy < needed && id < limit; id++ {
		d := m.CrossbarRetired(int64(id), cells)
		dead = append(dead, d)
		if !d {
			healthy++
		}
	}
	return dead
}

// ExpectedStuckCells is the expected stuck-cell count over an array
// region (counter fodder for accel.faulty_cells).
func (m *Model) ExpectedStuckCells(crossbars, cells int) int64 {
	if !m.Enabled() {
		return 0
	}
	return int64(math.Round(m.EffectiveRate() * float64(crossbars) * float64(cells)))
}

// WearStuckFraction is the analytic wear-out model: the fraction of
// cells stuck after `writes` program cycles, a lognormal lifetime CDF
// centred on endurance.ReRAMWriteLimit with shape σ = 0.5 (cell
// endurance spreads roughly half a decade). ≈0 well below the limit,
// exactly 0.5 at it, →1 beyond — deterministic, no RNG.
func WearStuckFraction(writes float64) float64 {
	if writes <= 0 {
		return 0
	}
	const sigma = 0.5
	z := (math.Log(writes) - math.Log(endurance.ReRAMWriteLimit)) / sigma
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Mask records which elements of one written matrix land on stuck
// cell slices, and how each is pinned. Masks are generated from
// per-row streams keyed by (Seed, tag, row), so they are identical at
// any worker count and stable across epochs — stuck cells do not move.
type Mask struct {
	Rows, Cols int
	// Slice[r*Cols+c] is the stuck cell-slice index for the element, or
	// -1 for a healthy element.
	Slice []int8
	// High[r*Cols+c] pins the slice to full-scale (stuck-at-1) rather
	// than zero.
	High []bool
	// Stuck counts affected elements.
	Stuck int
}

// StuckMask draws the stuck map for one rows×cols matrix written at
// cellsPerValue cells per element. tag names the matrix (for example
// "w0" or "f1") so distinct matrices get independent streams.
func (m *Model) StuckMask(tag string, rows, cols, cellsPerValue int) *Mask {
	if !m.Enabled() || rows <= 0 || cols <= 0 || cellsPerValue <= 0 {
		return nil
	}
	rate := m.EffectiveRate()
	// An element is hit when any of its cells is stuck.
	pElem := 1 - math.Pow(1-rate, float64(cellsPerValue))
	msk := &Mask{
		Rows:  rows,
		Cols:  cols,
		Slice: make([]int8, rows*cols),
		High:  make([]bool, rows*cols),
	}
	th := tagHash(tag)
	for r := 0; r < rows; r++ {
		rng := rand.New(rand.NewSource(streamSeed(m.cfg.Seed, th, int64(r))))
		base := r * cols
		for c := 0; c < cols; c++ {
			if rng.Float64() >= pElem {
				msk.Slice[base+c] = -1
				continue
			}
			msk.Slice[base+c] = int8(rng.Intn(cellsPerValue))
			msk.High[base+c] = rng.Float64() < 0.5
			msk.Stuck++
		}
	}
	if msk.Stuck == 0 {
		return nil
	}
	return msk
}

// tagHash folds a matrix tag into the stream key (FNV-1a).
func tagHash(tag string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= 1099511628211
	}
	return int64(h)
}

// streamSeed derives the seed of stream (base, key, i) with a
// splitmix64-style mix — the predictor.unitSeed pattern. The stream
// depends only on its stable identity, never on worker count or
// query order.
func streamSeed(base, key, i int64) int64 {
	z := uint64(base) ^ uint64(key)*0x9e3779b97f4a7c15
	z += 0x9e3779b97f4a7c15 * uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// uniform maps stream (seed, id) to one double in [0, 1).
func uniform(seed, id int64) float64 {
	z := uint64(streamSeed(seed, 0x5fa7, id))
	return float64(z>>11) / float64(1<<53)
}

// poissonInv is the inverse CDF of Poisson(λ) at u, by direct CDF
// accumulation for small λ and a normal approximation beyond λ=256
// (exact accumulation underflows and slows there; the verdicts only
// feed density thresholds, so tail shape matters more than exactness).
func poissonInv(u, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 256 {
		z := math.Sqrt2 * math.Erfinv(2*u-1)
		n := int(math.Round(lambda + math.Sqrt(lambda)*z))
		if n < 0 {
			n = 0
		}
		return n
	}
	p := math.Exp(-lambda)
	cdf := p
	n := 0
	for u >= cdf && n < 1<<20 {
		n++
		p *= lambda / float64(n)
		cdf += p
	}
	return n
}

// defaultModel is the process-wide model the CLI installs; nil means
// disabled. accel and gcn consult it when no explicit model is given,
// mirroring parallel.SetWorkers.
var defaultModel atomic.Pointer[Model]

// SetDefault installs the process-wide model (nil disables).
func SetDefault(m *Model) {
	defaultModel.Store(m)
}

// Default returns the process-wide model, possibly nil.
func Default() *Model {
	return defaultModel.Load()
}

// Flag-fallback metrics, Wall-side like parallel.env_workers_invalid:
// whether a flag was mis-typed is a property of the invocation, not
// the simulated workload.
var mFlagsInvalid = obs.NewCounter("fault.flags_invalid", obs.Wall,
	"invalid -fault-* flag values replaced by safe defaults")

// FromFlags validates the CLI's -fault-* values before any experiment
// runs, routing invalid ones through the obs warn path + counter and
// falling back to safe defaults — the GOPIM_WORKERS pattern: a typo
// degrades the run, it never kills it. Returns nil when the (possibly
// corrected) rate disables injection.
func FromFlags(rate float64, seed int64, verifyMax int) *Model {
	if math.IsNaN(rate) || rate < 0 || rate > 1 {
		mFlagsInvalid.Inc()
		obs.Warnf("fault", "ignoring invalid -fault-rate %v (want a probability in [0,1]); faults disabled", rate)
		rate = 0
	}
	if verifyMax <= 0 {
		mFlagsInvalid.Inc()
		obs.Warnf("fault", "ignoring invalid -fault-verify-max %d (want a positive retry budget); using %d", verifyMax, DefaultVerifyMax)
		verifyMax = DefaultVerifyMax
	}
	if rate == 0 {
		return nil
	}
	return MustNew(Config{Rate: rate, Seed: seed, VerifyMax: verifyMax})
}
