package fault

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"gopim/internal/endurance"
	"gopim/internal/obs"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Rate: -0.1},
		{Rate: 1.5},
		{Rate: math.NaN()},
		{Rate: 0.1, VerifyMax: -1},
		{Rate: 0.1, RetireThreshold: 2},
		{Rate: 0.1, RetireThreshold: math.NaN()},
		{Rate: 0.1, WearWritesPerCell: math.Inf(1)},
		{Rate: 0.1, WearWritesPerCell: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
	if _, err := New(Config{Rate: 0.01, Seed: 3}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestNilAndZeroRateDisabled(t *testing.T) {
	var nilModel *Model
	if nilModel.Enabled() {
		t.Fatal("nil model must be disabled")
	}
	m := MustNew(Config{Rate: 0, Seed: 1})
	if m.Enabled() {
		t.Fatal("rate-0 model must be disabled")
	}
	if got := m.RetryFactor(64); got != 1 {
		t.Fatalf("disabled RetryFactor = %v, want exactly 1", got)
	}
	if nilModel.RetryFactor(64) != 1 || nilModel.Retired(100, 4096) != 0 ||
		nilModel.StuckMask("w0", 4, 4, 8) != nil || nilModel.DeadGroups(8, 4096) != nil {
		t.Fatal("nil model must be a no-op everywhere")
	}
}

func TestRetryFactorShape(t *testing.T) {
	m := MustNew(Config{Rate: 1e-3, Seed: 1})
	f := m.RetryFactor(64)
	if f <= 1 || f > float64(DefaultVerifyMax) {
		t.Fatalf("RetryFactor(64) = %v, want in (1, %d]", f, DefaultVerifyMax)
	}
	// Monotone in rate and saturating at the verify budget.
	hi := MustNew(Config{Rate: 0.5, Seed: 1}).RetryFactor(64)
	if hi <= f {
		t.Fatalf("retry factor not monotone in rate: %v vs %v", hi, f)
	}
	sat := MustNew(Config{Rate: 1, Seed: 1}).RetryFactor(64)
	if sat != float64(DefaultVerifyMax) {
		t.Fatalf("rate-1 retry factor = %v, want the verify budget %d", sat, DefaultVerifyMax)
	}
}

// Fault maps are pure functions of (Seed, stable index): querying the
// same ids from many goroutines in scrambled order yields the single-
// threaded answer.
func TestCrossbarVerdictsDeterministic(t *testing.T) {
	m := MustNew(Config{Rate: 5e-3, Seed: 42})
	const cells = 4096
	want := make([]int, 512)
	for i := range want {
		want[i] = m.StuckCells(int64(i), cells)
	}
	m2 := MustNew(Config{Rate: 5e-3, Seed: 42})
	var wg sync.WaitGroup
	got := make([]int, len(want))
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := len(want) - 1 - w; i >= 0; i -= 8 {
				got[i] = m2.StuckCells(int64(i), cells)
			}
		}(w)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("crossbar %d: concurrent verdict %d != serial %d", i, got[i], want[i])
		}
	}
}

func TestStuckCellsDistribution(t *testing.T) {
	m := MustNew(Config{Rate: 1e-3, Seed: 7})
	const cells = 4096
	lambda := 1e-3 * cells
	var sum float64
	for i := 0; i < 2000; i++ {
		sum += float64(m.StuckCells(int64(i), cells))
	}
	mean := sum / 2000
	if mean < lambda*0.8 || mean > lambda*1.2 {
		t.Fatalf("mean stuck cells %v far from λ=%v", mean, lambda)
	}
}

func TestRetiredFractionScalesWithThreshold(t *testing.T) {
	loose := MustNew(Config{Rate: 1e-3, Seed: 9}) // threshold 2×rate
	tight := MustNew(Config{Rate: 1e-3, Seed: 9, RetireThreshold: 1e-3})
	fl, ft := loose.RetiredFraction(4096), tight.RetiredFraction(4096)
	if fl < 0 || fl > 1 || ft < 0 || ft > 1 {
		t.Fatalf("fractions out of range: %v, %v", fl, ft)
	}
	if ft <= fl {
		t.Fatalf("tighter threshold must retire more: %v (tight) vs %v (loose)", ft, fl)
	}
	if got := loose.Retired(1000, 4096); got != int(math.Round(fl*1000)) {
		t.Fatalf("Retired(1000) = %d, want %d", got, int(math.Round(fl*1000)))
	}
}

func TestDeadGroupsSuppliesHealthy(t *testing.T) {
	m := MustNew(Config{Rate: 0.02, Seed: 5, RetireThreshold: 0.02})
	dead := m.DeadGroups(100, 4096)
	healthy := 0
	for _, d := range dead {
		if !d {
			healthy++
		}
	}
	if healthy < 100 {
		t.Fatalf("DeadGroups returned only %d healthy of %d flags", healthy, len(dead))
	}
	// And it terminates even when everything is dead.
	all := MustNew(Config{Rate: 1, Seed: 5, RetireThreshold: 1e-9})
	if got := all.DeadGroups(10, 4096); len(got) > 4*10+retireSample {
		t.Fatalf("pathological DeadGroups did not cap: %d flags", len(got))
	}
}

func TestWearStuckFraction(t *testing.T) {
	if f := WearStuckFraction(0); f != 0 {
		t.Fatalf("no writes, wear %v", f)
	}
	if f := WearStuckFraction(endurance.ReRAMWriteLimit / 100); f > 0.01 {
		t.Fatalf("1%% of the write budget already wears %v of cells", f)
	}
	if f := WearStuckFraction(endurance.ReRAMWriteLimit); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("at the write limit wear = %v, want 0.5", f)
	}
	if f := WearStuckFraction(endurance.ReRAMWriteLimit * 100); f < 0.99 {
		t.Fatalf("100× the write budget wears only %v", f)
	}
	// Wear feeds the effective rate.
	worn := MustNew(Config{Rate: 0, Seed: 1, WearWritesPerCell: endurance.ReRAMWriteLimit})
	if !worn.Enabled() || math.Abs(worn.EffectiveRate()-0.5) > 1e-12 {
		t.Fatalf("worn-out model effective rate %v, want 0.5", worn.EffectiveRate())
	}
}

func TestStuckMaskDeterministicAndStable(t *testing.T) {
	m := MustNew(Config{Rate: 0.01, Seed: 11})
	a := m.StuckMask("w0", 50, 40, 8)
	b := MustNew(Config{Rate: 0.01, Seed: 11}).StuckMask("w0", 50, 40, 8)
	if a == nil || b == nil {
		t.Fatal("expected stuck elements at rate 0.01 over 2000 elements")
	}
	if a.Stuck != b.Stuck || !bytes.Equal(boolBytes(a.High), boolBytes(b.High)) {
		t.Fatal("same (seed, tag, shape) must give identical masks")
	}
	for i := range a.Slice {
		if a.Slice[i] != b.Slice[i] {
			t.Fatalf("slice index %d differs", i)
		}
	}
	other := m.StuckMask("w1", 50, 40, 8)
	if other != nil && other.Stuck == a.Stuck {
		same := true
		for i := range a.Slice {
			if a.Slice[i] != other.Slice[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different tags produced identical masks")
		}
	}
	// Expected hit fraction ≈ 1 − (1−rate)^cells.
	p := 1 - math.Pow(1-0.01, 8)
	frac := float64(a.Stuck) / float64(50*40)
	if frac < p/2 || frac > p*2 {
		t.Fatalf("stuck fraction %v far from expectation %v", frac, p)
	}
}

func boolBytes(bs []bool) []byte {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = 1
		}
	}
	return out
}

func TestFromFlagsFallbacks(t *testing.T) {
	restore := obs.SetWarnOutput(&bytes.Buffer{})
	defer restore()
	if m := FromFlags(0, 1, 8); m != nil {
		t.Fatal("rate 0 must return a nil (disabled) model")
	}
	if m := FromFlags(-0.5, 1, 8); m != nil {
		t.Fatal("negative rate must fall back to disabled")
	}
	if m := FromFlags(1.5, 1, 8); m != nil {
		t.Fatal("rate > 1 must fall back to disabled")
	}
	if m := FromFlags(math.NaN(), 1, 8); m != nil {
		t.Fatal("NaN rate must fall back to disabled")
	}
	m := FromFlags(0.01, 3, 0) // zero verify budget → default
	if m == nil || m.Config().VerifyMax != DefaultVerifyMax {
		t.Fatalf("zero verify budget must fall back to %d, got %+v", DefaultVerifyMax, m.Config())
	}
	if m.Config().Rate != 0.01 || m.Config().Seed != 3 {
		t.Fatalf("valid fields must survive the fallback: %+v", m.Config())
	}
}

func TestSetDefault(t *testing.T) {
	defer SetDefault(nil)
	if Default() != nil {
		t.Fatal("default model must start nil")
	}
	m := MustNew(Config{Rate: 0.01, Seed: 1})
	SetDefault(m)
	if Default() != m {
		t.Fatal("SetDefault did not install the model")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) must disable")
	}
}
