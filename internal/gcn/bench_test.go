package gcn

import (
	"testing"

	"gopim/internal/graphgen"
)

func BenchmarkTrainEpoch(b *testing.B) {
	d, err := graphgen.ByName("arxiv")
	if err != nil {
		b.Fatal(err)
	}
	d.HiddenCh = 64
	d.FeatureDim = 32
	d.NumClasses = 8
	d.Layers = 2
	inst := d.Synthesize(1, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(inst, Config{Epochs: 1, Seed: 1, LR: 0.01})
	}
}
