package gcn

import (
	"testing"

	"gopim/internal/graphgen"
)

func BenchmarkTrainEpoch(b *testing.B) {
	d, err := graphgen.ByName("arxiv")
	if err != nil {
		b.Fatal(err)
	}
	d.HiddenCh = 64
	d.FeatureDim = 32
	d.NumClasses = 8
	d.Layers = 2
	inst := d.Synthesize(1, 500)
	// One Train call with b.N epochs: per-op numbers are per-epoch with
	// the per-run setup (weights, workspace, Â/Âᵀ caches) amortised
	// away, which is what the training loop costs once warm.
	b.ReportAllocs()
	b.ResetTimer()
	Train(inst, Config{Epochs: b.N, Seed: 1, LR: 0.01})
}
