package gcn

import (
	"math"
	"testing"

	"gopim/internal/fault"
	"gopim/internal/mapping"
	"gopim/internal/parallel"
)

// A disabled fault model must leave training byte-identical to no
// model at all: the masks gate on Enabled(), so the rate-0 path is
// structurally the same code.
func TestFaultDisabledMatchesNoFault(t *testing.T) {
	inst := smallNodeInstance(t, 200)
	base := Train(inst, Config{Epochs: 10, Seed: 5, LR: 0.01, QuantBits: 16})
	off := fault.MustNew(fault.Config{Rate: 0, Seed: 9})
	got := Train(inst, Config{Epochs: 10, Seed: 5, LR: 0.01, QuantBits: 16, Fault: off})
	if got.Accuracy != base.Accuracy {
		t.Fatalf("disabled fault model changed accuracy: %v vs %v", got.Accuracy, base.Accuracy)
	}
	for i := range base.TrainLoss {
		if math.Float64bits(got.TrainLoss[i]) != math.Float64bits(base.TrainLoss[i]) {
			t.Fatalf("epoch %d loss differs with a disabled fault model", i)
		}
	}
}

// Fault injection must be reproducible — same model, same damage —
// and actually perturb training relative to the fault-free run.
func TestFaultMasksDegradeDeterministically(t *testing.T) {
	inst := smallNodeInstance(t, 200)
	clean := Train(inst, Config{Epochs: 10, Seed: 5, LR: 0.01, QuantBits: 16})
	cfg := Config{Epochs: 10, Seed: 5, LR: 0.01, QuantBits: 16,
		Fault: fault.MustNew(fault.Config{Rate: 0.02, Seed: 7})}
	a := Train(inst, cfg)
	b := Train(inst, cfg)
	for i := range a.TrainLoss {
		if math.Float64bits(a.TrainLoss[i]) != math.Float64bits(b.TrainLoss[i]) {
			t.Fatalf("epoch %d: fault-injected training not reproducible", i)
		}
	}
	if a.Accuracy != b.Accuracy {
		t.Fatalf("fault-injected accuracy not reproducible: %v vs %v", a.Accuracy, b.Accuracy)
	}
	perturbed := a.Accuracy != clean.Accuracy
	for i := range a.TrainLoss {
		if a.TrainLoss[i] != clean.TrainLoss[i] {
			perturbed = true
		}
	}
	if !perturbed {
		t.Fatal("2% stuck cells left training bit-identical to fault-free")
	}
	if a.Accuracy < 0 || a.Accuracy > 1 || math.IsNaN(a.Accuracy) {
		t.Fatalf("fault-injected accuracy %v out of range", a.Accuracy)
	}
}

// Fault injection without explicit quantisation: the model forces the
// Table II width on, since stuck cells damage physical bit slices.
func TestFaultImpliesQuantisation(t *testing.T) {
	inst := smallNodeInstance(t, 200)
	cfg := Config{Epochs: 8, Seed: 5, LR: 0.01,
		Fault: fault.MustNew(fault.Config{Rate: 0.02, Seed: 7})}
	a := Train(inst, cfg)
	b := Train(inst, cfg)
	if a.Accuracy != b.Accuracy {
		t.Fatalf("not reproducible: %v vs %v", a.Accuracy, b.Accuracy)
	}
	if a.Accuracy < 0 || a.Accuracy > 1 || math.IsNaN(a.Accuracy) {
		t.Fatalf("accuracy %v out of range", a.Accuracy)
	}
}

// Fault-masked training under ISU — the per-row mask path — must stay
// byte-identical at 1, 2 and 8 workers: masks key on (seed, tag, row),
// never on scheduling.
func TestTrainFaultDeterministicAcrossWorkers(t *testing.T) {
	inst := smallNodeInstance(t, 300)
	degs := make([]float64, inst.Graph.N)
	for v := range degs {
		degs[v] = float64(inst.Graph.Degree(v))
	}
	plan := mapping.NewUpdatePlan(degs, 0.5, 5)
	run := func() Result {
		return Train(inst, Config{Epochs: 12, Seed: 3, LR: 0.01, Plan: plan,
			QuantBits: 16, Fault: fault.MustNew(fault.Config{Rate: 0.02, Seed: 7})})
	}
	parallel.SetWorkers(1)
	base := run()
	defer parallel.SetWorkers(0)
	for _, w := range []int{2, 8} {
		parallel.SetWorkers(w)
		got := run()
		if got.Accuracy != base.Accuracy {
			t.Fatalf("workers=%d: accuracy %v vs serial %v", w, got.Accuracy, base.Accuracy)
		}
		for i := range base.TrainLoss {
			if math.Float64bits(got.TrainLoss[i]) != math.Float64bits(base.TrainLoss[i]) {
				t.Fatalf("workers=%d: epoch %d loss %v vs serial %v",
					w, i, got.TrainLoss[i], base.TrainLoss[i])
			}
		}
	}
}
