// Package gcn implements full GCN training in software — forward and
// backward passes over Combination (H·W) and Aggregation (Â·C) stages
// with ReLU activations — plus the ISU staleness semantics of GoPIM's
// selective vertex updating: the feature rows aggregation reads for
// non-important vertices come from a stale snapshot that refreshes
// every StalePeriod epochs, exactly as rows left unwritten on a ReRAM
// crossbar would (paper §VI).
//
// The package produces the accuracy numbers of paper Table V and the
// θ-sensitivity curves of Fig. 16(a)/(b). Node-classification tasks
// use softmax cross-entropy; link-prediction tasks score vertex pairs
// by embedding dot products with logistic loss.
package gcn

import (
	"fmt"
	"math"
	"math/rand"

	"gopim/internal/graphgen"
	"gopim/internal/mapping"
	"gopim/internal/obs"
	"gopim/internal/quant"
	"gopim/internal/sparsemat"
	"gopim/internal/tensor"
)

// Training metrics. Run, epoch and row-write counts depend only on the
// configuration and the deterministic per-run RNG stream, so they stay
// on the Sim clock; the per-epoch timer measures real scheduling and is
// Wall. gcn.rows_rewritten is the ISU write-traffic figure: without a
// plan (or on the first epoch) every combined-feature row is written,
// with a plan only the rows due this epoch are — the ratio against
// gcn.rows_total is the write reduction selective updating buys.
var (
	mTrainRuns = obs.NewCounter("gcn.train_runs", obs.Sim,
		"GCN training runs started")
	mEpochs = obs.NewCounter("gcn.epochs", obs.Sim,
		"training epochs executed")
	mRowsRewritten = obs.NewCounter("gcn.rows_rewritten", obs.Sim,
		"combined-feature rows written to aggregation crossbars")
	mRowsTotal = obs.NewCounter("gcn.rows_total", obs.Sim,
		"combined-feature rows that a no-ISU run would have written")
	mEpochTime = obs.NewTimer("gcn.epoch_ns",
		"wall time per training epoch")
)

// Config controls one training run.
type Config struct {
	Epochs int
	// LR defaults to the dataset's Table IV learning rate when 0.
	LR float64
	// Dropout is the hidden-activation drop probability (Table IV);
	// negative means "use the dataset's value".
	Dropout float64
	Seed    int64
	// Plan enables ISU: non-important vertices' combined features are
	// served stale between refresh epochs. Nil trains exactly
	// (GoPIM-Vanilla).
	Plan *mapping.UpdatePlan
	// QuantBits, when ≥ 2, quantises everything the crossbars store —
	// weights after every gradient step and combined feature rows when
	// written — to the given fixed-point width (Table II: 16).
	// 0 trains in full float64.
	QuantBits int
}

// Result reports a training run.
type Result struct {
	// Accuracy is test accuracy for node tasks and the paired
	// ranking accuracy (pos > neg) for link tasks.
	Accuracy float64
	// TrainLoss per epoch.
	TrainLoss []float64
	// UpdatedRowFraction is the mean fraction of vertex rows rewritten
	// per epoch (1.0 without a plan) — the write-traffic reduction ISU
	// buys.
	UpdatedRowFraction float64
}

// Model is a trained GCN: one weight matrix per layer.
type Model struct {
	Weights []*tensor.Matrix
	// Embeddings is the final-layer output for every vertex.
	Embeddings *tensor.Matrix
}

// adamState is a minimal Adam optimiser for a set of weight matrices.
type adamState struct {
	lr   float64
	t    int
	m, v []*tensor.Matrix
}

func newAdam(lr float64, ws []*tensor.Matrix) *adamState {
	s := &adamState{lr: lr}
	for _, w := range ws {
		s.m = append(s.m, tensor.New(w.Rows, w.Cols))
		s.v = append(s.v, tensor.New(w.Rows, w.Cols))
	}
	return s
}

func (s *adamState) step(ws, grads []*tensor.Matrix) {
	const b1, b2, eps = 0.9, 0.999, 1e-8
	s.t++
	c1 := 1 - math.Pow(b1, float64(s.t))
	c2 := 1 - math.Pow(b2, float64(s.t))
	for i, w := range ws {
		g := grads[i]
		for j := range w.Data {
			s.m[i].Data[j] = b1*s.m[i].Data[j] + (1-b1)*g.Data[j]
			s.v[i].Data[j] = b2*s.v[i].Data[j] + (1-b2)*g.Data[j]*g.Data[j]
			w.Data[j] -= s.lr * (s.m[i].Data[j] / c1) / (math.Sqrt(s.v[i].Data[j]/c2) + eps)
		}
	}
}

// Train runs GCN training on a synthetic instance and returns the
// final test metric.
func Train(inst *graphgen.Instance, cfg Config) Result {
	if cfg.Epochs < 1 {
		panic(fmt.Sprintf("gcn: epochs %d must be ≥ 1", cfg.Epochs))
	}
	d := inst.Dataset
	lr := cfg.LR
	if lr == 0 {
		lr = d.LearningRate
	}
	dropout := cfg.Dropout
	if dropout < 0 {
		dropout = d.Dropout
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	adj := inst.Graph.Adj().SymNormalized()

	// Layer dims: input → hidden… → output. Node tasks map the final
	// layer onto the class count.
	dims := []int{inst.Features.Cols}
	for l := 1; l <= d.Layers; l++ {
		w := d.HiddenCh
		if l == d.Layers {
			if d.Task == graphgen.NodeClassification {
				w = d.NumClasses
			} else {
				w = d.OutputCh
			}
		}
		dims = append(dims, w)
	}
	weights := make([]*tensor.Matrix, d.Layers)
	for l := range weights {
		weights[l] = tensor.NewGlorot(rng, dims[l], dims[l+1])
	}
	opt := newAdam(lr, weights)

	// written[l] is the combined feature matrix as present on the
	// layer's aggregation crossbars; rows refresh per the plan.
	written := make([]*tensor.Matrix, d.Layers)

	mTrainRuns.Inc()
	var losses []float64
	var updatedRows, totalRows float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		t0 := obs.NowIfEnabled()
		mEpochs.Inc()
		if cfg.QuantBits >= 2 {
			// ReRAM write-time quantisation: the crossbars only ever
			// hold fixed-point weights.
			for _, w := range weights {
				quant.QuantizeMatrix(w, cfg.QuantBits)
			}
		}
		fw := forwardQuant(adj, inst.Features, weights, written, cfg.Plan, epoch, dropout, rng, cfg.QuantBits)
		updatedRows += fw.updatedFrac
		totalRows++

		var loss float64
		var dOut *tensor.Matrix
		switch d.Task {
		case graphgen.NodeClassification:
			loss, dOut = nodeLossGrad(fw.out, inst.Labels, inst.TrainMask)
		case graphgen.LinkPrediction:
			loss, dOut = linkLossGrad(rng, fw.out, inst.Graph)
		}
		losses = append(losses, loss)
		grads := backward(adj, fw, weights, dOut)
		opt.step(weights, grads)
		mEpochTime.ObserveSince(t0)
	}

	final := forwardQuant(adj, inst.Features, weights, written, nil, 0, 0, rng, cfg.QuantBits)
	res := Result{TrainLoss: losses, UpdatedRowFraction: updatedRows / totalRows}
	switch d.Task {
	case graphgen.NodeClassification:
		res.Accuracy = nodeAccuracy(final.out, inst.Labels, inst.TestMask)
	case graphgen.LinkPrediction:
		res.Accuracy = linkAccuracy(final.out, inst.PosEdges, inst.NegEdges)
	}
	return res
}

// forwardState caches one forward pass for backprop.
type forwardState struct {
	// inputs[l] is the input feature matrix of layer l (H_{l-1}).
	inputs []*tensor.Matrix
	// combined[l] is C_l = H_{l-1}·W_l as used by aggregation (possibly
	// partially stale under ISU).
	combined []*tensor.Matrix
	// aggregated[l] is Â·C_l before the nonlinearity.
	aggregated []*tensor.Matrix
	// masks[l] is the ReLU/dropout mask applied after layer l (nil for
	// the last layer).
	masks []*tensor.Matrix
	out   *tensor.Matrix
	// updatedFrac is the fraction of combined-feature rows rewritten
	// this epoch, averaged over layers.
	updatedFrac float64
}

func forward(adj *sparsemat.CSR, x *tensor.Matrix, weights []*tensor.Matrix,
	written []*tensor.Matrix, plan *mapping.UpdatePlan, epoch int,
	dropout float64, rng *rand.Rand) *forwardState {
	return forwardQuant(adj, x, weights, written, plan, epoch, dropout, rng, 0)
}

func forwardQuant(adj *sparsemat.CSR, x *tensor.Matrix, weights []*tensor.Matrix,
	written []*tensor.Matrix, plan *mapping.UpdatePlan, epoch int,
	dropout float64, rng *rand.Rand, quantBits int) *forwardState {

	fw := &forwardState{}
	h := x
	layers := len(weights)
	var updSum float64
	for l := 0; l < layers; l++ {
		fw.inputs = append(fw.inputs, h)
		c := tensor.MatMul(h, weights[l])
		if quantBits >= 2 {
			// Feature rows are quantised as they are written to the
			// aggregation crossbars.
			quant.QuantizeMatrix(c, quantBits)
		}

		mRowsTotal.Add(int64(c.Rows))
		if plan != nil {
			// ISU: copy fresh rows for vertices due this epoch; stale
			// rows stay as last written.
			if written[l] == nil {
				written[l] = c.Clone() // first epoch writes everything
				updSum++
				mRowsRewritten.Add(int64(c.Rows))
			} else {
				updated := 0
				for v := 0; v < c.Rows; v++ {
					if plan.UpdatedThisEpoch(v, epoch) {
						written[l].SetRow(v, c.Row(v))
						updated++
					}
				}
				updSum += float64(updated) / float64(c.Rows)
				mRowsRewritten.Add(int64(updated))
				c = written[l].Clone()
			}
		} else {
			updSum++
			mRowsRewritten.Add(int64(c.Rows))
		}
		fw.combined = append(fw.combined, c)

		a := adj.MulDense(c)
		fw.aggregated = append(fw.aggregated, a)
		if l+1 < layers {
			mask := a.ReLUMask()
			if dropout > 0 {
				keep := 1 - dropout
				for i := range mask.Data {
					if mask.Data[i] > 0 {
						if rng.Float64() < dropout {
							mask.Data[i] = 0
						} else {
							mask.Data[i] = 1 / keep // inverted dropout
						}
					}
				}
			}
			fw.masks = append(fw.masks, mask)
			h = a.Clone()
			h.MulInPlace(mask)
		} else {
			fw.masks = append(fw.masks, nil)
			h = a
		}
	}
	fw.out = h
	fw.updatedFrac = updSum / float64(layers)
	return fw
}

// backward runs standard GCN backprop from dOut (gradient w.r.t. the
// final aggregated output) and returns per-layer weight gradients.
// Stale rows are treated as the values actually used in the forward
// pass (the hardware computes gradients with the data it has).
func backward(adj *sparsemat.CSR, fw *forwardState, weights []*tensor.Matrix, dOut *tensor.Matrix) []*tensor.Matrix {
	layers := len(weights)
	grads := make([]*tensor.Matrix, layers)
	dA := dOut
	for l := layers - 1; l >= 0; l-- {
		if fw.masks[l] != nil {
			dA = dA.Clone()
			dA.MulInPlace(fw.masks[l])
		}
		// A = Â·C → dC = Âᵀ·dA.
		dC := adj.TMulDense(dA)
		// C = H·W → dW = Hᵀ·dC, dH = dC·Wᵀ.
		grads[l] = tensor.MatMul(fw.inputs[l].T(), dC)
		if l > 0 {
			dA = tensor.MatMul(dC, weights[l].T())
		}
	}
	return grads
}
