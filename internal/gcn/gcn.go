// Package gcn implements full GCN training in software — forward and
// backward passes over Combination (H·W) and Aggregation (Â·C) stages
// with ReLU activations — plus the ISU staleness semantics of GoPIM's
// selective vertex updating: the feature rows aggregation reads for
// non-important vertices come from a stale snapshot that refreshes
// every StalePeriod epochs, exactly as rows left unwritten on a ReRAM
// crossbar would (paper §VI).
//
// The package produces the accuracy numbers of paper Table V and the
// θ-sensitivity curves of Fig. 16(a)/(b). Node-classification tasks
// use softmax cross-entropy; link-prediction tasks score vertex pairs
// by embedding dot products with logistic loss.
//
// The training loop is allocation-free in steady state: a per-run
// workspace (see workspace) preallocates every forward/backward
// intermediate once and the epoch loop reuses them, so the only
// per-epoch heap traffic is what the Go runtime itself needs. All
// buffer reuse preserves the exact floating-point accumulation order
// of the original allocate-per-epoch code, so results are
// byte-identical at any worker count.
package gcn

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"strings"

	"gopim/internal/fault"
	"gopim/internal/graphgen"
	"gopim/internal/mapping"
	"gopim/internal/obs"
	"gopim/internal/quant"
	"gopim/internal/simmemo"
	"gopim/internal/sparsemat"
	"gopim/internal/spmm"
	"gopim/internal/tensor"
)

// Training metrics. Run, epoch and row-write counts depend only on the
// configuration and the deterministic per-run RNG stream, so they stay
// on the Sim clock; the per-epoch timer measures real scheduling and is
// Wall. gcn.rows_rewritten is the ISU write-traffic figure: without a
// plan (or on the first epoch) every combined-feature row is written,
// with a plan only the rows due this epoch are — the ratio against
// gcn.rows_total is the write reduction selective updating buys.
// The two memstats gauges snapshot the Go heap after each training run;
// gauges live on the Wall clock, so they never enter strict Sim diffs.
var (
	mTrainRuns = obs.NewCounter("gcn.train_runs", obs.Sim,
		"GCN training runs started")
	mEpochs = obs.NewCounter("gcn.epochs", obs.Sim,
		"training epochs executed")
	mRowsRewritten = obs.NewCounter("gcn.rows_rewritten", obs.Sim,
		"combined-feature rows written to aggregation crossbars")
	mRowsTotal = obs.NewCounter("gcn.rows_total", obs.Sim,
		"combined-feature rows that a no-ISU run would have written")
	mEpochTime = obs.NewTimer("gcn.epoch_ns",
		"wall time per training epoch")
	// mStuckElems counts matrix elements pinned by fault-injection
	// stuck masks. Zero (and thus absent from snapshots) without
	// faults; a pure function of (config, fault seed), so Sim-clock.
	mStuckElems = obs.NewCounter("gcn.stuck_elements", obs.Sim,
		"weight/feature matrix elements landing on stuck cell slices")
	mHeapAlloc = obs.NewGauge("gcn.heap_alloc_bytes",
		"live heap bytes sampled after the last training run")
	mGCCount = obs.NewGauge("gcn.gc_count",
		"cumulative runtime GC cycles sampled after the last training run")
)

// Config controls one training run.
type Config struct {
	Epochs int
	// LR defaults to the dataset's Table IV learning rate when 0.
	LR float64
	// Dropout is the hidden-activation drop probability (Table IV);
	// negative means "use the dataset's value".
	Dropout float64
	Seed    int64
	// Plan enables ISU: non-important vertices' combined features are
	// served stale between refresh epochs. Nil trains exactly
	// (GoPIM-Vanilla).
	Plan *mapping.UpdatePlan
	// QuantBits, when ≥ 2, quantises everything the crossbars store —
	// weights after every gradient step and combined feature rows when
	// written — to the given fixed-point width (Table II: 16).
	// 0 trains in full float64.
	QuantBits int
	// Fault injects stuck-at cell faults (internal/fault) into
	// everything written to the array: weight matrices after every
	// gradient step and combined feature rows as they land on
	// aggregation crossbars. Nil consults the process-wide
	// fault.Default(). Injection implies quantisation (stuck cells pin
	// physical slices), so QuantBits below 2 is raised to 16 while a
	// fault model is active; a disabled model changes nothing.
	Fault *fault.Model
	// SpMM picks the aggregation kernel strategy. Auto (the zero
	// value) defers to the global -spmm override and, absent one, to
	// the per-graph selector (spmm.Select over Â's stats). Every
	// strategy is bitwise-equal to the others, so this is purely a
	// performance knob.
	SpMM spmm.Strategy
}

// simCounts accumulates every Sim-clock increment of one training run
// so the run can be memoized: a memo hit applies the stored counts and
// leaves the registry exactly as re-running the training would have.
// (The per-epoch timer and heap gauges are Wall-clock and deliberately
// not captured — wall telemetry reflects what actually executed.)
type simCounts struct {
	trainRuns, epochs        int64
	rowsRewritten, rowsTotal int64
	stuckElems               int64
	graph                    string // spmm choice key ("ddi/v4267"); "" = don't record
	strat                    spmm.Strategy
}

// apply flushes the counts into the Sim registry. Called exactly once
// per Train/TrainMemo call — after a fresh run and on every memo hit —
// so counter totals are identical with the memo on or off.
func (c *simCounts) apply() {
	mTrainRuns.Add(c.trainRuns)
	mEpochs.Add(c.epochs)
	mRowsRewritten.Add(c.rowsRewritten)
	mRowsTotal.Add(c.rowsTotal)
	if c.stuckElems != 0 {
		mStuckElems.Add(c.stuckElems)
	}
	if c.graph != "" {
		spmm.Record(c.graph, c.strat)
	}
}

// Result reports a training run.
type Result struct {
	// Accuracy is test accuracy for node tasks and the paired
	// ranking accuracy (pos > neg) for link tasks.
	Accuracy float64
	// TrainLoss per epoch.
	TrainLoss []float64
	// UpdatedRowFraction is the mean fraction of vertex rows rewritten
	// per epoch (1.0 without a plan) — the write-traffic reduction ISU
	// buys.
	UpdatedRowFraction float64
}

// Model is a trained GCN: one weight matrix per layer.
type Model struct {
	Weights []*tensor.Matrix
	// Embeddings is the final-layer output for every vertex.
	Embeddings *tensor.Matrix
}

// adamState is a minimal Adam optimiser for a set of weight matrices.
// Moment buffers are allocated once per run and updated in place.
type adamState struct {
	lr   float64
	t    int
	m, v []*tensor.Matrix
}

func newAdam(lr float64, ws []*tensor.Matrix) *adamState {
	s := &adamState{lr: lr}
	for _, w := range ws {
		s.m = append(s.m, tensor.New(w.Rows, w.Cols))
		s.v = append(s.v, tensor.New(w.Rows, w.Cols))
	}
	return s
}

func (s *adamState) step(ws, grads []*tensor.Matrix) {
	const b1, b2, eps = 0.9, 0.999, 1e-8
	s.t++
	c1 := 1 - math.Pow(b1, float64(s.t))
	c2 := 1 - math.Pow(b2, float64(s.t))
	for i, w := range ws {
		g := grads[i]
		for j := range w.Data {
			s.m[i].Data[j] = b1*s.m[i].Data[j] + (1-b1)*g.Data[j]
			s.v[i].Data[j] = b2*s.v[i].Data[j] + (1-b2)*g.Data[j]*g.Data[j]
			w.Data[j] -= s.lr * (s.m[i].Data[j] / c1) / (math.Sqrt(s.v[i].Data[j]/c2) + eps)
		}
	}
}

// workspace owns every matrix the training hot loop touches. It is
// sized once per Train call from the layer dimensions and reused
// across all epochs; the forward/backward methods below write into
// these buffers instead of allocating. Lifetime rule: buffers are
// valid from one forward call until the next forward call overwrites
// them — Train consumes each epoch's gradients (opt.step) before the
// next forward, and the test-facing free functions build a transient
// workspace per call so their results stay independently owned.
type workspace struct {
	adj  *sparsemat.CSR // Â
	adjT *sparsemat.CSR // Âᵀ, for the row-parallel backward aggregation

	// Forward buffers, per layer l (shapes n × dims[l+1]).
	combined   []*tensor.Matrix
	aggregated []*tensor.Matrix
	maskBuf    []*tensor.Matrix // nil for the last layer
	hidden     []*tensor.Matrix // nil for the last layer

	// Backward buffers.
	dC     []*tensor.Matrix // n × dims[l+1]: Âᵀ·dA
	dIn    []*tensor.Matrix // n × dims[l]: dC·Wᵀ flowing into layer l-1; nil for l == 0
	grads  []*tensor.Matrix // dims[l] × dims[l+1]

	// Loss scratch (n × dims[last]).
	dOut  *tensor.Matrix
	probs *tensor.Matrix

	// Fault-injection state: stuck[l] pins cells of the combined
	// feature rows written to layer l's aggregation crossbars
	// (nil per layer — and nil entirely — when no faults). The
	// masks are applied exactly where rows land on the array, so
	// the fault-free path is structurally unchanged.
	stuck      []*fault.Mask
	stuckBPC   int // bits per physical cell
	stuckCells int // cells per stored value

	// strat is the SpMM strategy both aggregation products run with,
	// resolved once per workspace (Â and Âᵀ share one choice — they
	// describe the same graph).
	strat spmm.Strategy
	// counts accumulates the run's Sim increments for memo replay.
	counts simCounts

	fw forwardState
}

// newWorkspace preallocates all training intermediates. dims is the
// layer width vector input → hidden… → output (len = layers+1); n is
// the vertex count. adjT may be nil when only the forward pass will
// run; backward fills it lazily via Transpose.
func newWorkspace(adj, adjT *sparsemat.CSR, n int, dims []int) *workspace {
	layers := len(dims) - 1
	ws := &workspace{
		adj:        adj,
		adjT:       adjT,
		combined:   make([]*tensor.Matrix, layers),
		aggregated: make([]*tensor.Matrix, layers),
		maskBuf:    make([]*tensor.Matrix, layers),
		hidden:     make([]*tensor.Matrix, layers),
		dC:         make([]*tensor.Matrix, layers),
		dIn:        make([]*tensor.Matrix, layers),
		grads:      make([]*tensor.Matrix, layers),
		dOut:       tensor.New(n, dims[layers]),
		probs:      tensor.New(n, dims[layers]),
		strat:      spmm.For(adj),
	}
	for l := 0; l < layers; l++ {
		ws.combined[l] = tensor.New(n, dims[l+1])
		ws.aggregated[l] = tensor.New(n, dims[l+1])
		if l+1 < layers {
			ws.maskBuf[l] = tensor.New(n, dims[l+1])
			ws.hidden[l] = tensor.New(n, dims[l+1])
		}
		if l > 0 {
			ws.dIn[l] = tensor.New(n, dims[l])
		}
		ws.dC[l] = tensor.New(n, dims[l+1])
		ws.grads[l] = tensor.New(dims[l], dims[l+1])
	}
	ws.fw = forwardState{
		ws:         ws,
		inputs:     make([]*tensor.Matrix, layers),
		combined:   make([]*tensor.Matrix, layers),
		aggregated: make([]*tensor.Matrix, layers),
		masks:      make([]*tensor.Matrix, layers),
	}
	return ws
}

// layerDims reconstructs the width vector from an input matrix and the
// weight stack (used by the test-facing free functions).
func layerDims(x *tensor.Matrix, weights []*tensor.Matrix) []int {
	dims := make([]int, 0, len(weights)+1)
	dims = append(dims, x.Cols)
	for _, w := range weights {
		dims = append(dims, w.Cols)
	}
	return dims
}

// Train runs GCN training on a synthetic instance and returns the
// final test metric.
func Train(inst *graphgen.Instance, cfg Config) Result {
	res, counts := trainCounted(inst, cfg)
	counts.apply()
	return res
}

// trainOutcome is what the training memo stores: the result plus the
// Sim-counter deltas needed to replay a hit.
type trainOutcome struct {
	res    Result
	counts simCounts
}

// trainCache memoizes whole training runs keyed on (instance, config).
// 512 entries holds every distinct training configuration `gopim all`
// produces many times over; see the simmemo capacity contract.
var trainCache = simmemo.NewCache("train", 512)

// TrainMemo is Train with sweep memoization: instKey must uniquely
// identify the instance's content (two instances sharing a key must be
// byte-identical — synthesis is deterministic in (Dataset, seed,
// maxVertices), so a fingerprint of those suffices). Repeat calls with
// an equal (instKey, cfg) pair reuse the previous Result and replay
// its Sim-counter deltas, so snapshots are byte-identical with the
// memo on or off. An empty instKey, or the memo layer being disabled,
// falls back to a plain Train.
func TrainMemo(instKey string, inst *graphgen.Instance, cfg Config) Result {
	if instKey == "" || !simmemo.Enabled() {
		return Train(inst, cfg)
	}
	out := simmemo.Do(trainCache, instKey+"|"+cfg.fingerprint(), func() *trainOutcome {
		res, counts := trainCounted(inst, cfg)
		return &trainOutcome{res: res, counts: *counts}
	})
	out.counts.apply()
	return out.res
}

// fingerprint renders every Result-influencing Config field (the memo
// key's config half). The resolved SpMM strategy never changes result
// bytes, but the global -spmm override is included so choice counters
// replay consistently if it changes between calls.
func (cfg Config) fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "e%d|lr%x|do%x|s%d|q%d|k%d.%d",
		cfg.Epochs, math.Float64bits(cfg.LR), math.Float64bits(cfg.Dropout),
		cfg.Seed, cfg.QuantBits, cfg.SpMM, spmm.Forced())
	if p := cfg.Plan; p != nil {
		h := fnv.New64a()
		for _, imp := range p.Important {
			if imp {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		}
		fmt.Fprintf(&b, "|p%x:%d:%d:%x",
			math.Float64bits(p.Theta), p.StalePeriod, len(p.Important), h.Sum64())
	}
	fm := cfg.Fault
	if fm == nil {
		fm = fault.Default()
	}
	if fm.Enabled() {
		fmt.Fprintf(&b, "|f%+v", fm.Config())
	}
	return b.String()
}

// graphKey names the aggregated adjacency for strategy-choice
// recording: dataset plus realised vertex count (fast runs cap
// vertices, changing the graph's shape).
func graphKey(inst *graphgen.Instance) string {
	return fmt.Sprintf("%s/v%d", inst.Dataset.Name, inst.Features.Rows)
}

// trainCounted is the training loop proper. It touches the Sim-metric
// registry only through ws.counts, which the caller applies — that
// indirection is what makes whole runs memoizable without skewing a
// single counter.
func trainCounted(inst *graphgen.Instance, cfg Config) (Result, *simCounts) {
	if cfg.Epochs < 1 {
		panic(fmt.Sprintf("gcn: epochs %d must be ≥ 1", cfg.Epochs))
	}
	d := inst.Dataset
	lr := cfg.LR
	if lr == 0 {
		lr = d.LearningRate
	}
	dropout := cfg.Dropout
	if dropout < 0 {
		dropout = d.Dropout
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Â and Âᵀ are cached on the Graph: experiment sweeps train many
	// configurations on the same instance and the normalisation never
	// changes.
	adj := inst.Graph.NormAdj()
	adjT := inst.Graph.NormAdjT()

	// Layer dims: input → hidden… → output. Node tasks map the final
	// layer onto the class count.
	dims := []int{inst.Features.Cols}
	for l := 1; l <= d.Layers; l++ {
		w := d.HiddenCh
		if l == d.Layers {
			if d.Task == graphgen.NodeClassification {
				w = d.NumClasses
			} else {
				w = d.OutputCh
			}
		}
		dims = append(dims, w)
	}
	weights := make([]*tensor.Matrix, d.Layers)
	for l := range weights {
		weights[l] = tensor.NewGlorot(rng, dims[l], dims[l+1])
	}
	opt := newAdam(lr, weights)
	ws := newWorkspace(adj, adjT, inst.Features.Rows, dims)
	if cfg.SpMM != spmm.Auto {
		ws.strat = cfg.SpMM
	}
	ws.counts.graph = graphKey(inst)
	ws.counts.strat = ws.strat

	// Fault injection: stuck-at masks for everything the run writes to
	// the array. Weight masks are applied here after each epoch's
	// quantisation; feature masks ride on the workspace and apply where
	// rows land on aggregation crossbars. Stuck cells damage physical
	// bit slices, so injection forces quantisation on (Table II width)
	// if the caller left it off.
	fm := cfg.Fault
	if fm == nil {
		fm = fault.Default()
	}
	quantBits := cfg.QuantBits
	var wMasks []*fault.Mask
	if fm.Enabled() {
		if quantBits < 2 {
			quantBits = 16
		}
		// DefaultChip stores 2 bits per cell.
		ws.stuckBPC = 2
		ws.stuckCells = quant.CellsPerValue(quantBits, ws.stuckBPC)
		wMasks = make([]*fault.Mask, d.Layers)
		ws.stuck = make([]*fault.Mask, d.Layers)
		var stuckTotal int64
		for l := 0; l < d.Layers; l++ {
			wMasks[l] = fm.StuckMask(fmt.Sprintf("w%d", l), dims[l], dims[l+1], ws.stuckCells)
			ws.stuck[l] = fm.StuckMask(fmt.Sprintf("f%d", l), inst.Features.Rows, dims[l+1], ws.stuckCells)
			if wMasks[l] != nil {
				stuckTotal += int64(wMasks[l].Stuck)
			}
			if ws.stuck[l] != nil {
				stuckTotal += int64(ws.stuck[l].Stuck)
			}
		}
		ws.counts.stuckElems += stuckTotal
	}

	// written[l] is the combined feature matrix as present on the
	// layer's aggregation crossbars; rows refresh per the plan.
	written := make([]*tensor.Matrix, d.Layers)

	ws.counts.trainRuns++
	losses := make([]float64, 0, cfg.Epochs)
	var updatedRows, totalRows float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		t0 := obs.NowIfEnabled()
		ws.counts.epochs++
		if quantBits >= 2 {
			// ReRAM write-time quantisation: the crossbars only ever
			// hold fixed-point weights.
			for li, w := range weights {
				s := quant.QuantizeMatrix(w, quantBits)
				if wMasks != nil && wMasks[li] != nil {
					applyStuckAll(w, wMasks[li], s, ws.stuckBPC, ws.stuckCells)
				}
			}
		}
		fw := ws.forwardQuant(inst.Features, weights, written, cfg.Plan, epoch, dropout, rng, quantBits)
		updatedRows += fw.updatedFrac
		totalRows++

		var loss float64
		switch d.Task {
		case graphgen.NodeClassification:
			loss = nodeLossGradInto(ws.probs, ws.dOut, fw.out, inst.Labels, inst.TrainMask)
		case graphgen.LinkPrediction:
			loss = linkLossGradInto(rng, ws.dOut, fw.out, inst.Graph)
		}
		losses = append(losses, loss)
		grads := ws.backward(fw, weights, ws.dOut)
		opt.step(weights, grads)
		mEpochTime.ObserveSince(t0)
	}

	final := ws.forwardQuant(inst.Features, weights, written, nil, 0, 0, rng, quantBits)
	res := Result{TrainLoss: losses, UpdatedRowFraction: updatedRows / totalRows}
	switch d.Task {
	case graphgen.NodeClassification:
		res.Accuracy = nodeAccuracy(final.out, inst.Labels, inst.TestMask)
	case graphgen.LinkPrediction:
		res.Accuracy = linkAccuracy(final.out, inst.PosEdges, inst.NegEdges)
	}
	if obs.Enabled() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mHeapAlloc.Set(float64(ms.HeapAlloc))
		mGCCount.Set(float64(ms.NumGC))
	}
	return res, &ws.counts
}

// forwardState caches one forward pass for backprop. Its matrices
// alias the owning workspace's buffers: a forwardState is valid until
// the next forward call on the same workspace overwrites it.
type forwardState struct {
	ws *workspace
	// inputs[l] is the input feature matrix of layer l (H_{l-1}).
	inputs []*tensor.Matrix
	// combined[l] is C_l = H_{l-1}·W_l as used by aggregation (possibly
	// partially stale under ISU).
	combined []*tensor.Matrix
	// aggregated[l] is Â·C_l before the nonlinearity.
	aggregated []*tensor.Matrix
	// masks[l] is the ReLU/dropout mask applied after layer l (nil for
	// the last layer).
	masks []*tensor.Matrix
	out   *tensor.Matrix
	// updatedFrac is the fraction of combined-feature rows rewritten
	// this epoch, averaged over layers.
	updatedFrac float64
}

// forward and forwardQuant are the test-facing entry points; each call
// builds a transient workspace so successive calls return
// independently owned states (the staleness tests compare two forward
// passes side by side).
func forward(adj *sparsemat.CSR, x *tensor.Matrix, weights []*tensor.Matrix,
	written []*tensor.Matrix, plan *mapping.UpdatePlan, epoch int,
	dropout float64, rng *rand.Rand) *forwardState {
	return forwardQuant(adj, x, weights, written, plan, epoch, dropout, rng, 0)
}

func forwardQuant(adj *sparsemat.CSR, x *tensor.Matrix, weights []*tensor.Matrix,
	written []*tensor.Matrix, plan *mapping.UpdatePlan, epoch int,
	dropout float64, rng *rand.Rand, quantBits int) *forwardState {
	ws := newWorkspace(adj, nil, x.Rows, layerDims(x, weights))
	fw := ws.forwardQuant(x, weights, written, plan, epoch, dropout, rng, quantBits)
	// Transient workspaces flush their row counters immediately: the
	// free functions are not memoized, so their metric effect must
	// match the historic direct increments.
	ws.counts.apply()
	ws.counts = simCounts{}
	return fw
}

// forwardQuant runs one forward pass into the workspace buffers. The
// compute order — per-layer GEMM, optional quantisation, ISU row
// refresh, SpMM aggregation, mask build with one rng draw per positive
// entry in index order — matches the historic allocating version
// exactly, so outputs and the RNG stream are byte-identical to it.
func (ws *workspace) forwardQuant(x *tensor.Matrix, weights []*tensor.Matrix,
	written []*tensor.Matrix, plan *mapping.UpdatePlan, epoch int,
	dropout float64, rng *rand.Rand, quantBits int) *forwardState {

	fw := &ws.fw
	h := x
	layers := len(weights)
	var updSum float64
	for l := 0; l < layers; l++ {
		fw.inputs[l] = h
		c := ws.combined[l]
		tensor.MatMulInto(c, h, weights[l])
		// Stuck-at faults damage rows only as they are (re)written to
		// the array — stale rows keep the damage of their last write —
		// so the mask applies at exactly the points below where rows
		// land, on quantised values (faults pin physical bit slices).
		var sch quant.Scheme
		msk := (*fault.Mask)(nil)
		if ws.stuck != nil {
			msk = ws.stuck[l]
		}
		if quantBits >= 2 {
			// Feature rows are quantised as they are written to the
			// aggregation crossbars.
			sch = quant.QuantizeMatrix(c, quantBits)
		} else {
			msk = nil
		}

		ws.counts.rowsTotal += int64(c.Rows)
		if plan != nil {
			// ISU: copy fresh rows for vertices due this epoch; stale
			// rows stay as last written.
			if written[l] == nil {
				if msk != nil {
					applyStuckAll(c, msk, sch, ws.stuckBPC, ws.stuckCells)
				}
				written[l] = c.Clone() // first epoch writes everything
				updSum++
				ws.counts.rowsRewritten += int64(c.Rows)
			} else {
				updated := 0
				for v := 0; v < c.Rows; v++ {
					if plan.UpdatedThisEpoch(v, epoch) {
						if msk != nil {
							applyStuckRow(c, msk, v, sch, ws.stuckBPC, ws.stuckCells)
						}
						written[l].SetRow(v, c.Row(v))
						updated++
					}
				}
				updSum += float64(updated) / float64(c.Rows)
				ws.counts.rowsRewritten += int64(updated)
				c.CopyFrom(written[l])
			}
		} else {
			if msk != nil {
				applyStuckAll(c, msk, sch, ws.stuckBPC, ws.stuckCells)
			}
			updSum++
			ws.counts.rowsRewritten += int64(c.Rows)
		}
		fw.combined[l] = c

		a := ws.aggregated[l]
		spmm.MulInto(ws.strat, ws.adj, a, c)
		fw.aggregated[l] = a
		if l+1 < layers {
			mask := ws.maskBuf[l]
			for i, v := range a.Data {
				// Same predicate as ReLUMask: NaN and everything ≤ 0
				// map to 0.
				if v > 0 {
					mask.Data[i] = 1
				} else {
					mask.Data[i] = 0
				}
			}
			if dropout > 0 {
				keep := 1 - dropout
				for i := range mask.Data {
					if mask.Data[i] > 0 {
						if rng.Float64() < dropout {
							mask.Data[i] = 0
						} else {
							mask.Data[i] = 1 / keep // inverted dropout
						}
					}
				}
			}
			fw.masks[l] = mask
			hw := ws.hidden[l]
			hw.CopyFrom(a)
			hw.MulInPlace(mask)
			h = hw
		} else {
			fw.masks[l] = nil
			h = a
		}
	}
	fw.out = h
	fw.updatedFrac = updSum / float64(layers)
	return fw
}

// applyStuckRow pins the faulty cell slices of row r of m per the
// mask, using the scheme the row was just quantised with.
func applyStuckRow(m *tensor.Matrix, msk *fault.Mask, r int, s quant.Scheme, bitsPerCell, cells int) {
	base := r * msk.Cols
	row := m.Row(r)
	for c := 0; c < msk.Cols; c++ {
		if idx := msk.Slice[base+c]; idx >= 0 {
			row[c] = quant.ApplyStuck(s, row[c], bitsPerCell, cells, int(idx), msk.High[base+c])
		}
	}
}

// applyStuckAll pins the faulty cell slices of every row of m.
func applyStuckAll(m *tensor.Matrix, msk *fault.Mask, s quant.Scheme, bitsPerCell, cells int) {
	for r := 0; r < m.Rows; r++ {
		applyStuckRow(m, msk, r, s, bitsPerCell, cells)
	}
}

// backward is the test-facing entry point mirroring the historic free
// function; fw carries its owning workspace, and a missing Âᵀ (forward
// built the workspace without one) is filled in here.
func backward(adj *sparsemat.CSR, fw *forwardState, weights []*tensor.Matrix, dOut *tensor.Matrix) []*tensor.Matrix {
	ws := fw.ws
	if ws.adjT == nil {
		ws.adjT = adj.Transpose()
	}
	return ws.backward(fw, weights, dOut)
}

// backward runs standard GCN backprop from dOut (gradient w.r.t. the
// final aggregated output) and returns per-layer weight gradients,
// writing every intermediate into workspace buffers. Stale rows are
// treated as the values actually used in the forward pass (the
// hardware computes gradients with the data it has).
//
// The aggregation gradient dC = Âᵀ·dA runs as Âᵀ (a CSR built once
// per run) times dA through the row-parallel MulDense path. For every
// output element, the serial TMulDense scatter and the Âᵀ-row product
// both accumulate contributions in ascending source-row order, so the
// two are byte-identical — this swap is what parallelises the backward
// aggregation without touching determinism. The in-place mask multiply
// replaces the historic Clone+MulInPlace: the buffer it mutates
// (ws.dIn of the layer above, or the caller's dOut which never has a
// mask) is not read again afterwards.
func (ws *workspace) backward(fw *forwardState, weights []*tensor.Matrix, dOut *tensor.Matrix) []*tensor.Matrix {
	layers := len(weights)
	dA := dOut
	for l := layers - 1; l >= 0; l-- {
		if fw.masks[l] != nil {
			dA.MulInPlace(fw.masks[l])
		}
		// A = Â·C → dC = Âᵀ·dA.
		spmm.MulInto(ws.strat, ws.adjT, ws.dC[l], dA)
		// C = H·W → dW = Hᵀ·dC, dH = dC·Wᵀ, both through the
		// transpose-fused kernels: the per-element accumulation order is
		// the historic transpose-then-multiply one, without rebuilding
		// Hᵀ/Wᵀ every epoch.
		tensor.MatMulTNInto(ws.grads[l], fw.inputs[l], ws.dC[l])
		if l > 0 {
			tensor.MatMulNTInto(ws.dIn[l], ws.dC[l], weights[l])
			dA = ws.dIn[l]
		}
	}
	return ws.grads
}
