package gcn

import (
	"math"
	"math/rand"
	"testing"

	"gopim/internal/graphgen"
	"gopim/internal/mapping"
	"gopim/internal/parallel"
	"gopim/internal/sparsemat"
	"gopim/internal/tensor"
)

// smallNodeInstance builds a small, easy node-classification instance.
func smallNodeInstance(t *testing.T, n int) *graphgen.Instance {
	t.Helper()
	d, err := graphgen.ByName("arxiv")
	if err != nil {
		t.Fatal(err)
	}
	d.HiddenCh = 32
	d.FeatureDim = 16
	d.NumClasses = 4
	d.Layers = 2
	return d.Synthesize(3, n)
}

func TestTrainNodeClassification(t *testing.T) {
	inst := smallNodeInstance(t, 400)
	res := Train(inst, Config{Epochs: 40, Seed: 1, LR: 0.01})
	if res.Accuracy < 0.6 {
		t.Fatalf("accuracy = %v, want > 0.6 on an easy synthetic task", res.Accuracy)
	}
	if len(res.TrainLoss) != 40 {
		t.Fatalf("loss history length %d", len(res.TrainLoss))
	}
	first, last := res.TrainLoss[0], res.TrainLoss[len(res.TrainLoss)-1]
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
	if res.UpdatedRowFraction != 1 {
		t.Fatalf("without a plan every row updates: %v", res.UpdatedRowFraction)
	}
}

func TestTrainLinkPrediction(t *testing.T) {
	d, err := graphgen.ByName("ddi")
	if err != nil {
		t.Fatal(err)
	}
	d.HiddenCh = 32
	d.OutputCh = 32
	d.FeatureDim = 16
	inst := d.Synthesize(5, 300)
	res := Train(inst, Config{Epochs: 30, Seed: 2, LR: 0.01, Dropout: 0})
	if res.Accuracy < 0.6 {
		t.Fatalf("link ranking accuracy = %v, want > 0.6", res.Accuracy)
	}
}

func TestISUReducesWritesKeepsAccuracy(t *testing.T) {
	inst := smallNodeInstance(t, 400)
	degs := make([]float64, inst.Graph.N)
	for v := range degs {
		degs[v] = float64(inst.Graph.Degree(v))
	}
	vanilla := Train(inst, Config{Epochs: 40, Seed: 1, LR: 0.01})
	plan := mapping.NewUpdatePlan(degs, 0.5, 20)
	isu := Train(inst, Config{Epochs: 40, Seed: 1, LR: 0.01, Plan: plan})

	if isu.UpdatedRowFraction >= 0.9*vanilla.UpdatedRowFraction {
		t.Fatalf("ISU updated-row fraction %v should be well below vanilla %v",
			isu.UpdatedRowFraction, vanilla.UpdatedRowFraction)
	}
	// Paper Table V: accuracy impact within a few points either way.
	if math.Abs(isu.Accuracy-vanilla.Accuracy) > 0.12 {
		t.Fatalf("ISU accuracy %v strays too far from vanilla %v", isu.Accuracy, vanilla.Accuracy)
	}
}

// Accuracy should degrade monotonically-ish as θ shrinks toward 0 —
// the shape of paper Fig. 16. Check the extremes.
func TestThetaExtremes(t *testing.T) {
	inst := smallNodeInstance(t, 400)
	degs := make([]float64, inst.Graph.N)
	for v := range degs {
		degs[v] = float64(inst.Graph.Degree(v))
	}
	run := func(theta float64) float64 {
		plan := mapping.NewUpdatePlan(degs, theta, 20)
		return Train(inst, Config{Epochs: 40, Seed: 1, LR: 0.01, Plan: plan}).Accuracy
	}
	high := run(0.9)
	low := run(0.05)
	if high < low-0.05 {
		t.Fatalf("θ=0.9 accuracy %v should not trail θ=0.05 accuracy %v", high, low)
	}
}

func TestTrainValidation(t *testing.T) {
	inst := smallNodeInstance(t, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero epochs")
		}
	}()
	Train(inst, Config{Epochs: 0})
}

// TestTrainDeterministicAcrossWorkers pins the workspace-reusing Train
// path to byte-identical results at 1, 2 and 8 workers — the blocked
// GEMM, the Âᵀ-CSR backward aggregation, and every buffer reuse must
// preserve the exact serial accumulation order. Loss histories are
// compared as float bits, not approximately.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	inst := smallNodeInstance(t, 300)
	run := func() Result {
		return Train(inst, Config{Epochs: 12, Seed: 3, LR: 0.01})
	}
	parallel.SetWorkers(1)
	base := run()
	defer parallel.SetWorkers(0)
	for _, w := range []int{2, 8} {
		parallel.SetWorkers(w)
		got := run()
		if got.Accuracy != base.Accuracy {
			t.Fatalf("workers=%d: accuracy %v vs serial %v", w, got.Accuracy, base.Accuracy)
		}
		if got.UpdatedRowFraction != base.UpdatedRowFraction {
			t.Fatalf("workers=%d: updated-row fraction differs", w)
		}
		for i := range base.TrainLoss {
			if math.Float64bits(got.TrainLoss[i]) != math.Float64bits(base.TrainLoss[i]) {
				t.Fatalf("workers=%d: epoch %d loss %v vs serial %v",
					w, i, got.TrainLoss[i], base.TrainLoss[i])
			}
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	inst := smallNodeInstance(t, 200)
	a := Train(inst, Config{Epochs: 10, Seed: 9, LR: 0.01})
	b := Train(inst, Config{Epochs: 10, Seed: 9, LR: 0.01})
	if a.Accuracy != b.Accuracy {
		t.Fatalf("same seed must reproduce: %v vs %v", a.Accuracy, b.Accuracy)
	}
	for i := range a.TrainLoss {
		if a.TrainLoss[i] != b.TrainLoss[i] {
			t.Fatal("loss history must reproduce")
		}
	}
}

// Numerical gradient check of the full backward pass on a tiny graph.
func TestBackwardMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graphgen.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	adj := g.Adj().SymNormalized()
	x := tensor.NewRandom(rng, 5, 3, 1)
	weights := []*tensor.Matrix{
		tensor.NewRandom(rng, 3, 4, 0.5),
		tensor.NewRandom(rng, 4, 2, 0.5),
	}
	labels := []int{0, 1, 0, 1, 0}
	mask := []bool{true, true, true, true, true}
	written := make([]*tensor.Matrix, 2)

	lossOf := func() float64 {
		fw := forward(adj, x, weights, written, nil, 0, 0, rng)
		loss, _ := nodeLossGrad(fw.out, labels, mask)
		return loss
	}
	fw := forward(adj, x, weights, written, nil, 0, 0, rng)
	_, dOut := nodeLossGrad(fw.out, labels, mask)
	grads := backward(adj, fw, weights, dOut)

	const h = 1e-6
	for l := range weights {
		for j := 0; j < len(weights[l].Data); j += 2 {
			orig := weights[l].Data[j]
			weights[l].Data[j] = orig + h
			lp := lossOf()
			weights[l].Data[j] = orig - h
			lm := lossOf()
			weights[l].Data[j] = orig
			num := (lp - lm) / (2 * h)
			ana := grads[l].Data[j]
			if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d weight %d: numeric %v vs analytic %v", l, j, num, ana)
			}
		}
	}
}

func TestNodeLossGradProperties(t *testing.T) {
	logits := tensor.NewFromRows([][]float64{{2, 0}, {0, 2}, {1, 1}})
	labels := []int{0, 1, 0}
	mask := []bool{true, true, false}
	loss, grad := nodeLossGrad(logits, labels, mask)
	if loss <= 0 {
		t.Fatalf("loss = %v, want positive", loss)
	}
	// Masked vertex gets zero gradient.
	for _, v := range grad.Row(2) {
		if v != 0 {
			t.Fatal("masked vertex must not contribute gradient")
		}
	}
	// Gradient rows sum to ~0 (softmax property).
	for r := 0; r < 2; r++ {
		var s float64
		for _, v := range grad.Row(r) {
			s += v
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("row %d gradient sums to %v", r, s)
		}
	}
	// Empty mask → zero loss and gradient.
	l0, g0 := nodeLossGrad(logits, labels, []bool{false, false, false})
	if l0 != 0 || g0.MaxAbs() != 0 {
		t.Fatal("empty mask should produce zero loss/grad")
	}
}

func TestNodeAccuracy(t *testing.T) {
	logits := tensor.NewFromRows([][]float64{{2, 0}, {0, 2}, {2, 0}})
	labels := []int{0, 1, 1}
	acc := nodeAccuracy(logits, labels, []bool{true, true, true})
	if math.Abs(acc-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v, want 2/3", acc)
	}
	if nodeAccuracy(logits, labels, []bool{false, false, false}) != 0 {
		t.Fatal("empty test mask → 0")
	}
}

func TestLinkAccuracy(t *testing.T) {
	emb := tensor.NewFromRows([][]float64{{1, 0}, {1, 0}, {0, 1}, {-1, 0}})
	// pos (0,1) scores 1; neg (0,3) scores −1 → win.
	// pos (0,2) scores 0; neg (0,1) scores 1 → loss.
	acc := linkAccuracy(emb, [][2]int{{0, 1}, {0, 2}}, [][2]int{{0, 3}, {0, 1}})
	if math.Abs(acc-0.5) > 1e-12 {
		t.Fatalf("link accuracy = %v, want 0.5", acc)
	}
	if linkAccuracy(emb, nil, nil) != 0 {
		t.Fatal("empty evaluation → 0")
	}
}

func TestStaleWrittenRowsActuallyStale(t *testing.T) {
	// With θ such that vertex 0 is unimportant and a long stale period,
	// the written row for vertex 0 must stay at its epoch-0 value.
	rng := rand.New(rand.NewSource(5))
	g := graphgen.FromEdges(3, [][2]int{{1, 2}}) // vertex 0 isolated, degree 0
	adj := g.Adj().SymNormalized()
	x := tensor.NewRandom(rng, 3, 2, 1)
	weights := []*tensor.Matrix{tensor.NewRandom(rng, 2, 2, 1)}
	written := make([]*tensor.Matrix, 1)
	plan := mapping.NewUpdatePlan([]float64{0, 5, 5}, 0.67, 10)

	forward(adj, x, weights, written, plan, 0, 0, rng) // refresh epoch
	row0 := append([]float64(nil), written[0].Row(0)...)

	weights[0].ScaleInPlace(2) // change the weights
	forward(adj, x, weights, written, plan, 1, 0, rng)
	for i, v := range written[0].Row(0) {
		if v != row0[i] {
			t.Fatal("unimportant vertex row must stay stale between refreshes")
		}
	}
	// Important vertex rows must be fresh.
	freshC := tensor.MatMul(x, weights[0])
	for i, v := range written[0].Row(1) {
		if math.Abs(v-freshC.At(1, i)) > 1e-12 {
			t.Fatal("important vertex row must be rewritten every epoch")
		}
	}
}

func TestSymNormalizedIntegration(t *testing.T) {
	// End-to-end smoke test that training works directly on a CSR
	// produced by graphgen, which is the path Train takes internally.
	g := graphgen.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	var _ *sparsemat.CSR = g.Adj().SymNormalized()
}

// Write-time quantisation at the chip's 16-bit precision must be
// accuracy-neutral; crushing precision to 3 bits must not be.
func TestQuantization(t *testing.T) {
	inst := smallNodeInstance(t, 400)
	full := Train(inst, Config{Epochs: 30, Seed: 1, LR: 0.01})
	q16 := Train(inst, Config{Epochs: 30, Seed: 1, LR: 0.01, QuantBits: 16})
	if math.Abs(q16.Accuracy-full.Accuracy) > 0.05 {
		t.Fatalf("16-bit quantisation moved accuracy too much: %v vs %v", q16.Accuracy, full.Accuracy)
	}
	q3 := Train(inst, Config{Epochs: 30, Seed: 1, LR: 0.01, QuantBits: 3})
	if q3.Accuracy > full.Accuracy {
		t.Logf("3-bit run unexpectedly matched float accuracy (%v vs %v)", q3.Accuracy, full.Accuracy)
	}
	// The quantised runs must be deterministic too.
	again := Train(inst, Config{Epochs: 30, Seed: 1, LR: 0.01, QuantBits: 16})
	if again.Accuracy != q16.Accuracy {
		t.Fatal("quantised training must be deterministic")
	}
}
