package gcn

import (
	"math"
	"math/rand"

	"gopim/internal/graphgen"
	"gopim/internal/tensor"
)

// nodeLossGrad computes mean softmax cross-entropy over the training
// vertices and its gradient w.r.t. the logits.
func nodeLossGrad(logits *tensor.Matrix, labels []int, trainMask []bool) (float64, *tensor.Matrix) {
	probs := tensor.New(logits.Rows, logits.Cols)
	grad := tensor.New(logits.Rows, logits.Cols)
	loss := nodeLossGradInto(probs, grad, logits, labels, trainMask)
	return loss, grad
}

// nodeLossGradInto is the workspace form of nodeLossGrad: probs and
// grad are caller-owned scratch matching logits' shape, overwritten in
// full (grad is zeroed first, so rows outside the training mask come
// back zero exactly as the allocating version returns them).
func nodeLossGradInto(probs, grad *tensor.Matrix, logits *tensor.Matrix, labels []int, trainMask []bool) float64 {
	logits.SoftmaxRowsInto(probs)
	grad.Zero()
	var loss float64
	var count int
	for v := 0; v < logits.Rows; v++ {
		if !trainMask[v] {
			continue
		}
		count++
	}
	if count == 0 {
		return 0
	}
	inv := 1 / float64(count)
	for v := 0; v < logits.Rows; v++ {
		if !trainMask[v] {
			continue
		}
		p := probs.At(v, labels[v])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p) * inv
		grow := grad.Row(v)
		prow := probs.Row(v)
		for c := range grow {
			grow[c] = prow[c] * inv
		}
		grow[labels[v]] -= inv
	}
	return loss
}

// nodeAccuracy is argmax accuracy over the test vertices.
func nodeAccuracy(logits *tensor.Matrix, labels []int, testMask []bool) float64 {
	correct, total := 0, 0
	for v := 0; v < logits.Rows; v++ {
		if !testMask[v] {
			continue
		}
		total++
		if logits.ArgMaxRow(v) == labels[v] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// linkTrainSamples is the number of positive (and negative) pairs
// sampled per epoch for link-prediction training.
const linkTrainSamples = 512

// linkLossGrad samples training edges and non-edges, scores pairs by
// embedding dot products through a logistic loss, and returns the
// gradient w.r.t. the embeddings.
func linkLossGrad(rng *rand.Rand, emb *tensor.Matrix, g *graphgen.Graph) (float64, *tensor.Matrix) {
	grad := tensor.New(emb.Rows, emb.Cols)
	loss := linkLossGradInto(rng, grad, emb, g)
	return loss, grad
}

// linkLossGradInto is the workspace form of linkLossGrad: grad is
// caller-owned scratch matching emb's shape, zeroed before the pair
// sampling accumulates into it. The rng draw order is identical to the
// allocating version.
func linkLossGradInto(rng *rand.Rand, grad *tensor.Matrix, emb *tensor.Matrix, g *graphgen.Graph) float64 {
	grad.Zero()
	var loss float64
	samples := 0

	accum := func(u, v int, target float64) {
		zu, zv := emb.Row(u), emb.Row(v)
		var dot float64
		for i := range zu {
			dot += zu[i] * zv[i]
		}
		p := 1 / (1 + math.Exp(-dot))
		eps := 1e-12
		if target > 0.5 {
			loss -= math.Log(math.Max(p, eps))
		} else {
			loss -= math.Log(math.Max(1-p, eps))
		}
		coef := p - target
		gu, gv := grad.Row(u), grad.Row(v)
		for i := range zu {
			gu[i] += coef * zv[i]
			gv[i] += coef * zu[i]
		}
		samples++
	}

	for s := 0; s < linkTrainSamples; s++ {
		// Positive: a random edge endpoint walk.
		u := rng.Intn(g.N)
		nbrs := g.Neighbors(u)
		if len(nbrs) > 0 {
			accum(u, nbrs[rng.Intn(len(nbrs))], 1)
		}
		// Negative: a random non-adjacent pair (collision chance with a
		// true edge is tolerated as noise for dense graphs).
		a, b := rng.Intn(g.N), rng.Intn(g.N)
		if a != b {
			accum(a, b, 0)
		}
	}
	if samples == 0 {
		return 0
	}
	inv := 1 / float64(samples)
	loss *= inv
	grad.ScaleInPlace(inv)
	return loss
}

// linkAccuracy is the paired ranking accuracy: the fraction of
// (positive, negative) evaluation pairs where the positive edge scores
// higher.
func linkAccuracy(emb *tensor.Matrix, pos, neg [][2]int) float64 {
	if len(pos) == 0 || len(pos) != len(neg) {
		return 0
	}
	score := func(e [2]int) float64 {
		zu, zv := emb.Row(e[0]), emb.Row(e[1])
		var dot float64
		for i := range zu {
			dot += zu[i] * zv[i]
		}
		return dot
	}
	wins := 0
	for i := range pos {
		if score(pos[i]) > score(neg[i]) {
			wins++
		}
	}
	return float64(wins) / float64(len(pos))
}
