package gcn

import (
	"math"
	"testing"

	"gopim/internal/obs"
	"gopim/internal/simmemo"
)

// TestTrainMemoReplaysResultAndCounters pins the TrainMemo contract: a
// hit returns the first run's Result and leaves every Sim counter
// exactly where a fresh training would have — byte-identical
// snapshots with the memo on or off.
func TestTrainMemoReplaysResultAndCounters(t *testing.T) {
	obs.Default().Reset() // clears metrics and, via the simmemo hook, the train cache
	defer obs.Default().Reset()
	inst := smallNodeInstance(t, 120)
	cfg := Config{Epochs: 4, Seed: 3, LR: 0.01}

	r1 := TrainMemo("memo-test-inst", inst, cfg)
	runs1, epochs1 := mTrainRuns.Value(), mEpochs.Value()
	r2 := TrainMemo("memo-test-inst", inst, cfg)
	if mTrainRuns.Value() != 2*runs1 || mEpochs.Value() != 2*epochs1 {
		t.Fatalf("hit must replay counters: runs %d→%d, epochs %d→%d",
			runs1, mTrainRuns.Value(), epochs1, mEpochs.Value())
	}
	if r1.Accuracy != r2.Accuracy || len(r1.TrainLoss) != len(r2.TrainLoss) {
		t.Fatalf("hit result differs: %+v vs %+v", r1, r2)
	}
	for i := range r1.TrainLoss {
		if math.Float64bits(r1.TrainLoss[i]) != math.Float64bits(r2.TrainLoss[i]) {
			t.Fatalf("loss[%d] differs bitwise", i)
		}
	}

	// A different config is a different key: it must retrain, and the
	// two variants must not bleed into each other.
	cfg2 := cfg
	cfg2.Seed = 4
	r3 := TrainMemo("memo-test-inst", inst, cfg2)
	if mTrainRuns.Value() != 3*runs1 {
		t.Fatal("distinct config must miss and retrain")
	}
	if r3.Accuracy == r1.Accuracy && r3.TrainLoss[0] == r1.TrainLoss[0] {
		t.Fatal("distinct seed produced an identical run — key collision?")
	}

	// Memo results must be bit-identical to the plain path.
	plain := Train(inst, cfg)
	if math.Float64bits(plain.Accuracy) != math.Float64bits(r1.Accuracy) {
		t.Fatalf("memoized accuracy %v != plain %v", r1.Accuracy, plain.Accuracy)
	}
}

// TestTrainMemoDisabledAndKeyless: both opt-outs take the plain path
// and never consult the cache.
func TestTrainMemoDisabledAndKeyless(t *testing.T) {
	obs.Default().Reset()
	defer obs.Default().Reset()
	inst := smallNodeInstance(t, 120)
	cfg := Config{Epochs: 2, Seed: 5, LR: 0.01}

	simmemo.SetEnabled(false)
	TrainMemo("k", inst, cfg)
	TrainMemo("k", inst, cfg)
	simmemo.SetEnabled(true)
	if h := trainCache.Hits(); h != 0 {
		t.Fatalf("disabled TrainMemo must bypass the cache, saw %d hits", h)
	}

	TrainMemo("", inst, cfg)
	TrainMemo("", inst, cfg)
	if h := trainCache.Hits(); h != 0 {
		t.Fatalf("keyless TrainMemo must bypass the cache, saw %d hits", h)
	}
}
