package graphgen

import (
	"fmt"
	"math"
	"math/rand"

	"gopim/internal/tensor"
)

// Task is the prediction task type of a dataset (paper Table III).
type Task int

const (
	// LinkPrediction scores vertex pairs (ddi, collab, ppa).
	LinkPrediction Task = iota
	// NodeClassification predicts a class per vertex (proteins, arxiv,
	// products, Cora).
	NodeClassification
)

func (t Task) String() string {
	switch t {
	case LinkPrediction:
		return "Link"
	case NodeClassification:
		return "Node"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Dataset describes one paper workload: the graph statistics of Table
// III and the GCN architecture / training hyper-parameters of Table IV.
type Dataset struct {
	Name string
	Task Task

	// Graph statistics from paper Table III.
	PaperVertices int
	PaperEdges    int
	PaperAvgDeg   float64
	FeatureDim    int

	// Model architecture and training parameters from paper Table IV.
	Layers       int
	LearningRate float64
	Dropout      float64
	InputCh      int
	HiddenCh     int
	OutputCh     int

	// NumClasses is the label count for node-classification stand-ins
	// (paper: proteins 112, arxiv 40, products 47; link datasets 0).
	NumClasses int
}

// Dense reports whether the paper classifies the dataset as dense
// (average degree > 8, §VI-C), which selects the adaptive θ.
func (d Dataset) Dense() bool { return d.PaperAvgDeg > 8 }

// AdaptiveTheta returns the paper's adaptive selective-updating
// threshold: 0.5 for dense graphs, 0.8 for sparse ones (§VI-C).
func (d Dataset) AdaptiveTheta() float64 {
	if d.Dense() {
		return 0.5
	}
	return 0.8
}

// Catalog returns the seven paper datasets (Tables III and IV).
func Catalog() []Dataset {
	return []Dataset{
		{Name: "ddi", Task: LinkPrediction, PaperVertices: 4267, PaperEdges: 1334889, PaperAvgDeg: 500.5, FeatureDim: 256,
			Layers: 2, LearningRate: 0.005, Dropout: 0.5, InputCh: 256, HiddenCh: 256, OutputCh: 256},
		{Name: "collab", Task: LinkPrediction, PaperVertices: 235868, PaperEdges: 1285465, PaperAvgDeg: 8.2, FeatureDim: 128,
			Layers: 3, LearningRate: 0.001, Dropout: 0, InputCh: 128, HiddenCh: 256, OutputCh: 256},
		{Name: "ppa", Task: LinkPrediction, PaperVertices: 576289, PaperEdges: 30326273, PaperAvgDeg: 73.7, FeatureDim: 58,
			Layers: 3, LearningRate: 0.01, Dropout: 0, InputCh: 58, HiddenCh: 256, OutputCh: 256},
		{Name: "proteins", Task: NodeClassification, PaperVertices: 132534, PaperEdges: 39561252, PaperAvgDeg: 597.0, FeatureDim: 8,
			Layers: 3, LearningRate: 0.01, Dropout: 0, InputCh: 8, HiddenCh: 256, OutputCh: 112, NumClasses: 112},
		{Name: "arxiv", Task: NodeClassification, PaperVertices: 169343, PaperEdges: 1166243, PaperAvgDeg: 13.7, FeatureDim: 128,
			Layers: 3, LearningRate: 0.01, Dropout: 0.5, InputCh: 128, HiddenCh: 256, OutputCh: 40, NumClasses: 40},
		{Name: "products", Task: NodeClassification, PaperVertices: 2449029, PaperEdges: 61859140, PaperAvgDeg: 50.5, FeatureDim: 100,
			Layers: 3, LearningRate: 0.01, Dropout: 0.5, InputCh: 100, HiddenCh: 256, OutputCh: 47, NumClasses: 47},
		{Name: "Cora", Task: NodeClassification, PaperVertices: 2708, PaperEdges: 10556, PaperAvgDeg: 3.9, FeatureDim: 1433,
			Layers: 3, LearningRate: 0.005, Dropout: 0.5, InputCh: 256, HiddenCh: 256, OutputCh: 256, NumClasses: 7},
	}
}

// ByName looks a dataset up by its paper name (case-sensitive).
func ByName(name string) (Dataset, error) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("graphgen: unknown dataset %q", name)
}

// EvalFive returns the five datasets used in the paper's headline
// evaluation figures (Figs. 13 and 14): ddi, collab, ppa, proteins,
// arxiv.
func EvalFive() []Dataset {
	names := []string{"ddi", "collab", "ppa", "proteins", "arxiv"}
	out := make([]Dataset, 0, len(names))
	for _, n := range names {
		d, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, d)
	}
	return out
}

// MotivationSix returns the six OGB datasets used in the motivation
// profiling (Figs. 4 and 6).
func MotivationSix() []Dataset {
	names := []string{"ddi", "collab", "ppa", "proteins", "arxiv", "products"}
	out := make([]Dataset, 0, len(names))
	for _, n := range names {
		d, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, d)
	}
	return out
}

// PowerLawAlpha is the degree-distribution tail exponent used for all
// synthetic stand-ins. 2.1 gives the heavy skew the paper reports
// (per-crossbar average degrees ranging over three orders of
// magnitude on proteins/ppa, Fig. 6).
const PowerLawAlpha = 2.1

// SynthDegreeModel generates a paper-scale degree sequence for the
// dataset without materialising edges: N vertices, power-law degrees
// with the paper's average. Deterministic for a given seed.
func (d Dataset) SynthDegreeModel(seed int64) *DegreeModel {
	rng := rand.New(rand.NewSource(seed))
	w := PowerLawWeights(rng, d.PaperVertices, d.PaperAvgDeg, PowerLawAlpha)
	return NewDegreeModel(w)
}

// Instance is a concrete synthetic workload: an explicit graph with
// features, labels and splits, scaled down from the paper dataset.
type Instance struct {
	Dataset Dataset
	// Scale is the vertex-count scale factor actually applied.
	Scale float64
	Graph *Graph
	// Features is the N×FeatureDim input feature matrix.
	Features *tensor.Matrix
	// Labels holds a class per vertex for node tasks (nil for link
	// tasks).
	Labels []int
	// TrainMask/TestMask partition vertices for node tasks.
	TrainMask, TestMask []bool
	// PosEdges/NegEdges are the link-prediction evaluation pairs
	// (positive edges held out of training, sampled non-edges).
	PosEdges, NegEdges [][2]int
}

// Synthesize builds a scaled synthetic instance of the dataset.
// maxVertices caps the generated graph size; the paper's statistics
// (average degree, feature dim, architecture) are preserved, with the
// average degree additionally capped at n/4 so small instances stay
// simple graphs.
//
// Labels come from a degree-corrected stochastic block model: the
// community signal rides mostly on high-degree vertices, mirroring why
// degree-ranked selective updating preserves accuracy on real graphs.
func (d Dataset) Synthesize(seed int64, maxVertices int) *Instance {
	n := d.PaperVertices
	if n > maxVertices {
		n = maxVertices
	}
	scale := float64(n) / float64(d.PaperVertices)
	avgDeg := d.PaperAvgDeg
	if avgDeg > float64(n)/4 {
		avgDeg = float64(n) / 4
	}
	rng := rand.New(rand.NewSource(seed))
	classes := d.NumClasses
	if classes == 0 {
		classes = 8 // link datasets still use communities for structure
	}
	// Scaled-down instances keep enough examples per class — and enough
	// feature capacity per class — for the task to stay learnable.
	if classes > n/32 && n >= 64 {
		classes = n / 32
	}
	if classes > d.FeatureDim {
		classes = d.FeatureDim
	}
	if classes < 2 {
		classes = 2
	}
	g, comm := DCSBM(rng, DCSBMConfig{
		N:           n,
		Communities: classes,
		AvgDeg:      avgDeg,
		Alpha:       PowerLawAlpha,
		InFraction:  0.8,
	})

	inst := &Instance{Dataset: d, Scale: scale, Graph: g}
	inst.Features = communityFeatures(rng, g, comm, d.FeatureDim)

	switch d.Task {
	case NodeClassification:
		inst.Labels = comm
		inst.TrainMask = make([]bool, n)
		inst.TestMask = make([]bool, n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.7 {
				inst.TrainMask[v] = true
			} else {
				inst.TestMask[v] = true
			}
		}
	case LinkPrediction:
		inst.PosEdges, inst.NegEdges = linkSplit(rng, g)
	}
	return inst
}

// communityFeatures produces features around per-community random
// prototype vectors (so any class count stays separable at any feature
// dimension); high-degree vertices get a cleaner signal (lower noise),
// so the information GCN aggregation propagates is concentrated in
// hubs — the property selective updating exploits.
func communityFeatures(rng *rand.Rand, g *Graph, comm []int, dim int) *tensor.Matrix {
	classes := 0
	for _, c := range comm {
		if c+1 > classes {
			classes = c + 1
		}
	}
	protos := make([][]float64, classes)
	for c := range protos {
		protos[c] = make([]float64, dim)
		for j := range protos[c] {
			protos[c][j] = rng.NormFloat64() * 2.5 / math.Sqrt(float64(dim))
		}
	}
	f := tensor.New(g.N, dim)
	maxDeg := float64(g.MaxDegree())
	if maxDeg < 1 {
		maxDeg = 1
	}
	for v := 0; v < g.N; v++ {
		row := f.Row(v)
		// Noise shrinks with degree: hubs carry cleaner signal.
		rel := float64(g.Degree(v)) / maxDeg
		noise := (1.2 - 0.9*math.Sqrt(rel)) / math.Sqrt(float64(dim))
		proto := protos[comm[v]]
		for c := range row {
			row[c] = proto[c] + rng.NormFloat64()*noise
		}
	}
	return f
}

// linkSplit holds out ~10% of edges as positives and samples an equal
// number of non-edges as negatives.
func linkSplit(rng *rand.Rand, g *Graph) (pos, neg [][2]int) {
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v && rng.Float64() < 0.1 {
				pos = append(pos, [2]int{u, v})
			}
		}
	}
	if len(pos) == 0 && g.Edges() > 0 {
		// Tiny graph: take the first edge.
		for u := 0; u < g.N && len(pos) == 0; u++ {
			for _, v := range g.Neighbors(u) {
				if u < v {
					pos = append(pos, [2]int{u, v})
					break
				}
			}
		}
	}
	for len(neg) < len(pos) {
		u, v := rng.Intn(g.N), rng.Intn(g.N)
		if u == v {
			continue
		}
		if hasEdge(g, u, v) {
			continue
		}
		neg = append(neg, [2]int{u, v})
	}
	return pos, neg
}

func hasEdge(g *Graph, u, v int) bool {
	for _, x := range g.Neighbors(u) {
		if x == v {
			return true
		}
	}
	return false
}
