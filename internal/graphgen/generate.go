package graphgen

import (
	"math"
	"math/rand"
)

// ErdosRenyi samples a G(n, p) random graph. Intended for tests and
// small sparse stand-ins; O(n²) edge trials.
func ErdosRenyi(rng *rand.Rand, n int, p float64) *Graph {
	var pairs [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				pairs = append(pairs, [2]int{u, v})
			}
		}
	}
	return FromEdges(n, pairs)
}

// PowerLawWeights draws n Pareto-distributed expected degrees with tail
// exponent alpha (> 1), scaled so their mean is avgDeg and capped at
// n-1. The result is shuffled so that degrees appear in random vertex-
// index order, matching the paper's observation that index-based
// mapping sees an effectively random degree mix per crossbar.
func PowerLawWeights(rng *rand.Rand, n int, avgDeg, alpha float64) []float64 {
	if n == 0 {
		return nil
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		u := rng.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		w[i] = math.Pow(1-u, -1/(alpha-1)) // Pareto with x_min = 1
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	cap := float64(n - 1)
	if cap < 1 {
		cap = 1
	}
	for i := range w {
		w[i] *= scale
		if w[i] > cap {
			w[i] = cap
		}
		if w[i] < 0 {
			w[i] = 0
		}
	}
	rng.Shuffle(n, func(i, j int) { w[i], w[j] = w[j], w[i] })
	return w
}

// ChungLu samples a graph where edge (u,v) appears with probability
// ≈ w_u·w_v / Σw, producing a graph whose expected degree sequence is
// w. This is the standard model for synthesising power-law graphs with
// a prescribed average degree.
//
// The implementation uses the efficient sorted-weight skipping
// algorithm (Miller & Hagberg 2011), O(n + m).
func ChungLu(rng *rand.Rand, weights []float64) *Graph {
	n := len(weights)
	// Work on vertices sorted by descending weight; remap at the end.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Simple index sort by weight descending.
	sortByWeightDesc(order, weights)
	w := make([]float64, n)
	for i, v := range order {
		w[i] = weights[v]
	}
	var sumW float64
	for _, x := range w {
		sumW += x
	}
	var pairs [][2]int
	if sumW == 0 {
		return FromEdges(n, nil)
	}
	for i := 0; i < n-1; i++ {
		if w[i] == 0 {
			break
		}
		j := i + 1
		p := math.Min(w[i]*w[j]/sumW, 1)
		for j < n && p > 0 {
			if p != 1 {
				r := rng.Float64()
				// Skip ahead geometrically.
				skip := int(math.Floor(math.Log(r) / math.Log(1-p)))
				j += skip
			}
			if j >= n {
				break
			}
			q := math.Min(w[i]*w[j]/sumW, 1)
			if rng.Float64() < q/p {
				pairs = append(pairs, [2]int{order[i], order[j]})
			}
			p = q
			j++
		}
	}
	return FromEdges(n, pairs)
}

func sortByWeightDesc(order []int, weights []float64) {
	// Insertion-free: use sort.Slice equivalent without importing sort
	// twice — simple helper.
	quickSortDesc(order, weights, 0, len(order)-1)
}

func quickSortDesc(order []int, w []float64, lo, hi int) {
	for lo < hi {
		p := w[order[(lo+hi)/2]]
		i, j := lo, hi
		for i <= j {
			for w[order[i]] > p {
				i++
			}
			for w[order[j]] < p {
				j--
			}
			if i <= j {
				order[i], order[j] = order[j], order[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half to bound stack depth.
		if j-lo < hi-i {
			quickSortDesc(order, w, lo, j)
			lo = i
		} else {
			quickSortDesc(order, w, i, hi)
			hi = j
		}
	}
}

// PowerLaw samples an n-vertex Chung-Lu graph with power-law expected
// degrees (tail exponent alpha) and the given average degree.
func PowerLaw(rng *rand.Rand, n int, avgDeg, alpha float64) *Graph {
	return ChungLu(rng, PowerLawWeights(rng, n, avgDeg, alpha))
}

// DCSBMConfig configures a degree-corrected stochastic block model.
type DCSBMConfig struct {
	N           int
	Communities int
	AvgDeg      float64
	// Alpha is the power-law tail exponent of the degree weights.
	Alpha float64
	// InFraction is the fraction of each vertex's edge mass directed at
	// its own community (0.5 = no community structure, 1 = pure blocks).
	InFraction float64
}

// DCSBM samples a degree-corrected stochastic block model: vertices get
// power-law degree weights and a community; edges prefer same-community
// endpoints. It returns the graph and each vertex's community id —
// the label source for the synthetic node-classification tasks.
func DCSBM(rng *rand.Rand, cfg DCSBMConfig) (*Graph, []int) {
	if cfg.Communities < 1 {
		cfg.Communities = 1
	}
	comm := make([]int, cfg.N)
	for v := range comm {
		comm[v] = rng.Intn(cfg.Communities)
	}
	w := PowerLawWeights(rng, cfg.N, cfg.AvgDeg, cfg.Alpha)

	// Split each vertex's weight into in-community and cross-community
	// mass and run Chung-Lu separately within each community and on the
	// full graph for the cross part.
	inW := make([]float64, cfg.N)
	outW := make([]float64, cfg.N)
	for v := range w {
		inW[v] = w[v] * cfg.InFraction
		outW[v] = w[v] * (1 - cfg.InFraction)
	}
	var pairs [][2]int
	// In-community subgraphs.
	for c := 0; c < cfg.Communities; c++ {
		var members []int
		for v := 0; v < cfg.N; v++ {
			if comm[v] == c {
				members = append(members, v)
			}
		}
		sub := make([]float64, len(members))
		for i, v := range members {
			sub[i] = inW[v]
		}
		g := ChungLu(rng, sub)
		for u := 0; u < g.N; u++ {
			for _, x := range g.Neighbors(u) {
				if u < x {
					pairs = append(pairs, [2]int{members[u], members[x]})
				}
			}
		}
	}
	// Cross-community edges over the whole vertex set.
	g := ChungLu(rng, outW)
	for u := 0; u < g.N; u++ {
		for _, x := range g.Neighbors(u) {
			if u < x && comm[u] != comm[x] {
				pairs = append(pairs, [2]int{u, x})
			}
		}
	}
	return FromEdges(cfg.N, pairs), comm
}

// PreferentialAttachment grows a Barabási–Albert graph: each new vertex
// attaches m edges to existing vertices with probability proportional
// to their degree. Produces a power-law degree distribution; used in
// tests as an independent generator family.
func PreferentialAttachment(rng *rand.Rand, n, m int) *Graph {
	if m < 1 {
		m = 1
	}
	if n <= m {
		return ErdosRenyi(rng, n, 1) // complete graph fallback
	}
	var pairs [][2]int
	// Repeated-endpoint list trick: sampling uniform from `ends` is
	// degree-proportional sampling.
	ends := make([]int, 0, 2*m*n)
	// Seed: a star over the first m+1 vertices.
	for v := 1; v <= m; v++ {
		pairs = append(pairs, [2]int{0, v})
		ends = append(ends, 0, v)
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			t := ends[rng.Intn(len(ends))]
			if t != v {
				chosen[t] = true
			}
		}
		for t := range chosen {
			pairs = append(pairs, [2]int{v, t})
			ends = append(ends, v, t)
		}
	}
	return FromEdges(n, pairs)
}
