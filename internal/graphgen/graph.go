// Package graphgen provides the graph substrate for GoPIM: an explicit
// undirected graph type used by the GCN training engine, synthetic
// generators (Erdős–Rényi, Chung-Lu power-law, degree-corrected
// stochastic block model, preferential attachment), and a lightweight
// DegreeModel used by the timing simulator at full paper scale where
// materialising tens of millions of edges would be wasteful.
//
// The paper evaluates on six Open Graph Benchmark datasets plus Cora.
// Those datasets are not redistributable here, so the catalog in this
// package (see catalog.go) generates synthetic stand-ins matched to
// paper Table III on the statistics GoPIM actually consumes: vertex
// count, edge count, average degree (and its skew), and feature
// dimension.
package graphgen

import (
	"fmt"
	"sort"
	"sync"

	"gopim/internal/sparsemat"
)

// Graph is an undirected simple graph with vertices 0..N-1.
type Graph struct {
	N       int
	adj     *sparsemat.CSR // symmetric binary adjacency, no self loops
	degrees []int
	edges   int // undirected edge count

	// Â = D̃^-1/2 (A+I) D̃^-1/2 and its transpose CSR, computed lazily
	// and cached: accuracy experiments train vanilla and ISU variants
	// on the same Instance, and the normalisation is identical across
	// epochs, runs, and worker counts.
	normOnce sync.Once
	norm     *sparsemat.CSR
	normT    *sparsemat.CSR
}

// FromEdges builds a Graph from undirected edge pairs. Self loops and
// duplicate edges are dropped.
func FromEdges(n int, pairs [][2]int) *Graph {
	seen := make(map[[2]int]bool, len(pairs))
	entries := make([]sparsemat.Entry, 0, 2*len(pairs))
	edges := 0
	for _, p := range pairs {
		u, v := p[0], p[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if u < 0 || v >= n {
			panic(fmt.Sprintf("graphgen: edge (%d,%d) out of range n=%d", p[0], p[1], n))
		}
		key := [2]int{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges++
		entries = append(entries,
			sparsemat.Entry{Row: u, Col: v, Val: 1},
			sparsemat.Entry{Row: v, Col: u, Val: 1},
		)
	}
	adj := sparsemat.NewFromEntries(n, n, entries)
	degrees := make([]int, n)
	for v := 0; v < n; v++ {
		degrees[v] = adj.RowNNZ(v)
	}
	return &Graph{N: n, adj: adj, degrees: degrees, edges: edges}
}

// Adj returns the symmetric binary adjacency matrix (no self loops).
func (g *Graph) Adj() *sparsemat.CSR { return g.adj }

// NormAdj returns the cached symmetric normalisation Â of the
// adjacency (see sparsemat.SymNormalized). The result is shared;
// callers must not mutate it.
func (g *Graph) NormAdj() *sparsemat.CSR {
	g.normOnce.Do(g.computeNorm)
	return g.norm
}

// NormAdjT returns the cached transpose of NormAdj as a CSR, letting
// the GCN backward pass reuse the row-parallel MulDense path. Â is
// symmetric in values but the explicit transpose keeps the backward
// accumulation order independent of that fact. Shared; do not mutate.
func (g *Graph) NormAdjT() *sparsemat.CSR {
	g.normOnce.Do(g.computeNorm)
	return g.normT
}

func (g *Graph) computeNorm() {
	g.norm = g.adj.SymNormalized()
	g.normT = g.norm.Transpose()
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.degrees[v] }

// Degrees returns the degree sequence indexed by vertex id. The
// returned slice aliases internal state; callers must not mutate it.
func (g *Graph) Degrees() []int { return g.degrees }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int { return g.edges }

// AvgDegree returns the mean vertex degree.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(g.N)
}

// MaxDegree returns the largest vertex degree, 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, d := range g.degrees {
		if d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns the neighbor list of v; the slice aliases internal
// storage and must not be mutated.
func (g *Graph) Neighbors(v int) []int {
	cols, _ := g.adj.Row(v)
	return cols
}

// Density returns |E| / (n·(n−1)/2), the paper's graph-density metric.
func (g *Graph) Density() float64 {
	if g.N < 2 {
		return 0
	}
	return float64(g.edges) / (float64(g.N) * float64(g.N-1) / 2)
}

// DegreeModel summarises a graph by its degree sequence only. The
// ReRAM timing model and the mapping-balance experiments consume
// DegreeModels, which lets them run at full paper scale (millions of
// vertices) without materialising edge lists.
type DegreeModel struct {
	N int
	// DegreesByIndex lists vertex degrees in vertex-index order — the
	// order an index-based mapping strategy would place them.
	DegreesByIndex []float64
	// AvgDeg is the mean of DegreesByIndex.
	AvgDeg float64
}

// NewDegreeModel wraps a degree sequence.
func NewDegreeModel(degrees []float64) *DegreeModel {
	m := &DegreeModel{N: len(degrees), DegreesByIndex: degrees}
	var sum float64
	for _, d := range degrees {
		sum += d
	}
	if m.N > 0 {
		m.AvgDeg = sum / float64(m.N)
	}
	return m
}

// DegreeModel derives a DegreeModel from an explicit graph.
func (g *Graph) DegreeModel() *DegreeModel {
	ds := make([]float64, g.N)
	for v, d := range g.degrees {
		ds[v] = float64(d)
	}
	return NewDegreeModel(ds)
}

// SortedDesc returns the degree sequence sorted descending (a copy).
func (m *DegreeModel) SortedDesc() []float64 {
	out := append([]float64(nil), m.DegreesByIndex...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// TotalEdges returns the (approximate, for synthetic models) number of
// undirected edges implied by the degree sequence.
func (m *DegreeModel) TotalEdges() float64 {
	var sum float64
	for _, d := range m.DegreesByIndex {
		sum += d
	}
	return sum / 2
}
