package graphgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasics(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {1, 2} /* dup */, {3, 3} /* loop */})
	if g.Edges() != 3 {
		t.Fatalf("Edges = %d, want 3 (dedup + no self loops)", g.Edges())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %v", g.Degrees())
	}
	if got := g.AvgDegree(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("AvgDegree = %v, want 1.5", got)
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d, want 2", g.MaxDegree())
	}
}

func TestFromEdgesSymmetric(t *testing.T) {
	g := FromEdges(3, [][2]int{{2, 0}})
	if g.Adj().At(0, 2) != 1 || g.Adj().At(2, 0) != 1 {
		t.Fatal("adjacency must be symmetric")
	}
	if g.Adj().At(0, 0) != 0 {
		t.Fatal("no self loops expected")
	}
}

func TestFromEdgesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromEdges(2, [][2]int{{0, 5}})
}

func TestDensityTriangle(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if got := g.Density(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("triangle density = %v, want 1", got)
	}
}

// Property: any generated graph has a consistent degree sequence —
// sum of degrees equals twice the edge count, adjacency symmetric.
func TestHandshakeLemma(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *Graph
		switch seed % 3 {
		case 0:
			g = ErdosRenyi(rng, 2+rng.Intn(40), 0.2)
		case 1:
			g = PowerLaw(rng, 2+rng.Intn(200), 4, 2.2)
		default:
			g = PreferentialAttachment(rng, 5+rng.Intn(100), 2)
		}
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*g.Edges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawWeightsMeanAndCap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, avg := 5000, 20.0
	w := PowerLawWeights(rng, n, avg, 2.1)
	var sum, max float64
	for _, x := range w {
		sum += x
		if x > max {
			max = x
		}
	}
	mean := sum / float64(n)
	// Capping can pull the mean slightly below target.
	if mean < avg*0.6 || mean > avg*1.05 {
		t.Fatalf("mean weight = %v, want ≈ %v", mean, avg)
	}
	if max > float64(n-1) {
		t.Fatalf("max weight %v exceeds n-1", max)
	}
	// Heavy tail: the max should dwarf the mean.
	if max < 5*mean {
		t.Fatalf("max %v vs mean %v: distribution not heavy-tailed", max, mean)
	}
}

func TestChungLuHitsTargetAverageDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, avg := 3000, 12.0
	g := PowerLaw(rng, n, avg, 2.3)
	got := g.AvgDegree()
	if got < avg*0.5 || got > avg*1.3 {
		t.Fatalf("AvgDegree = %v, want within [%v,%v]", got, avg*0.5, avg*1.3)
	}
}

func TestChungLuDegreeSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := PowerLaw(rng, 4000, 10, 2.1)
	if g.MaxDegree() < 10*int(g.AvgDegree()) {
		t.Fatalf("max degree %d not skewed vs avg %v", g.MaxDegree(), g.AvgDegree())
	}
}

func TestPreferentialAttachmentEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, m := 500, 3
	g := PreferentialAttachment(rng, n, m)
	// m seed edges + m per added vertex.
	want := m + (n-m-1)*m
	if g.Edges() != want {
		t.Fatalf("Edges = %d, want %d", g.Edges(), want)
	}
}

func TestDCSBMCommunityStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, comm := DCSBM(rng, DCSBMConfig{N: 1200, Communities: 4, AvgDeg: 16, Alpha: 2.3, InFraction: 0.85})
	if len(comm) != g.N {
		t.Fatalf("community slice length %d != N %d", len(comm), g.N)
	}
	in, out := 0, 0
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if comm[u] == comm[v] {
					in++
				} else {
					out++
				}
			}
		}
	}
	if in <= 2*out {
		t.Fatalf("in-community edges %d should dominate cross edges %d", in, out)
	}
}

func TestDegreeModelRoundTrip(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	m := g.DegreeModel()
	if m.N != 4 || m.DegreesByIndex[0] != 3 || m.DegreesByIndex[3] != 1 {
		t.Fatalf("DegreeModel wrong: %+v", m)
	}
	if math.Abs(m.AvgDeg-1.5) > 1e-12 {
		t.Fatalf("AvgDeg = %v, want 1.5", m.AvgDeg)
	}
	if math.Abs(m.TotalEdges()-3) > 1e-12 {
		t.Fatalf("TotalEdges = %v, want 3", m.TotalEdges())
	}
	s := m.SortedDesc()
	if s[0] != 3 || s[3] != 1 {
		t.Fatalf("SortedDesc wrong: %v", s)
	}
}

func TestCatalogMatchesPaperTables(t *testing.T) {
	cat := Catalog()
	if len(cat) != 7 {
		t.Fatalf("catalog has %d datasets, want 7", len(cat))
	}
	ddi, err := ByName("ddi")
	if err != nil {
		t.Fatal(err)
	}
	if ddi.PaperVertices != 4267 || ddi.FeatureDim != 256 || ddi.Layers != 2 {
		t.Fatalf("ddi stats wrong: %+v", ddi)
	}
	if !ddi.Dense() || ddi.AdaptiveTheta() != 0.5 {
		t.Fatal("ddi must be dense with θ=0.5")
	}
	cora, err := ByName("Cora")
	if err != nil {
		t.Fatal(err)
	}
	if cora.Dense() || cora.AdaptiveTheta() != 0.8 {
		t.Fatal("Cora must be sparse with θ=0.8")
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if got := len(EvalFive()); got != 5 {
		t.Fatalf("EvalFive returned %d datasets", got)
	}
	if got := len(MotivationSix()); got != 6 {
		t.Fatalf("MotivationSix returned %d datasets", got)
	}
}

func TestSynthDegreeModelScale(t *testing.T) {
	d, _ := ByName("ddi")
	m := d.SynthDegreeModel(1)
	if m.N != d.PaperVertices {
		t.Fatalf("N = %d, want %d", m.N, d.PaperVertices)
	}
	if m.AvgDeg < d.PaperAvgDeg*0.5 || m.AvgDeg > d.PaperAvgDeg*1.1 {
		t.Fatalf("AvgDeg = %v, want ≈ %v", m.AvgDeg, d.PaperAvgDeg)
	}
}

func TestSynthesizeNodeTask(t *testing.T) {
	d, _ := ByName("arxiv")
	inst := d.Synthesize(7, 800)
	if inst.Graph.N != 800 {
		t.Fatalf("N = %d, want 800 (capped)", inst.Graph.N)
	}
	if inst.Features.Rows != 800 || inst.Features.Cols != d.FeatureDim {
		t.Fatalf("features shape %dx%d", inst.Features.Rows, inst.Features.Cols)
	}
	if len(inst.Labels) != 800 {
		t.Fatal("node task must have labels")
	}
	seenTrain, seenTest := false, false
	for v := 0; v < 800; v++ {
		if inst.TrainMask[v] && inst.TestMask[v] {
			t.Fatal("vertex in both masks")
		}
		seenTrain = seenTrain || inst.TrainMask[v]
		seenTest = seenTest || inst.TestMask[v]
		if inst.Labels[v] < 0 || inst.Labels[v] >= d.NumClasses {
			t.Fatalf("label %d out of range", inst.Labels[v])
		}
	}
	if !seenTrain || !seenTest {
		t.Fatal("both masks should be non-empty")
	}
}

func TestSynthesizeLinkTask(t *testing.T) {
	d, _ := ByName("ddi")
	inst := d.Synthesize(9, 600)
	if inst.Labels != nil {
		t.Fatal("link task should have no labels")
	}
	if len(inst.PosEdges) == 0 || len(inst.PosEdges) != len(inst.NegEdges) {
		t.Fatalf("pos/neg split sizes: %d vs %d", len(inst.PosEdges), len(inst.NegEdges))
	}
	for _, e := range inst.NegEdges {
		if hasEdge(inst.Graph, e[0], e[1]) {
			t.Fatalf("negative pair %v is an edge", e)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	d, _ := ByName("Cora")
	a := d.Synthesize(42, 400)
	b := d.Synthesize(42, 400)
	if a.Graph.Edges() != b.Graph.Edges() {
		t.Fatal("same seed must give same graph")
	}
	if !a.Features.Equal(b.Features, 0) {
		t.Fatal("same seed must give same features")
	}
}
