package graphgen

import (
	"encoding/gob"
	"fmt"
	"io"

	"gopim/internal/tensor"
)

// graphWire is the portable encoding of a Graph: the CSR adjacency
// arrays (values are implicitly 1).
type graphWire struct {
	N      int
	RowPtr []int
	ColIdx []int
}

// instanceWire is the portable encoding of an Instance.
type instanceWire struct {
	Dataset             Dataset
	Scale               float64
	Graph               graphWire
	Features            *tensor.Matrix
	Labels              []int
	TrainMask, TestMask []bool
	PosEdges, NegEdges  [][2]int
}

func (g *Graph) wire() graphWire {
	return graphWire{N: g.N, RowPtr: g.adj.RowPtr, ColIdx: g.adj.ColIdx}
}

func fromWire(w graphWire) (*Graph, error) {
	if w.N < 0 || len(w.RowPtr) != w.N+1 {
		return nil, fmt.Errorf("graphgen: corrupt graph encoding (n=%d, rowptr=%d)", w.N, len(w.RowPtr))
	}
	var pairs [][2]int
	for u := 0; u < w.N; u++ {
		lo, hi := w.RowPtr[u], w.RowPtr[u+1]
		if lo > hi || hi > len(w.ColIdx) {
			return nil, fmt.Errorf("graphgen: corrupt row pointers at vertex %d", u)
		}
		for _, v := range w.ColIdx[lo:hi] {
			if v < 0 || v >= w.N {
				return nil, fmt.Errorf("graphgen: corrupt neighbour %d at vertex %d", v, u)
			}
			if u < v {
				pairs = append(pairs, [2]int{u, v})
			}
		}
	}
	return FromEdges(w.N, pairs), nil
}

// Save writes the graph in a self-contained binary encoding.
func (g *Graph) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(g.wire())
}

// LoadGraph reads a graph written by Save.
func LoadGraph(r io.Reader) (*Graph, error) {
	var w graphWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("graphgen: decode graph: %w", err)
	}
	return fromWire(w)
}

// Save writes the instance (graph, features, labels, splits) in a
// self-contained binary encoding, so expensive synthetic instances can
// be generated once and reused across runs.
func (inst *Instance) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(instanceWire{
		Dataset:   inst.Dataset,
		Scale:     inst.Scale,
		Graph:     inst.Graph.wire(),
		Features:  inst.Features,
		Labels:    inst.Labels,
		TrainMask: inst.TrainMask,
		TestMask:  inst.TestMask,
		PosEdges:  inst.PosEdges,
		NegEdges:  inst.NegEdges,
	})
}

// LoadInstance reads an instance written by Instance.Save.
func LoadInstance(r io.Reader) (*Instance, error) {
	var w instanceWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("graphgen: decode instance: %w", err)
	}
	g, err := fromWire(w.Graph)
	if err != nil {
		return nil, err
	}
	if w.Features != nil && w.Features.Rows != g.N {
		return nil, fmt.Errorf("graphgen: features for %d vertices on a %d-vertex graph", w.Features.Rows, g.N)
	}
	return &Instance{
		Dataset:   w.Dataset,
		Scale:     w.Scale,
		Graph:     g,
		Features:  w.Features,
		Labels:    w.Labels,
		TrainMask: w.TrainMask,
		TestMask:  w.TestMask,
		PosEdges:  w.PosEdges,
		NegEdges:  w.NegEdges,
	}, nil
}
