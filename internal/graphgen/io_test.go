package graphgen

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestGraphSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := PowerLaw(rng, 500, 8, 2.2)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N || got.Edges() != g.Edges() {
		t.Fatalf("round trip lost structure: %d/%d vs %d/%d", got.N, got.Edges(), g.N, g.Edges())
	}
	for v := 0; v < g.N; v++ {
		if got.Degree(v) != g.Degree(v) {
			t.Fatalf("vertex %d degree %d, want %d", v, got.Degree(v), g.Degree(v))
		}
	}
}

func TestInstanceSaveLoadRoundTrip(t *testing.T) {
	d, err := ByName("arxiv")
	if err != nil {
		t.Fatal(err)
	}
	inst := d.Synthesize(4, 300)
	var buf bytes.Buffer
	if err := inst.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset.Name != "arxiv" || got.Graph.N != inst.Graph.N {
		t.Fatalf("metadata lost: %+v", got.Dataset)
	}
	if !got.Features.Equal(inst.Features, 0) {
		t.Fatal("features lost")
	}
	for v := range inst.Labels {
		if got.Labels[v] != inst.Labels[v] {
			t.Fatal("labels lost")
		}
		if got.TrainMask[v] != inst.TrainMask[v] || got.TestMask[v] != inst.TestMask[v] {
			t.Fatal("masks lost")
		}
	}
}

func TestInstanceSaveLoadLinkTask(t *testing.T) {
	d, err := ByName("ddi")
	if err != nil {
		t.Fatal(err)
	}
	inst := d.Synthesize(4, 200)
	var buf bytes.Buffer
	if err := inst.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PosEdges) != len(inst.PosEdges) || len(got.NegEdges) != len(inst.NegEdges) {
		t.Fatal("link splits lost")
	}
}

func TestLoadGraphRejectsGarbage(t *testing.T) {
	if _, err := LoadGraph(strings.NewReader("not gob at all")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := LoadInstance(strings.NewReader("nope")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadGraphRejectsCorruptWire(t *testing.T) {
	for i, w := range []graphWire{
		{N: -1},
		{N: 2, RowPtr: []int{0, 1}}, // wrong rowptr length
		{N: 1, RowPtr: []int{0, 5}, ColIdx: []int{0}},    // hi > len
		{N: 2, RowPtr: []int{0, 1, 1}, ColIdx: []int{9}}, // neighbour out of range
		{N: 2, RowPtr: []int{1, 0, 0}, ColIdx: nil},      // lo > hi
	} {
		if _, err := fromWire(w); err == nil {
			t.Fatalf("case %d: expected error for corrupt wire %+v", i, w)
		}
	}
}
