package mapping

import (
	"math/rand"
	"testing"

	"gopim/internal/graphgen"
)

func benchDegrees(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	return graphgen.PowerLawWeights(rng, n, 50, 2.1)
}

func BenchmarkInterleavedLayout(b *testing.B) {
	degs := benchDegrees(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InterleavedLayout(degs, 64)
	}
}

func BenchmarkUpdatedRowsPerGroup(b *testing.B) {
	degs := benchDegrees(100_000)
	l := InterleavedLayout(degs, 64)
	p := NewUpdatePlan(degs, 0.5, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.UpdatedRowsPerGroup(p, i%20)
	}
}
