package mapping

import (
	"fmt"
	"sort"
)

// DeltaStats reports what an incremental re-mapping actually did.
type DeltaStats struct {
	// StripesMoved counts placement slots whose occupant changed —
	// the vertex rows that must be rewritten onto a different crossbar.
	StripesMoved int
	// GroupsTouched counts distinct crossbar groups receiving at least
	// one moved stripe.
	GroupsTouched int
	// Full reports that the delta fell back to a from-scratch remap
	// (vertex-count change, a rank window reaching into the spill
	// region of a non-multiple group size, or a majority of vertices
	// re-ranked). The result is identical either way; Full only says
	// how much work it took.
	Full bool
}

// fullRemapFraction is the re-ranked-vertex fraction beyond which a
// from-scratch remap is cheaper than windowed patching.
const fullRemapFraction = 0.5

// ApplyDelta re-derives an interleaved layout after a degree update,
// moving only the stripes whose degree rank changed. newDegs is the
// full post-mutation degree sequence; changed lists the vertex ids
// whose degree differs from the sequence this layout was built on
// (duplicates and unchanged entries are tolerated). dead carries the
// current per-crossbar retirement flags (nil = all healthy), so a
// retirement wave that lands between deltas re-routes the logical
// groups exactly as InterleavedLayoutHealthy would.
//
// The contract — pinned by TestApplyDeltaMatchesFullRemap — is bitwise
// equality with a from-scratch InterleavedLayout/InterleavedLayoutHealthy
// of newDegs: same Order, same slot assignment, same PhysGroups. The
// incremental path merges the unchanged vertices' existing rank order
// with the re-sorted changed set (O(n + c·log c), no full sort) and
// re-stripes only the rank window where the two orders differ; anything
// it cannot patch exactly falls back to the full constructor and says
// so in DeltaStats.Full.
func (l *Layout) ApplyDelta(newDegs []float64, changed []int, dead []bool) (*Layout, DeltaStats) {
	if l.byDeg == nil {
		panic(fmt.Sprintf("mapping: ApplyDelta needs an interleaved layout, have %q", l.Policy))
	}
	n := len(l.Order)
	if len(newDegs) != n || len(changed) > int(fullRemapFraction*float64(n)) {
		return l.fullRemap(newDegs, dead)
	}

	// Degree-rank merge: unchanged vertices keep their relative order
	// (their degrees are untouched, and the original stable sort broke
	// ties by ascending vertex id), changed vertices re-sort by
	// (-degree, id), and a single merge rebuilds the total order.
	isChanged := make(map[int]bool, len(changed))
	for _, v := range changed {
		if v < 0 || v >= n {
			return l.fullRemap(newDegs, dead)
		}
		isChanged[v] = true
	}
	kept := make([]int, 0, n-len(isChanged))
	for _, v := range l.byDeg {
		if !isChanged[v] {
			kept = append(kept, v)
		}
	}
	moved := make([]int, 0, len(isChanged))
	for v := range isChanged {
		moved = append(moved, v)
	}
	sort.Ints(moved)
	sort.SliceStable(moved, func(a, b int) bool {
		da, db := newDegs[moved[a]], newDegs[moved[b]]
		if da != db {
			return da > db
		}
		return moved[a] < moved[b]
	})
	before := func(a, b int) bool {
		if newDegs[a] != newDegs[b] {
			return newDegs[a] > newDegs[b]
		}
		return a < b
	}
	newByDeg := make([]int, 0, n)
	i, j := 0, 0
	for i < len(kept) && j < len(moved) {
		if before(kept[i], moved[j]) {
			newByDeg = append(newByDeg, kept[i])
			i++
		} else {
			newByDeg = append(newByDeg, moved[j])
			j++
		}
	}
	newByDeg = append(newByDeg, kept[i:]...)
	newByDeg = append(newByDeg, moved[j:]...)

	// The affected rank window: outside it the rank → slot striping is
	// untouched, so those stripes stay put bit for bit.
	lo, hi := 0, n-1
	for lo < n && newByDeg[lo] == l.byDeg[lo] {
		lo++
	}
	out := &Layout{
		Order:     append([]int(nil), l.Order...),
		GroupSize: l.GroupSize,
		Policy:    l.Policy,
		slotOf:    append([]int(nil), l.slotOf...),
		byDeg:     newByDeg,
	}
	var stats DeltaStats
	if lo == n { // ranks identical: only the phys routing can change
		out.applyPhys(dead)
		return out, stats
	}
	for newByDeg[hi] == l.byDeg[hi] {
		hi--
	}
	// Ranks at or past the spill boundary are placed by the full
	// constructor's first-free-slot scan, whose outcome depends on every
	// earlier placement — not patchable in isolation.
	if hi >= spillRank(n, l.GroupSize) {
		return l.fullRemap(newDegs, dead)
	}
	groups := numGroups(n, l.GroupSize)
	touched := map[int]bool{}
	for k := lo; k <= hi; k++ {
		v := newByDeg[k]
		slot := (k%groups)*l.GroupSize + k/groups
		if out.Order[slot] == v {
			continue
		}
		out.Order[slot] = v
		out.slotOf[v] = slot
		stats.StripesMoved++
		touched[slot/l.GroupSize] = true
	}
	stats.GroupsTouched = len(touched)
	out.applyPhys(dead)
	return out, stats
}

// fullRemap is ApplyDelta's from-scratch fallback, counting how many
// stripes actually landed somewhere new so the churn counters stay
// honest across both paths.
func (l *Layout) fullRemap(newDegs []float64, dead []bool) (*Layout, DeltaStats) {
	var out *Layout
	if dead != nil {
		out = InterleavedLayoutHealthy(newDegs, l.GroupSize, dead)
	} else {
		out = InterleavedLayout(newDegs, l.GroupSize)
	}
	stats := DeltaStats{Full: true}
	touched := map[int]bool{}
	for p, v := range out.Order {
		if p >= len(l.Order) || l.Order[p] != v {
			stats.StripesMoved++
			touched[p/l.GroupSize] = true
		}
	}
	stats.GroupsTouched = len(touched)
	return out, stats
}

// applyPhys installs the healthy-crossbar routing for the current dead
// flags (nil keeps the identity mapping of a fault-free layout).
func (l *Layout) applyPhys(dead []bool) {
	if dead == nil {
		l.PhysGroups = nil
		l.Policy = "interleaved"
		return
	}
	l.PhysGroups = healthyPhysGroups(l.NumGroups(), dead)
	l.Policy = "interleaved-healthy"
}

// spillRank returns the smallest degree rank whose direct stripe slot
// overflows the layout (the last, short group fills up), n if none.
// Only the final group can overflow: rank k lands at slot
// (k%groups)·groupSize + k/groups, and for every non-final group that
// is strictly inside the group's slot range for all k < n.
func spillRank(n, groupSize int) int {
	if n == 0 || n%groupSize == 0 {
		return n
	}
	groups := numGroups(n, groupSize)
	lastLen := n - (groups-1)*groupSize
	k := (groups - 1) + lastLen*groups
	if k > n {
		k = n
	}
	return k
}
