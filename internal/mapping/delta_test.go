package mapping

import (
	"math/rand"
	"reflect"
	"testing"
)

// layoutsEqual compares every field that affects placement or timing,
// including the unexported inverse index and rank order.
func layoutsEqual(a, b *Layout) bool {
	return reflect.DeepEqual(a.Order, b.Order) &&
		a.GroupSize == b.GroupSize &&
		a.Policy == b.Policy &&
		reflect.DeepEqual(a.PhysGroups, b.PhysGroups) &&
		reflect.DeepEqual(a.slotOf, b.slotOf) &&
		reflect.DeepEqual(a.byDeg, b.byDeg)
}

// mutate applies count random degree perturbations and returns the
// changed vertex ids.
func mutate(rng *rand.Rand, degs []float64, count int) []int {
	changed := make([]int, 0, count)
	for i := 0; i < count; i++ {
		v := rng.Intn(len(degs))
		degs[v] += float64(rng.Intn(7) - 3)
		if degs[v] < 0 {
			degs[v] = 0
		}
		changed = append(changed, v)
	}
	return changed
}

// TestApplyDeltaMatchesFullRemap pins the tentpole contract: a chain of
// incremental deltas is bitwise-equal to rebuilding the interleaved
// layout from scratch on the mutated degree sequence, with and without
// retired crossbars, across sizes that exercise the spill path.
func TestApplyDeltaMatchesFullRemap(t *testing.T) {
	for _, tc := range []struct {
		name      string
		n, gs     int
		deadEvery int // retire crossbar ids divisible by this (0 = none)
	}{
		{"exact-multiple", 64, 8, 0},
		{"short-last-group", 61, 8, 0},
		{"tiny", 5, 4, 0},
		{"healthy-routing", 64, 8, 3},
		{"short-and-dead", 61, 8, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			degs := make([]float64, tc.n)
			for i := range degs {
				degs[i] = float64(rng.Intn(40))
			}
			var dead []bool
			if tc.deadEvery > 0 {
				dead = make([]bool, numGroups(tc.n, tc.gs))
				for i := range dead {
					if i%tc.deadEvery == 0 {
						dead[i] = true
					}
				}
			}
			cur := InterleavedLayout(degs, tc.gs)
			if dead != nil {
				cur = InterleavedLayoutHealthy(degs, tc.gs, dead)
			}
			sawIncremental := false
			for step := 0; step < 50; step++ {
				changed := mutate(rng, degs, 1+rng.Intn(4))
				var stats DeltaStats
				cur, stats = cur.ApplyDelta(degs, changed, dead)
				if !stats.Full {
					sawIncremental = true
				}
				want := InterleavedLayout(degs, tc.gs)
				if dead != nil {
					want = InterleavedLayoutHealthy(degs, tc.gs, dead)
				}
				if !layoutsEqual(cur, want) {
					t.Fatalf("step %d (changed %v, full=%v): delta layout diverged\n got order %v\nwant order %v",
						step, changed, stats.Full, cur.Order, want.Order)
				}
				if !isPermutation(cur.Order) {
					t.Fatalf("step %d: order not a permutation: %v", step, cur.Order)
				}
			}
			if !sawIncremental {
				t.Fatal("every step fell back to a full remap; incremental path untested")
			}
		})
	}
}

// TestApplyDeltaNoChange: an empty delta must return an identical
// layout and zero stats (the churn loop calls this every quiet epoch).
func TestApplyDeltaNoChange(t *testing.T) {
	degs := []float64{9, 3, 5, 5, 1, 7, 2, 8, 4, 6}
	l := InterleavedLayout(degs, 4)
	got, stats := l.ApplyDelta(degs, nil, nil)
	if stats != (DeltaStats{}) {
		t.Fatalf("no-op delta reported work: %+v", stats)
	}
	if !layoutsEqual(got, l) {
		t.Fatalf("no-op delta changed the layout: %v vs %v", got.Order, l.Order)
	}
}

// TestApplyDeltaFallbacks checks the three full-remap triggers report
// Full and still match a from-scratch build.
func TestApplyDeltaFallbacks(t *testing.T) {
	degs := []float64{9, 3, 5, 5, 1, 7, 2, 8, 4, 6}
	l := InterleavedLayout(degs, 4)

	// Vertex-count change (streaming insert grew the graph).
	grown := append(append([]float64(nil), degs...), 11, 0.5)
	got, stats := l.ApplyDelta(grown, []int{10, 11}, nil)
	if !stats.Full {
		t.Fatal("size change must force a full remap")
	}
	if !layoutsEqual(got, InterleavedLayout(grown, 4)) {
		t.Fatalf("grown remap wrong: %v", got.Order)
	}

	// Majority churn.
	many := append([]float64(nil), degs...)
	changed := make([]int, 0, 8)
	for v := 0; v < 8; v++ {
		many[v] += 1
		changed = append(changed, v)
	}
	if _, stats := l.ApplyDelta(many, changed, nil); !stats.Full {
		t.Fatal("majority churn must force a full remap")
	}

	// Rank window reaching the spill region of a short last group:
	// demote the top vertex to the bottom so the window spans all ranks.
	spill := append([]float64(nil), degs...)
	spill[0] = -1
	got, stats = l.ApplyDelta(spill, []int{0}, nil)
	if !stats.Full {
		t.Fatal("spill-window delta must force a full remap")
	}
	if !layoutsEqual(got, InterleavedLayout(spill, 4)) {
		t.Fatalf("spill remap wrong: %v", got.Order)
	}
}

// TestApplyDeltaStatsCountMoves: moved-stripe accounting must reflect
// real occupant changes, not the size of the changed set.
func TestApplyDeltaStatsCountMoves(t *testing.T) {
	degs := []float64{40, 30, 20, 10, 8, 6, 4, 2} // 8 vertices, 2 groups of 4
	l := InterleavedLayout(degs, 4)
	// Swap the ranks of two adjacent vertices: exactly their two slots move.
	next := append([]float64(nil), degs...)
	next[4], next[5] = 6, 8
	got, stats := l.ApplyDelta(next, []int{4, 5}, nil)
	if stats.Full {
		t.Fatalf("adjacent swap should patch incrementally, got %+v", stats)
	}
	if stats.StripesMoved != 2 {
		t.Fatalf("StripesMoved = %d, want 2", stats.StripesMoved)
	}
	if stats.GroupsTouched < 1 || stats.GroupsTouched > 2 {
		t.Fatalf("GroupsTouched = %d, want 1..2", stats.GroupsTouched)
	}
	if !layoutsEqual(got, InterleavedLayout(next, 4)) {
		t.Fatalf("swap remap wrong: %v", got.Order)
	}
}

// TestApplyDeltaRequiresInterleaved: index layouts carry no rank order
// to patch — the call is a programming error and must say so loudly.
func TestApplyDeltaRequiresInterleaved(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyDelta on an index layout must panic")
		}
	}()
	IndexLayout(8, 4).ApplyDelta(make([]float64, 8), nil, nil)
}

// TestHealthyPhysGroupsFullyDeadGroup is the satellite regression: when
// every listed crossbar is retired, routing must shift all logical
// groups past the dead region with distinct, increasing physical ids —
// and leave the degree-striped placement itself untouched.
func TestHealthyPhysGroupsFullyDeadGroup(t *testing.T) {
	degs := make([]float64, 32)
	for i := range degs {
		degs[i] = float64(32 - i)
	}
	dead := make([]bool, 4) // every crossbar in the logical range dead
	for i := range dead {
		dead[i] = true
	}
	l := InterleavedLayoutHealthy(degs, 8, dead)
	plain := InterleavedLayout(degs, 8)
	if !reflect.DeepEqual(l.Order, plain.Order) {
		t.Fatal("dead routing must not disturb the logical placement")
	}
	seen := map[int]bool{}
	for g := 0; g < l.NumGroups(); g++ {
		p := l.PhysGroupOf(g)
		if p < len(dead) && dead[p] {
			t.Fatalf("group %d routed onto dead crossbar %d", g, p)
		}
		if seen[p] {
			t.Fatalf("physical crossbar %d assigned twice", p)
		}
		seen[p] = true
	}
	if got, want := l.PhysGroupOf(0), len(dead); got != want {
		t.Fatalf("first group should land just past the dead region: got %d, want %d", got, want)
	}
}
