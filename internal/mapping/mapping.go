// Package mapping implements GoPIM's vertex-to-crossbar data mapping
// strategies and the selective vertex-updating schemes built on them:
//
//   - IndexLayout — vertices in index order, the strategy of ReGraphX
//     and SlimGNN (paper §III-B). Under skewed degree distributions it
//     yields crossbars with wildly different average degrees (Fig. 6),
//     so degree-ranked selective updating may not shorten the write
//     critical path at all (Fig. 7, "OSU").
//   - InterleavedLayout — vertices sorted by degree and striped
//     round-robin across crossbars (Fig. 11), so every crossbar holds
//     the same mix of degree classes and selective updating reduces
//     every crossbar's writes equally (Fig. 12, "ISU").
//
// An UpdatePlan selects the top-θ fraction of vertices by degree as
// "important" (rewritten every epoch); the rest refresh every
// StalePeriod epochs (paper §VI-A: 20).
package mapping

import (
	"fmt"
	"sort"
)

// Layout is an ordered placement of vertices onto crossbar groups.
// Consecutive runs of GroupSize vertices in Order share a crossbar
// (the paper's Figs. 6/11 granularity).
type Layout struct {
	// Order lists vertex ids in mapped order: Order[p] is the vertex in
	// placement slot p.
	Order []int
	// GroupSize is the number of vertices per crossbar (the crossbar
	// row count, 64 for the Table II chip).
	GroupSize int
	// Policy names the strategy for display ("index", "interleaved").
	Policy string
	// PhysGroups maps logical group g to the physical crossbar id
	// holding it. Nil means the identity (group g lives on crossbar g);
	// fault-aware layouts skip retired crossbars here, so the logical
	// striping — and with it every timing quantity below — is untouched
	// while ISU writes land on healthy cells.
	PhysGroups []int

	slotOf []int // inverse of Order
	// byDeg is the degree-ranked vertex order the striping was derived
	// from (rank k → vertex), kept by the interleaved constructors so
	// ApplyDelta can re-rank incrementally. Nil for index layouts.
	byDeg []int
}

func newLayout(order []int, groupSize int, policy string) *Layout {
	if groupSize < 1 {
		panic(fmt.Sprintf("mapping: group size %d must be positive", groupSize))
	}
	slot := make([]int, len(order))
	for p, v := range order {
		slot[v] = p
	}
	return &Layout{Order: order, GroupSize: groupSize, Policy: policy, slotOf: slot}
}

// IndexLayout places vertices in vertex-index order.
func IndexLayout(n, groupSize int) *Layout {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return newLayout(order, groupSize, "index")
}

// InterleavedLayout sorts vertices by descending degree and stripes
// them round-robin across the ceil(n/groupSize) crossbar groups: the
// k-th highest-degree vertex goes to group k mod numGroups. Every
// group therefore receives one vertex from each similar-degree scope
// (paper Fig. 11).
func InterleavedLayout(degrees []float64, groupSize int) *Layout {
	n := len(degrees)
	byDeg := make([]int, n)
	for i := range byDeg {
		byDeg[i] = i
	}
	sort.SliceStable(byDeg, func(a, b int) bool { return degrees[byDeg[a]] > degrees[byDeg[b]] })
	groups := numGroups(n, groupSize)
	order := make([]int, n)
	for i := range order {
		order[i] = -1
	}
	// Sorted rank k lands in group k%groups at intra-group position
	// k/groups; convert to a flat slot. When n is not a multiple of
	// groupSize the last group is short, so late ranks can collide or
	// overflow — those spill into the first free slot.
	next := 0 // scan cursor for free slots
	for k, v := range byDeg {
		g := k % groups
		pos := k / groups
		slot := g*groupSize + pos
		if slot >= n || order[slot] != -1 {
			for order[next] != -1 {
				next++
			}
			slot = next
		}
		order[slot] = v
	}
	l := newLayout(order, groupSize, "interleaved")
	l.byDeg = byDeg
	return l
}

// InterleavedLayoutHealthy is InterleavedLayout over a chip with
// retired crossbars: the logical degree-striped placement is exactly
// InterleavedLayout's — the degree-mix invariant holds by construction
// — but each logical group is assigned the next healthy physical
// crossbar, skipping ids whose dead flag is set. A fully-dead crossbar
// therefore receives no stripe; its would-be stripe shifts to the next
// healthy id. Indices beyond len(dead) are treated as healthy, so a
// short (or nil) dead slice degrades to the identity mapping.
func InterleavedLayoutHealthy(degrees []float64, groupSize int, dead []bool) *Layout {
	l := InterleavedLayout(degrees, groupSize)
	l.PhysGroups = healthyPhysGroups(l.NumGroups(), dead)
	l.Policy = "interleaved-healthy"
	return l
}

// healthyPhysGroups assigns each of numGroups logical groups the next
// physical crossbar id whose dead flag is unset. Indices beyond
// len(dead) count as healthy, so a fully-dead flag slice shifts every
// group past the damaged region rather than failing: phys ids stay
// strictly increasing (hence distinct) by construction.
func healthyPhysGroups(numGroups int, dead []bool) []int {
	phys := make([]int, numGroups)
	next := 0
	for g := range phys {
		for next < len(dead) && dead[next] {
			next++
		}
		phys[g] = next
		next++
	}
	return phys
}

// PhysGroupOf returns the physical crossbar id of logical group g.
func (l *Layout) PhysGroupOf(g int) int {
	if l.PhysGroups == nil {
		return g
	}
	return l.PhysGroups[g]
}

func numGroups(n, groupSize int) int {
	if n == 0 {
		return 0
	}
	return (n + groupSize - 1) / groupSize
}

// NumGroups returns the number of crossbar groups in the layout.
func (l *Layout) NumGroups() int { return numGroups(len(l.Order), l.GroupSize) }

// GroupOf returns the crossbar group holding vertex v.
func (l *Layout) GroupOf(v int) int { return l.slotOf[v] / l.GroupSize }

// GroupVertices returns the vertex ids mapped to group g.
func (l *Layout) GroupVertices(g int) []int {
	start := g * l.GroupSize
	end := start + l.GroupSize
	if end > len(l.Order) {
		end = len(l.Order)
	}
	return l.Order[start:end]
}

// GroupAvgDegrees returns the average degree of the vertices mapped to
// each crossbar group — the quantity plotted in paper Fig. 6.
func (l *Layout) GroupAvgDegrees(degrees []float64) []float64 {
	out := make([]float64, l.NumGroups())
	for g := range out {
		vs := l.GroupVertices(g)
		if len(vs) == 0 {
			continue
		}
		var sum float64
		for _, v := range vs {
			sum += degrees[v]
		}
		out[g] = sum / float64(len(vs))
	}
	return out
}

// MinMax returns the smallest and largest values of a non-empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// UpdatePlan selects which vertices are rewritten onto crossbars in a
// given epoch (paper §VI-A/§VI-C).
type UpdatePlan struct {
	// Important marks the top-θ fraction of vertices by degree.
	Important []bool
	// Theta is the fraction of vertices treated as important.
	Theta float64
	// StalePeriod is the refresh interval for non-important vertices
	// (every StalePeriod-th epoch rewrites everything). Period 1 means
	// full updates every epoch.
	StalePeriod int
}

// FullUpdatePlan updates every vertex every epoch (no sparsification).
func FullUpdatePlan(n int) *UpdatePlan {
	imp := make([]bool, n)
	for i := range imp {
		imp[i] = true
	}
	return &UpdatePlan{Important: imp, Theta: 1, StalePeriod: 1}
}

// NewUpdatePlan ranks vertices by degree and marks the top theta
// fraction (rounded up, at least one vertex for theta > 0) important.
func NewUpdatePlan(degrees []float64, theta float64, stalePeriod int) *UpdatePlan {
	if theta < 0 || theta > 1 {
		panic(fmt.Sprintf("mapping: theta %v out of [0,1]", theta))
	}
	if stalePeriod < 1 {
		panic(fmt.Sprintf("mapping: stale period %d must be ≥ 1", stalePeriod))
	}
	n := len(degrees)
	rank := make([]int, n)
	for i := range rank {
		rank[i] = i
	}
	sort.SliceStable(rank, func(a, b int) bool { return degrees[rank[a]] > degrees[rank[b]] })
	k := int(theta * float64(n))
	if theta > 0 && k == 0 && n > 0 {
		k = 1
	}
	imp := make([]bool, n)
	for i := 0; i < k; i++ {
		imp[rank[i]] = true
	}
	return &UpdatePlan{Important: imp, Theta: theta, StalePeriod: stalePeriod}
}

// AdaptiveTheta returns the paper's adaptive threshold for a graph with
// the given average degree: 0.5 for dense graphs (avg degree > 8),
// 0.8 for sparse ones (§VI-C).
func AdaptiveTheta(avgDeg float64) float64 {
	if avgDeg > 8 {
		return 0.5
	}
	return 0.8
}

// UpdatedThisEpoch reports whether vertex v is rewritten in the given
// epoch: important vertices always, others on refresh epochs.
func (p *UpdatePlan) UpdatedThisEpoch(v, epoch int) bool {
	return p.Important[v] || epoch%p.StalePeriod == 0
}

// IsRefreshEpoch reports whether every vertex is rewritten this epoch.
func (p *UpdatePlan) IsRefreshEpoch(epoch int) bool { return epoch%p.StalePeriod == 0 }

// AvgUpdateFraction is the steady-state fraction of vertices rewritten
// per epoch: θ + (1−θ)/StalePeriod.
func (p *UpdatePlan) AvgUpdateFraction() float64 {
	return p.Theta + (1-p.Theta)/float64(p.StalePeriod)
}

// UpdatedRowsPerGroup counts, per crossbar group, how many vertex rows
// are rewritten in the given epoch. The slowest group bounds the
// update latency (writes within a crossbar are serial, crossbars
// operate in parallel) — the "cycles" of the paper's Figs. 7 and 12.
func (l *Layout) UpdatedRowsPerGroup(p *UpdatePlan, epoch int) []int {
	out := make([]int, l.NumGroups())
	for g := range out {
		for _, v := range l.GroupVertices(g) {
			if p.UpdatedThisEpoch(v, epoch) {
				out[g]++
			}
		}
	}
	return out
}

// MaxUpdatedRows returns the largest per-group row count for the epoch.
func (l *Layout) MaxUpdatedRows(p *UpdatePlan, epoch int) int {
	max := 0
	for _, c := range l.UpdatedRowsPerGroup(p, epoch) {
		if c > max {
			max = c
		}
	}
	return max
}

// SteadyStateMaxUpdatedRows averages the per-epoch maximum over one
// stale period: one refresh epoch plus (period−1) selective epochs.
func (l *Layout) SteadyStateMaxUpdatedRows(p *UpdatePlan) float64 {
	period := p.StalePeriod
	var sum float64
	for e := 0; e < period; e++ {
		sum += float64(l.MaxUpdatedRows(p, e))
	}
	return sum / float64(period)
}

// UpdatedRowsPerDomain aggregates updated vertex rows over
// serialisation domains of domainGroups consecutive crossbar groups
// (a PE in the Table II chip = 32 crossbars sharing write drivers).
// The maximum domain bounds the write time at PE granularity.
func (l *Layout) UpdatedRowsPerDomain(p *UpdatePlan, epoch, domainGroups int) []int {
	if domainGroups < 1 {
		panic(fmt.Sprintf("mapping: domainGroups %d must be ≥ 1", domainGroups))
	}
	perGroup := l.UpdatedRowsPerGroup(p, epoch)
	nd := (len(perGroup) + domainGroups - 1) / domainGroups
	out := make([]int, nd)
	for g, c := range perGroup {
		out[g/domainGroups] += c
	}
	return out
}

// SteadyStateMaxUpdatedRowsPerDomain averages the per-epoch max domain
// row count over one stale period.
func (l *Layout) SteadyStateMaxUpdatedRowsPerDomain(p *UpdatePlan, domainGroups int) float64 {
	var sum float64
	for e := 0; e < p.StalePeriod; e++ {
		max := 0
		for _, c := range l.UpdatedRowsPerDomain(p, e, domainGroups) {
			if c > max {
				max = c
			}
		}
		sum += float64(max)
	}
	return sum / float64(p.StalePeriod)
}
