package mapping

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gopim/internal/graphgen"
)

func TestIndexLayoutOrder(t *testing.T) {
	l := IndexLayout(10, 4)
	if l.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3", l.NumGroups())
	}
	for v := 0; v < 10; v++ {
		if l.Order[v] != v {
			t.Fatalf("index layout must keep order, got %v", l.Order)
		}
		if got, want := l.GroupOf(v), v/4; got != want {
			t.Fatalf("GroupOf(%d) = %d, want %d", v, got, want)
		}
	}
	if got := l.GroupVertices(2); len(got) != 2 || got[0] != 8 || got[1] != 9 {
		t.Fatalf("short tail group wrong: %v", got)
	}
}

// isPermutation checks a layout maps every vertex exactly once.
func isPermutation(order []int) bool {
	seen := make([]bool, len(order))
	for _, v := range order {
		if v < 0 || v >= len(order) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Property: both layouts are permutations for any size and group size.
func TestLayoutsArePermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		gs := 1 + rng.Intn(10)
		degs := make([]float64, n)
		for i := range degs {
			degs[i] = float64(rng.Intn(1000))
		}
		return isPermutation(IndexLayout(n, gs).Order) &&
			isPermutation(InterleavedLayout(degs, gs).Order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The paper Fig. 12 example: 8 vertices with degrees
// 300, 500, 250, 450, 2, 15, 10, 1 and 4-row crossbars.
func paperExampleDegrees() []float64 { return []float64{300, 500, 250, 450, 2, 15, 10, 1} }

func TestInterleavedBalancesPaperExample(t *testing.T) {
	degs := paperExampleDegrees()
	l := InterleavedLayout(degs, 4)
	avgs := l.GroupAvgDegrees(degs)
	if len(avgs) != 2 {
		t.Fatalf("want 2 groups, got %d", len(avgs))
	}
	// Interleaving puts two high-degree and two low-degree vertices on
	// each crossbar: group averages are close (paper: both crossbars
	// keep V2,V4 / V1,V3 plus two low-degree vertices each).
	lo, hi := MinMax(avgs)
	if hi-lo > 30 {
		t.Fatalf("interleaved group averages should be near-equal, got %v", avgs)
	}

	idx := IndexLayout(8, 4)
	iavgs := idx.GroupAvgDegrees(degs)
	ilo, ihi := MinMax(iavgs)
	// Index order puts all hubs on crossbar 1: massive skew.
	if ihi-ilo < 300 {
		t.Fatalf("index layout should be skewed, got %v", iavgs)
	}
}

// Paper Fig. 7 (OSU): with index mapping and θ=0.5 selective updating,
// all four important vertices (V1–V4) sit on crossbar 1, so the
// slowest crossbar still writes 4 rows — zero benefit. Fig. 12 (ISU):
// interleaving drops the max to 2 rows.
func TestOSUvsISUPaperExample(t *testing.T) {
	degs := paperExampleDegrees()
	plan := NewUpdatePlan(degs, 0.5, 20)

	osu := IndexLayout(8, 4)
	if got := osu.MaxUpdatedRows(plan, 1); got != 4 {
		t.Fatalf("OSU max updated rows = %d, want 4 (no reduction, Fig. 7)", got)
	}
	isu := InterleavedLayout(degs, 4)
	if got := isu.MaxUpdatedRows(plan, 1); got != 2 {
		t.Fatalf("ISU max updated rows = %d, want 2 (Fig. 12)", got)
	}
	// On refresh epochs everything is written either way.
	if osu.MaxUpdatedRows(plan, 0) != 4 || isu.MaxUpdatedRows(plan, 0) != 4 {
		t.Fatal("refresh epoch must write all rows")
	}
}

func TestUpdatePlanSelection(t *testing.T) {
	degs := []float64{5, 100, 1, 50}
	p := NewUpdatePlan(degs, 0.5, 20)
	if !p.Important[1] || !p.Important[3] {
		t.Fatalf("top-2 by degree should be vertices 1 and 3: %v", p.Important)
	}
	if p.Important[0] || p.Important[2] {
		t.Fatalf("low-degree vertices must not be important: %v", p.Important)
	}
	if !p.UpdatedThisEpoch(1, 7) {
		t.Fatal("important vertices update every epoch")
	}
	if p.UpdatedThisEpoch(0, 7) {
		t.Fatal("unimportant vertex must not update on epoch 7")
	}
	if !p.UpdatedThisEpoch(0, 40) {
		t.Fatal("unimportant vertex must update on refresh epoch")
	}
	if !p.IsRefreshEpoch(0) || p.IsRefreshEpoch(19) {
		t.Fatal("refresh epochs are multiples of the stale period")
	}
}

func TestUpdatePlanEdgeCases(t *testing.T) {
	// theta > 0 with tiny n still selects at least one vertex.
	p := NewUpdatePlan([]float64{3, 1, 2}, 0.1, 20)
	count := 0
	for _, b := range p.Important {
		if b {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("tiny theta should select 1 vertex, got %d", count)
	}
	// theta = 0 selects none.
	p0 := NewUpdatePlan([]float64{3, 1}, 0, 20)
	for _, b := range p0.Important {
		if b {
			t.Fatal("theta=0 must select no vertices")
		}
	}
	// Full plan.
	fp := FullUpdatePlan(4)
	if fp.AvgUpdateFraction() != 1 {
		t.Fatal("full plan updates everything")
	}
	for _, bad := range []func(){
		func() { NewUpdatePlan(nil, -0.1, 20) },
		func() { NewUpdatePlan(nil, 1.1, 20) },
		func() { NewUpdatePlan(nil, 0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestAvgUpdateFraction(t *testing.T) {
	p := &UpdatePlan{Theta: 0.5, StalePeriod: 20}
	want := 0.5 + 0.5/20
	if got := p.AvgUpdateFraction(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("AvgUpdateFraction = %v, want %v", got, want)
	}
}

func TestAdaptiveTheta(t *testing.T) {
	if AdaptiveTheta(500.5) != 0.5 {
		t.Fatal("dense graphs use θ=0.5")
	}
	if AdaptiveTheta(3.9) != 0.8 {
		t.Fatal("sparse graphs use θ=0.8")
	}
	if AdaptiveTheta(8) != 0.8 {
		t.Fatal("avg degree exactly 8 is classified sparse (paper: ≤ 8)")
	}
}

// Property: with θ-selective updating, the interleaved layout's
// slowest crossbar never writes more than one row beyond the index
// layout's slowest crossbar — interleaving places important vertices
// round-robin, so its max is the ceiling of the mean, while any other
// layout's max is at least the mean.
func TestInterleavedNeverWorseOnUpdates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 * (2 + rng.Intn(10))
		degs := graphgen.PowerLawWeights(rng, n, 20, 2.1)
		theta := []float64{0.2, 0.5, 0.8}[rng.Intn(3)]
		plan := NewUpdatePlan(degs, theta, 20)
		idx := IndexLayout(n, 64).MaxUpdatedRows(plan, 1)
		il := InterleavedLayout(degs, 64).MaxUpdatedRows(plan, 1)
		return il <= idx+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// On power-law degree sequences the interleaved layout typically cuts
// the per-crossbar average-degree spread dramatically versus index
// order (paper Fig. 6 vs Fig. 11). Checked on fixed seeds: the claim
// is statistical, not adversarial (a single mega-hub inflates either
// layout's spread by deg/groupSize).
func TestInterleavedReducesSkewTypically(t *testing.T) {
	wins := 0
	const trials = 20
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 64 * 8
		degs := graphgen.PowerLawWeights(rng, n, 20, 2.1)
		ilo, ihi := MinMax(IndexLayout(n, 64).GroupAvgDegrees(degs))
		slo, shi := MinMax(InterleavedLayout(degs, 64).GroupAvgDegrees(degs))
		if shi-slo <= ihi-ilo {
			wins++
		}
	}
	if wins < trials*3/4 {
		t.Fatalf("interleaved beat index spread only %d/%d times", wins, trials)
	}
}

// Property: with interleaving, selective updating reduces the critical
// write path by roughly θ on every crossbar.
func TestInterleavedSelectiveCutsAllGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 1024
	degs := graphgen.PowerLawWeights(rng, n, 30, 2.1)
	l := InterleavedLayout(degs, 64)
	plan := NewUpdatePlan(degs, 0.5, 20)
	for g, rows := range l.UpdatedRowsPerGroup(plan, 3) {
		if rows < 28 || rows > 36 {
			t.Fatalf("group %d updates %d rows, want ≈32 (θ=0.5 of 64)", g, rows)
		}
	}
}

func TestSteadyStateMaxUpdatedRows(t *testing.T) {
	degs := paperExampleDegrees()
	l := InterleavedLayout(degs, 4)
	plan := NewUpdatePlan(degs, 0.5, 4)
	// Epoch 0 writes 4 rows, epochs 1-3 write 2: average 2.5.
	if got := l.SteadyStateMaxUpdatedRows(plan); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("steady state rows = %v, want 2.5", got)
	}
}

func TestUpdatedRowsPerDomain(t *testing.T) {
	l := IndexLayout(8, 4)
	plan := FullUpdatePlan(8)
	doms := l.UpdatedRowsPerDomain(plan, 0, 2) // both groups in one PE
	if len(doms) != 1 || doms[0] != 8 {
		t.Fatalf("domain rows = %v, want [8]", doms)
	}
	if got := l.SteadyStateMaxUpdatedRowsPerDomain(plan, 2); got != 8 {
		t.Fatalf("steady domain rows = %v, want 8", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad domain size")
		}
	}()
	l.UpdatedRowsPerDomain(plan, 0, 0)
}

func TestGroupAvgDegreesEmptyAndSingle(t *testing.T) {
	l := IndexLayout(0, 4)
	if got := l.GroupAvgDegrees(nil); len(got) != 0 {
		t.Fatalf("empty layout should have no groups: %v", got)
	}
	one := IndexLayout(1, 64)
	avgs := one.GroupAvgDegrees([]float64{7})
	if len(avgs) != 1 || avgs[0] != 7 {
		t.Fatalf("single vertex group avg = %v", avgs)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 2})
	if lo != -1 || hi != 3 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("MinMax(nil) should be 0,0")
	}
}

// A fault-aware interleaved layout must keep the logical striping —
// and with it the degree-mix invariant — bit-identical to the healthy
// layout, while routing every logical group around dead crossbars.
func TestInterleavedLayoutHealthySkipsDead(t *testing.T) {
	degs := make([]float64, 300)
	for i := range degs {
		degs[i] = float64((i * 37) % 100)
	}
	dead := []bool{false, true, false, false, true} // crossbars 1 and 4 fully dead
	l := InterleavedLayoutHealthy(degs, 64, dead)
	ref := InterleavedLayout(degs, 64)

	// Logical placement identical → every timing quantity unchanged.
	for p, v := range ref.Order {
		if l.Order[p] != v {
			t.Fatalf("slot %d: healthy layout reordered vertices (%d vs %d)", p, l.Order[p], v)
		}
	}

	// Physical ids skip the dead crossbars, in order, without reuse.
	seen := map[int]bool{}
	for g := 0; g < l.NumGroups(); g++ {
		phys := l.PhysGroupOf(g)
		if phys < len(dead) && dead[phys] {
			t.Fatalf("logical group %d landed on dead crossbar %d", g, phys)
		}
		if seen[phys] {
			t.Fatalf("crossbar %d assigned twice", phys)
		}
		seen[phys] = true
	}
	// 300 vertices / 64 = 5 logical groups over dead {1,4}: 0,2,3,5,6.
	want := []int{0, 2, 3, 5, 6}
	for g, w := range want {
		if l.PhysGroupOf(g) != w {
			t.Fatalf("group %d on crossbar %d, want %d", g, l.PhysGroupOf(g), w)
		}
	}

	// Degree-mix invariant: the per-group average degree spread matches
	// the fault-free interleaved layout exactly.
	gotMin, gotMax := MinMax(l.GroupAvgDegrees(degs))
	wantMin, wantMax := MinMax(ref.GroupAvgDegrees(degs))
	if gotMin != wantMin || gotMax != wantMax {
		t.Fatalf("degree mix changed: [%v,%v] vs [%v,%v]", gotMin, gotMax, wantMin, wantMax)
	}
}

// Without dead flags the healthy layout is the identity mapping, and
// the plain layout reports identity physical groups.
func TestPhysGroupIdentityDefaults(t *testing.T) {
	degs := []float64{5, 4, 3, 2, 1, 0}
	plain := InterleavedLayout(degs, 2)
	for g := 0; g < plain.NumGroups(); g++ {
		if plain.PhysGroupOf(g) != g {
			t.Fatalf("plain layout group %d on crossbar %d", g, plain.PhysGroupOf(g))
		}
	}
	l := InterleavedLayoutHealthy(degs, 2, nil)
	for g := 0; g < l.NumGroups(); g++ {
		if l.PhysGroupOf(g) != g {
			t.Fatalf("nil-dead healthy layout group %d on crossbar %d", g, l.PhysGroupOf(g))
		}
	}
}
