// Package mlp is a minimal dense neural network — linear layers with
// ReLU activations, mean-squared-error loss, and Adam optimisation —
// sufficient for GoPIM's execution-time predictor (paper §V-A: a
// three-layer MLP with 10 inputs, 256 hidden neurons, 1 output).
package mlp

import (
	"fmt"
	"math"
	"math/rand"

	"gopim/internal/tensor"
)

// Net is a feed-forward network: Linear → ReLU → … → Linear.
type Net struct {
	// Sizes lists layer widths, e.g. {10, 256, 1}.
	Sizes []int
	// Weights[i] is Sizes[i]×Sizes[i+1]; Biases[i] has Sizes[i+1]
	// entries.
	Weights []*tensor.Matrix
	Biases  [][]float64
}

// New constructs a network with Glorot-initialised weights.
// sizes must contain at least an input and an output width.
func New(rng *rand.Rand, sizes ...int) *Net {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("mlp: need ≥ 2 layer sizes, got %v", sizes))
	}
	for _, s := range sizes {
		if s < 1 {
			panic(fmt.Sprintf("mlp: layer size %d must be positive", s))
		}
	}
	n := &Net{Sizes: append([]int(nil), sizes...)}
	for i := 0; i+1 < len(sizes); i++ {
		n.Weights = append(n.Weights, tensor.NewGlorot(rng, sizes[i], sizes[i+1]))
		n.Biases = append(n.Biases, make([]float64, sizes[i+1]))
	}
	return n
}

// NumLayers returns the number of linear layers.
func (n *Net) NumLayers() int { return len(n.Weights) }

// Forward runs a batch (rows = samples) through the network.
func (n *Net) Forward(x *tensor.Matrix) *tensor.Matrix {
	ws := newNetWorkspace(n, x.Rows)
	return n.forwardWS(ws, x)
}

// netWorkspace owns every matrix one forward/backward pass at a fixed
// batch size touches, so Fit's epoch loop allocates nothing per batch.
// Buffers are valid until the next forward call on the same workspace
// overwrites them; Adam consumes the gradients before that happens.
type netWorkspace struct {
	rows int
	// acts[0] is the input (set per call); acts[i] for i ≥ 1 is the
	// post-activation output of layer i-1 (post-ReLU except the last).
	acts []*tensor.Matrix
	// delta[i] (i ≥ 1) is the loss gradient at the output of layer i-1;
	// backprop walks it from delta[L] down to delta[1].
	delta []*tensor.Matrix
	gw    []*tensor.Matrix
	gb    [][]float64
	// in/tgt are the mini-batch gather buffers Fit fills row by row.
	in, tgt *tensor.Matrix
}

func newNetWorkspace(n *Net, rows int) *netWorkspace {
	layers := len(n.Weights)
	ws := &netWorkspace{
		rows:  rows,
		acts:  make([]*tensor.Matrix, layers+1),
		delta: make([]*tensor.Matrix, layers+1),
		gw:    make([]*tensor.Matrix, layers),
		gb:    make([][]float64, layers),
		in:    tensor.New(rows, n.Sizes[0]),
		tgt:   tensor.New(rows, n.Sizes[layers]),
	}
	for i := 0; i < layers; i++ {
		ws.acts[i+1] = tensor.New(rows, n.Sizes[i+1])
		ws.delta[i+1] = tensor.New(rows, n.Sizes[i+1])
		ws.gw[i] = tensor.New(n.Sizes[i], n.Sizes[i+1])
		ws.gb[i] = make([]float64, n.Sizes[i+1])
	}
	return ws
}

// forwardWS runs a batch through the network into workspace buffers
// and returns the output (aliasing ws.acts[last]). Storing the hidden
// activations post-ReLU matches the historic forwardCached exactly:
// backprop's ReLU mask of a post-ReLU activation equals the mask of
// its pre-activation (NaN included).
func (n *Net) forwardWS(ws *netWorkspace, x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != n.Sizes[0] {
		panic(fmt.Sprintf("mlp: input width %d, want %d", x.Cols, n.Sizes[0]))
	}
	if x.Rows != ws.rows {
		panic(fmt.Sprintf("mlp: batch %d rows, workspace sized for %d", x.Rows, ws.rows))
	}
	ws.acts[0] = x
	cur := x
	for i, w := range n.Weights {
		z := ws.acts[i+1]
		tensor.MatMulInto(z, cur, w)
		z.AddRowVector(n.Biases[i])
		if i+1 < len(n.Weights) {
			z.ReLUInPlace()
		}
		cur = z
	}
	return cur
}

// grads holds one backward pass's parameter gradients.
type grads struct {
	w []*tensor.Matrix
	b [][]float64
}

// backwardWS computes MSE-loss gradients for the batch last run
// through forwardWS. The returned gradients alias workspace buffers.
// Every accumulation runs in the historic order; the fused ReLU-mask
// step multiplies masked entries by zero (never assigns), so signed
// zeros and NaN propagation match MulInPlace(ReLUMask) bit for bit.
func (n *Net) backwardWS(ws *netWorkspace, target *tensor.Matrix) (float64, grads) {
	batch := float64(target.Rows)
	layers := len(n.Weights)
	pred := ws.acts[layers]
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic(fmt.Sprintf("mlp: target %dx%d vs pred %dx%d", target.Rows, target.Cols, pred.Rows, pred.Cols))
	}
	// dL/dpred for MSE = 2(pred − target)/batch; loss = mean squared
	// error over all entries.
	delta := ws.delta[layers]
	delta.CopyFrom(pred)
	delta.SubInPlace(target)
	var loss float64
	for _, v := range delta.Data {
		loss += v * v
	}
	loss /= batch * float64(target.Cols)
	delta.ScaleInPlace(2 / (batch * float64(target.Cols)))

	for i := layers - 1; i >= 0; i-- {
		// dW = inᵀ·δ and dIn = δ·Wᵀ run through the transpose-fused
		// kernels: per output element the accumulation order matches the
		// historic transpose-then-multiply exactly, without paying for a
		// materialised inᵀ/Wᵀ every mini-batch.
		tensor.MatMulTNInto(ws.gw[i], ws.acts[i], delta)
		delta.ColSumsInto(ws.gb[i])
		if i > 0 {
			// Propagate through the previous ReLU.
			tensor.MatMulNTInto(ws.delta[i], delta, n.Weights[i])
			delta = ws.delta[i]
			dd := delta.Data
			for j, av := range ws.acts[i].Data {
				if !(av > 0) {
					dd[j] *= 0
				}
			}
		}
	}
	return loss, grads{w: ws.gw, b: ws.gb}
}

// Adam is the Adam optimiser state for one Net.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t  int
	mw []*tensor.Matrix
	vw []*tensor.Matrix
	mb [][]float64
	vb [][]float64
}

// NewAdam returns an optimiser with the usual defaults
// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

func (a *Adam) init(n *Net) {
	if a.mw != nil {
		return
	}
	for i := range n.Weights {
		a.mw = append(a.mw, tensor.New(n.Weights[i].Rows, n.Weights[i].Cols))
		a.vw = append(a.vw, tensor.New(n.Weights[i].Rows, n.Weights[i].Cols))
		a.mb = append(a.mb, make([]float64, len(n.Biases[i])))
		a.vb = append(a.vb, make([]float64, len(n.Biases[i])))
	}
}

func (a *Adam) step(n *Net, g grads) {
	a.init(n)
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range n.Weights {
		wd, gd := n.Weights[i].Data, g.w[i].Data
		md, vd := a.mw[i].Data, a.vw[i].Data
		for j := range wd {
			md[j] = a.Beta1*md[j] + (1-a.Beta1)*gd[j]
			vd[j] = a.Beta2*vd[j] + (1-a.Beta2)*gd[j]*gd[j]
			wd[j] -= a.LR * (md[j] / c1) / (math.Sqrt(vd[j]/c2) + a.Eps)
		}
		bb, gb := n.Biases[i], g.b[i]
		mb, vb := a.mb[i], a.vb[i]
		for j := range bb {
			mb[j] = a.Beta1*mb[j] + (1-a.Beta1)*gb[j]
			vb[j] = a.Beta2*vb[j] + (1-a.Beta2)*gb[j]*gb[j]
			bb[j] -= a.LR * (mb[j] / c1) / (math.Sqrt(vb[j]/c2) + a.Eps)
		}
	}
}

// TrainStep runs one forward/backward pass on a batch and applies an
// Adam update. It returns the batch's pre-update MSE loss.
func (n *Net) TrainStep(opt *Adam, x, y *tensor.Matrix) float64 {
	return n.trainStepWS(newNetWorkspace(n, x.Rows), opt, x, y)
}

func (n *Net) trainStepWS(ws *netWorkspace, opt *Adam, x, y *tensor.Matrix) float64 {
	n.forwardWS(ws, x)
	loss, g := n.backwardWS(ws, y)
	opt.step(n, g)
	return loss
}

// Fit trains for epochs over (x, y) in mini-batches of batchSize,
// shuffling sample order with rng each epoch, and returns the final
// epoch's mean loss.
func (n *Net) Fit(rng *rand.Rand, opt *Adam, x, y *tensor.Matrix, epochs, batchSize int) float64 {
	if x.Rows != y.Rows {
		panic(fmt.Sprintf("mlp: %d samples vs %d targets", x.Rows, y.Rows))
	}
	if batchSize < 1 {
		batchSize = x.Rows
	}
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	// At most two batch shapes occur — the full batchSize and one
	// shorter tail — so two workspaces cover the whole run, allocated
	// once here (the tail lazily) and reused every epoch.
	full := newNetWorkspace(n, min(batchSize, x.Rows))
	var tail *netWorkspace
	var last float64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var sum float64
		var batches int
		for s := 0; s < len(idx); s += batchSize {
			e := s + batchSize
			if e > len(idx) {
				e = len(idx)
			}
			ws := full
			if e-s != full.rows {
				if tail == nil {
					tail = newNetWorkspace(n, e-s)
				}
				ws = tail
			}
			for r, id := range idx[s:e] {
				ws.in.SetRow(r, x.Row(id))
				ws.tgt.SetRow(r, y.Row(id))
			}
			sum += n.trainStepWS(ws, opt, ws.in, ws.tgt)
			batches++
		}
		last = sum / float64(batches)
	}
	return last
}

// Predict returns the network output for a single sample.
func (n *Net) Predict(sample []float64) []float64 {
	x := tensor.NewFromRows([][]float64{sample})
	out := n.Forward(x)
	return append([]float64(nil), out.Row(0)...)
}
