package mlp

import (
	"math"
	"math/rand"
	"testing"

	"gopim/internal/tensor"
)

func TestNewShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := New(rng, 10, 256, 1)
	if n.NumLayers() != 2 {
		t.Fatalf("NumLayers = %d, want 2", n.NumLayers())
	}
	if n.Weights[0].Rows != 10 || n.Weights[0].Cols != 256 {
		t.Fatalf("W0 shape %dx%d", n.Weights[0].Rows, n.Weights[0].Cols)
	}
	if n.Weights[1].Rows != 256 || n.Weights[1].Cols != 1 {
		t.Fatalf("W1 shape %dx%d", n.Weights[1].Rows, n.Weights[1].Cols)
	}
	if len(n.Biases[0]) != 256 || len(n.Biases[1]) != 1 {
		t.Fatal("bias shapes wrong")
	}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { New(rng, 10) },
		func() { New(rng, 10, 0) },
		func() { New(rng, -1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestForwardShapeAndInputCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := New(rng, 4, 8, 2)
	x := tensor.NewRandom(rng, 5, 4, 1)
	out := n.Forward(x)
	if out.Rows != 5 || out.Cols != 2 {
		t.Fatalf("output shape %dx%d, want 5x2", out.Rows, out.Cols)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input width")
		}
	}()
	n.Forward(tensor.New(5, 3))
}

// Gradient check: numerical vs analytic gradients on a tiny network.
func TestGradientsMatchNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := New(rng, 3, 4, 2)
	x := tensor.NewRandom(rng, 6, 3, 1)
	y := tensor.NewRandom(rng, 6, 2, 1)

	ws := newNetWorkspace(n, x.Rows)
	n.forwardWS(ws, x)
	_, g := n.backwardWS(ws, y)

	loss := func() float64 {
		pred := n.Forward(x)
		var s float64
		for i, v := range pred.Data {
			d := v - y.Data[i]
			s += d * d
		}
		return s / float64(y.Rows*y.Cols)
	}

	const h = 1e-6
	for li := range n.Weights {
		for j := 0; j < len(n.Weights[li].Data); j += 3 { // sample every 3rd weight
			orig := n.Weights[li].Data[j]
			n.Weights[li].Data[j] = orig + h
			lp := loss()
			n.Weights[li].Data[j] = orig - h
			lm := loss()
			n.Weights[li].Data[j] = orig
			num := (lp - lm) / (2 * h)
			ana := g.w[li].Data[j]
			if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d weight %d: numeric %v vs analytic %v", li, j, num, ana)
			}
		}
		for j := range n.Biases[li] {
			orig := n.Biases[li][j]
			n.Biases[li][j] = orig + h
			lp := loss()
			n.Biases[li][j] = orig - h
			lm := loss()
			n.Biases[li][j] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-g.b[li][j]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d bias %d: numeric %v vs analytic %v", li, j, num, g.b[li][j])
			}
		}
	}
}

// The network must be able to fit a simple nonlinear function.
func TestFitLearnsQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const samples = 256
	x := tensor.New(samples, 1)
	y := tensor.New(samples, 1)
	for i := 0; i < samples; i++ {
		v := rng.Float64()*2 - 1
		x.Set(i, 0, v)
		y.Set(i, 0, v*v)
	}
	n := New(rng, 1, 32, 1)
	opt := NewAdam(0.01)
	loss := n.Fit(rng, opt, x, y, 300, 32)
	if loss > 0.002 {
		t.Fatalf("final loss = %v, want < 0.002 (should fit x²)", loss)
	}
	// Spot-check a prediction.
	if got := n.Predict([]float64{0.5})[0]; math.Abs(got-0.25) > 0.1 {
		t.Fatalf("Predict(0.5) = %v, want ≈0.25", got)
	}
}

func TestTrainStepReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := New(rng, 2, 16, 1)
	opt := NewAdam(0.01)
	x := tensor.NewRandom(rng, 64, 2, 1)
	y := tensor.New(64, 1)
	for i := 0; i < 64; i++ {
		y.Set(i, 0, x.At(i, 0)+2*x.At(i, 1))
	}
	first := n.TrainStep(opt, x, y)
	var last float64
	for i := 0; i < 200; i++ {
		last = n.TrainStep(opt, x, y)
	}
	if last >= first/4 {
		t.Fatalf("loss %v → %v: training not converging", first, last)
	}
}

func TestFitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := New(rng, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched sample counts")
		}
	}()
	n.Fit(rng, NewAdam(0.01), tensor.New(3, 2), tensor.New(4, 1), 1, 2)
}

func TestDeterministicWithSeed(t *testing.T) {
	build := func() *Net {
		rng := rand.New(rand.NewSource(7))
		n := New(rng, 2, 8, 1)
		x := tensor.NewRandom(rng, 32, 2, 1)
		y := tensor.NewRandom(rng, 32, 1, 1)
		n.Fit(rng, NewAdam(0.005), x, y, 10, 8)
		return n
	}
	a, b := build(), build()
	for i := range a.Weights {
		if !a.Weights[i].Equal(b.Weights[i], 0) {
			t.Fatal("training must be deterministic for a fixed seed")
		}
	}
}
