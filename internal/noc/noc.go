// Package noc models the on-chip interconnect of paper §IV-A: "ReRAM
// tiles are connected through adders and pipeline bus to support the
// inter-tile data Aggregation and transmission". An aggregation stage
// whose mapped feature matrix spans many tiles must merge partial sums
// across those tiles through an adder tree and move operands over the
// shared pipeline bus; both costs grow with the stage's tile span.
//
// The model is analytic: a binary adder-tree depth term plus a
// bus-serialisation term, per micro-batch. It is exposed as an
// optional refinement (see stage.Config users) and as a standalone
// analysis in the NoC ablation bench — the headline calibration of
// DESIGN.md §2 subsumes average interconnect cost in its MVM constants.
package noc

import (
	"fmt"
	"math"
)

// Params describes the interconnect.
type Params struct {
	// HopLatencyNS is one adder/bus pipeline hop.
	HopLatencyNS float64
	// BusBytesPerNS is the pipeline bus bandwidth.
	BusBytesPerNS float64
	// LinkWidthBytes is the flit size of one transfer.
	LinkWidthBytes int
}

// Default returns an interconnect consistent with the Table II chip:
// a 2 GHz pipeline bus moving 32 bytes per cycle with 0.5 ns hops.
func Default() Params {
	return Params{HopLatencyNS: 0.5, BusBytesPerNS: 64, LinkWidthBytes: 32}
}

// Validate reports a descriptive error for nonsensical parameters.
func (p Params) Validate() error {
	switch {
	case p.HopLatencyNS <= 0:
		return fmt.Errorf("noc: hop latency %v must be positive", p.HopLatencyNS)
	case p.BusBytesPerNS <= 0:
		return fmt.Errorf("noc: bus bandwidth %v must be positive", p.BusBytesPerNS)
	case p.LinkWidthBytes <= 0:
		return fmt.Errorf("noc: link width %d must be positive", p.LinkWidthBytes)
	}
	return nil
}

// AdderTreeDepth returns the depth of the binary reduction tree
// merging partial sums from `tiles` tiles (0 for a single tile).
func AdderTreeDepth(tiles int) int {
	if tiles <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(tiles))))
}

// ReduceLatencyNS is the time to merge one output vector's partial
// sums across tiles: tree depth × hop latency, plus streaming the
// vector through the bus once.
func (p Params) ReduceLatencyNS(tiles, vectorBytes int) float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if vectorBytes < 0 {
		panic(fmt.Sprintf("noc: negative vector size %d", vectorBytes))
	}
	depth := float64(AdderTreeDepth(tiles))
	stream := float64(vectorBytes) / p.BusBytesPerNS
	return depth*p.HopLatencyNS + stream
}

// AggregationOverheadNS estimates the per-micro-batch interconnect
// cost of an aggregation stage: each of the micro-batch's b output
// vectors (outDim values × 2 bytes) reduces across the tiles the
// mapped feature matrix spans.
func (p Params) AggregationOverheadNS(b, outDim, tiles int) float64 {
	if b < 0 || outDim < 0 {
		panic(fmt.Sprintf("noc: negative workload b=%d out=%d", b, outDim))
	}
	vectorBytes := outDim * 2
	return float64(b) * p.ReduceLatencyNS(tiles, vectorBytes)
}

// TilesForCrossbars converts a crossbar footprint to a tile span.
func TilesForCrossbars(crossbars, crossbarsPerTile int) int {
	if crossbarsPerTile < 1 {
		panic(fmt.Sprintf("noc: crossbars per tile %d must be positive", crossbarsPerTile))
	}
	if crossbars <= 0 {
		return 0
	}
	return (crossbars + crossbarsPerTile - 1) / crossbarsPerTile
}
