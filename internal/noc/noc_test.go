package noc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Params{
		{HopLatencyNS: 0, BusBytesPerNS: 1, LinkWidthBytes: 1},
		{HopLatencyNS: 1, BusBytesPerNS: 0, LinkWidthBytes: 1},
		{HopLatencyNS: 1, BusBytesPerNS: 1, LinkWidthBytes: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestAdderTreeDepth(t *testing.T) {
	cases := []struct{ tiles, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {17, 5}, {1024, 10},
	}
	for _, c := range cases {
		if got := AdderTreeDepth(c.tiles); got != c.want {
			t.Fatalf("AdderTreeDepth(%d) = %d, want %d", c.tiles, got, c.want)
		}
	}
}

func TestReduceLatency(t *testing.T) {
	p := Default()
	// Single tile: streaming only.
	got := p.ReduceLatencyNS(1, 512)
	if math.Abs(got-512/p.BusBytesPerNS) > 1e-12 {
		t.Fatalf("single-tile reduce = %v", got)
	}
	// 16 tiles: 4 hops + streaming.
	got = p.ReduceLatencyNS(16, 512)
	want := 4*p.HopLatencyNS + 512/p.BusBytesPerNS
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("16-tile reduce = %v, want %v", got, want)
	}
}

// Property: the overhead grows monotonically with each input.
func TestOverheadMonotone(t *testing.T) {
	p := Default()
	f := func(b, out, tiles uint8) bool {
		bb, oo, tt := int(b)+1, int(out)+1, int(tiles)+1
		base := p.AggregationOverheadNS(bb, oo, tt)
		return p.AggregationOverheadNS(bb+1, oo, tt) >= base &&
			p.AggregationOverheadNS(bb, oo+1, tt) >= base &&
			p.AggregationOverheadNS(bb, oo, tt+1) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAggregationOverheadScale(t *testing.T) {
	p := Default()
	// ddi AG: 534 crossbars ≈ 3 tiles, 64 outputs of 256 values.
	tiles := TilesForCrossbars(534, 256)
	if tiles != 3 {
		t.Fatalf("tiles = %d, want 3", tiles)
	}
	got := p.AggregationOverheadNS(64, 256, tiles)
	// Must stay far below the AG stage time (~1.9 ms): the headline
	// calibration treats interconnect as second-order.
	if got <= 0 || got > 100_000 {
		t.Fatalf("overhead = %v ns, want positive and ≪ stage time", got)
	}
}

func TestTilesForCrossbars(t *testing.T) {
	if TilesForCrossbars(0, 256) != 0 {
		t.Fatal("no crossbars → no tiles")
	}
	if TilesForCrossbars(257, 256) != 2 {
		t.Fatal("ceil division expected")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TilesForCrossbars(1, 0)
}

func TestPanicsOnBadInput(t *testing.T) {
	p := Default()
	for _, f := range []func(){
		func() { p.ReduceLatencyNS(1, -1) },
		func() { p.AggregationOverheadNS(-1, 1, 1) },
		func() { p.AggregationOverheadNS(1, -1, 1) },
		func() { (Params{}).ReduceLatencyNS(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
