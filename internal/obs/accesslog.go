package obs

// Structured JSON access logging for the serve daemon, built on
// log/slog. One line per completed request, correlated to traces by
// trace_id — the join key the inspector and the Chrome trace share.

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"time"
)

// syncWriter serialises concurrent writes so interleaved handlers never
// shear a JSON line.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// AccessLogger emits one structured JSON line per completed request.
// A nil *AccessLogger is valid and logs nothing.
type AccessLogger struct {
	l *slog.Logger
}

// NewAccessLogger returns an access logger writing JSON lines to w,
// safe for concurrent use.
func NewAccessLogger(w io.Writer) *AccessLogger {
	return &AccessLogger{l: slog.New(slog.NewJSONHandler(&syncWriter{w: w}, nil))}
}

// Logger exposes the underlying slog.Logger, so the process warn path
// can be routed through the same sink (see SetLogger).
func (a *AccessLogger) Logger() *slog.Logger {
	if a == nil {
		return nil
	}
	return a.l
}

// LogRequest writes rec as one access-log line.
func (a *AccessLogger) LogRequest(rec RequestRecord) {
	if a == nil {
		return
	}
	attrs := make([]slog.Attr, 0, 12)
	attrs = append(attrs,
		slog.String("trace_id", rec.TraceID),
		slog.String("span_id", rec.SpanID),
		slog.String("method", rec.Method),
		slog.String("path", rec.Path),
		slog.Int("status", rec.Status),
		slog.Float64("dur_ms", float64(rec.WallNS)/1e6),
		slog.Int64("bytes", rec.BodyBytes),
	)
	if rec.Label != "" {
		attrs = append(attrs, slog.String("label", rec.Label))
	}
	if rec.Cache != "" {
		attrs = append(attrs, slog.String("cache", rec.Cache))
	}
	if rec.Error != "" {
		attrs = append(attrs, slog.String("error", rec.Error))
	}
	if rec.Sampled {
		attrs = append(attrs, slog.Bool("sampled", true))
	}
	a.l.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
}

// LogShed records a request the daemon turned away (429/503) with the
// reason — these matter most under load, exactly when per-request
// inspection is hardest.
func (a *AccessLogger) LogShed(rec RequestRecord, reason string) {
	if a == nil {
		return
	}
	a.l.LogAttrs(context.Background(), slog.LevelWarn, "request_shed",
		slog.String("trace_id", rec.TraceID),
		slog.String("path", rec.Path),
		slog.Int("status", rec.Status),
		slog.String("reason", reason),
		slog.Float64("dur_ms", float64(rec.WallNS)/1e6))
}

// uptimeStart anchors process uptime reporting for structured logs.
var uptimeStart = time.Now()

// Uptime returns the time elapsed since the obs package was
// initialised — effectively process uptime.
func Uptime() time.Duration { return time.Since(uptimeStart) }
