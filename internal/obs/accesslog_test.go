package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func decodeLogLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("access log line is not JSON: %v\n%s", err, sc.Text())
		}
		out = append(out, m)
	}
	return out
}

func TestAccessLoggerRequestLine(t *testing.T) {
	var buf bytes.Buffer
	al := NewAccessLogger(&buf)
	al.LogRequest(RequestRecord{
		TraceID:   "4bf92f3577b34da6a3ce929d0e0e4736",
		SpanID:    "00f067aa0ba902b7",
		Method:    "POST",
		Path:      "/v1/plan",
		Label:     "plan:ddi/GoPIM",
		Status:    200,
		WallNS:    2_500_000,
		BodyBytes: 321,
		Cache:     "miss",
		Sampled:   true,
	})

	lines := decodeLogLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("%d lines, want 1", len(lines))
	}
	m := lines[0]
	if m["msg"] != "request" || m["level"] != "INFO" {
		t.Fatalf("line = %v", m)
	}
	if m["trace_id"] != "4bf92f3577b34da6a3ce929d0e0e4736" ||
		m["span_id"] != "00f067aa0ba902b7" ||
		m["method"] != "POST" || m["path"] != "/v1/plan" ||
		m["label"] != "plan:ddi/GoPIM" || m["cache"] != "miss" ||
		m["sampled"] != true {
		t.Fatalf("line fields = %v", m)
	}
	if m["status"].(float64) != 200 || m["bytes"].(float64) != 321 {
		t.Fatalf("status/bytes = %v/%v", m["status"], m["bytes"])
	}
	if m["dur_ms"].(float64) != 2.5 {
		t.Fatalf("dur_ms = %v", m["dur_ms"])
	}
}

func TestAccessLoggerShedLine(t *testing.T) {
	var buf bytes.Buffer
	al := NewAccessLogger(&buf)
	al.LogShed(RequestRecord{
		TraceID: "abcdefabcdefabcdefabcdefabcdefab",
		Path:    "/v1/plan",
		Status:  429,
	}, "queue full")

	lines := decodeLogLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("%d lines, want 1", len(lines))
	}
	m := lines[0]
	if m["msg"] != "request_shed" || m["level"] != "WARN" || m["reason"] != "queue full" {
		t.Fatalf("shed line = %v", m)
	}
}

func TestAccessLoggerNilSafe(t *testing.T) {
	var al *AccessLogger
	al.LogRequest(RequestRecord{})
	al.LogShed(RequestRecord{}, "x")
	if al.Logger() != nil {
		t.Fatal("nil logger must expose a nil slog.Logger")
	}
}

func TestAccessLoggerConcurrentLinesStayWhole(t *testing.T) {
	var buf bytes.Buffer
	al := NewAccessLogger(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				al.LogRequest(RequestRecord{Method: "GET", Path: "/healthz", Status: 200})
			}
		}()
	}
	wg.Wait()
	lines := decodeLogLines(t, &buf)
	if len(lines) != 400 {
		t.Fatalf("%d intact JSON lines, want 400", len(lines))
	}
}

func TestWarnfRoutesThroughInstalledLogger(t *testing.T) {
	var buf bytes.Buffer
	al := NewAccessLogger(&buf)
	restore := SetLogger(al.Logger())

	// Nothing may reach the plain stderr path while a logger is set.
	var stderrBuf bytes.Buffer
	restoreWarn := SetWarnOutput(&stderrBuf)
	defer restoreWarn()

	Warnf("serve", "disk %s is %d%% full", "/data", 93)

	lines := decodeLogLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("%d structured warn lines, want 1", len(lines))
	}
	m := lines[0]
	if m["level"] != "WARN" || m["component"] != "serve" || m["msg"] != "disk /data is 93% full" {
		t.Fatalf("warn line = %v", m)
	}
	if stderrBuf.Len() != 0 {
		t.Fatalf("warn leaked to the plain path: %q", stderrBuf.String())
	}

	// After restore, warnings take the plain path again.
	restore()
	Warnf("serve", "back to stderr")
	if !strings.Contains(stderrBuf.String(), "back to stderr") {
		t.Fatal("restore did not reinstate the plain warn path")
	}
	if len(decodeLogLines(t, &buf)) != 1 {
		t.Fatal("restored path still routed through slog")
	}
}
