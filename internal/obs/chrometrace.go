package obs

import (
	"encoding/json"
	"io"
)

// Trace-event pids: wall-clock spans and simulated schedules render as
// two separate processes in the viewer, keeping the two clocks apart.
const (
	wallPid = 1
	// SimPid is the process id used for simulated-time events (a
	// trace.Schedule converted to trace events).
	SimPid = 2
)

// TraceEvent is one Chrome trace-event object, loadable by
// chrome://tracing and Perfetto (ui.perfetto.dev). Timestamps and
// durations are in microseconds, per the format.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	// ID pairs flow-event starts ("s") with their finishes ("f");
	// Bp "e" binds a flow finish to the enclosing slice rather than the
	// next one. Both omit when empty, so every pre-flow-event trace
	// keeps its exact bytes.
	ID string `json:"id,omitempty"`
	Bp string `json:"bp,omitempty"`
	// Args values are strings for metadata events and numbers for
	// counter ("C") samples — the viewer charts numeric args. The any
	// type covers both; encoding/json still sorts the keys, so bytes
	// stay deterministic.
	Args map[string]any `json:"args,omitempty"`
}

// processNameEvent returns the metadata event naming a trace process.
func processNameEvent(pid int, name string) TraceEvent {
	return TraceEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name},
	}
}

// ThreadNameEvent returns the metadata event naming one lane (tid).
func ThreadNameEvent(pid, tid int, name string) TraceEvent {
	return TraceEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	}
}

// SimProcessNameEvent returns the metadata event naming the
// simulated-time process.
func SimProcessNameEvent() TraceEvent {
	return processNameEvent(SimPid, "gopim (simulated time)")
}

// WriteTraceJSON writes events in the Chrome trace-event JSON object
// format. encoding/json sorts the Args maps, so output bytes are a
// deterministic function of the events.
func WriteTraceJSON(w io.Writer, events []TraceEvent) error {
	out := struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ns"}
	if out.TraceEvents == nil {
		out.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
