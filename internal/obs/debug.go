package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// debugReg holds the registry the process-wide "gopim_metrics" expvar
// reads. expvar.Publish panics on duplicate names, so the name is
// published exactly once — but the closure dereferences this pointer
// on every read, so a later ServeDebug call with a different registry
// swaps what /debug/vars reports instead of silently serving the first
// registry forever (the pre-fix behaviour).
var (
	debugReg    atomic.Pointer[Registry]
	publishOnce sync.Once
)

// ServerTimeouts bundles the slow-client hardening knobs every GoPIM
// HTTP server is constructed with. WriteTimeout is deliberately absent:
// pprof's /debug/pprof/profile?seconds=N streams for N seconds, and the
// serve daemon bounds request lifetime with per-request deadlines
// instead of a connection write timeout.
type ServerTimeouts struct {
	// ReadHeader bounds how long a connection may take to deliver its
	// request headers — the slowloris guard.
	ReadHeader time.Duration
	// Read bounds the whole request read, body included.
	Read time.Duration
	// Idle bounds keep-alive connections between requests.
	Idle time.Duration
}

// DefaultServerTimeouts returns the hardening defaults shared by the
// debug server and `gopim serve`.
func DefaultServerTimeouts() ServerTimeouts {
	return ServerTimeouts{
		ReadHeader: 10 * time.Second,
		Read:       time.Minute,
		Idle:       2 * time.Minute,
	}
}

// NewHTTPServer returns an http.Server for handler with the given
// timeouts applied — the one construction path for every HTTP listener
// in the process, so no server is ever started without slow-client
// protection again.
func NewHTTPServer(handler http.Handler, t ServerTimeouts) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		IdleTimeout:       t.Idle,
	}
}

// DebugServer is a running debug HTTP endpoint. Shut it down with
// Shutdown (graceful: in-flight handlers drain) or Close (abrupt).
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when Serve returns
}

// Addr returns the bound listen address.
func (s *DebugServer) Addr() net.Addr { return s.ln.Addr() }

// Shutdown stops accepting connections and waits for in-flight
// handlers to finish, up to ctx's deadline.
func (s *DebugServer) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
	}
	return err
}

// Close abruptly closes the listener and all active connections.
func (s *DebugServer) Close() error { return s.srv.Close() }

// DebugMux returns the debug endpoint set served for reg:
//
//	/debug/pprof/*   net/http/pprof profiles
//	/debug/vars      expvar, including the registry under "gopim_metrics"
//	/debug/metrics   the registry's text snapshot (all clocks)
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
	})
	return mux
}

// ServeDebug starts a debug HTTP server on addr (see DebugMux for the
// endpoint set) with the default hardening timeouts. The listener is
// bound synchronously so an unusable address fails here, before any
// experiment runs; the server itself runs in the background until
// Shutdown or Close. The process-wide "gopim_metrics" expvar is
// re-pointed at reg, so the most recent ServeDebug call's registry is
// the one /debug/vars reports.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	return ServeDebugTimeouts(addr, reg, DefaultServerTimeouts())
}

// ServeDebugTimeouts is ServeDebug with explicit hardening timeouts.
func ServeDebugTimeouts(addr string, reg *Registry, t ServerTimeouts) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	debugReg.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("gopim_metrics", expvar.Func(func() any {
			if r := debugReg.Load(); r != nil {
				return r.ExpvarMap()
			}
			return map[string]map[string]string{}
		}))
	})
	s := &DebugServer{
		ln:   ln,
		srv:  NewHTTPServer(DebugMux(reg), t),
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}
