package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-wide expvar name (expvar.Publish
// panics on duplicates).
var publishOnce sync.Once

// ServeDebug starts an HTTP server on addr exposing:
//
//	/debug/pprof/*   net/http/pprof profiles
//	/debug/vars      expvar, including the registry under "gopim_metrics"
//	/debug/metrics   the registry's text snapshot (all clocks)
//
// The listener is bound synchronously so an unusable address fails
// here, before any experiment runs; the server itself runs in the
// background until the listener is closed.
func ServeDebug(addr string, reg *Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishOnce.Do(func() {
		expvar.Publish("gopim_metrics", expvar.Func(func() any { return reg.ExpvarMap() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
	})
	go func() { _ = http.Serve(ln, mux) }()
	return ln, nil
}
