package obs

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b)
}

// TestServeDebugRegistrySwap is the regression test for the stale
// expvar closure: before the fix, the first ServeDebug call's registry
// was captured into the process-wide "gopim_metrics" expvar forever,
// so a second call with a different registry silently served the first
// registry's metrics at /debug/vars.
func TestServeDebugRegistrySwap(t *testing.T) {
	reg1 := NewRegistry()
	reg1.NewCounter("debugswap.first", Sim, "first registry's marker").Add(11)
	s1, err := ServeDebug("127.0.0.1:0", reg1)
	if err != nil {
		t.Fatal(err)
	}
	body := getBody(t, fmt.Sprintf("http://%s/debug/vars", s1.Addr()))
	if !strings.Contains(body, "debugswap.first") {
		t.Fatalf("first server's /debug/vars missing its own registry:\n%s", body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown first server: %v", err)
	}

	reg2 := NewRegistry()
	reg2.NewCounter("debugswap.second", Sim, "second registry's marker").Add(22)
	s2, err := ServeDebug("127.0.0.1:0", reg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	body = getBody(t, fmt.Sprintf("http://%s/debug/vars", s2.Addr()))
	if !strings.Contains(body, "debugswap.second") {
		t.Fatalf("/debug/vars still serves the first registry (stale expvar closure):\n%s", body)
	}
	if strings.Contains(body, "debugswap.first") {
		t.Fatalf("/debug/vars mixes the retired registry into the current one:\n%s", body)
	}
	// /debug/metrics routes through the handler's own registry and must
	// agree.
	body = getBody(t, fmt.Sprintf("http://%s/debug/metrics", s2.Addr()))
	if !strings.Contains(body, "debugswap.second") {
		t.Fatalf("/debug/metrics missing the second registry:\n%s", body)
	}
}

// TestServeDebugSlowlorisTimeout is the regression test for the
// missing ReadHeaderTimeout: before the fix the debug server ran bare
// http.Serve, so a client that dialled and never finished its headers
// held its connection (and a handler goroutine's worth of state) open
// forever. With the hardened server the connection is torn down once
// ReadHeaderTimeout expires.
func TestServeDebugSlowlorisTimeout(t *testing.T) {
	timeouts := ServerTimeouts{
		ReadHeader: 150 * time.Millisecond,
		Read:       300 * time.Millisecond,
		Idle:       time.Second,
	}
	s, err := ServeDebugTimeouts("127.0.0.1:0", NewRegistry(), timeouts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request line, then silence: a slowloris client.
	if _, err := conn.Write([]byte("GET /debug/vars HT")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		// The server may first write an error response; the connection
		// must still close promptly afterwards.
		if _, err = io.ReadAll(conn); err != nil {
			t.Fatalf("read after partial response: %v", err)
		}
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server left the half-open connection alive past ReadHeaderTimeout")
	}
}

// TestServeDebugShutdownDrains checks the graceful path: Shutdown
// waits for in-flight handlers, the serve goroutine exits, and new
// connections are refused afterwards.
func TestServeDebugShutdownDrains(t *testing.T) {
	s, err := ServeDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()
	// Exercise a request so the server has seen traffic.
	getBody(t, fmt.Sprintf("http://%s/debug/metrics", addr))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case <-s.done:
	default:
		t.Fatal("serve goroutine still running after Shutdown returned")
	}
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener still accepting connections after Shutdown")
	}
}
