package obs

import (
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"
)

// ExperimentRecord is one experiment's entry in a run manifest.
type ExperimentRecord struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
	Err    string  `json:"error,omitempty"`
}

// Manifest captures everything needed to reproduce one CLI run: the
// exact invocation, the knobs that influence output bytes (seed,
// workers, format, fast), the toolchain, and per-experiment wall
// durations. It is written alongside experiment output so a
// regenerated experiments_full_output.txt always names its provenance.
type Manifest struct {
	Tool        string   `json:"tool"`
	Args        []string `json:"args"`
	Seed        int64    `json:"seed"`
	Workers     int      `json:"workers"`
	Format      string   `json:"format"`
	Fast        bool     `json:"fast"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	GitDescribe string   `json:"git_describe,omitempty"`
	// Fault-injection knobs (-fault-rate/-fault-seed/-fault-verify-max),
	// recorded only when a fault model is active: a default run's
	// manifest must stay byte-stable across the fault feature's
	// introduction, so all three omit when empty.
	FaultRate      float64 `json:"fault_rate,omitempty"`
	FaultSeed      int64   `json:"fault_seed,omitempty"`
	FaultVerifyMax int     `json:"fault_verify_max,omitempty"`
	// Critical-path headline figures (`gopim explain`), recorded only
	// when an explain analysis ran this invocation — same omitempty
	// byte-stability contract as the fault keys.
	ExplainBottleneck string  `json:"explain_bottleneck,omitempty"`
	ExplainCritShare  float64 `json:"explain_crit_share,omitempty"`
	ExplainEq6GapFrac float64 `json:"explain_eq6_gap_frac,omitempty"`
	// SpMM autotuner provenance: the forced strategy (-spmm, only when
	// not auto) and the per-graph choices the run's training aggregations
	// resolved to. SimMemo records the -sim-memo knob only when the memo
	// layer was disabled. All omit when empty — the same byte-stability
	// contract as the fault keys above.
	SpMMStrategy string            `json:"spmm_strategy,omitempty"`
	SpMMChoices  map[string]string `json:"spmm_choices,omitempty"`
	SimMemo      string            `json:"sim_memo,omitempty"`
	// Streaming-churn knobs (-churn-rate/-churn-seed/-refresh-policy),
	// recorded only when churn is enabled — same omitempty byte-stability
	// contract as the fault keys.
	ChurnRate     float64 `json:"churn_rate,omitempty"`
	ChurnSeed     int64   `json:"churn_seed,omitempty"`
	RefreshPolicy string  `json:"refresh_policy,omitempty"`
	StartedAt         time.Time `json:"started_at"`
	WallMS            float64   `json:"wall_ms"`
	// HeapAllocBytes and GCCount snapshot runtime.MemStats when Finish
	// runs: live heap bytes and cumulative GC cycles for the process.
	// Wall-side provenance, like WallMS — never part of Sim diffs.
	HeapAllocBytes uint64             `json:"heap_alloc_bytes"`
	GCCount        uint32             `json:"gc_count"`
	Experiments    []ExperimentRecord `json:"experiments,omitempty"`

	start time.Time
	mu    sync.Mutex
}

// NewManifest starts a manifest for the given command-line arguments,
// filling in toolchain and git provenance.
func NewManifest(args []string) *Manifest {
	now := time.Now()
	return &Manifest{
		Tool:        "gopim",
		Args:        append([]string(nil), args...),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GitDescribe: gitDescribe(),
		StartedAt:   now.UTC(),
		start:       now,
	}
}

// Record appends one experiment outcome. Safe for concurrent use: the
// experiment fan-out reports completions from worker goroutines.
func (m *Manifest) Record(id string, wall time.Duration, err error) {
	rec := ExperimentRecord{ID: id, WallMS: float64(wall) / 1e6}
	if err != nil {
		rec.Err = err.Error()
	}
	m.mu.Lock()
	m.Experiments = append(m.Experiments, rec)
	m.mu.Unlock()
}

// Finish stamps the total wall time and samples the runtime's memory
// statistics (heap in use, GC cycles) for the provenance record.
func (m *Manifest) Finish() {
	m.WallMS = float64(time.Since(m.start)) / 1e6
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.HeapAllocBytes = ms.HeapAlloc
	m.GCCount = ms.NumGC
}

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gitDescribe returns `git describe --tags --always --dirty` for the
// working directory, or "" when git or a repository is unavailable.
// Best-effort provenance only — never an error.
func gitDescribe() string {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := exec.CommandContext(ctx, "git", "describe", "--tags", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
