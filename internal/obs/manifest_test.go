package obs

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest([]string{"-fast", "all"})
	m.Seed = 7
	m.Workers = 4
	m.Format = "text"
	m.Fast = true
	m.Record("fig13", 1500*time.Millisecond, nil)
	m.Record("tab5", 2*time.Millisecond, errors.New("boom"))
	m.Finish()

	path := filepath.Join(t.TempDir(), "run.manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("manifest JSON invalid: %v", err)
	}
	if got.Tool != "gopim" || got.Seed != 7 || got.Workers != 4 || !got.Fast {
		t.Fatalf("round-trip mismatch: tool=%q seed=%d workers=%d fast=%v",
			got.Tool, got.Seed, got.Workers, got.Fast)
	}
	if got.GoVersion != runtime.Version() {
		t.Fatalf("go version = %q", got.GoVersion)
	}
	if len(got.Experiments) != 2 || got.Experiments[0].ID != "fig13" {
		t.Fatalf("experiments = %+v", got.Experiments)
	}
	if got.Experiments[1].Err != "boom" {
		t.Fatalf("error not recorded: %+v", got.Experiments[1])
	}
	if got.Experiments[0].WallMS < 1499 {
		t.Fatalf("wall ms = %v", got.Experiments[0].WallMS)
	}
}
