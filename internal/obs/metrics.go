package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric is one named instrument in a Registry.
type Metric interface {
	Name() string
	Clock() Clock
	Kind() string
	Help() string
	// Fields returns the metric's current values as ordered key/value
	// pairs; values are rendered with deterministic formatting.
	Fields() []Field
	// Reset zeroes the metric's accumulated values.
	Reset()
}

// Field is one rendered value of a metric snapshot.
type Field struct {
	Key   string
	Value string
}

// formatFloat renders floats with the shortest round-trip
// representation, so equal values always render to equal bytes.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ---------------------------------------------------------------- counter

// Counter is a monotonically increasing integer. Increments are single
// uncontended atomic adds — safe on hot paths and, being commutative,
// deterministic under any scheduling.
type Counter struct {
	name  string
	clock Clock
	help  string
	v     atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n ≥ 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) Name() string { return c.name }
func (c *Counter) Clock() Clock { return c.clock }
func (c *Counter) Kind() string { return "counter" }
func (c *Counter) Help() string { return c.help }
func (c *Counter) Reset()       { c.v.Store(0) }
func (c *Counter) Fields() []Field {
	return []Field{{"count", strconv.FormatInt(c.v.Load(), 10)}}
}

// ------------------------------------------------------------------ gauge

// Gauge is a last-write-wins float64. Because "last write" depends on
// scheduling, gauges are Wall-clock only; use a Distribution for
// deterministic value tracking.
type Gauge struct {
	name string
	help string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) Name() string { return g.name }
func (g *Gauge) Clock() Clock { return Wall }
func (g *Gauge) Kind() string { return "gauge" }
func (g *Gauge) Help() string { return g.help }
func (g *Gauge) Reset()       { g.bits.Store(0) }
func (g *Gauge) Fields() []Field {
	return []Field{{"value", formatFloat(g.Value())}}
}

// ----------------------------------------------------------- distribution

// Distribution tracks count, min and max of observed float64 values —
// the order-independent reductions, so a Sim-clock distribution
// snapshot is deterministic under concurrent observation. A running
// floating-point sum is kept too, but because FP addition is not
// associative it is rendered only for Wall-clock distributions.
type Distribution struct {
	name    string
	clock   Clock
	help    string
	count   atomic.Int64
	minBits atomic.Uint64 // float64 bits; +Inf when empty
	maxBits atomic.Uint64 // float64 bits; -Inf when empty
	sumBits atomic.Uint64 // float64 bits (Wall rendering only)
}

func (d *Distribution) init() {
	d.minBits.Store(math.Float64bits(math.Inf(1)))
	d.maxBits.Store(math.Float64bits(math.Inf(-1)))
	d.sumBits.Store(0)
}

// Observe records one value.
func (d *Distribution) Observe(v float64) {
	d.count.Add(1)
	for {
		old := d.minBits.Load()
		if math.Float64frombits(old) <= v || d.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := d.maxBits.Load()
		if math.Float64frombits(old) >= v || d.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := d.sumBits.Load()
		if d.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (d *Distribution) Count() int64 { return d.count.Load() }

// Min returns the smallest observed value (+Inf when empty).
func (d *Distribution) Min() float64 { return math.Float64frombits(d.minBits.Load()) }

// Max returns the largest observed value (-Inf when empty).
func (d *Distribution) Max() float64 { return math.Float64frombits(d.maxBits.Load()) }

// Sum returns the (order-sensitive) running sum.
func (d *Distribution) Sum() float64 { return math.Float64frombits(d.sumBits.Load()) }

func (d *Distribution) Name() string { return d.name }
func (d *Distribution) Clock() Clock { return d.clock }
func (d *Distribution) Kind() string { return "distribution" }
func (d *Distribution) Help() string { return d.help }
func (d *Distribution) Reset()       { d.count.Store(0); d.init() }
func (d *Distribution) Fields() []Field {
	n := d.count.Load()
	fields := []Field{{"count", strconv.FormatInt(n, 10)}}
	if n > 0 {
		fields = append(fields,
			Field{"min", formatFloat(d.Min())},
			Field{"max", formatFloat(d.Max())})
		if d.clock == Wall {
			fields = append(fields, Field{"sum", formatFloat(d.Sum())})
		}
	}
	return fields
}

// -------------------------------------------------------------- histogram

// histogramBuckets is the bucket count: bucket k holds values v with
// bit length k, i.e. v in [2^(k-1), 2^k), with bucket 0 for v ≤ 0.
const histogramBuckets = 64

// Histogram counts non-negative integer observations into power-of-two
// buckets. All state is integer counts, so histograms are deterministic
// under any scheduling and admitted on the Sim clock.
type Histogram struct {
	name    string
	clock   Clock
	help    string
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histogramBuckets]atomic.Int64
}

// Observe records one value (negative values clamp to bucket 0).
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
		h.buckets[bits.Len64(uint64(v))].Add(1)
		return
	}
	h.buckets[0].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the integer sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (q in [0, 1]) from the power-of-two
// buckets: the bucket holding the target rank is found by cumulative
// count and the value interpolated linearly inside its [2^(k-1), 2^k)
// span. Resolution is therefore the bucket width — good enough to tell
// a 10µs p99 from a 10ms one, which is what bench diffs compare — and
// the estimate is a pure function of the (deterministic) bucket
// counts, so Sim-clock quantiles diff exactly across runs.
//
// Edge cases are all defined, never NaN: an empty histogram reports 0
// for every q; a single-observation histogram reports that observation
// exactly (the integer sum IS the value, so no bucket interpolation is
// needed); q outside [0, 1] — including NaN — clamps to the nearest
// endpoint (NaN clamps to 0).
func (h *Histogram) Quantile(q float64) float64 {
	total := float64(h.count.Load())
	if total == 0 {
		return 0
	}
	if total == 1 {
		// One observation: its value is the sum (0 for v ≤ 0, which
		// lands in bucket 0 and adds nothing to the sum).
		return float64(h.sum.Load())
	}
	if !(q > 0) { // catches q < 0 and NaN
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * (total - 1)
	var cum float64
	for i := 0; i < histogramBuckets; i++ {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if rank < cum+n {
			if i == 0 {
				return 0 // bucket 0 holds v ≤ 0
			}
			lo := math.Ldexp(1, i-1)
			hi := math.Ldexp(1, i)
			frac := (rank - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	// Unreachable while counts and buckets agree: rank < total and the
	// bucket counts sum to total.
	return math.Ldexp(1, histogramBuckets-1)
}

func (h *Histogram) Name() string { return h.name }
func (h *Histogram) Clock() Clock { return h.clock }
func (h *Histogram) Kind() string { return "histogram" }
func (h *Histogram) Help() string { return h.help }
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}
func (h *Histogram) Fields() []Field {
	fields := []Field{
		{"count", strconv.FormatInt(h.count.Load(), 10)},
		{"sum", strconv.FormatInt(h.sum.Load(), 10)},
	}
	if h.count.Load() > 0 {
		// Tail-latency estimates, so bench diffs compare p95/p99 and not
		// just the extremes.
		fields = append(fields,
			Field{"p50", formatFloat(h.Quantile(0.50))},
			Field{"p95", formatFloat(h.Quantile(0.95))},
			Field{"p99", formatFloat(h.Quantile(0.99))})
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			// Bucket label is the exclusive upper bound 2^i.
			fields = append(fields, Field{"lt_2e" + strconv.Itoa(i), strconv.FormatInt(n, 10)})
		}
	}
	return fields
}

// ------------------------------------------------------------------ timer

// Timer is a Wall-clock histogram of durations in nanoseconds.
type Timer struct {
	Histogram
}

// ObserveSince records the time elapsed since start; a zero start (as
// returned by NowIfEnabled when recording is off) is ignored.
func (t *Timer) ObserveSince(start time.Time) {
	if start.IsZero() {
		return
	}
	t.Observe(int64(time.Since(start)))
}

// ObserveDuration records one duration.
func (t *Timer) ObserveDuration(d time.Duration) { t.Observe(int64(d)) }

func (t *Timer) Kind() string { return "timer" }

// --------------------------------------------------------------- registry

// Registry holds named metrics. Registration is get-or-create: asking
// twice for the same name and kind returns the same instrument, which
// is what dynamically labelled series need; asking with a different
// kind or clock panics (a programming error, like a duplicate flag).
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]Metric
	// resetHooks run after Reset zeroes the metrics. Subsystems whose
	// Sim counters depend on process-global cache state (the simmemo
	// layer) register one so a registry reset restores their cold-start
	// state too — otherwise the first pass after a reset would count
	// cache hits the counters can no longer explain.
	hookMu     sync.Mutex
	resetHooks []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]Metric{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every package-level
// constructor registers into.
func Default() *Registry { return defaultRegistry }

// lookup returns the existing metric under name after checking kind
// and clock agreement, or nil if the name is free.
func (r *Registry) lookup(name, kind string, clock Clock) Metric {
	m, ok := r.metrics[name]
	if !ok {
		return nil
	}
	if m.Kind() != kind || m.Clock() != clock {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s/%v (was %s/%v)",
			name, kind, clock, m.Kind(), m.Clock()))
	}
	return m
}

func register[M Metric](r *Registry, name, kind string, clock Clock, make func() M) M {
	r.mu.RLock()
	m := r.lookup(name, kind, clock)
	r.mu.RUnlock()
	if m != nil {
		return m.(M)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, kind, clock); m != nil {
		return m.(M)
	}
	nm := make()
	r.metrics[name] = nm
	return nm
}

// NewCounter returns the counter registered under name, creating it if
// needed.
func (r *Registry) NewCounter(name string, clock Clock, help string) *Counter {
	return register(r, name, "counter", clock, func() *Counter {
		return &Counter{name: name, clock: clock, help: help}
	})
}

// NewGauge returns the (always Wall-clock) gauge registered under name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return register(r, name, "gauge", Wall, func() *Gauge {
		return &Gauge{name: name, help: help}
	})
}

// NewDistribution returns the distribution registered under name.
func (r *Registry) NewDistribution(name string, clock Clock, help string) *Distribution {
	return register(r, name, "distribution", clock, func() *Distribution {
		d := &Distribution{name: name, clock: clock, help: help}
		d.init()
		return d
	})
}

// NewHistogram returns the histogram registered under name.
func (r *Registry) NewHistogram(name string, clock Clock, help string) *Histogram {
	return register(r, name, "histogram", clock, func() *Histogram {
		return &Histogram{name: name, clock: clock, help: help}
	})
}

// NewTimer returns the (always Wall-clock) timer registered under name.
func (r *Registry) NewTimer(name, help string) *Timer {
	return register(r, name, "timer", Wall, func() *Timer {
		return &Timer{Histogram{name: name, clock: Wall, help: help}}
	})
}

// Package-level constructors against the default registry.

// NewCounter registers a counter in the default registry.
func NewCounter(name string, clock Clock, help string) *Counter {
	return defaultRegistry.NewCounter(name, clock, help)
}

// NewGauge registers a Wall-clock gauge in the default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// NewDistribution registers a distribution in the default registry.
func NewDistribution(name string, clock Clock, help string) *Distribution {
	return defaultRegistry.NewDistribution(name, clock, help)
}

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name string, clock Clock, help string) *Histogram {
	return defaultRegistry.NewHistogram(name, clock, help)
}

// NewTimer registers a Wall-clock timer in the default registry.
func NewTimer(name, help string) *Timer { return defaultRegistry.NewTimer(name, help) }

// Reset zeroes every metric's accumulated values and then runs the
// registered reset hooks. Registration stays; only values reset. Tests
// and the bench harness use this between determinism runs.
func (r *Registry) Reset() {
	r.mu.RLock()
	for _, m := range r.metrics {
		m.Reset()
	}
	r.mu.RUnlock()
	r.hookMu.Lock()
	hooks := append([]func(){}, r.resetHooks...)
	r.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// OnReset registers fn to run after every Reset of this registry.
func (r *Registry) OnReset(fn func()) {
	r.hookMu.Lock()
	r.resetHooks = append(r.resetHooks, fn)
	r.hookMu.Unlock()
}

// OnReset registers fn against the default registry.
func OnReset(fn func()) { defaultRegistry.OnReset(fn) }

// MetricSnapshot is one metric's rendered state.
type MetricSnapshot struct {
	Name   string
	Clock  Clock
	Kind   string
	Fields []Field
}

// Snapshot returns the current state of every metric on the given
// clocks (no clocks = all), sorted by name. The rendering of a Sim
// snapshot is deterministic: sorted names, deterministic field order,
// shortest-round-trip value formatting.
func (r *Registry) Snapshot(clocks ...Clock) []MetricSnapshot {
	keep := func(c Clock) bool {
		if len(clocks) == 0 {
			return true
		}
		for _, k := range clocks {
			if k == c {
				return true
			}
		}
		return false
	}
	r.mu.RLock()
	out := make([]MetricSnapshot, 0, len(r.metrics))
	for _, m := range r.metrics {
		if !keep(m.Clock()) {
			continue
		}
		out = append(out, MetricSnapshot{
			Name: m.Name(), Clock: m.Clock(), Kind: m.Kind(), Fields: m.Fields(),
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText renders a snapshot as aligned "name kind field=value …"
// lines, one metric per line.
func (r *Registry) WriteText(w io.Writer, clocks ...Clock) error {
	var b strings.Builder
	for _, s := range r.Snapshot(clocks...) {
		fmt.Fprintf(&b, "%s %s", s.Name, s.Kind)
		for _, f := range s.Fields {
			fmt.Fprintf(&b, " %s=%s", f.Key, f.Value)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders a snapshot as "name,clock,kind,field,value" rows
// with a header line.
func (r *Registry) WriteCSV(w io.Writer, clocks ...Clock) error {
	var b strings.Builder
	b.WriteString("name,clock,kind,field,value\n")
	for _, s := range r.Snapshot(clocks...) {
		for _, f := range s.Fields {
			fmt.Fprintf(&b, "%s,%s,%s,%s,%s\n", s.Name, s.Clock, s.Kind, f.Key, f.Value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders a snapshot as a JSON array of metric objects.
// encoding/json sorts map keys, so output is deterministic.
func (r *Registry) WriteJSON(w io.Writer, clocks ...Clock) error {
	type jsonMetric struct {
		Name   string            `json:"name"`
		Clock  string            `json:"clock"`
		Kind   string            `json:"kind"`
		Values map[string]string `json:"values"`
	}
	snaps := r.Snapshot(clocks...)
	out := make([]jsonMetric, 0, len(snaps))
	for _, s := range snaps {
		values := make(map[string]string, len(s.Fields))
		for _, f := range s.Fields {
			values[f.Key] = f.Value
		}
		out = append(out, jsonMetric{Name: s.Name, Clock: s.Clock.String(), Kind: s.Kind, Values: values})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ExpvarMap returns the full snapshot as nested maps, the shape the
// debug server publishes through expvar.
func (r *Registry) ExpvarMap() map[string]map[string]string {
	out := map[string]map[string]string{}
	for _, s := range r.Snapshot() {
		values := map[string]string{"clock": s.Clock.String(), "kind": s.Kind}
		for _, f := range s.Fields {
			values[f.Key] = f.Value
		}
		out[s.Name] = values
	}
	return out
}
