package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeFields(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("a.count", Sim, "test")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.NewGauge("a.gauge", "test")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	if g.Clock() != Wall {
		t.Fatal("gauges must be wall-clock")
	}
}

func TestDistributionFields(t *testing.T) {
	r := NewRegistry()
	d := r.NewDistribution("d", Sim, "")
	if got := d.Fields(); len(got) != 1 || got[0].Value != "0" {
		t.Fatalf("empty distribution fields = %v", got)
	}
	d.Observe(3)
	d.Observe(-1)
	d.Observe(7)
	if d.Count() != 3 || d.Min() != -1 || d.Max() != 7 {
		t.Fatalf("count/min/max = %d/%v/%v", d.Count(), d.Min(), d.Max())
	}
	// Sim distributions omit the order-sensitive sum.
	for _, f := range d.Fields() {
		if f.Key == "sum" {
			t.Fatal("sim distribution must not render a float sum")
		}
	}
	dw := r.NewDistribution("dw", Wall, "")
	dw.Observe(2)
	found := false
	for _, f := range dw.Fields() {
		if f.Key == "sum" {
			found = true
		}
	}
	if !found {
		t.Fatal("wall distribution should render its sum")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", Sim, "")
	for _, v := range []int64{0, 1, 1, 3, 1024, -5} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1+1+3+1024 {
		t.Fatalf("sum = %d", h.Sum())
	}
	fields := map[string]string{}
	for _, f := range h.Fields() {
		fields[f.Key] = f.Value
	}
	// 0 and -5 → bucket 0; 1,1 → bucket 1; 3 → bucket 2; 1024 → bucket 11.
	for k, want := range map[string]string{"lt_2e0": "2", "lt_2e1": "2", "lt_2e2": "1", "lt_2e11": "1"} {
		if fields[k] != want {
			t.Fatalf("bucket %s = %q, want %q (all: %v)", k, fields[k], want, fields)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q", Sim, "")
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 100 observations of 100 (bucket 7, [64, 128)) and one outlier at
	// 100000 (bucket 17): p50 must land in the body bucket, p99+ may
	// reach the outlier's.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	h.Observe(100000)
	p50 := h.Quantile(0.50)
	if p50 < 64 || p50 >= 128 {
		t.Errorf("p50 = %v, want within [64, 128)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	if p100 := h.Quantile(1); p100 < 65536 || p100 >= 131072 {
		t.Errorf("max quantile = %v, want within the outlier's [65536, 131072) bucket", p100)
	}
	// All-zero observations sit in bucket 0, which reads as 0.
	z := r.NewHistogram("z", Sim, "")
	z.Observe(0)
	z.Observe(-3)
	if got := z.Quantile(0.99); got != 0 {
		t.Errorf("non-positive histogram p99 = %v", got)
	}
	// Quantiles render into the snapshot once observations exist.
	fields := map[string]string{}
	for _, f := range h.Fields() {
		fields[f.Key] = f.Value
	}
	for _, k := range []string{"p50", "p95", "p99"} {
		if fields[k] == "" {
			t.Errorf("histogram fields missing %s: %v", k, fields)
		}
	}
}

// Quantile estimates must be a pure function of the bucket counts:
// concurrent observation in any order yields the same values.
func TestHistogramQuantileDeterministicUnderConcurrency(t *testing.T) {
	render := func() []Field {
		r := NewRegistry()
		h := r.NewHistogram("h", Sim, "")
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					h.Observe(int64((w*500 + i) % 1000))
				}
			}(w)
		}
		wg.Wait()
		return h.Fields()
	}
	want := render()
	for i := 0; i < 3; i++ {
		got := render()
		if len(got) != len(want) {
			t.Fatalf("field count drifted: %v vs %v", got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("field %d drifted: %v vs %v", j, got[j], want[j])
			}
		}
	}
}

func TestRegistryGetOrCreateAndMismatchPanics(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x", Sim, "")
	b := r.NewCounter("x", Sim, "")
	if a != b {
		t.Fatal("same name+kind must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.NewGauge("x", "")
}

func TestSnapshotSortedAndFiltered(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b.sim", Sim, "").Inc()
	r.NewCounter("a.sim", Sim, "").Inc()
	r.NewTimer("c.wall", "").ObserveDuration(5)
	sim := r.Snapshot(Sim)
	if len(sim) != 2 || sim[0].Name != "a.sim" || sim[1].Name != "b.sim" {
		t.Fatalf("sim snapshot = %+v", sim)
	}
	all := r.Snapshot()
	if len(all) != 3 {
		t.Fatalf("full snapshot has %d metrics", len(all))
	}
}

func TestConcurrentObservationDeterministicSimSnapshot(t *testing.T) {
	render := func() string {
		r := NewRegistry()
		c := r.NewCounter("c", Sim, "")
		d := r.NewDistribution("d", Sim, "")
		h := r.NewHistogram("h", Sim, "")
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					c.Add(int64(i % 3))
					d.Observe(float64(i%17) * 1.5)
					h.Observe(int64(i % 100))
				}
			}(w)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := r.WriteText(&buf, Sim); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want := render()
	for i := 0; i < 4; i++ {
		if got := render(); got != want {
			t.Fatalf("sim snapshot differs across schedulings:\n%s\nvs\n%s", got, want)
		}
	}
}

func TestWriteFormats(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("m.count", Sim, "").Add(3)
	r.NewDistribution("m.dist", Sim, "").Observe(1.25)

	var text bytes.Buffer
	if err := r.WriteText(&text, Sim); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "m.count counter count=3") {
		t.Fatalf("text:\n%s", text.String())
	}

	var csv bytes.Buffer
	if err := r.WriteCSV(&csv, Sim); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "m.count,sim,counter,count,3") {
		t.Fatalf("csv:\n%s", csv.String())
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js, Sim); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("json output invalid: %v\n%s", err, js.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("json has %d metrics", len(decoded))
	}
}

func TestResetZeroesValues(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", Sim, "")
	d := r.NewDistribution("d", Sim, "")
	c.Add(7)
	d.Observe(9)
	r.Reset()
	if c.Value() != 0 || d.Count() != 0 {
		t.Fatalf("reset left c=%d d=%d", c.Value(), d.Count())
	}
	d.Observe(2)
	if d.Min() != 2 || d.Max() != 2 {
		t.Fatalf("post-reset min/max = %v/%v", d.Min(), d.Max())
	}
}

func TestLabelSuffix(t *testing.T) {
	got := LabelSuffix("dataset", "ddi", "model", "GoPIM")
	if got != "{dataset=ddi,model=GoPIM}" {
		t.Fatalf("LabelSuffix = %q", got)
	}
}

func TestWarnfWritesAndCounts(t *testing.T) {
	var buf bytes.Buffer
	restore := SetWarnOutput(&buf)
	defer restore()
	before := warnings.Value()
	Warnf("testcomp", "value %d ignored", 42)
	if warnings.Value() != before+1 {
		t.Fatal("warning not counted")
	}
	if got := buf.String(); got != "gopim: warn [testcomp]: value 42 ignored\n" {
		t.Fatalf("warn output = %q", got)
	}
}
