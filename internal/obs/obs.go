// Package obs is GoPIM's observability layer: a low-overhead metrics
// registry, wall-clock span tracing with Chrome trace-event export,
// run manifests, and an opt-in pprof/expvar debug server.
//
// # Two clocks
//
// The simulator deals in two kinds of time, and obs keeps them
// rigorously apart:
//
//   - Sim-clock metrics describe the simulated machine (makespans,
//     scheduled micro-batches, rows rewritten, cache hits). They are
//     pure functions of the workload and seed, so for a fixed seed a
//     Sim snapshot must be byte-identical at any worker count. The
//     registry enforces the property structurally: Sim metrics may
//     only accumulate through commutative integer operations (counter
//     adds, histogram bucket increments) or order-independent
//     reductions (distribution count/min/max). Order-sensitive
//     aggregates — floating-point sums, last-write gauges — are
//     confined to the Wall clock.
//
//   - Wall-clock metrics and spans describe the host process (helper
//     goroutines spawned, epoch wall times, per-experiment durations).
//     They are inherently scheduling-dependent and are excluded from
//     deterministic snapshots; renderers set them apart explicitly.
//
// # Overhead contract
//
// With observability off (the default), instrumented hot paths pay at
// most a handful of uncontended atomic adds and no allocations:
// pre-registered metrics are package-level pointers, Enabled() is one
// atomic load, StartSpan returns a nil span when no tracer is
// installed, and NowIfEnabled avoids the clock syscall entirely.
// Dynamically labelled metrics (per model/dataset series) are only
// recorded when SetEnabled(true) has been called — the CLI does so
// when -metrics or -pprof is given.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates dynamically labelled metrics and optional wall-clock
// timestamps. Pre-registered counters stay live regardless (they are
// cheaper than the branch that would guard them).
var enabled atomic.Bool

// SetEnabled turns labelled-metric recording and optional wall-clock
// timing on or off process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether full metric recording is on.
func Enabled() bool { return enabled.Load() }

// NowIfEnabled returns time.Now() when metric recording is enabled and
// the zero time otherwise. Pair with Timer.ObserveSince, which ignores
// zero start times, to keep clock reads off disabled hot paths.
func NowIfEnabled() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Clock classifies a metric's time base.
type Clock uint8

const (
	// Sim metrics are deterministic functions of workload and seed.
	Sim Clock = iota
	// Wall metrics depend on host scheduling and elapsed real time.
	Wall
)

func (c Clock) String() string {
	if c == Sim {
		return "sim"
	}
	return "wall"
}

// warn is the structured warning path: one line to a process-wide
// writer plus a registry count, so fallbacks that used to be bare
// Fprintf calls become visible in snapshots and expvar. When a
// structured logger is installed (SetLogger — the serve daemon's
// access-log sink), warnings route through it as slog records instead,
// correlated with access-log lines by sharing the sink.
var (
	warnMu  sync.Mutex
	warnOut io.Writer = os.Stderr
	slogger atomic.Pointer[slog.Logger]
)

var warnings = NewCounter("obs.warnings", Wall,
	"structured warnings emitted via obs.Warnf")

// SetLogger routes Warnf through l as structured slog records (nil
// restores the plain stderr path) and returns a function undoing the
// change.
func SetLogger(l *slog.Logger) (restore func()) {
	prev := slogger.Swap(l)
	return func() { slogger.Store(prev) }
}

// Warnf emits a structured warning attributed to a component
// ("parallel", "cli", …) and counts it in the default registry.
func Warnf(component, format string, args ...any) {
	warnings.Inc()
	if l := slogger.Load(); l != nil {
		l.Warn(fmt.Sprintf(format, args...), "component", component)
		return
	}
	warnMu.Lock()
	defer warnMu.Unlock()
	fmt.Fprintf(warnOut, "gopim: warn [%s]: %s\n", component, fmt.Sprintf(format, args...))
}

// SetWarnOutput redirects Warnf (tests, log capture) and returns a
// function restoring the previous writer.
func SetWarnOutput(w io.Writer) (restore func()) {
	warnMu.Lock()
	prev := warnOut
	warnOut = w
	warnMu.Unlock()
	return func() {
		warnMu.Lock()
		warnOut = prev
		warnMu.Unlock()
	}
}

// LabelSuffix renders key/value pairs as a canonical metric-name
// suffix: {k1=v1,k2=v2}. Callers pass keys in sorted order so equal
// label sets always produce equal names.
func LabelSuffix(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: LabelSuffix needs key/value pairs")
	}
	out := "{"
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			out += ","
		}
		out += kv[i] + "=" + kv[i+1]
	}
	return out + "}"
}
