package obs

// Prometheus/OpenMetrics text exposition for the registry. The native
// snapshot formats (WriteText/WriteCSV/WriteJSON) exist for exact
// cross-run diffing of the Sim clock; this renderer exists for real
// scrapers, so it follows Prometheus conventions instead: families are
// prefixed gopim_, dots become underscores, the {k=v} label suffix a
// LabelSuffix-named series carries is re-rendered as proper Prometheus
// labels, counters gain the _total suffix, and histograms expand into
// cumulative _bucket/_sum/_count series over the power-of-two bounds
// the obs.Histogram already maintains.

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// PromPrefix is the namespace every exposed family carries.
const PromPrefix = "gopim_"

// Metrics returns the registered metrics sorted by name.
func (r *Registry) Metrics() []Metric {
	r.mu.RLock()
	out := make([]Metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// BucketCounts returns the histogram's current per-bucket counts;
// bucket k holds values in [2^(k-1), 2^k), bucket 0 holds v ≤ 0.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, histogramBuckets)
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// promSanitize maps a metric-name fragment onto the Prometheus name
// alphabet [a-zA-Z0-9_:], replacing everything else with '_'.
func promSanitize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeLabel escapes a label value per the exposition format.
func promEscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promEscapeHelp escapes HELP text per the exposition format.
func promEscapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promSplit decomposes a registry metric name into its Prometheus
// family name and rendered label pairs: "accel.makespan_ns{dataset=ddi,
// model=GoPIM}" → "gopim_accel_makespan_ns", `dataset="ddi",model="GoPIM"`.
func promSplit(name string) (family, labels string) {
	base := name
	var suffix string
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, suffix = name[:i], name[i:]
	}
	family = PromPrefix + promSanitize(base)
	if suffix == "" {
		return family, ""
	}
	suffix = strings.TrimPrefix(suffix, "{")
	suffix = strings.TrimSuffix(suffix, "}")
	var parts []string
	for _, kv := range strings.Split(suffix, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			// Not LabelSuffix-shaped; keep the information as one label.
			k, v = "label", kv
		}
		parts = append(parts, promSanitize(k)+`="`+promEscapeLabel(v)+`"`)
	}
	return family, strings.Join(parts, ",")
}

// promSample renders one sample line: name{labels} value.
func promSample(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// promJoinLabels merges two rendered label fragments.
func promJoinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// promFamily is one exposition family: a TYPE/HELP header plus the
// sample lines of every series sharing the family name.
type promFamily struct {
	name  string
	typ   string
	help  string
	lines strings.Builder
}

// WritePrometheus renders the registry in Prometheus text exposition
// format 0.0.4 (also valid OpenMetrics when the caller appends the
// "# EOF" terminator). With no clocks given, both clocks are exposed —
// a scraper wants the full picture; exact Sim-only diffing stays on
// the native formats.
//
// Kind mapping: counters → counter families suffixed _total; gauges →
// gauges; histograms and timers → histogram families with cumulative
// le="2^k" buckets (the upper bound of the [2^(k-1), 2^k) power-of-two
// bucket; le="0" holds v ≤ 0); distributions → companion gauge
// families _count/_min/_max (+_sum, which is order-sensitive and so
// only meaningful on the Wall clock, where all distributions that
// render it live).
func (r *Registry) WritePrometheus(w io.Writer, clocks ...Clock) error {
	keep := func(c Clock) bool {
		if len(clocks) == 0 {
			return true
		}
		for _, k := range clocks {
			if k == c {
				return true
			}
		}
		return false
	}

	fams := map[string]*promFamily{}
	family := func(name, typ, help string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, typ: typ, help: help}
			fams[name] = f
		}
		return f
	}

	for _, m := range r.Metrics() {
		if !keep(m.Clock()) {
			continue
		}
		base, labels := promSplit(m.Name())
		labels = promJoinLabels(labels, `clock="`+m.Clock().String()+`"`)
		switch m := m.(type) {
		case *Counter:
			f := family(base+"_total", "counter", m.Help())
			promSample(&f.lines, f.name, labels, strconv.FormatInt(m.Value(), 10))
		case *Gauge:
			f := family(base, "gauge", m.Help())
			promSample(&f.lines, f.name, labels, promFloat(m.Value()))
		case *Distribution:
			n := m.Count()
			f := family(base+"_count", "gauge", m.Help()+" (observations)")
			promSample(&f.lines, f.name, labels, strconv.FormatInt(n, 10))
			if n > 0 {
				f = family(base+"_min", "gauge", m.Help()+" (min)")
				promSample(&f.lines, f.name, labels, promFloat(m.Min()))
				f = family(base+"_max", "gauge", m.Help()+" (max)")
				promSample(&f.lines, f.name, labels, promFloat(m.Max()))
				if m.Clock() == Wall {
					f = family(base+"_sum", "gauge", m.Help()+" (sum)")
					promSample(&f.lines, f.name, labels, promFloat(m.Sum()))
				}
			}
		case *Timer:
			promHistogram(family(base, "histogram", m.Help()), labels, &m.Histogram)
		case *Histogram:
			promHistogram(family(base, "histogram", m.Help()), labels, m)
		}
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, promEscapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		b.WriteString(f.lines.String())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promHistogram expands one histogram series into cumulative buckets.
// Bucket k of the obs.Histogram holds integer values in [2^(k-1), 2^k),
// so le="2^k" is its (exclusive, but integer-tight up to 2^53) upper
// bound; only occupied buckets are emitted, plus the mandatory +Inf.
func promHistogram(f *promFamily, labels string, h *Histogram) {
	var cum int64
	for i, n := range h.BucketCounts() {
		if n == 0 {
			continue
		}
		cum += n
		le := "0"
		if i > 0 {
			le = promFloat(math.Ldexp(1, i))
		}
		promSample(&f.lines, f.name+"_bucket", promJoinLabels(labels, `le="`+le+`"`), strconv.FormatInt(cum, 10))
	}
	promSample(&f.lines, f.name+"_bucket", promJoinLabels(labels, `le="+Inf"`), strconv.FormatInt(h.Count(), 10))
	promSample(&f.lines, f.name+"_sum", labels, strconv.FormatInt(h.Sum(), 10))
	promSample(&f.lines, f.name+"_count", labels, strconv.FormatInt(h.Count(), 10))
}

// promFloat renders a float in exposition syntax (+Inf/-Inf/NaN
// spellings included).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteRuntimePrometheus emits the Go runtime's health gauges — heap,
// GC, goroutines — as exposition families alongside the registry's.
// Scrape-time collection keeps them out of the registry (they would be
// Wall-clock gauges polluting every snapshot diff).
func WriteRuntimePrometheus(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var b strings.Builder
	emit := func(name, typ, help, value string) {
		fmt.Fprintf(&b, "# HELP %s%s %s\n# TYPE %s%s %s\n%s%s %s\n",
			PromPrefix, name, help, PromPrefix, name, typ, PromPrefix, name, value)
	}
	emit("go_goroutines", "gauge", "goroutines currently running",
		strconv.Itoa(runtime.NumGoroutine()))
	emit("go_heap_alloc_bytes", "gauge", "bytes of allocated heap objects",
		strconv.FormatUint(ms.HeapAlloc, 10))
	emit("go_heap_sys_bytes", "gauge", "bytes of heap obtained from the OS",
		strconv.FormatUint(ms.HeapSys, 10))
	emit("go_heap_objects", "gauge", "number of allocated heap objects",
		strconv.FormatUint(ms.HeapObjects, 10))
	emit("go_next_gc_bytes", "gauge", "heap size target of the next GC cycle",
		strconv.FormatUint(ms.NextGC, 10))
	emit("go_gc_cycles_total", "counter", "completed GC cycles",
		strconv.FormatUint(uint64(ms.NumGC), 10))
	emit("go_gc_pause_seconds_total", "counter", "cumulative stop-the-world GC pause",
		promFloat(float64(ms.PauseTotalNs)/1e9))
	_, err := io.WriteString(w, b.String())
	return err
}
