package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromSplit(t *testing.T) {
	cases := []struct {
		in, family, labels string
	}{
		{"serve.requests", "gopim_serve_requests", ""},
		{"http.requests{code=429}", "gopim_http_requests", `code="429"`},
		{
			"accel.makespan_ns{dataset=ddi,model=GoPIM}",
			"gopim_accel_makespan_ns",
			`dataset="ddi",model="GoPIM"`,
		},
		{"pipeline.micro-batches", "gopim_pipeline_micro_batches", ""},
	}
	for _, c := range cases {
		fam, labels := promSplit(c.in)
		if fam != c.family || labels != c.labels {
			t.Errorf("promSplit(%q) = %q, %q; want %q, %q", c.in, fam, labels, c.family, c.labels)
		}
	}
}

func TestWritePrometheusMapping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("serve.requests", Sim, "planning API requests received")
	c.Add(7)
	g := r.NewGauge("http.in_flight", "in flight")
	g.Set(3)
	h := r.NewHistogram("queue.depth", Sim, "queue depth samples")
	h.Observe(1) // bucket 1, le 2
	h.Observe(3) // bucket 2, le 4
	h.Observe(3)
	d := r.NewDistribution("epoch.wall_ns", Wall, "epoch wall time")
	d.Observe(10)
	d.Observe(30)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE gopim_serve_requests_total counter",
		`gopim_serve_requests_total{clock="sim"} 7`,
		"# TYPE gopim_http_in_flight gauge",
		`gopim_http_in_flight{clock="wall"} 3`,
		"# TYPE gopim_queue_depth histogram",
		`gopim_queue_depth_bucket{clock="sim",le="2"} 1`,
		`gopim_queue_depth_bucket{clock="sim",le="4"} 3`,
		`gopim_queue_depth_bucket{clock="sim",le="+Inf"} 3`,
		`gopim_queue_depth_sum{clock="sim"} 7`,
		`gopim_queue_depth_count{clock="sim"} 3`,
		`gopim_epoch_wall_ns_count{clock="wall"} 2`,
		`gopim_epoch_wall_ns_min{clock="wall"} 10`,
		`gopim_epoch_wall_ns_max{clock="wall"} 30`,
		`gopim_epoch_wall_ns_sum{clock="wall"} 40`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if errs := LintPrometheusText(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("exposition does not lint clean: %v", errs)
	}
}

func TestWritePrometheusClockFilter(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a.sim", Sim, "").Inc()
	r.NewCounter("a.wall", Wall, "").Inc()

	var b bytes.Buffer
	if err := r.WritePrometheus(&b, Wall); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "gopim_a_sim") {
		t.Fatal("clock filter leaked a Sim metric")
	}
	if !strings.Contains(b.String(), "gopim_a_wall_total") {
		t.Fatal("clock filter dropped the Wall metric")
	}
}

func TestWritePrometheusLabelledSeriesShareFamily(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("http.requests"+LabelSuffix("code", "2xx"), Wall, "responses").Add(5)
	r.NewCounter("http.requests"+LabelSuffix("code", "429"), Wall, "responses").Add(2)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE gopim_http_requests_total counter") != 1 {
		t.Fatalf("labelled series must share one TYPE header:\n%s", out)
	}
	if !strings.Contains(out, `gopim_http_requests_total{code="2xx",clock="wall"} 5`) ||
		!strings.Contains(out, `gopim_http_requests_total{code="429",clock="wall"} 2`) {
		t.Fatalf("labelled samples missing:\n%s", out)
	}
	if errs := LintPrometheusText(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("labelled exposition does not lint clean: %v", errs)
	}
}

func TestWriteRuntimePrometheus(t *testing.T) {
	var b bytes.Buffer
	if err := WriteRuntimePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"gopim_go_goroutines",
		"gopim_go_heap_alloc_bytes",
		"gopim_go_gc_cycles_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime exposition missing %q", want)
		}
	}
	if errs := LintPrometheusText(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("runtime exposition does not lint clean: %v", errs)
	}
}

// TestWritePrometheusDefaultRegistryLints renders whatever the default
// registry has accumulated by this point in the test run — the real
// metric names the daemon exposes — and lints it, so any future metric
// whose name breaks the exposition grammar fails here.
func TestWritePrometheusDefaultRegistryLints(t *testing.T) {
	var b bytes.Buffer
	if err := Default().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := WriteRuntimePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("# EOF\n")
	if errs := LintPrometheusText(&b); len(errs) != 0 {
		t.Fatalf("default registry exposition does not lint clean: %v", errs)
	}
}
