package obs

// A small OpenMetrics/Prometheus text-format linter. CI scrapes the
// live daemon's /metrics exposition and validates it with this helper
// instead of shelling out to an external promtool binary; the
// exposition writer's own tests lint everything they render.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// promSeriesSample is one parsed sample line.
type promSeriesSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// promLinter accumulates state across the exposition stream.
type promLinter struct {
	errs        []error
	types       map[string]string // family → declared type
	helps       map[string]bool
	seenSamples map[string]bool // family → sample emitted (TYPE must precede)
	series      map[string]int  // name+sorted-labels → first line (duplicates)
	samples     []promSeriesSample
	eofLine     int
}

func (l *promLinter) errorf(line int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func promValidName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func promValidLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// LintPrometheusText validates a Prometheus 0.0.4 / OpenMetrics text
// exposition stream and returns every violation found (nil means
// clean). Checks: line syntax, metric/label name alphabets, label
// escaping, float-parseable values, TYPE declarations (known type,
// declared once, before any sample of the family), counter families
// carrying the _total suffix, duplicate series, histogram coherence
// (le on every bucket, cumulative monotonicity, a +Inf bucket equal to
// _count), and nothing after a "# EOF" terminator.
func LintPrometheusText(r io.Reader) []error {
	l := &promLinter{
		types:       map[string]string{},
		helps:       map[string]bool{},
		seenSamples: map[string]bool{},
		series:      map[string]int{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if l.eofLine > 0 && strings.TrimSpace(text) != "" {
			l.errorf(line, "content after # EOF (line %d)", l.eofLine)
			continue
		}
		switch {
		case strings.TrimSpace(text) == "":
			continue
		case strings.HasPrefix(text, "#"):
			l.lintComment(line, text)
		default:
			l.lintSample(line, text)
		}
	}
	if err := sc.Err(); err != nil {
		l.errs = append(l.errs, fmt.Errorf("read exposition: %w", err))
	}
	l.checkHistograms()
	l.checkCounters()
	return l.errs
}

func (l *promLinter) lintComment(line int, text string) {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 2 {
		return // bare comment
	}
	switch fields[1] {
	case "EOF":
		l.eofLine = line
	case "TYPE":
		if len(fields) < 4 {
			l.errorf(line, "malformed TYPE line %q", text)
			return
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !promValidName(name) {
			l.errorf(line, "invalid family name %q in TYPE", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped", "info", "stateset", "gaugehistogram", "unknown":
		default:
			l.errorf(line, "unknown metric type %q", typ)
		}
		if _, dup := l.types[name]; dup {
			l.errorf(line, "duplicate TYPE for family %q", name)
		}
		if l.seenSamples[name] {
			l.errorf(line, "TYPE for %q after its samples", name)
		}
		l.types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			l.errorf(line, "malformed HELP line %q", text)
			return
		}
		name := fields[2]
		if !promValidName(name) {
			l.errorf(line, "invalid family name %q in HELP", name)
		}
		if l.helps[name] {
			l.errorf(line, "duplicate HELP for family %q", name)
		}
		l.helps[name] = true
	}
}

// familyOf maps a sample name onto its declared family: histogram
// sub-series (_bucket/_sum/_count) attribute to the histogram family.
func (l *promLinter) familyOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if t, ok := l.types[base]; ok && (t == "histogram" || t == "summary" || t == "gaugehistogram") {
				return base
			}
		}
	}
	return name
}

func (l *promLinter) lintSample(line int, text string) {
	rest := text
	nameEnd := strings.IndexAny(rest, "{ \t")
	if nameEnd < 0 {
		l.errorf(line, "sample %q has no value", text)
		return
	}
	name := rest[:nameEnd]
	if !promValidName(name) {
		l.errorf(line, "invalid metric name %q", name)
		return
	}
	rest = rest[nameEnd:]

	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		var ok bool
		rest, ok = l.lintLabels(line, rest, labels)
		if !ok {
			return
		}
	}
	valueFields := strings.Fields(rest)
	if len(valueFields) == 0 || len(valueFields) > 2 {
		l.errorf(line, "sample %q needs 'value [timestamp]' after the name", text)
		return
	}
	value, err := parsePromFloat(valueFields[0])
	if err != nil {
		l.errorf(line, "value %q is not a float", valueFields[0])
		return
	}
	if len(valueFields) == 2 {
		if _, err := strconv.ParseFloat(valueFields[1], 64); err != nil {
			l.errorf(line, "timestamp %q is not numeric", valueFields[1])
		}
	}

	fam := l.familyOf(name)
	l.seenSamples[fam] = true
	key := seriesKey(name, labels)
	if first, dup := l.series[key]; dup {
		l.errorf(line, "duplicate series %s (first at line %d)", key, first)
	} else {
		l.series[key] = line
	}
	l.samples = append(l.samples, promSeriesSample{name: name, labels: labels, value: value, line: line})
}

// lintLabels parses a {k="v",...} block, filling labels, and returns
// the remainder of the line.
func (l *promLinter) lintLabels(line int, rest string, labels map[string]string) (string, bool) {
	rest = rest[1:] // consume '{'
	for {
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, "}") {
			return rest[1:], true
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			l.errorf(line, "label block missing '='")
			return "", false
		}
		lname := strings.TrimSpace(rest[:eq])
		if !promValidLabelName(lname) {
			l.errorf(line, "invalid label name %q", lname)
			return "", false
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			l.errorf(line, "label %q value is not quoted", lname)
			return "", false
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				l.errorf(line, "unterminated label value for %q", lname)
				return "", false
			}
			c := rest[i]
			if c == '"' {
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					l.errorf(line, "dangling escape in label %q", lname)
					return "", false
				}
				esc := rest[i+1]
				switch esc {
				case '\\', '"':
					val.WriteByte(esc)
				case 'n':
					val.WriteByte('\n')
				default:
					l.errorf(line, "invalid escape \\%c in label %q", esc, lname)
					return "", false
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		rest = rest[i+1:]
		if _, dup := labels[lname]; dup {
			l.errorf(line, "duplicate label %q in one sample", lname)
		}
		labels[lname] = val.String()
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return rest[1:], true
		}
		l.errorf(line, "expected ',' or '}' in label block, got %q", rest)
		return "", false
	}
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func seriesKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// checkCounters enforces the OpenMetrics counter naming convention:
// every family declared counter exposes samples suffixed _total.
func (l *promLinter) checkCounters() {
	for fam, typ := range l.types {
		if typ != "counter" {
			continue
		}
		if !strings.HasSuffix(fam, "_total") {
			l.errs = append(l.errs, fmt.Errorf("counter family %q is not suffixed _total", fam))
		}
	}
	for _, s := range l.samples {
		if l.types[s.name] == "counter" && s.value < 0 {
			l.errorf(s.line, "counter %s has negative value %v", s.name, s.value)
		}
	}
}

// checkHistograms verifies, per histogram family and per distinct
// non-le label set: every _bucket carries le, cumulative counts are
// non-decreasing over increasing le, a le="+Inf" bucket exists, and it
// agrees with the family's _count sample.
func (l *promLinter) checkHistograms() {
	type bucket struct {
		le    float64
		value float64
		line  int
	}
	buckets := map[string][]bucket{} // family + base labels → buckets
	counts := map[string]float64{}
	haveCount := map[string]bool{}

	groupKey := func(fam string, labels map[string]string) string {
		rest := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		return seriesKey(fam, rest)
	}

	for _, s := range l.samples {
		for _, suffix := range []string{"_bucket", "_count"} {
			base := strings.TrimSuffix(s.name, suffix)
			if base == s.name || l.types[base] != "histogram" {
				continue
			}
			key := groupKey(base, s.labels)
			if suffix == "_count" {
				counts[key] = s.value
				haveCount[key] = true
				continue
			}
			le, ok := s.labels["le"]
			if !ok {
				l.errorf(s.line, "histogram bucket %s without le label", s.name)
				continue
			}
			lev, err := parsePromFloat(le)
			if err != nil {
				l.errorf(s.line, "bucket le %q is not a float", le)
				continue
			}
			buckets[key] = append(buckets[key], bucket{le: lev, value: s.value, line: s.line})
		}
	}

	for key, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		prev := math.Inf(-1)
		var hasInf bool
		var infVal float64
		for _, b := range bs {
			if b.value < prev {
				l.errorf(b.line, "histogram %s buckets not cumulative: %v after %v", key, b.value, prev)
			}
			prev = b.value
			if math.IsInf(b.le, 1) {
				hasInf = true
				infVal = b.value
			}
		}
		if !hasInf {
			l.errs = append(l.errs, fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", key))
			continue
		}
		if haveCount[key] && counts[key] != infVal {
			l.errs = append(l.errs, fmt.Errorf("histogram %s: +Inf bucket %v != count %v", key, infVal, counts[key]))
		}
	}
}
