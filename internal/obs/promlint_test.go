package obs

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// -promlint-file points the linter at an exposition file scraped from a
// live daemon; CI's serve smoke test uses this to validate /metrics
// without an external promtool binary.
var promlintFile = flag.String("promlint-file", "", "lint this Prometheus/OpenMetrics text file and fail on violations")

func TestPromLintExternalFile(t *testing.T) {
	if *promlintFile == "" {
		t.Skip("no -promlint-file given")
	}
	f, err := os.Open(*promlintFile)
	if err != nil {
		t.Fatalf("open exposition: %v", err)
	}
	defer f.Close()
	if errs := LintPrometheusText(f); len(errs) != 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
}

func TestPromLintAcceptsCleanExposition(t *testing.T) {
	clean := `# HELP gopim_serve_requests_total planning API requests received
# TYPE gopim_serve_requests_total counter
gopim_serve_requests_total{clock="sim"} 7
# TYPE gopim_http_in_flight gauge
gopim_http_in_flight 3
# TYPE gopim_lat histogram
gopim_lat_bucket{le="2"} 1
gopim_lat_bucket{le="4"} 3
gopim_lat_bucket{le="+Inf"} 3
gopim_lat_sum 7
gopim_lat_count 3
# EOF
`
	if errs := LintPrometheusText(strings.NewReader(clean)); len(errs) != 0 {
		t.Fatalf("clean exposition flagged: %v", errs)
	}
}

func TestPromLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{
			"bad metric name",
			"bad-name 1\n",
			"invalid metric name",
		},
		{
			"unparseable value",
			"gopim_x one\n",
			"not a float",
		},
		{
			"unknown type",
			"# TYPE gopim_x widget\n",
			"unknown metric type",
		},
		{
			"duplicate type",
			"# TYPE gopim_x gauge\n# TYPE gopim_x gauge\n",
			"duplicate TYPE",
		},
		{
			"type after samples",
			"gopim_x 1\n# TYPE gopim_x gauge\n",
			"after its samples",
		},
		{
			"duplicate series",
			"gopim_x{a=\"1\"} 1\ngopim_x{a=\"1\"} 2\n",
			"duplicate series",
		},
		{
			"counter without _total",
			"# TYPE gopim_x counter\ngopim_x 1\n",
			"not suffixed _total",
		},
		{
			"negative counter",
			"# TYPE gopim_x_total counter\ngopim_x_total -1\n",
			"negative value",
		},
		{
			"bucket without le",
			"# TYPE gopim_h histogram\ngopim_h_bucket 1\ngopim_h_bucket{le=\"+Inf\"} 1\ngopim_h_count 1\n",
			"without le",
		},
		{
			"non-cumulative buckets",
			"# TYPE gopim_h histogram\ngopim_h_bucket{le=\"1\"} 5\ngopim_h_bucket{le=\"2\"} 3\ngopim_h_bucket{le=\"+Inf\"} 5\ngopim_h_count 5\n",
			"not cumulative",
		},
		{
			"missing +Inf bucket",
			"# TYPE gopim_h histogram\ngopim_h_bucket{le=\"1\"} 1\ngopim_h_count 1\n",
			"no le=\"+Inf\"",
		},
		{
			"+Inf disagrees with count",
			"# TYPE gopim_h histogram\ngopim_h_bucket{le=\"+Inf\"} 2\ngopim_h_count 3\n",
			"!= count",
		},
		{
			"content after EOF",
			"gopim_x 1\n# EOF\ngopim_y 2\n",
			"after # EOF",
		},
		{
			"bad label escape",
			"gopim_x{a=\"\\t\"} 1\n",
			"invalid escape",
		},
		{
			"unterminated label value",
			"gopim_x{a=\"oops 1\n",
			"unterminated",
		},
		{
			"invalid label name",
			"gopim_x{9a=\"v\"} 1\n",
			"invalid label name",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errs := LintPrometheusText(strings.NewReader(c.in))
			if len(errs) == 0 {
				t.Fatalf("linter accepted %q", c.in)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), c.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("errors %v do not mention %q", errs, c.want)
			}
		})
	}
}
