package obs

// Edge-case pins for Histogram.Quantile: empty and single-observation
// histograms, out-of-range and NaN q, and linear interpolation at the
// power-of-two bucket boundaries. Quantile estimates feed bench diffs,
// so every case must be defined (never NaN) and a pure function of the
// bucket counts.

import (
	"math"
	"testing"
)

func TestQuantileEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q.empty", Sim, "")
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q.single", Sim, "")
	h.Observe(1500)
	// One observation is reported exactly — no bucket interpolation —
	// for every q, including the endpoints and NaN.
	for _, q := range []float64{-0.5, 0, 0.25, 0.5, 1, 3, math.NaN()} {
		if got := h.Quantile(q); got != 1500 {
			t.Errorf("single-observation Quantile(%v) = %v, want 1500", q, got)
		}
	}

	hz := r.NewHistogram("q.single_zero", Sim, "")
	hz.Observe(0)
	if got := hz.Quantile(0.5); got != 0 {
		t.Errorf("single zero observation Quantile(0.5) = %v, want 0", got)
	}
	hn := r.NewHistogram("q.single_neg", Sim, "")
	hn.Observe(-7)
	if got := hn.Quantile(0.5); got != 0 {
		t.Errorf("single negative observation Quantile(0.5) = %v, want 0 (bucket 0)", got)
	}
}

func TestQuantileNeverNaN(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q.nan", Sim, "")
	h.Observe(4)
	h.Observe(9)
	for _, q := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3, 7} {
		if got := h.Quantile(q); math.IsNaN(got) {
			t.Errorf("Quantile(%v) returned NaN", q)
		}
	}
	// NaN clamps to q=0, ±Inf to the nearest endpoint.
	if got, want := h.Quantile(math.NaN()), h.Quantile(0); got != want {
		t.Errorf("Quantile(NaN) = %v, want Quantile(0) = %v", got, want)
	}
	if got, want := h.Quantile(math.Inf(1)), h.Quantile(1); got != want {
		t.Errorf("Quantile(+Inf) = %v, want Quantile(1) = %v", got, want)
	}
}

func TestQuantileBucketBoundaryInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q.bounds", Sim, "")
	// Two observations in bucket 3 ([4, 8)): ranks 0 and 1.
	h.Observe(4)
	h.Observe(7)
	// q=0 → rank 0, first of 2 in the bucket: lo + 0/2·(hi−lo) = 4.
	if got := h.Quantile(0); got != 4 {
		t.Errorf("Quantile(0) = %v, want the bucket's lower bound 4", got)
	}
	// q=1 → rank 1, second of 2: lo + 1/2·(hi−lo) = 6.
	if got := h.Quantile(1); got != 6 {
		t.Errorf("Quantile(1) = %v, want midpoint 6", got)
	}

	// Across buckets: 2 in [2,4), 2 in [4,8). q=1 lands on rank 3, the
	// second of two in the upper bucket: 4 + 1/2·4 = 6.
	h2 := r.NewHistogram("q.bounds2", Sim, "")
	h2.Observe(2)
	h2.Observe(3)
	h2.Observe(5)
	h2.Observe(6)
	if got := h2.Quantile(0); got != 2 {
		t.Errorf("Quantile(0) = %v, want 2", got)
	}
	if got := h2.Quantile(1); got != 6 {
		t.Errorf("Quantile(1) = %v, want 6", got)
	}
	// q=0.5 → rank 1.5: still inside the first bucket (counts 2), at
	// lo + 1.5/2·(4−2) = 3.5.
	if got := h2.Quantile(0.5); got != 3.5 {
		t.Errorf("Quantile(0.5) = %v, want 3.5", got)
	}

	// Monotonicity in q.
	prev := math.Inf(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h2.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: Quantile(%v)=%v < previous %v", q, v, prev)
		}
		prev = v
	}
}
