package obs

// Request-scoped telemetry: W3C Trace Context identifiers and an
// in-memory log of active and recently completed requests, the data
// source for the serve daemon's /debug/requests inspector. Everything
// here is Wall-clock material — trace IDs are random, stage timings are
// host scheduling — so none of it may feed a Sim-clock metric.

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ------------------------------------------------------- trace context

// TraceContext identifies one request in W3C Trace Context terms: a
// 16-byte trace ID shared by every span of a distributed trace and an
// 8-byte span ID for this hop, both lowercase hex. Sampled carries the
// traceparent sampled flag (bit 0 of trace-flags).
type TraceContext struct {
	TraceID string // 32 lowercase hex characters, not all zero
	SpanID  string // 16 lowercase hex characters, not all zero
	Sampled bool
}

// isLowerHex reports whether s is entirely lowercase hex digits.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// randHex returns 2n lowercase hex characters of cryptographic
// randomness, never all zero (the W3C invalid value).
func randHex(n int) string {
	b := make([]byte, n)
	for {
		_, _ = rand.Read(b)
		for _, c := range b {
			if c != 0 {
				return hex.EncodeToString(b)
			}
		}
	}
}

// NewTraceContext mints a fresh root trace context (new trace ID, new
// span ID, not sampled).
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randHex(16), SpanID: randHex(8)}
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<trace-id>-<parent-id>-<flags>"). The returned context carries
// the caller's trace ID and parent span ID; ok is false for malformed,
// all-zero, or version-ff values, in which case callers should mint a
// fresh context instead.
func ParseTraceparent(h string) (TraceContext, bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return TraceContext{}, false
	}
	ver, tid, pid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isLowerHex(ver) || ver == "ff" {
		return TraceContext{}, false
	}
	// Version 00 defines exactly four fields; future versions may append.
	if ver == "00" && len(parts) != 4 {
		return TraceContext{}, false
	}
	if len(tid) != 32 || !isLowerHex(tid) || allZero(tid) {
		return TraceContext{}, false
	}
	if len(pid) != 16 || !isLowerHex(pid) || allZero(pid) {
		return TraceContext{}, false
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return TraceContext{}, false
	}
	f, _ := strconv.ParseUint(flags, 16, 8)
	return TraceContext{TraceID: tid, SpanID: pid, Sampled: f&1 == 1}, true
}

// Traceparent renders the context as a version-00 traceparent header.
func (tc TraceContext) Traceparent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// Child returns a context for a new span in the same trace: same trace
// ID and sampled flag, fresh span ID.
func (tc TraceContext) Child() TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: randHex(8), Sampled: tc.Sampled}
}

// SampleAt makes the head-sampling decision for rate in [0,1]: the
// leading 8 bytes of the trace ID, read as a uint64, are compared
// against rate's share of the full range. The decision is a pure
// function of the trace ID, so every service that sees the same trace
// samples the same requests.
func (tc TraceContext) SampleAt(rate float64) bool {
	if !(rate > 0) {
		return false
	}
	if rate >= 1 {
		return true
	}
	b, err := hex.DecodeString(tc.TraceID[:16])
	if err != nil || len(b) != 8 {
		return false
	}
	v := binary.BigEndian.Uint64(b)
	return float64(v) < rate*float64(math.MaxUint64)
}

// --------------------------------------------------------- request log

// StageRecord is one completed stage of a request's lifecycle, with
// offsets relative to the request's start — the inspector reconstructs
// the waterfall from these.
type StageRecord struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// RequestRecord is one request as the inspector shows it: identity
// (trace/span IDs), shape (method, path, label), outcome (status,
// cache disposition, error), and the per-stage timing waterfall.
type RequestRecord struct {
	Seq       uint64        `json:"seq"`
	TraceID   string        `json:"trace_id"`
	SpanID    string        `json:"span_id"`
	Method    string        `json:"method"`
	Path      string        `json:"path"`
	Label     string        `json:"label,omitempty"`
	Start     time.Time     `json:"start"`
	WallNS    int64         `json:"wall_ns"`
	Status    int           `json:"status"`
	Cache     string        `json:"cache,omitempty"`
	Error     string        `json:"error,omitempty"`
	BodyBytes int64         `json:"body_bytes"`
	Sampled   bool          `json:"sampled"`
	Active    bool          `json:"active,omitempty"`
	Stages    []StageRecord `json:"stages,omitempty"`
}

func (r RequestRecord) clone() RequestRecord {
	r.Stages = append([]StageRecord(nil), r.Stages...)
	return r
}

// RequestLog tracks in-flight requests plus a fixed-size ring of the
// most recently completed ones. All methods are safe for concurrent
// use; snapshots copy, so readers never block writers for long.
type RequestLog struct {
	mu       sync.Mutex
	capacity int
	ring     []RequestRecord
	next     int // overwrite cursor once the ring is full
	active   map[*ActiveRequest]struct{}
	seq      uint64
}

// NewRequestLog returns a log retaining up to capacity completed
// requests (capacity ≤ 0 retains none; active requests are always
// tracked).
func NewRequestLog(capacity int) *RequestLog {
	if capacity < 0 {
		capacity = 0
	}
	return &RequestLog{
		capacity: capacity,
		active:   map[*ActiveRequest]struct{}{},
	}
}

// Begin registers a request as in flight and returns its handle. The
// handle's methods are nil-safe, so code instrumenting a request never
// has to check whether a log is attached.
func (l *RequestLog) Begin(method, path string, tc TraceContext, sampled bool) *ActiveRequest {
	a := &ActiveRequest{
		l: l,
		rec: RequestRecord{
			TraceID: tc.TraceID,
			SpanID:  tc.SpanID,
			Method:  method,
			Path:    path,
			Start:   time.Now(),
			Sampled: sampled,
		},
	}
	l.mu.Lock()
	l.seq++
	a.rec.Seq = l.seq
	l.active[a] = struct{}{}
	l.mu.Unlock()
	return a
}

// Snapshot returns copies of the in-flight requests (WallNS set to
// elapsed-so-far, Active true) and of the completed ring, most recent
// first.
func (l *RequestLog) Snapshot() (active, completed []RequestRecord) {
	l.mu.Lock()
	handles := make([]*ActiveRequest, 0, len(l.active))
	for a := range l.active {
		handles = append(handles, a)
	}
	// Completed, oldest → newest: ring[next:] then ring[:next] once the
	// ring has wrapped; plain order before that.
	completed = make([]RequestRecord, 0, len(l.ring))
	if len(l.ring) == l.capacity && l.capacity > 0 {
		completed = append(completed, l.ring[l.next:]...)
		completed = append(completed, l.ring[:l.next]...)
	} else {
		completed = append(completed, l.ring...)
	}
	l.mu.Unlock()

	// Newest first for display.
	for i, j := 0, len(completed)-1; i < j; i, j = i+1, j-1 {
		completed[i], completed[j] = completed[j], completed[i]
	}

	// Handle locks are taken after the log lock is released — Finish
	// acquires them in the opposite order, so nesting would deadlock.
	now := time.Now()
	for _, a := range handles {
		a.mu.Lock()
		if !a.finished {
			rec := a.rec.clone()
			rec.WallNS = now.Sub(rec.Start).Nanoseconds()
			rec.Active = true
			active = append(active, rec)
		}
		a.mu.Unlock()
	}
	return active, completed
}

// ActiveRequest is the mutable handle for one in-flight request. A nil
// handle is valid: every method is a no-op, so instrumentation can be
// unconditional.
type ActiveRequest struct {
	l        *RequestLog
	mu       sync.Mutex
	rec      RequestRecord
	finished bool
}

// Stage opens a named lifecycle stage and returns the function that
// closes it; the stage is recorded only when closed.
func (a *ActiveRequest) Stage(name string) func() {
	if a == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		end := time.Now()
		a.mu.Lock()
		a.rec.Stages = append(a.rec.Stages, StageRecord{
			Name:    name,
			StartNS: start.Sub(a.rec.Start).Nanoseconds(),
			DurNS:   end.Sub(start).Nanoseconds(),
		})
		a.mu.Unlock()
	}
}

// SetLabel attaches a human-readable work label ("plan:ddi/GoPIM").
func (a *ActiveRequest) SetLabel(label string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.rec.Label = label
	a.mu.Unlock()
}

// SetCache records the cache disposition ("hit", "miss", "coalesced").
func (a *ActiveRequest) SetCache(disposition string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.rec.Cache = disposition
	a.mu.Unlock()
}

// SetError records the request's terminal error message.
func (a *ActiveRequest) SetError(msg string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.rec.Error = msg
	a.mu.Unlock()
}

// Sampled reports whether this request was head-sampled for span
// tracing.
func (a *ActiveRequest) Sampled() bool {
	if a == nil {
		return false
	}
	return a.rec.Sampled // immutable after Begin
}

// TraceID returns the request's trace ID ("" on a nil handle).
func (a *ActiveRequest) TraceID() string {
	if a == nil {
		return ""
	}
	return a.rec.TraceID // immutable after Begin
}

// Finish seals the record with its terminal status and response size,
// moves it from the active set into the completed ring, and returns a
// copy (the access logger's input).
func (a *ActiveRequest) Finish(status int, bodyBytes int64) RequestRecord {
	if a == nil {
		return RequestRecord{}
	}
	a.mu.Lock()
	a.rec.Status = status
	a.rec.BodyBytes = bodyBytes
	a.rec.WallNS = time.Since(a.rec.Start).Nanoseconds()
	a.finished = true
	rec := a.rec.clone()
	a.mu.Unlock()

	l := a.l
	l.mu.Lock()
	delete(l.active, a)
	if l.capacity > 0 {
		if len(l.ring) < l.capacity {
			l.ring = append(l.ring, rec)
		} else {
			l.ring[l.next] = rec
			l.next = (l.next + 1) % l.capacity
		}
	}
	l.mu.Unlock()
	return rec
}

// ------------------------------------------------------------- context

type activeRequestKey struct{}

// WithActive returns ctx carrying the request handle for downstream
// handlers.
func WithActive(ctx context.Context, a *ActiveRequest) context.Context {
	return context.WithValue(ctx, activeRequestKey{}, a)
}

// ActiveFrom extracts the request handle from ctx (nil when absent —
// and a nil handle's methods are all no-ops).
func ActiveFrom(ctx context.Context) *ActiveRequest {
	a, _ := ctx.Value(activeRequestKey{}).(*ActiveRequest)
	return a
}
