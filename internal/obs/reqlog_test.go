package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, ok := ParseTraceparent(valid)
	if !ok {
		t.Fatalf("valid traceparent rejected")
	}
	if tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %q", tc.TraceID)
	}
	if tc.SpanID != "00f067aa0ba902b7" {
		t.Fatalf("span id = %q", tc.SpanID)
	}
	if !tc.Sampled {
		t.Fatal("flags 01 should set Sampled")
	}
	if _, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"); !ok {
		t.Fatal("unsampled variant rejected")
	}

	bad := []string{
		"",
		"garbage",
		"00-short-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-short-01",
		// all-zero IDs are defined invalid
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		// version ff is reserved-invalid
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		// uppercase hex is invalid
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
		// version 00 defines exactly four fields
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x",
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("accepted invalid traceparent %q", h)
		}
	}
}

func TestTraceContextRoundTripAndChild(t *testing.T) {
	tc := NewTraceContext()
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("fresh context ids %q/%q", tc.TraceID, tc.SpanID)
	}
	got, ok := ParseTraceparent(tc.Traceparent())
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, tc)
	}

	tc.Sampled = true
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Fatal("child must stay in the parent trace")
	}
	if child.SpanID == tc.SpanID {
		t.Fatal("child must get a fresh span id")
	}
	if !child.Sampled {
		t.Fatal("child must inherit the sampled flag")
	}
	if !strings.HasSuffix(child.Traceparent(), "-01") {
		t.Fatalf("sampled traceparent = %q", child.Traceparent())
	}
}

func TestSampleAt(t *testing.T) {
	low := TraceContext{TraceID: "00000000000000ff" + strings.Repeat("0", 16)}
	high := TraceContext{TraceID: "ffffffffffffff00" + strings.Repeat("0", 16)}
	if low.SampleAt(0) || high.SampleAt(0) {
		t.Fatal("rate 0 must sample nothing")
	}
	if !low.SampleAt(1) || !high.SampleAt(1) {
		t.Fatal("rate 1 must sample everything")
	}
	if !low.SampleAt(0.5) {
		t.Fatal("tiny trace id should fall inside a 50% sample")
	}
	if high.SampleAt(0.5) {
		t.Fatal("huge trace id should fall outside a 50% sample")
	}
	// Pure function of the trace ID: repeated decisions agree.
	for i := 0; i < 10; i++ {
		if low.SampleAt(0.5) != true {
			t.Fatal("sampling decision must be deterministic")
		}
	}
}

func TestRequestLogRingAndSnapshot(t *testing.T) {
	l := NewRequestLog(3)
	tc := NewTraceContext()

	a := l.Begin("POST", "/v1/plan", tc, true)
	act, done := l.Snapshot()
	if len(act) != 1 || len(done) != 0 {
		t.Fatalf("snapshot while active: %d active %d completed", len(act), len(done))
	}
	if !act[0].Active || act[0].Status != 0 {
		t.Fatalf("active record = %+v", act[0])
	}
	if act[0].TraceID != tc.TraceID {
		t.Fatal("active record must carry the trace id")
	}

	end := a.Stage("plan")
	end()
	a.SetLabel("plan:ddi/GoPIM")
	a.SetCache("miss")
	rec := a.Finish(200, 123)
	if rec.Status != 200 || rec.BodyBytes != 123 || rec.Cache != "miss" || rec.Label != "plan:ddi/GoPIM" {
		t.Fatalf("finished record = %+v", rec)
	}
	if len(rec.Stages) != 1 || rec.Stages[0].Name != "plan" {
		t.Fatalf("stages = %+v", rec.Stages)
	}
	if rec.Stages[0].StartNS < 0 || rec.Stages[0].DurNS < 0 {
		t.Fatalf("stage offsets must be non-negative: %+v", rec.Stages[0])
	}

	// Fill past capacity: ring keeps the newest 3, newest first.
	for i := 0; i < 5; i++ {
		h := l.Begin("GET", "/healthz", NewTraceContext(), false)
		h.Finish(200+i, 0)
	}
	act, done = l.Snapshot()
	if len(act) != 0 {
		t.Fatalf("%d requests still active", len(act))
	}
	if len(done) != 3 {
		t.Fatalf("ring retained %d, want 3", len(done))
	}
	if done[0].Status != 204 || done[1].Status != 203 || done[2].Status != 202 {
		t.Fatalf("ring order (newest first) = %d,%d,%d", done[0].Status, done[1].Status, done[2].Status)
	}
	for i := 1; i < len(done); i++ {
		if done[i-1].Seq <= done[i].Seq {
			t.Fatal("completed records must be newest-first by Seq")
		}
	}
}

func TestRequestLogZeroCapacity(t *testing.T) {
	l := NewRequestLog(0)
	a := l.Begin("GET", "/x", NewTraceContext(), false)
	a.Finish(200, 0)
	act, done := l.Snapshot()
	if len(act) != 0 || len(done) != 0 {
		t.Fatalf("zero-capacity log retained %d/%d records", len(act), len(done))
	}
}

func TestNilActiveRequestIsNoOp(t *testing.T) {
	var a *ActiveRequest
	a.Stage("x")()
	a.SetLabel("l")
	a.SetCache("hit")
	a.SetError("e")
	if a.Sampled() || a.TraceID() != "" {
		t.Fatal("nil handle getters must return zero values")
	}
	if rec := a.Finish(200, 0); rec.Status != 0 {
		t.Fatal("nil Finish must return a zero record")
	}
}

func TestActiveRequestContext(t *testing.T) {
	if ActiveFrom(context.Background()) != nil {
		t.Fatal("empty context must yield a nil handle")
	}
	l := NewRequestLog(1)
	a := l.Begin("GET", "/x", NewTraceContext(), false)
	ctx := WithActive(context.Background(), a)
	if ActiveFrom(ctx) != a {
		t.Fatal("context round trip lost the handle")
	}
	a.Finish(200, 0)
}

// TestRequestLogConcurrency exercises Begin/Stage/Finish against
// Snapshot under the race detector — the lock-ordering contract between
// the log lock and per-handle locks.
func TestRequestLogConcurrency(t *testing.T) {
	l := NewRequestLog(8)
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				l.Snapshot()
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				a := l.Begin("POST", "/v1/plan", NewTraceContext(), i%2 == 0)
				end := a.Stage("plan")
				a.SetLabel("load")
				end()
				a.Finish(200, 1)
			}
		}()
	}
	writers.Wait()
	close(stop)
	<-snapDone

	_, done := l.Snapshot()
	if len(done) != 8 {
		t.Fatalf("ring retained %d, want 8", len(done))
	}
}
