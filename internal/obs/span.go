package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records wall-clock spans as Chrome trace events. One tracer
// is installed process-wide with SetTracer; when none is installed,
// StartSpan returns a nil span and the hot path pays a single atomic
// load and zero allocations.
type Tracer struct {
	base  time.Time
	lanes atomic.Int64
	mu    sync.Mutex
	ev    []TraceEvent
}

// NewTracer returns a tracer whose timestamps are relative to now.
func NewTracer() *Tracer { return &Tracer{base: time.Now()} }

var currentTracer atomic.Pointer[Tracer]

// SetTracer installs t as the process tracer (nil disables tracing).
func SetTracer(t *Tracer) { currentTracer.Store(t) }

// CurrentTracer returns the installed tracer, or nil.
func CurrentTracer() *Tracer { return currentTracer.Load() }

// Span is one open wall-clock region. A nil span (tracing disabled) is
// valid and all its methods are no-ops.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	start time.Time
	lane  int64
}

type laneKey struct{}

// StartSpan opens a root span on its own lane (trace-viewer row).
func StartSpan(name string) *Span {
	t := currentTracer.Load()
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, cat: "wall", start: time.Now(), lane: t.lanes.Add(1)}
}

// Start opens a span nested under the lane already carried by ctx (a
// fresh lane if none) and returns a context carrying that lane for
// children. With tracing disabled it returns ctx unchanged and a nil
// span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := currentTracer.Load()
	if t == nil {
		return ctx, nil
	}
	lane, ok := ctx.Value(laneKey{}).(int64)
	if !ok {
		lane = t.lanes.Add(1)
		ctx = context.WithValue(ctx, laneKey{}, lane)
	}
	return ctx, &Span{t: t, name: name, cat: "wall", start: time.Now(), lane: lane}
}

// End closes the span, appending one complete ("X") trace event.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.mu.Lock()
	s.t.ev = append(s.t.ev, TraceEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		Ts:   float64(s.start.Sub(s.t.base)) / 1e3, // µs
		Dur:  float64(now.Sub(s.start)) / 1e3,      // µs
		Pid:  wallPid,
		Tid:  int(s.lane),
	})
	s.t.mu.Unlock()
}

// Events returns a copy of the recorded events in recording order,
// prefixed with process/thread naming metadata.
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.ev)+1)
	out = append(out, processNameEvent(wallPid, "gopim (wall clock)"))
	return append(out, t.ev...)
}

// WriteJSON writes the recorded spans as Chrome trace-event JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	return WriteTraceJSON(w, t.Events())
}

// WriteSummary renders a per-span-name aggregate (count, total, min,
// max wall time), sorted by total descending — the text companion to
// the JSON trace.
func (t *Tracer) WriteSummary(w io.Writer) error {
	t.mu.Lock()
	events := append([]TraceEvent(nil), t.ev...)
	t.mu.Unlock()
	type agg struct {
		name     string
		count    int
		total    float64
		min, max float64
	}
	byName := map[string]*agg{}
	for _, e := range events {
		a := byName[e.Name]
		if a == nil {
			a = &agg{name: e.Name, min: e.Dur, max: e.Dur}
			byName[e.Name] = a
		}
		a.count++
		a.total += e.Dur
		if e.Dur < a.min {
			a.min = e.Dur
		}
		if e.Dur > a.max {
			a.max = e.Dur
		}
	}
	aggs := make([]*agg, 0, len(byName))
	for _, a := range byName {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].total != aggs[j].total {
			return aggs[i].total > aggs[j].total
		}
		return aggs[i].name < aggs[j].name
	})
	var b strings.Builder
	b.WriteString("span summary (wall clock):\n")
	for _, a := range aggs {
		fmt.Fprintf(&b, "  %-32s n=%-4d total %10.3fms  min %10.3fms  max %10.3fms\n",
			a.name, a.count, a.total/1e3, a.min/1e3, a.max/1e3)
	}
	if len(aggs) == 0 {
		b.WriteString("  (no spans recorded)\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
