package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestNilSpanIsNoop(t *testing.T) {
	SetTracer(nil)
	sp := StartSpan("anything")
	if sp != nil {
		t.Fatal("StartSpan must return nil without a tracer")
	}
	sp.End() // must not panic
	ctx, sp2 := Start(context.Background(), "x")
	if sp2 != nil || ctx != context.Background() {
		t.Fatal("Start must be a no-op without a tracer")
	}
}

func TestSpansRecordAndExportJSON(t *testing.T) {
	tr := NewTracer()
	SetTracer(tr)
	defer SetTracer(nil)

	outer := StartSpan("outer")
	time.Sleep(time.Millisecond)
	inner := StartSpan("inner")
	inner.End()
	outer.End()

	events := tr.Events()
	var spans []TraceEvent
	for _, e := range events {
		if e.Ph == "X" {
			spans = append(spans, e)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if spans[0].Name != "inner" || spans[1].Name != "outer" {
		t.Fatalf("span order = %s,%s (End order expected)", spans[0].Name, spans[1].Name)
	}
	if spans[1].Dur <= 0 {
		t.Fatal("outer span has no duration")
	}
	if spans[0].Tid == spans[1].Tid {
		t.Fatal("root spans must land on distinct lanes")
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(decoded.TraceEvents) != len(events) {
		t.Fatalf("JSON has %d events, want %d", len(decoded.TraceEvents), len(events))
	}
}

func TestStartNestsOnOneLane(t *testing.T) {
	tr := NewTracer()
	SetTracer(tr)
	defer SetTracer(nil)

	ctx, root := Start(context.Background(), "root")
	_, child := Start(ctx, "child")
	child.End()
	root.End()
	var spans []TraceEvent
	for _, e := range tr.Events() {
		if e.Ph == "X" {
			spans = append(spans, e)
		}
	}
	if len(spans) != 2 || spans[0].Tid != spans[1].Tid {
		t.Fatalf("ctx-nested spans must share a lane: %+v", spans)
	}
}

func TestWriteSummary(t *testing.T) {
	tr := NewTracer()
	SetTracer(tr)
	defer SetTracer(nil)
	for i := 0; i < 3; i++ {
		StartSpan("work").End()
	}
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "work") || !strings.Contains(buf.String(), "n=3") {
		t.Fatalf("summary:\n%s", buf.String())
	}
}

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("debug.test_metric", Sim, "").Add(11)
	ln, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "debug.test_metric counter count=11") {
		t.Fatalf("/debug/metrics:\n%s", buf.String())
	}
	vars, err := http.Get("http://" + ln.Addr().String() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars.Body.Close()
	if vars.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", vars.StatusCode)
	}
}

func TestServeDebugBadAddrFails(t *testing.T) {
	if _, err := ServeDebug("256.256.256.256:0", NewRegistry()); err == nil {
		t.Fatal("expected error for invalid address")
	}
}
