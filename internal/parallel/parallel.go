// Package parallel is GoPIM's deterministic worker-pool layer: a
// bounded pool of goroutines sized by GOMAXPROCS (overridable with
// SetWorkers or the GOPIM_WORKERS environment variable) behind two
// primitives — For, a blocked parallel-for over an index range, and
// Map, an ordered fan-out that collects results in input order.
//
// Determinism contract: both primitives partition work by index, so a
// result only ever depends on its own index, never on which worker
// computed it or on how many workers exist. Callers that keep
// per-index work independent (disjoint output rows, per-index derived
// RNG seeds) therefore produce byte-identical output at any worker
// count, including the serial fallback. Every hot kernel in tensor,
// sparsemat, predictor and experiments is written against that
// contract; determinism tests in those packages pin it.
//
// The pool is bounded globally: nested For/Map calls (an experiment
// fan-out whose GCN training calls parallel GEMM, say) never stack
// worker goroutines multiplicatively. Helper goroutines are acquired
// with a try-acquire against one process-wide budget, and the calling
// goroutine always participates in its own loop, so a nested call that
// finds the budget exhausted simply degrades to the serial path — it
// can never deadlock.
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"gopim/internal/obs"
)

// Pool metrics. The Sim-clock counters count quantities that depend
// only on the work submitted (calls, partitioned blocks), never on how
// many workers ran it, so they stay byte-identical across worker
// counts; everything scheduling-dependent (helpers actually spawned,
// budget denials, busy time) is Wall-clock.
var (
	mForCalls = obs.NewCounter("parallel.for_calls", obs.Sim,
		"For/Map invocations over non-empty ranges")
	mBlocks = obs.NewCounter("parallel.blocks_partitioned", obs.Sim,
		"work blocks the index ranges were partitioned into")
	mHelpers = obs.NewCounter("parallel.helpers_spawned", obs.Wall,
		"helper goroutines acquired from the global budget")
	mHelperDenied = obs.NewCounter("parallel.helper_budget_denied", obs.Wall,
		"times a For call stopped spawning because the budget was exhausted")
	mHelperBusy = obs.NewTimer("parallel.helper_busy_ns",
		"per-helper wall time from spawn to drain (worker occupancy)")
	mEnvInvalid = obs.NewCounter("parallel.env_workers_invalid", obs.Wall,
		"GOPIM_WORKERS values rejected, falling back to GOMAXPROCS")
)

// overrideWorkers holds the SetWorkers value; 0 means "not set".
var overrideWorkers atomic.Int32

// envWorkers caches the GOPIM_WORKERS value, parsed once.
var (
	envOnce    sync.Once
	envWorkers int
)

// parseWorkers validates a GOPIM_WORKERS value: a positive integer.
func parseWorkers(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("want a positive integer, got %q", v)
	}
	return n, nil
}

func envWorkerCount() int {
	envOnce.Do(func() {
		v := os.Getenv("GOPIM_WORKERS")
		if v == "" {
			return
		}
		n, err := parseWorkers(v)
		if err != nil {
			rejectEnvWorkers(v)
			return
		}
		envWorkers = n
	})
	return envWorkers
}

// rejectEnvWorkers reports an unusable GOPIM_WORKERS value through the
// structured warn path and counts the GOMAXPROCS fallback.
func rejectEnvWorkers(v string) {
	mEnvInvalid.Inc()
	obs.Warnf("parallel", "ignoring invalid GOPIM_WORKERS=%q (want a positive integer); using GOMAXPROCS", v)
}

// Workers returns the worker count parallel kernels run at:
// the SetWorkers override if set, else GOPIM_WORKERS if set,
// else GOMAXPROCS.
func Workers() int {
	if n := overrideWorkers.Load(); n > 0 {
		return int(n)
	}
	if n := envWorkerCount(); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the worker count (the CLI's -workers flag).
// n < 1 removes the override.
func SetWorkers(n int) {
	if n < 1 {
		n = 0
	}
	overrideWorkers.Store(int32(n))
}

// helpers counts live helper goroutines across every concurrent
// For/Map in the process — the global pool bound.
var helpers atomic.Int64

func tryAcquireHelper() bool {
	limit := int64(Workers())
	for {
		cur := helpers.Load()
		if cur >= limit {
			return false
		}
		if helpers.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func releaseHelper() { helpers.Add(-1) }

// For runs body over [0, n) split into contiguous blocks of at most
// grain indices. Blocks are claimed from a shared counter by up to
// Workers() goroutines (the caller included); with one worker, or when
// n ≤ grain, body runs once on the caller as body(0, n) — the serial
// fallback.
//
// body must treat [lo, hi) as exclusively owned. A panic in any block
// is re-raised on the caller after all workers drain.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	blocks := (n + grain - 1) / grain
	// Both counts derive from (n, grain) alone — identical at any
	// worker count, so they live on the Sim clock.
	mForCalls.Inc()
	mBlocks.Add(int64(blocks))
	w := Workers()
	if w > blocks {
		w = blocks
	}
	if w <= 1 {
		body(0, n)
		return
	}

	var (
		next     atomic.Int64
		aborted  atomic.Bool
		panicMu  sync.Mutex
		panicked any
	)
	loop := func() {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
				aborted.Store(true)
			}
		}()
		for !aborted.Load() {
			b := next.Add(1) - 1
			if b >= int64(blocks) {
				return
			}
			lo := int(b) * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	}

	var wg sync.WaitGroup
	for i := 1; i < w; i++ {
		if !tryAcquireHelper() {
			mHelperDenied.Inc()
			break
		}
		mHelpers.Inc()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer releaseHelper()
			t0 := obs.NowIfEnabled()
			loop()
			mHelperBusy.ObserveSince(t0)
		}()
	}
	loop()
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Serial reports whether For(n, grain, body) would run body serially
// on the caller (one effective worker). When it returns true it has
// already recorded the same Sim-clock accounting For would — both
// counters derive from (n, grain) alone — so a hot kernel can branch
// on Serial and run its block function directly, never constructing
// the escaping closure the parallel path needs, without
// parallel.for_calls or blocks_partitioned drifting across worker
// counts. When it returns false nothing is counted; the caller must
// follow up with For, which counts exactly once.
func Serial(n, grain int) bool {
	if n <= 0 {
		return true // For would return without counting, too
	}
	if grain < 1 {
		grain = 1
	}
	blocks := (n + grain - 1) / grain
	w := Workers()
	if w > blocks {
		w = blocks
	}
	if w <= 1 {
		mForCalls.Inc()
		mBlocks.Add(int64(blocks))
		return true
	}
	return false
}

// Map runs fn for every index in [0, n) and returns the results in
// input order regardless of worker count or scheduling. Each index is
// its own block (grain 1), so Map suits coarse tasks — experiments,
// leave-one-out folds, profile units — not tight numeric loops.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}
