package parallel

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gopim/internal/obs"
)

// withWorkers runs f under a fixed worker count and restores the
// default afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	f()
}

func TestWorkersOverride(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want ≥ 1", Workers())
	}
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after reset", Workers())
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w, func() {
			const n = 1000
			var hits [n]atomic.Int32
			For(n, 7, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad block [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("workers=%d: index %d visited %d times", w, i, hits[i].Load())
				}
			}
		})
	}
}

func TestForEmptyAndSerialFallback(t *testing.T) {
	For(0, 4, func(lo, hi int) { t.Fatal("body must not run for n=0") })
	For(-3, 4, func(lo, hi int) { t.Fatal("body must not run for n<0") })
	calls := 0
	withWorkers(t, 8, func() {
		For(3, 10, func(lo, hi int) {
			calls++
			if lo != 0 || hi != 3 {
				t.Fatalf("serial fallback got [%d,%d)", lo, hi)
			}
		})
	})
	if calls != 1 {
		t.Fatalf("serial fallback ran body %d times", calls)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w, func() {
			out := Map(100, func(i int) int { return i * i })
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d: out[%d] = %d", w, i, v)
				}
			}
		})
	}
}

func TestForPropagatesPanic(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", w, r)
				}
			}()
			For(64, 1, func(lo, hi int) {
				if lo <= 13 && 13 < hi {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: For returned instead of panicking", w)
		})
	}
}

func TestParseWorkers(t *testing.T) {
	for _, tc := range []struct {
		in string
		ok bool
	}{
		{"1", true}, {"16", true},
		{"0", false}, {"-2", false}, {"abc", false}, {"1.5", false}, {"", false},
	} {
		_, err := parseWorkers(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseWorkers(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
	}
}

// Invalid GOPIM_WORKERS values must flow through the structured warn
// path — counted in the registry and attributed to this package —
// instead of a bare stderr write.
func TestRejectEnvWorkersWarnsAndCounts(t *testing.T) {
	var buf bytes.Buffer
	restore := obs.SetWarnOutput(&buf)
	defer restore()
	before := mEnvInvalid.Value()
	rejectEnvWorkers("banana")
	if mEnvInvalid.Value() != before+1 {
		t.Fatal("fallback not counted in the registry")
	}
	out := buf.String()
	if !strings.Contains(out, "[parallel]") || !strings.Contains(out, `GOPIM_WORKERS="banana"`) {
		t.Fatalf("warn output = %q", out)
	}
}

// resetEnvCache clears the parsed-once GOPIM_WORKERS state so a test
// can exercise envWorkerCount with its own environment, restoring the
// pristine cache afterwards so test order doesn't matter.
func resetEnvCache(t *testing.T) {
	t.Helper()
	envOnce = sync.Once{}
	envWorkers = 0
	t.Cleanup(func() {
		envOnce = sync.Once{}
		envWorkers = 0
	})
}

// An invalid GOPIM_WORKERS must warn once, count the rejection, and
// leave Workers() on the GOMAXPROCS fallback — not crash or silently
// misparse.
func TestInvalidEnvWorkersFallsBack(t *testing.T) {
	resetEnvCache(t)
	t.Setenv("GOPIM_WORKERS", "banana")
	var buf bytes.Buffer
	restore := obs.SetWarnOutput(&buf)
	defer restore()
	before := mEnvInvalid.Value()
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() = %d with invalid env, want GOMAXPROCS %d", got, want)
	}
	if mEnvInvalid.Value() != before+1 {
		t.Error("invalid GOPIM_WORKERS not counted")
	}
	if !strings.Contains(buf.String(), `GOPIM_WORKERS="banana"`) {
		t.Errorf("warn output = %q", buf.String())
	}
	// The value is parsed once: a second lookup must not warn again.
	Workers()
	if mEnvInvalid.Value() != before+1 {
		t.Error("rejection re-counted on cached lookup")
	}
}

func TestValidEnvWorkersApplies(t *testing.T) {
	resetEnvCache(t)
	t.Setenv("GOPIM_WORKERS", "5")
	if got := Workers(); got != 5 {
		t.Errorf("Workers() = %d with GOPIM_WORKERS=5", got)
	}
	// An explicit SetWorkers override still wins over the environment.
	withWorkers(t, 2, func() {
		if got := Workers(); got != 2 {
			t.Errorf("Workers() = %d, want SetWorkers override 2", got)
		}
	})
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	withWorkers(t, 4, func() {
		var total atomic.Int64
		For(8, 1, func(lo, hi int) {
			For(100, 10, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		})
		if total.Load() != 800 {
			t.Fatalf("nested total = %d, want 800", total.Load())
		}
	})
}
