package pipeline

import (
	"math/rand"
	"testing"
)

func BenchmarkSimulateLongPipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	times := make([]float64, 12)
	reps := make([]int, 12)
	for i := range times {
		times[i] = rng.Float64() * 1000
		reps[i] = 1 + rng.Intn(64)
	}
	in := Input{TimesNS: times, Replicas: reps, MicroBatches: 10_000, Mode: IntraInterBatch}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(in)
	}
}
