// Package pipeline schedules micro-batches through GCN training stages
// under the paper's dependency model (equations (3)–(6)):
//
//	start(i,j) ≥ end(i−1,j)   — stage order within a micro-batch
//	start(i,j) ≥ end(i,j−1)   — micro-batch order within a stage
//
// and computes makespan, per-stage busy/idle percentages (the
// quantities of paper Figs. 4 and 15), and the closed-form total
// T_A = Σ tᵢ + (B−1)·max tᵢ for the fully pipelined mode.
//
// Replicas shorten a stage's effective per-micro-batch time to tᵢ/rᵢ
// (paper Fig. 5: splitting a stage's work across replicated crossbars).
package pipeline

import (
	"fmt"

	"gopim/internal/obs"
)

// Schedule metrics: everything here is a function of the simulated
// workload, so all series live on the deterministic Sim clock.
var (
	mSimulations = obs.NewCounter("pipeline.simulations", obs.Sim,
		"schedules simulated")
	mMicroBatches = obs.NewCounter("pipeline.micro_batches", obs.Sim,
		"micro-batches scheduled across all simulations")
	mStages = obs.NewCounter("pipeline.stages_scheduled", obs.Sim,
		"stage lanes scheduled across all simulations")
	mMicroBatchHist = obs.NewHistogram("pipeline.micro_batches_per_sim", obs.Sim,
		"micro-batch count per simulation (power-of-two buckets)")
	mMakespan = obs.NewDistribution("pipeline.makespan_ns", obs.Sim,
		"simulated makespan per schedule")
)

// Mode selects how much pipelining the accelerator supports.
type Mode int

const (
	// Serial executes stages and micro-batches strictly sequentially
	// (the paper's Serial baseline).
	Serial Mode = iota
	// IntraBatch pipelines micro-batches inside a batch but places a
	// barrier between batches (SlimGNN-like, ReGraphX).
	IntraBatch
	// IntraInterBatch pipelines across batch boundaries as well
	// (GoPIM, paper §IV-A).
	IntraInterBatch
)

func (m Mode) String() string {
	switch m {
	case Serial:
		return "serial"
	case IntraBatch:
		return "intra-batch"
	case IntraInterBatch:
		return "intra+inter-batch"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Input configures one schedule simulation.
type Input struct {
	// TimesNS are the per-micro-batch stage latencies with one replica,
	// in pipeline order.
	TimesNS []float64
	// Replicas holds the replica count per stage (≥ 1); nil means one
	// replica everywhere.
	Replicas []int
	// MicroBatches is the total number of micro-batches B.
	MicroBatches int
	// MicroBatchesPerBatch bounds a batch for IntraBatch mode (weight
	// updates barrier the pipeline). Ignored by the other modes;
	// 0 defaults to 8.
	MicroBatchesPerBatch int
	Mode                 Mode
}

// Result reports a simulated schedule.
type Result struct {
	// MakespanNS is the total execution time.
	MakespanNS float64
	// EffTimesNS are the effective per-micro-batch stage times tᵢ/rᵢ.
	EffTimesNS []float64
	// BusyNS is, per stage, the total time its crossbars compute.
	BusyNS []float64
	// IdleFrac is, per stage, 1 − busy/makespan — paper Fig. 4's
	// "idle time percentage of crossbars for stage i".
	IdleFrac []float64
}

// EffectiveTimes divides each stage time by its replica count.
func EffectiveTimes(times []float64, replicas []int) []float64 {
	eff := make([]float64, len(times))
	for i, t := range times {
		r := 1
		if replicas != nil {
			if len(replicas) != len(times) {
				panic(fmt.Sprintf("pipeline: %d replicas for %d stages", len(replicas), len(times)))
			}
			r = replicas[i]
			if r < 1 {
				panic(fmt.Sprintf("pipeline: stage %d has %d replicas", i, r))
			}
		}
		eff[i] = t / float64(r)
	}
	return eff
}

// Simulate runs the schedule and returns timing and idle statistics.
func Simulate(in Input) Result {
	res := SimulateUnrecorded(in)
	RecordSim(len(in.TimesNS), in.MicroBatches, res.MakespanNS)
	return res
}

// RecordSim publishes exactly the metrics one Simulate call records,
// from the simulation's shape and outcome. Memoizing callers (accel's
// run cache) pair it with SimulateUnrecorded so a cached run replays
// the same metric effect as a fresh one.
func RecordSim(stages, microBatches int, makespanNS float64) {
	mSimulations.Inc()
	mMicroBatches.Add(int64(microBatches))
	mStages.Add(int64(stages))
	mMicroBatchHist.Observe(int64(microBatches))
	mMakespan.Observe(makespanNS)
}

// SimulateUnrecorded is Simulate without the metric records — the
// computation is a pure function of the input.
func SimulateUnrecorded(in Input) Result {
	if len(in.TimesNS) == 0 {
		panic("pipeline: no stages")
	}
	if in.MicroBatches < 1 {
		panic(fmt.Sprintf("pipeline: %d micro-batches", in.MicroBatches))
	}
	for i, t := range in.TimesNS {
		if t < 0 {
			panic(fmt.Sprintf("pipeline: stage %d has negative time %v", i, t))
		}
	}
	eff := EffectiveTimes(in.TimesNS, in.Replicas)
	var makespan float64
	switch in.Mode {
	case Serial:
		makespan = serialMakespan(eff, in.MicroBatches)
	case IntraBatch:
		per := in.MicroBatchesPerBatch
		if per <= 0 {
			per = 8
		}
		makespan = 0
		remaining := in.MicroBatches
		for remaining > 0 {
			b := per
			if b > remaining {
				b = remaining
			}
			makespan += pipelinedMakespan(eff, b)
			remaining -= b
		}
	case IntraInterBatch:
		makespan = pipelinedMakespan(eff, in.MicroBatches)
	default:
		panic(fmt.Sprintf("pipeline: unknown mode %v", in.Mode))
	}

	busy := make([]float64, len(eff))
	idle := make([]float64, len(eff))
	for i, t := range eff {
		busy[i] = t * float64(in.MicroBatches)
		if makespan > 0 {
			idle[i] = 1 - busy[i]/makespan
			if idle[i] < 0 {
				idle[i] = 0
			}
		}
	}
	return Result{MakespanNS: makespan, EffTimesNS: eff, BusyNS: busy, IdleFrac: idle}
}

func serialMakespan(eff []float64, b int) float64 {
	var sum float64
	for _, t := range eff {
		sum += t
	}
	return sum * float64(b)
}

// pipelinedMakespan evaluates the recurrence of equations (3)–(4); for
// constant stage times it equals the closed form (6):
// Σ tᵢ + (B−1)·max tᵢ.
func pipelinedMakespan(eff []float64, b int) float64 {
	// end[i] is the finish time of stage i for the previous micro-batch.
	end := make([]float64, len(eff))
	for j := 0; j < b; j++ {
		prev := 0.0 // end of stage i-1 for this micro-batch
		for i, t := range eff {
			start := prev
			if end[i] > start {
				start = end[i]
			}
			end[i] = start + t
			prev = end[i]
		}
	}
	return end[len(eff)-1]
}

// ClosedFormTotal evaluates paper equation (6) directly:
// T_A = Σ tᵢ + (B−1)·max tᵢ.
func ClosedFormTotal(eff []float64, b int) float64 {
	var sum, max float64
	for _, t := range eff {
		sum += t
		if t > max {
			max = t
		}
	}
	return sum + float64(b-1)*max
}

// AvgIdleFrac returns the mean of the per-stage idle fractions.
func (r Result) AvgIdleFrac() float64 {
	if len(r.IdleFrac) == 0 {
		return 0
	}
	var sum float64
	for _, f := range r.IdleFrac {
		sum += f
	}
	return sum / float64(len(r.IdleFrac))
}
