package pipeline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Paper Fig. 5: two stages with times 1 and 6, two micro-batches per
// batch, four batches (8 micro-batches total in the drawing's timeline
// of 52 units for the serial-ish pipeline).
//
// Case (a): no replicas, pipelined: T = (1+6) + (8−1)·6 = 49… the
// figure counts 52 units because its batches arrive as 2-micro-batch
// groups; we verify the three allocation cases relative to each other
// instead, which is the figure's actual point.
func TestFig5AllocationCases(t *testing.T) {
	times := []float64{1, 6}
	const b = 8

	noRep := Simulate(Input{TimesNS: times, MicroBatches: b, Mode: IntraInterBatch})

	// Case (b): ReGraphX 1:2 ratio — 1 replica to stage 1, 2 to stage 2
	// (on top of the original copy): stage times 1/2 and 6/3 = 2.
	regraphx := Simulate(Input{TimesNS: times, Replicas: []int{2, 3}, MicroBatches: b, Mode: IntraInterBatch})

	// Case (c): all three replicas to stage 2: stage times 1 and 6/4.
	gopim := Simulate(Input{TimesNS: times, Replicas: []int{1, 4}, MicroBatches: b, Mode: IntraInterBatch})

	if !(regraphx.MakespanNS < noRep.MakespanNS) {
		t.Fatalf("ReGraphX allocation %v must beat no replicas %v", regraphx.MakespanNS, noRep.MakespanNS)
	}
	if !(gopim.MakespanNS < regraphx.MakespanNS) {
		t.Fatalf("GoPIM allocation %v must beat ReGraphX %v (paper Fig. 5c vs 5b)", gopim.MakespanNS, regraphx.MakespanNS)
	}

	// Improvement ratios from the paper: (b) ≈ 65.4%, (c) ≈ 69.2% of
	// the per-stage work removed. Verify the ordering of improvements
	// holds with a clear margin.
	impB := 1 - regraphx.MakespanNS/noRep.MakespanNS
	impC := 1 - gopim.MakespanNS/noRep.MakespanNS
	if impC <= impB {
		t.Fatalf("improvements: case c %v must exceed case b %v", impC, impB)
	}
}

func TestSerialMakespan(t *testing.T) {
	r := Simulate(Input{TimesNS: []float64{2, 3, 5}, MicroBatches: 4, Mode: Serial})
	if math.Abs(r.MakespanNS-40) > 1e-9 {
		t.Fatalf("serial makespan = %v, want 4·(2+3+5) = 40", r.MakespanNS)
	}
}

// Property: the DP schedule with constant stage times equals the
// closed form of paper equation (6).
func TestPipelinedMatchesClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		times := make([]float64, n)
		for i := range times {
			times[i] = rng.Float64() * 100
		}
		b := 1 + rng.Intn(50)
		r := Simulate(Input{TimesNS: times, MicroBatches: b, Mode: IntraInterBatch})
		want := ClosedFormTotal(times, b)
		return math.Abs(r.MakespanNS-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: pipelining never loses to serial, and intra+inter never
// loses to intra-batch.
func TestModeOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		times := make([]float64, n)
		for i := range times {
			times[i] = rng.Float64() * 50
		}
		b := 1 + rng.Intn(60)
		ser := Simulate(Input{TimesNS: times, MicroBatches: b, Mode: Serial}).MakespanNS
		intra := Simulate(Input{TimesNS: times, MicroBatches: b, MicroBatchesPerBatch: 8, Mode: IntraBatch}).MakespanNS
		full := Simulate(Input{TimesNS: times, MicroBatches: b, Mode: IntraInterBatch}).MakespanNS
		return full <= intra+1e-9 && intra <= ser+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: replicas never hurt.
func TestReplicasMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		times := make([]float64, n)
		reps := make([]int, n)
		more := make([]int, n)
		for i := range times {
			times[i] = 1 + rng.Float64()*20
			reps[i] = 1 + rng.Intn(4)
			more[i] = reps[i] + rng.Intn(3)
		}
		b := 1 + rng.Intn(30)
		base := Simulate(Input{TimesNS: times, Replicas: reps, MicroBatches: b, Mode: IntraInterBatch}).MakespanNS
		better := Simulate(Input{TimesNS: times, Replicas: more, MicroBatches: b, Mode: IntraInterBatch}).MakespanNS
		return better <= base+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIdleFractions(t *testing.T) {
	// One long stage, one short: the short stage idles most of the time.
	r := Simulate(Input{TimesNS: []float64{1, 9}, MicroBatches: 100, Mode: IntraInterBatch})
	if r.IdleFrac[1] > 0.05 {
		t.Fatalf("bottleneck stage idle = %v, want ≈0", r.IdleFrac[1])
	}
	if r.IdleFrac[0] < 0.85 {
		t.Fatalf("short stage idle = %v, want ≈0.9", r.IdleFrac[0])
	}
	if r.AvgIdleFrac() <= 0 || r.AvgIdleFrac() >= 1 {
		t.Fatalf("avg idle = %v out of (0,1)", r.AvgIdleFrac())
	}
	// Busy times: B·t each.
	if math.Abs(r.BusyNS[0]-100) > 1e-9 || math.Abs(r.BusyNS[1]-900) > 1e-9 {
		t.Fatalf("busy = %v", r.BusyNS)
	}
}

// Balancing stage times with replicas reduces every stage's idle
// fraction — the mechanism behind paper Fig. 15.
func TestReplicasReduceIdle(t *testing.T) {
	times := []float64{1, 8}
	naive := Simulate(Input{TimesNS: times, MicroBatches: 64, Mode: IntraInterBatch})
	balanced := Simulate(Input{TimesNS: times, Replicas: []int{1, 8}, MicroBatches: 64, Mode: IntraInterBatch})
	if balanced.AvgIdleFrac() >= naive.AvgIdleFrac() {
		t.Fatalf("balanced idle %v should be below naive %v", balanced.AvgIdleFrac(), naive.AvgIdleFrac())
	}
}

func TestIntraBatchBarriers(t *testing.T) {
	times := []float64{3, 3}
	// 4 micro-batches, batches of 2: each batch takes 3+3+3 = 9, two
	// batches = 18. Fully pipelined: 6 + 3·3 = 15.
	intra := Simulate(Input{TimesNS: times, MicroBatches: 4, MicroBatchesPerBatch: 2, Mode: IntraBatch})
	if math.Abs(intra.MakespanNS-18) > 1e-9 {
		t.Fatalf("intra-batch makespan = %v, want 18", intra.MakespanNS)
	}
	full := Simulate(Input{TimesNS: times, MicroBatches: 4, Mode: IntraInterBatch})
	if math.Abs(full.MakespanNS-15) > 1e-9 {
		t.Fatalf("full pipeline makespan = %v, want 15", full.MakespanNS)
	}
}

func TestEffectiveTimes(t *testing.T) {
	eff := EffectiveTimes([]float64{10, 20}, []int{2, 4})
	if eff[0] != 5 || eff[1] != 5 {
		t.Fatalf("EffectiveTimes = %v", eff)
	}
	if got := EffectiveTimes([]float64{7}, nil); got[0] != 7 {
		t.Fatalf("nil replicas should mean 1: %v", got)
	}
}

func TestValidation(t *testing.T) {
	cases := []func(){
		func() { Simulate(Input{TimesNS: nil, MicroBatches: 1}) },
		func() { Simulate(Input{TimesNS: []float64{1}, MicroBatches: 0}) },
		func() { Simulate(Input{TimesNS: []float64{-1}, MicroBatches: 1}) },
		func() { Simulate(Input{TimesNS: []float64{1}, Replicas: []int{0}, MicroBatches: 1}) },
		func() { Simulate(Input{TimesNS: []float64{1}, Replicas: []int{1, 2}, MicroBatches: 1}) },
		func() { Simulate(Input{TimesNS: []float64{1}, MicroBatches: 1, Mode: Mode(99)}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSingleMicroBatch(t *testing.T) {
	// With B = 1 every mode degenerates to the stage-time sum.
	times := []float64{4, 5, 6}
	for _, m := range []Mode{Serial, IntraBatch, IntraInterBatch} {
		r := Simulate(Input{TimesNS: times, MicroBatches: 1, Mode: m})
		if math.Abs(r.MakespanNS-15) > 1e-9 {
			t.Fatalf("mode %v: makespan = %v, want 15", m, r.MakespanNS)
		}
	}
}

func TestModeString(t *testing.T) {
	if Serial.String() != "serial" || IntraBatch.String() != "intra-batch" ||
		IntraInterBatch.String() != "intra+inter-batch" {
		t.Fatal("mode strings wrong")
	}
}
