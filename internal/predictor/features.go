// Package predictor implements GoPIM's ML-based execution-time
// prediction (paper §V-A): the ten Table I workload features, profile
// generation from the timing simulator, the three-layer MLP predictor
// (10-256-1), and the regressor families it is benchmarked against in
// Fig. 9 (XGBoost-style gradient boosting, SVR, decision tree, linear
// regression, Bayesian ridge).
package predictor

import (
	"fmt"

	"gopim/internal/stage"
)

// NumFeatures is the size of the Table I feature vector.
const NumFeatures = 10

// Features is one Table I feature vector describing a GCN layer's
// workload on the accelerator.
type Features [NumFeatures]float64

// Feature indices, in Table I order.
const (
	FRIFMCO   = iota // rows of the Combination input matrix (micro-batch)
	FCIFMCO          // cols of the Combination input matrix
	FRECO            // rows of the mapped Combination weight matrix
	FCECO            // cols of the mapped Combination weight matrix
	FRAAG            // rows of the Aggregation adjacency input
	FCAAG            // cols of the Aggregation adjacency input
	FREAG            // rows of the mapped Aggregation feature matrix
	FCEAG            // cols of the mapped Aggregation feature matrix
	FSparsity        // graph sparsity
	FLayer           // current layer index
)

// FeatureNames lists the Table I feature mnemonics in order.
func FeatureNames() []string {
	return []string{
		"R_IFM_CO", "C_IFM_CO", "R_E_CO", "C_E_CO",
		"R_A_AG", "C_A_AG", "R_E_AG", "C_E_AG",
		"s", "k",
	}
}

// Extract builds the Table I feature vector for layer l of a workload.
func Extract(cfg stage.Config, l int) Features {
	in, out := stage.LayerDims(cfg.Dataset, l)
	n := cfg.Deg.N
	b := cfg.MicroBatch
	// Sparsity of the adjacency matrix: 1 − 2E/n².
	sparsity := 1.0
	if n > 0 {
		sparsity = 1 - 2*cfg.Deg.TotalEdges()/(float64(n)*float64(n))
	}
	return Features{
		FRIFMCO:   float64(b),
		FCIFMCO:   float64(in),
		FRECO:     float64(in),
		FCECO:     float64(out),
		FRAAG:     float64(b),
		FCAAG:     float64(n),
		FREAG:     float64(n),
		FCEAG:     float64(out),
		FSparsity: sparsity,
		FLayer:    float64(l),
	}
}

// Sample is one profiling record: the layer's features, the stage kind,
// and the measured per-micro-batch stage time.
type Sample struct {
	Features Features
	Kind     stage.Kind
	TimeNS   float64
	// Dataset records provenance for leave-one-out generalisation
	// experiments (paper §VII-G).
	Dataset string
}

// ProfileWorkload runs the timing model on one workload configuration
// and emits one sample per stage.
func ProfileWorkload(cfg stage.Config) []Sample {
	stages := stage.Build(cfg)
	samples := make([]Sample, 0, len(stages))
	for _, s := range stages {
		samples = append(samples, Sample{
			Features: Extract(cfg, s.Layer),
			Kind:     s.Kind,
			TimeNS:   s.TimeNS,
			Dataset:  cfg.Dataset.Name,
		})
	}
	return samples
}

// SplitTrainTest partitions samples deterministically by index hash
// into train and test sets with the given test fraction (paper: 8:2).
func SplitTrainTest(samples []Sample, testFrac float64) (train, test []Sample) {
	if testFrac < 0 || testFrac > 1 {
		panic(fmt.Sprintf("predictor: test fraction %v out of [0,1]", testFrac))
	}
	period := 1.0
	if testFrac > 0 {
		period = 1 / testFrac
	}
	var acc float64
	for _, s := range samples {
		acc += 1
		if testFrac > 0 && acc >= period {
			acc -= period
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}
	return train, test
}
