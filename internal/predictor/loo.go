package predictor

import (
	"gopim/internal/graphgen"
	"gopim/internal/parallel"
)

// LOOFold is one leave-one-out generalisation fold: the predictor is
// trained on every catalog dataset except Dataset and evaluated on
// Dataset's profile samples (paper §VII-G).
type LOOFold struct {
	Dataset string
	// Accuracy is 1 − mean relative error, clamped at 0.
	Accuracy    float64
	TestSamples int
}

// LeaveOneOut runs one fold per entry of folds: train on spec with
// every dataset of catalog except the held-out one, test on the
// held-out one. Folds are independent (each derives its own profile
// streams from spec.Seed) and run concurrently; results come back in
// fold order, so the sweep is deterministic at any worker count.
func LeaveOneOut(spec ProfileSpec, catalog, folds []graphgen.Dataset) []LOOFold {
	return parallel.Map(len(folds), func(i int) LOOFold {
		heldOut := folds[i]
		trainSpec := spec
		trainSpec.Datasets = nil
		for _, d := range catalog {
			if d.Name != heldOut.Name {
				trainSpec.Datasets = append(trainSpec.Datasets, d)
			}
		}
		testSpec := spec
		testSpec.Datasets = []graphgen.Dataset{heldOut}

		p := NewTimePredictor()
		p.Train(Generate(trainSpec))
		test := Generate(testSpec)
		acc := 1 - p.MeanRelativeError(test)
		if acc < 0 {
			acc = 0
		}
		return LOOFold{Dataset: heldOut.Name, Accuracy: acc, TestSamples: len(test)}
	})
}
