package predictor

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gopim/internal/mlp"
	"gopim/internal/tensor"
)

// Regressor is a single-output regression model. Implementations
// mirror the scikit-learn families the paper benchmarks in Fig. 9.
type Regressor interface {
	Name() string
	// Fit trains on rows X with targets y.
	Fit(X [][]float64, y []float64)
	// Predict returns the model output for one row.
	Predict(x []float64) float64
}

// ---------------------------------------------------------------------------
// Standardisation helper shared by the numeric models.

type scaler struct {
	mean, std []float64
}

func fitScaler(X [][]float64) *scaler {
	if len(X) == 0 {
		return &scaler{}
	}
	d := len(X[0])
	s := &scaler{mean: make([]float64, d), std: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= float64(len(X))
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / float64(len(X)))
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
	return s
}

func (s *scaler) apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

// ---------------------------------------------------------------------------
// Linear least squares ("LR") and Bayesian ridge ("BR").

// Linear is ridge-regularised linear least squares, solved by Gaussian
// elimination on the normal equations. With Lambda ≈ 0 it is ordinary
// least squares (the paper's "LR" baseline); with Lambda = 1 it is the
// ridge/Bayesian-ridge family ("BR").
type Linear struct {
	ModelName string
	Lambda    float64

	scale *scaler
	w     []float64 // weights, last entry is the intercept
}

// NewLinear returns an OLS regressor (λ = 1e-8).
func NewLinear() *Linear { return &Linear{ModelName: "LR", Lambda: 1e-8} }

// NewBayesianRidge returns a ridge regressor (λ = 1).
func NewBayesianRidge() *Linear { return &Linear{ModelName: "BR", Lambda: 1} }

func (l *Linear) Name() string { return l.ModelName }

func (l *Linear) Fit(X [][]float64, y []float64) {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("predictor: linear fit with %d rows, %d targets", len(X), len(y)))
	}
	l.scale = fitScaler(X)
	d := len(X[0]) + 1 // + intercept
	// Normal equations A w = b with A = XᵀX + λI.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
	}
	b := make([]float64, d)
	row := make([]float64, d)
	for i, xr := range X {
		sx := l.scale.apply(xr)
		copy(row, sx)
		row[d-1] = 1
		for p := 0; p < d; p++ {
			for q := 0; q < d; q++ {
				a[p][q] += row[p] * row[q]
			}
			b[p] += row[p] * y[i]
		}
	}
	for p := 0; p < d; p++ {
		a[p][p] += l.Lambda
	}
	l.w = solveGauss(a, b)
}

func (l *Linear) Predict(x []float64) float64 {
	sx := l.scale.apply(x)
	out := l.w[len(l.w)-1]
	for j, v := range sx {
		out += l.w[j] * v
	}
	return out
}

// solveGauss solves a·x = b in place with partial pivoting.
func solveGauss(a [][]float64, b []float64) []float64 {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		if a[col][col] == 0 {
			continue // singular direction; ridge term normally prevents this
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		if a[r][r] != 0 {
			x[r] = sum / a[r][r]
		}
	}
	return x
}

// ---------------------------------------------------------------------------
// CART regression tree ("DT").

// Tree is a CART regression tree grown by variance reduction.
type Tree struct {
	MaxDepth   int
	MinLeaf    int
	Thresholds int // candidate thresholds per feature (quantiles)

	root *treeNode
}

type treeNode struct {
	feature   int
	threshold float64
	value     float64
	left      *treeNode
	right     *treeNode
}

// NewTree returns a depth-8 CART regressor.
func NewTree() *Tree { return &Tree{MaxDepth: 8, MinLeaf: 4, Thresholds: 24} }

func (t *Tree) Name() string { return "DT" }

func (t *Tree) Fit(X [][]float64, y []float64) {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("predictor: tree fit with %d rows, %d targets", len(X), len(y)))
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(X, y, idx, 0)
}

func mean(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sse(y []float64, idx []int) float64 {
	m := mean(y, idx)
	var s float64
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func (t *Tree) grow(X [][]float64, y []float64, idx []int, depth int) *treeNode {
	node := &treeNode{value: mean(y, idx)}
	if depth >= t.MaxDepth || len(idx) < 2*t.MinLeaf {
		return node
	}
	parentSSE := sse(y, idx)
	bestGain := 1e-12
	bestFeat, bestThr := -1, 0.0
	nf := len(X[0])
	vals := make([]float64, len(idx))
	for f := 0; f < nf; f++ {
		for i, id := range idx {
			vals[i] = X[id][f]
		}
		sort.Float64s(vals)
		for k := 1; k <= t.Thresholds; k++ {
			thr := vals[k*(len(vals)-1)/(t.Thresholds+1)]
			var left, right []int
			for _, id := range idx {
				if X[id][f] <= thr {
					left = append(left, id)
				} else {
					right = append(right, id)
				}
			}
			if len(left) < t.MinLeaf || len(right) < t.MinLeaf {
				continue
			}
			gain := parentSSE - sse(y, left) - sse(y, right)
			if gain > bestGain {
				bestGain, bestFeat, bestThr = gain, f, thr
			}
		}
	}
	if bestFeat < 0 {
		return node
	}
	var left, right []int
	for _, id := range idx {
		if X[id][bestFeat] <= bestThr {
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	node.feature = bestFeat
	node.threshold = bestThr
	node.left = t.grow(X, y, left, depth+1)
	node.right = t.grow(X, y, right, depth+1)
	return node
}

func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	for n.left != nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// ---------------------------------------------------------------------------
// Gradient-boosted trees ("XGB").

// GBT is gradient boosting with squared loss over shallow CART trees —
// the XGBoost family of the paper's comparison.
type GBT struct {
	Rounds    int
	Depth     int
	Shrinkage float64

	base  float64
	trees []*Tree
}

// NewGBT returns a 60-round, depth-4, 0.15-shrinkage booster.
func NewGBT() *GBT { return &GBT{Rounds: 60, Depth: 4, Shrinkage: 0.15} }

func (g *GBT) Name() string { return "XGB" }

func (g *GBT) Fit(X [][]float64, y []float64) {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("predictor: gbt fit with %d rows, %d targets", len(X), len(y)))
	}
	g.trees = nil
	var s float64
	for _, v := range y {
		s += v
	}
	g.base = s / float64(len(y))
	resid := make([]float64, len(y))
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = g.base
	}
	for r := 0; r < g.Rounds; r++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		t := &Tree{MaxDepth: g.Depth, MinLeaf: 3, Thresholds: 16}
		t.Fit(X, resid)
		g.trees = append(g.trees, t)
		for i := range pred {
			pred[i] += g.Shrinkage * t.Predict(X[i])
		}
	}
}

func (g *GBT) Predict(x []float64) float64 {
	out := g.base
	for _, t := range g.trees {
		out += g.Shrinkage * t.Predict(x)
	}
	return out
}

// ---------------------------------------------------------------------------
// Linear ε-insensitive support vector regression ("SVR").

// SVR is linear support vector regression trained by stochastic
// sub-gradient descent on the ε-insensitive loss with L2 regularisation.
type SVR struct {
	Epsilon float64
	C       float64
	Epochs  int
	LR      float64
	Seed    int64

	scale *scaler
	w     []float64
	b     float64
}

// NewSVR returns an SVR with ε = 0.01 and C = 10.
func NewSVR() *SVR { return &SVR{Epsilon: 0.01, C: 10, Epochs: 200, LR: 0.01} }

func (s *SVR) Name() string { return "SVR" }

func (s *SVR) Fit(X [][]float64, y []float64) {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("predictor: svr fit with %d rows, %d targets", len(X), len(y)))
	}
	s.scale = fitScaler(X)
	d := len(X[0])
	s.w = make([]float64, d)
	s.b = 0
	rng := rand.New(rand.NewSource(s.Seed + 1))
	idx := rng.Perm(len(X))
	lambda := 1 / (s.C * float64(len(X)))
	for e := 0; e < s.Epochs; e++ {
		lr := s.LR / (1 + 0.01*float64(e))
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			x := s.scale.apply(X[i])
			pred := s.b
			for j, v := range x {
				pred += s.w[j] * v
			}
			err := pred - y[i]
			var sign float64
			switch {
			case err > s.Epsilon:
				sign = 1
			case err < -s.Epsilon:
				sign = -1
			}
			for j, v := range x {
				s.w[j] -= lr * (lambda*s.w[j] + sign*v)
			}
			s.b -= lr * sign
		}
	}
}

func (s *SVR) Predict(x []float64) float64 {
	sx := s.scale.apply(x)
	out := s.b
	for j, v := range sx {
		out += s.w[j] * v
	}
	return out
}

// ---------------------------------------------------------------------------
// MLP regressor (the paper's chosen predictor).

// MLP wraps the mlp package as a Regressor with internal feature
// standardisation. Hidden lists the hidden-layer widths, so
// Hidden = {256} is the paper's three-layer 10-256-1 predictor and
// deeper/wider variants reproduce Figs. 9(b) and 9(c).
type MLP struct {
	Hidden []int
	Epochs int
	Batch  int
	LR     float64
	Seed   int64

	scale *scaler
	net   *mlp.Net
}

// NewMLP returns the paper's predictor: one hidden layer of 256
// neurons.
func NewMLP() *MLP { return &MLP{Hidden: []int{256}, Epochs: 450, Batch: 16, LR: 1e-3} }

func (m *MLP) Name() string {
	return fmt.Sprintf("MLP%dx", len(m.Hidden)+2)
}

// MemoKey fingerprints everything Fit's outcome depends on, so memo
// keys built from it collapse sweep axes that reach the same network:
// Fig. 9's family "MLP", depth-3 and width-256 rows are all
// NewMLP() and train once instead of three times.
func (m *MLP) MemoKey() string {
	return fmt.Sprintf("mlp:h=%v,e=%d,b=%d,lr=%g,seed=%d", m.Hidden, m.Epochs, m.Batch, m.LR, m.Seed)
}

func (m *MLP) Fit(X [][]float64, y []float64) {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("predictor: mlp fit with %d rows, %d targets", len(X), len(y)))
	}
	m.scale = fitScaler(X)
	rng := rand.New(rand.NewSource(m.Seed + 7))
	sizes := append([]int{len(X[0])}, m.Hidden...)
	sizes = append(sizes, 1)
	m.net = mlp.New(rng, sizes...)
	xs := tensor.New(len(X), len(X[0]))
	ys := tensor.New(len(y), 1)
	for i, row := range X {
		xs.SetRow(i, m.scale.apply(row))
		ys.Set(i, 0, y[i])
	}
	// Step learning-rate decay: three phases at lr, lr/3, lr/10.
	for _, decay := range []float64{1, 3, 10} {
		m.net.Fit(rng, mlp.NewAdam(m.LR/decay), xs, ys, m.Epochs/3, m.Batch)
	}
}

func (m *MLP) Predict(x []float64) float64 {
	return m.net.Predict(m.scale.apply(x))[0]
}
