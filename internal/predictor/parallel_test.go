package predictor

import (
	"testing"

	"gopim/internal/parallel"
)

func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(0)
	f()
}

// TestGenerateDeterministicAcrossWorkers pins the profile-generation
// determinism contract: every (dataset, scale) unit derives its own
// RNG stream from the spec seed, so the sample list is identical
// whether units run serially or fan out.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	var base []Sample
	withWorkers(t, 1, func() { base = Generate(testSpec()) })
	for _, w := range []int{2, 8} {
		withWorkers(t, w, func() {
			got := Generate(testSpec())
			if len(got) != len(base) {
				t.Fatalf("workers=%d: %d samples vs %d", w, len(got), len(base))
			}
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("workers=%d: sample %d = %+v, serial %+v", w, i, got[i], base[i])
				}
			}
		})
	}
}

// TestRMSEDeterministicAcrossWorkers trains the cheap linear family on
// worker-count-independent profiles and checks the RMSE is bit-equal
// across worker counts — the predictor-level determinism guarantee.
func TestRMSEDeterministicAcrossWorkers(t *testing.T) {
	rmseAt := func(w int) float64 {
		var rmse float64
		withWorkers(t, w, func() {
			samples := Generate(testSpec())
			train, test := SplitTrainTest(samples, 0.2)
			rmse = ModelRMSE(func() Regressor { return NewLinear() }, train, test)
		})
		return rmse
	}
	base := rmseAt(1)
	if base <= 0 {
		t.Fatalf("degenerate baseline RMSE %v", base)
	}
	for _, w := range []int{2, 8} {
		if got := rmseAt(w); got != base {
			t.Fatalf("workers=%d: RMSE %v, serial %v", w, got, base)
		}
	}
}

// TestLeaveOneOutShape checks the parallel fold sweep covers each fold
// once, in order, with sane accuracies.
func TestLeaveOneOutShape(t *testing.T) {
	spec := testSpec()
	catalog := spec.Datasets
	spec.Datasets = nil
	folds := LeaveOneOut(spec, catalog, catalog[:2])
	if len(folds) != 2 {
		t.Fatalf("got %d folds", len(folds))
	}
	for i, f := range folds {
		if f.Dataset != catalog[i].Name {
			t.Fatalf("fold %d = %s, want %s (input order)", i, f.Dataset, catalog[i].Name)
		}
		if f.Accuracy < 0 || f.Accuracy > 1 {
			t.Fatalf("fold %s accuracy %v out of [0,1]", f.Dataset, f.Accuracy)
		}
		if f.TestSamples == 0 {
			t.Fatalf("fold %s has no test samples", f.Dataset)
		}
	}
}
