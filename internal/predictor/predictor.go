package predictor

import (
	"fmt"
	"math"

	"gopim/internal/obs"
	"gopim/internal/parallel"
	"gopim/internal/simmemo"
	"gopim/internal/stage"
)

// Training metrics: call and sample counts depend only on what callers
// submit, so they are Sim-clock; fit time is Wall.
var (
	mTrainCalls = obs.NewCounter("predictor.train_calls", obs.Sim,
		"TimePredictor.Train invocations")
	mTrainSamples = obs.NewCounter("predictor.train_samples", obs.Sim,
		"samples consumed across all Train calls")
	mTrainTime = obs.NewTimer("predictor.train_ns",
		"wall time per Train call")
)

// TimePredictor predicts per-stage execution times from Table I
// features. One regressor is trained per stage kind (CO, AG, LC, GC)
// on log-scaled, min-max-normalised targets — stage times span four
// orders of magnitude, and the paper's RMSE (≈0.002) is only
// meaningful on a normalised scale.
type TimePredictor struct {
	// NewModel constructs the regressor family used for each stage
	// kind; defaults to the paper's MLP.
	NewModel func() Regressor

	models map[stage.Kind]Regressor
	lo, hi map[stage.Kind]float64 // log-target normalisation bounds
}

// NewTimePredictor returns an untrained predictor using the paper's
// 3-layer MLP family.
func NewTimePredictor() *TimePredictor {
	return &TimePredictor{NewModel: func() Regressor { return NewMLP() }}
}

// logFeatures maps a Table I feature vector to log space: stage times
// are products of dimensional quantities, so log features make the
// relationship near-linear and learnable by every model family. The
// sparsity feature is the exception — its information lives in the
// density 1−s, which spans six orders of magnitude across the catalog,
// so it enters as log density.
func logFeatures(f Features) []float64 {
	out := make([]float64, len(f))
	for i, v := range f {
		if i == FSparsity {
			out[i] = math.Log(1 - v + 1e-9)
			continue
		}
		out[i] = math.Log1p(v)
	}
	return out
}

// logNorm maps a time to normalised log space given bounds.
func logNorm(t, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	return (math.Log(t) - lo) / (hi - lo)
}

func logDenorm(v, lo, hi float64) float64 {
	return math.Exp(v*(hi-lo) + lo)
}

// Train fits one model per stage kind on the samples.
func (p *TimePredictor) Train(samples []Sample) {
	if len(samples) == 0 {
		panic("predictor: no training samples")
	}
	t0 := obs.NowIfEnabled()
	defer mTrainTime.ObserveSince(t0)
	mTrainCalls.Inc()
	mTrainSamples.Add(int64(len(samples)))
	if p.NewModel == nil {
		p.NewModel = func() Regressor { return NewMLP() }
	}
	byKind := map[stage.Kind][]Sample{}
	for _, s := range samples {
		if s.TimeNS <= 0 {
			panic(fmt.Sprintf("predictor: sample with non-positive time %v", s.TimeNS))
		}
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	p.models = map[stage.Kind]Regressor{}
	p.lo = map[stage.Kind]float64{}
	p.hi = map[stage.Kind]float64{}
	for kind, ss := range byKind {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range ss {
			l := math.Log(s.TimeNS)
			lo = math.Min(lo, l)
			hi = math.Max(hi, l)
		}
		if hi <= lo {
			hi = lo + 1
		}
		X := make([][]float64, len(ss))
		y := make([]float64, len(ss))
		for i, s := range ss {
			X[i] = logFeatures(s.Features)
			y[i] = logNorm(s.TimeNS, lo, hi)
		}
		m := p.NewModel()
		m.Fit(X, y)
		p.models[kind] = m
		p.lo[kind] = lo
		p.hi[kind] = hi
	}
}

// PredictSample returns the predicted time in nanoseconds for one
// feature vector and stage kind.
func (p *TimePredictor) PredictSample(f Features, kind stage.Kind) float64 {
	m, ok := p.models[kind]
	if !ok {
		panic(fmt.Sprintf("predictor: no model for stage kind %v", kind))
	}
	v := m.Predict(logFeatures(f))
	// Clamp to slightly beyond the training envelope: in normalised
	// log space, extrapolations explode exponentially on denorm, and a
	// stage time far outside everything ever profiled is never a
	// trustworthy prediction.
	if v < -0.25 {
		v = -0.25
	}
	if v > 1.25 {
		v = 1.25
	}
	return logDenorm(v, p.lo[kind], p.hi[kind])
}

// PredictTimes predicts the per-micro-batch time of every stage of a
// workload, in stage.Build order. This is the input GoPIM's resource
// allocator consumes (paper §V-B).
func (p *TimePredictor) PredictTimes(cfg stage.Config) []float64 {
	stages := stage.Build(cfg)
	out := make([]float64, len(stages))
	for i, s := range stages {
		out[i] = p.PredictSample(Extract(cfg, s.Layer), s.Kind)
	}
	return out
}

// RMSE computes the root-mean-square error of a predictor over test
// samples, measured in the normalised log-time space (comparable to
// the paper's 0.0022 figure).
func (p *TimePredictor) RMSE(test []Sample) float64 {
	if len(test) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, s := range test {
		m, ok := p.models[s.Kind]
		if !ok {
			continue
		}
		pred := m.Predict(logFeatures(s.Features))
		want := logNorm(s.TimeNS, p.lo[s.Kind], p.hi[s.Kind])
		d := pred - want
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// MeanRelativeError reports |pred−true|/true averaged over samples —
// the "prediction accuracy" metric of the paper's generalisation study
// is 1 − this value.
func (p *TimePredictor) MeanRelativeError(test []Sample) float64 {
	if len(test) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, s := range test {
		if _, ok := p.models[s.Kind]; !ok {
			continue
		}
		pred := p.PredictSample(s.Features, s.Kind)
		sum += math.Abs(pred-s.TimeNS) / s.TimeNS
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ModelRMSE trains a fresh predictor with the given model family on
// train and reports RMSE on test — one bar of paper Fig. 9(a).
func ModelRMSE(newModel func() Regressor, train, test []Sample) float64 {
	p := &TimePredictor{NewModel: newModel}
	p.Train(train)
	return p.RMSE(test)
}

// rmseCache memoizes ModelRMSECached bars. The model constructor is a
// func and cannot be fingerprinted, so the caller's key must encode the
// model variant along with whatever determines train/test.
var rmseCache = simmemo.NewCache("rmse", 256)

// rmseMemo carries the score plus the training-set size needed to
// replay Train's Sim counters on a cache hit.
type rmseMemo struct {
	rmse         float64
	trainSamples int
}

// ModelRMSECached is ModelRMSE memoized under a caller-provided key
// that must uniquely determine (newModel, train, test) — typically the
// profile-spec fingerprint plus the model variant name. An empty key
// opts out. A hit replays the train-call and sample counters, so Sim
// snapshots match the uncached path exactly.
func ModelRMSECached(key string, newModel func() Regressor, train, test []Sample) float64 {
	if key == "" {
		return ModelRMSE(newModel, train, test)
	}
	out, hit := simmemo.DoOutcome(rmseCache, key, func() *rmseMemo {
		return &rmseMemo{rmse: ModelRMSE(newModel, train, test), trainSamples: len(train)}
	})
	if hit {
		mTrainCalls.Inc()
		mTrainSamples.Add(int64(out.trainSamples))
	}
	return out.rmse
}

// VariantKey returns the memo-key suffix for one sweep variant: the
// constructed model's own configuration fingerprint when it provides
// one (MemoKey), else the sweep label. Canonical fingerprints are what
// let different sweep axes that name the same configuration share a
// single ModelRMSE computation; constructing the model here is cheap
// (no training happens until Fit).
func VariantKey(label string, newModel func() Regressor) string {
	if k, ok := newModel().(interface{ MemoKey() string }); ok {
		return k.MemoKey()
	}
	return label
}

// Fig9Models returns the model families of paper Fig. 9(a) keyed by
// their display names, in the paper's order.
func Fig9Models() []struct {
	Name string
	New  func() Regressor
} {
	return []struct {
		Name string
		New  func() Regressor
	}{
		{"MLP", func() Regressor { return NewMLP() }},
		{"XGB", func() Regressor { return NewGBT() }},
		{"SVR", func() Regressor { return NewSVR() }},
		{"DT", func() Regressor { return NewTree() }},
		{"LR", func() Regressor { return NewLinear() }},
		{"BR", func() Regressor { return NewBayesianRidge() }},
	}
}

// MLPWithDepth builds the Fig. 9(b) variants: total layer count
// `layers` (2–6) with 256-wide hidden layers.
func MLPWithDepth(layers int) *MLP {
	if layers < 2 {
		panic(fmt.Sprintf("predictor: MLP needs ≥ 2 layers, got %d", layers))
	}
	hidden := make([]int, layers-2)
	for i := range hidden {
		hidden[i] = 256
	}
	m := NewMLP()
	m.Hidden = hidden
	return m
}

// MLPWithWidth builds the Fig. 9(c) variants: a three-layer MLP with
// the given hidden width.
func MLPWithWidth(width int) *MLP {
	if width < 1 {
		panic(fmt.Sprintf("predictor: width %d must be positive", width))
	}
	m := NewMLP()
	m.Hidden = []int{width}
	return m
}

// FeatureAblation reproduces the paper's §V-A feature-selection study:
// re-train the predictor with one Table I feature blinded at a time
// (replaced by a constant, so the model cannot use it) and report the
// test RMSE for each ablation alongside the full-feature baseline.
// A large RMSE jump means the feature must be kept.
// Each per-feature retrain is independent (models seed themselves), so
// the sweep fans out across workers with results in feature order.
func FeatureAblation(newModel func() Regressor, train, test []Sample) (baseline float64, ablated [NumFeatures]float64) {
	baseline = ModelRMSE(newModel, train, test)
	res := parallel.Map(NumFeatures, func(f int) float64 {
		return ModelRMSE(newModel, blindFeature(train, f), blindFeature(test, f))
	})
	copy(ablated[:], res)
	return baseline, ablated
}

// BlindFeatures zeroes the given features in a copy of the samples —
// useful for group ablations, since several Table I features carry the
// same quantity (e.g. the graph size appears as both C_A_AG and
// R_E_AG) and only blinding the whole group removes the information.
func BlindFeatures(samples []Sample, feats ...int) []Sample {
	out := make([]Sample, len(samples))
	copy(out, samples)
	for i := range out {
		for _, f := range feats {
			out[i].Features[f] = 0
		}
	}
	return out
}

func blindFeature(samples []Sample, f int) []Sample {
	return BlindFeatures(samples, f)
}
