package predictor

import (
	"math"
	"math/rand"
	"testing"

	"gopim/internal/graphgen"
	"gopim/internal/reram"
	"gopim/internal/stage"
)

func testSpec() ProfileSpec {
	return ProfileSpec{
		Chip:         reram.DefaultChip(),
		Datasets:     mustDatasets("ddi", "collab", "Cora"),
		Scales:       []float64{0.2, 1.0},
		HiddenWidths: []int{64, 256},
		MicroBatches: []int{32, 64},
		MaxVertices:  20_000,
		Seed:         1,
	}
}

func mustDatasets(names ...string) []graphgen.Dataset {
	out := make([]graphgen.Dataset, 0, len(names))
	for _, n := range names {
		d, err := graphgen.ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, d)
	}
	return out
}

func TestExtractFeatures(t *testing.T) {
	d, _ := graphgen.ByName("arxiv")
	deg := graphgen.NewDegreeModel(make([]float64, 1000))
	cfg := stage.Config{Chip: reram.DefaultChip(), Dataset: d, Deg: deg, MicroBatch: 64}
	f := Extract(cfg, 1)
	if f[FRIFMCO] != 64 || f[FCIFMCO] != 128 {
		t.Fatalf("CO input features wrong: %v", f)
	}
	if f[FRECO] != 128 || f[FCECO] != 256 {
		t.Fatalf("CO weight features wrong: %v", f)
	}
	if f[FRAAG] != 64 || f[FCAAG] != 1000 || f[FREAG] != 1000 || f[FCEAG] != 256 {
		t.Fatalf("AG features wrong: %v", f)
	}
	if f[FSparsity] != 1 { // zero-degree model has no edges
		t.Fatalf("sparsity = %v, want 1", f[FSparsity])
	}
	if f[FLayer] != 1 {
		t.Fatalf("layer feature = %v", f[FLayer])
	}
	f3 := Extract(cfg, 3)
	if f3[FCECO] != 40 || f3[FLayer] != 3 {
		t.Fatalf("layer-3 features wrong: %v", f3)
	}
	if len(FeatureNames()) != NumFeatures {
		t.Fatal("feature name list out of sync")
	}
}

func TestProfileWorkload(t *testing.T) {
	d, _ := graphgen.ByName("ddi")
	cfg := stage.Config{
		Chip:       reram.DefaultChip(),
		Dataset:    d,
		Deg:        d.SynthDegreeModel(1),
		MicroBatch: 64,
	}
	samples := ProfileWorkload(cfg)
	if len(samples) != 8 { // 2-layer model → 4·2 stages
		t.Fatalf("got %d samples, want 8", len(samples))
	}
	kinds := map[stage.Kind]int{}
	for _, s := range samples {
		kinds[s.Kind]++
		if s.TimeNS <= 0 {
			t.Fatal("sample time must be positive")
		}
		if s.Dataset != "ddi" {
			t.Fatal("provenance missing")
		}
	}
	for _, k := range []stage.Kind{stage.Combination, stage.Aggregation, stage.LossCalc, stage.GradCompute} {
		if kinds[k] != 2 {
			t.Fatalf("kind %v has %d samples, want 2", k, kinds[k])
		}
	}
}

func TestGenerateSweepsAxes(t *testing.T) {
	samples := Generate(testSpec())
	// 3 datasets × 2 scales × 2 widths × 2 mbs, ddi has 8 stages and
	// the 3-layer models 12.
	want := 2 * 2 * 2 * (8 + 12 + 12)
	if len(samples) != want {
		t.Fatalf("got %d samples, want %d", len(samples), want)
	}
	// Determinism.
	again := Generate(testSpec())
	for i := range samples {
		if samples[i] != again[i] {
			t.Fatal("profile generation must be deterministic")
		}
	}
}

func TestSplitTrainTest(t *testing.T) {
	samples := make([]Sample, 100)
	train, test := SplitTrainTest(samples, 0.2)
	if len(test) != 20 || len(train) != 80 {
		t.Fatalf("split sizes %d/%d, want 80/20", len(train), len(test))
	}
	train, test = SplitTrainTest(samples, 0)
	if len(test) != 0 || len(train) != 100 {
		t.Fatal("zero test fraction should keep everything in train")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SplitTrainTest(samples, 1.5)
}

// Regression fixture: y = 3x₀ − 2x₁ + 5 with noise-free data.
func linearData(rng *rand.Rand, n int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		y[i] = 3*X[i][0] - 2*X[i][1] + 5
	}
	return X, y
}

func TestLinearFitsExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := linearData(rng, 200)
	for _, m := range []Regressor{NewLinear(), NewBayesianRidge()} {
		m.Fit(X, y)
		pred := m.Predict([]float64{4, 7})
		want := 3.0*4 - 2*7 + 5
		tol := 0.02
		if m.Name() == "BR" {
			tol = 1.0 // ridge shrinks coefficients slightly
		}
		if math.Abs(pred-want) > tol {
			t.Fatalf("%s predict = %v, want %v", m.Name(), pred, want)
		}
	}
}

func TestSVRFitsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := linearData(rng, 300)
	// Normalise targets to the scale SVR's unit learning rate expects.
	var max float64
	for _, v := range y {
		max = math.Max(max, math.Abs(v))
	}
	yn := make([]float64, len(y))
	for i, v := range y {
		yn[i] = v / max
	}
	m := NewSVR()
	m.Fit(X, yn)
	var sse, n float64
	for i := range X {
		d := m.Predict(X[i]) - yn[i]
		sse += d * d
		n++
	}
	if rmse := math.Sqrt(sse / n); rmse > 0.05 {
		t.Fatalf("SVR train RMSE = %v, want < 0.05", rmse)
	}
}

// Nonlinear fixture: tree-family models must beat linear ones.
func TestTreeFamiliesBeatLinearOnNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := rng.Float64()*4-2, rng.Float64()*4-2
		X[i] = []float64{a, b}
		y[i] = a * b // multiplicative interaction
	}
	rmse := func(m Regressor) float64 {
		m.Fit(X, y)
		var s float64
		for i := range X {
			d := m.Predict(X[i]) - y[i]
			s += d * d
		}
		return math.Sqrt(s / float64(n))
	}
	lin := rmse(NewLinear())
	dt := rmse(NewTree())
	gbt := rmse(NewGBT())
	if dt >= lin || gbt >= lin {
		t.Fatalf("trees (dt=%v gbt=%v) should beat linear (%v) on x·y", dt, gbt, lin)
	}
	if gbt >= dt {
		t.Fatalf("boosting (%v) should beat a single tree (%v)", gbt, dt)
	}
}

func TestRegressorValidation(t *testing.T) {
	for _, m := range []Regressor{NewLinear(), NewTree(), NewGBT(), NewSVR(), NewMLP()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic on empty fit", m.Name())
				}
			}()
			m.Fit(nil, nil)
		}()
	}
}

func TestTimePredictorEndToEnd(t *testing.T) {
	samples := Generate(testSpec())
	train, test := SplitTrainTest(samples, 0.2)

	p := NewTimePredictor()
	p.Train(train)

	rmse := p.RMSE(test)
	if rmse <= 0 || rmse > 0.2 {
		t.Fatalf("test RMSE = %v, want a small positive value", rmse)
	}
	if mre := p.MeanRelativeError(test); mre > 1.5 {
		t.Fatalf("mean relative error = %v, too large", mre)
	}

	// PredictTimes must align with stage.Build.
	d, _ := graphgen.ByName("ddi")
	cfg := stage.Config{
		Chip:       reram.DefaultChip(),
		Dataset:    d,
		Deg:        d.SynthDegreeModel(1),
		MicroBatch: 64,
	}
	times := p.PredictTimes(cfg)
	stages := stage.Build(cfg)
	if len(times) != len(stages) {
		t.Fatalf("%d predictions for %d stages", len(times), len(stages))
	}
	for i, pred := range times {
		if pred <= 0 {
			t.Fatalf("stage %s predicted %v", stages[i].Name, pred)
		}
		ratio := pred / stages[i].TimeNS
		if ratio < 0.05 || ratio > 20 {
			t.Fatalf("stage %s: predicted %v vs true %v (ratio %v)",
				stages[i].Name, pred, stages[i].TimeNS, ratio)
		}
	}
	// The predictor must capture the paper's key structure: AG ≫ CO.
	var co, ag float64
	for i, s := range stages {
		if s.Name == "CO1" {
			co = times[i]
		}
		if s.Name == "AG1" {
			ag = times[i]
		}
	}
	if ag <= 3*co {
		t.Fatalf("predicted AG (%v) should dwarf CO (%v)", ag, co)
	}
}

func TestTimePredictorValidation(t *testing.T) {
	p := NewTimePredictor()
	mustPanicP(t, func() { p.Train(nil) })
	mustPanicP(t, func() {
		p.Train([]Sample{{TimeNS: -1, Kind: stage.Combination}})
	})
	mustPanicP(t, func() { p.PredictSample(Features{}, stage.Combination) })
}

func mustPanicP(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestMLPVariantBuilders(t *testing.T) {
	m := MLPWithDepth(4)
	if len(m.Hidden) != 2 || m.Hidden[0] != 256 {
		t.Fatalf("depth-4 hidden = %v", m.Hidden)
	}
	if MLPWithDepth(2).Hidden == nil {
		// depth 2 = input→output, no hidden layers: empty but non-nil
		// is not required, just must not panic and must train.
	}
	w := MLPWithWidth(32)
	if len(w.Hidden) != 1 || w.Hidden[0] != 32 {
		t.Fatalf("width variant hidden = %v", w.Hidden)
	}
	mustPanicP(t, func() { MLPWithDepth(1) })
	mustPanicP(t, func() { MLPWithWidth(0) })
}

func TestFig9ModelsList(t *testing.T) {
	models := Fig9Models()
	if len(models) != 6 {
		t.Fatalf("want 6 model families, got %d", len(models))
	}
	if models[0].Name != "MLP" {
		t.Fatal("MLP must lead the list")
	}
	for _, m := range models {
		r := m.New()
		if r == nil {
			t.Fatalf("%s constructor returned nil", m.Name)
		}
	}
}

// The §V-A feature-selection procedure. Table I deliberately carries
// every dimensional quantity twice (the graph size is both C_A_AG and
// R_E_AG, the micro-batch both R_IFM_CO and R_A_AG, …), so blinding
// any single feature must be absorbed — while blinding the graph-size
// *group* must hurt.
func TestFeatureAblation(t *testing.T) {
	samples := Generate(testSpec())
	train, test := SplitTrainTest(samples, 0.2)
	// Use the cheap linear model: the effect is about information
	// content, not model capacity, and it keeps the test fast.
	newModel := func() Regressor { return NewLinear() }
	baseline, ablated := FeatureAblation(newModel, train, test)
	if baseline <= 0 {
		t.Fatalf("baseline RMSE = %v", baseline)
	}
	for f, r := range ablated {
		if r <= 0 {
			t.Fatalf("ablated RMSE for feature %d = %v", f, r)
		}
		// Redundancy: no single blinding should more than double RMSE.
		if r > baseline*2 {
			t.Fatalf("feature %s is irreplaceable alone (%v vs %v) — Table I duplication broken",
				FeatureNames()[f], r, baseline)
		}
	}
	// Group ablation: removing the graph size entirely must hurt.
	p := &TimePredictor{NewModel: newModel}
	p.Train(BlindFeatures(train, FCAAG, FREAG))
	blindRMSE := p.RMSE(BlindFeatures(test, FCAAG, FREAG))
	// Only the AG/LC stage models depend on graph size, so the pooled
	// RMSE rises by a diluted but clear margin.
	if blindRMSE < baseline*1.15 {
		t.Fatalf("blinding the graph-size group should hurt: %v vs baseline %v", blindRMSE, baseline)
	}
}
