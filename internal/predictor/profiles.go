package predictor

import (
	"math/rand"

	"gopim/internal/graphgen"
	"gopim/internal/reram"
	"gopim/internal/stage"
)

// ProfileSpec controls synthetic profile-dataset generation. The paper
// collects ~2 200 samples by running six workloads for 30 epochs; we
// sweep the same axes (dataset, graph scale, hidden width, micro-batch
// size) through the timing model directly.
type ProfileSpec struct {
	Chip reram.Chip
	// Datasets to profile; defaults to the full catalog.
	Datasets []graphgen.Dataset
	// Scales shrink each dataset's vertex count; defaults to
	// {0.1, 0.3, 1.0} capped at MaxVertices.
	Scales []float64
	// HiddenWidths override Table IV's hidden channels; defaults to
	// {64, 128, 256, 512}.
	HiddenWidths []int
	// MicroBatches to sweep; defaults to {16, 32, 64, 128, 256}.
	MicroBatches []int
	// MaxVertices caps the degree-model size for generation speed;
	// defaults to 300 000.
	MaxVertices int
	// NoiseFrac adds multiplicative measurement jitter to the recorded
	// stage times (the paper's profiles are real measurements, not
	// analytic values); defaults to 2%. Negative disables.
	NoiseFrac float64
	Seed      int64
}

func (s *ProfileSpec) defaults() {
	if s.Datasets == nil {
		s.Datasets = graphgen.Catalog()
	}
	if s.Scales == nil {
		s.Scales = []float64{0.1, 0.3, 1.0}
	}
	if s.HiddenWidths == nil {
		s.HiddenWidths = []int{64, 128, 256, 512}
	}
	if s.MicroBatches == nil {
		s.MicroBatches = []int{16, 32, 64, 128, 256}
	}
	if s.MaxVertices == 0 {
		s.MaxVertices = 300_000
	}
	if s.NoiseFrac == 0 {
		s.NoiseFrac = 0.02
	}
	if s.NoiseFrac < 0 {
		s.NoiseFrac = 0
	}
	if s.Chip.Tiles == 0 {
		s.Chip = reram.DefaultChip()
	}
}

// Generate produces the profile dataset by sweeping the spec's axes
// through the timing simulator.
func Generate(spec ProfileSpec) []Sample {
	spec.defaults()
	var samples []Sample
	rng := rand.New(rand.NewSource(spec.Seed))
	for _, d := range spec.Datasets {
		for _, scale := range spec.Scales {
			n := int(float64(d.PaperVertices) * scale)
			if n > spec.MaxVertices {
				n = spec.MaxVertices
			}
			if n < 64 {
				n = 64
			}
			deg := graphgen.NewDegreeModel(
				graphgen.PowerLawWeights(rng, n, d.PaperAvgDeg, graphgen.PowerLawAlpha))
			for _, hidden := range spec.HiddenWidths {
				ds := d
				ds.HiddenCh = hidden
				for _, mb := range spec.MicroBatches {
					cfg := stage.Config{
						Chip:       spec.Chip,
						Dataset:    ds,
						Deg:        deg,
						MicroBatch: mb,
					}
					ws := ProfileWorkload(cfg)
					for i := range ws {
						ws[i].TimeNS *= 1 + spec.NoiseFrac*rng.NormFloat64()
						if ws[i].TimeNS <= 0 {
							ws[i].TimeNS = 1
						}
					}
					samples = append(samples, ws...)
				}
			}
		}
	}
	return samples
}
