package predictor

import (
	"fmt"
	"math/rand"

	"gopim/internal/graphgen"
	"gopim/internal/obs"
	"gopim/internal/parallel"
	"gopim/internal/reram"
	"gopim/internal/simmemo"
	"gopim/internal/stage"
)

// Profile-generation metrics: unit and sample counts are functions of
// the spec alone (noise perturbs sample values, never how many there
// are), so both are Sim-clock.
var (
	mProfileUnits = obs.NewCounter("predictor.profile_units", obs.Sim,
		"(dataset, scale) profile units generated")
	mProfileSamples = obs.NewCounter("predictor.profile_samples", obs.Sim,
		"profile samples generated across all units")
)

// ProfileSpec controls synthetic profile-dataset generation. The paper
// collects ~2 200 samples by running six workloads for 30 epochs; we
// sweep the same axes (dataset, graph scale, hidden width, micro-batch
// size) through the timing model directly.
type ProfileSpec struct {
	Chip reram.Chip
	// Datasets to profile; defaults to the full catalog.
	Datasets []graphgen.Dataset
	// Scales shrink each dataset's vertex count; defaults to
	// {0.1, 0.3, 1.0} capped at MaxVertices.
	Scales []float64
	// HiddenWidths override Table IV's hidden channels; defaults to
	// {64, 128, 256, 512}.
	HiddenWidths []int
	// MicroBatches to sweep; defaults to {16, 32, 64, 128, 256}.
	MicroBatches []int
	// MaxVertices caps the degree-model size for generation speed;
	// defaults to 300 000.
	MaxVertices int
	// NoiseFrac adds multiplicative measurement jitter to the recorded
	// stage times (the paper's profiles are real measurements, not
	// analytic values); defaults to 2%. Negative disables.
	NoiseFrac float64
	Seed      int64
}

func (s *ProfileSpec) defaults() {
	if s.Datasets == nil {
		s.Datasets = graphgen.Catalog()
	}
	if s.Scales == nil {
		s.Scales = []float64{0.1, 0.3, 1.0}
	}
	if s.HiddenWidths == nil {
		s.HiddenWidths = []int{64, 128, 256, 512}
	}
	if s.MicroBatches == nil {
		s.MicroBatches = []int{16, 32, 64, 128, 256}
	}
	if s.MaxVertices == 0 {
		s.MaxVertices = 300_000
	}
	if s.NoiseFrac == 0 {
		s.NoiseFrac = 0.02
	}
	if s.NoiseFrac < 0 {
		s.NoiseFrac = 0
	}
	if s.Chip.Tiles == 0 {
		s.Chip = reram.DefaultChip()
	}
}

// unitSeed derives the RNG seed of profile unit i from the spec seed
// with a splitmix64-style mix, so each (dataset, scale) unit owns an
// independent deterministic stream. Because the stream depends only on
// (spec.Seed, i) — never on which worker runs the unit or in what
// order — Generate's output is identical at any worker count.
func unitSeed(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// profileCache memoizes full profile sweeps by spec: the experiments
// driver and the shared-predictor path regenerate the same spec per
// sweep cell. The cached sample slice is shared — callers must treat
// Generate's result as read-only (the existing consumers already copy:
// SplitTrainTest and BlindFeatures build fresh slices).
var profileCache = simmemo.NewCache("profile", 64)

// profileMemo carries the sweep result plus the unit count needed to
// replay Generate's Sim counters on a cache hit.
type profileMemo struct {
	units   int
	samples []Sample
}

// Generate produces the profile dataset by sweeping the spec's axes
// through the timing simulator. Units — one per (dataset, scale) pair,
// covering that pair's full hidden-width × micro-batch sweep — run in
// parallel and are concatenated in sweep order, so the sample list is
// deterministic for a given seed regardless of worker count.
//
// Results are memoized by spec; the returned slice is shared across
// same-spec calls and must not be mutated.
func Generate(spec ProfileSpec) []Sample {
	spec.defaults()
	out := simmemo.Do(profileCache, fmt.Sprintf("%+v", spec), func() *profileMemo {
		units, samples := generateCore(spec)
		return &profileMemo{units: units, samples: samples}
	})
	mProfileUnits.Add(int64(out.units))
	mProfileSamples.Add(int64(len(out.samples)))
	return out.samples
}

// generateCore is the memoized body of Generate: a pure function of the
// defaulted spec, with the counter records hoisted to the caller.
func generateCore(spec ProfileSpec) (int, []Sample) {
	type unit struct {
		ds   graphgen.Dataset
		n    int
		seed int64
	}
	units := make([]unit, 0, len(spec.Datasets)*len(spec.Scales))
	for _, d := range spec.Datasets {
		for _, scale := range spec.Scales {
			n := int(float64(d.PaperVertices) * scale)
			if n > spec.MaxVertices {
				n = spec.MaxVertices
			}
			if n < 64 {
				n = 64
			}
			units = append(units, unit{ds: d, n: n, seed: unitSeed(spec.Seed, len(units))})
		}
	}
	perUnit := parallel.Map(len(units), func(i int) []Sample {
		u := units[i]
		rng := rand.New(rand.NewSource(u.seed))
		deg := graphgen.NewDegreeModel(
			graphgen.PowerLawWeights(rng, u.n, u.ds.PaperAvgDeg, graphgen.PowerLawAlpha))
		var samples []Sample
		for _, hidden := range spec.HiddenWidths {
			ds := u.ds
			ds.HiddenCh = hidden
			for _, mb := range spec.MicroBatches {
				cfg := stage.Config{
					Chip:       spec.Chip,
					Dataset:    ds,
					Deg:        deg,
					MicroBatch: mb,
				}
				ws := ProfileWorkload(cfg)
				for i := range ws {
					ws[i].TimeNS *= 1 + spec.NoiseFrac*rng.NormFloat64()
					if ws[i].TimeNS <= 0 {
						ws[i].TimeNS = 1
					}
				}
				samples = append(samples, ws...)
			}
		}
		return samples
	})
	var samples []Sample
	for _, s := range perUnit {
		samples = append(samples, s...)
	}
	return len(units), samples
}
