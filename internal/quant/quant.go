// Package quant models the fixed-point arithmetic a ReRAM crossbar
// imposes: values written to the array are quantised to WeightBits
// (Table II: 16-bit fixed point) and physically stored as BitsPerCell
// slices across multiple cells (2 bits per cell → 8 cells per value,
// one differential pair per cell for sign).
//
// The GCN training engine uses this package to quantise exactly the
// data the hardware quantises — weights after every gradient step and
// feature rows when they are (re)written to aggregation crossbars — so
// the accuracy experiments include the precision loss a real GoPIM
// chip would see.
package quant

import (
	"fmt"
	"math"

	"gopim/internal/tensor"
)

// Scheme is a symmetric uniform quantiser with the given total bit
// width (one bit of which encodes sign).
type Scheme struct {
	Bits  int
	Scale float64 // largest representable magnitude
}

// Fit builds a scheme covering [-maxAbs, maxAbs] with the given bits.
// maxAbs of zero yields a degenerate scheme that maps everything to 0.
func Fit(bits int, maxAbs float64) Scheme {
	if bits < 2 || bits > 62 {
		panic(fmt.Sprintf("quant: bits %d out of range 2..62", bits))
	}
	if maxAbs < 0 || math.IsNaN(maxAbs) || math.IsInf(maxAbs, 0) {
		panic(fmt.Sprintf("quant: bad maxAbs %v", maxAbs))
	}
	return Scheme{Bits: bits, Scale: maxAbs}
}

// Levels returns the number of positive quantisation steps.
func (s Scheme) Levels() int64 { return int64(1)<<(s.Bits-1) - 1 }

// QuantizeInt maps x to its integer code in [-Levels, Levels].
func (s Scheme) QuantizeInt(x float64) int64 {
	if s.Scale == 0 {
		return 0
	}
	levels := float64(s.Levels())
	q := math.Round(x / s.Scale * levels)
	if q > levels {
		q = levels
	}
	if q < -levels {
		q = -levels
	}
	return int64(q)
}

// Dequantize maps an integer code back to a float.
func (s Scheme) Dequantize(q int64) float64 {
	levels := s.Levels()
	if s.Scale == 0 || levels == 0 {
		return 0
	}
	return float64(q) / float64(levels) * s.Scale
}

// Quantize rounds x to the nearest representable value (clamping to
// the scheme's range).
func (s Scheme) Quantize(x float64) float64 {
	return s.Dequantize(s.QuantizeInt(x))
}

// StepSize returns the quantisation step (resolution).
func (s Scheme) StepSize() float64 {
	l := s.Levels()
	if l == 0 {
		return 0
	}
	return s.Scale / float64(l)
}

// QuantizeSlice quantises xs in place.
func (s Scheme) QuantizeSlice(xs []float64) {
	for i, x := range xs {
		xs[i] = s.Quantize(x)
	}
}

// QuantizeMatrix quantises m in place with a per-matrix scale derived
// from its largest magnitude, and returns the scheme used.
func QuantizeMatrix(m *tensor.Matrix, bits int) Scheme {
	s := Fit(bits, m.MaxAbs())
	s.QuantizeSlice(m.Data)
	return s
}

// QuantizeRows quantises only the selected rows of m in place —
// exactly what selective updating writes — using a scale from the
// whole matrix so rows stay mutually comparable.
func QuantizeRows(m *tensor.Matrix, bits int, rows []int) Scheme {
	s := Fit(bits, m.MaxAbs())
	for _, r := range rows {
		s.QuantizeSlice(m.Row(r))
	}
	return s
}

// Slices decomposes the magnitude of an integer code into cell slices
// of bitsPerCell each, least-significant first — the physical layout
// of one value across a crossbar's cells. The sign travels on the
// differential pair, not in the slices.
func Slices(q int64, bitsPerCell, cells int) []uint8 {
	if bitsPerCell < 1 || bitsPerCell > 8 {
		panic(fmt.Sprintf("quant: bits per cell %d out of range 1..8", bitsPerCell))
	}
	if cells < 1 {
		panic(fmt.Sprintf("quant: cells %d must be positive", cells))
	}
	mag := q
	if mag < 0 {
		mag = -mag
	}
	mask := int64(1)<<bitsPerCell - 1
	out := make([]uint8, cells)
	for i := 0; i < cells; i++ {
		out[i] = uint8(mag & mask)
		mag >>= bitsPerCell
	}
	if mag != 0 {
		panic(fmt.Sprintf("quant: code %d does not fit %d cells of %d bits", q, cells, bitsPerCell))
	}
	return out
}

// FromSlices recomposes a magnitude from cell slices and applies sign.
func FromSlices(slices []uint8, bitsPerCell int, negative bool) int64 {
	var mag int64
	for i := len(slices) - 1; i >= 0; i-- {
		mag = mag<<bitsPerCell | int64(slices[i])
	}
	if negative {
		return -mag
	}
	return mag
}

// CellsPerValue returns how many cells one value of the given bit
// width needs at bitsPerCell (sign handled differentially).
func CellsPerValue(bits, bitsPerCell int) int {
	if bitsPerCell < 1 {
		panic(fmt.Sprintf("quant: bits per cell %d must be positive", bitsPerCell))
	}
	magBits := bits - 1 // sign is differential
	if magBits < 1 {
		magBits = 1
	}
	return (magBits + bitsPerCell - 1) / bitsPerCell
}

// MaxQuantError returns the worst-case absolute rounding error of the
// scheme (half a step) for in-range inputs.
func (s Scheme) MaxQuantError() float64 { return s.StepSize() / 2 }

// ApplyStuck models writing x onto a value whose cell slice sliceIdx
// is stuck: the value is quantised, decomposed into its physical cell
// slices, the stuck slice is pinned (to the full cell mask for
// stuck-at-1, to 0 for stuck-at-0), and the damaged code is recomposed
// and dequantised. The recomposed magnitude is clamped to the scheme's
// level range: a stuck-high slice in the top cell can otherwise encode
// a magnitude the differential pair cannot represent.
func ApplyStuck(s Scheme, x float64, bitsPerCell, cells, sliceIdx int, stuckHigh bool) float64 {
	if sliceIdx < 0 || sliceIdx >= cells {
		panic(fmt.Sprintf("quant: stuck slice %d out of range 0..%d", sliceIdx, cells-1))
	}
	if s.Scale == 0 {
		return 0
	}
	q := s.QuantizeInt(x)
	slices := Slices(q, bitsPerCell, cells)
	if stuckHigh {
		slices[sliceIdx] = uint8(int64(1)<<bitsPerCell - 1)
	} else {
		slices[sliceIdx] = 0
	}
	damaged := FromSlices(slices, bitsPerCell, q < 0)
	if levels := s.Levels(); damaged > levels {
		damaged = levels
	} else if damaged < -levels {
		damaged = -levels
	}
	return s.Dequantize(damaged)
}
