package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gopim/internal/tensor"
)

func TestFitValidation(t *testing.T) {
	for _, f := range []func(){
		func() { Fit(1, 1) },
		func() { Fit(63, 1) },
		func() { Fit(8, -1) },
		func() { Fit(8, math.NaN()) },
		func() { Fit(8, math.Inf(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuantizeBasics(t *testing.T) {
	s := Fit(16, 1.0)
	if s.Levels() != 32767 {
		t.Fatalf("Levels = %d, want 32767", s.Levels())
	}
	if got := s.Quantize(0); got != 0 {
		t.Fatalf("Quantize(0) = %v", got)
	}
	if got := s.Quantize(1.0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("Quantize(1) = %v", got)
	}
	if got := s.Quantize(-1.0); math.Abs(got+1.0) > 1e-12 {
		t.Fatalf("Quantize(-1) = %v", got)
	}
	// Clamping.
	if got := s.Quantize(5.0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("out-of-range must clamp: %v", got)
	}
	if got := s.Quantize(-5.0); math.Abs(got+1.0) > 1e-12 {
		t.Fatalf("out-of-range must clamp: %v", got)
	}
}

// Property: quantisation error is bounded by half a step for in-range
// inputs, and quantisation is idempotent.
func TestQuantErrorBoundAndIdempotence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 2 + rng.Intn(15)
		scale := rng.Float64()*100 + 0.01
		s := Fit(bits, scale)
		for k := 0; k < 50; k++ {
			x := (rng.Float64()*2 - 1) * scale
			q := s.Quantize(x)
			if math.Abs(q-x) > s.MaxQuantError()+1e-12 {
				return false
			}
			if s.Quantize(q) != q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroScaleDegenerate(t *testing.T) {
	s := Fit(8, 0)
	if s.Quantize(3.7) != 0 || s.StepSize() != 0 {
		t.Fatal("zero-scale scheme must map everything to 0")
	}
}

func TestQuantizeMatrix(t *testing.T) {
	m := tensor.NewFromRows([][]float64{{0.5, -2.0}, {1.0, 0.001}})
	s := QuantizeMatrix(m, 16)
	if s.Scale != 2.0 {
		t.Fatalf("scale = %v, want max abs 2.0", s.Scale)
	}
	if math.Abs(m.At(0, 1)+2.0) > 1e-12 {
		t.Fatalf("extreme value must be exact: %v", m.At(0, 1))
	}
	if math.Abs(m.At(1, 1)-0.001) > s.MaxQuantError() {
		t.Fatalf("small value error too large: %v", m.At(1, 1))
	}
}

func TestQuantizeRowsSelective(t *testing.T) {
	// 0.0567 is off the 4-bit grid whose scale is set by the 0.9 entry.
	m := tensor.NewFromRows([][]float64{{0.0567, 0.9}, {0.0567, 0.9}})
	QuantizeRows(m, 4, []int{0})
	if m.At(0, 0) == 0.0567 {
		t.Fatal("selected row must be quantised")
	}
	if m.At(1, 0) != 0.0567 {
		t.Fatal("unselected row must be untouched")
	}
}

// Property: slice decomposition round-trips for any code that fits.
func TestSlicesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 2 + rng.Intn(15)
		bpc := 1 + rng.Intn(4)
		cells := CellsPerValue(bits, bpc)
		s := Fit(bits, 10)
		x := (rng.Float64()*2 - 1) * 10
		q := s.QuantizeInt(x)
		slices := Slices(q, bpc, cells)
		back := FromSlices(slices, bpc, q < 0)
		return back == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The Table II configuration: 16-bit values on 2-bit cells need 8
// cells per value — the differential-pair footprint CrossbarsForMatrix
// assumes.
func TestCellsPerValueTableII(t *testing.T) {
	if got := CellsPerValue(16, 2); got != 8 {
		t.Fatalf("CellsPerValue(16,2) = %d, want 8", got)
	}
	if got := CellsPerValue(2, 2); got != 1 {
		t.Fatalf("CellsPerValue(2,2) = %d, want 1", got)
	}
}

func TestSlicesValidation(t *testing.T) {
	for _, f := range []func(){
		func() { Slices(1, 0, 4) },
		func() { Slices(1, 9, 4) },
		func() { Slices(1, 2, 0) },
		func() { Slices(1<<20, 2, 2) }, // does not fit
		func() { CellsPerValue(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSlicesLSBFirst(t *testing.T) {
	// code 0b011011 at 2 bits/cell → slices [0b11, 0b10, 0b01].
	got := Slices(0b011011, 2, 3)
	if got[0] != 0b11 || got[1] != 0b10 || got[2] != 0b01 {
		t.Fatalf("Slices = %v", got)
	}
	if FromSlices(got, 2, true) != -0b011011 {
		t.Fatal("sign recomposition wrong")
	}
}

func TestApplyStuck(t *testing.T) {
	s := Fit(16, 1.0)
	cells := CellsPerValue(16, 2) // 8 cells of 2 bits
	// A healthy slice forced to its own value is a no-op.
	x := s.Quantize(0.375)
	q := s.QuantizeInt(x)
	slices := Slices(q, 2, cells)
	for idx, sl := range slices {
		want := x
		high := sl == 3
		if sl != 0 && !high {
			continue // only exact-preserving cases here
		}
		if got := ApplyStuck(s, x, 2, cells, idx, high); got != want {
			t.Fatalf("slice %d already at its stuck value: got %v, want %v", idx, got, want)
		}
	}
	// Stuck-at-0 on the most significant slice wipes the top bits.
	top := cells - 1
	big := s.Quantize(0.9)
	got := ApplyStuck(s, big, 2, cells, top, false)
	if math.Abs(got) >= math.Abs(big) {
		t.Fatalf("stuck-at-0 top slice did not shrink %v (got %v)", big, got)
	}
	// Stuck-at-1 keeps the result representable (clamped to ±Scale).
	hi := ApplyStuck(s, big, 2, cells, top, true)
	if math.Abs(hi) > s.Scale {
		t.Fatalf("stuck-at-1 escaped the scheme range: %v > %v", hi, s.Scale)
	}
	// Sign travels on the differential pair and survives.
	neg := ApplyStuck(s, -big, 2, cells, top, false)
	if neg > 0 {
		t.Fatalf("stuck slice flipped the sign: %v", neg)
	}
	// Degenerate scheme maps everything to 0.
	if got := ApplyStuck(Scheme{Bits: 16}, 0.5, 2, cells, 0, true); got != 0 {
		t.Fatalf("degenerate scheme gave %v", got)
	}
}

func TestApplyStuckBadSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slice index must panic")
		}
	}()
	ApplyStuck(Fit(16, 1), 0.5, 2, 8, 9, true)
}
