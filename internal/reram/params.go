// Package reram models the GoPIM chip's microarchitecture: crossbar /
// PE / tile / chip geometry, read-write latencies, matrix-to-crossbar
// footprint arithmetic, and the per-component power figures of paper
// Table II that the energy model consumes.
//
// All quantities are analytic: the package answers "how many crossbars
// does this matrix occupy", "how long does one MVM input take", and
// "what does a write op cost", which is exactly the granularity the
// paper's (NeuroSim-derived) simulator feeds its pipeline model.
//
// Latencies are expressed as float64 nanoseconds: the paper's read
// latency (29.31 ns) is finer than time.Duration's integer-nanosecond
// grain.
package reram

import (
	"fmt"
	"math"
)

// Chip collects the microarchitectural parameters of a GoPIM chip.
// DefaultChip mirrors paper Table II; tests and benches shrink it.
type Chip struct {
	// Geometry.
	CrossbarRows   int // wordlines per crossbar (64)
	CrossbarCols   int // bitlines per crossbar (64)
	BitsPerCell    int // 2
	CrossbarsPerPE int // 32
	PEsPerTile     int // 8
	Tiles          int // 65536

	// Precision.
	WeightBits int // 16-bit fixed point values
	DACBits    int // DAC resolution (2) — input bits fed per cycle
	ADCBits    int // ADC resolution (8)

	// Latency in nanoseconds.
	ReadLatencyNS  float64 // one crossbar MVM read cycle (29.31 ns)
	WriteLatencyNS float64 // one write op (50.88 ns)

	// WriteDriverCells is how many cells one write op programs; writes
	// inside a PE share drivers and are serialised (§III-A: "ReRAM
	// writing operations within the same crossbar are serial").
	WriteDriverCells int
	// WriteVerifyCycles is the number of program-verify iterations per
	// row: multi-level ReRAM cells need iterative programming, putting
	// effective row-program latency in the microsecond range.
	WriteVerifyCycles int
	// WriteLanes is how many rows the chip can program concurrently —
	// write pulses are power-hungry, so the power budget, not the
	// drivers, bounds chip-wide write parallelism.
	WriteLanes int
	// WriteRetryFactor stretches row programming for write-verify
	// retries under injected faults (internal/fault): the expected
	// program-verify iteration count relative to the fault-free pass.
	// 0 or 1 means no retries; values in (1, ∞) multiply ProgramRowNS,
	// which prices both the latency and (through energy.WriteRowPJ)
	// the energy of every retry.
	WriteRetryFactor float64

	// ZeroSkipMiss models imperfect zero-block skipping while streaming
	// a sparse adjacency row through the input registers: the effective
	// number of processed 64-blocks is active + miss·(total − active).
	// 0 = perfect skipping, 1 = fully dense processing.
	ZeroSkipMiss float64

	Power PowerParams
}

// PowerParams carries the Table II power figures (milliwatts) used by
// the energy model. Values are per instance of the component.
type PowerParams struct {
	ADCmW        float64 // per PE's ADC block
	SHmW         float64 // sample & hold, per PE aggregate
	CrossbarmW   float64 // one active crossbar
	InRegmW      float64 // PE input register
	OutRegmW     float64 // PE output register
	ShiftAddmW   float64 // S+A units per PE aggregate
	TileInBufmW  float64
	TileXbBufmW  float64
	TileOutBufmW float64
	TileNFUmW    float64
	TilePFUmW    float64
	WeightMgrmW  float64 // chip-level SRAM weight computer
	ActivationmW float64
	ControllermW float64
}

// DefaultChip returns the paper Table II configuration: 65 536 tiles ×
// 8 PEs × 32 crossbars of 64×64 2-bit cells (a 16 GB ReRAM array),
// 29.31 ns reads and 50.88 ns writes.
func DefaultChip() Chip {
	return Chip{
		CrossbarRows:      64,
		CrossbarCols:      64,
		BitsPerCell:       2,
		CrossbarsPerPE:    32,
		PEsPerTile:        8,
		Tiles:             65536,
		WeightBits:        16,
		DACBits:           2,
		ADCBits:           8,
		ReadLatencyNS:     29.31,
		WriteLatencyNS:    50.88,
		WriteDriverCells:  4,
		WriteVerifyCycles: 8,
		WriteLanes:        2,
		ZeroSkipMiss:      0.20,
		Power: PowerParams{
			ADCmW:        64,
			SHmW:         0.02 * 64 * 32, // 0.02 mW × 32×64 instances
			CrossbarmW:   6.2,
			InRegmW:      2.32,
			OutRegmW:     0.42,
			ShiftAddmW:   0.8 * 16,
			TileInBufmW:  7.95,
			TileXbBufmW:  59.42,
			TileOutBufmW: 1.28,
			TileNFUmW:    2.04,
			TilePFUmW:    3.2,
			WeightMgrmW:  99.6,
			ActivationmW: 0.0266,
			ControllermW: 580.41,
		},
	}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Chip) Validate() error {
	switch {
	case c.CrossbarRows <= 0 || c.CrossbarCols <= 0:
		return fmt.Errorf("reram: crossbar %dx%d must be positive", c.CrossbarRows, c.CrossbarCols)
	case c.BitsPerCell <= 0:
		return fmt.Errorf("reram: bits per cell %d must be positive", c.BitsPerCell)
	case c.CrossbarsPerPE <= 0 || c.PEsPerTile <= 0 || c.Tiles <= 0:
		return fmt.Errorf("reram: geometry %d/%d/%d must be positive", c.CrossbarsPerPE, c.PEsPerTile, c.Tiles)
	case c.WeightBits <= 0 || c.DACBits <= 0:
		return fmt.Errorf("reram: precision bits %d/%d must be positive", c.WeightBits, c.DACBits)
	case c.ReadLatencyNS <= 0 || c.WriteLatencyNS <= 0:
		return fmt.Errorf("reram: latencies must be positive")
	case c.WriteDriverCells <= 0:
		return fmt.Errorf("reram: write driver cells %d must be positive", c.WriteDriverCells)
	case c.WriteVerifyCycles <= 0:
		return fmt.Errorf("reram: write verify cycles %d must be positive", c.WriteVerifyCycles)
	case c.WriteLanes <= 0:
		return fmt.Errorf("reram: write lanes %d must be positive", c.WriteLanes)
	case c.WriteRetryFactor != 0 && (math.IsNaN(c.WriteRetryFactor) ||
		math.IsInf(c.WriteRetryFactor, 0) || c.WriteRetryFactor < 1):
		return fmt.Errorf("reram: write retry factor %v must be 0 (off) or a finite value ≥ 1", c.WriteRetryFactor)
	case c.ZeroSkipMiss < 0 || c.ZeroSkipMiss > 1:
		return fmt.Errorf("reram: zero-skip miss %v must be in [0,1]", c.ZeroSkipMiss)
	}
	return nil
}

// CellsPerCrossbar returns rows×cols of one crossbar.
func (c Chip) CellsPerCrossbar() int { return c.CrossbarRows * c.CrossbarCols }

// TotalCrossbars returns the chip-wide crossbar count
// (Table II: 65 536 × 8 × 32 = 16 777 216).
func (c Chip) TotalCrossbars() int { return c.Tiles * c.PEsPerTile * c.CrossbarsPerPE }

// CrossbarsForMatrix returns the number of crossbars a rows×cols value
// matrix occupies: one cell pair per value (differential encoding of
// signed values), tiled over 64×64 crossbars. Reproduces paper Table
// VI: ddi's 256×256 weights → 32 crossbars; its 4267×256 feature
// matrix → 534 crossbars.
func (c Chip) CrossbarsForMatrix(rows, cols int) int {
	if rows <= 0 || cols <= 0 {
		return 0
	}
	cells := int64(rows) * int64(cols)
	per := int64(c.CellsPerCrossbar())
	return int(2 * ((cells + per - 1) / per))
}

// PEsForMatrix returns the number of PEs the matrix's crossbars span.
func (c Chip) PEsForMatrix(rows, cols int) int {
	x := c.CrossbarsForMatrix(rows, cols)
	return (x + c.CrossbarsPerPE - 1) / c.CrossbarsPerPE
}

// InputCyclesPerMVM is the number of read cycles one full-precision
// input vector needs: weightBits / dacBits (16/2 = 8).
func (c Chip) InputCyclesPerMVM() int {
	cyc := c.WeightBits / c.DACBits
	if cyc < 1 {
		cyc = 1
	}
	return cyc
}

// RowsPerPE returns how many crossbar rows one PE holds
// (crossbarsPerPE × crossbarRows).
func (c Chip) RowsPerPE() int { return c.CrossbarsPerPE * c.CrossbarRows }

// WriteOpsPerRow is the number of serialised write operations needed to
// program one crossbar row (cols / driver width).
func (c Chip) WriteOpsPerRow() int {
	ops := (c.CrossbarCols + c.WriteDriverCells - 1) / c.WriteDriverCells
	if ops < 1 {
		ops = 1
	}
	return ops
}

// RowWriteNS is the latency in nanoseconds of programming one crossbar
// row.
func (c Chip) RowWriteNS() float64 {
	return float64(c.WriteOpsPerRow()) * c.WriteLatencyNS
}

// ProgramRowNS is the full program-verify latency of one crossbar row:
// WriteOpsPerRow × WriteVerifyCycles write pulses, stretched by the
// write-verify retry factor when fault injection is active. The
// multiplication is gated on > 1 so the fault-free path stays
// byte-identical (×1.0 would be a bitwise identity anyway, but the
// gate keeps the contract structural).
func (c Chip) ProgramRowNS() float64 {
	ns := c.RowWriteNS() * float64(c.WriteVerifyCycles)
	if c.WriteRetryFactor > 1 {
		ns *= c.WriteRetryFactor
	}
	return ns
}

// MVMNS is the latency in nanoseconds of streaming one full-precision
// input vector through a mapped matrix (all its crossbars operate in
// parallel).
func (c Chip) MVMNS() float64 {
	return float64(c.InputCyclesPerMVM()) * c.ReadLatencyNS
}

// BlocksForVertices returns how many input blocks of CrossbarRows
// vertices an n-vertex adjacency row spans.
func (c Chip) BlocksForVertices(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + c.CrossbarRows - 1) / c.CrossbarRows
}

// EffectiveBlocks applies the zero-skip model: given that `active` of
// `total` blocks contain at least one neighbour, it returns the number
// of blocks the hardware actually streams.
func (c Chip) EffectiveBlocks(active, total float64) float64 {
	if active > total {
		active = total
	}
	if active < 0 {
		active = 0
	}
	return active + c.ZeroSkipMiss*(total-active)
}

// ExpectedActiveBlocks estimates how many distinct blocks of
// CrossbarRows vertices the deg neighbours of a vertex touch when
// neighbour ids are spread uniformly: B·(1 − (1 − 1/B)^deg).
func (c Chip) ExpectedActiveBlocks(deg float64, n int) float64 {
	b := float64(c.BlocksForVertices(n))
	if b == 0 || deg <= 0 {
		return 0
	}
	return b * (1 - math.Exp(deg*math.Log1p(-1/b)))
}
