package reram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultChipValid(t *testing.T) {
	c := DefaultChip()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultChipMatchesTableII(t *testing.T) {
	c := DefaultChip()
	if c.CrossbarRows != 64 || c.CrossbarCols != 64 || c.BitsPerCell != 2 {
		t.Fatalf("crossbar geometry wrong: %+v", c)
	}
	if c.CrossbarsPerPE != 32 || c.PEsPerTile != 8 || c.Tiles != 65536 {
		t.Fatalf("hierarchy wrong: %+v", c)
	}
	if c.ReadLatencyNS != 29.31 || c.WriteLatencyNS != 50.88 {
		t.Fatalf("latencies wrong: %v/%v", c.ReadLatencyNS, c.WriteLatencyNS)
	}
	// 16 GB at 2 bits/cell → 16 777 216 crossbars.
	if got := c.TotalCrossbars(); got != 16777216 {
		t.Fatalf("TotalCrossbars = %d, want 16777216", got)
	}
	cells := int64(c.TotalCrossbars()) * int64(c.CellsPerCrossbar())
	bits := cells * int64(c.BitsPerCell)
	if bits != 16*8*1024*1024*1024 {
		t.Fatalf("array capacity = %d bits, want 16 GiB", bits)
	}
}

// Paper Table VI (Serial row for ddi): the 256×256 weight matrix of a
// Combination stage occupies 32 crossbars and the 4267×256 feature
// matrix of an Aggregation stage occupies 534.
func TestCrossbarsForMatrixMatchesTableVI(t *testing.T) {
	c := DefaultChip()
	if got := c.CrossbarsForMatrix(256, 256); got != 32 {
		t.Fatalf("CO footprint = %d crossbars, want 32 (paper Table VI)", got)
	}
	if got := c.CrossbarsForMatrix(4267, 256); got != 534 {
		t.Fatalf("AG footprint = %d crossbars, want 534 (paper Table VI)", got)
	}
}

func TestCrossbarsForMatrixEdgeCases(t *testing.T) {
	c := DefaultChip()
	if c.CrossbarsForMatrix(0, 10) != 0 || c.CrossbarsForMatrix(10, -1) != 0 {
		t.Fatal("degenerate matrices occupy no crossbars")
	}
	if got := c.CrossbarsForMatrix(1, 1); got != 2 {
		t.Fatalf("1x1 matrix = %d crossbars, want 2 (differential pair)", got)
	}
	if got := c.CrossbarsForMatrix(64, 64); got != 2 {
		t.Fatalf("64x64 = %d, want 2", got)
	}
	if got := c.CrossbarsForMatrix(65, 64); got != 4 {
		t.Fatalf("65x64 = %d, want 4", got)
	}
}

// Property: footprint is monotone in both dimensions and scales
// linearly for multiples of the crossbar size.
func TestCrossbarsForMatrixMonotone(t *testing.T) {
	c := DefaultChip()
	f := func(r, cl uint8) bool {
		rows, cols := int(r)+1, int(cl)+1
		base := c.CrossbarsForMatrix(rows, cols)
		return c.CrossbarsForMatrix(rows+1, cols) >= base &&
			c.CrossbarsForMatrix(rows, cols+1) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got, want := c.CrossbarsForMatrix(640, 640), 100*2; got != want {
		t.Fatalf("640x640 = %d, want %d", got, want)
	}
}

func TestPEsForMatrix(t *testing.T) {
	c := DefaultChip()
	if got := c.PEsForMatrix(256, 256); got != 1 {
		t.Fatalf("PEs for 32 crossbars = %d, want 1", got)
	}
	if got := c.PEsForMatrix(4267, 256); got != 17 {
		t.Fatalf("PEs for 534 crossbars = %d, want 17", got)
	}
}

func TestTimingPrimitives(t *testing.T) {
	c := DefaultChip()
	if got := c.InputCyclesPerMVM(); got != 8 {
		t.Fatalf("InputCyclesPerMVM = %d, want 16/2 = 8", got)
	}
	if got := c.MVMNS(); math.Abs(got-8*29.31) > 1e-9 {
		t.Fatalf("MVMNS = %v, want %v", got, 8*29.31)
	}
	if got := c.WriteOpsPerRow(); got != 16 {
		t.Fatalf("WriteOpsPerRow = %d, want 64/4 = 16", got)
	}
	if got := c.RowWriteNS(); math.Abs(got-16*50.88) > 1e-9 {
		t.Fatalf("RowWriteNS = %v", got)
	}
	if got := c.RowsPerPE(); got != 2048 {
		t.Fatalf("RowsPerPE = %d, want 2048", got)
	}
}

func TestBlocksForVertices(t *testing.T) {
	c := DefaultChip()
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {64, 1}, {65, 2}, {4267, 67},
	}
	for _, tc := range cases {
		if got := c.BlocksForVertices(tc.n); got != tc.want {
			t.Fatalf("BlocksForVertices(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestEffectiveBlocks(t *testing.T) {
	c := DefaultChip()
	c.ZeroSkipMiss = 0.25
	if got := c.EffectiveBlocks(10, 100); math.Abs(got-(10+0.25*90)) > 1e-9 {
		t.Fatalf("EffectiveBlocks = %v", got)
	}
	// Clamps.
	if got := c.EffectiveBlocks(200, 100); got != 100 {
		t.Fatalf("active > total should clamp: %v", got)
	}
	if got := c.EffectiveBlocks(-5, 100); math.Abs(got-25) > 1e-9 {
		t.Fatalf("negative active should clamp to 0: %v", got)
	}
	c.ZeroSkipMiss = 0
	if got := c.EffectiveBlocks(10, 100); got != 10 {
		t.Fatalf("perfect skipping: %v", got)
	}
	c.ZeroSkipMiss = 1
	if got := c.EffectiveBlocks(10, 100); got != 100 {
		t.Fatalf("dense processing: %v", got)
	}
}

func TestExpectedActiveBlocks(t *testing.T) {
	c := DefaultChip()
	// With a huge graph and small degree, every neighbour lands in its
	// own block: active ≈ deg.
	got := c.ExpectedActiveBlocks(10, 1_000_000)
	if math.Abs(got-10) > 0.01 {
		t.Fatalf("sparse case: %v, want ≈10", got)
	}
	// With degree ≫ blocks, all blocks are active.
	got = c.ExpectedActiveBlocks(5000, 4267)
	blocks := float64(c.BlocksForVertices(4267))
	if blocks-got > 0.1 {
		t.Fatalf("dense case: %v, want ≈%v", got, blocks)
	}
	if c.ExpectedActiveBlocks(0, 100) != 0 {
		t.Fatal("zero degree → zero active blocks")
	}
	if c.ExpectedActiveBlocks(5, 0) != 0 {
		t.Fatal("empty graph → zero blocks")
	}
	// Monotone in degree.
	prev := 0.0
	for d := 1.0; d < 300; d *= 2 {
		v := c.ExpectedActiveBlocks(d, 4267)
		if v < prev {
			t.Fatalf("ExpectedActiveBlocks not monotone at deg=%v", d)
		}
		prev = v
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Chip){
		func(c *Chip) { c.CrossbarRows = 0 },
		func(c *Chip) { c.BitsPerCell = -1 },
		func(c *Chip) { c.Tiles = 0 },
		func(c *Chip) { c.WeightBits = 0 },
		func(c *Chip) { c.ReadLatencyNS = 0 },
		func(c *Chip) { c.WriteDriverCells = 0 },
		func(c *Chip) { c.ZeroSkipMiss = 1.5 },
	}
	for i, mutate := range bad {
		c := DefaultChip()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

// Cross-validate the analytic active-block estimate against an
// explicit random neighbour placement: for a vertex of degree d in an
// n-vertex graph with uniformly spread neighbour ids, the number of
// distinct 64-vertex blocks touched should match B·(1−(1−1/B)^d).
func TestExpectedActiveBlocksMatchesSampling(t *testing.T) {
	c := DefaultChip()
	rng := rand.New(rand.NewSource(9))
	n := 8192
	blocks := c.BlocksForVertices(n)
	for _, deg := range []int{1, 8, 64, 500, 4000} {
		const trials = 200
		var sum float64
		seen := make([]int, blocks)
		for tr := 0; tr < trials; tr++ {
			for i := range seen {
				seen[i] = 0
			}
			active := 0
			for e := 0; e < deg; e++ {
				b := rng.Intn(n) / c.CrossbarRows
				if seen[b] == 0 {
					seen[b] = 1
					active++
				}
			}
			sum += float64(active)
		}
		sampled := sum / trials
		analytic := c.ExpectedActiveBlocks(float64(deg), n)
		if math.Abs(sampled-analytic) > 0.05*analytic+1 {
			t.Fatalf("deg %d: sampled %v vs analytic %v", deg, sampled, analytic)
		}
	}
}

func TestWriteRetryFactorValidation(t *testing.T) {
	c := DefaultChip()
	for _, bad := range []float64{0.5, -1, math.NaN(), math.Inf(1)} {
		c.WriteRetryFactor = bad
		if err := c.Validate(); err == nil {
			t.Errorf("retry factor %v accepted", bad)
		}
	}
	for _, ok := range []float64{0, 1, 1.5, 8} {
		c.WriteRetryFactor = ok
		if err := c.Validate(); err != nil {
			t.Errorf("retry factor %v rejected: %v", ok, err)
		}
	}
}

func TestProgramRowNSRetryGate(t *testing.T) {
	c := DefaultChip()
	base := c.ProgramRowNS()
	// 0 and 1 leave the fault-free latency untouched bit for bit.
	for _, f := range []float64{0, 1} {
		c.WriteRetryFactor = f
		if got := c.ProgramRowNS(); got != base {
			t.Fatalf("retry factor %v changed ProgramRowNS: %v vs %v", f, got, base)
		}
	}
	c.WriteRetryFactor = 1.5
	if got := c.ProgramRowNS(); got != base*1.5 {
		t.Fatalf("retry factor 1.5 gives %v, want %v", got, base*1.5)
	}
}
