package serve

// The live request inspector: GET /debug/requests reconstructs every
// active and recently completed request — status, latency, cache
// disposition, trace ID — with a per-stage waterfall, as HTML for
// humans and JSON for scripts. All data comes from the Wall-clock
// request log; the inspector reads copies and never touches a Sim
// metric, so scraping it cannot perturb deterministic snapshots.

import (
	"fmt"
	"html/template"
	"net/http"
	"strings"

	"gopim/internal/obs"
)

// requestsPayload is the JSON shape of /debug/requests?format=json.
type requestsPayload struct {
	Active    []obs.RequestRecord `json:"active"`
	Completed []obs.RequestRecord `json:"completed"`
}

// handleRequests serves the inspector.
func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	active, completed := s.reqlog.Snapshot()
	wantJSON := r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	if wantJSON {
		writeJSON(w, http.StatusOK, requestsPayload{
			Active:    active,
			Completed: completed,
		})
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = requestsTemplate.Execute(w, inspectorView{
		Active:    toRequestViews(active),
		Completed: toRequestViews(completed),
	})
}

// stageColors give each lifecycle stage a stable waterfall colour.
var stageColors = map[string]string{
	"cache_lookup":      "#7aa2f7",
	"admission":         "#e0af68",
	"workspace_acquire": "#f7768e",
	"plan":              "#9ece6a",
	"explain":           "#ff9e64",
	"simulate":          "#2ac3de",
	"marshal":           "#bb9af7",
}

type stageView struct {
	Name     string
	DurMS    string
	LeftPct  string
	WidthPct string
	Color    string
}

type requestView struct {
	Seq     uint64
	TraceID string
	Label   string
	Method  string
	Path    string
	Status  int
	Ok      bool
	Cache   string
	Error   string
	WallMS  string
	Sampled bool
	Active  bool
	Stages  []stageView
}

type inspectorView struct {
	Active    []requestView
	Completed []requestView
}

func toRequestViews(recs []obs.RequestRecord) []requestView {
	out := make([]requestView, 0, len(recs))
	for _, rec := range recs {
		v := requestView{
			Seq:     rec.Seq,
			TraceID: rec.TraceID,
			Label:   rec.Label,
			Method:  rec.Method,
			Path:    rec.Path,
			Status:  rec.Status,
			Ok:      rec.Status < 400 && !rec.Active,
			Cache:   rec.Cache,
			Error:   rec.Error,
			WallMS:  fmt.Sprintf("%.2f", float64(rec.WallNS)/1e6),
			Sampled: rec.Sampled,
			Active:  rec.Active,
		}
		wall := rec.WallNS
		if wall <= 0 {
			wall = 1
		}
		for _, st := range rec.Stages {
			left := float64(st.StartNS) / float64(wall) * 100
			width := float64(st.DurNS) / float64(wall) * 100
			if width < 0.5 {
				width = 0.5 // keep microsecond stages visible
			}
			if left > 99.5 {
				left = 99.5
			}
			color := stageColors[st.Name]
			if color == "" {
				color = "#565f89"
			}
			v.Stages = append(v.Stages, stageView{
				Name:     st.Name,
				DurMS:    fmt.Sprintf("%.3f", float64(st.DurNS)/1e6),
				LeftPct:  fmt.Sprintf("%.2f", left),
				WidthPct: fmt.Sprintf("%.2f", width),
				Color:    color,
			})
		}
		out = append(out, v)
	}
	return out
}

var requestsTemplate = template.Must(template.New("requests").Parse(`<!doctype html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>gopim requests</title>
<style>
body { font: 13px/1.5 ui-monospace, monospace; background: #1a1b26; color: #c0caf5; margin: 1.5em; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; color: #a9b1d6; margin-top: 1.5em; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 3px 10px 3px 0; vertical-align: top; white-space: nowrap; }
th { color: #565f89; font-weight: normal; border-bottom: 1px solid #2f3549; }
.trace { color: #7aa2f7; } .ok { color: #9ece6a; } .err { color: #f7768e; }
.cache-hit { color: #9ece6a; } .cache-miss { color: #e0af68; } .cache-coalesced { color: #2ac3de; }
.lane { position: relative; width: 340px; height: 14px; background: #24283b; border-radius: 2px; }
.stage { position: absolute; top: 2px; height: 10px; border-radius: 1px; }
.legend span { margin-right: 1em; }
.swatch { display: inline-block; width: 9px; height: 9px; margin-right: 4px; border-radius: 1px; }
.empty { color: #565f89; }
</style></head><body>
<h1>gopim serve — request inspector</h1>
<div class="legend">
  <span><i class="swatch" style="background:#7aa2f7"></i>cache_lookup</span>
  <span><i class="swatch" style="background:#e0af68"></i>admission</span>
  <span><i class="swatch" style="background:#f7768e"></i>workspace_acquire</span>
  <span><i class="swatch" style="background:#9ece6a"></i>plan</span>
  <span><i class="swatch" style="background:#ff9e64"></i>explain</span>
  <span><i class="swatch" style="background:#2ac3de"></i>simulate</span>
  <span><i class="swatch" style="background:#bb9af7"></i>marshal</span>
</div>
{{define "rows"}}
<table><tr><th>#</th><th>trace</th><th>request</th><th>status</th><th>cache</th><th>wall ms</th><th>waterfall</th></tr>
{{range .}}<tr>
<td>{{.Seq}}</td>
<td class="trace" title="{{.TraceID}}">{{printf "%.16s" .TraceID}}</td>
<td>{{.Method}} {{.Path}}{{if .Label}} · {{.Label}}{{end}}</td>
<td class="{{if .Active}}trace{{else if .Ok}}ok{{else}}err{{end}}">{{if .Active}}in flight{{else}}{{.Status}}{{end}}{{if .Error}} <span class="err" title="{{.Error}}">!</span>{{end}}</td>
<td class="cache-{{.Cache}}">{{.Cache}}</td>
<td>{{.WallMS}}</td>
<td><div class="lane">{{range .Stages}}<div class="stage" title="{{.Name}} {{.DurMS}}ms" style="left:{{.LeftPct}}%;width:{{.WidthPct}}%;background:{{.Color}}"></div>{{end}}</div></td>
</tr>{{end}}</table>
{{end}}
<h2>active ({{len .Active}})</h2>
{{if .Active}}{{template "rows" .Active}}{{else}}<p class="empty">none</p>{{end}}
<h2>recently completed ({{len .Completed}})</h2>
{{if .Completed}}{{template "rows" .Completed}}{{else}}<p class="empty">none</p>{{end}}
<p class="empty">JSON: <a href="/debug/requests?format=json" class="trace">/debug/requests?format=json</a> · refreshes every 2s</p>
</body></html>`))
