package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"gopim/internal/accel"
	"gopim/internal/alloc"
	"gopim/internal/experiments"
	"gopim/internal/explain"
	"gopim/internal/graphgen"
	"gopim/internal/mapping"
	"gopim/internal/pipeline"
	"gopim/internal/reram"
	"gopim/internal/stage"
	"gopim/internal/trace"
)

// Request-size guards: a planning query must stay a small deterministic
// computation, so the daemon bounds every dimension a client controls.
const (
	// MaxVertices bounds custom graph statistics at the paper's largest
	// dataset scale (products, ~2.4M vertices).
	MaxVertices = 4_000_000
	// MaxFeatureDim bounds feature/hidden/output channel widths.
	MaxFeatureDim = 4096
	// MaxMicroBatch bounds the per-micro-batch vertex count.
	MaxMicroBatch = 4096
	// MaxLayers bounds the GCN depth for custom graphs.
	MaxLayers = 8
)

// GraphStats are caller-supplied graph statistics for planning against
// a workload outside the paper catalog — the same quantities Table III
// records for the catalog datasets.
type GraphStats struct {
	// Name labels the workload in the response (default "custom").
	Name string `json:"name,omitempty"`
	// Vertices and AvgDegree shape the synthetic power-law degree
	// model the planner runs against.
	Vertices  int     `json:"vertices"`
	AvgDegree float64 `json:"avg_degree"`
	// FeatureDim is the input feature width.
	FeatureDim int `json:"feature_dim"`
	// HiddenDim and OutputDim default to 256; Layers defaults to 2.
	HiddenDim int `json:"hidden_dim,omitempty"`
	OutputDim int `json:"output_dim,omitempty"`
	Layers    int `json:"layers,omitempty"`
}

// PlanRequest is one allocation-planning query: "given this graph's
// stats and this crossbar budget, what replica allocation / predicted
// makespan / θ?". Exactly one of Dataset and Graph must be set.
type PlanRequest struct {
	// Dataset names a catalog workload ("ddi", "arxiv", …).
	Dataset string `json:"dataset,omitempty"`
	// Graph supplies custom graph statistics instead.
	Graph *GraphStats `json:"graph,omitempty"`
	// Model selects the what-if simulation model (default "GoPIM");
	// the replica plan itself always comes from Algorithm 1.
	Model string `json:"model,omitempty"`
	// Seed drives the synthetic degree model (default 1).
	Seed int64 `json:"seed,omitempty"`
	// MicroBatch is the target vertices per micro-batch (default 64).
	MicroBatch int `json:"micro_batch,omitempty"`
	// Theta forces the selective-updating threshold in (0,1];
	// 0 selects the paper's adaptive θ.
	Theta float64 `json:"theta,omitempty"`
	// Budget is the replica crossbar budget. 0 derives it from the
	// default chip: total crossbars minus the original mapping.
	Budget int `json:"budget,omitempty"`
	// UsePredictor allocates from MLP-predicted stage times (GoPIM's
	// ML path) instead of the analytic profile.
	UsePredictor bool `json:"use_predictor,omitempty"`
	// Profile picks the predictor's training corpus: "fast" (default)
	// or "full" (the paper-scale ~2200-sample sweep; first use trains
	// for minutes). Only meaningful with UsePredictor.
	Profile string `json:"profile,omitempty"`
	// Simulate adds a what-if accelerator simulation of Model to the
	// response (makespan, energy, crossbars, update traffic).
	Simulate bool `json:"simulate,omitempty"`
	// Explain adds a critical-path analysis of the planned schedule to
	// the response: bottleneck stage, eq.(6) gap, per-stage bubble
	// attribution and ±1-replica sensitivity. The analysis re-simulates
	// at event granularity over a window of at most ExplainWindow
	// micro-batches (steady state needs far fewer); the block is part
	// of the cached body, so it is byte-identical at any worker count.
	Explain bool `json:"explain,omitempty"`
}

// planKey is the normalized, comparable form of a PlanRequest — the
// result cache's key. Two requests that normalize identically are the
// same query and share one cached response body.
type planKey struct {
	dataset     string
	graph       GraphStats // zero for catalog datasets
	model       accel.Kind
	seed        int64
	microBatch  int
	theta       float64
	budget      int
	usePred     bool
	fullProfile bool
	simulate    bool
	explain     bool
}

// badRequestError marks a client-side validation failure (HTTP 400).
type badRequestError struct{ msg string }

func (e badRequestError) Error() string { return e.msg }

func badf(format string, args ...any) error {
	return badRequestError{msg: fmt.Sprintf(format, args...)}
}

// modelByName resolves an accelerator model from its display name.
func modelByName(name string) (accel.Kind, error) {
	for _, k := range []accel.Kind{
		accel.Serial, accel.SlimGNNLike, accel.ReGraphX, accel.ReFlip,
		accel.GoPIMVanilla, accel.GoPIM, accel.PlusPP, accel.PlusISU,
		accel.Pipelayer,
	} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, badf("unknown model %q (try Serial, SlimGNN-like, ReGraphX, ReFlip, GoPIM-Vanilla, GoPIM, +PP, +ISU, Pipelayer)", name)
}

// decodePlanRequest reads one /v1/plan body and folds it into the
// normalized cache key — the complete untrusted-input surface of the
// planning endpoint, factored out of the HTTP handler so the fuzz
// target (FuzzDecodePlanRequest) can drive it directly with arbitrary
// bytes. Malformed JSON, unknown fields and validation violations all
// come back as badRequestError (HTTP 400); any other error class is a
// server-side fault the handler maps to 500.
func decodePlanRequest(body io.Reader) (planKey, error) {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req PlanRequest
	if err := dec.Decode(&req); err != nil {
		return planKey{}, badf("decode request: %v", err)
	}
	return normalize(req)
}

// normalize validates req and folds defaults into a canonical cache
// key. Every violation is a badRequestError (HTTP 400).
func normalize(req PlanRequest) (planKey, error) {
	var k planKey
	switch {
	case req.Dataset != "" && req.Graph != nil:
		return k, badf("give either dataset or graph, not both")
	case req.Dataset == "" && req.Graph == nil:
		return k, badf("one of dataset or graph is required")
	case req.Dataset != "":
		if _, err := graphgen.ByName(req.Dataset); err != nil {
			return k, badf("unknown dataset %q (gopim list: /v1/datasets)", req.Dataset)
		}
		k.dataset = req.Dataset
	default:
		g := *req.Graph
		if g.Name == "" {
			g.Name = "custom"
		}
		if g.Vertices < 1 || g.Vertices > MaxVertices {
			return k, badf("graph.vertices %d out of range 1..%d", g.Vertices, MaxVertices)
		}
		if g.AvgDegree <= 0 || g.AvgDegree > float64(g.Vertices) || math.IsNaN(g.AvgDegree) || math.IsInf(g.AvgDegree, 0) {
			return k, badf("graph.avg_degree %v out of range (0, vertices]", g.AvgDegree)
		}
		if g.HiddenDim == 0 {
			g.HiddenDim = 256
		}
		if g.OutputDim == 0 {
			g.OutputDim = 256
		}
		if g.Layers == 0 {
			g.Layers = 2
		}
		for _, dim := range []struct {
			name string
			v    int
		}{
			{"feature_dim", g.FeatureDim},
			{"hidden_dim", g.HiddenDim},
			{"output_dim", g.OutputDim},
		} {
			if dim.v < 1 || dim.v > MaxFeatureDim {
				return k, badf("graph.%s %d out of range 1..%d", dim.name, dim.v, MaxFeatureDim)
			}
		}
		if g.Layers < 1 || g.Layers > MaxLayers {
			return k, badf("graph.layers %d out of range 1..%d", g.Layers, MaxLayers)
		}
		k.graph = g
	}

	model := req.Model
	if model == "" {
		model = accel.GoPIM.String()
	}
	var err error
	if k.model, err = modelByName(model); err != nil {
		return k, err
	}

	k.seed = req.Seed
	if k.seed == 0 {
		k.seed = 1
	}
	k.microBatch = req.MicroBatch
	if k.microBatch == 0 {
		k.microBatch = 64
	}
	if k.microBatch < 1 || k.microBatch > MaxMicroBatch {
		return k, badf("micro_batch %d out of range 1..%d", req.MicroBatch, MaxMicroBatch)
	}
	if req.Theta < 0 || req.Theta > 1 || math.IsNaN(req.Theta) {
		return k, badf("theta %v out of range [0,1]", req.Theta)
	}
	k.theta = req.Theta
	if req.Budget < 0 {
		return k, badf("budget %d is negative", req.Budget)
	}
	chip := reram.DefaultChip()
	if max := chip.TotalCrossbars() * 64; req.Budget > max {
		return k, badf("budget %d exceeds %d (64 chips' worth of crossbars)", req.Budget, max)
	}
	k.budget = req.Budget
	switch req.Profile {
	case "", "fast":
	case "full":
		k.fullProfile = true
	default:
		return k, badf("profile %q must be \"fast\" or \"full\"", req.Profile)
	}
	k.usePred = req.UsePredictor
	k.simulate = req.Simulate
	k.explain = req.Explain
	return k, nil
}

// stageNames projects the built stages' display names.
func stageNames(stages []stage.Stage) []string {
	names := make([]string, len(stages))
	for i, s := range stages {
		names[i] = s.Name
	}
	return names
}

// dataset materialises the workload the key describes.
func (k planKey) datasetOf() graphgen.Dataset {
	if k.dataset != "" {
		d, err := graphgen.ByName(k.dataset)
		if err != nil {
			panic(err) // normalize validated the name
		}
		return d
	}
	g := k.graph
	return graphgen.Dataset{
		Name:          g.Name,
		PaperVertices: g.Vertices,
		PaperEdges:    int(float64(g.Vertices) * g.AvgDegree / 2),
		PaperAvgDeg:   g.AvgDegree,
		FeatureDim:    g.FeatureDim,
		Layers:        g.Layers,
		InputCh:       g.FeatureDim,
		HiddenCh:      g.HiddenDim,
		OutputCh:      g.OutputDim,
	}
}

// StagePlan is one pipeline stage's slice of the replica plan.
type StagePlan struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// TimeNS is the profiled per-micro-batch latency at one replica.
	TimeNS float64 `json:"time_ns"`
	// AllocTimeNS is the latency the allocator planned against — the
	// MLP prediction when use_predictor is set, else TimeNS.
	AllocTimeNS float64 `json:"alloc_time_ns"`
	Crossbars   int     `json:"crossbars"`
	Replicas    int     `json:"replicas"`
}

// SimSummary is the optional what-if accelerator simulation.
type SimSummary struct {
	Model          string  `json:"model"`
	MakespanNS     float64 `json:"makespan_ns"`
	EnergyPJ       float64 `json:"energy_pj"`
	CrossbarsUsed  int     `json:"crossbars_used"`
	UpdateFraction float64 `json:"update_fraction"`
	AvgIdleFrac    float64 `json:"avg_idle_frac"`
}

// ExplainWindow caps how many micro-batches the explain analysis
// re-simulates at event granularity. Pipelines reach steady state
// within a few multiples of the stage count; a window this size keeps
// the analysis bounded while the fill/steady/drain structure — and so
// the bottleneck and gap figures — is fully represented.
const ExplainWindow = 256

// ExplainStage is one stage's row of the explain block.
type ExplainStage struct {
	Name        string  `json:"name"`
	Replicas    int     `json:"replicas"`
	Utilization float64 `json:"utilization"`
	// CritShare is the fraction of the window's makespan this stage
	// spends on the critical path; SlackRank orders stages by it
	// (1 = bottleneck).
	CritShare float64 `json:"crit_share"`
	SlackRank int     `json:"slack_rank"`
	// Idle attribution by bubble class (ns over the analyzed window).
	FillNS      float64 `json:"fill_ns"`
	DrainNS     float64 `json:"drain_ns"`
	StarveNS    float64 `json:"starve_ns"`
	OccupancyNS float64 `json:"occupancy_ns"`
	// Makespan deltas from ±1 replica of this stage over the window.
	DeltaPlusNS  float64 `json:"delta_plus_ns"`
	DeltaMinusNS float64 `json:"delta_minus_ns"`
}

// ExplainBlock is the opt-in critical-path analysis of the plan.
type ExplainBlock struct {
	// WindowMicroBatches is how many micro-batches were analyzed
	// (min(micro_batches, ExplainWindow)).
	WindowMicroBatches int            `json:"window_micro_batches"`
	MakespanNS         float64        `json:"makespan_ns"`
	Eq6NS              float64        `json:"eq6_ns"`
	Eq6GapNS           float64        `json:"eq6_gap_ns"`
	Eq6GapFrac         float64        `json:"eq6_gap_frac"`
	Bottleneck         string         `json:"bottleneck"`
	PathEvents         int            `json:"path_events"`
	PathDataDep        int            `json:"path_data_dep"`
	PathOccupancy      int            `json:"path_occupancy"`
	PathBarrier        int            `json:"path_barrier"`
	Stages             []ExplainStage `json:"stages"`
}

// PlanResponse answers a PlanRequest. Identical requests produce
// byte-identical serialisations of this struct — the determinism
// contract the handler tests pin.
type PlanResponse struct {
	Dataset      string `json:"dataset"`
	Model        string `json:"model"`
	Seed         int64  `json:"seed"`
	MicroBatch   int    `json:"micro_batch"`
	MicroBatches int    `json:"micro_batches"`
	// Theta is the resolved selective-updating threshold (the adaptive
	// rule's choice when the request left it 0).
	Theta float64 `json:"theta"`
	// Budget is the replica crossbar pool the plan drew from;
	// BudgetUsed is how much of it Algorithm 1 spent.
	Budget     int `json:"budget"`
	BudgetUsed int `json:"budget_used"`
	// PredictedMakespanNS is equation (6)'s closed-form pipeline total
	// for the allocation; ScheduledMakespanNS is the cycle-accurate
	// pipeline simulation of the same plan.
	PredictedMakespanNS float64     `json:"predicted_makespan_ns"`
	ScheduledMakespanNS float64     `json:"scheduled_makespan_ns"`
	Stages              []StagePlan `json:"stages"`
	Simulation          *SimSummary `json:"simulation,omitempty"`
	// Explain is the opt-in critical-path analysis (request
	// "explain": true); omitted otherwise so pre-existing response
	// bodies keep their exact bytes.
	Explain *ExplainBlock `json:"explain,omitempty"`
}

// computePlan answers one normalized planning query. It is a pure
// deterministic function of the key: the same key always yields the
// same response, whatever the concurrency, worker count or request
// order — that is what makes the response cacheable and the cache
// counters Sim-clock material.
func computePlan(k planKey) *PlanResponse {
	return computePlanStaged(k, func(string) func() { return func() {} })
}

// computePlanStaged is computePlan with lifecycle-stage hooks: begin
// is called with each stage name ("plan", then "simulate" when the
// request asks for a what-if run) and returns the closer for that
// stage. The hooks observe timing only — the response remains a pure
// function of the key.
func computePlanStaged(k planKey, begin func(name string) func()) *PlanResponse {
	endPlan := begin("plan")
	d := k.datasetOf()
	chip := reram.DefaultChip()
	deg := d.SynthDegreeModel(k.seed)

	theta := k.theta
	if theta == 0 {
		theta = d.AdaptiveTheta()
	}
	cfg := stage.Config{
		Chip:       chip,
		Dataset:    d,
		Deg:        deg,
		MicroBatch: k.microBatch,
		Layout:     mapping.InterleavedLayout(deg.DegreesByIndex, chip.CrossbarRows),
		Plan:       mapping.NewUpdatePlan(deg.DegreesByIndex, theta, 20),
	}
	stages := stage.Build(cfg)

	numMB := (deg.N + k.microBatch - 1) / k.microBatch
	if numMB < 1 {
		numMB = 1
	}
	budget := k.budget
	if budget == 0 {
		budget = chip.TotalCrossbars() - stage.TotalCrossbars(stages)
		if budget < 0 {
			budget = 0
		}
	}

	req := alloc.FromStages(stages, budget, numMB)
	caps := make([]int, len(stages))
	for i := range caps {
		caps[i] = numMB * accel.IntraSplit
	}
	req.MaxReplicas = caps

	allocTimes := req.TimesNS
	if k.usePred {
		// Shared immutable model, one per (profile mode, seed), via the
		// single-flight cache: concurrent first requests coalesce onto
		// one training run. Predictions use the full-update stage
		// structure, as profiled (see experiments.predictTimesFor).
		pred := experiments.SharedPredictor(experiments.Options{
			Seed: k.seed, Fast: !k.fullProfile,
		})
		allocTimes = pred.PredictTimes(stage.Config{
			Chip:       chip,
			Dataset:    d,
			Deg:        deg,
			MicroBatch: k.microBatch,
		})
	}

	mlReq := req
	mlReq.TimesNS = allocTimes
	res := alloc.Greedy(mlReq)

	sched := pipeline.Simulate(pipeline.Input{
		TimesNS:      req.TimesNS, // true times, always
		Replicas:     res.Replicas,
		MicroBatches: numMB,
		Mode:         pipeline.IntraInterBatch,
	})

	resp := &PlanResponse{
		Dataset:             d.Name,
		Model:               k.model.String(),
		Seed:                k.seed,
		MicroBatch:          k.microBatch,
		MicroBatches:        numMB,
		Theta:               theta,
		Budget:              budget,
		BudgetUsed:          res.Used,
		PredictedMakespanNS: alloc.TotalTimeNS(allocTimes, res.Replicas, numMB),
		ScheduledMakespanNS: sched.MakespanNS,
	}
	for i, s := range stages {
		resp.Stages = append(resp.Stages, StagePlan{
			Name:        s.Name,
			Kind:        s.Kind.String(),
			TimeNS:      s.TimeNS,
			AllocTimeNS: allocTimes[i],
			Crossbars:   s.Crossbars,
			Replicas:    res.Replicas[i],
		})
	}
	endPlan()

	if k.explain {
		endExplain := begin("explain")
		window := numMB
		if window > ExplainWindow {
			window = ExplainWindow
		}
		ex := explain.Analyze(trace.Input{
			TimesNS:      req.TimesNS, // true times, as scheduled
			Replicas:     res.Replicas,
			MicroBatches: window,
		}, stageNames(stages), explain.Options{Sensitivity: true})
		block := &ExplainBlock{
			WindowMicroBatches: window,
			MakespanNS:         ex.MakespanNS,
			Eq6NS:              ex.Eq6NS,
			Eq6GapNS:           ex.Eq6GapNS,
			Eq6GapFrac:         ex.Eq6GapFrac,
			Bottleneck:         ex.Bottleneck,
			PathEvents:         len(ex.Path),
			PathDataDep:        ex.PathReasons.DataDep,
			PathOccupancy:      ex.PathReasons.Occupancy,
			PathBarrier:        ex.PathReasons.Barrier,
		}
		for _, s := range ex.Stages {
			block.Stages = append(block.Stages, ExplainStage{
				Name:         s.Name,
				Replicas:     s.Replicas,
				Utilization:  s.Utilization,
				CritShare:    s.CritShare,
				SlackRank:    s.SlackRank,
				FillNS:       s.FillNS,
				DrainNS:      s.DrainNS,
				StarveNS:     s.StarveNS,
				OccupancyNS:  s.OccupancyNS,
				DeltaPlusNS:  s.DeltaPlusNS,
				DeltaMinusNS: s.DeltaMinusNS,
			})
		}
		resp.Explain = block
		endExplain()
	}

	if k.simulate {
		endSim := begin("simulate")
		defer endSim()
		w := accel.Workload{
			Dataset:    d,
			Deg:        deg,
			Seed:       k.seed,
			MicroBatch: k.microBatch,
		}
		if k.theta != 0 {
			w.ThetaOverride = k.theta
		}
		if k.usePred {
			w.PredictedTimes = allocTimes
		}
		r := accel.Run(k.model, w)
		sim := &SimSummary{
			Model:          r.Kind.String(),
			MakespanNS:     r.MakespanNS,
			EnergyPJ:       r.EnergyPJ(),
			CrossbarsUsed:  r.CrossbarsUsed,
			UpdateFraction: r.UpdateFraction,
		}
		var idle float64
		for _, f := range r.IdleFrac {
			idle += f
		}
		if len(r.IdleFrac) > 0 {
			sim.AvgIdleFrac = idle / float64(len(r.IdleFrac))
		}
		resp.Simulation = sim
	}
	return resp
}
