package serve

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// planSeeds is the fuzz corpus: the validation suite's malformed
// bodies (TestPlanValidation) plus representative valid requests, so
// the fuzzer starts from both sides of every validation boundary.
func planSeeds() []string {
	return []string{
		// The 4xx surface of TestPlanValidation.
		``,
		`{"dataset":`,
		`{"dataset":"arxiv","bogus":1}`,
		`{}`,
		`{"dataset":"arxiv","graph":{"vertices":10,"avg_degree":2,"feature_dim":4}}`,
		`{"dataset":"imagenet"}`,
		`{"dataset":"arxiv","model":"TPU"}`,
		`{"graph":{"vertices":0,"avg_degree":2,"feature_dim":4}}`,
		fmt.Sprintf(`{"graph":{"vertices":%d,"avg_degree":2,"feature_dim":4}}`, MaxVertices+1),
		`{"graph":{"vertices":100,"avg_degree":-1,"feature_dim":4}}`,
		`{"graph":{"vertices":10,"avg_degree":11,"feature_dim":4}}`,
		`{"graph":{"vertices":100,"avg_degree":2,"feature_dim":0}}`,
		`{"graph":{"vertices":100,"avg_degree":2,"feature_dim":4,"layers":9}}`,
		`{"dataset":"arxiv","theta":1.5}`,
		`{"dataset":"arxiv","budget":-4}`,
		`{"dataset":"arxiv","budget":2000000000}`,
		`{"dataset":"arxiv","micro_batch":-2}`,
		`{"dataset":"arxiv","profile":"turbo"}`,
		// Valid requests the mutator can perturb.
		`{"dataset":"ddi"}`,
		`{"dataset":"arxiv","model":"GoPIM","theta":0.5,"budget":1000,"simulate":true}`,
		`{"graph":{"vertices":5000,"avg_degree":12.5,"feature_dim":128,"layers":3},"micro_batch":32}`,
		`{"dataset":"cora","use_predictor":true,"profile":"fast","explain":true}`,
		// JSON torture: numeric edge cases and nesting.
		`{"dataset":"arxiv","theta":1e309}`,
		`{"dataset":"arxiv","seed":-9223372036854775808}`,
		`{"graph":{"vertices":1,"avg_degree":1e-300,"feature_dim":1}}`,
		`[1,2,3]`,
		`"dataset"`,
		`{"graph":null}`,
	}
}

// FuzzDecodePlanRequest hammers the planning daemon's untrusted-input
// surface: whatever a churning client sends, decoding must never
// panic, must classify every rejection as a client error
// (badRequestError → HTTP 400, never a daemon crash or 500 for bad
// bytes), and must be deterministic — the same body always yields the
// same verdict and cache key.
func FuzzDecodePlanRequest(f *testing.F) {
	for _, s := range planSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		key1, err1 := decodePlanRequest(strings.NewReader(body))
		key2, err2 := decodePlanRequest(strings.NewReader(body))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic verdict for %q: %v vs %v", body, err1, err2)
		}
		if err1 != nil {
			if !errors.As(err1, &badRequestError{}) {
				t.Fatalf("rejection of %q is not a client error: %v", body, err1)
			}
			if err2.Error() != err1.Error() {
				t.Fatalf("nondeterministic error for %q: %q vs %q", body, err1, err2)
			}
			return
		}
		if key1 != key2 {
			t.Fatalf("nondeterministic cache key for %q: %+v vs %+v", body, key1, key2)
		}
	})
}
