// Package serve implements the gopim planning daemon: a long-running
// HTTP/JSON front end that answers allocation-planning queries —
// "given this graph's stats and this crossbar budget, what replica
// allocation / predicted makespan / θ?" — against shared immutable
// model state (ROADMAP item 2).
//
// # Request lifecycle
//
//	decode → validate/normalize → cache fast path → admission
//	(bounded queue, 429 on overflow, per-request deadline) →
//	workspace acquire → single-flight compute → respond
//
// Planning is a pure function of the normalized request (see
// computePlan), so responses are cached as their final JSON bytes,
// keyed by the normalized request. Identical requests therefore get
// byte-identical bodies whether they hit the cache, coalesce onto an
// in-flight computation, or recompute after eviction — and at any
// worker count.
//
// # Admission control
//
// Concurrency is bounded by a pool of request workspaces (Workers
// slots); arrivals beyond Workers+QueueDepth are rejected immediately
// with 429 rather than queuing without bound, and a queued request
// that cannot get a workspace before its deadline is shed with 503.
// Cache hits bypass admission entirely — they touch no workspace.
//
// # Determinism contract
//
// For a serialized request script, every Sim-clock serve metric
// (requests, plans computed, cache hits, evictions, validation
// rejections) is a pure function of the script, and every response
// body is a pure function of its request — CI replays a script twice
// and diffs both. Scheduling-dependent signals (429s, queue waits,
// latencies) stay on the Wall clock.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"gopim/internal/accel"
	"gopim/internal/graphgen"
	"gopim/internal/obs"
	"gopim/internal/parallel"
	"gopim/internal/singleflight"
)

// Serve metrics. The Sim-clock side counts request-set-determined
// quantities (see the package determinism contract); everything
// scheduling-dependent lives on the Wall clock.
var (
	mRequests = obs.NewCounter("serve.requests", obs.Sim,
		"planning API requests received")
	mPlans = obs.NewCounter("serve.plans_computed", obs.Sim,
		"planning computations executed (cache misses)")
	mHits = obs.NewCounter("serve.cache_hits", obs.Sim,
		"planning requests answered from the cache (incl. coalesced)")
	mEvictions = obs.NewCounter("serve.cache_evictions", obs.Sim,
		"cached plans evicted by LRU pressure")
	mBadRequests = obs.NewCounter("serve.bad_requests", obs.Sim,
		"planning requests rejected by validation (4xx)")
	mRejected = obs.NewCounter("serve.rejected_overload", obs.Wall,
		"planning requests shed with 429 (queue full)")
	mDeadline = obs.NewCounter("serve.deadline_shed", obs.Wall,
		"planning requests shed with 503 (deadline hit while queued)")
	mLatency = obs.NewTimer("serve.request_ns",
		"wall latency per planning request")
)

// Config tunes the daemon.
type Config struct {
	// Addr is the listen address (e.g. ":8080").
	Addr string
	// Workers bounds concurrent planning computations; 0 means the
	// process worker-pool size (parallel.Workers()).
	Workers int
	// QueueDepth bounds requests waiting for a workspace beyond the
	// Workers in flight; arrivals past Workers+QueueDepth get 429.
	// 0 means DefaultQueueDepth; negative means no queue (admit only
	// up to Workers).
	QueueDepth int
	// CacheSize bounds the plan cache (entries); 0 means
	// DefaultCacheSize; negative means unbounded.
	CacheSize int
	// RequestTimeout bounds one request's queue wait + computation
	// (default DefaultRequestTimeout).
	RequestTimeout time.Duration
	// Timeouts harden the HTTP listener (zero value: obs defaults).
	Timeouts obs.ServerTimeouts
	// OnRequest, when non-nil, observes every planning request after it
	// completes: a short id, its wall duration, and the terminal error
	// (nil for 200s). The CLI wires this to the run manifest.
	OnRequest func(id string, wall time.Duration, err error)
	// AccessLog, when non-nil, receives one structured JSON line per
	// HTTP request (and a warning line per shed request), correlated
	// with traces by trace_id.
	AccessLog *obs.AccessLogger
	// TraceSample is the head-sampling rate in [0,1] for per-request
	// span trees: that fraction of the trace-ID space records
	// Chrome-trace spans for each lifecycle stage. Incoming sampled
	// traceparent flags are always honored regardless.
	TraceSample float64
	// RequestRing bounds the completed requests /debug/requests
	// retains. 0 means DefaultRequestRing; negative disables retention
	// (active requests still show).
	RequestRing int
}

// Defaults for Config's zero values.
const (
	DefaultQueueDepth     = 64
	DefaultCacheSize      = 1024
	DefaultRequestTimeout = 30 * time.Second
	DefaultRequestRing    = 128
)

// workspace is one request's scratch state, drawn from the bounded
// pool for the duration of a planning computation. The pool doubles as
// the admission semaphore: holding a workspace IS the right to
// compute.
type workspace struct {
	// enc accumulates the marshalled response before it is copied into
	// the cache, so steady-state encoding reuses one growing buffer
	// per slot instead of allocating per request.
	enc []byte
}

// Server is the planning daemon.
type Server struct {
	cfg      Config
	cache    *singleflight.Cache[planKey, []byte]
	pool     chan *workspace
	queued   chan struct{} // admission tokens: Workers+QueueDepth
	mux      *http.ServeMux
	handler  http.Handler // mux behind the telemetry middleware
	reqlog   *obs.RequestLog
	inflight atomic.Int64
	draining atomic.Bool
	ln       net.Listener
	srv      *http.Server
	done     chan struct{}
	started  bool
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = parallel.Workers()
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = DefaultQueueDepth
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	switch {
	case cfg.CacheSize == 0:
		cfg.CacheSize = DefaultCacheSize
	case cfg.CacheSize < 0:
		cfg.CacheSize = 0
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.Timeouts == (obs.ServerTimeouts{}) {
		cfg.Timeouts = obs.DefaultServerTimeouts()
	}
	switch {
	case cfg.RequestRing == 0:
		cfg.RequestRing = DefaultRequestRing
	case cfg.RequestRing < 0:
		cfg.RequestRing = 0
	}
	if cfg.TraceSample < 0 {
		cfg.TraceSample = 0
	} else if cfg.TraceSample > 1 {
		cfg.TraceSample = 1
	}
	s := &Server{
		cfg:    cfg,
		cache:  singleflight.New[planKey, []byte](cfg.CacheSize),
		pool:   make(chan *workspace, cfg.Workers),
		queued: make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		done:   make(chan struct{}),
	}
	s.cache.OnEvict = func(planKey, []byte) { mEvictions.Inc() }
	for i := 0; i < cfg.Workers; i++ {
		s.pool <- &workspace{}
	}
	s.reqlog = obs.NewRequestLog(cfg.RequestRing)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/requests", s.handleRequests)
	s.handler = s.instrument(s.mux)
	return s
}

// Handler exposes the daemon's endpoint set, telemetry middleware
// included (handler tests mount it on httptest servers).
func (s *Server) Handler() http.Handler { return s.handler }

// Workers reports the bounded pool size requests compute under.
func (s *Server) Workers() int { return s.cfg.Workers }

// Start binds the listen address — synchronously, so an unusable
// address fails here — and serves in the background until Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = obs.NewHTTPServer(s.handler, s.cfg.Timeouts)
	s.started = true
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// BeginDrain flips readiness: /readyz answers 503 from here on, so
// load balancers stop routing new work while in-flight requests
// finish. Shutdown calls it implicitly.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Shutdown stops accepting connections and drains in-flight requests,
// bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	if !s.started {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
	}
	return err
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// handlePlan is the planning endpoint: POST /v1/plan.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	mRequests.Inc()
	active := obs.ActiveFrom(r.Context())
	var reqID string
	var terminal error
	defer func() {
		mLatency.ObserveDuration(time.Since(start))
		if s.cfg.OnRequest != nil {
			if reqID == "" {
				reqID = "plan:invalid"
			}
			s.cfg.OnRequest(reqID, time.Since(start), terminal)
		}
	}()
	fail := func(status int, err error) {
		terminal = err
		active.SetError(err.Error())
		writeJSON(w, status, errorBody{Error: err.Error()})
	}

	if r.Method != http.MethodPost {
		mBadRequests.Inc()
		w.Header().Set("Allow", http.MethodPost)
		fail(http.StatusMethodNotAllowed, errors.New("use POST with a JSON PlanRequest body"))
		return
	}
	key, err := decodePlanRequest(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		mBadRequests.Inc()
		status := http.StatusBadRequest
		if !errors.As(err, &badRequestError{}) {
			status = http.StatusInternalServerError
		}
		fail(status, err)
		return
	}
	reqID = fmt.Sprintf("plan:%s/%s", key.datasetOf().Name, key.model)
	active.SetLabel(reqID)

	// Cache fast path: completed plans are served without consuming a
	// workspace or queue slot — hits must stay cheap under load.
	endLookup := beginStage(r.Context(), "cache_lookup")
	body, ok := s.cache.Get(key)
	endLookup()
	if ok {
		mHits.Inc()
		active.SetCache("hit")
		s.writePlan(w, body, "hit")
		return
	}

	// Admission: claim a queue token (bounded: Workers+QueueDepth) or
	// shed immediately — the queue must never grow without bound.
	endAdmission := beginStage(r.Context(), "admission")
	select {
	case s.queued <- struct{}{}:
		endAdmission()
		defer func() { <-s.queued }()
	default:
		endAdmission()
		mRejected.Inc()
		w.Header().Set("Retry-After", "1")
		fail(http.StatusTooManyRequests, errors.New("planning queue full, retry later"))
		return
	}

	// Workspace: wait for a pool slot under the request deadline. This
	// stage's duration is the request's queue time.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	endAcquire := beginStage(r.Context(), "workspace_acquire")
	var ws *workspace
	select {
	case ws = <-s.pool:
		endAcquire()
		defer func() { s.pool <- ws }()
	case <-ctx.Done():
		endAcquire()
		mDeadline.Inc()
		fail(http.StatusServiceUnavailable, fmt.Errorf("no planning capacity within deadline: %w", ctx.Err()))
		return
	}

	body, out := s.cache.DoOutcome(key, func() []byte {
		mPlans.Inc()
		resp := computePlanStaged(key, func(name string) func() {
			return beginStage(r.Context(), name)
		})
		endMarshal := beginStage(r.Context(), "marshal")
		defer endMarshal()
		ws.enc = ws.enc[:0]
		ws.enc = append(ws.enc, mustMarshal(resp)...)
		ws.enc = append(ws.enc, '\n')
		// The cache owns an immutable copy; ws.enc is reused.
		return append([]byte(nil), ws.enc...)
	})
	if out.Hit() {
		mHits.Inc()
	}
	active.SetCache(out.String())
	s.writePlan(w, body, out.String())
}

// writePlan sends a cached plan body with its cache disposition
// ("hit", "miss", or "coalesced"). Bodies are immutable cache values,
// written verbatim so identical requests stay byte-identical.
func (s *Server) writePlan(w http.ResponseWriter, body []byte, disposition string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Gopim-Cache", disposition)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func mustMarshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: marshal response: %v", err))
	}
	return b
}

// datasetInfo is one catalog entry of GET /v1/datasets.
type datasetInfo struct {
	Name          string  `json:"name"`
	Task          string  `json:"task"`
	Vertices      int     `json:"vertices"`
	Edges         int     `json:"edges"`
	AvgDegree     float64 `json:"avg_degree"`
	FeatureDim    int     `json:"feature_dim"`
	AdaptiveTheta float64 `json:"adaptive_theta"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	out := make([]datasetInfo, 0, 8)
	for _, d := range graphgen.Catalog() {
		out = append(out, datasetInfo{
			Name:          d.Name,
			Task:          d.Task.String(),
			Vertices:      d.PaperVertices,
			Edges:         d.PaperEdges,
			AvgDegree:     d.PaperAvgDeg,
			FeatureDim:    d.FeatureDim,
			AdaptiveTheta: d.AdaptiveTheta(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, 9)
	for _, k := range []accel.Kind{
		accel.Serial, accel.SlimGNNLike, accel.ReGraphX, accel.ReFlip,
		accel.GoPIMVanilla, accel.GoPIM, accel.PlusPP, accel.PlusISU,
		accel.Pipelayer,
	} {
		names = append(names, k.String())
	}
	writeJSON(w, http.StatusOK, names)
}

// handleHealth is liveness: 200 as long as the process can answer at
// all — it stays 200 through a drain (the process is alive; it just
// doesn't want new work).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is readiness: 200 while the daemon accepts new work,
// 503 once BeginDrain/Shutdown starts draining. Load balancers probe
// this one; orchestrators restart on /healthz.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleMetrics serves the registry in the negotiated format:
//
//   - default (plain curl): the legacy deterministic text snapshot,
//     Sim clock only; ?clock=all appends the Wall section. Existing
//     scripts and CI greps keep working unchanged.
//   - Prometheus/OpenMetrics scrapers (by Accept header, or forced
//     with ?format=prometheus / ?format=openmetrics): the exposition
//     format, both clocks, plus Go runtime stats.
//   - ?format=json or Accept: application/json: the JSON snapshot.
//
// Scrape-format requests refresh the saturation gauges first; none of
// that touches a Sim metric, so scraping cannot perturb deterministic
// snapshots.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" {
		accept := r.Header.Get("Accept")
		switch {
		case strings.Contains(accept, "application/openmetrics-text"):
			format = "openmetrics"
		case strings.Contains(accept, "text/plain") && strings.Contains(accept, "version=0.0.4"):
			format = "prometheus"
		case strings.Contains(accept, "application/json"):
			format = "json"
		}
	}
	reg := obs.Default()
	switch format {
	case "prometheus", "openmetrics":
		s.refreshScrapeGauges()
		openMetrics := format == "openmetrics"
		if openMetrics {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		} else {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		}
		_ = reg.WritePrometheus(w)
		_ = obs.WriteRuntimePrometheus(w)
		if openMetrics {
			_, _ = fmt.Fprintln(w, "# EOF")
		}
	case "json":
		s.refreshScrapeGauges()
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if r.URL.Query().Get("clock") == "all" {
			_ = reg.WriteText(w)
			return
		}
		_ = reg.WriteText(w, obs.Sim)
	}
}
