package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gopim/internal/parallel"
)

var update = flag.Bool("update", false, "rewrite golden files")

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postPlan(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/plan: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// goldenRequests are the representative queries the golden files pin.
// The predictor path is excluded deliberately: MLP training is the one
// computation whose floats could drift across architectures, and it
// has its own determinism test below.
var goldenRequests = []struct {
	name string
	body string
}{
	{"arxiv_default", `{"dataset":"arxiv"}`},
	{"ddi_budget", `{"dataset":"ddi","micro_batch":32,"budget":512}`},
	{"collab_theta_simulate", `{"dataset":"collab","theta":0.6,"simulate":true,"model":"GoPIM"}`},
	{"custom_graph", `{"graph":{"name":"social","vertices":50000,"avg_degree":12,"feature_dim":64},"seed":7}`},
	{"serial_whatif", `{"dataset":"Cora","model":"Serial","simulate":true}`},
	{"ddi_explain", `{"dataset":"ddi","explain":true}`},
	{"collab_explain_simulate", `{"dataset":"collab","simulate":true,"explain":true}`},
}

// TestPlanGoldenResponses pins the exact JSON bodies for the
// representative request set.
func TestPlanGoldenResponses(t *testing.T) {
	ts := newTestServer(t, Config{})
	for _, tc := range goldenRequests {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postPlan(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q", ct)
			}
			path := filepath.Join("testdata", "plan_"+tc.name+".golden.json")
			if *update {
				if err := os.WriteFile(path, body, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (rerun with -update to create)", err)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("response drifted from %s:\ngot:  %s\nwant: %s", path, body, want)
			}
		})
	}
}

// TestPlanValidation covers the 4xx surface: malformed bodies, unknown
// names, out-of-range statistics and budgets.
func TestPlanValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		status int
		frag   string // must appear in the error message
	}{
		{"empty body", ``, http.StatusBadRequest, "decode"},
		{"malformed json", `{"dataset":`, http.StatusBadRequest, "decode"},
		{"unknown field", `{"dataset":"arxiv","bogus":1}`, http.StatusBadRequest, "bogus"},
		{"no workload", `{}`, http.StatusBadRequest, "dataset or graph"},
		{"both workloads", `{"dataset":"arxiv","graph":{"vertices":10,"avg_degree":2,"feature_dim":4}}`, http.StatusBadRequest, "not both"},
		{"unknown dataset", `{"dataset":"imagenet"}`, http.StatusBadRequest, "unknown dataset"},
		{"unknown model", `{"dataset":"arxiv","model":"TPU"}`, http.StatusBadRequest, "unknown model"},
		{"zero vertices", `{"graph":{"vertices":0,"avg_degree":2,"feature_dim":4}}`, http.StatusBadRequest, "vertices"},
		{"huge vertices", fmt.Sprintf(`{"graph":{"vertices":%d,"avg_degree":2,"feature_dim":4}}`, MaxVertices+1), http.StatusBadRequest, "vertices"},
		{"bad degree", `{"graph":{"vertices":100,"avg_degree":-1,"feature_dim":4}}`, http.StatusBadRequest, "avg_degree"},
		{"degree over vertices", `{"graph":{"vertices":10,"avg_degree":11,"feature_dim":4}}`, http.StatusBadRequest, "avg_degree"},
		{"bad feature dim", `{"graph":{"vertices":100,"avg_degree":2,"feature_dim":0}}`, http.StatusBadRequest, "feature_dim"},
		{"deep layers", `{"graph":{"vertices":100,"avg_degree":2,"feature_dim":4,"layers":9}}`, http.StatusBadRequest, "layers"},
		{"theta too big", `{"dataset":"arxiv","theta":1.5}`, http.StatusBadRequest, "theta"},
		{"negative budget", `{"dataset":"arxiv","budget":-4}`, http.StatusBadRequest, "budget"},
		{"silly budget", `{"dataset":"arxiv","budget":2000000000}`, http.StatusBadRequest, "budget"},
		{"bad micro batch", `{"dataset":"arxiv","micro_batch":-2}`, http.StatusBadRequest, "micro_batch"},
		{"bad profile", `{"dataset":"arxiv","profile":"turbo"}`, http.StatusBadRequest, "profile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postPlan(t, ts.URL, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body is not JSON: %s", body)
			}
			if !strings.Contains(eb.Error, tc.frag) {
				t.Errorf("error %q does not mention %q", eb.Error, tc.frag)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/plan")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/plan: status %d, want 405", resp.StatusCode)
		}
	})
}

// TestPlanCacheHitMissEviction pins the cache lifecycle: miss, hit,
// LRU eviction, recompute — and byte-identical bodies throughout.
func TestPlanCacheHitMissEviction(t *testing.T) {
	ts := newTestServer(t, Config{CacheSize: 2})
	planned0, hits0, evict0 := mPlans.Value(), mHits.Value(), mEvictions.Value()

	reqA := `{"dataset":"ddi"}`
	reqB := `{"dataset":"Cora"}`
	reqC := `{"dataset":"ddi","micro_batch":128}`

	respA1, bodyA1 := postPlan(t, ts.URL, reqA)
	if got := respA1.Header.Get("X-Gopim-Cache"); got != "miss" {
		t.Fatalf("first request cache header %q, want miss", got)
	}
	respA2, bodyA2 := postPlan(t, ts.URL, reqA)
	if got := respA2.Header.Get("X-Gopim-Cache"); got != "hit" {
		t.Fatalf("repeat request cache header %q, want hit", got)
	}
	if !bytes.Equal(bodyA1, bodyA2) {
		t.Fatalf("hit body differs from miss body:\n%s\n%s", bodyA1, bodyA2)
	}

	postPlan(t, ts.URL, reqB) // fills slot 2
	postPlan(t, ts.URL, reqC) // evicts A (LRU: A was refreshed... B is oldest)
	// LRU order after A,A,B: front=B? No: A(miss), A(hit→front), B(miss→front),
	// C(miss→front) evicts the back = A's refresh? order front→back: C,B,A → A evicted.
	respA3, bodyA3 := postPlan(t, ts.URL, reqA)
	if got := respA3.Header.Get("X-Gopim-Cache"); got != "miss" {
		t.Fatalf("post-eviction request cache header %q, want miss (recompute)", got)
	}
	if !bytes.Equal(bodyA1, bodyA3) {
		t.Fatalf("recomputed body differs from original:\n%s\n%s", bodyA1, bodyA3)
	}

	if planned := mPlans.Value() - planned0; planned != 4 {
		t.Errorf("plans_computed delta = %d, want 4 (A, B, C, A-again)", planned)
	}
	if hits := mHits.Value() - hits0; hits != 1 {
		t.Errorf("cache_hits delta = %d, want 1", hits)
	}
	// Two evictions: C pushed A out, then recomputing A pushed B out.
	if evicted := mEvictions.Value() - evict0; evicted != 2 {
		t.Errorf("cache_evictions delta = %d, want 2", evicted)
	}
}

// TestPlanPredictorPathDeterministic exercises use_predictor (shared
// MLP inference) end to end: two requests for the same key must return
// byte-identical bodies, and the response must carry distinct
// alloc-time vs true-time stage latencies.
func TestPlanPredictorPathDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the shared predictor")
	}
	ts := newTestServer(t, Config{})
	req := `{"dataset":"arxiv","use_predictor":true}`
	resp1, body1 := postPlan(t, ts.URL, req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, body1)
	}
	_, body2 := postPlan(t, ts.URL, req)
	if !bytes.Equal(body1, body2) {
		t.Fatal("predictor-path responses are not byte-identical")
	}
	var pr PlanResponse
	if err := json.Unmarshal(body1, &pr); err != nil {
		t.Fatal(err)
	}
	var differs bool
	for _, s := range pr.Stages {
		if s.AllocTimeNS != s.TimeNS {
			differs = true
		}
	}
	if !differs {
		t.Error("use_predictor=true but every alloc_time_ns equals time_ns — the ML path was not used")
	}
}

// TestConcurrentLoadDeterministic is the headline load test: ≥64
// parallel requests over a small key set, at serve worker counts 1, 2
// and 8, all under -race. Every response must be 200 and byte-
// identical to every other response for the same request — whatever
// the interleaving, whoever computes, wherever coalescing happens.
func TestConcurrentLoadDeterministic(t *testing.T) {
	reqs := []string{
		`{"dataset":"ddi"}`,
		`{"dataset":"Cora","simulate":true}`,
		`{"dataset":"ddi","micro_batch":32}`,
		`{"graph":{"vertices":20000,"avg_degree":8,"feature_dim":32},"seed":3}`,
		`{"dataset":"ddi","explain":true}`,
	}
	canonical := make([][]byte, len(reqs))

	defer parallel.SetWorkers(0)
	for _, workers := range []int{1, 2, 8} {
		parallel.SetWorkers(workers)
		ts := newTestServer(t, Config{Workers: workers, QueueDepth: 256})

		const total = 64
		bodies := make([][]byte, total)
		var wg sync.WaitGroup
		for i := 0; i < total; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, body := postPlan(t, ts.URL, reqs[i%len(reqs)])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("workers=%d req %d: status %d: %s", workers, i, resp.StatusCode, body)
					return
				}
				bodies[i] = body
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		for i, b := range bodies {
			ref := i % len(reqs)
			if canonical[ref] == nil {
				canonical[ref] = b
			}
			if !bytes.Equal(b, canonical[ref]) {
				t.Fatalf("workers=%d: request %d body differs from the canonical response for its key", workers, i)
			}
		}
		ts.Close()
	}
}

// TestAdmissionControl pins the backpressure contract: with one
// workspace and no queue, a second concurrent request is shed with
// 429 rather than waiting without bound; once capacity frees, the same
// request succeeds.
func TestAdmissionControl(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: -1, RequestTimeout: 5 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the single workspace (and the single admission token) by
	// draining the pool directly — equivalent to a long-running plan.
	ws := <-srv.pool
	srv.queued <- struct{}{}

	resp, body := postPlan(t, ts.URL, `{"dataset":"ddi","micro_batch":48}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Release capacity: the same request now computes.
	srv.pool <- ws
	<-srv.queued
	resp, body = postPlan(t, ts.URL, `{"dataset":"ddi","micro_batch":48}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d: %s", resp.StatusCode, body)
	}
}

// TestQueueDeadline pins the 503 path: a request admitted to the queue
// but unable to get a workspace before its deadline is shed.
func TestQueueDeadline(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ws := <-srv.pool // wedge the only workspace
	defer func() { srv.pool <- ws }()

	start := time.Now()
	resp, body := postPlan(t, ts.URL, `{"dataset":"Cora","micro_batch":96}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("deadline shed took %v — the per-request deadline is not bounding queue waits", waited)
	}
}

// TestCacheHitsBypassAdmission: a cached plan must be served even when
// the pool is fully wedged — hits take the fast path.
func TestCacheHitsBypassAdmission(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := `{"dataset":"Cora","micro_batch":80}`
	if resp, body := postPlan(t, ts.URL, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: status %d: %s", resp.StatusCode, body)
	}
	ws := <-srv.pool // wedge all capacity
	defer func() { srv.pool <- ws }()
	resp, body := postPlan(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached request blocked by admission: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Gopim-Cache"); got != "hit" {
		t.Fatalf("cache header %q, want hit", got)
	}
}

// TestAuxEndpoints smoke-tests the discovery and health surface.
func TestAuxEndpoints(t *testing.T) {
	ts := newTestServer(t, Config{})

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return b
	}

	var datasets []datasetInfo
	if err := json.Unmarshal(get("/v1/datasets"), &datasets); err != nil {
		t.Fatal(err)
	}
	if len(datasets) != 7 {
		t.Errorf("datasets: %d entries, want 7", len(datasets))
	}
	var models []string
	if err := json.Unmarshal(get("/v1/models"), &models); err != nil {
		t.Fatal(err)
	}
	if len(models) != 9 {
		t.Errorf("models: %d entries, want 9", len(models))
	}
	if !strings.Contains(string(get("/healthz")), "ok") {
		t.Error("healthz not ok")
	}
	// /metrics must include the serve counters once traffic has flowed.
	postPlan(t, ts.URL, `{"dataset":"ddi","micro_batch":56}`)
	if m := string(get("/metrics")); !strings.Contains(m, "serve.plans_computed") {
		t.Errorf("/metrics missing serve counters:\n%s", m)
	}
}

// TestStartShutdown exercises the real listener lifecycle: bind,
// serve, graceful shutdown, refused afterwards.
func TestStartShutdown(t *testing.T) {
	srv := New(Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	url := "http://" + srv.Addr().String()
	resp, body := postPlan(t, url, `{"dataset":"Cora"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still reachable after Shutdown")
	}
}

// TestOnRequestHook checks the manifest/progress hook sees terminal
// outcomes.
func TestOnRequestHook(t *testing.T) {
	var mu sync.Mutex
	var ids []string
	var errs []error
	ts := newTestServer(t, Config{OnRequest: func(id string, wall time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		ids = append(ids, id)
		errs = append(errs, err)
	}})
	postPlan(t, ts.URL, `{"dataset":"arxiv","micro_batch":112}`)
	postPlan(t, ts.URL, `{"dataset":"nope"}`)
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(ids))
	}
	if ids[0] != "plan:arxiv/GoPIM" || errs[0] != nil {
		t.Errorf("first hook: id=%q err=%v", ids[0], errs[0])
	}
	if errs[1] == nil {
		t.Error("validation failure did not reach the hook")
	}
}
