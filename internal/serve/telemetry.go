package serve

// Wall-clock HTTP telemetry for the daemon: the middleware every
// request passes through (trace-context propagation, the request-log
// record behind /debug/requests, RED metrics, access logging) and the
// scrape-time gauges /metrics refreshes.
//
// Everything registered here lives on the Wall clock — request IDs are
// random, latencies and code classes are scheduling-dependent — so the
// Sim-clock snapshot stays byte-identical whether or not a scraper,
// inspector, or access logger is attached. That is the two-clock
// contract PR 2 established, extended to the daemon's front door.

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"gopim/internal/obs"
)

// Saturation gauges, refreshed at scrape time by /metrics (a gauge set
// per request would only be stale by scrape time anyway).
var (
	mInFlight = obs.NewGauge("http.in_flight",
		"HTTP requests currently being handled")
	mQueueDepth = obs.NewGauge("http.queue_depth",
		"admission tokens held (queued + computing planning requests)")
	mPoolBusy = obs.NewGauge("http.pool_busy",
		"planning workspaces currently checked out")
	mCacheEntries = obs.NewGauge("http.plan_cache_entries",
		"completed plans resident in the LRU cache")
)

// codeClasses are the response classes the RED error counters track:
// the coarse success classes plus each shed/reject status the daemon
// emits deliberately.
var codeClasses = []string{"2xx", "3xx", "400", "404", "405", "429", "4xx", "503", "5xx"}

var classCounters = func() map[string]*obs.Counter {
	m := make(map[string]*obs.Counter, len(codeClasses))
	for _, c := range codeClasses {
		m[c] = obs.NewCounter("http.requests"+obs.LabelSuffix("code", c), obs.Wall,
			"HTTP responses with status class "+c)
	}
	return m
}()

// codeClass buckets a status code into its counter class.
func codeClass(status int) string {
	switch {
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status == 400, status == 404, status == 405, status == 429:
		return strconv.Itoa(status)
	case status < 500:
		return "4xx"
	case status == 503:
		return "503"
	default:
		return "5xx"
	}
}

// routes are the daemon's endpoints; anything else is "other" so the
// per-route latency label set stays bounded whatever clients probe.
var routes = []string{
	"/v1/plan", "/v1/datasets", "/v1/models",
	"/healthz", "/readyz", "/metrics", "/debug/requests",
}

var routeTimers = func() map[string]*obs.Timer {
	m := make(map[string]*obs.Timer, len(routes)+1)
	for _, r := range append(append([]string(nil), routes...), "other") {
		m[r] = obs.NewTimer("http.request_ns"+obs.LabelSuffix("path", r),
			"wall latency of HTTP requests to "+r)
	}
	return m
}()

func routeOf(path string) string {
	for _, r := range routes {
		if path == r {
			return r
		}
	}
	return "other"
}

// statusWriter captures the terminal status and body size of a
// response for the access log and RED counters.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// instrument is the telemetry middleware every endpoint sits behind:
//
//  1. Trace context — accept an incoming W3C traceparent (the request
//     joins the caller's trace) or mint a fresh one; the response
//     echoes our child context so clients can join logs to traces.
//  2. Head sampling — TraceSample of the trace-ID space additionally
//     records Chrome-trace spans for the request's stage tree (an
//     incoming sampled flag is always honored).
//  3. Request log — a record in the /debug/requests ring with the
//     per-stage waterfall handlers append to via the context handle.
//  4. RED metrics — per-class response counters and per-route latency
//     timers, plus the in-flight gauge.
//  5. Access log — one structured JSON line per request, joinable to
//     everything above by trace_id.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		parent, hasParent := obs.ParseTraceparent(r.Header.Get("traceparent"))
		var tc obs.TraceContext
		if hasParent {
			tc = parent.Child()
		} else {
			tc = obs.NewTraceContext()
		}
		tc.Sampled = tc.Sampled || tc.SampleAt(s.cfg.TraceSample)

		route := routeOf(r.URL.Path)
		a := s.reqlog.Begin(r.Method, r.URL.Path, tc, tc.Sampled)
		ctx := obs.WithActive(r.Context(), a)
		var sp *obs.Span
		if tc.Sampled {
			ctx, sp = obs.Start(ctx, "http "+route)
		}

		w.Header().Set("Traceparent", tc.Traceparent())
		w.Header().Set("X-Gopim-Trace-Id", tc.TraceID)
		sw := &statusWriter{ResponseWriter: w}

		mInFlight.Set(float64(s.inflight.Add(1)))
		next.ServeHTTP(sw, r.WithContext(ctx))
		mInFlight.Set(float64(s.inflight.Add(-1)))

		sp.End()
		status := sw.Status()
		rec := a.Finish(status, sw.bytes)
		classCounters[codeClass(status)].Inc()
		routeTimers[route].ObserveDuration(time.Since(start))
		if s.cfg.AccessLog != nil {
			switch status {
			case http.StatusTooManyRequests:
				s.cfg.AccessLog.LogShed(rec, "queue full")
			case http.StatusServiceUnavailable:
				s.cfg.AccessLog.LogShed(rec, rec.Error)
			default:
				s.cfg.AccessLog.LogRequest(rec)
			}
		}
	})
}

// refreshScrapeGauges samples the daemon's saturation state into the
// gauges the exposition carries.
func (s *Server) refreshScrapeGauges() {
	mInFlight.Set(float64(s.inflight.Load()))
	mQueueDepth.Set(float64(len(s.queued)))
	mPoolBusy.Set(float64(s.cfg.Workers - len(s.pool)))
	mCacheEntries.Set(float64(s.cache.Len()))
}

// beginStage opens one named lifecycle stage on the request's
// inspector record and, for sampled requests, mirrors it as a span in
// the wall-clock Chrome trace. The returned func closes both; safe to
// call whether or not a request handle or tracer is attached.
func beginStage(ctx context.Context, name string) func() {
	a := obs.ActiveFrom(ctx)
	endRec := a.Stage(name)
	var sp *obs.Span
	if a.Sampled() {
		_, sp = obs.Start(ctx, "serve."+name)
	}
	return func() {
		sp.End()
		endRec()
	}
}
