package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gopim/internal/obs"
	"gopim/internal/parallel"
)

// TestTracePropagation pins the W3C trace-context contract: an
// incoming traceparent is joined (same trace ID, fresh span ID), a
// missing or malformed one is replaced with a minted root context, and
// the response always echoes our child context.
func TestTracePropagation(t *testing.T) {
	ts := newTestServer(t, Config{})

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const parentSpan = "00f067aa0ba902b7"
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("traceparent", "00-"+traceID+"-"+parentSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got := resp.Header.Get("X-Gopim-Trace-Id"); got != traceID {
		t.Fatalf("X-Gopim-Trace-Id = %q, want the caller's %q", got, traceID)
	}
	echoed, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q does not parse", resp.Header.Get("Traceparent"))
	}
	if echoed.TraceID != traceID {
		t.Fatalf("response joined trace %q, want %q", echoed.TraceID, traceID)
	}
	if echoed.SpanID == parentSpan {
		t.Fatal("response must carry a child span ID, not echo the parent's")
	}
	if !echoed.Sampled {
		t.Fatal("incoming sampled flag must be honored")
	}

	// No (or malformed) traceparent: a fresh root trace is minted.
	for _, hdr := range []string{"", "garbage", "ff-" + traceID + "-" + parentSpan + "-01"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if hdr != "" {
			req.Header.Set("traceparent", hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		minted, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
		if !ok {
			t.Fatalf("minted traceparent %q does not parse", resp.Header.Get("Traceparent"))
		}
		if minted.TraceID == traceID {
			t.Fatalf("request with traceparent %q joined the wrong trace", hdr)
		}
	}
}

// TestReadyzDrain is the readiness regression test: /readyz flips to
// 503 the moment draining begins while /healthz stays 200 — liveness
// and readiness must be distinct signals.
func TestReadyzDrain(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain: %d, want 200", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz before drain: %d, want 200", got)
	}

	srv.BeginDrain()

	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz during drain: %d, want 200 (alive, just not ready)", got)
	}

	// Shutdown (even on a never-started server) also begins the drain.
	srv2 := New(Config{})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after Shutdown: %d, want 503", resp.StatusCode)
	}
}

// TestMetricsNegotiation pins the /metrics format surface: the legacy
// deterministic text by default, exposition for Prometheus/OpenMetrics
// scrapers (linting clean), JSON on request.
func TestMetricsNegotiation(t *testing.T) {
	ts := newTestServer(t, Config{})
	postPlan(t, ts.URL, `{"dataset":"ddi","micro_batch":40}`)

	fetch := func(path, accept string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get("Content-Type")
	}

	// Default: the legacy Sim-only snapshot, unchanged for existing CI greps.
	legacy, ct := fetch("/metrics", "")
	if !strings.Contains(legacy, "serve.plans_computed") {
		t.Errorf("legacy text missing serve counters:\n%s", legacy)
	}
	if strings.Contains(legacy, "gopim_") || strings.Contains(ct, "version=0.0.4") {
		t.Error("default format must stay the legacy snapshot, not exposition")
	}

	// Prometheus scrape (by Accept header, text/plain;version=0.0.4).
	prom, ct := fetch("/metrics", "text/plain;version=0.0.4;q=0.9,*/*;q=0.1")
	if !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("prometheus Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE gopim_serve_requests_total counter",
		"gopim_http_requests_total{",
		"gopim_serve_request_ns_bucket{",
		"gopim_http_in_flight",
		"gopim_go_goroutines",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	if errs := obs.LintPrometheusText(strings.NewReader(prom)); len(errs) != 0 {
		t.Errorf("prometheus exposition does not lint clean: %v", errs)
	}

	// OpenMetrics scrape: same families plus the # EOF terminator.
	om, ct := fetch("/metrics", "application/openmetrics-text;version=1.0.0")
	if !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("openmetrics Content-Type = %q", ct)
	}
	if !strings.HasSuffix(strings.TrimSpace(om), "# EOF") {
		t.Error("openmetrics exposition must end with # EOF")
	}
	if errs := obs.LintPrometheusText(strings.NewReader(om)); len(errs) != 0 {
		t.Errorf("openmetrics exposition does not lint clean: %v", errs)
	}

	// Forced via query param, whatever the Accept header says.
	forced, _ := fetch("/metrics?format=prometheus", "text/html")
	if !strings.Contains(forced, "gopim_serve_requests_total") {
		t.Error("?format=prometheus did not force exposition")
	}

	// JSON snapshot.
	js, ct := fetch("/metrics?format=json", "")
	if !strings.Contains(ct, "application/json") {
		t.Errorf("json Content-Type = %q", ct)
	}
	var decoded any
	if err := json.Unmarshal([]byte(js), &decoded); err != nil {
		t.Errorf("json snapshot does not parse: %v", err)
	}

	// The legacy ?clock=all escape hatch still works.
	all, _ := fetch("/metrics?clock=all", "")
	if !strings.Contains(all, "serve.request_ns") {
		t.Error("?clock=all lost the wall section")
	}
}

// TestAccessLogJoinsTraces pins the structured-log contract: one JSON
// line per request whose trace_id equals the response's trace header,
// with status/cache/label fields, and WARN lines for shed requests.
func TestAccessLogJoinsTraces(t *testing.T) {
	var buf bytes.Buffer
	srv := New(Config{AccessLog: obs.NewAccessLogger(&syncBuffer{buf: &buf})})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postPlan(t, ts.URL, `{"dataset":"ddi","micro_batch":88}`)
	wantTrace := resp.Header.Get("X-Gopim-Trace-Id")
	if wantTrace == "" {
		t.Fatal("response missing X-Gopim-Trace-Id")
	}

	var line map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	found := false
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("access log line is not JSON: %s", sc.Text())
		}
		if m["trace_id"] == wantTrace {
			line, found = m, true
		}
	}
	if !found {
		t.Fatalf("no access-log line with trace_id %q:\n%s", wantTrace, buf.String())
	}
	if line["msg"] != "request" || line["method"] != "POST" || line["path"] != "/v1/plan" {
		t.Fatalf("access line = %v", line)
	}
	if line["status"].(float64) != 200 {
		t.Fatalf("status = %v", line["status"])
	}
	if line["cache"] != "miss" {
		t.Fatalf("cache = %v, want miss", line["cache"])
	}
	if line["label"] != "plan:ddi/GoPIM" {
		t.Fatalf("label = %v", line["label"])
	}

	// A shed request logs at WARN with the reason.
	ws := <-srv.pool
	srv.queued <- struct{}{}
	buf.Reset()
	postPlan(t, ts.URL, `{"dataset":"Cora","micro_batch":104}`)
	srv.pool <- ws
	<-srv.queued
	if !strings.Contains(buf.String(), `"request_shed"`) || !strings.Contains(buf.String(), `"WARN"`) {
		t.Fatalf("shed request not logged at WARN:\n%s", buf.String())
	}
}

// syncBuffer guards a bytes.Buffer for cross-goroutine reads in tests.
type syncBuffer struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

// TestRequestInspector exercises /debug/requests in both renderings:
// the JSON payload carries trace IDs, cache dispositions and the stage
// waterfall; the HTML page renders rows and stage bars.
func TestRequestInspector(t *testing.T) {
	ts := newTestServer(t, Config{TraceSample: 0})
	resp, _ := postPlan(t, ts.URL, `{"dataset":"ddi","micro_batch":72,"simulate":true}`)
	wantTrace := resp.Header.Get("X-Gopim-Trace-Id")

	r, err := http.Get(ts.URL + "/debug/requests?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var payload struct {
		Active    []obs.RequestRecord `json:"active"`
		Completed []obs.RequestRecord `json:"completed"`
	}
	if err := json.NewDecoder(r.Body).Decode(&payload); err != nil {
		t.Fatalf("inspector JSON: %v", err)
	}
	var rec *obs.RequestRecord
	for i := range payload.Completed {
		if payload.Completed[i].TraceID == wantTrace {
			rec = &payload.Completed[i]
		}
	}
	if rec == nil {
		t.Fatalf("completed ring has no record for trace %s", wantTrace)
	}
	if rec.Status != 200 || rec.Cache != "miss" || rec.Label != "plan:ddi/GoPIM" {
		t.Fatalf("record = %+v", rec)
	}
	stages := map[string]bool{}
	for _, st := range rec.Stages {
		stages[st.Name] = true
		if st.DurNS < 0 || st.StartNS < 0 {
			t.Fatalf("stage %s has negative offsets: %+v", st.Name, st)
		}
	}
	for _, want := range []string{"cache_lookup", "admission", "workspace_acquire", "plan", "simulate", "marshal"} {
		if !stages[want] {
			t.Errorf("waterfall missing stage %q (have %v)", want, rec.Stages)
		}
	}

	// HTML rendering.
	hr, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	html, _ := io.ReadAll(hr.Body)
	if ct := hr.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("inspector Content-Type = %q", ct)
	}
	for _, want := range []string{"request inspector", "plan:ddi/GoPIM", `class="stage"`, "cache_lookup"} {
		if !strings.Contains(string(html), want) {
			t.Errorf("inspector HTML missing %q", want)
		}
	}
}

// TestSampledRequestEmitsSpans: with TraceSample=1 and a tracer
// installed, a planning request records the full serve stage tree in
// the Chrome trace.
func TestSampledRequestEmitsSpans(t *testing.T) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	ts := newTestServer(t, Config{TraceSample: 1})
	postPlan(t, ts.URL, `{"dataset":"Cora","micro_batch":120}`)
	obs.SetTracer(nil)

	names := map[string]bool{}
	for _, ev := range tr.Events() {
		names[ev.Name] = true
	}
	for _, want := range []string{"http /v1/plan", "serve.cache_lookup", "serve.plan", "serve.marshal"} {
		if !names[want] {
			t.Errorf("chrome trace missing span %q (have %v)", want, names)
		}
	}
}

// TestScrapedLoadKeepsSimSnapshotIdentical is the headline two-clock
// regression test: a 64-way /v1/plan load with /metrics and
// /debug/requests scrapers hammering concurrently must leave the
// Sim-clock snapshot byte-identical to an unscraped run — at serve
// worker counts 1, 2 and 8, under -race.
func TestScrapedLoadKeepsSimSnapshotIdentical(t *testing.T) {
	reqs := []string{
		`{"dataset":"ddi"}`,
		`{"dataset":"Cora","simulate":true}`,
		`{"dataset":"ddi","micro_batch":32}`,
		`{"graph":{"vertices":20000,"avg_degree":8,"feature_dim":32},"seed":3}`,
	}

	runLoad := func(workers int, scrape bool) string {
		obs.Default().Reset()
		parallel.SetWorkers(workers)
		srv := New(Config{Workers: workers, QueueDepth: 256, TraceSample: 0.5})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		stop := make(chan struct{})
		var scrapers sync.WaitGroup
		if scrape {
			for _, path := range []string{
				"/metrics?format=prometheus",
				"/metrics?format=openmetrics",
				"/debug/requests?format=json",
				"/debug/requests",
			} {
				path := path
				scrapers.Add(1)
				go func() {
					defer scrapers.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						resp, err := http.Get(ts.URL + path)
						if err != nil {
							return // server closing
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}()
			}
		}

		const total = 64
		var wg sync.WaitGroup
		for i := 0; i < total; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, body := postPlan(t, ts.URL, reqs[i%len(reqs)])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("workers=%d scrape=%v req %d: status %d: %s", workers, scrape, i, resp.StatusCode, body)
				}
			}()
		}
		wg.Wait()
		close(stop)
		scrapers.Wait()

		var snap bytes.Buffer
		if err := obs.Default().WriteText(&snap, obs.Sim); err != nil {
			t.Fatal(err)
		}
		return snap.String()
	}

	defer parallel.SetWorkers(0)
	defer obs.Default().Reset()
	for _, workers := range []int{1, 2, 8} {
		quiet := runLoad(workers, false)
		scraped := runLoad(workers, true)
		if quiet != scraped {
			t.Errorf("workers=%d: Sim snapshot differs between scraped and unscraped runs:\n--- unscraped ---\n%s\n--- scraped ---\n%s",
				workers, quiet, scraped)
		}
	}
}
