// Package simmemo is the input-keyed memo layer for the analytic
// simulator and its sweep harnesses. Sweep drivers (the experiments
// grids, the θ tuner, serve what-if requests) re-evaluate the same
// stage-input tuples over and over — the same synthesized instance,
// the same GCN training configuration, the same event-level schedule.
// simmemo lets each subsystem register a named cache keyed by the
// exact input fingerprint and reuse the previous result, so a sweep
// re-computes only the cells whose inputs actually changed.
//
// Determinism contract (the part that lets the hit/miss counters live
// on the Sim clock): each cache is a singleflight LRU, so for a fixed
// set of Do calls that fits the cache without mid-flight eviction, the
// number of computations equals the number of distinct keys regardless
// of scheduling or worker count. Misses count Computed outcomes; hits
// count Cached + Coalesced — both totals are pure functions of (call
// multiset, key set). Cache capacities are therefore sized well above
// any single run's working set; an eviction mid-run would make hit
// counts scheduling-dependent (the same caveat the serve response
// cache documents).
//
// The second half of the contract is on the callers: a memoized
// computation must leave the Sim-metric registry exactly as the
// un-memoized computation would have. Computations whose counters are
// pure functions of (input, result) — trace.Simulate, pipeline — just
// re-run the recording lines on a hit; computations with interleaved
// increments (gcn.Train, predictor.Generate) accumulate their counts
// into a replay struct stored beside the result and re-apply it on
// every hit. Either way, workload-semantics Sim counters (gcn.*,
// pipeline.*, trace.*, accel.*) are byte-identical with the memo on
// or off, at any worker count. The exceptions are simmemo.*'s own
// hit/miss counters and the parallel.* pool-attribution counters:
// those meter executed work, which is exactly what a memo hit elides.
//
// Values handed back on a hit are shared, not copied: cached results
// must be treated as immutable by every caller.
package simmemo

import (
	"os"
	"sync"
	"sync/atomic"

	"gopim/internal/obs"
	"gopim/internal/singleflight"
)

// enabled gates every cache in the package. Default on: the memo layer
// never changes output bytes, only wall time. Stored inverted so the
// zero value means "on" without an init hook.
var disabled atomic.Bool

// Enabled reports whether memoization is active.
func Enabled() bool { return !disabled.Load() }

// SetEnabled turns the memo layer on or off globally (the -sim-memo
// knob). Turning it off makes every Do call compute inline and record
// nothing, restoring pre-memo behaviour exactly.
func SetEnabled(on bool) { disabled.Store(!on) }

// mFlagsInvalid counts rejected -sim-memo/GOPIM_SIM_MEMO values.
// Wall-clock: whether the environment was malformed is a property of
// the invocation, not the simulation (same reasoning as
// parallel.env_workers_invalid).
var mFlagsInvalid = obs.NewCounter("simmemo.flags_invalid", obs.Wall,
	"invalid -sim-memo/GOPIM_SIM_MEMO values rejected (warn + fallback to on)")

// EnvVar is the environment fallback consulted when the -sim-memo flag
// is left empty, mirroring GOPIM_WORKERS.
const EnvVar = "GOPIM_SIM_MEMO"

// Configure applies the -sim-memo flag value, falling back to the
// GOPIM_SIM_MEMO environment variable when the flag is empty. Invalid
// values warn through the obs warn path, bump simmemo.flags_invalid,
// and leave the default (on) — never an error, matching the
// GOPIM_WORKERS contract.
func Configure(flagVal string) {
	src := "-sim-memo"
	v := flagVal
	if v == "" {
		v = os.Getenv(EnvVar)
		src = EnvVar
		if v == "" {
			return
		}
	}
	on, ok := parseBool(v)
	if !ok {
		mFlagsInvalid.Inc()
		obs.Warnf("simmemo", "ignoring invalid %s=%q (want on|off); memoization stays on", src, v)
		return
	}
	SetEnabled(on)
}

// parseBool accepts the on/off vocabulary the CLI documents.
func parseBool(v string) (on, ok bool) {
	switch v {
	case "on", "true", "1", "yes":
		return true, true
	case "off", "false", "0", "no":
		return false, true
	}
	return false, false
}

// Cache is one named memo domain: a singleflight LRU plus its Sim-clock
// hit/miss counters. Construct with NewCache at package init so counter
// registration order is deterministic.
type Cache struct {
	name         string
	sf           *singleflight.Cache[string, any]
	hits, misses *obs.Counter
}

// registry tracks every cache so bench repeats can clear them all
// (ResetAll) without each consumer exporting its own reset hook.
var (
	regMu    sync.Mutex
	registry []*Cache
)

// NewCache registers a memo domain named name holding at most max
// completed entries (0 = unbounded). max must exceed the largest
// per-run working set or hit counts lose their worker-independence —
// see the package contract.
func NewCache(name string, max int) *Cache {
	c := &Cache{
		name: name,
		sf:   singleflight.New[string, any](max),
		hits: obs.NewCounter("simmemo."+name+"_hits", obs.Sim,
			"memoized "+name+" reuses (cached + coalesced); worker-count-independent"),
		misses: obs.NewCounter("simmemo."+name+"_misses", obs.Sim,
			"memoized "+name+" computations (== distinct keys absent eviction)"),
	}
	regMu.Lock()
	registry = append(registry, c)
	regMu.Unlock()
	return c
}

// Hits returns the cache's accumulated reuse count (tests and
// attribution tooling; the counters themselves feed snapshots).
func (c *Cache) Hits() int64 { return c.hits.Value() }

// Misses returns the cache's accumulated computation count.
func (c *Cache) Misses() int64 { return c.misses.Value() }

// Do returns the value for key, computing it with fn on first use and
// coalescing concurrent same-key calls. With the layer disabled it
// runs fn inline and touches no counters. The returned value is shared
// across all callers of the key: treat it as immutable.
func Do[T any](c *Cache, key string, fn func() T) T {
	v, _ := DoOutcome(c, key, fn)
	return v
}

// DoOutcome is Do plus a hit report: hit is true when the value came
// from the cache (cached or coalesced) rather than from this call's fn.
// Callers whose memoized computation bumps Sim counters internally use
// it to replay those counts from the stored value on a hit.
func DoOutcome[T any](c *Cache, key string, fn func() T) (v T, hit bool) {
	if !Enabled() {
		return fn(), false
	}
	vv, out := c.sf.DoOutcome(key, func() any { return fn() })
	if out == singleflight.Computed {
		c.misses.Inc()
	} else {
		c.hits.Inc()
	}
	return vv.(T), out != singleflight.Computed
}

// The memo caches clear whenever the default registry resets: hit/miss
// counters are only a pure function of the submitted work when the
// caches start cold with them, so a harness that resets one must reset
// both (the bench suite between repeats, the determinism tests between
// worker counts).
func init() {
	obs.OnReset(ResetAll)
}

// ResetAll clears every registered cache's completed entries. Runs
// automatically on every default-registry Reset (see init); callers
// only need it directly when clearing caches without touching metrics.
func ResetAll() {
	regMu.Lock()
	caches := append([]*Cache(nil), registry...)
	regMu.Unlock()
	for _, c := range caches {
		c.sf.Reset()
	}
}
