package simmemo

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"gopim/internal/obs"
)

// TestDoComputesOncePerKey pins the core memo behaviour: one
// computation per distinct key, hits for every reuse, and the value
// shared verbatim.
func TestDoComputesOncePerKey(t *testing.T) {
	c := NewCache("test_once", 8)
	var calls int
	for i := 0; i < 3; i++ {
		v := Do(c, "k", func() int { calls++; return 42 })
		if v != 42 {
			t.Fatalf("Do = %d, want 42", v)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if m, h := c.misses.Value(), c.hits.Value(); m != 1 || h != 2 {
		t.Fatalf("misses=%d hits=%d, want 1/2", m, h)
	}
}

// TestDoOutcomeReportsHit pins the hit flag counter-replay callers
// depend on: false exactly when this call's fn produced the value.
func TestDoOutcomeReportsHit(t *testing.T) {
	c := NewCache("test_outcome", 8)
	if _, hit := DoOutcome(c, "k", func() int { return 1 }); hit {
		t.Fatal("first call must not be a hit")
	}
	if _, hit := DoOutcome(c, "k", func() int { return 2 }); !hit {
		t.Fatal("second call must be a hit")
	}
	if v := Do(c, "k", func() int { return 3 }); v != 1 {
		t.Fatalf("cached value = %d, want the first computation's 1", v)
	}
}

// TestDisabledBypassesEverything: with the layer off, every call
// computes inline and no counter moves — pre-memo behaviour exactly.
func TestDisabledBypassesEverything(t *testing.T) {
	c := NewCache("test_disabled", 8)
	SetEnabled(false)
	defer SetEnabled(true)
	var calls int
	for i := 0; i < 2; i++ {
		if v := Do(c, "k", func() int { calls++; return calls }); v != calls {
			t.Fatalf("disabled Do must return this call's fn result, got %d", v)
		}
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (no caching while disabled)", calls)
	}
	if m, h := c.misses.Value(), c.hits.Value(); m != 0 || h != 0 {
		t.Fatalf("disabled calls must not touch counters, got misses=%d hits=%d", m, h)
	}
}

// TestResetAllClearsEntries: after ResetAll the next Do recomputes.
func TestResetAllClearsEntries(t *testing.T) {
	c := NewCache("test_resetall", 8)
	var calls int
	Do(c, "k", func() int { calls++; return 0 })
	ResetAll()
	Do(c, "k", func() int { calls++; return 0 })
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (ResetAll must clear entries)", calls)
	}
}

// TestRegistryResetClearsCaches pins the obs coupling: a default-
// registry Reset (what the bench suite runs between repeats) must
// clear the memo caches too, or hit counts would depend on what ran
// before the reset.
func TestRegistryResetClearsCaches(t *testing.T) {
	c := NewCache("test_obsreset", 8)
	var calls int
	Do(c, "k", func() int { calls++; return 0 })
	obs.Default().Reset()
	Do(c, "k", func() int { calls++; return 0 })
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (registry Reset must clear caches)", calls)
	}
	if m := c.misses.Value(); m != 1 {
		t.Fatalf("misses after reset = %d, want 1 (counters zeroed with the cache)", m)
	}
}

// TestDoCoalescesConcurrentCallers: racing same-key callers share one
// computation, and hits+misses still sum to the call count.
func TestDoCoalescesConcurrentCallers(t *testing.T) {
	c := NewCache("test_coalesce", 8)
	const callers = 16
	var calls int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Do(c, "k", func() int {
				mu.Lock()
				calls++
				mu.Unlock()
				return 7
			})
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if got := c.misses.Value() + c.hits.Value(); got != callers {
		t.Fatalf("hits+misses = %d, want %d", got, callers)
	}
	if c.misses.Value() != 1 {
		t.Fatalf("misses = %d, want 1 (single computation per key)", c.misses.Value())
	}
}

// TestConfigure pins the GOPIM_WORKERS-style knob contract: valid
// values apply, invalid values warn + count + keep the default, and
// the env var backs the empty flag.
func TestConfigure(t *testing.T) {
	defer SetEnabled(true)

	cases := []struct {
		flag, env string
		want      bool
		warns     bool
	}{
		{"off", "", false, false},
		{"on", "", true, false},
		{"0", "", false, false},
		{"", "no", false, false},
		{"", "yes", true, false},
		{"sideways", "", true, true},     // invalid flag: stays on
		{"", "maybe", true, true},        // invalid env: stays on
		{"off", "on", false, false},      // flag wins over env
		{"", "", true, false},            // nothing set: default on
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("flag=%q env=%q", tc.flag, tc.env), func(t *testing.T) {
			SetEnabled(true)
			if tc.env == "" {
				t.Setenv(EnvVar, "")
			} else {
				t.Setenv(EnvVar, tc.env)
			}
			var warnings bytes.Buffer
			restore := obs.SetWarnOutput(&warnings)
			defer restore()
			before := mFlagsInvalid.Value()
			Configure(tc.flag)
			if Enabled() != tc.want {
				t.Fatalf("Enabled() = %v, want %v", Enabled(), tc.want)
			}
			if tc.warns {
				if mFlagsInvalid.Value() != before+1 {
					t.Fatal("invalid value must bump simmemo.flags_invalid")
				}
				if !strings.Contains(warnings.String(), "sim-memo") && !strings.Contains(warnings.String(), "SIM_MEMO") {
					t.Fatalf("expected a warning naming the knob, got %q", warnings.String())
				}
			} else if mFlagsInvalid.Value() != before {
				t.Fatalf("valid value must not bump the invalid counter")
			}
		})
	}
}
