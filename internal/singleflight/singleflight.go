// Package singleflight provides a generic keyed result cache with
// per-key miss coalescing and optional LRU eviction.
//
// Concurrent Do calls for the same key share one computation: exactly
// one caller runs the function while the rest wait for its result.
// Calls for *different* keys never block each other — the cache's
// mutex guards only the map bookkeeping, never a computation — which
// is the property the old experiments predictor cache (one mutex held
// across training) lacked.
//
// Determinism contract: for any fixed set of Do calls that the cache
// can hold without evicting mid-flight, the number of function
// executions is exactly the number of distinct keys, independent of
// scheduling or concurrency. Callers that count hits as
// (calls − executions) therefore get scheduling-independent totals,
// which is what lets the predictor-cache and serve-cache counters live
// on the deterministic Sim clock.
package singleflight

import (
	"container/list"
	"sync"
)

// entry is one key's slot: in-flight (done open, complete false) or
// completed (val set, elem on the LRU list).
type entry[V any] struct {
	done     chan struct{}
	val      V
	complete bool
	elem     *list.Element
}

// Cache is a keyed single-flight result cache. The zero value is not
// usable; construct with New.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	max     int // max completed entries; 0 = unbounded
	entries map[K]*entry[V]
	// order tracks completed entries, most recently used at the front.
	// In-flight entries are pinned (not on the list, never evicted).
	order *list.List

	// OnEvict, when non-nil, observes each LRU eviction. It runs with
	// the cache's lock held: it must be fast and must not call back
	// into the cache.
	OnEvict func(K, V)
}

// New returns a cache holding at most max completed entries
// (0 = unbounded). Eviction is strict LRU over completed entries.
func New[K comparable, V any](max int) *Cache[K, V] {
	return &Cache[K, V]{
		max:     max,
		entries: map[K]*entry[V]{},
		order:   list.New(),
	}
}

// Get returns the completed cached value for k, if any, refreshing its
// LRU position. It never blocks on an in-flight computation — callers
// that want coalescing use Do.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok && e.complete {
		c.order.MoveToFront(e.elem)
		return e.val, true
	}
	var zero V
	return zero, false
}

// Outcome classifies how a Do call obtained its value — the cache
// disposition telemetry surfaces per request.
type Outcome uint8

const (
	// Computed: this call ran fn itself (a miss).
	Computed Outcome = iota
	// Cached: the value was already complete in the cache.
	Cached
	// Coalesced: this call waited on another caller's in-flight fn.
	Coalesced
)

// Hit reports whether the call reused a computation rather than
// running fn itself.
func (o Outcome) Hit() bool { return o != Computed }

// String renders the outcome in cache-header vocabulary.
func (o Outcome) String() string {
	switch o {
	case Cached:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Do returns the value for k, computing it with fn on first use.
// Concurrent calls for the same key share one fn execution; calls for
// different keys proceed independently. hit reports whether this call
// reused a computation (cached or coalesced) rather than running fn
// itself. DoOutcome additionally distinguishes the two reuse flavours.
//
// If fn panics, the panic propagates to the caller that ran it, the
// key's slot is cleared, and any coalesced waiters retry (one of them
// becomes the next runner).
func (c *Cache[K, V]) Do(k K, fn func() V) (v V, hit bool) {
	v, out := c.DoOutcome(k, fn)
	return v, out.Hit()
}

// DoOutcome is Do with the cache disposition surfaced: Computed (this
// call ran fn), Cached (served from a completed entry), or Coalesced
// (waited on another caller's in-flight computation). Hit/miss
// accounting derived from Outcome.Hit() keeps the determinism contract
// Do established: executions == distinct keys.
func (c *Cache[K, V]) DoOutcome(k K, fn func() V) (v V, outcome Outcome) {
	waited := false
	for {
		c.mu.Lock()
		if e, ok := c.entries[k]; ok {
			if e.complete {
				c.order.MoveToFront(e.elem)
				v = e.val
				c.mu.Unlock()
				if waited {
					return v, Coalesced
				}
				return v, Cached
			}
			done := e.done
			c.mu.Unlock()
			waited = true
			<-done
			// The runner finished (or panicked, clearing the slot) — or
			// the entry completed and was already evicted. Re-check;
			// in the common case the next pass returns the cached value.
			c.mu.Lock()
			if e2, ok := c.entries[k]; ok && e2.complete {
				c.order.MoveToFront(e2.elem)
				v = e2.val
				c.mu.Unlock()
				return v, Coalesced
			}
			c.mu.Unlock()
			continue
		}
		e := &entry[V]{done: make(chan struct{})}
		c.entries[k] = e
		c.mu.Unlock()
		return c.run(k, e, fn), Computed
	}
}

// run executes fn for the in-flight entry e, completing or clearing it.
func (c *Cache[K, V]) run(k K, e *entry[V], fn func() V) V {
	defer func() {
		c.mu.Lock()
		if !e.complete {
			// fn panicked: clear the slot so waiters can retry.
			delete(c.entries, k)
		}
		c.mu.Unlock()
		close(e.done)
	}()
	v := fn()
	c.mu.Lock()
	e.val = v
	e.complete = true
	e.elem = c.order.PushFront(k)
	if c.max > 0 {
		for c.order.Len() > c.max {
			back := c.order.Back()
			evk := back.Value.(K)
			c.order.Remove(back)
			if ev, ok := c.entries[evk]; ok {
				if c.OnEvict != nil {
					c.OnEvict(evk, ev.val)
				}
				delete(c.entries, evk)
			}
		}
	}
	c.mu.Unlock()
	return v
}

// Len returns the number of completed entries currently cached.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Reset drops every completed entry, returning the cache to its
// initial state. In-flight computations are left pinned: their runners
// will complete and re-insert as if freshly computed, so a Reset racing
// a Do never loses a result or deadlocks a waiter. Benchmark harnesses
// call this between repeats so hit/miss counts derived from Do outcomes
// cover exactly one pass.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.complete {
			delete(c.entries, k)
		}
	}
	c.order.Init()
}
