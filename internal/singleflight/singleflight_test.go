package singleflight

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoCachesPerKey(t *testing.T) {
	c := New[string, int](0)
	var runs atomic.Int64
	mk := func(v int) func() int {
		return func() int { runs.Add(1); return v }
	}
	if v, hit := c.Do("a", mk(1)); v != 1 || hit {
		t.Fatalf("first Do(a) = %d, hit=%v; want 1, miss", v, hit)
	}
	if v, hit := c.Do("a", mk(99)); v != 1 || !hit {
		t.Fatalf("second Do(a) = %d, hit=%v; want cached 1, hit", v, hit)
	}
	if v, hit := c.Do("b", mk(2)); v != 2 || hit {
		t.Fatalf("Do(b) = %d, hit=%v; want 2, miss", v, hit)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("fn ran %d times, want 2", got)
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) reported a hit")
	}
}

// TestDifferentKeysRunConcurrently is the regression test for the
// predictor-cache serialization bug: a cache whose mutex is held
// across the computation (the pre-fix design) deadlocks here, because
// key "a"'s computation cannot finish until key "b"'s has started.
func TestDifferentKeysRunConcurrently(t *testing.T) {
	c := New[string, int](0)
	bStarted := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do("a", func() int {
			select {
			case <-bStarted:
			case <-time.After(10 * time.Second):
				t.Error("Do(b) never started while Do(a) was in flight: computations serialized")
			}
			return 1
		})
	}()
	go func() {
		c.Do("b", func() int {
			close(bStarted)
			return 2
		})
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Do(a) never returned")
	}
}

// TestSameKeyCoalesces pins single-flight: N concurrent callers of one
// key produce exactly one execution, and everyone sees its value.
func TestSameKeyCoalesces(t *testing.T) {
	c := New[string, int](0)
	var runs, hits atomic.Int64
	release := make(chan struct{})
	const callers = 32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit := c.Do("k", func() int {
				runs.Add(1)
				<-release
				return 7
			})
			if v != 7 {
				t.Errorf("Do(k) = %d, want 7", v)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	// Let the callers pile up behind the in-flight computation.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times for one key, want 1", runs.Load())
	}
	if hits.Load() != callers-1 {
		t.Fatalf("%d hits for %d callers, want %d", hits.Load(), callers, callers-1)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int, int](2)
	var evicted []int
	c.OnEvict = func(k, _ int) { evicted = append(evicted, k) }
	c.Do(1, func() int { return 1 })
	c.Do(2, func() int { return 2 })
	c.Do(1, func() int { return 1 }) // refresh 1 → LRU order is 2, 1
	c.Do(3, func() int { return 3 }) // evicts 2
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted %v, want [2]", evicted)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("evicted key 2 still cached")
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}
	// An evicted key recomputes (a miss).
	var reran bool
	if _, hit := c.Do(2, func() int { reran = true; return 2 }); hit || !reran {
		t.Fatal("re-Do of evicted key did not recompute")
	}
}

// TestPanicClearsSlot checks that a panicking computation does not
// wedge the key: waiters retry and one of them succeeds.
func TestPanicClearsSlot(t *testing.T) {
	c := New[string, int](0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.Do("k", func() int { panic("boom") })
	}()
	if v, hit := c.Do("k", func() int { return 5 }); v != 5 || hit {
		t.Fatalf("Do after panic = %d, hit=%v; want fresh 5", v, hit)
	}
}

// TestDeterministicMissCount pins the contract the Sim-clock counters
// rely on: with an unbounded cache, executions == distinct keys at any
// concurrency level.
func TestDeterministicMissCount(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		c := New[int, int](0)
		var runs atomic.Int64
		const keys, perKey = 5, 16
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := 0; i < keys*perKey; i++ {
			k := i % keys
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				c.Do(k, func() int { runs.Add(1); return k })
			}()
		}
		wg.Wait()
		if got := runs.Load(); got != keys {
			t.Fatalf("workers=%d: %d executions for %d distinct keys", workers, got, keys)
		}
	}
}

// TestDoOutcomeDispositions pins the three Outcome values: the first
// call computes, a later sequential call is cached, and concurrent
// callers piled behind an in-flight computation report coalesced.
func TestDoOutcomeDispositions(t *testing.T) {
	c := New[string, int](0)

	release := make(chan struct{})
	started := make(chan struct{})
	firstDone := make(chan Outcome, 1)
	go func() {
		_, out := c.DoOutcome("k", func() int {
			close(started)
			<-release
			return 7
		})
		firstDone <- out
	}()
	<-started

	const waiters = 8
	var wg sync.WaitGroup
	outcomes := make(chan Outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out := c.DoOutcome("k", func() int { return -1 })
			if v != 7 {
				t.Errorf("coalesced DoOutcome = %d, want 7", v)
			}
			outcomes <- out
		}()
	}
	// Let the waiters pile up behind the in-flight computation, then
	// release the runner.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	close(outcomes)

	if out := <-firstDone; out != Computed {
		t.Fatalf("runner outcome = %v, want Computed", out)
	}
	// Waiters either blocked on the in-flight run (Coalesced) or arrived
	// after completion (Cached); none may have computed.
	for out := range outcomes {
		if out == Computed {
			t.Fatal("a coalesced waiter reported Computed")
		}
	}

	if _, out := c.DoOutcome("k", func() int { return -1 }); out != Cached {
		t.Fatalf("sequential repeat outcome = %v, want Cached", out)
	}
}

// TestOutcomeStrings pins the header vocabulary the daemon surfaces.
func TestOutcomeStrings(t *testing.T) {
	cases := []struct {
		out Outcome
		s   string
		hit bool
	}{
		{Computed, "miss", false},
		{Cached, "hit", true},
		{Coalesced, "coalesced", true},
	}
	for _, c := range cases {
		if c.out.String() != c.s || c.out.Hit() != c.hit {
			t.Errorf("%v: String=%q Hit=%v, want %q/%v", c.out, c.out.String(), c.out.Hit(), c.s, c.hit)
		}
	}
}
