// Package sparsemat implements compressed sparse row (CSR) matrices
// and the sparse-dense products used by GCN aggregation (Â·H) and its
// backward pass (Âᵀ·G).
//
// GCN aggregation multiplies the (normalised) adjacency matrix by the
// dense feature matrix; adjacency matrices of the paper's datasets are
// far too sparse to store densely, so all graph-side linear algebra in
// this repository goes through this package.
package sparsemat

import (
	"fmt"
	"math"
	"sort"

	"gopim/internal/parallel"
	"gopim/internal/tensor"
)

// CSR is a compressed-sparse-row matrix.
//
// RowPtr has length Rows+1; the column indices of row r are
// ColIdx[RowPtr[r]:RowPtr[r+1]] with matching values in Val.
// Column indices within a row are kept sorted and unique.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// Entry is one (row, col, value) triple used when building a CSR
// matrix from coordinate form.
type Entry struct {
	Row, Col int
	Val      float64
}

// NewFromEntries builds a CSR matrix from coordinate-form entries.
// Duplicate (row, col) pairs are summed. Entries out of range panic.
func NewFromEntries(rows, cols int, entries []Entry) *CSR {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("sparsemat: entry (%d,%d) out of range %dx%d", e.Row, e.Col, rows, cols))
		}
	}
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		m.ColIdx = append(m.ColIdx, sorted[i].Col)
		m.Val = append(m.Val, v)
		m.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// RowNNZ returns the number of stored entries in row r.
func (m *CSR) RowNNZ(r int) int { return m.RowPtr[r+1] - m.RowPtr[r] }

// Row returns the column indices and values of row r; the returned
// slices alias the matrix storage.
func (m *CSR) Row(r int) (cols []int, vals []float64) {
	if r < 0 || r >= m.Rows {
		panic(fmt.Sprintf("sparsemat: row %d out of range %d", r, m.Rows))
	}
	return m.ColIdx[m.RowPtr[r]:m.RowPtr[r+1]], m.Val[m.RowPtr[r]:m.RowPtr[r+1]]
}

// At returns element (r, c), 0 if not stored. O(log nnz(row)).
func (m *CSR) At(r, c int) float64 {
	cols, vals := m.Row(r)
	i := sort.SearchInts(cols, c)
	if i < len(cols) && cols[i] == c {
		return vals[i]
	}
	return 0
}

// Sparsity returns the fraction of zero entries, in [0,1].
func (m *CSR) Sparsity() float64 {
	total := float64(m.Rows) * float64(m.Cols)
	if total == 0 {
		return 0
	}
	return 1 - float64(m.NNZ())/total
}

// spmmParallelMinFLOPs is the multiply-add count below which MulDense
// stays serial; tiny aggregations are cheaper than a fork/join.
const spmmParallelMinFLOPs = 1 << 15

// MulDense returns m · d as a dense matrix. m.Cols must equal d.Rows.
//
// Large products (GCN aggregation Â·H) run row-parallel: each worker
// owns a contiguous block of output rows and accumulates each row in
// stored-column order exactly as the serial loop does, so the result
// is byte-identical at any worker count.
func (m *CSR) MulDense(d *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(m.Rows, d.Cols)
	m.MulDenseInto(out, d)
	return out
}

// MulDenseInto computes dst = m · d, reusing dst's storage. dst must
// be m.Rows × d.Cols and must not alias d. Parallelisation and
// per-row accumulation order are identical to MulDense, so the two
// are byte-identical at any worker count.
func (m *CSR) MulDenseInto(dst, d *tensor.Matrix) {
	if m.Cols != d.Rows {
		panic(fmt.Sprintf("sparsemat: MulDense inner dims %d != %d", m.Cols, d.Rows))
	}
	if dst.Rows != m.Rows || dst.Cols != d.Cols {
		panic(fmt.Sprintf("sparsemat: MulDenseInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, m.Rows, d.Cols))
	}
	if len(dst.Data) > 0 && len(d.Data) > 0 && &dst.Data[0] == &d.Data[0] {
		panic("sparsemat: MulDenseInto dst must not alias d")
	}
	if m.NNZ()*d.Cols < spmmParallelMinFLOPs {
		m.mulDenseRows(dst, d, 0, m.Rows)
		return
	}
	// Size blocks by average row cost; power-law rows are imbalanced,
	// but blocks are claimed dynamically so dense rows just slow their
	// own block, never the partitioning.
	avgFlopsPerRow := m.NNZ()*d.Cols/m.Rows + 1
	grain := spmmParallelMinFLOPs / (4 * avgFlopsPerRow)
	// One-worker runs skip the closure build entirely (see
	// parallel.Serial) so aggregation stays allocation-free on
	// single-core hosts.
	if parallel.Serial(m.Rows, grain+1) {
		m.mulDenseRows(dst, d, 0, m.Rows)
		return
	}
	parallel.For(m.Rows, grain+1, func(lo, hi int) {
		m.mulDenseRows(dst, d, lo, hi)
	})
}

// mulDenseRows computes dst rows [lo, hi) of m·d, each row owned
// exclusively by its caller block.
func (m *CSR) mulDenseRows(dst, d *tensor.Matrix, lo, hi int) {
	for r := lo; r < hi; r++ {
		cols, vals := m.Row(r)
		orow := dst.Row(r)
		for j := range orow {
			orow[j] = 0
		}
		// Pair consecutive nonzeros: each output element still
		// accumulates one (value, neighbour-row) term at a time in
		// ascending column order — two separately rounded steps per
		// pass — so the bits match the one-term-per-pass loop while
		// orow is loaded and stored half as often.
		i := 0
		for ; i+1 < len(cols); i += 2 {
			v0, v1 := vals[i], vals[i+1]
			d0 := d.Row(cols[i])
			d1 := d.Row(cols[i+1])
			d1 = d1[:len(d0)]
			ob := orow[:len(d0)]
			for j, dv := range d0 {
				t := ob[j] + v0*dv
				ob[j] = t + v1*d1[j]
			}
		}
		if i < len(cols) {
			v := vals[i]
			drow := d.Row(cols[i])
			ob := orow[:len(drow)]
			for j, dv := range drow {
				ob[j] += v * dv
			}
		}
	}
}

// TMulDense returns mᵀ · d without materialising the transpose.
// m.Rows must equal d.Rows.
func (m *CSR) TMulDense(d *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(m.Cols, d.Cols)
	m.TMulDenseInto(out, d)
	return out
}

// TMulDenseInto computes dst = mᵀ · d without materialising the
// transpose, reusing dst's storage. dst must be m.Cols × d.Cols and
// must not alias d. The scatter loop is serial: output rows are
// written in source-row order, so for each output row contributions
// accumulate in ascending source-row order — exactly the order
// Transpose().MulDenseInto produces, which is why the GCN backward
// pass can swap between the two without changing a bit.
func (m *CSR) TMulDenseInto(dst, d *tensor.Matrix) {
	if m.Rows != d.Rows {
		panic(fmt.Sprintf("sparsemat: TMulDense dims %d != %d", m.Rows, d.Rows))
	}
	if dst.Rows != m.Cols || dst.Cols != d.Cols {
		panic(fmt.Sprintf("sparsemat: TMulDenseInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, m.Cols, d.Cols))
	}
	if len(dst.Data) > 0 && len(d.Data) > 0 && &dst.Data[0] == &d.Data[0] {
		panic("sparsemat: TMulDenseInto dst must not alias d")
	}
	dst.Zero()
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.Row(r)
		drow := d.Row(r)
		for i, c := range cols {
			v := vals[i]
			orow := dst.Row(c)
			for j, dv := range drow {
				orow[j] += v * dv
			}
		}
	}
}

// Transpose returns mᵀ as a new CSR built by counting sort: O(nnz),
// and output rows inherit ascending column order from the source row
// sweep, so the sorted-column invariant holds. The GCN training loop
// builds Âᵀ once per run and routes the backward aggregation through
// the row-parallel MulDense path; because each transposed row lists
// its entries in ascending source-row order, that product accumulates
// every output element in exactly TMulDense's order.
func (m *CSR) Transpose() *CSR {
	nnz := m.NNZ()
	out := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		ColIdx: make([]int, nnz),
		Val:    make([]float64, nnz),
	}
	for _, c := range m.ColIdx {
		out.RowPtr[c+1]++
	}
	for r := 0; r < m.Cols; r++ {
		out.RowPtr[r+1] += out.RowPtr[r]
	}
	next := make([]int, m.Cols)
	copy(next, out.RowPtr[:m.Cols])
	for r := 0; r < m.Rows; r++ {
		start, end := m.RowPtr[r], m.RowPtr[r+1]
		for i := start; i < end; i++ {
			c := m.ColIdx[i]
			p := next[c]
			out.ColIdx[p] = r
			out.Val[p] = m.Val[i]
			next[c]++
		}
	}
	return out
}

// Dense expands the matrix into a dense tensor.Matrix (test helper;
// avoid for paper-scale graphs).
func (m *CSR) Dense() *tensor.Matrix {
	out := tensor.New(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			out.Set(r, c, vals[i])
		}
	}
	return out
}

// Scale returns a copy of m with every value multiplied by s.
func (m *CSR) Scale(s float64) *CSR {
	out := m.clone()
	for i := range out.Val {
		out.Val[i] *= s
	}
	return out
}

func (m *CSR) clone() *CSR {
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return out
}

// SymNormalized returns D^{-1/2}·(m+I)·D^{-1/2}, the symmetric GCN
// normalisation of an adjacency matrix with self-loops, where D is the
// degree matrix of m+I. m must be square.
func (m *CSR) SymNormalized() *CSR {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("sparsemat: SymNormalized needs square matrix, got %dx%d", m.Rows, m.Cols))
	}
	n := m.Rows
	entries := make([]Entry, 0, m.NNZ()+n)
	for r := 0; r < n; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			entries = append(entries, Entry{Row: r, Col: c, Val: vals[i]})
		}
		entries = append(entries, Entry{Row: r, Col: r, Val: 1}) // self loop
	}
	withLoops := NewFromEntries(n, n, entries)
	// Both passes are per-row independent — deg[r] and row r's values
	// are owned by exactly one worker — so the normalisation is
	// byte-identical at any worker count.
	deg := make([]float64, n)
	parallel.For(n, 4096, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			_, vals := withLoops.Row(r)
			for _, v := range vals {
				deg[r] += v
			}
		}
	})
	out := withLoops.clone()
	parallel.For(n, 4096, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			start, end := out.RowPtr[r], out.RowPtr[r+1]
			dr := math.Sqrt(deg[r])
			for i := start; i < end; i++ {
				dc := math.Sqrt(deg[out.ColIdx[i]])
				if dr > 0 && dc > 0 {
					out.Val[i] /= dr * dc
				}
			}
		}
	})
	return out
}

// RowMask returns a copy of m with rows r where keep[r] == false
// zeroed out, emulating dropped contributions of masked vertices.
func (m *CSR) RowMask(keep []bool) *CSR {
	if len(keep) != m.Rows {
		panic(fmt.Sprintf("sparsemat: RowMask length %d != rows %d", len(keep), m.Rows))
	}
	entries := make([]Entry, 0, m.NNZ())
	for r := 0; r < m.Rows; r++ {
		if !keep[r] {
			continue
		}
		cols, vals := m.Row(r)
		for i, c := range cols {
			entries = append(entries, Entry{Row: r, Col: c, Val: vals[i]})
		}
	}
	return NewFromEntries(m.Rows, m.Cols, entries)
}

// String renders a compact description.
func (m *CSR) String() string {
	return fmt.Sprintf("sparsemat.CSR(%dx%d, nnz=%d)", m.Rows, m.Cols, m.NNZ())
}
