package sparsemat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gopim/internal/tensor"
)

func entriesOf(es ...Entry) []Entry { return es }

func TestNewFromEntriesSortsAndSums(t *testing.T) {
	m := NewFromEntries(3, 3, entriesOf(
		Entry{2, 1, 1},
		Entry{0, 2, 3},
		Entry{2, 1, 2}, // duplicate, summed
		Entry{0, 0, 5},
	))
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if got := m.At(2, 1); got != 3 {
		t.Fatalf("At(2,1) = %v, want 3 (summed duplicates)", got)
	}
	if got := m.At(0, 0); got != 5 {
		t.Fatalf("At(0,0) = %v, want 5", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Fatalf("At(1,1) = %v, want 0", got)
	}
	cols, _ := m.Row(0)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 {
		t.Fatalf("row 0 cols = %v, want sorted [0 2]", cols)
	}
}

// TestNewFromEntriesSortedColumnInvariant pins strictly-ascending
// column order per row as an invariant of NewFromEntries on randomised
// input. At binary-searches the column slice, so this invariant is
// load-bearing: if it ever breaks, At silently misses entries. The
// map cross-check catches exactly that failure mode.
func TestNewFromEntriesSortedColumnInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		nnz := rng.Intn(4 * rows)
		es := make([]Entry, 0, nnz)
		// Positions are unique so the map comparison below stays exact;
		// duplicate summation order is TestNewFromEntriesSortsAndSums's
		// job.
		want := make(map[[2]int]float64, nnz)
		for i := 0; i < nnz; i++ {
			e := Entry{rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()}
			if _, dup := want[[2]int{e.Row, e.Col}]; dup {
				continue
			}
			es = append(es, e)
			want[[2]int{e.Row, e.Col}] = e.Val
		}
		m := NewFromEntries(rows, cols, es)
		for r := 0; r < rows; r++ {
			cs, vs := m.Row(r)
			for i := 1; i < len(cs); i++ {
				if cs[i] <= cs[i-1] {
					t.Fatalf("trial %d row %d: columns not strictly ascending: %v", trial, r, cs)
				}
			}
			for i, c := range cs {
				if got := m.At(r, c); got != vs[i] {
					t.Fatalf("trial %d: At(%d,%d) = %v, row slice says %v", trial, r, c, got, vs[i])
				}
			}
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if got := m.At(r, c); got != want[[2]int{r, c}] {
					t.Fatalf("trial %d: At(%d,%d) = %v, want %v", trial, r, c, got, want[[2]int{r, c}])
				}
			}
		}
	}
}

func TestOutOfRangeEntryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFromEntries(2, 2, entriesOf(Entry{2, 0, 1}))
}

func TestRowNNZAndSparsity(t *testing.T) {
	m := NewFromEntries(2, 4, entriesOf(Entry{0, 0, 1}, Entry{0, 3, 1}))
	if m.RowNNZ(0) != 2 || m.RowNNZ(1) != 0 {
		t.Fatalf("RowNNZ = %d,%d", m.RowNNZ(0), m.RowNNZ(1))
	}
	if got := m.Sparsity(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Sparsity = %v, want 0.75", got)
	}
}

func randomCSR(rng *rand.Rand, rows, cols, nnz int) *CSR {
	es := make([]Entry, 0, nnz)
	for i := 0; i < nnz; i++ {
		es = append(es, Entry{rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()})
	}
	return NewFromEntries(rows, cols, es)
}

// Property: CSR·dense agrees with dense·dense.
func TestMulDenseMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols, k := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(6)
		s := randomCSR(rng, rows, cols, rng.Intn(rows*cols+1))
		d := tensor.NewRandom(rng, cols, k, 1)
		got := s.MulDense(d)
		want := tensor.MatMul(s.Dense(), d)
		return got.Equal(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSRᵀ·dense agrees with the explicit transpose product.
func TestTMulDenseMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols, k := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(6)
		s := randomCSR(rng, rows, cols, rng.Intn(rows*cols+1))
		d := tensor.NewRandom(rng, rows, k, 1)
		got := s.TMulDense(d)
		want := tensor.MatMul(s.Dense().T(), d)
		return got.Equal(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMulDenseDimMismatchPanics(t *testing.T) {
	m := NewFromEntries(2, 3, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.MulDense(tensor.New(2, 2))
}

func TestSymNormalizedRowSumsOfRegularGraph(t *testing.T) {
	// A 4-cycle: every vertex has degree 2 (+1 self-loop = 3).
	// Â entries are all 1/3 on the stored positions.
	es := []Entry{}
	n := 4
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		es = append(es, Entry{i, j, 1}, Entry{j, i, 1})
	}
	a := NewFromEntries(n, n, es)
	norm := a.SymNormalized()
	for r := 0; r < n; r++ {
		_, vals := norm.Row(r)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d of Â sums to %v, want 1 for a regular graph", r, sum)
		}
	}
	// Symmetry is preserved.
	for r := 0; r < n; r++ {
		cols, vals := norm.Row(r)
		for i, c := range cols {
			if math.Abs(norm.At(c, r)-vals[i]) > 1e-12 {
				t.Fatalf("Â not symmetric at (%d,%d)", r, c)
			}
		}
	}
}

func TestSymNormalizedIsolatedVertex(t *testing.T) {
	// Vertex 1 has no edges; with the self-loop its normalised diagonal
	// entry must be 1 (degree 1, 1/sqrt(1)/sqrt(1)).
	a := NewFromEntries(2, 2, entriesOf(Entry{0, 0, 0}))
	norm := a.SymNormalized()
	if got := norm.At(1, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("isolated vertex diagonal = %v, want 1", got)
	}
}

func TestSymNormalizedNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFromEntries(2, 3, nil).SymNormalized()
}

func TestRowMask(t *testing.T) {
	m := NewFromEntries(3, 2, entriesOf(Entry{0, 0, 1}, Entry{1, 1, 2}, Entry{2, 0, 3}))
	masked := m.RowMask([]bool{true, false, true})
	if masked.At(1, 1) != 0 {
		t.Fatal("masked row should be zeroed")
	}
	if masked.At(0, 0) != 1 || masked.At(2, 0) != 3 {
		t.Fatal("kept rows must be preserved")
	}
	if m.At(1, 1) != 2 {
		t.Fatal("RowMask must not mutate the original")
	}
}

func TestScale(t *testing.T) {
	m := NewFromEntries(1, 2, entriesOf(Entry{0, 0, 2}, Entry{0, 1, -4}))
	s := m.Scale(0.5)
	if s.At(0, 0) != 1 || s.At(0, 1) != -2 {
		t.Fatalf("Scale wrong: %v", s.Val)
	}
	if m.At(0, 0) != 2 {
		t.Fatal("Scale must not mutate the original")
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := NewFromEntries(0, 0, nil)
	if m.NNZ() != 0 {
		t.Fatal("empty matrix should have no entries")
	}
	if m.Sparsity() != 0 {
		t.Fatal("empty matrix sparsity defined as 0")
	}
}

func BenchmarkMulDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randomCSR(rng, 1000, 1000, 10000)
	d := tensor.NewRandom(rng, 1000, 64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MulDense(d)
	}
}

func BenchmarkMulDenseInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randomCSR(rng, 1000, 1000, 10000)
	d := tensor.NewRandom(rng, 1000, 64, 1)
	dst := tensor.New(1000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MulDenseInto(dst, d)
	}
}

func BenchmarkTMulDenseInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randomCSR(rng, 1000, 1000, 10000)
	d := tensor.NewRandom(rng, 1000, 64, 1)
	dst := tensor.New(1000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TMulDenseInto(dst, d)
	}
}

func BenchmarkTransposeCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randomCSR(rng, 1000, 1000, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Transpose()
	}
}

// Â = D^{-1/2}(A+I)D^{-1/2} has spectral radius ≤ 1: power iteration
// from a random vector must not blow up.
func TestSymNormalizedSpectralRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := randomCSR(rng, 60, 60, 300)
	// Symmetrise and binarise.
	var es []Entry
	for r := 0; r < 60; r++ {
		cols, _ := s.Row(r)
		for _, c := range cols {
			if r != c {
				es = append(es, Entry{r, c, 1}, Entry{c, r, 1})
			}
		}
	}
	sym := NewFromEntries(60, 60, es)
	norm := sym.SymNormalized()
	v := tensor.NewRandom(rng, 60, 1, 1)
	for it := 0; it < 50; it++ {
		v = norm.MulDense(v)
	}
	if v.MaxAbs() > 2 { // ρ ≤ 1 → bounded (allowing slack for ρ = 1)
		t.Fatalf("power iteration diverged: %v", v.MaxAbs())
	}
}

// TMulDense on a symmetric matrix equals MulDense.
func TestTMulDenseSymmetric(t *testing.T) {
	es := []Entry{{0, 1, 2}, {1, 0, 2}, {1, 2, 3}, {2, 1, 3}}
	m := NewFromEntries(3, 3, es)
	rng := rand.New(rand.NewSource(5))
	d := tensor.NewRandom(rng, 3, 4, 1)
	if !m.TMulDense(d).Equal(m.MulDense(d), 1e-12) {
		t.Fatal("Aᵀ·d must equal A·d for symmetric A")
	}
}
