package sparsemat

import (
	"math/rand"
	"testing"

	"gopim/internal/parallel"
	"gopim/internal/tensor"
)

func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(0)
	f()
}

// TestMulDenseDeterministicAcrossWorkers pins the SpMM determinism
// contract: serial and parallel aggregation produce identical bytes.
func TestMulDenseDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 400, 400, 5000)
	d := tensor.NewRandom(rng, 400, 32, 1)
	var base *tensor.Matrix
	withWorkers(t, 1, func() { base = m.MulDense(d) })
	for _, w := range []int{2, 8} {
		withWorkers(t, w, func() {
			got := m.MulDense(d)
			for i := range base.Data {
				if got.Data[i] != base.Data[i] {
					t.Fatalf("workers=%d: entry %d = %v, serial %v", w, i, got.Data[i], base.Data[i])
				}
			}
		})
	}
}

// TestSymNormalizedDeterministicAcrossWorkers does the same for the
// GCN adjacency normalisation.
func TestSymNormalizedDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomCSR(rng, 500, 500, 4000)
	var base *CSR
	withWorkers(t, 1, func() { base = m.SymNormalized() })
	for _, w := range []int{2, 8} {
		withWorkers(t, w, func() {
			got := m.SymNormalized()
			if len(got.Val) != len(base.Val) {
				t.Fatalf("workers=%d: nnz %d vs %d", w, len(got.Val), len(base.Val))
			}
			for i := range base.Val {
				if got.Val[i] != base.Val[i] || got.ColIdx[i] != base.ColIdx[i] {
					t.Fatalf("workers=%d: entry %d differs", w, i)
				}
			}
		})
	}
}
