package sparsemat

import (
	"math/rand"
	"testing"

	"gopim/internal/parallel"
	"gopim/internal/tensor"
)

func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(0)
	f()
}

// TestMulDenseDeterministicAcrossWorkers pins the SpMM determinism
// contract: serial and parallel aggregation produce identical bytes.
func TestMulDenseDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 400, 400, 5000)
	d := tensor.NewRandom(rng, 400, 32, 1)
	var base *tensor.Matrix
	withWorkers(t, 1, func() { base = m.MulDense(d) })
	for _, w := range []int{2, 8} {
		withWorkers(t, w, func() {
			got := m.MulDense(d)
			for i := range base.Data {
				if got.Data[i] != base.Data[i] {
					t.Fatalf("workers=%d: entry %d = %v, serial %v", w, i, got.Data[i], base.Data[i])
				}
			}
		})
	}
}

// TestTransposeRoundTripAndInvariant checks that Transpose preserves
// the package-wide CSR invariant (strictly ascending columns per row),
// that values survive a double transpose bit for bit, and that every
// entry lands where At expects it.
func TestTransposeRoundTripAndInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomCSR(rng, 120, 80, 900)
	mt := m.Transpose()
	if mt.Rows != m.Cols || mt.Cols != m.Rows {
		t.Fatalf("transpose shape %dx%d, want %dx%d", mt.Rows, mt.Cols, m.Cols, m.Rows)
	}
	for r := 0; r < mt.Rows; r++ {
		cols, _ := mt.Row(r)
		for i := 1; i < len(cols); i++ {
			if cols[i] <= cols[i-1] {
				t.Fatalf("transpose row %d columns not strictly ascending: %v", r, cols)
			}
		}
	}
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			if got := mt.At(c, r); got != vals[i] {
				t.Fatalf("mt(%d,%d) = %v, want %v", c, r, got, vals[i])
			}
		}
	}
	back := mt.Transpose()
	if len(back.Val) != len(m.Val) {
		t.Fatalf("round-trip nnz %d vs %d", len(back.Val), len(m.Val))
	}
	for i := range m.Val {
		if back.Val[i] != m.Val[i] || back.ColIdx[i] != m.ColIdx[i] {
			t.Fatalf("round-trip entry %d differs", i)
		}
	}
}

// TestTMulDenseIntoMatchesTransposeMulDense pins the equivalence the
// GCN backward pass relies on: the serial TMulDense scatter and
// Transpose()·MulDense accumulate every output element in ascending
// source-row order, so they must agree byte for byte at any worker
// count.
func TestTMulDenseIntoMatchesTransposeMulDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomCSR(rng, 300, 250, 4000)
	d := tensor.NewRandom(rng, 300, 24, 1)
	base := tensor.New(m.Cols, d.Cols)
	m.TMulDenseInto(base, d)
	mt := m.Transpose()
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w, func() {
			got := mt.MulDense(d)
			for i := range base.Data {
				if got.Data[i] != base.Data[i] {
					t.Fatalf("workers=%d: entry %d = %v, TMulDense %v", w, i, got.Data[i], base.Data[i])
				}
			}
		})
	}
}

// TestSymNormalizedDeterministicAcrossWorkers does the same for the
// GCN adjacency normalisation.
func TestSymNormalizedDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomCSR(rng, 500, 500, 4000)
	var base *CSR
	withWorkers(t, 1, func() { base = m.SymNormalized() })
	for _, w := range []int{2, 8} {
		withWorkers(t, w, func() {
			got := m.SymNormalized()
			if len(got.Val) != len(base.Val) {
				t.Fatalf("workers=%d: nnz %d vs %d", w, len(got.Val), len(base.Val))
			}
			for i := range base.Val {
				if got.Val[i] != base.Val[i] || got.ColIdx[i] != base.ColIdx[i] {
					t.Fatalf("workers=%d: entry %d differs", w, i)
				}
			}
		})
	}
}
