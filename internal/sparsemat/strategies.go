package sparsemat

import (
	"fmt"

	"gopim/internal/parallel"
	"gopim/internal/tensor"
)

// This file holds the alternative SpMM execution strategies behind the
// kernel autotuner (internal/spmm). Every strategy computes the same
// product as MulDenseInto and is bitwise-equal to it at any worker
// count, because they all reuse one scalar fold per output element:
// the paired-term, ascending-column accumulation of mulDenseRows.
// What varies is only how the (row, dense-column) iteration space is
// cut into worker-owned pieces — each output element is always wholly
// owned by exactly one worker, so no cross-worker reduction (and no
// floating-point reassociation) ever happens.
//
//   - Blocked: row-parallel outer loop, column-tiled inner loop. The
//     dense operand is walked in tiles of blockedTileCols columns so a
//     high-degree row's gather re-reads neighbour rows from cache
//     instead of streaming the full width per nonzero pair.
//   - Bucketed: rows are packed into chunks of approximately equal
//     NNZ (computed from RowPtr alone, so chunk boundaries are a pure
//     function of the matrix), and the worker pool claims chunks. On
//     power-law graphs this keeps one hub row from serialising the
//     tail of a block-partitioned sweep.
//   - Edge: hub rows (degree ≥ hubRowMinNNZ) are parallelised along
//     the dense-column axis — the edge-level work of one hub row is
//     spread across workers by giving each a column slice and running
//     the full serial fold inside it. The "fixed-order reduction" of
//     per-worker partials is the degenerate one: each output element
//     has a single owner, so its accumulation order is exactly the
//     serial order. Non-hub rows take the row-parallel path.

// blockedTileCols is the dense-column tile width of the blocked
// strategy: 128 float64s = 1 KiB output segment per row, matching the
// j-tile of tensor's blocked GEMM.
const blockedTileCols = 128

// bucketTargetFLOPs is the multiply-add budget per bucketed chunk;
// chunks are cut so each holds roughly this much work regardless of
// how degrees are distributed across rows.
const bucketTargetFLOPs = spmmParallelMinFLOPs / 4

// hubRowMinNNZ is the stored-entry count at which the edge strategy
// switches a row from row-parallel to column-parallel execution.
const hubRowMinNNZ = 256

// Stats are the cheap CSR shape features the strategy selector reads:
// O(rows) to compute, no access to values.
type Stats struct {
	Rows, Cols int
	NNZ        int
	// MaxRowNNZ is the densest row's stored-entry count.
	MaxRowNNZ int
	// AvgRowNNZ is NNZ/Rows (0 for an empty matrix).
	AvgRowNNZ float64
	// Skew is MaxRowNNZ/AvgRowNNZ — 1 for perfectly regular graphs,
	// large for power-law graphs with hubs.
	Skew float64
}

// Stats computes the selector features for m.
func (m *CSR) Stats() Stats {
	s := Stats{Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ()}
	for r := 0; r < m.Rows; r++ {
		if n := m.RowNNZ(r); n > s.MaxRowNNZ {
			s.MaxRowNNZ = n
		}
	}
	if m.Rows > 0 {
		s.AvgRowNNZ = float64(s.NNZ) / float64(m.Rows)
	}
	if s.AvgRowNNZ > 0 {
		s.Skew = float64(s.MaxRowNNZ) / s.AvgRowNNZ
	}
	return s
}

// checkMulDense validates the shared MulDense*Into contract with the
// same panic strings as MulDenseInto.
func (m *CSR) checkMulDense(dst, d *tensor.Matrix) {
	if m.Cols != d.Rows {
		panic(fmt.Sprintf("sparsemat: MulDense inner dims %d != %d", m.Cols, d.Rows))
	}
	if dst.Rows != m.Rows || dst.Cols != d.Cols {
		panic(fmt.Sprintf("sparsemat: MulDenseInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, m.Rows, d.Cols))
	}
	if len(dst.Data) > 0 && len(d.Data) > 0 && &dst.Data[0] == &d.Data[0] {
		panic("sparsemat: MulDenseInto dst must not alias d")
	}
}

// MulDenseIntoBlocked computes dst = m · d with the column-tiled
// strategy: rows are block-partitioned exactly like MulDenseInto, but
// inside a row the dense width is walked one blockedTileCols-wide tile
// at a time. Per output element the accumulation is the same paired,
// ascending-column fold, so the result is bitwise-equal to
// MulDenseInto at any worker count.
func (m *CSR) MulDenseIntoBlocked(dst, d *tensor.Matrix) {
	m.checkMulDense(dst, d)
	if m.NNZ()*d.Cols < spmmParallelMinFLOPs {
		m.mulDenseRowsBlocked(dst, d, 0, m.Rows)
		return
	}
	avgFlopsPerRow := m.NNZ()*d.Cols/m.Rows + 1
	grain := spmmParallelMinFLOPs / (4 * avgFlopsPerRow)
	if parallel.Serial(m.Rows, grain+1) {
		m.mulDenseRowsBlocked(dst, d, 0, m.Rows)
		return
	}
	parallel.For(m.Rows, grain+1, func(lo, hi int) {
		m.mulDenseRowsBlocked(dst, d, lo, hi)
	})
}

// mulDenseRowsBlocked computes dst rows [lo, hi) tile-by-tile.
func (m *CSR) mulDenseRowsBlocked(dst, d *tensor.Matrix, lo, hi int) {
	for r := lo; r < hi; r++ {
		for jlo := 0; jlo < d.Cols; jlo += blockedTileCols {
			jhi := jlo + blockedTileCols
			if jhi > d.Cols {
				jhi = d.Cols
			}
			m.mulDenseRowCols(dst, d, r, jlo, jhi)
		}
	}
}

// MulDenseIntoBucketed computes dst = m · d with degree-bucketed row
// partitioning: rows are packed into chunks of roughly equal stored
// FLOPs (boundaries derived from RowPtr alone), and workers claim
// whole chunks. Each row is still accumulated by the serial fold, so
// the result is bitwise-equal to MulDenseInto at any worker count.
func (m *CSR) MulDenseIntoBucketed(dst, d *tensor.Matrix) {
	m.checkMulDense(dst, d)
	if m.NNZ()*d.Cols < spmmParallelMinFLOPs {
		m.mulDenseRows(dst, d, 0, m.Rows)
		return
	}
	bounds := m.bucketBounds(d.Cols)
	if parallel.Serial(len(bounds)-1, 1) {
		m.mulDenseRows(dst, d, 0, m.Rows)
		return
	}
	parallel.For(len(bounds)-1, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			m.mulDenseRows(dst, d, bounds[c], bounds[c+1])
		}
	})
}

// bucketBounds cuts [0, Rows) into chunks of ≈bucketTargetFLOPs
// multiply-adds each: bounds[i] is chunk i's first row. A pure
// function of (RowPtr, denseCols) — never of the worker count — so
// the chunking itself is deterministic, though correctness does not
// depend on that (rows are owned exclusively either way).
func (m *CSR) bucketBounds(denseCols int) []int {
	if denseCols < 1 {
		denseCols = 1
	}
	targetNNZ := bucketTargetFLOPs / denseCols
	if targetNNZ < 1 {
		targetNNZ = 1
	}
	bounds := []int{0}
	acc := 0
	for r := 0; r < m.Rows; r++ {
		acc += m.RowNNZ(r)
		if acc >= targetNNZ && r+1 < m.Rows {
			bounds = append(bounds, r+1)
			acc = 0
		}
	}
	return append(bounds, m.Rows)
}

// MulDenseIntoEdge computes dst = m · d with the edge-parallel hub
// strategy: rows with at least hubRowMinNNZ stored entries are
// parallelised along the dense-column axis (each worker owns a column
// slice of the hub row's output and runs the full ascending-column
// fold inside it), while the remaining rows take the row-parallel
// path. Every output element is produced by exactly one worker with
// the serial accumulation order, so the result is bitwise-equal to
// MulDenseInto at any worker count.
func (m *CSR) MulDenseIntoEdge(dst, d *tensor.Matrix) {
	m.checkMulDense(dst, d)
	if m.NNZ()*d.Cols < spmmParallelMinFLOPs {
		m.mulDenseRows(dst, d, 0, m.Rows)
		return
	}
	hubs := make([]int, 0, 8)
	for r := 0; r < m.Rows; r++ {
		if m.RowNNZ(r) >= hubRowMinNNZ {
			hubs = append(hubs, r)
		}
	}
	if len(hubs) == 0 {
		m.MulDenseInto(dst, d)
		return
	}
	hubSet := make(map[int]bool, len(hubs))
	for _, r := range hubs {
		hubSet[r] = true
	}
	// Non-hub rows: row-parallel, skipping hubs inside the block.
	avgFlopsPerRow := m.NNZ()*d.Cols/m.Rows + 1
	grain := spmmParallelMinFLOPs/(4*avgFlopsPerRow) + 1
	if parallel.Serial(m.Rows, grain) {
		for r := 0; r < m.Rows; r++ {
			if !hubSet[r] {
				m.mulDenseRowCols(dst, d, r, 0, d.Cols)
			}
		}
	} else {
		parallel.For(m.Rows, grain, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				if !hubSet[r] {
					m.mulDenseRowCols(dst, d, r, 0, d.Cols)
				}
			}
		})
	}
	// Hub rows: one at a time, workers split the dense width. The
	// column grain keeps slices cache-line aligned (8 float64s).
	for _, r := range hubs {
		r := r
		if parallel.Serial(d.Cols, blockedTileCols) {
			m.mulDenseRowCols(dst, d, r, 0, d.Cols)
			continue
		}
		parallel.For(d.Cols, blockedTileCols, func(jlo, jhi int) {
			m.mulDenseRowCols(dst, d, r, jlo, jhi)
		})
	}
}

// mulDenseRowCols computes dst[r][jlo:jhi] of m·d: the mulDenseRows
// fold restricted to a column slice. Pairing is formed over the row's
// full nonzero list (independent of the slice), and within the slice
// each element accumulates its terms in exactly the serial order —
// this is the single scalar kernel every strategy shares.
func (m *CSR) mulDenseRowCols(dst, d *tensor.Matrix, r, jlo, jhi int) {
	cols, vals := m.Row(r)
	orow := dst.Row(r)[jlo:jhi]
	for j := range orow {
		orow[j] = 0
	}
	i := 0
	for ; i+1 < len(cols); i += 2 {
		v0, v1 := vals[i], vals[i+1]
		d0 := d.Row(cols[i])[jlo:jhi]
		d1 := d.Row(cols[i+1])[jlo:jhi]
		d1 = d1[:len(d0)]
		ob := orow[:len(d0)]
		for j, dv := range d0 {
			t := ob[j] + v0*dv
			ob[j] = t + v1*d1[j]
		}
	}
	if i < len(cols) {
		v := vals[i]
		drow := d.Row(cols[i])[jlo:jhi]
		ob := orow[:len(drow)]
		for j, dv := range drow {
			ob[j] += v * dv
		}
	}
}
