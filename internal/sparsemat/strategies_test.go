package sparsemat

import (
	"math/rand"
	"sort"
	"testing"

	"gopim/internal/tensor"
)

// Strategy-equivalence fixtures: the three degree shapes the autotuner
// distinguishes. All are sized past spmmParallelMinFLOPs so the
// parallel paths actually engage, and the dense width exceeds one
// blocked tile so tiling has a seam to get wrong.

// skewedCSR: a handful of heavy rows over a light power-law tail.
func skewedCSR(rng *rand.Rand) *CSR {
	const rows, cols = 300, 300
	var entries []Entry
	for r := 0; r < 4; r++ {
		for c := 0; c < cols; c += 2 {
			entries = append(entries, Entry{Row: r, Col: c, Val: rng.NormFloat64()})
		}
	}
	for r := 4; r < rows; r++ {
		deg := 1 + rng.Intn(4)
		for k := 0; k < deg; k++ {
			entries = append(entries, Entry{Row: r, Col: rng.Intn(cols), Val: rng.NormFloat64()})
		}
	}
	return NewFromEntries(rows, cols, entries)
}

// emptyRowCSR: a random graph with a contiguous band of empty rows and
// a few isolated ones.
func emptyRowCSR(rng *rand.Rand) *CSR {
	const rows, cols = 260, 200
	var entries []Entry
	for r := 0; r < rows; r++ {
		if (r >= 40 && r < 80) || r == 0 || r == rows-1 {
			continue
		}
		deg := 1 + rng.Intn(6)
		for k := 0; k < deg; k++ {
			entries = append(entries, Entry{Row: r, Col: rng.Intn(cols), Val: rng.NormFloat64()})
		}
	}
	return NewFromEntries(rows, cols, entries)
}

// singleHubCSR: one row dense enough to cross hubRowMinNNZ (forcing
// the edge strategy's column-parallel path), everything else degree ≤2.
func singleHubCSR(rng *rand.Rand) *CSR {
	const rows, cols = 500, 500
	var entries []Entry
	for c := 0; c < hubRowMinNNZ+100; c++ {
		entries = append(entries, Entry{Row: 7, Col: c, Val: rng.NormFloat64()})
	}
	for r := 0; r < rows; r++ {
		if r == 7 {
			continue
		}
		entries = append(entries, Entry{Row: r, Col: rng.Intn(cols), Val: rng.NormFloat64()})
	}
	return NewFromEntries(rows, cols, entries)
}

var strategyFixtures = []struct {
	name  string
	build func(*rand.Rand) *CSR
}{
	{"skewed", skewedCSR},
	{"emptyRows", emptyRowCSR},
	{"singleHub", singleHubCSR},
}

var strategies = []struct {
	name string
	mul  func(m *CSR, dst, d *tensor.Matrix)
}{
	{"blocked", (*CSR).MulDenseIntoBlocked},
	{"bucketed", (*CSR).MulDenseIntoBucketed},
	{"edge", (*CSR).MulDenseIntoEdge},
}

// TestStrategiesBitwiseEqualMulDense pins every strategy against the
// serial MulDenseInto reference, bit for bit, at 1/2/8 workers, on the
// three fixture shapes.
func TestStrategiesBitwiseEqualMulDense(t *testing.T) {
	for _, fx := range strategyFixtures {
		t.Run(fx.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			m := fx.build(rng)
			d := tensor.NewRandom(rng, m.Cols, 200, 1)
			ref := tensor.New(m.Rows, d.Cols)
			withWorkers(t, 1, func() { m.MulDenseInto(ref, d) })
			for _, s := range strategies {
				for _, w := range []int{1, 2, 8} {
					withWorkers(t, w, func() {
						got := tensor.New(m.Rows, d.Cols)
						s.mul(m, got, d)
						for i := range ref.Data {
							if got.Data[i] != ref.Data[i] {
								t.Fatalf("%s workers=%d: entry %d = %v, reference %v",
									s.name, w, i, got.Data[i], ref.Data[i])
							}
						}
					})
				}
			}
		})
	}
}

// TestStrategiesBitwiseEqualTMulDense pins the backward-aggregation
// route: running a strategy over Âᵀ (the once-per-Train transpose)
// must match the serial TMulDenseInto scatter bit for bit — the same
// equivalence MulDenseInto already guarantees, extended to the zoo.
func TestStrategiesBitwiseEqualTMulDense(t *testing.T) {
	for _, fx := range strategyFixtures {
		t.Run(fx.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			m := fx.build(rng)
			d := tensor.NewRandom(rng, m.Rows, 200, 1)
			ref := tensor.New(m.Cols, d.Cols)
			m.TMulDenseInto(ref, d)
			mt := m.Transpose()
			for _, s := range strategies {
				for _, w := range []int{1, 2, 8} {
					withWorkers(t, w, func() {
						got := tensor.New(mt.Rows, d.Cols)
						s.mul(mt, got, d)
						for i := range ref.Data {
							if got.Data[i] != ref.Data[i] {
								t.Fatalf("%s workers=%d: entry %d = %v, TMulDense %v",
									s.name, w, i, got.Data[i], ref.Data[i])
							}
						}
					})
				}
			}
		})
	}
}

// TestStrategiesDirtyDst checks that every strategy fully overwrites a
// poisoned destination — the Into contract the training workspaces
// rely on when buffers are reused across epochs.
func TestStrategiesDirtyDst(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := emptyRowCSR(rng)
	d := tensor.NewRandom(rng, m.Cols, 150, 1)
	ref := tensor.New(m.Rows, d.Cols)
	m.MulDenseInto(ref, d)
	for _, s := range strategies {
		got := tensor.New(m.Rows, d.Cols)
		for i := range got.Data {
			got.Data[i] = 1e18
		}
		s.mul(m, got, d)
		for i := range ref.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("%s: dirty dst entry %d = %v, want %v", s.name, i, got.Data[i], ref.Data[i])
			}
		}
	}
}

// TestBucketBounds checks the chunking is a partition of the row range
// with monotone boundaries, and that a hub-heavy matrix gets more than
// one chunk (the load-balancing point of the strategy).
func TestBucketBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m := singleHubCSR(rng)
	bounds := m.bucketBounds(128)
	if bounds[0] != 0 || bounds[len(bounds)-1] != m.Rows {
		t.Fatalf("bounds %v do not span [0,%d]", bounds, m.Rows)
	}
	if !sort.IntsAreSorted(bounds) {
		t.Fatalf("bounds not sorted: %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] && !(i == len(bounds)-1 && m.Rows == 0) {
			t.Fatalf("empty chunk at %d: %v", i, bounds)
		}
	}
	if len(bounds) < 3 {
		t.Fatalf("expected multiple chunks for hub matrix, got bounds %v", bounds)
	}
}

// TestStats checks the selector features on a hand-built matrix.
func TestStats(t *testing.T) {
	m := NewFromEntries(4, 10, []Entry{
		{0, 0, 1}, {0, 1, 1}, {0, 2, 1}, {0, 3, 1},
		{2, 5, 1},
		{3, 9, 1},
	})
	s := m.Stats()
	if s.Rows != 4 || s.Cols != 10 || s.NNZ != 6 {
		t.Fatalf("shape stats wrong: %+v", s)
	}
	if s.MaxRowNNZ != 4 {
		t.Fatalf("MaxRowNNZ = %d, want 4", s.MaxRowNNZ)
	}
	if s.AvgRowNNZ != 1.5 {
		t.Fatalf("AvgRowNNZ = %v, want 1.5", s.AvgRowNNZ)
	}
	if s.Skew != 4/1.5 {
		t.Fatalf("Skew = %v, want %v", s.Skew, 4/1.5)
	}
	var zero CSR
	if z := zero.Stats(); z.AvgRowNNZ != 0 || z.Skew != 0 {
		t.Fatalf("zero-matrix stats should be zero: %+v", z)
	}
}

// BenchmarkCSRAtHubRow measures At on a hub row. The binary-search At
// (sort.SearchInts over the sorted-column invariant) is the shipped
// implementation; the linear sub-benchmark re-implements the old scan
// as the comparison baseline, so the win is visible in one run.
func BenchmarkCSRAtHubRow(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	m := singleHubCSR(rng)
	const hub = 7
	cols, vals := m.Row(hub)
	probe := cols[len(cols)-1] // worst case for the linear scan
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += m.At(hub, probe)
		}
		_ = sink
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			for j, c := range cols {
				if c == probe {
					sink += vals[j]
					break
				}
			}
		}
		_ = sink
	})
}

// BenchmarkSpMMStrategies times each strategy on the skewed fixture —
// the microbenchmark behind `gopim bench -suite kernels`.
func BenchmarkSpMMStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	m := skewedCSR(rng)
	d := tensor.NewRandom(rng, m.Cols, 128, 1)
	dst := tensor.New(m.Rows, d.Cols)
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.MulDenseInto(dst, d)
		}
	})
	for _, s := range strategies {
		s := s
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.mul(m, dst, d)
			}
		})
	}
}
