// Package spmm is the sparse-kernel autotuner: it picks an SpMM
// execution strategy per graph and dispatches GCN aggregation through
// it. The PyGim observation motivating it (PAPERS.md) is that no
// single sparse format/parallelism choice wins everywhere — the right
// cut of the (row, dense-column) iteration space depends on the
// graph's degree shape.
//
// The strategy zoo lives in internal/sparsemat (row-parallel
// MulDenseInto plus blocked / bucketed / edge variants, every one
// bitwise-equal to the serial reference at any worker count — see
// strategies.go). This package owns the policy around the kernels:
//
//   - Strategy names and the -spmm/GOPIM_SPMM knob (Auto by default;
//     forcing a named strategy applies it to every graph).
//   - Select: a cheap analytic cost model over sparsemat.Stats (rows,
//     NNZ, degree skew) in the same features→time spirit as the
//     internal/predictor stage-latency models, but evaluated inline —
//     selection must cost O(rows), not a profiling run.
//   - Choice accounting: per-strategy Sim counters, a per-graph
//     labelled series for `bench -attrib`, and the per-graph choice
//     map run manifests record. Callers route choices through Record
//     exactly once per training run (memo replays included), which
//     keeps the counters worker-count- and memo-independent.
package spmm

import (
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"gopim/internal/obs"
	"gopim/internal/sparsemat"
	"gopim/internal/tensor"
)

// Strategy names one SpMM execution plan.
type Strategy uint8

const (
	// Auto lets Select pick per graph — the default.
	Auto Strategy = iota
	// Row is the historic row-parallel MulDenseInto path.
	Row
	// Blocked is row-parallel with a column-tiled inner loop.
	Blocked
	// Bucketed packs rows into equal-NNZ chunks before parallelising.
	Bucketed
	// Edge column-parallelises hub rows and row-parallelises the rest.
	Edge
)

var strategyNames = [...]string{"auto", "row", "blocked", "bucketed", "edge"}

// String returns the CLI name of the strategy.
func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return "auto"
}

// Parse maps a CLI/env value to a Strategy.
func Parse(v string) (Strategy, bool) {
	for i, n := range strategyNames {
		if v == n {
			return Strategy(i), true
		}
	}
	return Auto, false
}

// forced holds the global -spmm override; Auto means "let Select pick".
var forced atomic.Uint32

// SetForced sets the global strategy override (the -spmm knob).
func SetForced(s Strategy) { forced.Store(uint32(s)) }

// Forced returns the global override, Auto when none.
func Forced() Strategy { return Strategy(forced.Load()) }

// mFlagsInvalid counts rejected -spmm/GOPIM_SPMM values. Wall-clock,
// like parallel.env_workers_invalid: a malformed environment is a
// property of the invocation, not the simulation.
var mFlagsInvalid = obs.NewCounter("spmm.flags_invalid", obs.Wall,
	"invalid -spmm/GOPIM_SPMM values rejected (warn + fallback to auto)")

// EnvVar is the environment fallback consulted when -spmm is empty.
const EnvVar = "GOPIM_SPMM"

// Configure applies the -spmm flag value, falling back to GOPIM_SPMM
// when the flag is empty. Invalid values warn, bump
// spmm.flags_invalid, and keep auto — never an error (the
// GOPIM_WORKERS contract).
func Configure(flagVal string) {
	src := "-spmm"
	v := flagVal
	if v == "" {
		v = os.Getenv(EnvVar)
		src = EnvVar
		if v == "" {
			return
		}
	}
	s, ok := Parse(v)
	if !ok {
		mFlagsInvalid.Inc()
		obs.Warnf("spmm", "ignoring invalid %s=%q (want auto|row|blocked|bucketed|edge); using auto", src, v)
		return
	}
	SetForced(s)
}

// Selector thresholds, in terms of sparsemat.Stats. Calibrated on the
// kernels micro-suite (BenchmarkSpMMStrategies / `gopim bench -suite
// kernels`): the blocked tile pays off once rows are dense enough to
// re-walk the output row several times, bucketing pays off once the
// degree distribution is skewed enough that equal-row blocks are
// imbalanced, and the edge path needs at least one genuinely dense hub
// row to amortise its per-row fork.
const (
	selectEdgeMinHubNNZ = 256 // sparsemat's hubRowMinNNZ: below it the edge path degenerates to row
	selectEdgeMinSkew   = 16
	selectBucketMinSkew = 4
	selectBlockedMinAvg = 32
)

// Select picks a strategy for a graph from its CSR stats — the cheap
// per-graph decision at the heart of the autotuner. Pure function of
// Stats, so choices are reproducible across runs and worker counts.
func Select(st sparsemat.Stats) Strategy {
	switch {
	case st.MaxRowNNZ >= selectEdgeMinHubNNZ && st.Skew >= selectEdgeMinSkew:
		return Edge
	case st.Skew >= selectBucketMinSkew:
		return Bucketed
	case st.AvgRowNNZ >= selectBlockedMinAvg:
		return Blocked
	default:
		return Row
	}
}

// For resolves the strategy to use for matrix m: the global override
// when one is forced, otherwise Select over m's stats.
func For(m *sparsemat.CSR) Strategy {
	if f := Forced(); f != Auto {
		return f
	}
	return Select(m.Stats())
}

// MulInto computes dst = m · d with strategy s (Auto resolves via
// For). Every branch is bitwise-equal to m.MulDenseInto at any worker
// count, so callers may treat the strategy as a pure performance knob.
func MulInto(s Strategy, m *sparsemat.CSR, dst, d *tensor.Matrix) {
	if s == Auto {
		s = For(m)
	}
	switch s {
	case Blocked:
		m.MulDenseIntoBlocked(dst, d)
	case Bucketed:
		m.MulDenseIntoBucketed(dst, d)
	case Edge:
		m.MulDenseIntoEdge(dst, d)
	default:
		m.MulDenseInto(dst, d)
	}
}

// Per-strategy choice counters. Sim clock: Record is called a
// deterministic number of times per run (once per training run,
// replayed identically on memo hits), so totals are worker-count- and
// memo-independent.
var choiceCounters = map[Strategy]*obs.Counter{
	Row:      obs.NewCounter("spmm.choice_row", obs.Sim, "aggregation passes routed through the row strategy"),
	Blocked:  obs.NewCounter("spmm.choice_blocked", obs.Sim, "aggregation passes routed through the blocked strategy"),
	Bucketed: obs.NewCounter("spmm.choice_bucketed", obs.Sim, "aggregation passes routed through the bucketed strategy"),
	Edge:     obs.NewCounter("spmm.choice_edge", obs.Sim, "aggregation passes routed through the edge strategy"),
}

// choices is the per-graph strategy map drained into run manifests.
var (
	choicesMu sync.Mutex
	choices   = map[string]string{}
)

// Record accounts one resolved strategy choice for the named graph:
// the per-strategy Sim counter, the per-graph labelled series (only
// when full observability is on — same gating as accel's labelled
// series), and the manifest choice map. graph should identify the
// aggregated adjacency ("ddi/v4267"). Idempotent per (graph, s) for
// the map; counters accumulate per call.
func Record(graph string, s Strategy) {
	if s == Auto {
		return
	}
	if c := choiceCounters[s]; c != nil {
		c.Inc()
	}
	if obs.Enabled() {
		obs.NewCounter("spmm.selected"+obs.LabelSuffix("graph", graph, "strategy", s.String()),
			obs.Sim, "aggregation passes on this graph routed through this strategy").Inc()
	}
	choicesMu.Lock()
	choices[graph] = s.String()
	choicesMu.Unlock()
}

// Choices returns a copy of the per-graph strategy map, for manifests.
func Choices() map[string]string {
	choicesMu.Lock()
	defer choicesMu.Unlock()
	if len(choices) == 0 {
		return nil
	}
	out := make(map[string]string, len(choices))
	for k, v := range choices {
		out[k] = v
	}
	return out
}

// ChoiceKeys returns the recorded graph keys in sorted order (test and
// rendering helper).
func ChoiceKeys() []string {
	choicesMu.Lock()
	defer choicesMu.Unlock()
	keys := make([]string, 0, len(choices))
	for k := range choices {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ResetChoices clears the per-graph choice map (tests).
func ResetChoices() {
	choicesMu.Lock()
	choices = map[string]string{}
	choicesMu.Unlock()
}
