package spmm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"gopim/internal/obs"
	"gopim/internal/sparsemat"
	"gopim/internal/tensor"
)

func TestParseRoundTrips(t *testing.T) {
	for _, s := range []Strategy{Auto, Row, Blocked, Bucketed, Edge} {
		got, ok := Parse(s.String())
		if !ok || got != s {
			t.Fatalf("Parse(%q) = %v/%v, want %v", s.String(), got, ok, s)
		}
	}
	if _, ok := Parse("diagonal"); ok {
		t.Fatal("Parse must reject unknown strategies")
	}
	if Strategy(200).String() != "auto" {
		t.Fatal("out-of-range strategies must print as auto")
	}
}

// TestConfigure pins the knob contract: valid values force a strategy,
// invalid ones warn + count + keep auto, the env var backs the flag.
func TestConfigure(t *testing.T) {
	defer SetForced(Auto)
	var warnings bytes.Buffer
	restore := obs.SetWarnOutput(&warnings)
	defer restore()

	SetForced(Auto)
	t.Setenv(EnvVar, "")
	Configure("bucketed")
	if Forced() != Bucketed {
		t.Fatalf("Forced() = %v, want bucketed", Forced())
	}

	SetForced(Auto)
	before := mFlagsInvalid.Value()
	Configure("fast")
	if Forced() != Auto {
		t.Fatal("invalid -spmm must keep auto")
	}
	if mFlagsInvalid.Value() != before+1 {
		t.Fatal("invalid -spmm must bump spmm.flags_invalid")
	}
	if !strings.Contains(warnings.String(), "spmm") {
		t.Fatalf("expected a warning naming the knob, got %q", warnings.String())
	}

	SetForced(Auto)
	t.Setenv(EnvVar, "edge")
	Configure("")
	if Forced() != Edge {
		t.Fatalf("empty flag must fall back to %s, got %v", EnvVar, Forced())
	}

	SetForced(Auto)
	t.Setenv(EnvVar, "row")
	Configure("blocked")
	if Forced() != Blocked {
		t.Fatal("the flag must win over the environment")
	}
}

// TestSelectThresholds walks the selector's decision boundaries.
func TestSelectThresholds(t *testing.T) {
	cases := []struct {
		name string
		st   sparsemat.Stats
		want Strategy
	}{
		{"hub+skew → edge", sparsemat.Stats{MaxRowNNZ: selectEdgeMinHubNNZ, Skew: selectEdgeMinSkew}, Edge},
		{"hub without skew → bucketed", sparsemat.Stats{MaxRowNNZ: selectEdgeMinHubNNZ, Skew: selectBucketMinSkew}, Bucketed},
		{"skew without hub → bucketed", sparsemat.Stats{MaxRowNNZ: 8, Skew: selectEdgeMinSkew}, Bucketed},
		{"dense regular → blocked", sparsemat.Stats{AvgRowNNZ: selectBlockedMinAvg, Skew: 1}, Blocked},
		{"light regular → row", sparsemat.Stats{AvgRowNNZ: 2, Skew: 1}, Row},
		{"empty → row", sparsemat.Stats{}, Row},
	}
	for _, tc := range cases {
		if got := Select(tc.st); got != tc.want {
			t.Errorf("%s: Select(%+v) = %v, want %v", tc.name, tc.st, got, tc.want)
		}
	}
}

// randCSR builds a small random graph for dispatch tests.
func randCSR(rng *rand.Rand, rows, cols, deg int) *sparsemat.CSR {
	var entries []sparsemat.Entry
	for r := 0; r < rows; r++ {
		for k := 0; k < deg; k++ {
			entries = append(entries, sparsemat.Entry{Row: r, Col: rng.Intn(cols), Val: rng.NormFloat64()})
		}
	}
	return sparsemat.NewFromEntries(rows, cols, entries)
}

// TestMulIntoDispatch: every named strategy, and Auto's resolved pick,
// must match the row reference bit for bit through the dispatcher.
func TestMulIntoDispatch(t *testing.T) {
	defer SetForced(Auto)
	SetForced(Auto)
	rng := rand.New(rand.NewSource(5))
	m := randCSR(rng, 120, 120, 5)
	d := tensor.NewRandom(rng, 120, 16, 1)
	ref := tensor.New(120, 16)
	m.MulDenseInto(ref, d)
	for _, s := range []Strategy{Auto, Row, Blocked, Bucketed, Edge} {
		got := tensor.New(120, 16)
		MulInto(s, m, got, d)
		for i := range ref.Data {
			if got.Data[i] != ref.Data[i] {
				t.Fatalf("strategy %v: entry %d = %v, want %v", s, i, got.Data[i], ref.Data[i])
			}
		}
	}
}

// TestForHonoursForced: a forced strategy overrides Select for every
// graph; Auto restores per-graph selection.
func TestForHonoursForced(t *testing.T) {
	defer SetForced(Auto)
	rng := rand.New(rand.NewSource(9))
	m := randCSR(rng, 50, 50, 2) // light + regular: Select says Row
	SetForced(Edge)
	if got := For(m); got != Edge {
		t.Fatalf("For under forced edge = %v", got)
	}
	SetForced(Auto)
	if got := For(m); got != Select(m.Stats()) {
		t.Fatalf("For under auto = %v, want Select's %v", got, Select(m.Stats()))
	}
}

// TestRecordChoices pins the manifest choice map and its reset.
func TestRecordChoices(t *testing.T) {
	ResetChoices()
	defer ResetChoices()
	Record("g1/v100", Bucketed)
	Record("g2/v200", Row)
	Record("g1/v100", Bucketed) // idempotent for the map
	ch := Choices()
	if len(ch) != 2 || ch["g1/v100"] != "bucketed" || ch["g2/v200"] != "row" {
		t.Fatalf("Choices() = %v", ch)
	}
	if keys := ChoiceKeys(); len(keys) != 2 || keys[0] != "g1/v100" || keys[1] != "g2/v200" {
		t.Fatalf("ChoiceKeys() = %v, want sorted", keys)
	}
	// Choices hands back a copy: mutating it must not leak in.
	ch["g3/v1"] = "edge"
	if len(Choices()) != 2 {
		t.Fatal("Choices must return a copy")
	}
	// Auto is never recorded — it means "not yet resolved".
	Record("g4/v1", Auto)
	if _, ok := Choices()["g4/v1"]; ok {
		t.Fatal("Record(Auto) must be a no-op")
	}
	ResetChoices()
	if Choices() != nil {
		t.Fatal("ResetChoices must empty the map")
	}
}
