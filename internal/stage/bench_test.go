package stage

import (
	"testing"

	"gopim/internal/graphgen"
	"gopim/internal/reram"
)

func BenchmarkBuildProducts(b *testing.B) {
	d, err := graphgen.ByName("products")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Chip:       reram.DefaultChip(),
		Dataset:    d,
		Deg:        d.SynthDegreeModel(1),
		MicroBatch: 64,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(cfg)
	}
}
