// Package stage converts a GCN workload (model architecture + graph
// statistics + micro-batch size + mapping policy) into the 4L pipeline
// stages of paper Fig. 10, each with a per-micro-batch latency for one
// replica, a crossbar footprint, and energy-relevant operation counts.
//
// Latency model (calibrated against the paper's reported ratios, see
// DESIGN.md §2):
//
//   - Combination (CO): the micro-batch's b feature vectors stream
//     through the mapped weight matrix; each needs weightBits/dacBits
//     read cycles. T = b · MVMNS. The per-batch weight rewrite after
//     gradient descent is amortised over the batch's micro-batches.
//   - Aggregation (AG): T = T_update + T_mvm.
//     T_mvm streams each target vertex's adjacency row in blocks of 64
//     vertices (binary input: one read cycle per block), skipping
//     neighbour-free blocks imperfectly (Chip.ZeroSkipMiss).
//     T_update rewrites the freshly combined features onto the mapped
//     feature matrix before aggregation (dataflow step ⑤ in paper
//     Fig. 8); writes serialise within a PE, PEs run in parallel, so
//     the slowest PE domain bounds the update. Selective updating
//     skips non-important rows; interleaved mapping keeps the domains
//     balanced.
//   - Loss calculation (LC): same dataflow as CO (paper §IV-B).
//   - Gradient compute (GC): element-wise MACs on the SRAM weight
//     manager; not crossbar-mapped, so it cannot be replicated.
package stage

import (
	"fmt"
	"math"

	"gopim/internal/graphgen"
	"gopim/internal/mapping"
	"gopim/internal/noc"
	"gopim/internal/reram"
)

// Kind identifies one of the four GCN training stage types.
type Kind int

const (
	Combination Kind = iota // CO: feature × weight MVM
	Aggregation             // AG: adjacency × feature MVM + vertex update
	LossCalc                // LC: backward error propagation
	GradCompute             // GC: weight gradients on the SRAM manager
)

func (k Kind) String() string {
	switch k {
	case Combination:
		return "CO"
	case Aggregation:
		return "AG"
	case LossCalc:
		return "LC"
	case GradCompute:
		return "GC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Stage is one pipeline stage of a GCN training iteration.
type Stage struct {
	Kind  Kind
	Layer int // 1-based GCN layer
	// Name is e.g. "CO1", "AG2", "LC1".
	Name string

	// TimeNS is the per-micro-batch latency with a single replica.
	TimeNS float64
	// MVMNS and UpdateNS break TimeNS down (UpdateNS only for AG).
	MVMNS    float64
	UpdateNS float64

	// Crossbars is the footprint of one replica (0 for GC: the SRAM
	// weight manager is not crossbar-mapped).
	Crossbars int
	// Replicable reports whether adding crossbar replicas shortens the
	// stage.
	Replicable bool

	// Energy-relevant per-micro-batch operation counts.
	ReadOps   float64 // crossbar read activations
	WriteRows float64 // crossbar rows written (total, all PEs)
	SRAMMACs  float64 // weight-manager multiply-accumulates
}

// GCUnit models the SRAM weight computer's throughput in MACs per
// nanosecond (16-bit, paper Table II "Weight Computer"). The weight
// manager is a wide SRAM MAC array; gradient compute must stay far off
// the pipeline's critical path or the paper's 10²–10³× replica
// speedups would be impossible.
const GCUnit = 1024.0

// Config describes one workload for stage construction.
type Config struct {
	Chip reram.Chip
	// Dataset supplies the GCN architecture (layer dims) and graph
	// statistics.
	Dataset graphgen.Dataset
	// Deg is the graph's degree sequence in vertex-index order.
	Deg *graphgen.DegreeModel
	// MicroBatch is the number of target vertices per micro-batch.
	MicroBatch int

	// Layout/Plan select the vertex mapping and selective-updating
	// policy for aggregation stages. A nil Layout with a nil Plan means
	// full updates on a balanced (index) layout.
	Layout *mapping.Layout
	Plan   *mapping.UpdatePlan

	// PruneEdgeFraction removes this fraction of edges from the
	// aggregation workload (SlimGNN-like input subgraph pruning).
	PruneEdgeFraction float64
	// ReloadPenalty adds ReFlip's hybrid-execution reload traffic:
	// column-major execution of low-degree vertices repeatedly reloads
	// source vertices (paper §VII-B).
	ReloadPenalty bool
	// AGMVMSpeedup divides aggregation MVM time (≤ 1 treated as 1).
	// ReFlip's row/column hybrid execution reuses operands across
	// vertices, trading the reload write traffic above for much faster
	// aggregation compute.
	AGMVMSpeedup float64
	// NoC, when non-nil, adds the inter-tile interconnect overhead of
	// aggregation (adder-tree reduction + pipeline-bus streaming,
	// paper §IV-A) to AG stage times. The default calibration subsumes
	// average interconnect cost, so this refinement is opt-in.
	NoC *noc.Params
}

// LayerDims returns the (in, out) channel widths of layer l (1-based)
// per paper Table IV: input → hidden → … → output.
func LayerDims(d graphgen.Dataset, l int) (in, out int) {
	if l < 1 || l > d.Layers {
		panic(fmt.Sprintf("stage: layer %d out of range 1..%d", l, d.Layers))
	}
	in = d.HiddenCh
	if l == 1 {
		in = d.InputCh
	}
	out = d.HiddenCh
	if l == d.Layers {
		out = d.OutputCh
	}
	return in, out
}

// Build constructs the 4L stages in pipeline order:
// CO1, AG1, …, COL, AGL, LCL, GCL, …, LC1, GC1 (paper Fig. 2).
func Build(cfg Config) []Stage {
	if err := cfg.Chip.Validate(); err != nil {
		panic(err)
	}
	if cfg.MicroBatch < 1 {
		panic(fmt.Sprintf("stage: micro-batch %d must be ≥ 1", cfg.MicroBatch))
	}
	if cfg.Deg == nil {
		panic("stage: nil degree model")
	}
	L := cfg.Dataset.Layers
	// The expected active-block count is a property of the graph alone;
	// compute it once for all AG stages.
	active := avgActiveBlocks(cfg)
	stages := make([]Stage, 0, 4*L)
	for l := 1; l <= L; l++ {
		stages = append(stages, buildCO(cfg, l), buildAG(cfg, l, active))
	}
	for l := L; l >= 1; l-- {
		stages = append(stages, buildLC(cfg, l), buildGC(cfg, l))
	}
	return stages
}

// numMicroBatches returns how many micro-batches one epoch (full
// vertex sweep) comprises.
func numMicroBatches(cfg Config) int {
	n := cfg.Deg.N
	b := cfg.MicroBatch
	mb := (n + b - 1) / b
	if mb < 1 {
		mb = 1
	}
	return mb
}

func buildCO(cfg Config, l int) Stage {
	in, out := LayerDims(cfg.Dataset, l)
	c := cfg.Chip
	b := float64(cfg.MicroBatch)
	xbars := c.CrossbarsForMatrix(in, out)
	mvm := b * c.MVMNS()
	// Weight rewrite after each batch's gradient step, amortised over
	// the batch's micro-batches.
	wRows := float64(xbars) * float64(c.CrossbarRows)
	upd := wRows * c.RowWriteNS() / float64(numMicroBatches(cfg))
	return Stage{
		Kind:       Combination,
		Layer:      l,
		Name:       fmt.Sprintf("CO%d", l),
		TimeNS:     mvm + upd,
		MVMNS:      mvm,
		UpdateNS:   upd,
		Crossbars:  xbars,
		Replicable: true,
		ReadOps:    b * float64(c.InputCyclesPerMVM()) * float64(xbars),
		WriteRows:  wRows / float64(numMicroBatches(cfg)),
	}
}

// segsPerVertex is the number of crossbar rows one vertex's feature
// row occupies: a differential pair per value, 64 values per row.
func segsPerVertex(c reram.Chip, featDim int) int {
	s := 2 * ((featDim + c.CrossbarCols - 1) / c.CrossbarCols)
	if s < 2 {
		s = 2
	}
	return s
}

// verticesPerPE is how many vertices one PE's rows hold.
func verticesPerPE(c reram.Chip, featDim int) int {
	v := c.RowsPerPE() / segsPerVertex(c, featDim)
	if v < 1 {
		v = 1
	}
	return v
}

// updateDue returns, per epoch (steady state): the total number of
// vertex rewrites across the stage and the rewrites of the busiest
// PE-sized write domain. Important vertices rewrite every epoch;
// the rest amortise to 1/StalePeriod per epoch.
func updateDue(cfg Config, featDim int) (totalDue, maxDomainDue float64) {
	c := cfg.Chip
	n := cfg.Deg.N
	vppe := verticesPerPE(c, featDim)

	if cfg.Plan == nil || cfg.Layout == nil {
		// Full updates, balanced by construction.
		full := float64(vppe)
		if n < vppe {
			full = float64(n)
		}
		return float64(n), full
	}

	plan := cfg.Plan
	layout := cfg.Layout
	// Aggregate important counts over PE-sized runs of layout slots.
	numDomains := (n + vppe - 1) / vppe
	impPerDomain := make([]int, numDomains)
	sizePerDomain := make([]int, numDomains)
	for slot, v := range layout.Order {
		d := slot / vppe
		sizePerDomain[d]++
		if plan.Important[v] {
			impPerDomain[d]++
		}
	}
	staleShare := 1 / float64(plan.StalePeriod)
	for d := 0; d < numDomains; d++ {
		due := float64(impPerDomain[d]) + float64(sizePerDomain[d]-impPerDomain[d])*staleShare
		if due > maxDomainDue {
			maxDomainDue = due
		}
		totalDue += due
	}
	return totalDue, maxDomainDue
}

// avgActiveBlocks returns the mean over vertices of the expected number
// of 64-vertex adjacency blocks containing at least one neighbour,
// after edge pruning.
func avgActiveBlocks(cfg Config) float64 {
	c := cfg.Chip
	n := cfg.Deg.N
	keep := 1 - cfg.PruneEdgeFraction
	if keep < 0 {
		keep = 0
	}
	var sum float64
	for _, d := range cfg.Deg.DegreesByIndex {
		sum += c.ExpectedActiveBlocks(d*keep, n)
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func buildAG(cfg Config, l int, activeBlocks float64) Stage {
	_, out := LayerDims(cfg.Dataset, l)
	c := cfg.Chip
	b := float64(cfg.MicroBatch)
	n := cfg.Deg.N
	xbars := c.CrossbarsForMatrix(n, out)
	segs := float64(segsPerVertex(c, out))

	totalBlocks := float64(c.BlocksForVertices(n))
	effBlocks := c.EffectiveBlocks(activeBlocks, totalBlocks)
	// Binary adjacency input: one read cycle per streamed block.
	mvm := b * effBlocks * c.ReadLatencyNS
	if cfg.AGMVMSpeedup > 1 {
		mvm /= cfg.AGMVMSpeedup
	}

	var upd, writeRows float64
	if cfg.ReloadPenalty {
		// ReFlip keeps no up-to-date feature copy on the crossbars;
		// its column-major execution of low-degree vertices re-loads
		// source vertex features every micro-batch instead — write
		// traffic proportional to the micro-batch's edges (paper §VII-B
		// reasons (a)/(b)). Reloads restore previously verified data,
		// so they take the fast single-pulse write path across wide
		// reload lanes: cheap in time, very expensive in total write
		// energy on dense graphs.
		reloadRows := b * cfg.Deg.AvgDeg * 0.5
		upd = reloadRows * c.RowWriteNS() / 64
		writeRows = reloadRows
	} else {
		// Vertex updating: each epoch rewrites the due feature rows
		// once. Programming is write-verify (µs per row) and the chip's
		// write power budget admits only WriteLanes concurrent rows, so
		// the epoch's write wall time is the larger of the busiest PE
		// domain's serial writes and the lane-limited total, amortised
		// over the epoch's micro-batches.
		totalDue, maxDomainDue := updateDue(cfg, out)
		prog := c.ProgramRowNS()
		epochWall := math.Max(
			maxDomainDue*segs*prog,
			totalDue*segs*prog/float64(c.WriteLanes),
		)
		numMB := float64(numMicroBatches(cfg))
		upd = epochWall / numMB
		writeRows = totalDue * segs / numMB
	}

	var nocNS float64
	if cfg.NoC != nil {
		tiles := noc.TilesForCrossbars(xbars, c.PEsPerTile*c.CrossbarsPerPE)
		nocNS = cfg.NoC.AggregationOverheadNS(cfg.MicroBatch, out, tiles)
	}

	return Stage{
		Kind:       Aggregation,
		Layer:      l,
		Name:       fmt.Sprintf("AG%d", l),
		TimeNS:     mvm + upd + nocNS,
		MVMNS:      mvm,
		UpdateNS:   upd,
		Crossbars:  xbars,
		Replicable: true,
		ReadOps:    b * effBlocks * segs,
		WriteRows:  writeRows,
	}
}

func buildLC(cfg Config, l int) Stage {
	in, out := LayerDims(cfg.Dataset, l)
	c := cfg.Chip
	b := float64(cfg.MicroBatch)
	// Backward error MVM through the layer's weights (same dataflow as
	// CO, paper §IV-B).
	xbars := c.CrossbarsForMatrix(out, in)
	mvm := b * c.MVMNS()
	return Stage{
		Kind:       LossCalc,
		Layer:      l,
		Name:       fmt.Sprintf("LC%d", l),
		TimeNS:     mvm,
		MVMNS:      mvm,
		Crossbars:  xbars,
		Replicable: true,
		ReadOps:    b * float64(c.InputCyclesPerMVM()) * float64(xbars),
	}
}

func buildGC(cfg Config, l int) Stage {
	in, out := LayerDims(cfg.Dataset, l)
	b := float64(cfg.MicroBatch)
	macs := b * float64(in) * float64(out)
	return Stage{
		Kind:     GradCompute,
		Layer:    l,
		Name:     fmt.Sprintf("GC%d", l),
		TimeNS:   macs / GCUnit,
		MVMNS:    macs / GCUnit,
		SRAMMACs: macs,
		// Not crossbar-mapped: replicas cannot shorten it.
		Replicable: false,
	}
}

// TotalCrossbars sums the single-replica footprints of all stages.
func TotalCrossbars(stages []Stage) int {
	total := 0
	for _, s := range stages {
		total += s.Crossbars
	}
	return total
}

// MaxTimeNS returns the largest per-micro-batch stage time.
func MaxTimeNS(stages []Stage) float64 {
	max := 0.0
	for _, s := range stages {
		max = math.Max(max, s.TimeNS)
	}
	return max
}

// SumTimeNS returns the sum of per-micro-batch stage times.
func SumTimeNS(stages []Stage) float64 {
	var sum float64
	for _, s := range stages {
		sum += s.TimeNS
	}
	return sum
}
