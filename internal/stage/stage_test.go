package stage

import (
	"math"
	"math/rand"
	"testing"

	"gopim/internal/graphgen"
	"gopim/internal/mapping"
	"gopim/internal/noc"
	"gopim/internal/reram"
)

func ddiConfig(t *testing.T) Config {
	t.Helper()
	d, err := graphgen.ByName("ddi")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Chip:       reram.DefaultChip(),
		Dataset:    d,
		Deg:        d.SynthDegreeModel(1),
		MicroBatch: 64,
	}
}

func TestBuildStageOrder(t *testing.T) {
	cfg := ddiConfig(t) // ddi is a 2-layer model → 8 stages
	stages := Build(cfg)
	wantNames := []string{"CO1", "AG1", "CO2", "AG2", "LC2", "GC2", "LC1", "GC1"}
	if len(stages) != len(wantNames) {
		t.Fatalf("got %d stages, want %d", len(stages), len(wantNames))
	}
	for i, s := range stages {
		if s.Name != wantNames[i] {
			t.Fatalf("stage %d = %s, want %s (paper Fig. 2 order)", i, s.Name, wantNames[i])
		}
		if s.TimeNS <= 0 {
			t.Fatalf("stage %s has non-positive time %v", s.Name, s.TimeNS)
		}
	}
}

func TestLayerDims(t *testing.T) {
	d, _ := graphgen.ByName("arxiv") // 128 → 256 → 256 → 40, 3 layers
	in, out := LayerDims(d, 1)
	if in != 128 || out != 256 {
		t.Fatalf("layer 1 dims %d→%d", in, out)
	}
	in, out = LayerDims(d, 2)
	if in != 256 || out != 256 {
		t.Fatalf("layer 2 dims %d→%d", in, out)
	}
	in, out = LayerDims(d, 3)
	if in != 256 || out != 40 {
		t.Fatalf("layer 3 dims %d→%d", in, out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad layer")
		}
	}()
	LayerDims(d, 4)
}

// Paper Table VI (Serial row, ddi): crossbar footprints alternate
// 32, 534, 32, 534, 32, 534, 32, 534 over the 8 stages, except GC
// stages occupy no crossbars in our model (SRAM). The CO/AG/LC
// footprints must match: CO 32, AG 534.
func TestFootprintsMatchTableVI(t *testing.T) {
	stages := Build(ddiConfig(t))
	for _, s := range stages {
		switch s.Kind {
		case Combination, LossCalc:
			if s.Crossbars != 32 {
				t.Fatalf("%s footprint = %d, want 32", s.Name, s.Crossbars)
			}
		case Aggregation:
			if s.Crossbars != 534 {
				t.Fatalf("%s footprint = %d, want 534", s.Name, s.Crossbars)
			}
		case GradCompute:
			if s.Crossbars != 0 || s.Replicable {
				t.Fatalf("%s must be SRAM-resident and non-replicable", s.Name)
			}
		}
	}
}

// The paper's central observation: Aggregation dwarfs Combination.
// §III-B reports ratios from tens to ~1500× (avg 247×). Check the
// synthetic ddi lands in a plausible band and that bigger graphs give
// bigger ratios.
func TestAggregationDominatesCombination(t *testing.T) {
	stages := Build(ddiConfig(t))
	var co, ag float64
	for _, s := range stages {
		if s.Name == "CO1" {
			co = s.TimeNS
		}
		if s.Name == "AG1" {
			ag = s.TimeNS
		}
	}
	ratio := ag / co
	if ratio < 10 || ratio > 2000 {
		t.Fatalf("AG/CO ratio = %v, want within the paper's observed 10–2000 band", ratio)
	}
}

func TestLargerGraphsHaveLargerAGRatio(t *testing.T) {
	small := Build(ddiConfig(t))
	products, _ := graphgen.ByName("products")
	big := Build(Config{
		Chip:       reram.DefaultChip(),
		Dataset:    products,
		Deg:        products.SynthDegreeModel(1),
		MicroBatch: 64,
	})
	ratio := func(st []Stage) float64 {
		var co, ag float64
		for _, s := range st {
			if s.Kind == Combination && s.Layer == 2 {
				co = s.TimeNS
			}
			if s.Kind == Aggregation && s.Layer == 2 {
				ag = s.TimeNS
			}
		}
		return ag / co
	}
	if ratio(big) <= ratio(small) {
		t.Fatalf("products AG/CO %v should exceed ddi's %v", ratio(big), ratio(small))
	}
	// The paper reports up to 888–1595× on products.
	if r := ratio(big); r < 200 {
		t.Fatalf("products AG/CO = %v, want the paper's extreme regime (>200)", r)
	}
}

// Vertex updating is a significant share of aggregation (paper §III-A:
// 52% of AG1+AG2 on ppa). Our model should make it a first-order cost
// on dense datasets.
func TestUpdateShareSignificant(t *testing.T) {
	stages := Build(ddiConfig(t))
	for _, s := range stages {
		if s.Kind != Aggregation {
			continue
		}
		share := s.UpdateNS / s.TimeNS
		if share < 0.2 || share > 0.99 {
			t.Fatalf("%s update share = %v, want a first-order share", s.Name, share)
		}
	}
}

// ISU (interleaved + θ=0.5 selective updating) must cut AG time versus
// full updates, and OSU (index + selective) must cut it less.
func TestISUBeatsOSUBeatsFull(t *testing.T) {
	cfg := ddiConfig(t)
	degs := cfg.Deg.DegreesByIndex
	gs := cfg.Chip.CrossbarRows

	agTime := func(c Config) float64 {
		var sum float64
		for _, s := range Build(c) {
			if s.Kind == Aggregation {
				sum += s.TimeNS
			}
		}
		return sum
	}

	full := agTime(cfg)

	osu := cfg
	osu.Layout = mapping.IndexLayout(len(degs), gs)
	osu.Plan = mapping.NewUpdatePlan(degs, 0.5, 20)
	osuT := agTime(osu)

	isu := cfg
	isu.Layout = mapping.InterleavedLayout(degs, gs)
	isu.Plan = mapping.NewUpdatePlan(degs, 0.5, 20)
	isuT := agTime(isu)

	if !(isuT < full) {
		t.Fatalf("ISU %v must beat full updates %v", isuT, full)
	}
	if isuT > osuT*(1+1e-9) {
		t.Fatalf("ISU %v must not be slower than OSU %v", isuT, osuT)
	}
	// ISU's AG update time should drop by roughly θ̄ ≈ 0.525.
	if isuT > 0.95*full {
		t.Fatalf("ISU %v should be a real improvement over %v", isuT, full)
	}
}

func TestPruningReducesAGMVM(t *testing.T) {
	cfg := ddiConfig(t)
	base := Build(cfg)
	cfg.PruneEdgeFraction = 0.5
	pruned := Build(cfg)
	for i := range base {
		if base[i].Kind != Aggregation {
			continue
		}
		if pruned[i].MVMNS >= base[i].MVMNS {
			t.Fatalf("%s: pruning should cut MVM time (%v vs %v)",
				base[i].Name, pruned[i].MVMNS, base[i].MVMNS)
		}
	}
}

// ReFlip's hybrid execution trades in-place updates for per-micro-batch
// source reloads: far more write traffic on dense graphs (the paper's
// §VII-B energy argument) even though the fast reload path keeps its
// stage time competitive.
func TestReloadPenaltyTradesWritesForTime(t *testing.T) {
	cfg := ddiConfig(t) // ddi: avg degree ≈ 500, firmly dense
	base := Build(cfg)
	cfg.ReloadPenalty = true
	cfg.AGMVMSpeedup = 8
	reflip := Build(cfg)
	for i := range base {
		if base[i].Kind != Aggregation {
			continue
		}
		if reflip[i].WriteRows <= 2*base[i].WriteRows {
			t.Fatalf("%s: reloads must dwarf in-place update write traffic (%v vs %v)",
				base[i].Name, reflip[i].WriteRows, base[i].WriteRows)
		}
		if reflip[i].MVMNS >= base[i].MVMNS {
			t.Fatalf("%s: hybrid execution must cut MVM time", base[i].Name)
		}
	}
}

func TestGCStage(t *testing.T) {
	stages := Build(ddiConfig(t))
	var gc *Stage
	for i := range stages {
		if stages[i].Name == "GC1" {
			gc = &stages[i]
		}
	}
	if gc == nil {
		t.Fatal("GC1 missing")
	}
	wantMACs := 64.0 * 256 * 256
	if math.Abs(gc.SRAMMACs-wantMACs) > 1 {
		t.Fatalf("GC MACs = %v, want %v", gc.SRAMMACs, wantMACs)
	}
	if math.Abs(gc.TimeNS-wantMACs/GCUnit) > 1e-6 {
		t.Fatalf("GC time = %v", gc.TimeNS)
	}
}

func TestAggregates(t *testing.T) {
	stages := Build(ddiConfig(t))
	if got := TotalCrossbars(stages); got != 2*32+2*534+2*32 {
		t.Fatalf("TotalCrossbars = %d, want %d", got, 2*32+2*534+2*32)
	}
	if MaxTimeNS(stages) < SumTimeNS(stages)/float64(len(stages)) {
		t.Fatal("max must be at least the mean")
	}
	if SumTimeNS(stages) <= MaxTimeNS(stages) {
		t.Fatal("sum must exceed max for multiple stages")
	}
}

func TestMicroBatchScalesCOTime(t *testing.T) {
	cfg := ddiConfig(t)
	cfg.MicroBatch = 32
	t32 := Build(cfg)
	cfg.MicroBatch = 128
	t128 := Build(cfg)
	var co32, co128 float64
	for i := range t32 {
		if t32[i].Name == "CO1" {
			co32 = t32[i].MVMNS
		}
	}
	for i := range t128 {
		if t128[i].Name == "CO1" {
			co128 = t128[i].MVMNS
		}
	}
	if math.Abs(co128/co32-4) > 1e-9 {
		t.Fatalf("CO MVM time should scale linearly with micro-batch: %v vs %v", co128, co32)
	}
}

func TestBuildValidation(t *testing.T) {
	cfg := ddiConfig(t)
	bad := cfg
	bad.MicroBatch = 0
	mustPanic(t, func() { Build(bad) })

	bad2 := cfg
	bad2.Deg = nil
	mustPanic(t, func() { Build(bad2) })

	bad3 := cfg
	bad3.Chip.Tiles = 0
	mustPanic(t, func() { Build(bad3) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestSmallGraphUpdateCap(t *testing.T) {
	// A graph smaller than one PE's capacity must not charge more rows
	// than it has vertices.
	d, _ := graphgen.ByName("ddi")
	d.PaperVertices = 100
	cfg := Config{
		Chip:       reram.DefaultChip(),
		Dataset:    d,
		Deg:        graphgen.NewDegreeModel(make([]float64, 100)),
		MicroBatch: 64,
	}
	for _, s := range Build(cfg) {
		if s.Kind != Aggregation {
			continue
		}
		segs := float64(segsPerVertex(cfg.Chip, 256))
		bound := 100 * segs * cfg.Chip.ProgramRowNS()
		if s.UpdateNS > bound+1e-9 {
			t.Fatalf("%s update %v exceeds whole-graph program cost %v", s.Name, s.UpdateNS, bound)
		}
	}
}

func TestNoCRefinementAddsAGOverhead(t *testing.T) {
	cfg := ddiConfig(t)
	base := Build(cfg)
	params := noc.Default()
	cfg.NoC = &params
	refined := Build(cfg)
	for i := range base {
		if base[i].Kind == Aggregation {
			if refined[i].TimeNS <= base[i].TimeNS {
				t.Fatalf("%s: NoC refinement must add time", base[i].Name)
			}
			extra := refined[i].TimeNS - base[i].TimeNS
			if extra > 0.2*base[i].TimeNS {
				t.Fatalf("%s: interconnect cost %v must stay second-order vs %v",
					base[i].Name, extra, base[i].TimeNS)
			}
		} else if refined[i].TimeNS != base[i].TimeNS {
			t.Fatalf("%s: NoC refinement must not touch non-AG stages", base[i].Name)
		}
	}
}

// Validate the analytic aggregation MVM model against an explicit
// graph: the per-vertex expected active-block estimate (random
// neighbour placement) must track the true mean number of distinct
// 64-vertex blocks the generated graph's neighbour lists touch.
func TestActiveBlocksMatchExplicitGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graphgen.PowerLaw(rng, 4000, 40, 2.2)
	chip := reram.DefaultChip()

	var actual float64
	seen := make([]int, chip.BlocksForVertices(g.N))
	epoch := 0
	for v := 0; v < g.N; v++ {
		epoch++
		active := 0
		for _, u := range g.Neighbors(v) {
			b := u / chip.CrossbarRows
			if seen[b] != epoch {
				seen[b] = epoch
				active++
			}
		}
		actual += float64(active)
	}
	actual /= float64(g.N)

	var analytic float64
	for _, d := range g.DegreeModel().DegreesByIndex {
		analytic += chip.ExpectedActiveBlocks(d, g.N)
	}
	analytic /= float64(g.N)

	// Chung-Lu neighbours are weight-biased, not uniform, so allow a
	// generous band; the estimate must still be the right magnitude.
	if actual < 0.5*analytic || actual > 2*analytic {
		t.Fatalf("explicit active blocks %v vs analytic %v: model off by >2x", actual, analytic)
	}
}
