package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gopim/internal/parallel"
)

// fuzzMatrix builds a rows×cols matrix with ~zeroFrac zero entries and
// a sprinkling of the awkward values the zero-skip contract cares
// about: ±0, NaN, ±Inf and denormals.
func fuzzMatrix(rng *rand.Rand, rows, cols int, zeroFrac float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		switch r := rng.Float64(); {
		case r < zeroFrac/2:
			m.Data[i] = 0
		case r < zeroFrac:
			m.Data[i] = math.Copysign(0, -1)
		case r < zeroFrac+0.02:
			m.Data[i] = math.NaN()
		case r < zeroFrac+0.04:
			m.Data[i] = math.Inf(1 - 2*rng.Intn(2))
		case r < zeroFrac+0.06:
			m.Data[i] = 5e-324 * float64(1+rng.Intn(9))
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

// bitEqual reports got == want bit for bit — zero signs included —
// except that any NaN matches any NaN: NaN payload propagation through
// x86 add/mul depends on operand commutation the compiler is free to
// pick per expression, so payloads are not part of the determinism
// contract (no real workload feeds NaN into a product).
func bitEqual(got, want float64) bool {
	if math.IsNaN(want) {
		return math.IsNaN(got)
	}
	return math.Float64bits(got) == math.Float64bits(want)
}

// requireBitEqual fails unless got and want match per bitEqual.
func requireBitEqual(t *testing.T, got, want *Matrix, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if !bitEqual(got.Data[i], want.Data[i]) {
			t.Fatalf("%s: element %d = %v (bits %x), want %v (bits %x)",
				label, i, got.Data[i], math.Float64bits(got.Data[i]),
				want.Data[i], math.Float64bits(want.Data[i]))
		}
	}
}

// variantShapes crosses the tile boundaries (32/128) in every
// dimension and includes the degenerate single-row/column cases the
// fast paths special-case.
var variantShapes = []struct{ m, k, n int }{
	{1, 1, 1}, {3, 5, 7}, {16, 9, 256}, {16, 256, 1}, {256, 16, 1},
	{16, 1, 256}, {130, 257, 33}, {33, 130, 257}, {64, 300, 16},
}

// TestMatMulTNBitIdentical pins MatMulTNInto to the reference
// transpose-then-multiply bit for bit, at several worker counts and
// zero densities.
func TestMatMulTNBitIdentical(t *testing.T) {
	defer parallel.SetWorkers(parallel.Workers())
	for _, workers := range []int{1, 2, 8} {
		parallel.SetWorkers(workers)
		for _, sh := range variantShapes {
			for _, zf := range []float64{0, 0.3, 0.9} {
				rng := rand.New(rand.NewSource(int64(41*sh.m + sh.k + sh.n)))
				a := fuzzMatrix(rng, sh.k, sh.m, zf) // aᵀ is m×k
				b := fuzzMatrix(rng, sh.k, sh.n, zf)
				at := New(sh.m, sh.k)
				TransposeInto(at, a)
				want := New(sh.m, sh.n)
				MatMulInto(want, at, b)
				got := New(sh.m, sh.n)
				MatMulTNInto(got, a, b)
				requireBitEqual(t, got, want,
					fmt.Sprintf("TN %dx%dx%d zf=%.1f w=%d", sh.m, sh.k, sh.n, zf, workers))
			}
		}
	}
}

// TestMatMulNTBitIdentical pins MatMulNTInto the same way.
func TestMatMulNTBitIdentical(t *testing.T) {
	defer parallel.SetWorkers(parallel.Workers())
	for _, workers := range []int{1, 2, 8} {
		parallel.SetWorkers(workers)
		for _, sh := range variantShapes {
			for _, zf := range []float64{0, 0.3, 0.9} {
				rng := rand.New(rand.NewSource(int64(17*sh.m + 3*sh.k + sh.n)))
				a := fuzzMatrix(rng, sh.m, sh.k, zf)
				b := fuzzMatrix(rng, sh.n, sh.k, zf) // bᵀ is k×n
				bt := New(sh.k, sh.n)
				TransposeInto(bt, b)
				want := New(sh.m, sh.n)
				MatMulInto(want, a, bt)
				got := New(sh.m, sh.n)
				MatMulNTInto(got, a, b)
				requireBitEqual(t, got, want,
					fmt.Sprintf("NT %dx%dx%d zf=%.1f w=%d", sh.m, sh.k, sh.n, zf, workers))
			}
		}
	}
}

// TestMatMulColumnVectorPath exercises the cols==1 dot fast path
// against a reference product widened to two columns (whose first
// column must match the vector product bit for bit, since per-element
// accumulation is column-independent).
func TestMatMulColumnVectorPath(t *testing.T) {
	for _, sh := range []struct{ m, k int }{{1, 1}, {7, 3}, {16, 256}, {300, 130}} {
		for _, zf := range []float64{0, 0.5, 0.95} {
			rng := rand.New(rand.NewSource(int64(sh.m*1000 + sh.k)))
			a := fuzzMatrix(rng, sh.m, sh.k, zf)
			b2 := fuzzMatrix(rng, sh.k, 2, zf)
			want2 := New(sh.m, 2)
			MatMulInto(want2, a, b2)
			b1 := New(sh.k, 1)
			for r := 0; r < sh.k; r++ {
				b1.Data[r] = b2.At(r, 0)
			}
			got := New(sh.m, 1)
			MatMulInto(got, a, b1)
			for i := 0; i < sh.m; i++ {
				if !bitEqual(got.Data[i], want2.At(i, 0)) {
					t.Fatalf("colvec %dx%d zf=%.2f row %d: %v != %v",
						sh.m, sh.k, zf, i, got.Data[i], want2.At(i, 0))
				}
			}
		}
	}
}

// TestMatMulVariantPanics pins the shape/alias guards of the fused
// kernels.
func TestMatMulVariantPanics(t *testing.T) {
	a, b := New(4, 3), New(4, 5)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("TN inner", func() { MatMulTNInto(New(3, 5), New(2, 3), b) })
	mustPanic("TN dst", func() { MatMulTNInto(New(5, 3), a, b) })
	mustPanic("TN alias", func() {
		d := New(3, 5)
		d.Data = a.Data[:0:0]
		d.Data = a.Data[:15]
		MatMulTNInto(d, a, b)
	})
	mustPanic("NT inner", func() { MatMulNTInto(New(4, 2), a, New(2, 4)) })
	mustPanic("NT dst", func() { MatMulNTInto(New(2, 4), a, New(2, 3)) })
}

// Backward-pass shape benchmarks: fused kernels vs the historic
// transpose-then-multiply, on the shapes the MLP predictor and GCN
// training actually issue.
func BenchmarkBackwardKernels(b *testing.B) {
	shapes := []struct {
		name    string
		m, k, n int
	}{
		{"mlp-dW1", 9, 16, 256},    // Xᵀ(9×16)·Δ(16×256)
		{"mlp-dW2", 256, 16, 1},    // Hᵀ(256×16)·Δ(16×1)
		{"gcn-dW", 16, 1200, 16},   // Hᵀ(16×1200)·dC(1200×16)
		{"mlp-dH", 16, 1, 256},     // Δ(16×1)·Wᵀ(1×256)
		{"mlp-dH4", 16, 256, 256},  // Δ(16×256)·Wᵀ(256×256)
		{"gcn-dIn", 1200, 16, 16},  // dC(1200×16)·Wᵀ(16×16)
		{"mlp-fwd2", 16, 256, 1},   // H(16×256)·W2(256×1)
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(1))
		switch sh.name {
		case "mlp-dH", "mlp-dH4", "gcn-dIn", "mlp-fwd2":
			a := fuzzMatrix(rng, sh.m, sh.k, 0.3)
			if sh.name == "mlp-fwd2" {
				bm := fuzzMatrix(rng, sh.k, sh.n, 0)
				dst := New(sh.m, sh.n)
				b.Run(sh.name+"/plain", func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						MatMulInto(dst, a, bm)
					}
				})
				continue
			}
			bm := fuzzMatrix(rng, sh.n, sh.k, 0)
			dst := New(sh.m, sh.n)
			bt := New(sh.k, sh.n)
			b.Run(sh.name+"/transpose", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					TransposeInto(bt, bm)
					MatMulInto(dst, a, bt)
				}
			})
			b.Run(sh.name+"/fusedNT", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					MatMulNTInto(dst, a, bm)
				}
			})
		default:
			a := fuzzMatrix(rng, sh.k, sh.m, 0.3)
			bm := fuzzMatrix(rng, sh.k, sh.n, 0.3)
			dst := New(sh.m, sh.n)
			at := New(sh.m, sh.k)
			b.Run(sh.name+"/transpose", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					TransposeInto(at, a)
					MatMulInto(dst, at, bm)
				}
			})
			b.Run(sh.name+"/fusedTN", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					MatMulTNInto(dst, a, bm)
				}
			})
		}
	}
}
